# gnuplot script for the A1 history-size ablation — run
# `bench/ablation_history` first (writes ablation_history.csv), then:
#   gnuplot -p scripts/plot_ablation_history.gp
set datafile separator ","
set logscale x 2
set xlabel "History-table entries"
set ylabel "Activation overhead [%]"
set y2label "LUTs (DDR4)"
set y2tics
set title "A1 — the knee at the paper's 32 entries"
set key top right
set grid
plot "ablation_history.csv" using 2:($1 eq "LiPRoMi" ? $5 : 1/0) \
       with linespoints title "LiPRoMi overhead", \
     "ablation_history.csv" using 2:($1 eq "LoLiPRoMi" ? $5 : 1/0) \
       with linespoints title "LoLiPRoMi overhead", \
     "ablation_history.csv" using 2:($1 eq "LiPRoMi" ? $4 : 1/0) \
       axes x1y2 with lines dt 2 title "LUTs (DDR4)"
