# gnuplot script for Figure 4 — run `bench/fig4_tradeoff` first (it
# writes fig4.csv), then:  gnuplot -p scripts/plot_fig4.gp
set datafile separator ","
set logscale xy
set xlabel "Table Size per Bank [Bytes]"
set ylabel "Activations Overhead [%]"
set title "Fig. 4 — table size vs activation overhead (measured)"
set key outside right
set grid
set xrange [1:2e6]
set yrange [1e-4:2]
plot "fig4.csv" using 2:3:1 with labels point pt 7 offset char 1,0.5 notitle
