#!/usr/bin/env bash
# CI smoke test for the campaign service: start tvp_serve, drive it over
# its unix socket with tvp_submit, and require the served matrix to be
# byte-identical to a direct run_param_sweep (sweep_tool) of the same
# spec. Also checks clean shutdown: daemon exit 0, no leaked socket.
#
# Usage: scripts/service_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR=${1:-build}
SERVE=$BUILD_DIR/tools/tvp_serve
SUBMIT=$BUILD_DIR/tools/tvp_submit
SWEEP=$BUILD_DIR/examples/sweep_tool
for bin in "$SERVE" "$SUBMIT" "$SWEEP"; do
  [ -x "$bin" ] || { echo "missing binary: $bin (build first)"; exit 1; }
done

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

cat > "$WORK/smoke.cfg" <<'EOF'
geometry.banks = 2
windows = 1
workload.benign_rate = 5
seed = 3
EOF

SOCK=$WORK/tvp.sock
"$SERVE" --socket="$SOCK" --journal-dir="$WORK/journals" &
SERVE_PID=$!
for _ in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "tvp_serve did not come up"; exit 1; }

"$SUBMIT" --socket="$SOCK" ping

"$SUBMIT" --socket="$SOCK" submit --name=ci_smoke \
  --config="$WORK/smoke.cfg" --param=windows --values=1,2 \
  --techniques=PARA,LiPRoMi --wait --csv="$WORK/served.csv"
"$SUBMIT" --socket="$SOCK" status

"$SWEEP" --param=windows --values=1,2 --config="$WORK/smoke.cfg" \
  --techniques=PARA,LiPRoMi --csv="$WORK/direct.csv" > /dev/null

cmp "$WORK/served.csv" "$WORK/direct.csv"
echo "service matrix is byte-identical to direct run_param_sweep"

"$SUBMIT" --socket="$SOCK" shutdown --drain
if ! wait "$SERVE_PID"; then
  echo "tvp_serve exited non-zero"; exit 1
fi
SERVE_PID=
[ ! -e "$SOCK" ] || { echo "socket file leaked: $SOCK"; exit 1; }

echo "service smoke OK"
