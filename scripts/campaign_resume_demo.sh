#!/usr/bin/env bash
# Demonstrates crash-safe campaign resume with the paper's standard
# campaign config: submit a sweep to tvp_serve, SIGTERM the daemon
# mid-run (the "crash"), restart it, and watch the campaign resume from
# its journal — recomputing only the missing cells — then verify the
# result is byte-identical to an uninterrupted run of the same spec.
#
# Usage: scripts/campaign_resume_demo.sh [BUILD_DIR]   (default: build)
# Tunables (env): KILL_AFTER (seconds before the kill, default 5)
#                 VALUES, TECHNIQUES (sweep grid; small by default so
#                 the demo finishes in a couple of minutes)
set -euo pipefail

BUILD_DIR=${1:-build}
SERVE=$BUILD_DIR/tools/tvp_serve
SUBMIT=$BUILD_DIR/tools/tvp_submit
KILL_AFTER=${KILL_AFTER:-1}
VALUES=${VALUES:-1,2,3,4,5,6,7,8}
TECHNIQUES=${TECHNIQUES:-LoLiPRoMi,PARA}
CONFIG=${CONFIG:-configs/paper_campaign.cfg}
for bin in "$SERVE" "$SUBMIT"; do
  [ -x "$bin" ] || { echo "missing binary: $bin (build first)"; exit 1; }
done
[ -f "$CONFIG" ] || { echo "missing config: $CONFIG"; exit 1; }

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
SOCK=$WORK/tvp.sock

start_daemon() {
  "$SERVE" --socket="$SOCK" --journal-dir="$WORK/journals" &
  SERVE_PID=$!
  for _ in $(seq 1 50); do [ -S "$SOCK" ] && break; sleep 0.1; done
  [ -S "$SOCK" ] || { echo "tvp_serve did not come up"; exit 1; }
}

echo "== reference: uninterrupted run of the same spec"
start_daemon
"$SUBMIT" --socket="$SOCK" submit --name=reference --config="$CONFIG" \
  --param=seed --values="$VALUES" --techniques="$TECHNIQUES" \
  --wait --timeout=3600 --csv="$WORK/reference.csv"

echo "== submit the campaign we are about to kill"
"$SUBMIT" --socket="$SOCK" submit --name=demo --config="$CONFIG" \
  --param=seed --values="$VALUES" --techniques="$TECHNIQUES" > /dev/null
sleep "$KILL_AFTER"
echo "== SIGTERM after ${KILL_AFTER}s (the daemon checkpoints and exits)"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || true
SERVE_PID=
echo "== journal after the kill:"
grep -c '"type":"cell"' "$WORK"/journals/demo.tvpj \
  | xargs -I{} echo "   {} cells checkpointed"

echo "== restart: the daemon resumes the campaign from its journal"
start_daemon
"$SUBMIT" --socket="$SOCK" status
JOB=$("$SUBMIT" --socket="$SOCK" status | grep "'demo'" | awk '{print $2}')
while "$SUBMIT" --socket="$SOCK" status --job="$JOB" | grep -q running; do
  sleep 2
done
"$SUBMIT" --socket="$SOCK" status --job="$JOB"
"$SUBMIT" --socket="$SOCK" results --job="$JOB" --csv="$WORK/resumed.csv"
"$SUBMIT" --socket="$SOCK" shutdown --drain
wait "$SERVE_PID" || true
SERVE_PID=

cmp "$WORK/reference.csv" "$WORK/resumed.csv"
echo "== resumed campaign is byte-identical to the uninterrupted run"
