#!/usr/bin/env python3
"""Compare a fresh perf_hotpath run against the committed baseline.

Raw ACTs/sec numbers are useless across machines (and across days on a
shared CI runner): the whole fleet drifts together with CPU generation,
load and frequency scaling. What stays stable is the *shape* — how much
each technique costs relative to the unmitigated 'none' walk of the same
build on the same machine. So this checker compares none-normalized
ratios:

    score(t) = acts_per_sec(t) / acts_per_sec(none)     per file,
    regression(t) = 1 - score_new(t) / score_base(t)

and fails when any technique regressed by more than the threshold
(default 20%). A genuine kernel pessimization moves the ratio; a slow
runner does not.

Usage:
    check_perf_regression.py NEW.json [BASELINE.json] [--threshold=0.20]
                             [--min-speedup=TECH=FACTOR[,TECH=FACTOR...]]

--min-speedup turns the checker into a speedup gate as well: the named
technique's none-normalized score in NEW must be at least FACTOR times
its score in BASELINE (e.g. --min-speedup=CaPRoMi=1.4,TWiCe=1.4 after
an optimization PR, checked against the pre-change baseline).

BASELINE.json defaults to the committed BENCH_hotpath.json next to this
script's repo root. Exit 0 = fine, 1 = regression, 2 = bad input.

Override: set TVP_ALLOW_PERF_REGRESSION=1 to demote failures to
warnings. Use it when a PR *intentionally* trades hot-path speed for
something else (say, a more faithful model) — and say so in the PR
description, because the new BENCH_hotpath.json you commit becomes the
next baseline.
"""

import json
import os
import sys


def die(msg: str) -> None:
    print(f"check_perf_regression: {msg}", file=sys.stderr)
    sys.exit(2)


def load_scores(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        die(f"cannot read {path}: {e}")
    results = doc.get("results")
    if not results:
        die(f"{path}: no 'results' array")
    by_name = {r["technique"]: float(r["acts_per_sec"]) for r in results}
    none = by_name.get("none")
    if not none:
        die(f"{path}: no 'none' baseline technique in results")
    return {t: v / none for t, v in by_name.items() if t != "none"}


def main(argv: list) -> int:
    threshold = 0.20
    min_speedup = {}
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--min-speedup="):
            for part in arg.split("=", 1)[1].split(","):
                if part.count("=") != 1:
                    die(f"bad --min-speedup entry: {part!r}")
                tech, factor = part.split("=")
                min_speedup[tech] = float(factor)
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            paths.append(arg)
    if not paths:
        die("need NEW.json (and optionally BASELINE.json)")
    new_path = paths[0]
    if len(paths) > 1:
        base_path = paths[1]
    else:
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        base_path = os.path.join(repo, "BENCH_hotpath.json")

    base = load_scores(base_path)
    new = load_scores(new_path)
    for t in min_speedup:
        if t not in base:
            die(f"--min-speedup names {t!r}, not in {base_path}")

    allow = os.environ.get("TVP_ALLOW_PERF_REGRESSION", "") not in ("", "0")
    failed = []
    print(f"{'technique':<12} {'base':>8} {'new':>8} {'delta':>8}")
    for t in sorted(base):
        if t not in new:
            print(f"{t:<12} {base[t]:>8.4f} {'gone':>8} {'':>8}")
            failed.append(f"{t}: missing from {new_path}")
            continue
        ratio = new[t] / base[t]
        delta = ratio - 1.0
        flag = ""
        if delta < -threshold:
            flag = "  <-- REGRESSION"
            failed.append(f"{t}: {delta * 100:+.1f}% (none-normalized)")
        elif t in min_speedup and ratio < min_speedup[t]:
            flag = f"  <-- BELOW {min_speedup[t]:.2f}x"
            failed.append(f"{t}: {ratio:.3f}x, needs >= {min_speedup[t]:.2f}x "
                          f"(none-normalized)")
        print(f"{t:<12} {base[t]:>8.4f} {new[t]:>8.4f} {delta * 100:>+7.1f}%{flag}")

    if failed:
        kind = "warning (TVP_ALLOW_PERF_REGRESSION set)" if allow else "FAIL"
        print(f"\n{kind}: {len(failed)} technique(s) regressed more than "
              f"{threshold * 100:.0f}% vs {base_path}:", file=sys.stderr)
        for f in failed:
            print(f"  {f}", file=sys.stderr)
        return 0 if allow else 1
    print(f"\nOK: no technique regressed more than {threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
