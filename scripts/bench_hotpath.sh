#!/usr/bin/env bash
# Builds the perf harness in Release and measures the ACT hot path.
#
#   scripts/bench_hotpath.sh [--smoke] [extra perf_hotpath flags...]
#
# --smoke   CI-sized run (50k ACTs instead of 2M) — same shape, seconds
#           not minutes. All other flags are forwarded to perf_hotpath
#           (--acts=N, --seed=S, --out=FILE).
#
# Writes BENCH_hotpath.json into the repo root. Uses a dedicated
# build-release/ tree so a default RelWithDebInfo build/ is untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
      -DTVP_BUILD_TESTS=OFF -DTVP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-release -j --target perf_hotpath >/dev/null

exec ./build-release/bench/perf_hotpath --out=BENCH_hotpath.json "$@"
