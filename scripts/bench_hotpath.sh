#!/usr/bin/env bash
# Builds the perf harness in Release and measures the ACT hot path.
#
#   scripts/bench_hotpath.sh [--smoke] [extra perf_hotpath flags...]
#
# --smoke   CI-sized run (50k ACTs instead of 2M) — same shape, seconds
#           not minutes. All other flags are forwarded to perf_hotpath
#           (--acts=N, --seed=S, --out=FILE).
#
# Writes BENCH_hotpath.json into the repo root and appends one line per
# run to BENCH_history.jsonl ({commit, timestamp, results}) so hot-path
# performance is trackable across commits; CI uploads the history file
# as an artifact. Uses a dedicated build-release/ tree so a default
# RelWithDebInfo build/ is untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
      -DTVP_BUILD_TESTS=OFF -DTVP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-release -j --target perf_hotpath >/dev/null

# A caller-supplied --out wins (perf_hotpath takes the last occurrence);
# mirror that here so the history line reads the right file.
out=BENCH_hotpath.json
for arg in "$@"; do
  case "$arg" in
    --out=*) out="${arg#--out=}" ;;
  esac
done

./build-release/bench/perf_hotpath --out=BENCH_hotpath.json "$@"

commit=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
python3 - "$out" "$commit" <<'EOF'
import json, sys, time
out, commit = sys.argv[1], sys.argv[2]
with open(out) as f:
    doc = json.load(f)
line = {"commit": commit,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())}
# Carry the run's scalar metadata (acts, seed, ...) and the results.
for key, value in doc.items():
    if not isinstance(value, (list, dict)):
        line[key] = value
line["results"] = doc.get("results", [])
with open("BENCH_history.jsonl", "a") as f:
    f.write(json.dumps(line, separators=(",", ":")) + "\n")
EOF
echo "appended $out -> BENCH_history.jsonl ($commit)"
