#!/usr/bin/env bash
# Artifact-evaluation entry point: build everything, run the test suite,
# then regenerate every table/figure into results/.
#
#   scripts/reproduce.sh [--full] [--seeds N]
#
# --full      paper-scale runs (16 banks, 6 refresh windows; slower)
# --seeds N   seed count for the mu/sigma columns (default 5)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS=5
for arg in "$@"; do
  case "$arg" in
    --full) export TVP_SCALE=full ;;
    --seeds) ;;  # value handled below
    *) if [[ "${prev:-}" == "--seeds" ]]; then SEEDS="$arg"; fi ;;
  esac
  prev="$arg"
done
export TVP_SEEDS="$SEEDS"

echo "== configure + build =="
cmake -B build -G Ninja >/dev/null
cmake --build build

echo "== test suite =="
ctest --test-dir build --output-on-failure

echo "== reproduction benches (TVP_SCALE=${TVP_SCALE:-default}, TVP_SEEDS=$TVP_SEEDS) =="
mkdir -p results
for bench in build/bench/*; do
  [[ -x "$bench" && -f "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "-- $name"
  if [[ "$name" == "perf_throughput" ]]; then
    "$bench" --benchmark_min_time=0.05 | tee "results/$name.txt"
  else
    (cd results && "../$bench") | tee "results/$name.txt"
  fi
done

echo "== done: see results/ and EXPERIMENTS.md =="
