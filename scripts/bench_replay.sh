#!/usr/bin/env bash
# Builds the replay benchmark in Release and measures corpus
# record/replay throughput against workload generation.
#
#   scripts/bench_replay.sh [--smoke] [extra replay_bench flags...]
#
# --smoke   CI-sized run (50k records instead of 2M) — same shape,
#           seconds not minutes. All other flags are forwarded to
#           replay_bench (--acts=N, --seed=S, --min-speedup=X, ...).
#
# Writes BENCH_replay.json into the repo root and exits non-zero when
# cold replay is not at least 5x faster than workload generation. Uses
# the dedicated build-release/ tree so a default RelWithDebInfo build/
# is untouched.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release \
      -DTVP_BUILD_TESTS=OFF -DTVP_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-release -j --target replay_bench >/dev/null

exec ./build-release/bench/replay_bench --out=BENCH_replay.json "$@"
