#!/usr/bin/env bash
# Campaign-service load benchmark + kill-during-load torture.
#
# Three phases against a real tvp_serve daemon:
#   1. baseline  — svc_load with --workers=1
#   2. scaled    — the same load with --workers=<nproc> (jobs/sec ratio
#                  is the executor-pool speedup; meaningful on
#                  multi-core hosts only)
#   3. kill      — SIGKILL the daemon mid-load (32 clients submitting),
#                  restart it on the same journal dir, wait for every
#                  resumed job to finish, and require each job's CSV to
#                  be byte-identical to a direct sweep_tool run
#
# Publishes BENCH_service.json (jobs/sec per phase, speedup, p50/p99
# status latency, connections sustained, kill/resume verdict).
#
# Usage: scripts/bench_service.sh [BUILD_DIR]   (default: build)
# Env:   SVC_LOAD_CLIENTS (default 32), SVC_LOAD_CONNS (default 256),
#        SVC_LOAD_MIN_SPEEDUP (default 0 = report only, no gate)
set -euo pipefail

BUILD_DIR=${1:-build}
SERVE=$BUILD_DIR/tools/tvp_serve
SUBMIT=$BUILD_DIR/tools/tvp_submit
LOAD=$BUILD_DIR/bench/svc_load
SWEEP=$BUILD_DIR/examples/sweep_tool
for bin in "$SERVE" "$SUBMIT" "$LOAD" "$SWEEP"; do
  [ -x "$bin" ] || { echo "missing binary: $bin (build first)"; exit 1; }
done

CLIENTS=${SVC_LOAD_CLIENTS:-32}
CONNS=${SVC_LOAD_CONNS:-256}
MIN_SPEEDUP=${SVC_LOAD_MIN_SPEEDUP:-0}
NPROC=$(nproc)

WORK=$(mktemp -d)
SERVE_PID=
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK=$WORK/tvp.sock

start_daemon() {  # args: workers journal_dir queue
  "$SERVE" --socket="$SOCK" --journal-dir="$2" --workers="$1" --queue="$3" &
  SERVE_PID=$!
  for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
  [ -S "$SOCK" ] || { echo "tvp_serve did not come up"; exit 1; }
}

stop_daemon() {
  "$SUBMIT" --socket="$SOCK" shutdown >/dev/null
  wait "$SERVE_PID" || { echo "tvp_serve exited non-zero"; exit 1; }
  SERVE_PID=
}

# ---- phase 1: single worker baseline --------------------------------
echo "== baseline: workers=1, clients=$CLIENTS =="
start_daemon 1 "$WORK/journals_base" 512
"$LOAD" --socket="$SOCK" --clients="$CLIENTS" --jobs-per-client=2 \
  --stream-clients=2 --conns="$CONNS" --prefix=base \
  --out="$WORK/baseline.json" > /dev/null
stop_daemon

# ---- phase 2: worker pool at nproc ----------------------------------
echo "== scaled: workers=$NPROC, clients=$CLIENTS =="
start_daemon "$NPROC" "$WORK/journals_multi" 512
"$LOAD" --socket="$SOCK" --clients="$CLIENTS" --jobs-per-client=2 \
  --stream-clients=2 --conns="$CONNS" --prefix=multi \
  --out="$WORK/scaled.json" > /dev/null
stop_daemon

# ---- phase 3: kill during load, resume, verify ----------------------
echo "== kill-during-load: workers=4, clients=$CLIENTS =="
JDIR=$WORK/journals_kill
start_daemon 4 "$JDIR" 512
"$LOAD" --socket="$SOCK" --clients="$CLIENTS" --jobs-per-client=2 \
  --stream-clients=0 --conns=0 --prefix=kill \
  --no-wait --tolerate-errors > /dev/null &
LOAD_PID=$!
sleep 1  # let the load land mid-flight
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=
wait "$LOAD_PID" || true  # clients see dead sockets; tolerated

JOURNALS=$(ls "$JDIR"/*.tvpj 2>/dev/null | wc -l)
echo "daemon killed; $JOURNALS journaled job(s) survive"
[ "$JOURNALS" -gt 0 ] || { echo "kill landed before any journal"; exit 1; }

start_daemon 4 "$JDIR" 512
for _ in $(seq 1 600); do
  PENDINGCOUNT=$("$SUBMIT" --socket="$SOCK" status | grep -c -E ': (queued|running),' || true)
  [ "$PENDINGCOUNT" -eq 0 ] && break
  sleep 0.5
done
[ "${PENDINGCOUNT:-1}" -eq 0 ] || { echo "resumed jobs did not finish"; exit 1; }

# Every load job shares one spec grid; one direct run is the reference.
cat > "$WORK/load.cfg" <<'EOF'
geometry.banks = 2
windows = 1
workload.benign_rate = 5
seed = 3
EOF
"$SWEEP" --param=windows --values=1,2 --config="$WORK/load.cfg" \
  --techniques=PARA --csv="$WORK/ref.csv" > /dev/null

RESUMED=0
VERIFIED=0
while read -r id; do
  [ -n "$id" ] || continue
  RESUMED=$((RESUMED + 1))
  "$SUBMIT" --socket="$SOCK" results --job="$id" --csv="$WORK/job.csv" > /dev/null
  cmp "$WORK/job.csv" "$WORK/ref.csv" || { echo "job $id diverged"; exit 1; }
  VERIFIED=$((VERIFIED + 1))
done < <("$SUBMIT" --socket="$SOCK" status | awk '$1=="job" && $4=="done," {print $2}')
echo "all $VERIFIED/$RESUMED resumed job(s) byte-identical to direct run"
[ "$VERIFIED" -gt 0 ] || { echo "no job reached done after resume"; exit 1; }
stop_daemon

# ---- merge ----------------------------------------------------------
python3 - "$WORK/baseline.json" "$WORK/scaled.json" "$NPROC" "$RESUMED" "$VERIFIED" \
  "$MIN_SPEEDUP" > BENCH_service.json <<'PY'
import json, sys
base = json.load(open(sys.argv[1]))
scaled = json.load(open(sys.argv[2]))
nproc, resumed, verified = int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])
min_speedup = float(sys.argv[6])
speedup = (scaled["jobs_per_sec"] / base["jobs_per_sec"]
           if base["jobs_per_sec"] > 0 else 0.0)
out = {
    "bench": "campaign-service load",
    "host_cores": nproc,
    "baseline_workers1": base,
    "scaled_workers_nproc": scaled,
    "speedup_jobs_per_sec": round(speedup, 3),
    "kill_during_load": {
        "workers": 4,
        "clients": base["clients"],
        "jobs_resumed_done": verified,
        "jobs_terminal": resumed,
        "byte_identical": True,
    },
}
json.dump(out, sys.stdout, indent=2)
print()
if min_speedup > 0 and speedup < min_speedup:
    sys.stderr.write(
        f"speedup {speedup:.2f}x below required {min_speedup}x\n")
    sys.exit(1)
PY

echo "service bench OK (speedup $(python3 -c 'import json;print(json.load(open("BENCH_service.json"))["speedup_jobs_per_sec"])')x on $NPROC core(s)); BENCH_service.json written"
