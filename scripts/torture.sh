#!/usr/bin/env bash
# Crash-consistency torture run: configure a build with the failpoint
# sites armed (-DTVP_ENABLE_FAILPOINTS=ON), build it, and run the
# torture harness (tests/torture_test.cpp) plus the rest of the test
# suite in that configuration. The harness injects an errno and a
# SIGKILL at every syscall of the campaign journal path and requires
# each resumed campaign to be byte-identical to an uninterrupted run.
#
# Usage: scripts/torture.sh [--sanitize] [BUILD_DIR]
#   --sanitize   add AddressSanitizer + UndefinedBehaviorSanitizer
#   BUILD_DIR    defaults to build-torture
#
# The full ctest log is written to BUILD_DIR/torture_log.txt (CI uploads
# it as an artifact).
set -euo pipefail

SANITIZE=0
if [ "${1:-}" = "--sanitize" ]; then
  SANITIZE=1
  shift
fi
BUILD_DIR=${1:-build-torture}

CMAKE_ARGS=(
  -DTVP_ENABLE_FAILPOINTS=ON
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
)
if [ "$SANITIZE" = 1 ]; then
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  CMAKE_ARGS+=(
    "-DCMAKE_CXX_FLAGS=$SAN_FLAGS"
    "-DCMAKE_EXE_LINKER_FLAGS=$SAN_FLAGS"
  )
fi

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j

# The torture harness forks SIGKILL children on purpose; keep ASan from
# treating their deaths as failures and keep leak checking on the parent.
export ASAN_OPTIONS=${ASAN_OPTIONS:-abort_on_error=0}

LOG=$BUILD_DIR/torture_log.txt
if (cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)") 2>&1 | tee "$LOG"; then
  echo "torture run OK (log: $LOG)"
else
  echo "torture run FAILED (log: $LOG)"
  exit 1
fi
