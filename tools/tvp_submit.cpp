// tvp_submit — command-line client for tvp_serve.
//
//   tvp_submit --socket=/tmp/tvp.sock submit --name=c1
//       --config=configs/paper_campaign.cfg --param=windows --values=1,2
//       [--techniques=PARA,LiPRoMi] [--wait] [--csv=out.csv]
//   tvp_submit --socket=... status [--job=N]
//   tvp_submit --socket=... results --job=N [--csv=out.csv]
//   tvp_submit --socket=... watch --job=N     (stream cells as they finish)
//   tvp_submit --socket=... cancel --job=N
//   tvp_submit --socket=... shutdown [--drain]
//   tvp_submit --socket=... ping
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tvp/exp/config_io.hpp"
#include "tvp/exp/report.hpp"
#include "tvp/svc/client.hpp"
#include "tvp/util/cli.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto comma = text.find(',', pos);
    out.push_back(text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void print_status(const tvp::svc::JobStatus& job) {
  std::printf("job %llu '%s': %s, %zu/%zu cells (%zu resumed)%s%s\n",
              static_cast<unsigned long long>(job.id), job.name.c_str(),
              tvp::svc::to_string(job.state), job.completed_cells,
              job.total_cells, job.resumed_cells,
              job.error.empty() ? "" : " — ", job.error.c_str());
}

int usage(bool ok) {
  std::printf(
      "usage: tvp_submit (--socket=PATH | --host=H --port=N) COMMAND [options]\n"
      "commands:\n"
      "  submit   --name=NAME --param=KEY --values=v1,v2,...\n"
      "           [--config=FILE] [--techniques=a,b,...] [--trace=FILE.tvpc]\n"
      "           [--wait] [--csv=FILE]\n"
      "           --trace replays a recorded corpus (see tvp_trace record)\n"
      "           instead of generating the workload; the server pins the\n"
      "           corpus identity in the job's journal\n"
      "  status   [--job=N]\n"
      "  results  --job=N [--csv=FILE]\n"
      "  watch    --job=N   (stream cell records live, NDJSON on stdout)\n"
      "  cancel   --job=N\n"
      "  shutdown [--drain]\n"
      "  ping\n");
  return ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tvp;
  try {
    util::Flags flags(argc, argv,
                      {"socket", "host", "port", "name", "config", "param",
                       "values", "techniques", "trace", "job", "wait", "csv",
                       "drain", "timeout", "help"});
    if (flags.get_bool("help") || flags.positional().empty()) return usage(flags.get_bool("help"));
    const std::string command = flags.positional()[0];

    svc::Client client =
        flags.has("socket")
            ? svc::Client::connect_unix(flags.get("socket", ""))
            : svc::Client::connect_tcp(flags.get("host", "127.0.0.1"),
                                       static_cast<int>(flags.get_int("port", 7077)));

    if (command == "ping") {
      client.ping();
      std::printf("ok\n");
      return 0;
    }
    if (command == "submit") {
      if (!flags.has("name") || !flags.has("param") || !flags.has("values"))
        return usage(false);
      svc::JobSpec spec;
      spec.name = flags.get("name", "");
      spec.param_key = flags.get("param", "");
      spec.values = split_csv(flags.get("values", ""));
      if (flags.has("techniques")) {
        spec.techniques = split_csv(flags.get("techniques", ""));
      } else {
        for (const auto t : hw::kAllTechniques)
          spec.techniques.emplace_back(hw::to_string(t));
      }
      if (flags.has("config")) {
        spec.config_text = read_file(flags.get("config", ""));
      } else {
        exp::SimConfig campaign;
        exp::install_standard_campaign(campaign);
        spec.config_text = exp::to_config_text(campaign);
      }
      spec.trace = flags.get("trace", "");
      const std::uint64_t id = client.submit(spec);
      std::printf("submitted job %llu '%s' (%zu cells)\n",
                  static_cast<unsigned long long>(id), spec.name.c_str(),
                  spec.cell_count());
      if (flags.get_bool("wait")) {
        const auto final_status =
            client.wait(id, flags.get_double("timeout", 3600.0));
        print_status(final_status);
        if (final_status.state != svc::JobState::kDone) return 1;
        if (flags.has("csv")) {
          const std::string path = flags.get("csv", "");
          std::ofstream os(path);
          os << client.results(id).at("csv").as_string();
          std::printf("CSV written to %s\n", path.c_str());
        }
      }
      return 0;
    }
    if (command == "status") {
      if (flags.has("job")) {
        print_status(client.status(
            static_cast<std::uint64_t>(flags.get_int("job", 0))));
      } else {
        const auto jobs = client.status();
        if (jobs.empty()) std::printf("no jobs\n");
        for (const auto& job : jobs) print_status(job);
      }
      return 0;
    }
    if (command == "results") {
      if (!flags.has("job")) return usage(false);
      const auto response =
          client.results(static_cast<std::uint64_t>(flags.get_int("job", 0)));
      const std::string csv = response.at("csv").as_string();
      if (flags.has("csv")) {
        const std::string path = flags.get("csv", "");
        std::ofstream os(path);
        os << csv;
        std::printf("CSV written to %s\n", path.c_str());
      } else {
        std::fputs(csv.c_str(), stdout);
      }
      return 0;
    }
    if (command == "watch") {
      if (!flags.has("job")) return usage(false);
      const auto job_id = static_cast<std::uint64_t>(flags.get_int("job", 0));
      const auto end = client.stream_results(
          job_id, [](const util::JsonValue& cell) {
            std::printf("%s\n", cell.dump().c_str());
            std::fflush(stdout);
          });
      std::fprintf(stderr, "job %llu ended: %s%s%s\n",
                   static_cast<unsigned long long>(job_id),
                   svc::to_string(end.state), end.error.empty() ? "" : " — ",
                   end.error.c_str());
      return end.state == svc::JobState::kDone ? 0 : 1;
    }
    if (command == "cancel") {
      if (!flags.has("job")) return usage(false);
      client.cancel(static_cast<std::uint64_t>(flags.get_int("job", 0)));
      std::printf("cancelled\n");
      return 0;
    }
    if (command == "shutdown") {
      client.shutdown(flags.get_bool("drain"));
      std::printf("shutdown requested\n");
      return 0;
    }
    std::fprintf(stderr, "tvp_submit: unknown command '%s'\n", command.c_str());
    return usage(false);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvp_submit: %s\n", e.what());
    return 1;
  }
}
