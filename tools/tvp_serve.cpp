// tvp_serve — the campaign-service daemon.
//
//   ./build/tools/tvp_serve --socket=/tmp/tvp.sock --journal-dir=journals
//   ./build/tools/tvp_serve --port=7077 --journal-dir=journals
//
// Accepts run/sweep jobs over a newline-delimited-JSON protocol (see
// DESIGN.md "Campaign service"), executes them on a pool of --workers
// concurrent executors (each sweep itself parallel over TVP_JOBS), and
// checkpoints every completed sweep cell to an fsync'd journal, so a
// killed daemon resumes exactly where it stopped. SIGINT/SIGTERM drain
// gracefully: in-flight cells finish and are journaled, stream
// subscribers get their end events, the socket file is removed, and
// the process exits 0.
#include <cstdio>
#include <string>

#include "tvp/svc/server.hpp"
#include "tvp/util/cli.hpp"
#include "tvp/util/failpoint.hpp"
#include "tvp/util/log.hpp"

int main(int argc, char** argv) {
  using namespace tvp;
  try {
    util::Flags flags(argc, argv,
                      {"socket", "port", "journal-dir", "queue", "jobs",
                       "workers", "backlog", "failpoints", "verbose", "help"});
    if (flags.get_bool("help") ||
        (!flags.has("socket") && !flags.has("port"))) {
      std::printf(
          "usage: tvp_serve --socket=PATH | --port=N [options]\n"
          "  --socket=PATH       listen on a unix socket\n"
          "  --port=N            listen on 127.0.0.1:N (0 = ephemeral)\n"
          "  --journal-dir=DIR   checkpoint campaigns here (enables resume)\n"
          "  --queue=N           pending-job capacity (default 64)\n"
          "  --workers=N         concurrent jobs (default: hw threads)\n"
          "  --jobs=N            worker threads per sweep (default TVP_JOBS)\n"
          "  --backlog=N         listen(2) backlog (default SOMAXCONN)\n"
          "  --failpoints=SPEC   arm fault-injection sites (testing builds;\n"
          "                      same syntax as TVP_FAILPOINTS, see DESIGN §7)\n"
          "  --verbose           info-level logging\n");
      return flags.get_bool("help") ? 0 : 2;
    }

    // Fault injection (torture testing): --failpoints wins over the
    // TVP_FAILPOINTS environment variable. A production build refuses
    // the flag outright — silently ignoring it would fake coverage.
    const std::string failpoints = flags.get("failpoints", "");
    if (!failpoints.empty()) {
      if (!util::failpoint::compiled_in()) {
        std::fprintf(stderr,
                     "tvp_serve: --failpoints requires a build with "
                     "-DTVP_ENABLE_FAILPOINTS=ON\n");
        return 2;
      }
      util::failpoint::configure(failpoints);
      std::printf("tvp_serve: failpoints armed: %s\n", failpoints.c_str());
    } else if (util::failpoint::compiled_in() &&
               util::failpoint::configure_from_env()) {
      std::printf("tvp_serve: failpoints armed from TVP_FAILPOINTS\n");
    }

    util::set_log_level(flags.get_bool("verbose") ? util::LogLevel::kInfo
                                                  : util::LogLevel::kWarn);

    svc::ServerConfig config;
    config.unix_path = flags.get("socket", "");
    config.tcp_port = static_cast<int>(flags.get_int("port", -1));
    config.engine.journal_dir = flags.get("journal-dir", "");
    config.engine.queue_capacity =
        static_cast<std::size_t>(flags.get_int("queue", 64));
    config.engine.sweep_jobs =
        static_cast<std::size_t>(flags.get_int("jobs", 0));
    config.engine.workers =
        static_cast<std::size_t>(flags.get_int("workers", 0));
    config.backlog = static_cast<int>(flags.get_int("backlog", 0));

    svc::Server server(config);
    const auto resumed = server.start();
    svc::Server::install_signal_handlers(server);

    if (!config.unix_path.empty())
      std::printf("tvp_serve: listening on %s\n", config.unix_path.c_str());
    if (config.tcp_port >= 0)
      std::printf("tvp_serve: listening on 127.0.0.1:%d\n", server.tcp_port());
    std::printf("tvp_serve: %zu executor worker(s)\n",
                server.engine().worker_count());
    if (!resumed.empty())
      std::printf("tvp_serve: resumed %zu campaign(s) from %s\n",
                  resumed.size(), config.engine.journal_dir.c_str());
    std::fflush(stdout);

    server.serve();
    std::printf("tvp_serve: shut down cleanly\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvp_serve: %s\n", e.what());
    return 1;
  }
}
