// tvp_trace — record, inspect, verify and convert trace files.
//
//   tvp_trace record  --out=FILE.tvpc [--config=FILE] [--seed=N]
//                     [--compress] [--block-records=N]
//       Generates the workload the config describes (benign + attacks)
//       and records it — records plus aggressor oracle — as a v2
//       corpus. Without --config, the standard paper campaign.
//   tvp_trace inspect --in=FILE.tvpc
//       Prints the footer: identity, totals, per-block index.
//   tvp_trace verify  --in=FILE.tvpc
//       Full integrity pass: every block CRC-checked and replayed.
//   tvp_trace convert --in=SRC --out=DST [--in-format=F] [--out-format=F]
//       Converts between text, binary v1 (.tvpt) and corpus (.tvpc);
//       formats default to the extensions (F: auto|text|tvpt|tvpc).
#include <cstdio>
#include <stdexcept>
#include <string>

#include "tvp/exp/config_io.hpp"
#include "tvp/exp/report.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/trace/corpus.hpp"
#include "tvp/trace/io.hpp"
#include "tvp/util/cli.hpp"

namespace {

using namespace tvp;

int usage(bool ok) {
  std::printf(
      "usage: tvp_trace COMMAND [options]\n"
      "commands:\n"
      "  record   --out=FILE.tvpc [--config=FILE] [--seed=N] [--compress]\n"
      "           [--block-records=N]   generate + record a workload corpus\n"
      "  inspect  --in=FILE.tvpc       print footer index and identity\n"
      "  verify   --in=FILE.tvpc       CRC-check every block\n"
      "  convert  --in=SRC --out=DST [--in-format=F] [--out-format=F]\n"
      "           F: auto|text|tvpt|tvpc (default auto = by extension)\n");
  return ok ? 0 : 2;
}

trace::TraceFormat parse_format(const std::string& name) {
  if (name == "auto") return trace::TraceFormat::kAuto;
  if (name == "text") return trace::TraceFormat::kText;
  if (name == "tvpt" || name == "binary") return trace::TraceFormat::kBinaryV1;
  if (name == "tvpc" || name == "corpus") return trace::TraceFormat::kCorpus;
  throw std::runtime_error("unknown trace format '" + name + "'");
}

const char* codec_name(trace::CorpusCodec codec) {
  return codec == trace::CorpusCodec::kZstd ? "zstd" : "raw";
}

void print_info(const trace::CorpusInfo& info, bool blocks) {
  std::printf("identity   %08x\n", info.footer_crc);
  std::printf("records    %llu\n",
              static_cast<unsigned long long>(info.total_records));
  std::printf("blocks     %zu\n", info.blocks.size());
  std::printf("aggressors %zu\n", info.aggressors.size());
  std::printf("victims    %zu\n", info.victims.size());
  if (!info.blocks.empty())
    std::printf("time range %llu .. %llu ps\n",
                static_cast<unsigned long long>(info.blocks.front().min_time_ps),
                static_cast<unsigned long long>(info.blocks.back().max_time_ps));
  if (!blocks) return;
  std::printf("%5s %12s %12s %8s %5s %10s\n", "block", "offset", "first_rec",
              "records", "codec", "crc");
  for (std::size_t b = 0; b < info.blocks.size(); ++b) {
    const auto& blk = info.blocks[b];
    std::printf("%5zu %12llu %12llu %8u %5s %10x\n", b,
                static_cast<unsigned long long>(blk.offset),
                static_cast<unsigned long long>(blk.first_record), blk.records,
                codec_name(blk.codec), blk.crc);
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Flags flags(argc, argv,
                      {"in", "out", "config", "seed", "compress",
                       "block-records", "in-format", "out-format", "help"});
    if (flags.get_bool("help") || flags.positional().empty())
      return usage(flags.get_bool("help"));
    const std::string command = flags.positional()[0];

    if (command == "record") {
      if (!flags.has("out")) return usage(false);
      exp::SimConfig config;
      if (flags.has("config")) {
        config = exp::load_sim_config(flags.get("config", ""));
      } else {
        exp::install_standard_campaign(config);
      }
      if (flags.has("seed")) {
        config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
        config.finalize();
      }
      trace::CorpusWriter::Options options;
      if (flags.has("block-records"))
        options.records_per_block =
            static_cast<std::size_t>(flags.get_int("block-records", 1 << 16));
      if (flags.get_bool("compress")) {
        if (!trace::corpus_zstd_available())
          throw std::runtime_error(
              "--compress needs zstd, which this build lacks");
        options.codec = trace::CorpusCodec::kZstd;
      }
      const std::string out = flags.get("out", "");
      const std::uint32_t identity = exp::record_corpus(config, out, options);
      const trace::CorpusInfo info = trace::read_corpus_info(out);
      std::printf("recorded %llu records to %s (identity %08x)\n",
                  static_cast<unsigned long long>(info.total_records),
                  out.c_str(), identity);
      return 0;
    }
    if (command == "inspect") {
      if (!flags.has("in")) return usage(false);
      print_info(trace::read_corpus_info(flags.get("in", "")), true);
      return 0;
    }
    if (command == "verify") {
      if (!flags.has("in")) return usage(false);
      const std::string in = flags.get("in", "");
      const trace::CorpusInfo info = trace::verify_corpus(in);
      std::printf("%s: ok\n", in.c_str());
      print_info(info, false);
      return 0;
    }
    if (command == "convert") {
      if (!flags.has("in") || !flags.has("out")) return usage(false);
      const std::string in = flags.get("in", "");
      const std::string out = flags.get("out", "");
      const auto records = trace::load_trace(
          in, parse_format(flags.get("in-format", "auto")));
      trace::save_trace(out, records,
                        parse_format(flags.get("out-format", "auto")));
      std::printf("converted %zu records: %s -> %s\n", records.size(),
                  in.c_str(), out.c_str());
      return 0;
    }
    std::fprintf(stderr, "tvp_trace: unknown command '%s'\n", command.c_str());
    return usage(false);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tvp_trace: %s\n", e.what());
    return 1;
  }
}
