// Unit tests for tvp::exp — the registry, runner, reporting helpers,
// and the security analysis (flood + verdict).
#include <gtest/gtest.h>

#include <cstdlib>

#include "tvp/dram/disturbance.hpp"
#include "tvp/exp/config_io.hpp"
#include "tvp/exp/report.hpp"
#include "tvp/exp/registry.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/exp/sweep.hpp"
#include "tvp/exp/verdict.hpp"
#include "tvp/mem/controller.hpp"
#include "tvp/mitigation/graphene.hpp"
#include "tvp/trace/source.hpp"

namespace tvp::exp {
namespace {

SimConfig fast_config() {
  SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 10.0;
  cfg.finalize();
  return cfg;
}

// ----------------------------------------------------------------- registry

TEST(Registry, CreatesAllNineTechniques) {
  const TechniqueConfig cfg;
  util::Rng rng(1);
  for (const auto t : hw::kAllTechniques) {
    const auto factory = make_factory(t, cfg);
    ASSERT_TRUE(factory != nullptr);
    const auto instance = factory(0, rng.fork());
    ASSERT_TRUE(instance != nullptr);
    EXPECT_EQ(std::string_view(instance->name()), hw::to_string(t));
    EXPECT_GE(instance->state_bits(), 0u);
  }
}

TEST(Registry, CounterThresholdIsQuarterOfFlipThreshold) {
  TechniqueConfig cfg;
  EXPECT_EQ(cfg.counter_threshold(), 34750u);
  cfg.flip_threshold = 100'000;
  EXPECT_EQ(cfg.counter_threshold(), 25'000u);
}

// ------------------------------------------------------------------- runner

TEST(Runner, DeterministicForSameSeed) {
  const SimConfig cfg = fast_config();
  const RunResult a = run_simulation(hw::Technique::kLoLiPRoMi, cfg);
  const RunResult b = run_simulation(hw::Technique::kLoLiPRoMi, cfg);
  EXPECT_EQ(a.stats.demand_acts, b.stats.demand_acts);
  EXPECT_EQ(a.stats.extra_acts, b.stats.extra_acts);
  EXPECT_EQ(a.stats.fp_extra_acts, b.stats.fp_extra_acts);
  EXPECT_EQ(a.flips, b.flips);
  EXPECT_EQ(a.records, b.records);
}

// Feeds @p records into a freshly built system for @p cfg, delivering
// them in chunks of @p batch (batch == 1 degenerates to on_record).
mem::ControllerStats feed_records(const SimConfig& cfg, std::size_t batch,
                                  const std::vector<trace::AccessRecord>& records,
                                  std::uint64_t* flips) {
  util::Rng rng(cfg.seed);
  (void)rng.fork();  // workload stream, unused: records are pre-drained
  util::Rng engine_rng = rng.fork();
  util::Rng controller_rng = rng.fork();
  mem::MitigationEngine engine(
      cfg.geometry.total_banks(),
      make_factory(hw::Technique::kLoLiPRoMi, cfg.technique), engine_rng);
  dram::DisturbanceModel disturbance(cfg.geometry.total_banks(),
                                     cfg.geometry.rows_per_bank,
                                     cfg.disturbance);
  mem::ControllerConfig controller_cfg;
  controller_cfg.geometry = cfg.geometry;
  controller_cfg.timing = cfg.timing;
  controller_cfg.refresh_policy = cfg.refresh_policy;
  mem::MemoryController controller(controller_cfg, engine, disturbance,
                                   controller_rng);
  if (batch <= 1) {
    for (const auto& r : records) controller.on_record(r);
  } else {
    for (std::size_t i = 0; i < records.size(); i += batch)
      controller.on_records(records.data() + i,
                            std::min(batch, records.size() - i));
  }
  controller.advance_to(cfg.duration_ps());
  *flips = disturbance.flips().size();
  return controller.stats();
}

/// Everything the batch-equivalence contract pins: the controller
/// counters plus the disturbance model's ground truth.
struct FeedOutcome {
  mem::ControllerStats stats;
  std::vector<dram::FlipEvent> flips;
  std::uint64_t activations = 0;
  std::uint64_t peak_q8 = 0;
};

/// Like feed_records, but parameterized over technique, batch size and
/// bank_jobs, with the aggressor oracle wired for FPR accounting.
/// batch == 0 selects the record-at-a-time on_record loop (the
/// reference); any other batch delivers through on_records.
FeedOutcome feed_outcome(const SimConfig& cfg,
                         const mem::BankMitigationFactory& factory,
                         std::size_t batch, std::size_t bank_jobs,
                         const std::unordered_set<std::uint64_t>* aggressors,
                         const std::vector<trace::AccessRecord>& records) {
  util::Rng rng(cfg.seed);
  (void)rng.fork();  // workload stream, unused: records are pre-drained
  util::Rng engine_rng = rng.fork();
  util::Rng controller_rng = rng.fork();
  mem::MitigationEngine engine(cfg.geometry.total_banks(), factory, engine_rng);
  dram::DisturbanceModel disturbance(cfg.geometry.total_banks(),
                                     cfg.geometry.rows_per_bank,
                                     cfg.disturbance);
  mem::ControllerConfig controller_cfg;
  controller_cfg.geometry = cfg.geometry;
  controller_cfg.timing = cfg.timing;
  controller_cfg.refresh_policy = cfg.refresh_policy;
  controller_cfg.bank_jobs = bank_jobs;
  mem::MemoryController controller(controller_cfg, engine, disturbance,
                                   controller_rng);
  if (aggressors) {
    controller.set_aggressor_oracle(
        [aggressors](dram::BankId bank, dram::RowId row) {
          return aggressors->count((static_cast<std::uint64_t>(bank) << 32) |
                                   row) != 0;
        });
  }
  if (batch == 0) {
    for (const auto& r : records) controller.on_record(r);
  } else {
    for (std::size_t i = 0; i < records.size(); i += batch)
      controller.on_records(records.data() + i,
                            std::min(batch, records.size() - i));
  }
  controller.advance_to(cfg.duration_ps());
  FeedOutcome out;
  out.stats = controller.stats();
  out.flips = disturbance.flips();
  out.activations = disturbance.activations();
  out.peak_q8 = disturbance.peak_disturbance_q8();
  return out;
}

TEST(Runner, BatchedDeliveryIsBitIdenticalToRecordAtATime) {
  // The batched pull path must produce the same record sequence and the
  // same RNG draw order as record-at-a-time delivery — identical stats
  // and identical flip history, for any batch size.
  SimConfig cfg = fast_config();
  trace::AttackConfig attack;
  attack.victims = {1000, 5000};
  attack.rows_per_bank = cfg.geometry.rows_per_bank;
  cfg.workload.attacks.push_back(attack);
  cfg.finalize();
  util::Rng workload_rng = util::Rng(cfg.seed).fork();
  const auto records = trace::drain(*build_workload(cfg, workload_rng));
  ASSERT_FALSE(records.empty());

  std::uint64_t flips1 = 0;
  const auto one = feed_records(cfg, 1, records, &flips1);
  for (const std::size_t batch : {7ul, 256ul, records.size()}) {
    std::uint64_t flips_b = 0;
    const auto batched = feed_records(cfg, batch, records, &flips_b);
    EXPECT_EQ(one.demand_acts, batched.demand_acts) << "batch " << batch;
    EXPECT_EQ(one.extra_acts, batched.extra_acts) << "batch " << batch;
    EXPECT_EQ(one.fp_extra_acts, batched.fp_extra_acts) << "batch " << batch;
    EXPECT_EQ(one.triggers, batched.triggers) << "batch " << batch;
    EXPECT_EQ(one.reads, batched.reads) << "batch " << batch;
    EXPECT_EQ(flips1, flips_b) << "batch " << batch;
  }
}

TEST(Runner, EveryTechniqueBatchAndShardingAreBitIdentical) {
  // The full batch-equivalence contract: for every technique (the
  // unprotected baseline, the paper's nine, and Graphene), delivery via
  // on_records — at any batch size, serial or per-bank sharded — must be
  // bit-identical to a record-at-a-time on_record loop: every counter
  // (including the FPR / ground-truth accounting driven by the
  // aggressor oracle), the phase histogram, first_extra_act_at, and the
  // exact flip-event history.
  // A deliberately tiny system — 99 full simulations run below. The
  // refresh interval length (tREFI) matches DDR4 so per-interval ACT
  // budgets and *PRoMi weight schedules keep their real shape; thresholds
  // are scaled down so deterministic techniques trigger and real flips
  // land within the short run.
  SimConfig cfg;
  cfg.geometry.banks_per_rank = 4;
  cfg.geometry.rows_per_bank = 16384;
  cfg.timing.t_refw_ps = 2'000'000'000;  // 2 ms window
  cfg.timing.refresh_intervals = 256;    // keeps tREFI at ~7.8 us
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 5.0;
  cfg.technique.flip_threshold = 4000;   // counter_threshold() == 1000
  cfg.disturbance.flip_threshold = 3000;
  trace::AttackConfig attack;
  attack.victims = {1000, 5000};
  attack.rows_per_bank = cfg.geometry.rows_per_bank;
  attack.interarrival_ps = 180'000;  // 4 * tRC: ~11 K attack ACTs
  cfg.workload.attacks.push_back(attack);
  cfg.finalize();

  std::unordered_set<std::uint64_t> aggressors;
  util::Rng workload_rng = util::Rng(cfg.seed).fork();
  const auto records =
      trace::drain(*build_workload(cfg, workload_rng, &aggressors));
  ASSERT_FALSE(records.empty());
  ASSERT_FALSE(aggressors.empty());

  std::vector<std::pair<std::string, mem::BankMitigationFactory>> variants;
  variants.emplace_back("none", [](dram::BankId, util::Rng) {
    return std::make_unique<mem::NoMitigation>();
  });
  for (const auto t : hw::kAllTechniques)
    variants.emplace_back(std::string(hw::to_string(t)),
                          make_factory(t, cfg.technique));
  mitigation::GrapheneConfig graphene_cfg;
  graphene_cfg.rows_per_bank = cfg.geometry.rows_per_bank;
  graphene_cfg.row_threshold = cfg.technique.counter_threshold();
  variants.emplace_back("Graphene",
                        mitigation::make_graphene_factory(graphene_cfg));

  for (const auto& [name, factory] : variants) {
    const FeedOutcome base =
        feed_outcome(cfg, factory, 0, 1, &aggressors, records);
    for (const std::size_t batch : {1ul, 7ul, 256ul, 4096ul}) {
      for (const std::size_t jobs : {1ul, 8ul}) {
        const FeedOutcome got =
            feed_outcome(cfg, factory, batch, jobs, &aggressors, records);
        const std::string label =
            name + " batch " + std::to_string(batch) + " jobs " +
            std::to_string(jobs);
        EXPECT_EQ(base.stats.demand_acts, got.stats.demand_acts) << label;
        EXPECT_EQ(base.stats.extra_acts, got.stats.extra_acts) << label;
        EXPECT_EQ(base.stats.fp_extra_acts, got.stats.fp_extra_acts) << label;
        EXPECT_EQ(base.stats.triggers, got.stats.triggers) << label;
        EXPECT_EQ(base.stats.reads, got.stats.reads) << label;
        EXPECT_EQ(base.stats.writes, got.stats.writes) << label;
        EXPECT_EQ(base.stats.delayed_acts, got.stats.delayed_acts) << label;
        EXPECT_EQ(base.stats.refresh_intervals, got.stats.refresh_intervals)
            << label;
        EXPECT_EQ(base.stats.first_extra_act_at, got.stats.first_extra_act_at)
            << label;
        EXPECT_EQ(base.stats.extra_acts_by_phase, got.stats.extra_acts_by_phase)
            << label;
        EXPECT_EQ(base.activations, got.activations) << label;
        EXPECT_EQ(base.peak_q8, got.peak_q8) << label;
        ASSERT_EQ(base.flips.size(), got.flips.size()) << label;
        for (std::size_t f = 0; f < base.flips.size(); ++f) {
          EXPECT_EQ(base.flips[f].bank, got.flips[f].bank) << label;
          EXPECT_EQ(base.flips[f].row, got.flips[f].row) << label;
          EXPECT_EQ(base.flips[f].at_activation, got.flips[f].at_activation)
              << label;
          EXPECT_EQ(base.flips[f].interval, got.flips[f].interval) << label;
        }
      }
    }
  }
}

TEST(Runner, EveryTechniqueBufferedDrawsMatchPerCallDraws) {
  // The batched-RNG contract end to end: pre-drawing uniform words into
  // a buffer (TVP_RNG_BUFFER > 1) must leave every technique's trigger
  // sequence bit-identical to per-call draws (TVP_RNG_BUFFER=1), at
  // every batch size. Same tiny system as the batch-equivalence test.
  SimConfig cfg;
  cfg.geometry.banks_per_rank = 4;
  cfg.geometry.rows_per_bank = 16384;
  cfg.timing.t_refw_ps = 2'000'000'000;  // 2 ms window
  cfg.timing.refresh_intervals = 256;    // keeps tREFI at ~7.8 us
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 5.0;
  cfg.technique.flip_threshold = 4000;
  cfg.disturbance.flip_threshold = 3000;
  trace::AttackConfig attack;
  attack.victims = {1000, 5000};
  attack.rows_per_bank = cfg.geometry.rows_per_bank;
  attack.interarrival_ps = 180'000;
  cfg.workload.attacks.push_back(attack);
  cfg.finalize();

  std::unordered_set<std::uint64_t> aggressors;
  util::Rng workload_rng = util::Rng(cfg.seed).fork();
  const auto records =
      trace::drain(*build_workload(cfg, workload_rng, &aggressors));
  ASSERT_FALSE(records.empty());

  std::vector<std::pair<std::string, mem::BankMitigationFactory>> variants;
  variants.emplace_back("none", [](dram::BankId, util::Rng) {
    return std::make_unique<mem::NoMitigation>();
  });
  for (const auto t : hw::kAllTechniques)
    variants.emplace_back(std::string(hw::to_string(t)),
                          make_factory(t, cfg.technique));
  mitigation::GrapheneConfig graphene_cfg;
  graphene_cfg.rows_per_bank = cfg.geometry.rows_per_bank;
  graphene_cfg.row_threshold = cfg.technique.counter_threshold();
  variants.emplace_back("Graphene",
                        mitigation::make_graphene_factory(graphene_cfg));

  for (const auto& [name, factory] : variants) {
    ASSERT_EQ(setenv("TVP_RNG_BUFFER", "1", 1), 0);  // per-call draws
    const FeedOutcome base =
        feed_outcome(cfg, factory, 1, 1, &aggressors, records);
    for (const char* capacity : {"256", "4096"}) {
      ASSERT_EQ(setenv("TVP_RNG_BUFFER", capacity, 1), 0);
      for (const std::size_t batch : {1ul, 7ul, 256ul, 4096ul}) {
        const FeedOutcome got =
            feed_outcome(cfg, factory, batch, 1, &aggressors, records);
        const std::string label = name + " rng_buffer " + capacity +
                                  " batch " + std::to_string(batch);
        EXPECT_EQ(base.stats.demand_acts, got.stats.demand_acts) << label;
        EXPECT_EQ(base.stats.extra_acts, got.stats.extra_acts) << label;
        EXPECT_EQ(base.stats.fp_extra_acts, got.stats.fp_extra_acts) << label;
        EXPECT_EQ(base.stats.triggers, got.stats.triggers) << label;
        EXPECT_EQ(base.stats.first_extra_act_at, got.stats.first_extra_act_at)
            << label;
        EXPECT_EQ(base.stats.extra_acts_by_phase, got.stats.extra_acts_by_phase)
            << label;
        EXPECT_EQ(base.activations, got.activations) << label;
        EXPECT_EQ(base.peak_q8, got.peak_q8) << label;
        ASSERT_EQ(base.flips.size(), got.flips.size()) << label;
        for (std::size_t f = 0; f < base.flips.size(); ++f) {
          EXPECT_EQ(base.flips[f].bank, got.flips[f].bank) << label;
          EXPECT_EQ(base.flips[f].row, got.flips[f].row) << label;
          EXPECT_EQ(base.flips[f].at_activation, got.flips[f].at_activation)
              << label;
        }
      }
    }
    unsetenv("TVP_RNG_BUFFER");
  }
}

TEST(Runner, SeedChangesTheRun) {
  SimConfig cfg = fast_config();
  const RunResult a = run_simulation(hw::Technique::kPara, cfg);
  cfg.seed = 999;
  const RunResult b = run_simulation(hw::Technique::kPara, cfg);
  EXPECT_NE(a.stats.demand_acts, b.stats.demand_acts);
}

TEST(Runner, BenignRateLandsNearTarget) {
  SimConfig cfg = fast_config();
  const RunResult r = run_simulation(hw::Technique::kPara, cfg);
  // 10 acts/interval/bank x 8192 intervals x 2 banks, +/- 10%.
  const double expected = 10.0 * 8192 * 2;
  EXPECT_NEAR(static_cast<double>(r.stats.demand_acts), expected,
              expected * 0.1);
}

TEST(Runner, UnprotectedAttackFlipsVictim) {
  SimConfig cfg = fast_config();
  cfg.windows = 2;
  cfg.workload.benign_acts_per_interval_per_bank = 0;
  cfg.technique.para_p = 0.0;  // no mitigation
  util::Rng rng(3);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 24;
  cfg.workload.attacks = {attack};
  cfg.finalize();
  const RunResult r = run_simulation(hw::Technique::kPara, cfg);
  EXPECT_GT(r.flips, 0u);
  EXPECT_GT(r.victim_flips, 0u);
}

TEST(Runner, EveryTechniqueStopsTheAttack) {
  SimConfig cfg = fast_config();
  cfg.windows = 2;
  cfg.workload.benign_acts_per_interval_per_bank = 0;
  util::Rng rng(3);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 24;
  cfg.workload.attacks = {attack};
  cfg.finalize();
  for (const auto t : hw::kAllTechniques) {
    const RunResult r = run_simulation(t, cfg);
    EXPECT_EQ(r.flips, 0u) << r.technique;
  }
}

TEST(Runner, OracleMakesAttackTriggersTruePositives) {
  SimConfig cfg = fast_config();
  cfg.workload.benign_acts_per_interval_per_bank = 0;
  util::Rng rng(5);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 24;
  cfg.workload.attacks = {attack};
  cfg.finalize();
  const RunResult r = run_simulation(hw::Technique::kLoPRoMi, cfg);
  EXPECT_GT(r.stats.extra_acts, 0u);
  // Attack-only traffic: every trigger suspects a true aggressor.
  EXPECT_EQ(r.stats.fp_extra_acts, 0u);
  EXPECT_DOUBLE_EQ(r.fpr_pct(), 0.0);
}

TEST(Runner, StateBytesReported) {
  const SimConfig cfg = fast_config();
  EXPECT_DOUBLE_EQ(run_simulation(hw::Technique::kLiPRoMi, cfg).state_bytes_per_bank,
                   120.0);
  EXPECT_NEAR(run_simulation(hw::Technique::kCaPRoMi, cfg).state_bytes_per_bank,
              376.0, 1.0);
}

TEST(Runner, SeedSweepAggregates) {
  SimConfig cfg = fast_config();
  const SeedSweepResult sweep = run_seed_sweep(hw::Technique::kPara, cfg, 3);
  EXPECT_EQ(sweep.overhead_pct.count(), 3u);
  EXPECT_GT(sweep.overhead_pct.mean(), 0.0);
  EXPECT_EQ(sweep.technique, "PARA");
  EXPECT_THROW(run_seed_sweep(hw::Technique::kPara, cfg, 0),
               std::invalid_argument);
}

TEST(Runner, SeedSweepRespectsBaseSeed) {
  // Regression: the sweep used to hardcode seeds 1000+s, ignoring
  // config.seed entirely. Seed s of the sweep must now run at
  // config.seed + s.
  SimConfig cfg = fast_config();
  cfg.seed = 42;
  const RunResult direct = run_simulation(hw::Technique::kPara, cfg);
  const SeedSweepResult one = run_seed_sweep(hw::Technique::kPara, cfg, 1);
  EXPECT_EQ(one.overhead_pct.count(), 1u);
  EXPECT_DOUBLE_EQ(one.overhead_pct.mean(), direct.overhead_pct());
  EXPECT_EQ(one.total_flips, direct.flips);

  SimConfig other = cfg;
  other.seed = 4242;
  const SeedSweepResult a = run_seed_sweep(hw::Technique::kPara, cfg, 2);
  const SeedSweepResult b = run_seed_sweep(hw::Technique::kPara, other, 2);
  EXPECT_NE(a.overhead_pct.mean(), b.overhead_pct.mean());
}

TEST(Runner, ParallelSweepMatchesSequential) {
  // The parallel grid must be bit-identical to the sequential run:
  // results land in per-seed slots and are reduced in seed order, so
  // the float-op sequence is the same for every TVP_JOBS value.
  SimConfig cfg = fast_config();
  cfg.seed = 7;
  ASSERT_EQ(setenv("TVP_JOBS", "1", 1), 0);
  const SeedSweepResult seq = run_seed_sweep(hw::Technique::kLoLiPRoMi, cfg, 4);
  ASSERT_EQ(setenv("TVP_JOBS", "4", 1), 0);
  const SeedSweepResult par = run_seed_sweep(hw::Technique::kLoLiPRoMi, cfg, 4);
  unsetenv("TVP_JOBS");

  EXPECT_EQ(par.jobs, 4u);
  EXPECT_EQ(seq.jobs, 1u);
  EXPECT_EQ(par.overhead_pct.count(), seq.overhead_pct.count());
  EXPECT_EQ(par.overhead_pct.mean(), seq.overhead_pct.mean());
  EXPECT_EQ(par.overhead_pct.stddev(), seq.overhead_pct.stddev());
  EXPECT_EQ(par.overhead_pct.min(), seq.overhead_pct.min());
  EXPECT_EQ(par.overhead_pct.max(), seq.overhead_pct.max());
  EXPECT_EQ(par.fpr_pct.count(), seq.fpr_pct.count());
  EXPECT_EQ(par.fpr_pct.mean(), seq.fpr_pct.mean());
  EXPECT_EQ(par.fpr_pct.stddev(), seq.fpr_pct.stddev());
  EXPECT_EQ(par.total_flips, seq.total_flips);
  EXPECT_EQ(par.total_victim_flips, seq.total_victim_flips);
  EXPECT_EQ(par.state_bytes_per_bank, seq.state_bytes_per_bank);
}

TEST(Sweep, ParallelParamSweepMatchesSequential) {
  const auto file = util::KeyValueFile::parse(to_config_text(fast_config()));
  const std::vector<std::string> values = {"16", "32"};
  const std::vector<hw::Technique> techs = {hw::Technique::kPara,
                                            hw::Technique::kLoLiPRoMi};
  ASSERT_EQ(setenv("TVP_JOBS", "1", 1), 0);
  const SweepResult seq =
      run_param_sweep(file, "technique.history_entries", values, techs);
  ASSERT_EQ(setenv("TVP_JOBS", "3", 1), 0);
  const SweepResult par =
      run_param_sweep(file, "technique.history_entries", values, techs);
  unsetenv("TVP_JOBS");

  ASSERT_EQ(par.cells.size(), seq.cells.size());
  for (std::size_t i = 0; i < seq.cells.size(); ++i) {
    EXPECT_EQ(par.cells[i].value, seq.cells[i].value);
    EXPECT_EQ(par.cells[i].result.stats.demand_acts,
              seq.cells[i].result.stats.demand_acts);
    EXPECT_EQ(par.cells[i].result.stats.extra_acts,
              seq.cells[i].result.stats.extra_acts);
    EXPECT_EQ(par.cells[i].result.flips, seq.cells[i].result.flips);
    EXPECT_EQ(par.cells[i].result.overhead_pct(),
              seq.cells[i].result.overhead_pct());
  }
}

TEST(Runner, BuildWorkloadCollectsAggressors) {
  SimConfig cfg = fast_config();
  util::Rng attack_rng(7);
  auto attack = trace::make_multi_aggressor_attack(
      1, cfg.geometry.rows_per_bank, 2, attack_rng);
  cfg.workload.attacks = {attack};
  cfg.finalize();
  util::Rng rng(9);
  std::unordered_set<std::uint64_t> aggressors;
  auto source = build_workload(cfg, rng, &aggressors);
  EXPECT_EQ(aggressors.size(), 4u);  // 2 victims x 2 neighbours
  EXPECT_TRUE(source->next().has_value());
}

TEST(Runner, CacheFrontendModeRuns) {
  SimConfig cfg = fast_config();
  cfg.workload.model = BenignModel::kCacheFrontend;
  cfg.workload.benign_acts_per_interval_per_bank = 5.0;
  cfg.finalize();
  const RunResult r = run_simulation(hw::Technique::kPara, cfg);
  EXPECT_GT(r.stats.demand_acts, 0u);
}

TEST(Runner, ConfigValidation) {
  SimConfig cfg = fast_config();
  cfg.windows = 0;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
  cfg = fast_config();
  trace::AttackConfig bad;
  bad.victims = {1};
  bad.rows_per_bank = cfg.geometry.rows_per_bank;
  bad.bank = 99;
  cfg.workload.attacks = {bad};
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
}

TEST(Runner, ApplyScale) {
  SimConfig cfg;
  apply_scale(cfg, true);
  EXPECT_EQ(cfg.geometry.total_banks(), 16u);
  EXPECT_EQ(cfg.windows, 6u);
  apply_scale(cfg, false);
  EXPECT_EQ(cfg.geometry.total_banks(), 4u);
  EXPECT_EQ(cfg.windows, 2u);
}

// ------------------------------------------------------------------ config

TEST(ConfigIo, AppliesEveryKeyClass) {
  const auto file = util::KeyValueFile::parse(
      "geometry.banks = 2\n"
      "geometry.rows_per_bank = 65536\n"
      "timing.preset = ddr5\n"
      "windows = 3\n"
      "seed = 99\n"
      "refresh.policy = random\n"
      "act_n.radius = 2\n"
      "disturbance.flip_threshold = 50000\n"
      "workload.benign_rate = 7.5\n"
      "workload.model = uniform\n"
      "technique.pbase_exp = 22\n"
      "technique.history_entries = 16\n"
      "attack.count = 1\n"
      "attack.0.pattern = flood\n"
      "attack.0.bank = 1\n"
      "attack.0.victims = 4096\n"
      "attack.0.rate = 100\n");
  SimConfig config;
  apply_config(config, file);
  EXPECT_EQ(config.geometry.total_banks(), 2u);
  EXPECT_EQ(config.geometry.rows_per_bank, 65536u);
  EXPECT_EQ(config.timing.clock_hz, 2'400'000'000u);
  EXPECT_EQ(config.windows, 3u);
  EXPECT_EQ(config.seed, 99u);
  EXPECT_EQ(config.refresh_policy, dram::RefreshPolicy::kRandom);
  EXPECT_EQ(config.act_n_radius, 2u);
  EXPECT_EQ(config.disturbance.flip_threshold, 50000u);
  EXPECT_EQ(config.technique.flip_threshold, 50000u);
  EXPECT_EQ(config.workload.model, BenignModel::kUniformRandom);
  EXPECT_EQ(config.technique.pbase_exp, 22u);
  EXPECT_EQ(config.technique.params.history_entries, 16u);
  ASSERT_EQ(config.workload.attacks.size(), 1u);
  EXPECT_EQ(config.workload.attacks[0].pattern, trace::AttackPattern::kFlood);
  EXPECT_EQ(config.workload.attacks[0].bank, 1u);
  EXPECT_EQ(config.workload.attacks[0].victims,
            std::vector<dram::RowId>{4096});
  EXPECT_EQ(config.workload.attacks[0].interarrival_ps,
            config.timing.t_refi_ps() / 100);
}

TEST(ConfigIo, CapromiCooldownReachesTheTechnique) {
  SimConfig config;
  apply_config(config, util::KeyValueFile::parse(
                           "technique.capromi_cooldown = 128\n"));
  EXPECT_EQ(config.technique.capromi_cooldown, 128u);
  // And the registry forwards it into the CaPRoMi instance (observable
  // through behaviour: the suppressed counter activates under hammering).
  const auto factory = make_factory(hw::Technique::kCaPRoMi, config.technique);
  auto instance = factory(0, util::Rng(1));
  EXPECT_STREQ(instance->name(), "CaPRoMi");
}

TEST(ConfigIo, RandomVictimsAndUnknownKeys) {
  SimConfig config;
  apply_config(config, util::KeyValueFile::parse(
                           "attack.count = 1\nattack.0.victims = ~5\n"));
  ASSERT_EQ(config.workload.attacks.size(), 1u);
  EXPECT_EQ(config.workload.attacks[0].victims.size(), 5u);

  EXPECT_THROW(apply_config(config, util::KeyValueFile::parse("typo.key = 1\n")),
               std::invalid_argument);
  EXPECT_THROW(
      apply_config(config, util::KeyValueFile::parse("timing.preset = ddr9\n")),
      std::invalid_argument);
  EXPECT_THROW(apply_config(config, util::KeyValueFile::parse(
                                        "attack.count = 1\n"
                                        "attack.0.rate = 0\n")),
               std::invalid_argument);
}

TEST(ConfigIo, SampleConfigsLoadAndRun) {
  for (const char* name : {"paper_campaign.cfg", "modern_dram.cfg",
                           "half_double.cfg"}) {
    const std::string path = std::string(TVP_SOURCE_DIR) + "/configs/" + name;
    SimConfig config = load_sim_config(path);
    config.windows = 1;  // keep the smoke test fast
    config.finalize();
    const auto r = run_simulation(hw::Technique::kLoLiPRoMi, config);
    EXPECT_GT(r.stats.demand_acts, 0u) << path;
    EXPECT_EQ(r.flips, 0u) << path;
  }
}

TEST(ConfigIo, RoundTripPreservesTheExperiment) {
  SimConfig original;
  install_standard_campaign(original);
  original.windows = 3;
  original.act_n_radius = 2;
  const std::string text = to_config_text(original);
  SimConfig reloaded;
  apply_config(reloaded, util::KeyValueFile::parse(text));
  EXPECT_EQ(reloaded.windows, original.windows);
  EXPECT_EQ(reloaded.act_n_radius, original.act_n_radius);
  ASSERT_EQ(reloaded.workload.attacks.size(), original.workload.attacks.size());
  for (std::size_t i = 0; i < original.workload.attacks.size(); ++i) {
    EXPECT_EQ(reloaded.workload.attacks[i].victims,
              original.workload.attacks[i].victims);
    EXPECT_EQ(reloaded.workload.attacks[i].interarrival_ps,
              original.workload.attacks[i].interarrival_ps);
  }
  // Same config file -> bit-identical run.
  const auto a = run_simulation(hw::Technique::kPara, original);
  const auto b = run_simulation(hw::Technique::kPara, reloaded);
  EXPECT_EQ(a.stats.demand_acts, b.stats.demand_acts);
  EXPECT_EQ(a.stats.extra_acts, b.stats.extra_acts);
}

// ------------------------------------------------------------------- sweep

TEST(Sweep, MatrixShapeAndDeterminism) {
  SimConfig base;
  base.geometry.banks_per_rank = 2;
  base.windows = 1;
  base.workload.benign_acts_per_interval_per_bank = 8;
  base.finalize();
  const auto file = util::KeyValueFile::parse(to_config_text(base));
  const auto sweep = run_param_sweep(
      file, "technique.history_entries", {"8", "32"},
      {hw::Technique::kLiPRoMi, hw::Technique::kPara});
  EXPECT_EQ(sweep.values.size(), 2u);
  EXPECT_EQ(sweep.techniques.size(), 2u);
  EXPECT_EQ(sweep.cells.size(), 4u);
  // PARA ignores the swept key: its two cells are identical.
  EXPECT_EQ(sweep.at(0, 1).stats.extra_acts, sweep.at(1, 1).stats.extra_acts);
  // LiPRoMi with a bigger table never does worse on this workload.
  EXPECT_LE(sweep.at(1, 0).overhead_pct(), sweep.at(0, 0).overhead_pct() + 1e-9);
  // Formatters cover every cell.
  const auto table = sweep_overhead_table(sweep);
  EXPECT_EQ(table.rows(), 2u);
  const std::string csv = sweep_to_csv(sweep);
  EXPECT_NE(csv.find("technique.history_entries,8,LiPRoMi"), std::string::npos);
  EXPECT_NE(csv.find("PARA"), std::string::npos);
}

TEST(Sweep, RejectsBadInput) {
  const util::KeyValueFile base;
  EXPECT_THROW(run_param_sweep(base, "windows", {}, {hw::Technique::kPara}),
               std::invalid_argument);
  EXPECT_THROW(run_param_sweep(base, "windows", {"1"}, {}),
               std::invalid_argument);
  EXPECT_THROW(run_param_sweep(base, "not.a.key", {"1"},
                               {hw::Technique::kPara}),
               std::invalid_argument);
}

// ------------------------------------------------------------------- report

TEST(Report, StandardCampaignRampsAggressors) {
  SimConfig cfg;
  install_standard_campaign(cfg);
  ASSERT_EQ(cfg.workload.attacks.size(), 3u);  // 4 banks: 3 attacked + control
  EXPECT_EQ(cfg.workload.attacks[0].victims.size(), 1u);
  EXPECT_EQ(cfg.workload.attacks[1].victims.size(), 4u);
  EXPECT_EQ(cfg.workload.attacks[2].victims.size(), 10u);
  for (const auto& a : cfg.workload.attacks)
    EXPECT_EQ(a.interarrival_ps, cfg.timing.t_refi_ps() / 20);
}

TEST(Report, FormatMuSigma) {
  util::RunningStat s;
  s.add(0.1);
  s.add(0.2);
  const std::string text = format_mu_sigma(s);
  EXPECT_NE(text.find("0.15"), std::string::npos);
  EXPECT_NE(text.find("%"), std::string::npos);
}

TEST(Report, SeedsFromEnvFallback) {
  // No env var set by the test harness: fallback applies.
  EXPECT_EQ(seeds_from_env(7), 7u);
}

// ------------------------------------------------------------------ verdict

TEST(Verdict, ReproducesTableIIIColumn) {
  const TechniqueConfig cfg;
  const bool expected_vulnerable[] = {
      true,   // PARA
      false,  // ProHit
      true,   // MRLoc
      false,  // TWiCe
      false,  // CRA
      true,   // LiPRoMi
      false,  // LoPRoMi
      false,  // LoLiPRoMi
      false,  // CaPRoMi
  };
  const hw::Technique order[] = {
      hw::Technique::kPara,     hw::Technique::kProHit,
      hw::Technique::kMrLoc,    hw::Technique::kTwice,
      hw::Technique::kCra,      hw::Technique::kLiPRoMi,
      hw::Technique::kLoPRoMi,  hw::Technique::kLoLiPRoMi,
      hw::Technique::kCaPRoMi,
  };
  for (std::size_t i = 0; i < 9; ++i) {
    const auto v = security_verdict(order[i], cfg, false);
    EXPECT_EQ(v.vulnerable, expected_vulnerable[i]) << v.technique << ": "
                                                    << v.reason;
  }
}

TEST(Verdict, FlipsForceVulnerable) {
  const TechniqueConfig cfg;
  const auto v = security_verdict(hw::Technique::kTwice, cfg, true);
  EXPECT_TRUE(v.vulnerable);
  EXPECT_NE(std::string_view(v.reason).find("flips"), std::string_view::npos);
}

TEST(Verdict, StaticTechniquesAreFlat) {
  const TechniqueConfig cfg;
  EXPECT_NEAR(security_verdict(hw::Technique::kPara, cfg, false).escalation,
              1.0, 0.01);
  EXPECT_NEAR(security_verdict(hw::Technique::kMrLoc, cfg, false).escalation,
              1.0, 0.01);
  EXPECT_GT(security_verdict(hw::Technique::kLoPRoMi, cfg, false).escalation,
            10.0);
}

TEST(Verdict, LinearRampHasHighestMissProbability) {
  const TechniqueConfig cfg;
  const double li = security_verdict(hw::Technique::kLiPRoMi, cfg, false).p_miss;
  const double lo = security_verdict(hw::Technique::kLoPRoMi, cfg, false).p_miss;
  const double ca = security_verdict(hw::Technique::kCaPRoMi, cfg, false).p_miss;
  EXPECT_GT(li, kMissProbThreshold);
  EXPECT_LT(lo, kMissProbThreshold);
  EXPECT_LT(ca, kMissProbThreshold);
  EXPECT_GT(li, 3 * lo);  // the log ramp is clearly safer
  EXPECT_DOUBLE_EQ(
      security_verdict(hw::Technique::kTwice, cfg, false).p_miss, 0.0);
}

TEST(Verdict, SaveScheduleShapes) {
  const TechniqueConfig cfg;
  const auto para = victim_save_schedule(hw::Technique::kPara, cfg, 1000);
  EXPECT_DOUBLE_EQ(para.front(), cfg.para_p / 2);
  EXPECT_DOUBLE_EQ(para.back(), cfg.para_p / 2);
  const auto li = victim_save_schedule(hw::Technique::kLiPRoMi, cfg, 1000);
  EXPECT_DOUBLE_EQ(li[0], 0.0);  // weight 0 in the first interval
  EXPECT_GT(li[999], li[200]);
  const auto twice = victim_save_schedule(hw::Technique::kTwice, cfg, 40000);
  EXPECT_DOUBLE_EQ(twice[34749], 1.0);  // counter threshold
  EXPECT_DOUBLE_EQ(twice[0], 0.0);
}

TEST(Flood, DeterministicTechniquesRespondAtThreshold) {
  const TechniqueConfig cfg;
  FloodOptions opts;
  opts.trials = 4;
  for (const auto t : {hw::Technique::kTwice, hw::Technique::kCra}) {
    const auto m = measure_flood(t, cfg, opts);
    EXPECT_EQ(m.no_response, 0u);
    EXPECT_DOUBLE_EQ(m.first_response_acts.mean(), 34750.0)
        << hw::to_string(t);
  }
}

TEST(Flood, AllTiVaPRoMiRespondBeforeHalfThreshold) {
  // Section IV: "all of them are sooner than 69 K activations."
  const TechniqueConfig cfg;
  FloodOptions opts;
  opts.trials = 16;
  for (const auto t : hw::kTiVaPRoMiVariants) {
    const auto m = measure_flood(t, cfg, opts);
    EXPECT_LT(m.distribution.percentile(0.5), cfg.flip_threshold / 2.0)
        << hw::to_string(t);
  }
}

TEST(Flood, LinearIsTheSlowestResponder) {
  const TechniqueConfig cfg;
  FloodOptions opts;
  opts.trials = 16;
  const double li = measure_flood(hw::Technique::kLiPRoMi, cfg, opts)
                        .distribution.percentile(0.5);
  const double lo = measure_flood(hw::Technique::kLoPRoMi, cfg, opts)
                        .distribution.percentile(0.5);
  EXPECT_GT(li, lo);
}

TEST(Flood, RandomPhaseIsMuchFaster) {
  const TechniqueConfig cfg;
  FloodOptions aligned;
  aligned.trials = 16;
  FloodOptions random_phase = aligned;
  random_phase.phase_aligned = false;
  const double a = measure_flood(hw::Technique::kLoPRoMi, cfg, aligned)
                       .distribution.percentile(0.5);
  const double r = measure_flood(hw::Technique::kLoPRoMi, cfg, random_phase)
                       .distribution.percentile(0.5);
  EXPECT_LT(r, a);  // a blind attacker triggers the defence sooner
}

TEST(Flood, InvalidOptionsThrow) {
  const TechniqueConfig cfg;
  FloodOptions opts;
  opts.trials = 0;
  EXPECT_THROW(measure_flood(hw::Technique::kPara, cfg, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace tvp::exp
