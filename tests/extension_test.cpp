// Tests for the library's extensions beyond the paper: shaped weighting,
// the Graphene baseline, many-sided / half-double attack patterns, and
// the radius-2 act_n command.
#include <gtest/gtest.h>

#include "tvp/core/tivapromi.hpp"
#include "tvp/core/weighting.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/mitigation/cat.hpp"
#include "tvp/mitigation/graphene.hpp"
#include "tvp/mitigation/prac.hpp"
#include "tvp/mitigation/trr.hpp"
#include "tvp/trace/attack.hpp"

namespace tvp {
namespace {

// ------------------------------------------------------------ weight shapes

TEST(WeightShapes, SqrtWeightExactCeiling) {
  EXPECT_EQ(core::sqrt_weight(0, 8192), 0u);
  EXPECT_EQ(core::sqrt_weight(1, 8192), 91u);    // ceil(sqrt(8192)) = 91
  EXPECT_EQ(core::sqrt_weight(2, 8192), 128u);   // sqrt(16384) = 128 exactly
  EXPECT_EQ(core::sqrt_weight(8192, 8192), 8192u);
}

TEST(WeightShapes, QuadraticWeightExactCeiling) {
  EXPECT_EQ(core::quadratic_weight(0, 8192), 0u);
  EXPECT_EQ(core::quadratic_weight(1, 8192), 1u);   // ceil(1/8192)
  EXPECT_EQ(core::quadratic_weight(91, 8192), 2u);  // ceil(8281/8192)
  EXPECT_EQ(core::quadratic_weight(8192, 8192), 8192u);
}

// Property: shapes agree at the endpoints and order as concave < linear
// < convex is reversed (sqrt >= linear >= quadratic) in between.
class ShapeOrdering : public ::testing::TestWithParam<std::uint32_t> {};
TEST_P(ShapeOrdering, SqrtAboveLinearAboveQuadratic) {
  const std::uint32_t w = GetParam();
  const std::uint32_t ref_int = 8192;
  EXPECT_GE(core::sqrt_weight(w, ref_int), w);
  EXPECT_LE(core::quadratic_weight(w, ref_int), std::max(w, 1u));
}
INSTANTIATE_TEST_SUITE_P(Sweep, ShapeOrdering,
                         ::testing::Values(0, 1, 10, 100, 1000, 4096, 8191,
                                           8192));

TEST(ShapedTiVaPRoMi, WeightsFollowTheShape) {
  core::TiVaPRoMiConfig cfg;
  cfg.refresh_intervals = 64;
  cfg.rows_per_bank = 1024;
  cfg.pbase_exp = 10;
  core::ShapedTiVaPRoMi sq(core::WeightShape::kSqrt, cfg, util::Rng(1));
  core::ShapedTiVaPRoMi quad(core::WeightShape::kQuadratic, cfg, util::Rng(1));
  core::ShapedTiVaPRoMi lin(core::WeightShape::kLinear, cfg, util::Rng(1));
  // Row 100 -> slot 6; at interval 10 the linear weight is 4.
  EXPECT_EQ(lin.weight_for(100, 10), 4u);
  EXPECT_EQ(sq.weight_for(100, 10), 16u);    // ceil(sqrt(4*64))
  EXPECT_EQ(quad.weight_for(100, 10), 1u);   // ceil(16/64)
  EXPECT_STREQ(sq.name(), "TiVaPRoMi[sqrt]");
  EXPECT_STREQ(quad.name(), "TiVaPRoMi[quadratic]");
  EXPECT_EQ(sq.state_bits(), lin.state_bits());
}

TEST(ShapedTiVaPRoMi, LinearShapeMatchesLiPRoMi) {
  core::TiVaPRoMiConfig cfg;
  cfg.refresh_intervals = 64;
  cfg.rows_per_bank = 1024;
  cfg.pbase_exp = 10;
  core::ShapedTiVaPRoMi shaped(core::WeightShape::kLinear, cfg, util::Rng(9));
  core::ProbabilisticTiVaPRoMi li(core::Variant::kLinear, cfg, util::Rng(9));
  mem::ActionBuffer a, b;
  mem::MitigationContext ctx;
  for (int i = 0; i < 20000; ++i) {
    ctx.interval_in_window = static_cast<std::uint32_t>(i % 64);
    shaped.on_activate(i % 1024, ctx, a);
    li.on_activate(i % 1024, ctx, b);
  }
  EXPECT_EQ(a.size(), b.size());  // identical decisions from identical seeds
}

TEST(ShapedTiVaPRoMi, FactoryAndWindowClear) {
  core::TiVaPRoMiConfig cfg;
  cfg.refresh_intervals = 64;
  cfg.rows_per_bank = 1024;
  cfg.pbase_exp = 10;
  const auto factory = core::make_shaped_factory(core::WeightShape::kSqrt, cfg);
  auto instance = factory(0, util::Rng(3));
  mem::ActionBuffer out;
  mem::MitigationContext ctx;
  ctx.interval_in_window = 50;
  for (int i = 0; i < 5000 && out.empty(); ++i)
    instance->on_activate(7, ctx, out);
  EXPECT_FALSE(out.empty());  // sqrt escalates fast at this Pbase
  out.clear();
  ctx.interval_in_window = 0;
  ctx.window_start = true;
  instance->on_refresh(ctx, out);
  EXPECT_TRUE(out.empty());
}

// ----------------------------------------------------------------- Graphene

mem::MitigationContext ctx_at(std::uint32_t interval, bool window_start = false) {
  mem::MitigationContext ctx;
  ctx.interval_in_window = interval;
  ctx.window_start = window_start;
  return ctx;
}

TEST(Graphene, DeterministicTriggerAtThreshold) {
  mitigation::GrapheneConfig cfg;
  cfg.entries = 4;
  cfg.row_threshold = 100;
  mitigation::Graphene g(cfg, util::Rng(1));
  mem::ActionBuffer out;
  for (int i = 0; i < 99; ++i) g.on_activate(7, ctx_at(0), out);
  EXPECT_TRUE(out.empty());
  g.on_activate(7, ctx_at(0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
  EXPECT_EQ(out[0].row, 7u);
}

TEST(Graphene, MisraGriesSwapKeepsHeavyHitters) {
  mitigation::GrapheneConfig cfg;
  cfg.entries = 2;
  cfg.row_threshold = 1000;
  mitigation::Graphene g(cfg, util::Rng(1));
  mem::ActionBuffer out;
  // A heavy hitter accumulates; a stream of one-off rows must not be
  // able to evict it (their counts only chase the spillover).
  for (int i = 0; i < 500; ++i) g.on_activate(42, ctx_at(0), out);
  for (dram::RowId r = 1000; r < 1400; ++r) g.on_activate(r, ctx_at(0), out);
  for (int i = 0; i < 500; ++i) g.on_activate(42, ctx_at(0), out);
  EXPECT_EQ(out.size(), 1u);  // 42 reached 1000 despite the noise
  EXPECT_GT(g.spillover(), 0u);
}

TEST(Graphene, SpilloverBoundsTheMissedCount) {
  // Misra-Gries invariant: an untracked row's true count is at most the
  // spillover value, so sizing entries >= window_acts / threshold means
  // no row can cross the threshold untracked.
  mitigation::GrapheneConfig cfg;
  cfg.entries = 8;
  cfg.row_threshold = 50;
  mitigation::Graphene g(cfg, util::Rng(2));
  mem::ActionBuffer out;
  util::Rng rng(3);
  for (int i = 0; i < 5000; ++i)
    g.on_activate(static_cast<dram::RowId>(rng.below(100)), ctx_at(0), out);
  // 5000 acts / (8+1 slots) bounds spill below 556; loose sanity:
  EXPECT_LT(g.spillover(), 5000u / 8);
}

TEST(Graphene, WindowStartResets) {
  mitigation::GrapheneConfig cfg;
  cfg.entries = 4;
  cfg.row_threshold = 100;
  mitigation::Graphene g(cfg, util::Rng(1));
  mem::ActionBuffer out;
  for (int i = 0; i < 60; ++i) g.on_activate(7, ctx_at(0), out);
  EXPECT_EQ(g.tracked(), 1u);
  g.on_refresh(ctx_at(0, /*window_start=*/true), out);
  EXPECT_EQ(g.tracked(), 0u);
  EXPECT_EQ(g.spillover(), 0u);
  // Counting restarts: 99 more activations do not trigger.
  for (int i = 0; i < 99; ++i) g.on_activate(7, ctx_at(1), out);
  EXPECT_TRUE(out.empty());
}

TEST(Graphene, StateBitsNearCaPRoMi) {
  const mitigation::Graphene g(mitigation::GrapheneConfig{}, util::Rng(1));
  const double bytes = static_cast<double>(g.state_bits()) / 8.0;
  EXPECT_GT(bytes, 200.0);
  EXPECT_LT(bytes, 400.0);  // same class as CaPRoMi's 376 B
}

TEST(Graphene, StopsTheStandardAttack) {
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 2;
  cfg.workload.benign_acts_per_interval_per_bank = 0;
  util::Rng rng(3);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 24;
  cfg.workload.attacks = {attack};
  cfg.finalize();
  // Wire Graphene manually (it is not one of the paper's nine).
  util::Rng engine_rng(1);
  mitigation::GrapheneConfig graphene_cfg;
  graphene_cfg.rows_per_bank = cfg.geometry.rows_per_bank;
  mem::MitigationEngine engine(cfg.geometry.total_banks(),
                               mitigation::make_graphene_factory(graphene_cfg),
                               engine_rng);
  dram::DisturbanceModel disturbance(cfg.geometry.total_banks(),
                                     cfg.geometry.rows_per_bank);
  mem::ControllerConfig controller_cfg;
  controller_cfg.geometry = cfg.geometry;
  controller_cfg.timing = cfg.timing;
  util::Rng controller_rng(2);
  mem::MemoryController controller(controller_cfg, engine, disturbance,
                                   controller_rng);
  util::Rng workload_rng(4);
  auto workload = exp::build_workload(cfg, workload_rng);
  while (auto record = workload->next()) controller.on_record(*record);
  EXPECT_FALSE(disturbance.any_flip());
  EXPECT_GT(controller.stats().extra_acts, 0u);
}

// ---------------------------------------------------------------------- TRR

TEST(Trr, SamplerTracksAndRefreshesHeavyHitter) {
  mitigation::TrrConfig cfg;
  cfg.sampler_entries = 4;
  cfg.victims_per_ref = 1;
  mitigation::Trr trr(cfg, util::Rng(1));
  mem::ActionBuffer out;
  for (int i = 0; i < 100; ++i) trr.on_activate(500, ctx_at(0), out);
  EXPECT_TRUE(out.empty());  // no refresh opportunity yet
  trr.on_refresh(ctx_at(1), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, 500u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
  // The sample was retired; an idle bank's next REF does nothing.
  out.clear();
  trr.on_refresh(ctx_at(2), out);
  EXPECT_TRUE(out.empty());
}

TEST(Trr, RfmIssuesMidIntervalRefreshes) {
  mitigation::TrrConfig cfg;
  cfg.rfm_enabled = true;
  cfg.raaimt = 32;
  mitigation::Trr trr(cfg, util::Rng(2));
  mem::ActionBuffer out;
  for (int i = 0; i < 100; ++i) trr.on_activate(500, ctx_at(0), out);
  // 100 ACTs with RAAIMT 32 -> 3 RFM opportunities.
  EXPECT_EQ(trr.rfm_commands(), 3u);
  EXPECT_FALSE(out.empty());
  EXPECT_STREQ(trr.name(), "TRR+RFM");
}

TEST(Trr, FrequencyBiasKeepsHotRowsOverNoise) {
  mitigation::TrrConfig cfg;
  cfg.sampler_entries = 2;
  cfg.victims_per_ref = 1;
  mitigation::Trr trr(cfg, util::Rng(3));
  mem::ActionBuffer out;
  // Heavy hitter + a long stream of one-off rows.
  for (int i = 0; i < 200; ++i) {
    trr.on_activate(42, ctx_at(0), out);
    trr.on_activate(static_cast<dram::RowId>(5000 + i), ctx_at(0), out);
  }
  trr.on_refresh(ctx_at(1), out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].row, 42u);  // the highest-scoring sample wins
}

TEST(Trr, ConfigValidation) {
  mitigation::TrrConfig cfg;
  cfg.sampler_entries = 0;
  EXPECT_THROW(mitigation::Trr(cfg, util::Rng(1)), std::invalid_argument);
  cfg = mitigation::TrrConfig{};
  cfg.rfm_enabled = true;
  cfg.raaimt = 0;
  EXPECT_THROW(mitigation::Trr(cfg, util::Rng(1)), std::invalid_argument);
}

TEST(Trr, ProtectsViaCustomRunner) {
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 2;
  cfg.workload.benign_acts_per_interval_per_bank = 0;
  util::Rng rng(7);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 24;
  cfg.workload.attacks = {attack};
  cfg.finalize();
  mitigation::TrrConfig trr_cfg;
  trr_cfg.rows_per_bank = cfg.geometry.rows_per_bank;
  const auto r = exp::run_custom_simulation(
      mitigation::make_trr_factory(trr_cfg), "TRR", cfg);
  EXPECT_EQ(r.flips, 0u);
  EXPECT_EQ(r.technique, "TRR");
  EXPECT_GT(r.stats.extra_acts, 0u);
}

// ------------------------------------------------------------ new patterns

TEST(AttackPatterns, ManySidedBuildsABand) {
  trace::AttackConfig cfg;
  cfg.pattern = trace::AttackPattern::kManySided;
  cfg.victims = {1000};
  cfg.rows_per_bank = 131072;
  cfg.sides = 3;
  const trace::AttackSource src(cfg);
  EXPECT_EQ(src.aggressors().size(), 6u);  // 997..1003 minus the victim
  for (const auto a : src.aggressors()) {
    EXPECT_NE(a, 1000u);
    EXPECT_GE(a, 997u);
    EXPECT_LE(a, 1003u);
  }
}

TEST(AttackPatterns, ManySidedNeedsSides) {
  trace::AttackConfig cfg;
  cfg.pattern = trace::AttackPattern::kManySided;
  cfg.victims = {1000};
  cfg.rows_per_bank = 131072;
  cfg.sides = 0;
  EXPECT_THROW(trace::AttackSource{cfg}, std::invalid_argument);
}

TEST(AttackPatterns, HalfDoubleSplitsFarAndNear) {
  trace::AttackConfig cfg;
  cfg.pattern = trace::AttackPattern::kHalfDouble;
  cfg.victims = {1000};
  cfg.rows_per_bank = 131072;
  cfg.far_per_near = 4;
  trace::AttackSource src(cfg);
  EXPECT_EQ(src.aggressors(), (std::vector<dram::RowId>{998, 1002}));
  EXPECT_EQ(src.dribble_rows(), (std::vector<dram::RowId>{999, 1001}));
  // Emission ratio: every 5th record is a dribble row.
  int far = 0, near = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto r = src.next();
    ASSERT_TRUE(r.has_value());
    if (r->row == 999u || r->row == 1001u)
      ++near;
    else
      ++far;
  }
  EXPECT_EQ(near, 200);
  EXPECT_EQ(far, 800);
}

TEST(AttackPatterns, VictimNeverEmittedAsAggressor) {
  trace::AttackConfig cfg;
  cfg.pattern = trace::AttackPattern::kManySided;
  cfg.victims = {1000, 1004};  // bands overlap each other's victims
  cfg.rows_per_bank = 131072;
  cfg.sides = 4;
  trace::AttackSource src(cfg);
  for (const auto a : src.aggressors()) {
    EXPECT_NE(a, 1000u);
    EXPECT_NE(a, 1004u);
  }
}

// --------------------------------------------------------------------- PRAC

TEST(Prac, DeterministicAlertAtDeratedThreshold) {
  mitigation::PracConfig cfg;
  cfg.rows_per_bank = 1024;
  cfg.refresh_intervals = 64;
  cfg.row_threshold = 50;
  mitigation::Prac prac(cfg, util::Rng(1));
  mem::ActionBuffer out;
  for (int i = 0; i < 49; ++i) prac.on_activate(100, ctx_at(0), out);
  EXPECT_TRUE(out.empty());
  prac.on_activate(100, ctx_at(0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(prac.alerts(), 1u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
}

TEST(Prac, NoControllerStateButInDramStorage) {
  mitigation::Prac prac(mitigation::PracConfig{}, util::Rng(1));
  EXPECT_EQ(prac.state_bits(), 0u);  // nothing in the controller
  // 131072 rows x 15-bit counters inside the array.
  EXPECT_EQ(prac.in_dram_bits(), 131072ull * 15u);
}

TEST(Prac, SlotRefreshResetsCounters) {
  mitigation::PracConfig cfg;
  cfg.rows_per_bank = 1024;
  cfg.refresh_intervals = 64;
  cfg.row_threshold = 50;
  mitigation::Prac prac(cfg, util::Rng(1));
  mem::ActionBuffer out;
  for (int i = 0; i < 30; ++i) prac.on_activate(100, ctx_at(0), out);
  prac.on_refresh(ctx_at(6), out);  // row 100 is in slot 6
  for (int i = 0; i < 30; ++i) prac.on_activate(100, ctx_at(7), out);
  EXPECT_TRUE(out.empty());  // counter restarted; 30 < 50
  EXPECT_THROW(mitigation::Prac(mitigation::PracConfig{0, 64, 10}, util::Rng(1)),
               std::invalid_argument);
}

TEST(Prac, SurvivesWeakRowsWhereCountersStruggle) {
  // The A6 scenario at the deterministic margin boundary: 50% weak rows,
  // strong double-sided hammer. PRAC's derated threshold holds.
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 2;
  cfg.disturbance.variation_pct = 50;
  util::Rng rng(47);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 40;
  cfg.workload.attacks = {attack};
  cfg.finalize();
  mitigation::PracConfig prac_cfg;
  prac_cfg.rows_per_bank = cfg.geometry.rows_per_bank;
  const auto r = exp::run_custom_simulation(
      mitigation::make_prac_factory(prac_cfg), "PRAC", cfg);
  EXPECT_EQ(r.flips, 0u);
  EXPECT_GT(r.stats.extra_acts, 0u);
}

// ---------------------------------------------------------------------- CAT

TEST(Cat, SingleAggressorTrackedToLeafAndMitigated) {
  mitigation::CatConfig cfg;
  cfg.rows_per_bank = 1024;  // depth 10
  cfg.trigger_threshold = 500;
  cfg.split_quantum = 25;  // 10 levels * 25 = 250 < 500: safe descent
  cfg.node_budget = 64;
  mitigation::Cat cat(cfg, util::Rng(1));
  mem::ActionBuffer out;
  std::uint32_t acts = 0;
  while (out.empty() && acts < 2000) {
    cat.on_activate(600, ctx_at(0), out);
    ++acts;
  }
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].row, 600u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
  // Worst case: quantum per level on the way down plus the full trigger.
  EXPECT_LE(acts, 10u * cfg.split_quantum + cfg.trigger_threshold);
  EXPECT_EQ(cat.blind_triggers(), 0u);
}

TEST(Cat, SaturationMakesItBlind) {
  mitigation::CatConfig cfg;
  cfg.rows_per_bank = 1024;
  cfg.trigger_threshold = 500;
  cfg.split_quantum = 25;
  cfg.node_budget = 9;  // tiny budget: 4 splits and it is full
  mitigation::Cat cat(cfg, util::Rng(2));
  mem::ActionBuffer out;
  // Spread filler exhausts the budget...
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i)
    cat.on_activate(static_cast<dram::RowId>(rng.below(1024)), ctx_at(0), out);
  EXPECT_EQ(cat.nodes_used(), cfg.node_budget);
  // ...then a hammer cannot be resolved to a row: no actions, blind.
  out.clear();
  for (int i = 0; i < 3000; ++i) cat.on_activate(600, ctx_at(0), out);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(cat.blind_triggers(), 0u);
}

TEST(Cat, WindowResetRebuildsTheTree) {
  mitigation::CatConfig cfg;
  cfg.rows_per_bank = 1024;
  cfg.split_quantum = 10;
  mitigation::Cat cat(cfg, util::Rng(4));
  mem::ActionBuffer out;
  for (int i = 0; i < 100; ++i) cat.on_activate(600, ctx_at(0), out);
  EXPECT_GT(cat.nodes_used(), 1u);
  cat.on_refresh(ctx_at(0, /*window_start=*/true), out);
  EXPECT_EQ(cat.nodes_used(), 1u);
}

TEST(Cat, StorageMatchesSectionII) {
  // "no less than 1 KB per bank" for a mitigation-grade tree.
  mitigation::Cat cat(mitigation::CatConfig{}, util::Rng(1));
  EXPECT_GE(cat.state_bits() / 8, 1024u);
}

TEST(Cat, ConfigValidation) {
  mitigation::CatConfig cfg;
  cfg.node_budget = 1;
  EXPECT_THROW(mitigation::Cat(cfg, util::Rng(1)), std::invalid_argument);
  cfg = mitigation::CatConfig{};
  cfg.rows_per_bank = 1000;  // not a power of two
  EXPECT_THROW(mitigation::Cat(cfg, util::Rng(1)), std::invalid_argument);
}

// -------------------------------------------------------------- act_n radius

TEST(ActNRadius, RadiusTwoRestoresDistanceTwoRows) {
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 2;
  cfg.disturbance.blast_radius = 2;
  cfg.disturbance.distance2_weight_q8 = 32;
  cfg.workload.benign_acts_per_interval_per_bank = 0;
  util::Rng rng(17);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.pattern = trace::AttackPattern::kHalfDouble;
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 150;
  cfg.workload.attacks = {attack};

  // Deterministic counters fail at radius 1 (the dribble rows never
  // reach a threshold) and succeed at radius 2.
  cfg.act_n_radius = 1;
  cfg.finalize();
  const auto r1 = exp::run_simulation(hw::Technique::kCra, cfg);
  cfg.act_n_radius = 2;
  cfg.finalize();
  const auto r2 = exp::run_simulation(hw::Technique::kCra, cfg);
  EXPECT_GT(r1.flips, 0u);
  EXPECT_EQ(r2.flips, 0u);
  EXPECT_GT(r2.stats.extra_acts, r1.stats.extra_acts);
}

TEST(ActNRadius, CostScalesWithRadius) {
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 1;
  util::Rng rng(5);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 1, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 24;
  cfg.workload.attacks = {attack};
  cfg.act_n_radius = 1;
  cfg.finalize();
  const auto r1 = exp::run_simulation(hw::Technique::kTwice, cfg);
  cfg.act_n_radius = 2;
  cfg.finalize();
  const auto r2 = exp::run_simulation(hw::Technique::kTwice, cfg);
  // Interior rows: 2 activations per act_n at radius 1, 4 at radius 2.
  EXPECT_EQ(r2.stats.extra_acts, 2 * r1.stats.extra_acts);
}

}  // namespace
}  // namespace tvp
