// Unit tests for tvp::dram — geometry/address mapping, timing, row
// remapping, refresh scheduling, and the disturbance (bit-flip) model.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "tvp/dram/disturbance.hpp"
#include "tvp/dram/geometry.hpp"
#include "tvp/dram/protocol.hpp"
#include "tvp/dram/refresh.hpp"
#include "tvp/dram/remap.hpp"
#include "tvp/dram/timing.hpp"

namespace tvp::dram {
namespace {

Geometry small_geometry() {
  Geometry g;
  g.channels = 1;
  g.ranks_per_channel = 1;
  g.banks_per_rank = 4;
  g.rows_per_bank = 256;
  g.cols_per_row = 16;
  g.bytes_per_col = 64;
  return g;
}

// ----------------------------------------------------------------- geometry

TEST(Geometry, DerivedQuantities) {
  Geometry g;  // paper defaults
  EXPECT_EQ(g.total_banks(), 16u);
  EXPECT_EQ(g.rows_total(), 16ull * 131072);
  EXPECT_EQ(g.bytes_per_row(), 64ull * 1024);
  // 1 GB per bank x 16 banks -> 128 GB? No: 131072 rows * 64 KB = 8 GB/bank.
  EXPECT_EQ(g.capacity_bytes(), g.rows_total() * g.bytes_per_row());
}

TEST(Geometry, ValidateRejectsBadShapes) {
  Geometry g = small_geometry();
  EXPECT_NO_THROW(g.validate());
  g.rows_per_bank = 0;
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = small_geometry();
  g.rows_per_bank = 255;  // not a power of two
  EXPECT_THROW(g.validate(), std::invalid_argument);
  g = small_geometry();
  g.banks_per_rank = 3;
  EXPECT_THROW(g.validate(), std::invalid_argument);
}

class MapperRoundTrip : public ::testing::TestWithParam<AddressMapPolicy> {};

TEST_P(MapperRoundTrip, DecodeEncodeExhaustive) {
  const AddressMapper mapper(small_geometry(), GetParam());
  const Geometry& g = mapper.geometry();
  // Every coordinate encodes to a unique address that decodes back.
  std::set<std::uint64_t> seen;
  for (std::uint32_t bank = 0; bank < g.banks_per_rank; ++bank) {
    for (RowId row = 0; row < g.rows_per_bank; row += 37) {
      for (std::uint32_t col = 0; col < g.cols_per_row; col += 5) {
        Address a;
        a.bank = bank;
        a.row = row;
        a.col = col;
        const std::uint64_t phys = mapper.encode(a);
        EXPECT_TRUE(seen.insert(phys).second);
        EXPECT_EQ(mapper.decode(phys), a);
      }
    }
  }
}

TEST_P(MapperRoundTrip, FlatBankInRange) {
  const AddressMapper mapper(small_geometry(), GetParam());
  for (std::uint64_t addr = 0; addr < 1 << 20; addr += 4097) {
    const Address a = mapper.decode(addr);
    EXPECT_LT(mapper.flat_bank(a), mapper.geometry().total_banks());
    EXPECT_LT(a.row, mapper.geometry().rows_per_bank);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, MapperRoundTrip,
                         ::testing::Values(AddressMapPolicy::kRowBankCol,
                                           AddressMapPolicy::kBankRowCol,
                                           AddressMapPolicy::kRowColBank));

TEST(AddressMapper, RandomGeometriesRoundTrip) {
  util::Rng rng(61);
  for (int trial = 0; trial < 24; ++trial) {
    Geometry g;
    g.channels = 1u << rng.below(2);
    g.ranks_per_channel = 1u << rng.below(2);
    g.banks_per_rank = 1u << rng.between(1, 4);
    g.rows_per_bank = 1u << rng.between(6, 12);
    g.cols_per_row = 1u << rng.between(3, 7);
    g.bytes_per_col = 1u << rng.between(3, 7);
    for (const auto policy :
         {AddressMapPolicy::kRowBankCol, AddressMapPolicy::kBankRowCol,
          AddressMapPolicy::kRowColBank}) {
      const AddressMapper mapper(g, policy);
      for (int i = 0; i < 200; ++i) {
        Address a;
        a.channel = static_cast<std::uint32_t>(rng.below(g.channels));
        a.rank = static_cast<std::uint32_t>(rng.below(g.ranks_per_channel));
        a.bank = static_cast<std::uint32_t>(rng.below(g.banks_per_rank));
        a.row = static_cast<RowId>(rng.below(g.rows_per_bank));
        a.col = static_cast<std::uint32_t>(rng.below(g.cols_per_row));
        ASSERT_EQ(mapper.decode(mapper.encode(a)), a)
            << "trial " << trial << " policy " << to_string(policy);
      }
    }
  }
}

// ------------------------------------------------------------------- timing

TEST(Timing, PaperDerivedConstants) {
  const Timing t = ddr4_timing();
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.t_refi_ps(), 7'812'500u);         // ~7.8 us (Table I)
  EXPECT_EQ(t.max_acts_per_interval(), 165u);   // TWiCe's DDR4 bound
  EXPECT_EQ(t.act_cycle_budget(), 54u);         // Section IV
  EXPECT_EQ(t.ref_cycle_budget(), 420u);        // Section IV
}

TEST(Timing, Ddr3Budgets) {
  const Timing t = ddr3_timing();
  EXPECT_EQ(t.clock_hz, 320'000'000u);
  EXPECT_EQ(t.act_cycle_budget(), 14u);
  EXPECT_EQ(t.ref_cycle_budget(), 112u);
}

TEST(Timing, Ddr5Budgets) {
  const Timing t = ddr5_timing();
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.t_refi_ps(), 3'906'250u);  // ~3.9 us
  EXPECT_EQ(t.act_cycle_budget(), 115u);
  EXPECT_EQ(t.ref_cycle_budget(), 708u);
  // The faster clock fits every serial TiVaPRoMi variant with margin.
  EXPECT_GT(t.act_cycle_budget(), 54u);
  EXPECT_GT(t.ref_cycle_budget(), 420u);
}

TEST(Timing, ValidateRejectsInconsistent) {
  Timing t;
  t.t_rfc_ps = t.t_refw_ps;  // refresh longer than the interval
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Timing{};
  t.clock_hz = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

// -------------------------------------------------------------------- remap

TEST(RowRemapper, IdentityByDefault) {
  const RowRemapper remap(256);
  EXPECT_TRUE(remap.is_identity());
  for (RowId r = 0; r < 256; ++r) {
    EXPECT_EQ(remap.to_physical(r), r);
    EXPECT_EQ(remap.to_logical(r), r);
  }
}

TEST(RowRemapper, SwapsAreBijective) {
  util::Rng rng(5);
  const RowRemapper remap(1024, 32, rng);
  EXPECT_GT(remap.swap_count(), 0u);
  std::set<RowId> images;
  for (RowId r = 0; r < 1024; ++r) {
    const RowId phys = remap.to_physical(r);
    EXPECT_TRUE(images.insert(phys).second) << "collision at " << r;
    EXPECT_EQ(remap.to_logical(phys), r);
  }
  EXPECT_EQ(images.size(), 1024u);
}

TEST(RowRemapper, PhysicalNeighborsRespectEdges) {
  const RowRemapper remap(16);
  RowId out[2];
  EXPECT_EQ(remap.physical_neighbors(0, out), 1u);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(remap.physical_neighbors(15, out), 1u);
  EXPECT_EQ(out[0], 14u);
  EXPECT_EQ(remap.physical_neighbors(7, out), 2u);
  EXPECT_EQ(out[0], 6u);
  EXPECT_EQ(out[1], 8u);
}

// ----------------------------------------------------------------- refresh

class SchedulerPolicy : public ::testing::TestWithParam<RefreshPolicy> {};

TEST_P(SchedulerPolicy, EveryRowOncePerWindow) {
  util::Rng rng(7);
  const RefreshScheduler sched(1024, 64, GetParam(), rng);
  EXPECT_EQ(sched.rows_per_interval(), 16u);
  std::vector<int> refreshed(1024, 0);
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto rows = sched.rows_in_interval(i);
    EXPECT_EQ(rows.size(), 16u);
    for (const auto r : rows) {
      ASSERT_LT(r, 1024u);
      ++refreshed[r];
    }
  }
  for (RowId r = 0; r < 1024; ++r)
    EXPECT_EQ(refreshed[r], 1) << "row " << r << " policy "
                               << to_string(GetParam());
}

TEST_P(SchedulerPolicy, IntervalOfRowMatchesInverse) {
  util::Rng rng(11);
  const RefreshScheduler sched(1024, 64, GetParam(), rng);
  for (std::uint32_t i = 0; i < 64; ++i)
    for (const auto r : sched.rows_in_interval(i))
      EXPECT_EQ(sched.interval_of_row(r), i);
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerPolicy,
                         ::testing::Values(RefreshPolicy::kNeighborSequential,
                                           RefreshPolicy::kNeighborRemapped,
                                           RefreshPolicy::kRandom,
                                           RefreshPolicy::kCounterMask));

TEST(RefreshScheduler, SequentialMatchesAssumedMapping) {
  util::Rng rng(1);
  const RefreshScheduler sched(1024, 64, RefreshPolicy::kNeighborSequential, rng);
  for (RowId r = 0; r < 1024; r += 17)
    EXPECT_EQ(sched.interval_of_row(r), sched.assumed_interval_of_row(r));
}

TEST(RefreshScheduler, RandomPolicyDiffersFromAssumed) {
  util::Rng rng(2);
  const RefreshScheduler sched(4096, 256, RefreshPolicy::kRandom, rng);
  int mismatches = 0;
  for (RowId r = 0; r < 4096; ++r)
    mismatches += sched.interval_of_row(r) != sched.assumed_interval_of_row(r);
  EXPECT_GT(mismatches, 3500);  // nearly everything moved
}

TEST(RefreshScheduler, RejectsBadShape) {
  util::Rng rng(3);
  EXPECT_THROW(RefreshScheduler(1000, 64, RefreshPolicy::kNeighborSequential, rng),
               std::invalid_argument);
  EXPECT_THROW(RefreshScheduler(0, 64, RefreshPolicy::kRandom, rng),
               std::invalid_argument);
  EXPECT_THROW(RefreshScheduler(1024, 48, RefreshPolicy::kCounterMask, rng),
               std::invalid_argument);  // counter-mask needs pow2 intervals
}

// ----------------------------------------------------------------- protocol

TEST(ProtocolChecker, AcceptsLegalSequence) {
  ProtocolChecker checker(2, ProtocolTiming{});
  const ProtocolTiming t;
  std::uint64_t now = 1000;
  EXPECT_FALSE(checker.check({Command::kActivate, 0, 5, now}).has_value());
  EXPECT_FALSE(checker.check({Command::kRead, 0, 5, now + t.t_rcd_ps}).has_value());
  EXPECT_FALSE(
      checker.check({Command::kPrecharge, 0, 5, now + t.t_ras_ps}).has_value());
  EXPECT_FALSE(checker
                   .check({Command::kActivate, 0, 6,
                           now + t.t_ras_ps + t.t_rp_ps})
                   .has_value());
  EXPECT_TRUE(checker.clean());
  EXPECT_EQ(checker.commands_checked(), 4u);
}

TEST(ProtocolChecker, CatchesStateViolations) {
  ProtocolChecker checker(2, ProtocolTiming{});
  checker.check({Command::kActivate, 0, 5, 1000});
  // ACT on an open bank.
  EXPECT_TRUE(checker.check({Command::kActivate, 0, 6, 200'000}).has_value());
  // Column access on a closed bank.
  EXPECT_TRUE(checker.check({Command::kRead, 1, 5, 300'000}).has_value());
  // PRE on a closed bank.
  EXPECT_TRUE(checker.check({Command::kPrecharge, 1, 5, 400'000}).has_value());
  EXPECT_EQ(checker.violations().size(), 3u);
}

TEST(ProtocolChecker, CatchesTimingViolations) {
  const ProtocolTiming t;
  ProtocolChecker checker(2, t);
  checker.check({Command::kActivate, 0, 5, 1000});
  // tRCD: column too early.
  EXPECT_TRUE(checker.check({Command::kRead, 0, 5, 1000 + t.t_rcd_ps - 1})
                  .has_value());
  // tRAS: precharge too early.
  EXPECT_TRUE(checker.check({Command::kPrecharge, 0, 5, 1000 + t.t_ras_ps - 1})
                  .has_value());
  checker.check({Command::kPrecharge, 0, 5, 1000 + t.t_ras_ps});
  // tRP: re-activate too early.
  EXPECT_TRUE(checker
                  .check({Command::kActivate, 0, 5,
                          1000 + t.t_ras_ps + t.t_rp_ps - 1})
                  .has_value());
}

TEST(ProtocolChecker, CatchesFawViolation) {
  const ProtocolTiming t;
  ProtocolChecker checker(8, t);
  for (std::uint32_t b = 0; b < 4; ++b)
    EXPECT_FALSE(
        checker.check({Command::kActivate, b, 1, 1000 + b}).has_value());
  // Fifth ACT inside the window.
  EXPECT_TRUE(
      checker.check({Command::kActivate, 4, 1, 1000 + t.t_faw_ps - 1})
          .has_value());
  // ...and a sixth after the window is fine.
  EXPECT_FALSE(
      checker.check({Command::kActivate, 5, 1, 1001 + t.t_faw_ps}).has_value());
}

TEST(ProtocolChecker, RefreshSemantics) {
  const ProtocolTiming t;
  ProtocolChecker checker(1, t);
  checker.check({Command::kActivate, 0, 5, 1000});
  // REF with an open row is illegal.
  EXPECT_TRUE(checker.check({Command::kRefresh, 0, 0, 500'000}).has_value());
  checker.check({Command::kPrecharge, 0, 5, 600'000});
  EXPECT_FALSE(checker.check({Command::kRefresh, 0, 0, 700'000}).has_value());
  // Any command inside the blackout is illegal.
  EXPECT_TRUE(checker
                  .check({Command::kActivate, 0, 5, 700'000 + t.t_rfc_ps - 1})
                  .has_value());
  EXPECT_FALSE(checker
                   .check({Command::kActivate, 0, 5, 700'000 + t.t_rfc_ps})
                   .has_value());
}

TEST(ProtocolChecker, RejectsDisorderAndBadBank) {
  ProtocolChecker checker(1, ProtocolTiming{});
  checker.check({Command::kActivate, 0, 5, 1000});
  EXPECT_TRUE(checker.check({Command::kRead, 0, 5, 500}).has_value());
  EXPECT_TRUE(checker.check({Command::kActivate, 7, 5, 2000}).has_value());
  EXPECT_THROW(ProtocolChecker(0, ProtocolTiming{}), std::invalid_argument);
}

// -------------------------------------------------------------- disturbance

TEST(Disturbance, NeighborsAccumulateAndFlip) {
  DisturbanceParams params;
  params.flip_threshold = 100;
  DisturbanceModel model(1, 64, params);
  for (int i = 0; i < 99; ++i) model.on_activate(0, 10, 0);
  EXPECT_FALSE(model.any_flip());
  EXPECT_EQ(model.disturbance_q8(0, 9) >> 8, 99u);
  EXPECT_EQ(model.disturbance_q8(0, 11) >> 8, 99u);
  model.on_activate(0, 10, 5);
  ASSERT_EQ(model.flips().size(), 2u);  // both neighbours cross together
  EXPECT_EQ(model.flips()[0].row, 9u);
  EXPECT_EQ(model.flips()[1].row, 11u);
  EXPECT_EQ(model.flips()[0].interval, 5u);
  EXPECT_EQ(model.activations(), 100u);
}

TEST(Disturbance, ActivationRestoresOwnRow) {
  DisturbanceParams params;
  params.flip_threshold = 100;
  DisturbanceModel model(1, 64, params);
  for (int i = 0; i < 50; ++i) model.on_activate(0, 10, 0);
  EXPECT_GT(model.disturbance_q8(0, 11), 0u);
  model.on_activate(0, 11, 0);  // activating the victim restores it
  EXPECT_EQ(model.disturbance_q8(0, 11), 0u);
}

TEST(Disturbance, RefreshRestores) {
  DisturbanceParams params;
  params.flip_threshold = 100;
  DisturbanceModel model(1, 64, params);
  for (int i = 0; i < 60; ++i) model.on_activate(0, 10, 0);
  model.on_refresh_row(0, 9);
  EXPECT_EQ(model.disturbance_q8(0, 9), 0u);
  // ...and a flip can then only occur with a fresh accumulation: row 9
  // restarts while the never-refreshed row 11 crosses the threshold.
  for (int i = 0; i < 60; ++i) model.on_activate(0, 10, 0);
  EXPECT_EQ(model.disturbance_q8(0, 9) >> 8, 60u);
  EXPECT_EQ(model.disturbance_q8(0, 11) >> 8, 120u);  // never refreshed
  ASSERT_EQ(model.flips().size(), 1u);
  EXPECT_EQ(model.flips()[0].row, 11u);
}

TEST(Disturbance, FlipLatchedOncePerChargePeriod) {
  DisturbanceParams params;
  params.flip_threshold = 10;
  DisturbanceModel model(1, 64, params);
  for (int i = 0; i < 30; ++i) model.on_activate(0, 10, 0);
  // Each victim flips once, not thirty times.
  EXPECT_EQ(model.flips().size(), 2u);
  model.on_refresh_row(0, 9);
  for (int i = 0; i < 10; ++i) model.on_activate(0, 10, 0);
  EXPECT_EQ(model.flips().size(), 3u);  // re-armed after restore
}

TEST(Disturbance, EdgeRowsHaveOneNeighbor) {
  DisturbanceParams params;
  params.flip_threshold = 5;
  DisturbanceModel model(1, 8, params);
  for (int i = 0; i < 5; ++i) model.on_activate(0, 0, 0);
  ASSERT_EQ(model.flips().size(), 1u);
  EXPECT_EQ(model.flips()[0].row, 1u);
}

TEST(Disturbance, BlastRadiusTwo) {
  DisturbanceParams params;
  params.flip_threshold = 1000;
  params.blast_radius = 2;
  params.distance2_weight_q8 = 64;  // quarter strength
  DisturbanceModel model(1, 64, params);
  for (int i = 0; i < 16; ++i) model.on_activate(0, 10, 0);
  EXPECT_EQ(model.disturbance_q8(0, 9), 16u * 256);
  EXPECT_EQ(model.disturbance_q8(0, 8), 16u * 64);
  EXPECT_EQ(model.disturbance_q8(0, 12), 16u * 64);
}

TEST(Disturbance, PerBankIsolation) {
  DisturbanceModel model(2, 64, {});
  for (int i = 0; i < 10; ++i) model.on_activate(0, 10, 0);
  EXPECT_EQ(model.disturbance_q8(1, 9), 0u);
  EXPECT_EQ(model.disturbance_q8(0, 9), 10u * 256);
}

TEST(Disturbance, ResetClearsEverything) {
  DisturbanceParams params;
  params.flip_threshold = 5;
  DisturbanceModel model(1, 16, params);
  for (int i = 0; i < 10; ++i) model.on_activate(0, 5, 0);
  EXPECT_TRUE(model.any_flip());
  model.reset();
  EXPECT_FALSE(model.any_flip());
  EXPECT_EQ(model.activations(), 0u);
  EXPECT_EQ(model.peak_disturbance_q8(), 0u);
  EXPECT_EQ(model.disturbance_q8(0, 4), 0u);
}

TEST(Disturbance, ThresholdVariationDrawsPerRow) {
  DisturbanceParams params;
  params.flip_threshold = 1000;
  params.variation_pct = 25;
  DisturbanceModel model(1, 256, params);
  std::uint32_t lo = ~0u, hi = 0;
  for (RowId r = 0; r < 256; ++r) {
    const auto t = model.threshold_of(0, r);
    EXPECT_GE(t, 750u);
    EXPECT_LE(t, 1250u);
    lo = std::min(lo, t);
    hi = std::max(hi, t);
  }
  EXPECT_LT(lo, 850u);  // the draw actually spreads
  EXPECT_GT(hi, 1150u);
  // Deterministic in the seed.
  DisturbanceModel again(1, 256, params);
  for (RowId r = 0; r < 256; r += 17)
    EXPECT_EQ(model.threshold_of(0, r), again.threshold_of(0, r));
}

TEST(Disturbance, WeakRowFlipsEarlier) {
  DisturbanceParams params;
  params.flip_threshold = 1000;
  params.variation_pct = 40;
  DisturbanceModel model(1, 64, params);
  // Hammer row 10 until its weaker neighbour flips; the flip must occur
  // at that row's own (varied) threshold, not the nominal one.
  const std::uint32_t t9 = model.threshold_of(0, 9);
  const std::uint32_t t11 = model.threshold_of(0, 11);
  const std::uint32_t weaker = std::min(t9, t11);
  for (std::uint32_t i = 0; i < weaker - 1; ++i) model.on_activate(0, 10, 0);
  EXPECT_FALSE(model.any_flip());
  model.on_activate(0, 10, 0);
  ASSERT_FALSE(model.flips().empty());
  EXPECT_EQ(model.threshold_of(0, model.flips()[0].row), weaker);
}

TEST(Disturbance, VariationZeroIsUniform) {
  DisturbanceModel model(2, 64, {});
  EXPECT_EQ(model.threshold_of(0, 5), 139'000u);
  EXPECT_EQ(model.threshold_of(1, 63), 139'000u);
  EXPECT_THROW(model.threshold_of(2, 0), std::out_of_range);
}

TEST(Disturbance, InvalidConfigThrows) {
  EXPECT_THROW(DisturbanceModel(0, 16, {}), std::invalid_argument);
  DisturbanceParams params;
  params.blast_radius = 3;
  EXPECT_THROW(DisturbanceModel(1, 16, params), std::invalid_argument);
  params = {};
  params.flip_threshold = 0;
  EXPECT_THROW(DisturbanceModel(1, 16, params), std::invalid_argument);
  params = {};
  params.variation_pct = 100;
  EXPECT_THROW(DisturbanceModel(1, 16, params), std::invalid_argument);
  DisturbanceModel ok(1, 16, {});
  EXPECT_THROW(ok.disturbance_q8(0, 99), std::out_of_range);
}

}  // namespace
}  // namespace tvp::dram
