// Unit + integration tests for tvp::svc — the campaign service: job
// queue, crash-safe journal, engine resume determinism, wire protocol,
// and the socket server end to end.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tvp/exp/sweep.hpp"
#include "tvp/svc/client.hpp"
#include "tvp/svc/engine.hpp"
#include "tvp/svc/journal.hpp"
#include "tvp/svc/queue.hpp"
#include "tvp/svc/result_io.hpp"
#include "tvp/svc/server.hpp"
#include "tvp/svc/wire.hpp"

namespace tvp::svc {
namespace {

namespace fs = std::filesystem;

// A fresh scratch directory per test (unix sockets + journals).
class SvcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("tvp_svc_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

/// A four-cell sweep (2 values x 2 techniques) that finishes in well
/// under a second per cell.
JobSpec tiny_spec(const std::string& name, std::uint64_t seed) {
  JobSpec spec;
  spec.name = name;
  spec.config_text =
      "geometry.banks = 2\n"
      "windows = 1\n"
      "workload.benign_rate = 5\n"
      "seed = " + std::to_string(seed) + "\n";
  spec.param_key = "windows";
  spec.values = {"1", "2"};
  spec.techniques = {"PARA", "LiPRoMi"};
  return spec;
}

exp::SweepResult run_direct(const JobSpec& spec, std::size_t jobs) {
  exp::SweepHooks hooks;
  hooks.jobs = jobs;
  return exp::run_param_sweep(util::KeyValueFile::parse(spec.config_text),
                              spec.param_key, spec.values,
                              spec.parsed_techniques(), hooks);
}

JobStatus wait_terminal(const CampaignEngine& engine, std::uint64_t id,
                        double timeout_seconds = 120.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto status = engine.status(id);
    if (status && (status->state == JobState::kDone ||
                   status->state == JobState::kFailed ||
                   status->state == JobState::kCancelled))
      return *status;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << id << " did not reach a terminal state";
  return JobStatus{};
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(JobQueue, FifoAndBounded) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "capacity 2 must refuse the third push";
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

TEST(JobQueue, CloseDrainsThenReturnsNull) {
  JobQueue queue(4);
  EXPECT_TRUE(queue.try_push(7));
  queue.close();
  EXPECT_FALSE(queue.try_push(8)) << "closed queue must refuse pushes";
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(7));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(JobQueue, CloseWakesBlockedPopper) {
  JobQueue queue(1);
  std::thread popper([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  popper.join();
}

TEST(JobQueue, ZeroCapacityThrows) {
  EXPECT_THROW(JobQueue(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// JobSpec
// ---------------------------------------------------------------------------

TEST(JobSpec, CanonicalJsonRoundTrip) {
  const JobSpec spec = tiny_spec("round_trip-1.a", 3);
  const JobSpec back = JobSpec::from_json(util::JsonValue::parse(spec.canonical_json()));
  EXPECT_EQ(back.canonical_json(), spec.canonical_json());
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.config_text, spec.config_text);
  EXPECT_EQ(back.values, spec.values);
  EXPECT_EQ(back.techniques, spec.techniques);
}

TEST(JobSpec, ValidateRejectsBadInput) {
  JobSpec spec = tiny_spec("ok", 1);
  EXPECT_NO_THROW(spec.validate());

  JobSpec bad_name = spec;
  bad_name.name = "has/slash";
  EXPECT_THROW(bad_name.validate(), std::invalid_argument);

  JobSpec bad_technique = spec;
  bad_technique.techniques = {"NotATechnique"};
  EXPECT_THROW(bad_technique.validate(), std::invalid_argument);

  JobSpec empty_values = spec;
  empty_values.values.clear();
  EXPECT_THROW(empty_values.validate(), std::invalid_argument);

  JobSpec bad_config = spec;
  bad_config.config_text = "no equals sign here";
  EXPECT_THROW(bad_config.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Result serialisation
// ---------------------------------------------------------------------------

TEST(ResultIo, RunResultRoundTripIsExact) {
  const JobSpec spec = tiny_spec("exact", 11);
  const exp::SweepResult sweep = run_direct(spec, 1);
  ASSERT_FALSE(sweep.cells.empty());
  for (const auto& cell : sweep.cells) {
    util::JsonWriter json;
    write_run_result(json, cell.result);
    const exp::RunResult back =
        read_run_result(util::JsonValue::parse(json.str()));

    const exp::RunResult& ref = cell.result;
    EXPECT_EQ(back.technique, ref.technique);
    EXPECT_EQ(back.stats.demand_acts, ref.stats.demand_acts);
    EXPECT_EQ(back.stats.extra_acts, ref.stats.extra_acts);
    EXPECT_EQ(back.stats.fp_extra_acts, ref.stats.fp_extra_acts);
    EXPECT_EQ(back.stats.triggers, ref.stats.triggers);
    EXPECT_EQ(back.stats.refresh_intervals, ref.stats.refresh_intervals);
    EXPECT_EQ(back.stats.rows_refreshed, ref.stats.rows_refreshed);
    EXPECT_EQ(back.stats.reads, ref.stats.reads);
    EXPECT_EQ(back.stats.writes, ref.stats.writes);
    EXPECT_EQ(back.stats.delayed_acts, ref.stats.delayed_acts);
    EXPECT_EQ(back.stats.first_extra_act_at, ref.stats.first_extra_act_at);
    EXPECT_EQ(back.stats.extra_acts_by_phase, ref.stats.extra_acts_by_phase);
    // RunningStat restores its exact Welford state (bit-identical).
    const auto raw_back = back.stats.acts_per_interval.raw();
    const auto raw_ref = ref.stats.acts_per_interval.raw();
    EXPECT_EQ(raw_back.n, raw_ref.n);
    EXPECT_EQ(raw_back.mean, raw_ref.mean);
    EXPECT_EQ(raw_back.m2, raw_ref.m2);
    EXPECT_EQ(raw_back.min, raw_ref.min);
    EXPECT_EQ(raw_back.max, raw_ref.max);
    EXPECT_EQ(raw_back.sum, raw_ref.sum);
    EXPECT_EQ(back.flips, ref.flips);
    EXPECT_EQ(back.victim_flips, ref.victim_flips);
    ASSERT_EQ(back.flip_events.size(), ref.flip_events.size());
    for (std::size_t i = 0; i < ref.flip_events.size(); ++i) {
      EXPECT_EQ(back.flip_events[i].bank, ref.flip_events[i].bank);
      EXPECT_EQ(back.flip_events[i].row, ref.flip_events[i].row);
      EXPECT_EQ(back.flip_events[i].at_activation, ref.flip_events[i].at_activation);
      EXPECT_EQ(back.flip_events[i].interval, ref.flip_events[i].interval);
    }
    EXPECT_EQ(back.peak_disturbance, ref.peak_disturbance);
    EXPECT_EQ(back.state_bytes_per_bank, ref.state_bytes_per_bank);
    EXPECT_EQ(back.records, ref.records);
    EXPECT_EQ(back.wall_seconds, ref.wall_seconds);
  }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

TEST_F(SvcTest, JournalRoundTrip) {
  const JobSpec spec = tiny_spec("journal_rt", 5);
  const exp::SweepResult sweep = run_direct(spec, 1);
  const std::string file = path("a.tvpj");
  {
    Journal journal = Journal::create(file, spec);
    journal.append_cell(0, sweep.cells[0]);
    journal.append_cell(2, sweep.cells[2]);
    journal.append_done();
  }
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.spec.canonical_json(), spec.canonical_json());
  EXPECT_TRUE(replay.done);
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.cells.size(), 2u);
  EXPECT_EQ(replay.cells.at(0).technique, sweep.cells[0].technique);
  EXPECT_EQ(replay.cells.at(2).value, sweep.cells[2].value);
}

TEST_F(SvcTest, JournalTornTrailingLineIsDropped) {
  const JobSpec spec = tiny_spec("journal_torn", 5);
  const exp::SweepResult sweep = run_direct(spec, 1);
  const std::string file = path("torn.tvpj");
  {
    Journal journal = Journal::create(file, spec);
    journal.append_cell(0, sweep.cells[0]);
  }
  // Simulate a crash mid-append: half a record, no newline.
  {
    std::ofstream out(file, std::ios::app | std::ios::binary);
    out << "{\"crc\":123,\"e\":{\"type\":\"cell\",\"cell\":{\"i\":1,\"val";
  }
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.cells.size(), 1u);
  EXPECT_GT(replay.dropped_bytes, 0u);
  EXPECT_FALSE(replay.done);
}

TEST_F(SvcTest, JournalCorruptTrailingEntryIsDropped) {
  const JobSpec spec = tiny_spec("journal_corrupt", 5);
  const exp::SweepResult sweep = run_direct(spec, 1);
  const std::string file = path("corrupt.tvpj");
  {
    Journal journal = Journal::create(file, spec);
    journal.append_cell(0, sweep.cells[0]);
    journal.append_cell(1, sweep.cells[1]);
  }
  // Flip one byte inside the last record's payload: the CRC must
  // reject it and replay must keep everything before it.
  std::string text;
  {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  const std::size_t last_line = text.rfind("{\"crc\":");
  ASSERT_NE(last_line, std::string::npos);
  text[last_line + 40] ^= 0x01;
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << text;
  }
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.cells.size(), 1u);
  EXPECT_TRUE(replay.cells.count(0));
  EXPECT_GT(replay.dropped_bytes, 0u);
}

TEST_F(SvcTest, JournalMissingHeaderThrows) {
  const std::string file = path("headerless.tvpj");
  {
    std::ofstream out(file, std::ios::binary);
    out << "not a journal\n";
  }
  EXPECT_THROW(Journal::replay(file), std::runtime_error);
  EXPECT_THROW(Journal::replay(path("absent.tvpj")), std::runtime_error);
}

TEST_F(SvcTest, JournalRemoveIsDurableAndIdempotent) {
  const std::string file = path("victim.tvpj");
  Journal::create(file, tiny_spec("victim", 1)).close();
  ASSERT_TRUE(fs::exists(file));
  Journal::remove(file);
  EXPECT_FALSE(fs::exists(file));
  EXPECT_NO_THROW(Journal::remove(file)) << "removing an absent journal is ok";
}

// ---------------------------------------------------------------------------
// Sweep hooks (the exp-level checkpoint seam)
// ---------------------------------------------------------------------------

TEST(SweepHooks, PreloadedCellsAreNotRecomputed) {
  const JobSpec spec = tiny_spec("hooks", 9);
  const exp::SweepResult reference = run_direct(spec, 1);

  std::map<std::size_t, exp::SweepCell> preloaded;
  for (std::size_t i = 0; i < reference.cells.size(); ++i)
    preloaded[i] = reference.cells[i];

  std::atomic<int> computed{0};
  exp::SweepHooks hooks;
  hooks.preloaded = &preloaded;
  hooks.on_cell = [&](std::size_t, const exp::SweepCell&) { ++computed; };
  hooks.jobs = 1;
  const exp::SweepResult resumed = exp::run_param_sweep(
      util::KeyValueFile::parse(spec.config_text), spec.param_key, spec.values,
      spec.parsed_techniques(), hooks);
  EXPECT_EQ(computed.load(), 0) << "fully preloaded matrix must not rerun";
  EXPECT_EQ(exp::sweep_to_csv(resumed), exp::sweep_to_csv(reference));
}

TEST(SweepHooks, MismatchedPreloadThrows) {
  const JobSpec spec = tiny_spec("hooks_bad", 9);
  const exp::SweepResult reference = run_direct(spec, 1);
  std::map<std::size_t, exp::SweepCell> preloaded;
  preloaded[0] = reference.cells[0];
  preloaded[0].technique = "TWiCe";  // grid says PARA
  exp::SweepHooks hooks;
  hooks.preloaded = &preloaded;
  EXPECT_THROW(
      exp::run_param_sweep(util::KeyValueFile::parse(spec.config_text),
                           spec.param_key, spec.values,
                           spec.parsed_techniques(), hooks),
      std::invalid_argument);
}

TEST(SweepHooks, StopSkipsRemainingCells) {
  const JobSpec spec = tiny_spec("hooks_stop", 9);
  std::atomic<bool> stop{false};
  std::atomic<int> computed{0};
  exp::SweepHooks hooks;
  hooks.stop = &stop;
  hooks.jobs = 1;
  hooks.on_cell = [&](std::size_t, const exp::SweepCell&) {
    if (++computed >= 2) stop.store(true);
  };
  const exp::SweepResult partial = exp::run_param_sweep(
      util::KeyValueFile::parse(spec.config_text), spec.param_key, spec.values,
      spec.parsed_techniques(), hooks);
  EXPECT_EQ(computed.load(), 2);
  std::size_t filled = 0;
  for (const auto& cell : partial.cells)
    if (!cell.technique.empty()) ++filled;
  EXPECT_EQ(filled, 2u);
}

// ---------------------------------------------------------------------------
// CampaignEngine
// ---------------------------------------------------------------------------

TEST_F(SvcTest, EngineMatchesDirectSweep) {
  EngineConfig config;
  config.sweep_jobs = 2;
  CampaignEngine engine(config);
  engine.start();

  const JobSpec spec = tiny_spec("direct_match", 21);
  std::string error;
  const std::uint64_t id = engine.submit(spec, &error);
  ASSERT_NE(id, 0u) << error;
  const JobStatus status = wait_terminal(engine, id);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.completed_cells, spec.cell_count());
  const auto result = engine.result(id);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(exp::sweep_to_csv(*result), exp::sweep_to_csv(run_direct(spec, 1)));
  engine.shutdown(true);
}

TEST_F(SvcTest, EngineRejectsBadSpecDuplicateNameAndFullQueue) {
  EngineConfig config;
  config.queue_capacity = 1;
  CampaignEngine engine(config);  // not started: queued jobs stay queued

  std::string error;
  JobSpec bad = tiny_spec("bad", 1);
  bad.techniques = {"NotReal"};
  EXPECT_EQ(engine.submit(bad, &error), 0u);
  EXPECT_NE(error.find("NotReal"), std::string::npos);

  EXPECT_NE(engine.submit(tiny_spec("a", 1), &error), 0u) << error;
  EXPECT_EQ(engine.submit(tiny_spec("a", 1), &error), 0u)
      << "duplicate active name must be rejected";
  EXPECT_NE(error.find("already active"), std::string::npos);

  EXPECT_EQ(engine.submit(tiny_spec("b", 1), &error), 0u)
      << "queue of capacity 1 must exert backpressure";
  EXPECT_NE(error.find("queue full"), std::string::npos);
}

TEST_F(SvcTest, ConcurrentSubmitsOfOneNameAcceptExactlyOne) {
  EngineConfig config;
  config.journal_dir = path("journals");  // journal I/O widens the race window
  CampaignEngine engine(config);  // not started: accepted jobs stay active

  const JobSpec spec = tiny_spec("contested", 1);
  constexpr int kThreads = 8;
  std::atomic<int> go{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      go.fetch_add(1);
      while (go.load() < kThreads) {
      }  // start all submits as close together as possible
      std::string error;
      if (engine.submit(spec, &error) != 0) accepted.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(accepted.load(), 1)
      << "one name, one active job, one journal file";
  EXPECT_EQ(engine.statuses().size(), 1u);
}

TEST_F(SvcTest, EngineCancelQueuedJob) {
  EngineConfig config;
  CampaignEngine engine(config);  // not started, so the job stays queued
  std::string error;
  const std::uint64_t id = engine.submit(tiny_spec("till_cancelled", 1), &error);
  ASSERT_NE(id, 0u) << error;
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_EQ(engine.status(id)->state, JobState::kCancelled);
  EXPECT_FALSE(engine.cancel(id)) << "terminal jobs cannot be cancelled again";
  EXPECT_FALSE(engine.cancel(9999));
}

/// The acceptance criterion: a campaign killed mid-run and resumed from
/// its journal produces a byte-identical results file, across seeds and
/// job counts — including when the trailing journal entry was torn.
TEST_F(SvcTest, KillAndResumeIsByteIdentical) {
  int variant = 0;
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
      const bool corrupt_tail = (variant++ % 2) == 1;
      const std::string name =
          "kill_s" + std::to_string(seed) + "_j" + std::to_string(jobs);
      const JobSpec spec = tiny_spec(name, seed);
      const std::string csv_reference =
          exp::sweep_to_csv(run_direct(spec, jobs));

      // Phase 1 — the "killed" campaign: checkpoint cells into the
      // journal, stop after two cells (as SIGKILL would).
      const std::string journal_dir = path("journals_" + name);
      fs::create_directories(journal_dir);
      const std::string journal_file =
          (fs::path(journal_dir) / (name + ".tvpj")).string();
      {
        Journal journal = Journal::create(journal_file, spec);
        std::atomic<bool> stop{false};
        std::atomic<int> cells{0};
        std::mutex mu;
        exp::SweepHooks hooks;
        hooks.stop = &stop;
        hooks.jobs = jobs;
        hooks.on_cell = [&](std::size_t i, const exp::SweepCell& cell) {
          std::lock_guard<std::mutex> lock(mu);
          journal.append_cell(i, cell);
          if (++cells >= 2) stop.store(true);
        };
        exp::run_param_sweep(util::KeyValueFile::parse(spec.config_text),
                             spec.param_key, spec.values,
                             spec.parsed_techniques(), hooks);
      }

      if (corrupt_tail) {
        // Tear the final journal entry, as a crash mid-append would.
        std::string text;
        {
          std::ifstream in(journal_file, std::ios::binary);
          std::ostringstream buf;
          buf << in.rdbuf();
          text = buf.str();
        }
        ASSERT_GT(text.size(), 20u);
        text.resize(text.size() - 17);  // chop mid-record, no newline
        std::ofstream out(journal_file, std::ios::binary | std::ios::trunc);
        out << text;
      }

      // Phase 2 — restart: the engine scans the journal dir, resumes
      // the campaign, and recomputes only the missing cells.
      EngineConfig config;
      config.journal_dir = journal_dir;
      config.sweep_jobs = jobs;
      CampaignEngine engine(config);
      const auto resumed = engine.start();
      ASSERT_EQ(resumed.size(), 1u) << "journal must be picked up on start";
      const JobStatus status = wait_terminal(engine, resumed[0]);
      EXPECT_EQ(status.state, JobState::kDone) << status.error;
      EXPECT_GT(status.resumed_cells, 0u) << "resume must reuse journal cells";
      EXPECT_LT(status.resumed_cells, spec.cell_count())
          << "the kill must have left work to do";
      const auto result = engine.result(resumed[0]);
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(exp::sweep_to_csv(*result), csv_reference)
          << "resumed campaign must be byte-identical (seed " << seed
          << ", jobs " << jobs << ", corrupt_tail " << corrupt_tail << ")";
      engine.shutdown(true);

      // Restarting again finds the finished journal and reloads the
      // whole matrix from it without recomputing anything.
      CampaignEngine reloaded(config);
      const auto reloaded_ids = reloaded.start();
      ASSERT_EQ(reloaded_ids.size(), 1u);
      const JobStatus reloaded_status = wait_terminal(reloaded, reloaded_ids[0]);
      EXPECT_EQ(reloaded_status.state, JobState::kDone);
      EXPECT_EQ(reloaded_status.resumed_cells, spec.cell_count());
      EXPECT_EQ(exp::sweep_to_csv(*reloaded.result(reloaded_ids[0])),
                csv_reference);
      reloaded.shutdown(true);
    }
  }
}

TEST_F(SvcTest, SubmitRejectsJournalSpecMismatch) {
  const std::string journal_dir = path("journals");
  EngineConfig config;
  config.journal_dir = journal_dir;
  {
    CampaignEngine engine(config);
    std::string error;
    ASSERT_NE(engine.submit(tiny_spec("same_name", 1), &error), 0u) << error;
    // Job is durable from submit: the journal header exists already.
    EXPECT_TRUE(fs::exists(engine.journal_path("same_name")));
  }
  CampaignEngine engine(config);
  std::string error;
  EXPECT_EQ(engine.submit(tiny_spec("same_name", 2), &error), 0u)
      << "same name with a different spec must be rejected";
  EXPECT_NE(error.find("different spec"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(Wire, RequestRoundTrip) {
  const JobSpec spec = tiny_spec("wire", 2);
  Request submit = parse_request(submit_request(spec));
  EXPECT_EQ(submit.op, Request::Op::kSubmit);
  EXPECT_EQ(submit.spec.canonical_json(), spec.canonical_json());

  Request all_status = parse_request(status_request());
  EXPECT_EQ(all_status.op, Request::Op::kStatus);
  EXPECT_FALSE(all_status.has_job_id);

  Request one_status = parse_request(status_request(42));
  EXPECT_TRUE(one_status.has_job_id);
  EXPECT_EQ(one_status.job_id, 42u);

  EXPECT_EQ(parse_request(results_request(7)).op, Request::Op::kResults);
  EXPECT_EQ(parse_request(cancel_request(7)).op, Request::Op::kCancel);
  EXPECT_EQ(parse_request(ping_request()).op, Request::Op::kPing);

  Request shutdown = parse_request(shutdown_request(true));
  EXPECT_EQ(shutdown.op, Request::Op::kShutdown);
  EXPECT_TRUE(shutdown.drain);
  EXPECT_FALSE(parse_request(shutdown_request(false)).drain);
}

TEST(Wire, MalformedRequestsThrowProtocolError) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("[1,2,3]"), ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"warp\"}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"results\"}"), ProtocolError)
      << "results without a job id is malformed";
  EXPECT_THROW(parse_request("{\"op\":\"submit\",\"job\":{}}"), ProtocolError);
}

TEST(Wire, ErrorResponseParses) {
  const util::JsonValue response =
      util::JsonValue::parse(error_response("queue full"));
  EXPECT_FALSE(response.get_bool("ok", true));
  EXPECT_EQ(response.get("error", ""), "queue full");
}

// ---------------------------------------------------------------------------
// Server + Client end to end
// ---------------------------------------------------------------------------

TEST_F(SvcTest, UnixSocketEndToEnd) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.engine.journal_dir = path("journals");
  config.engine.sweep_jobs = 2;
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  const JobSpec spec = tiny_spec("e2e", 33);
  {
    Client client = Client::connect_unix(config.unix_path);
    client.ping();
    const std::uint64_t id = client.submit(spec);
    EXPECT_NE(id, 0u);
    const JobStatus done = client.wait(id, 120.0);
    EXPECT_EQ(done.state, JobState::kDone) << done.error;

    const util::JsonValue results = client.results(id);
    EXPECT_EQ(results.at("csv").as_string(),
              exp::sweep_to_csv(run_direct(spec, 1)))
        << "matrix over the socket must match a direct run_param_sweep";
    EXPECT_EQ(results.at("sweep").at("cells").items().size(),
              spec.cell_count());

    // Unknown ids are wire errors, not crashes.
    EXPECT_THROW(client.results(4242), std::runtime_error);

    client.shutdown(/*drain=*/true);
  }
  serving.join();
  EXPECT_FALSE(fs::exists(config.unix_path))
      << "socket file must be removed on shutdown";
}

TEST_F(SvcTest, TcpEndToEndAndRawProtocol) {
  ServerConfig config;
  config.tcp_port = 0;  // ephemeral
  Server server(config);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);
  std::thread serving([&] { server.serve(); });

  {
    Client client = Client::connect_tcp("127.0.0.1", server.tcp_port());
    client.ping();
    // A malformed line must produce ok:false, not kill the connection.
    const util::JsonValue junk = client.request("this is not json");
    EXPECT_FALSE(junk.get_bool("ok", true));
    client.ping();  // connection still alive
    client.shutdown(false);
  }
  serving.join();
}

/// A client that sends a request and disconnects before the reply is
/// flushed must cost the server one EPIPE (connection dropped), not a
/// SIGPIPE that kills the daemon.
TEST_F(SvcTest, ClientGoneBeforeReplyDoesNotKillServer) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string request = ping_request() + "\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    ::close(fd);  // gone before the server writes the reply
  }

  Client client = Client::connect_unix(config.unix_path);
  client.ping();  // the server survived every EPIPE
  client.shutdown(false);
  serving.join();
}

// ----------------------------------------------- malformed wire input

/// Every flavour of malformed request line must come back as an
/// ok:false error reply on a still-usable connection — never a dropped
/// connection, never a dead daemon.
TEST_F(SvcTest, MalformedRequestLinesGetErrorRepliesNotCrashes) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });
  {
    Client client = Client::connect_unix(config.unix_path);
    const std::vector<std::string> malformed = {
        "{\"op\":\"submit\",\"job\"",            // truncated JSON
        "{\"op\":\"submit\"}",                   // submit without a job
        "{\"op\":\"warp\"}",                     // unknown command
        "{\"op\":\"results\"}",                  // results without a job id
        "[1,2,3]",                               // wrong JSON shape
        std::string("{\"op\":\"\xff\xfe\"}"),    // invalid UTF-8 bytes
        std::string("\x01\x02{}\x03", 5),        // binary garbage
    };
    for (const auto& line : malformed) {
      SCOPED_TRACE("line: " + line);
      util::JsonValue reply;
      ASSERT_NO_THROW(reply = client.request(line))
          << "malformed input must not drop the connection";
      EXPECT_FALSE(reply.get_bool("ok", true));
      EXPECT_FALSE(reply.get("error", "").empty())
          << "the error reply must say what was wrong";
    }
    client.ping();  // the same connection still works
    client.shutdown(false);
  }
  serving.join();
}

/// A request line above max_line_bytes costs that client its
/// connection (runaway guard) but nothing else: no reply, no crash,
/// and the next client is served normally.
TEST_F(SvcTest, OversizedRequestLineDropsOnlyThatConnection) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.max_line_bytes = 1024;
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });
  {
    Client greedy = Client::connect_unix(config.unix_path);
    const std::string huge(8 * 1024, 'x');  // 8x the limit, no newline yet
    EXPECT_THROW(greedy.request(huge), std::runtime_error)
        << "the runaway connection must be closed, not served";
  }
  Client polite = Client::connect_unix(config.unix_path);
  polite.ping();
  // Under the limit still works — the guard is about line length, not
  // total traffic.
  for (int i = 0; i < 32; ++i) polite.ping();
  polite.shutdown(false);
  serving.join();
}

/// Truncated frames (no trailing newline) and blank lines: the server
/// must buffer the partial line without replying, skip the blanks, and
/// survive the client vanishing mid-frame.
TEST_F(SvcTest, TruncatedFramesAndBlankLinesLeaveTheServerHealthy) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  // Blank lines and a CRLF ping on one raw connection: exactly one
  // reply must come back (blank lines are skipped, not answered).
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string frames = "\n\r\n" + ping_request() + "\r\n";
    ASSERT_EQ(::write(fd, frames.data(), frames.size()),
              static_cast<ssize_t>(frames.size()));
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    ASSERT_GT(n, 0);
    const std::string replies(buf, static_cast<std::size_t>(n));
    EXPECT_EQ(std::count(replies.begin(), replies.end(), '\n'), 1)
        << "one request in, one reply out: " << replies;
    ::close(fd);
  }
  // A half-written frame followed by a disappearing client.
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string partial = "{\"op\":\"sub";
    ASSERT_EQ(::write(fd, partial.data(), partial.size()),
              static_cast<ssize_t>(partial.size()));
    ::close(fd);  // gone mid-frame
  }
  Client client = Client::connect_unix(config.unix_path);
  client.ping();  // the daemon shrugged it all off
  client.shutdown(false);
  serving.join();
}

TEST_F(SvcTest, SignalStopCheckpointsAndExits) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.engine.journal_dir = path("journals");
  config.engine.sweep_jobs = 1;
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  std::uint64_t id = 0;
  {
    Client client = Client::connect_unix(config.unix_path);
    id = client.submit(tiny_spec("sig", 3));
    EXPECT_NE(id, 0u);
  }
  // What a SIGINT/SIGTERM handler does — poke the stop pipe.
  server.request_stop();
  serving.join();
  EXPECT_FALSE(fs::exists(config.unix_path));
  // The job is journaled, so whatever progress was made survives for
  // the next daemon; at minimum the header must exist.
  EXPECT_TRUE(fs::exists(server.engine().journal_path("sig")));
}

}  // namespace
}  // namespace tvp::svc
