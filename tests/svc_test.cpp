// Unit + integration tests for tvp::svc — the campaign service: job
// queue, crash-safe journal, engine resume determinism, wire protocol,
// and the socket server end to end.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "tvp/exp/sweep.hpp"
#include "tvp/svc/client.hpp"
#include "tvp/trace/corpus.hpp"
#include "tvp/util/table.hpp"
#include "tvp/svc/engine.hpp"
#include "tvp/svc/journal.hpp"
#include "tvp/svc/queue.hpp"
#include "tvp/svc/result_io.hpp"
#include "tvp/svc/server.hpp"
#include "tvp/svc/wire.hpp"

namespace tvp::svc {
namespace {

namespace fs = std::filesystem;

// A fresh scratch directory per test (unix sockets + journals).
class SvcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("tvp_svc_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  fs::path dir_;
};

/// A four-cell sweep (2 values x 2 techniques) that finishes in well
/// under a second per cell.
JobSpec tiny_spec(const std::string& name, std::uint64_t seed) {
  JobSpec spec;
  spec.name = name;
  spec.config_text =
      "geometry.banks = 2\n"
      "windows = 1\n"
      "workload.benign_rate = 5\n"
      "seed = " + std::to_string(seed) + "\n";
  spec.param_key = "windows";
  spec.values = {"1", "2"};
  spec.techniques = {"PARA", "LiPRoMi"};
  return spec;
}

exp::SweepResult run_direct(const JobSpec& spec, std::size_t jobs) {
  exp::SweepHooks hooks;
  hooks.jobs = jobs;
  return exp::run_param_sweep(util::KeyValueFile::parse(spec.config_text),
                              spec.param_key, spec.values,
                              spec.parsed_techniques(), hooks);
}

/// Raw unix-socket connect for tests that speak the wire protocol by
/// hand (misbehaving clients the Client class cannot imitate).
int raw_connect(const std::string& socket_path, int socket_flags = 0) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | socket_flags, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;  // keep the connect failure visible past close
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

JobStatus wait_terminal(const CampaignEngine& engine, std::uint64_t id,
                        double timeout_seconds = 120.0) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto status = engine.status(id);
    if (status && (status->state == JobState::kDone ||
                   status->state == JobState::kFailed ||
                   status->state == JobState::kCancelled))
      return *status;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ADD_FAILURE() << "job " << id << " did not reach a terminal state";
  return JobStatus{};
}

// ---------------------------------------------------------------------------
// JobQueue
// ---------------------------------------------------------------------------

TEST(JobQueue, FifoAndBounded) {
  JobQueue queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3)) << "capacity 2 must refuse the third push";
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(1));
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(2));
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

TEST(JobQueue, CloseDrainsThenReturnsNull) {
  JobQueue queue(4);
  EXPECT_TRUE(queue.try_push(7));
  queue.close();
  EXPECT_FALSE(queue.try_push(8)) << "closed queue must refuse pushes";
  EXPECT_EQ(queue.pop(), std::optional<std::uint64_t>(7));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(JobQueue, CloseWakesBlockedPopper) {
  JobQueue queue(1);
  std::thread popper([&] { EXPECT_EQ(queue.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  popper.join();
}

TEST(JobQueue, ZeroCapacityThrows) {
  EXPECT_THROW(JobQueue(0), std::invalid_argument);
}

/// The executor pool pops from one queue on N threads: every pushed id
/// must come out exactly once, and close() must release every popper.
TEST(JobQueue, ConcurrentPoppersDrainEachItemExactlyOnce) {
  JobQueue queue(256);
  constexpr std::uint64_t kItems = 200;
  std::mutex mu;
  std::vector<std::uint64_t> popped;
  std::vector<std::thread> poppers;
  for (int i = 0; i < 4; ++i)
    poppers.emplace_back([&] {
      while (const auto id = queue.pop()) {
        std::lock_guard<std::mutex> lock(mu);
        popped.push_back(*id);
      }
    });
  for (std::uint64_t i = 1; i <= kItems; ++i) {
    while (!queue.try_push(i))  // poppers may lag a full queue briefly
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.close();  // drains the remainder, then unblocks every popper
  for (auto& popper : poppers) popper.join();
  std::sort(popped.begin(), popped.end());
  ASSERT_EQ(popped.size(), kItems) << "no item may be lost or duplicated";
  for (std::uint64_t i = 0; i < kItems; ++i) EXPECT_EQ(popped[i], i + 1);
}

// ---------------------------------------------------------------------------
// JobSpec
// ---------------------------------------------------------------------------

TEST(JobSpec, CanonicalJsonRoundTrip) {
  const JobSpec spec = tiny_spec("round_trip-1.a", 3);
  const JobSpec back = JobSpec::from_json(util::JsonValue::parse(spec.canonical_json()));
  EXPECT_EQ(back.canonical_json(), spec.canonical_json());
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.config_text, spec.config_text);
  EXPECT_EQ(back.values, spec.values);
  EXPECT_EQ(back.techniques, spec.techniques);
}

TEST(JobSpec, ValidateRejectsBadInput) {
  JobSpec spec = tiny_spec("ok", 1);
  EXPECT_NO_THROW(spec.validate());

  JobSpec bad_name = spec;
  bad_name.name = "has/slash";
  EXPECT_THROW(bad_name.validate(), std::invalid_argument);

  JobSpec bad_technique = spec;
  bad_technique.techniques = {"NotATechnique"};
  EXPECT_THROW(bad_technique.validate(), std::invalid_argument);

  JobSpec empty_values = spec;
  empty_values.values.clear();
  EXPECT_THROW(empty_values.validate(), std::invalid_argument);

  JobSpec bad_config = spec;
  bad_config.config_text = "no equals sign here";
  EXPECT_THROW(bad_config.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Result serialisation
// ---------------------------------------------------------------------------

TEST(ResultIo, RunResultRoundTripIsExact) {
  const JobSpec spec = tiny_spec("exact", 11);
  const exp::SweepResult sweep = run_direct(spec, 1);
  ASSERT_FALSE(sweep.cells.empty());
  for (const auto& cell : sweep.cells) {
    util::JsonWriter json;
    write_run_result(json, cell.result);
    const exp::RunResult back =
        read_run_result(util::JsonValue::parse(json.str()));

    const exp::RunResult& ref = cell.result;
    EXPECT_EQ(back.technique, ref.technique);
    EXPECT_EQ(back.stats.demand_acts, ref.stats.demand_acts);
    EXPECT_EQ(back.stats.extra_acts, ref.stats.extra_acts);
    EXPECT_EQ(back.stats.fp_extra_acts, ref.stats.fp_extra_acts);
    EXPECT_EQ(back.stats.triggers, ref.stats.triggers);
    EXPECT_EQ(back.stats.refresh_intervals, ref.stats.refresh_intervals);
    EXPECT_EQ(back.stats.rows_refreshed, ref.stats.rows_refreshed);
    EXPECT_EQ(back.stats.reads, ref.stats.reads);
    EXPECT_EQ(back.stats.writes, ref.stats.writes);
    EXPECT_EQ(back.stats.delayed_acts, ref.stats.delayed_acts);
    EXPECT_EQ(back.stats.first_extra_act_at, ref.stats.first_extra_act_at);
    EXPECT_EQ(back.stats.extra_acts_by_phase, ref.stats.extra_acts_by_phase);
    // RunningStat restores its exact Welford state (bit-identical).
    const auto raw_back = back.stats.acts_per_interval.raw();
    const auto raw_ref = ref.stats.acts_per_interval.raw();
    EXPECT_EQ(raw_back.n, raw_ref.n);
    EXPECT_EQ(raw_back.mean, raw_ref.mean);
    EXPECT_EQ(raw_back.m2, raw_ref.m2);
    EXPECT_EQ(raw_back.min, raw_ref.min);
    EXPECT_EQ(raw_back.max, raw_ref.max);
    EXPECT_EQ(raw_back.sum, raw_ref.sum);
    EXPECT_EQ(back.flips, ref.flips);
    EXPECT_EQ(back.victim_flips, ref.victim_flips);
    ASSERT_EQ(back.flip_events.size(), ref.flip_events.size());
    for (std::size_t i = 0; i < ref.flip_events.size(); ++i) {
      EXPECT_EQ(back.flip_events[i].bank, ref.flip_events[i].bank);
      EXPECT_EQ(back.flip_events[i].row, ref.flip_events[i].row);
      EXPECT_EQ(back.flip_events[i].at_activation, ref.flip_events[i].at_activation);
      EXPECT_EQ(back.flip_events[i].interval, ref.flip_events[i].interval);
    }
    EXPECT_EQ(back.peak_disturbance, ref.peak_disturbance);
    EXPECT_EQ(back.state_bytes_per_bank, ref.state_bytes_per_bank);
    EXPECT_EQ(back.records, ref.records);
    EXPECT_EQ(back.wall_seconds, ref.wall_seconds);
  }
}

// ---------------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------------

TEST_F(SvcTest, JournalRoundTrip) {
  const JobSpec spec = tiny_spec("journal_rt", 5);
  const exp::SweepResult sweep = run_direct(spec, 1);
  const std::string file = path("a.tvpj");
  {
    Journal journal = Journal::create(file, spec);
    journal.append_cell(0, sweep.cells[0]);
    journal.append_cell(2, sweep.cells[2]);
    journal.append_done();
  }
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.spec.canonical_json(), spec.canonical_json());
  EXPECT_TRUE(replay.done);
  EXPECT_EQ(replay.dropped_bytes, 0u);
  ASSERT_EQ(replay.cells.size(), 2u);
  EXPECT_EQ(replay.cells.at(0).technique, sweep.cells[0].technique);
  EXPECT_EQ(replay.cells.at(2).value, sweep.cells[2].value);
}

TEST_F(SvcTest, JournalTornTrailingLineIsDropped) {
  const JobSpec spec = tiny_spec("journal_torn", 5);
  const exp::SweepResult sweep = run_direct(spec, 1);
  const std::string file = path("torn.tvpj");
  {
    Journal journal = Journal::create(file, spec);
    journal.append_cell(0, sweep.cells[0]);
  }
  // Simulate a crash mid-append: half a record, no newline.
  {
    std::ofstream out(file, std::ios::app | std::ios::binary);
    out << "{\"crc\":123,\"e\":{\"type\":\"cell\",\"cell\":{\"i\":1,\"val";
  }
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.cells.size(), 1u);
  EXPECT_GT(replay.dropped_bytes, 0u);
  EXPECT_FALSE(replay.done);
}

TEST_F(SvcTest, JournalCorruptTrailingEntryIsDropped) {
  const JobSpec spec = tiny_spec("journal_corrupt", 5);
  const exp::SweepResult sweep = run_direct(spec, 1);
  const std::string file = path("corrupt.tvpj");
  {
    Journal journal = Journal::create(file, spec);
    journal.append_cell(0, sweep.cells[0]);
    journal.append_cell(1, sweep.cells[1]);
  }
  // Flip one byte inside the last record's payload: the CRC must
  // reject it and replay must keep everything before it.
  std::string text;
  {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  const std::size_t last_line = text.rfind("{\"crc\":");
  ASSERT_NE(last_line, std::string::npos);
  text[last_line + 40] ^= 0x01;
  {
    std::ofstream out(file, std::ios::binary | std::ios::trunc);
    out << text;
  }
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.cells.size(), 1u);
  EXPECT_TRUE(replay.cells.count(0));
  EXPECT_GT(replay.dropped_bytes, 0u);
}

TEST_F(SvcTest, JournalMissingHeaderThrows) {
  const std::string file = path("headerless.tvpj");
  {
    std::ofstream out(file, std::ios::binary);
    out << "not a journal\n";
  }
  EXPECT_THROW(Journal::replay(file), std::runtime_error);
  EXPECT_THROW(Journal::replay(path("absent.tvpj")), std::runtime_error);
}

TEST_F(SvcTest, JournalRemoveIsDurableAndIdempotent) {
  const std::string file = path("victim.tvpj");
  Journal::create(file, tiny_spec("victim", 1)).close();
  ASSERT_TRUE(fs::exists(file));
  Journal::remove(file);
  EXPECT_FALSE(fs::exists(file));
  EXPECT_NO_THROW(Journal::remove(file)) << "removing an absent journal is ok";
}

// ---------------------------------------------------------------------------
// Sweep hooks (the exp-level checkpoint seam)
// ---------------------------------------------------------------------------

TEST(SweepHooks, PreloadedCellsAreNotRecomputed) {
  const JobSpec spec = tiny_spec("hooks", 9);
  const exp::SweepResult reference = run_direct(spec, 1);

  std::map<std::size_t, exp::SweepCell> preloaded;
  for (std::size_t i = 0; i < reference.cells.size(); ++i)
    preloaded[i] = reference.cells[i];

  std::atomic<int> computed{0};
  exp::SweepHooks hooks;
  hooks.preloaded = &preloaded;
  hooks.on_cell = [&](std::size_t, const exp::SweepCell&) { ++computed; };
  hooks.jobs = 1;
  const exp::SweepResult resumed = exp::run_param_sweep(
      util::KeyValueFile::parse(spec.config_text), spec.param_key, spec.values,
      spec.parsed_techniques(), hooks);
  EXPECT_EQ(computed.load(), 0) << "fully preloaded matrix must not rerun";
  EXPECT_EQ(exp::sweep_to_csv(resumed), exp::sweep_to_csv(reference));
}

TEST(SweepHooks, MismatchedPreloadThrows) {
  const JobSpec spec = tiny_spec("hooks_bad", 9);
  const exp::SweepResult reference = run_direct(spec, 1);
  std::map<std::size_t, exp::SweepCell> preloaded;
  preloaded[0] = reference.cells[0];
  preloaded[0].technique = "TWiCe";  // grid says PARA
  exp::SweepHooks hooks;
  hooks.preloaded = &preloaded;
  EXPECT_THROW(
      exp::run_param_sweep(util::KeyValueFile::parse(spec.config_text),
                           spec.param_key, spec.values,
                           spec.parsed_techniques(), hooks),
      std::invalid_argument);
}

TEST(SweepHooks, StopSkipsRemainingCells) {
  const JobSpec spec = tiny_spec("hooks_stop", 9);
  std::atomic<bool> stop{false};
  std::atomic<int> computed{0};
  exp::SweepHooks hooks;
  hooks.stop = &stop;
  hooks.jobs = 1;
  hooks.on_cell = [&](std::size_t, const exp::SweepCell&) {
    if (++computed >= 2) stop.store(true);
  };
  const exp::SweepResult partial = exp::run_param_sweep(
      util::KeyValueFile::parse(spec.config_text), spec.param_key, spec.values,
      spec.parsed_techniques(), hooks);
  EXPECT_EQ(computed.load(), 2);
  std::size_t filled = 0;
  for (const auto& cell : partial.cells)
    if (!cell.technique.empty()) ++filled;
  EXPECT_EQ(filled, 2u);
}

// ---------------------------------------------------------------------------
// CampaignEngine
// ---------------------------------------------------------------------------

TEST_F(SvcTest, EngineMatchesDirectSweep) {
  EngineConfig config;
  config.sweep_jobs = 2;
  CampaignEngine engine(config);
  engine.start();

  const JobSpec spec = tiny_spec("direct_match", 21);
  std::string error;
  const std::uint64_t id = engine.submit(spec, &error);
  ASSERT_NE(id, 0u) << error;
  const JobStatus status = wait_terminal(engine, id);
  EXPECT_EQ(status.state, JobState::kDone);
  EXPECT_EQ(status.completed_cells, spec.cell_count());
  const auto result = engine.result(id);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(exp::sweep_to_csv(*result), exp::sweep_to_csv(run_direct(spec, 1)));
  engine.shutdown(true);
}

TEST_F(SvcTest, EngineRejectsBadSpecDuplicateNameAndFullQueue) {
  EngineConfig config;
  config.queue_capacity = 1;
  CampaignEngine engine(config);  // not started: queued jobs stay queued

  std::string error;
  JobSpec bad = tiny_spec("bad", 1);
  bad.techniques = {"NotReal"};
  EXPECT_EQ(engine.submit(bad, &error), 0u);
  EXPECT_NE(error.find("NotReal"), std::string::npos);

  EXPECT_NE(engine.submit(tiny_spec("a", 1), &error), 0u) << error;
  EXPECT_EQ(engine.submit(tiny_spec("a", 1), &error), 0u)
      << "duplicate active name must be rejected";
  EXPECT_NE(error.find("already active"), std::string::npos);

  EXPECT_EQ(engine.submit(tiny_spec("b", 1), &error), 0u)
      << "queue of capacity 1 must exert backpressure";
  EXPECT_NE(error.find("queue full"), std::string::npos);
}

TEST_F(SvcTest, ConcurrentSubmitsOfOneNameAcceptExactlyOne) {
  EngineConfig config;
  config.journal_dir = path("journals");  // journal I/O widens the race window
  CampaignEngine engine(config);  // not started: accepted jobs stay active

  const JobSpec spec = tiny_spec("contested", 1);
  constexpr int kThreads = 8;
  std::atomic<int> go{0};
  std::atomic<int> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      go.fetch_add(1);
      while (go.load() < kThreads) {
      }  // start all submits as close together as possible
      std::string error;
      if (engine.submit(spec, &error) != 0) accepted.fetch_add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(accepted.load(), 1)
      << "one name, one active job, one journal file";
  EXPECT_EQ(engine.statuses().size(), 1u);
}

TEST_F(SvcTest, EngineCancelQueuedJob) {
  EngineConfig config;
  CampaignEngine engine(config);  // not started, so the job stays queued
  std::string error;
  const std::uint64_t id = engine.submit(tiny_spec("till_cancelled", 1), &error);
  ASSERT_NE(id, 0u) << error;
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_EQ(engine.status(id)->state, JobState::kCancelled);
  EXPECT_FALSE(engine.cancel(id)) << "terminal jobs cannot be cancelled again";
  EXPECT_FALSE(engine.cancel(9999));
}

/// The acceptance criterion: a campaign killed mid-run and resumed from
/// its journal produces a byte-identical results file, across seeds and
/// job counts — including when the trailing journal entry was torn.
TEST_F(SvcTest, KillAndResumeIsByteIdentical) {
  int variant = 0;
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
      const bool corrupt_tail = (variant++ % 2) == 1;
      const std::string name =
          "kill_s" + std::to_string(seed) + "_j" + std::to_string(jobs);
      const JobSpec spec = tiny_spec(name, seed);
      const std::string csv_reference =
          exp::sweep_to_csv(run_direct(spec, jobs));

      // Phase 1 — the "killed" campaign: checkpoint cells into the
      // journal, stop after two cells (as SIGKILL would).
      const std::string journal_dir = path("journals_" + name);
      fs::create_directories(journal_dir);
      const std::string journal_file =
          (fs::path(journal_dir) / (name + ".tvpj")).string();
      {
        Journal journal = Journal::create(journal_file, spec);
        std::atomic<bool> stop{false};
        std::atomic<int> cells{0};
        std::mutex mu;
        exp::SweepHooks hooks;
        hooks.stop = &stop;
        hooks.jobs = jobs;
        hooks.on_cell = [&](std::size_t i, const exp::SweepCell& cell) {
          std::lock_guard<std::mutex> lock(mu);
          journal.append_cell(i, cell);
          if (++cells >= 2) stop.store(true);
        };
        exp::run_param_sweep(util::KeyValueFile::parse(spec.config_text),
                             spec.param_key, spec.values,
                             spec.parsed_techniques(), hooks);
      }

      if (corrupt_tail) {
        // Tear the final journal entry, as a crash mid-append would.
        std::string text;
        {
          std::ifstream in(journal_file, std::ios::binary);
          std::ostringstream buf;
          buf << in.rdbuf();
          text = buf.str();
        }
        ASSERT_GT(text.size(), 20u);
        text.resize(text.size() - 17);  // chop mid-record, no newline
        std::ofstream out(journal_file, std::ios::binary | std::ios::trunc);
        out << text;
      }

      // Phase 2 — restart: the engine scans the journal dir, resumes
      // the campaign, and recomputes only the missing cells.
      EngineConfig config;
      config.journal_dir = journal_dir;
      config.sweep_jobs = jobs;
      CampaignEngine engine(config);
      const auto resumed = engine.start();
      ASSERT_EQ(resumed.size(), 1u) << "journal must be picked up on start";
      const JobStatus status = wait_terminal(engine, resumed[0]);
      EXPECT_EQ(status.state, JobState::kDone) << status.error;
      EXPECT_GT(status.resumed_cells, 0u) << "resume must reuse journal cells";
      EXPECT_LT(status.resumed_cells, spec.cell_count())
          << "the kill must have left work to do";
      const auto result = engine.result(resumed[0]);
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(exp::sweep_to_csv(*result), csv_reference)
          << "resumed campaign must be byte-identical (seed " << seed
          << ", jobs " << jobs << ", corrupt_tail " << corrupt_tail << ")";
      engine.shutdown(true);

      // Restarting again finds the finished journal and reloads the
      // whole matrix from it without recomputing anything.
      CampaignEngine reloaded(config);
      const auto reloaded_ids = reloaded.start();
      ASSERT_EQ(reloaded_ids.size(), 1u);
      const JobStatus reloaded_status = wait_terminal(reloaded, reloaded_ids[0]);
      EXPECT_EQ(reloaded_status.state, JobState::kDone);
      EXPECT_EQ(reloaded_status.resumed_cells, spec.cell_count());
      EXPECT_EQ(exp::sweep_to_csv(*reloaded.result(reloaded_ids[0])),
                csv_reference);
      reloaded.shutdown(true);
    }
  }
}

TEST_F(SvcTest, SubmitRejectsJournalSpecMismatch) {
  const std::string journal_dir = path("journals");
  EngineConfig config;
  config.journal_dir = journal_dir;
  {
    CampaignEngine engine(config);
    std::string error;
    ASSERT_NE(engine.submit(tiny_spec("same_name", 1), &error), 0u) << error;
    // Job is durable from submit: the journal header exists already.
    EXPECT_TRUE(fs::exists(engine.journal_path("same_name")));
  }
  CampaignEngine engine(config);
  std::string error;
  EXPECT_EQ(engine.submit(tiny_spec("same_name", 2), &error), 0u)
      << "same name with a different spec must be rejected";
  EXPECT_NE(error.find("different spec"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace (replay) jobs
// ---------------------------------------------------------------------------

TEST(JobSpec, CanonicalJsonOmitsTraceKeysWhenUnset) {
  // Journals written before trace jobs existed must keep their exact
  // canonical JSON — the resume spec-mismatch check compares the bytes.
  const JobSpec plain = tiny_spec("plain", 1);
  EXPECT_EQ(plain.canonical_json().find("\"trace\""), std::string::npos);

  JobSpec traced = plain;
  traced.trace = "/corpora/run.tvpc";
  traced.trace_hash = "0a1b2c3d";
  const JobSpec back =
      JobSpec::from_json(util::JsonValue::parse(traced.canonical_json()));
  EXPECT_EQ(back.trace, traced.trace);
  EXPECT_EQ(back.trace_hash, traced.trace_hash);
  EXPECT_EQ(back.canonical_json(), traced.canonical_json());
}

TEST_F(SvcTest, TraceJobReplayMatchesDirectSweepAndPinsIdentity) {
  // Record the corpus the job will replay: the same system the job's
  // config describes.
  const JobSpec base_spec = tiny_spec("traced", 5);
  exp::SimConfig sim;
  exp::apply_config(sim, util::KeyValueFile::parse(base_spec.config_text));
  const std::string corpus = path("traced.tvpc");
  const std::uint32_t identity = exp::record_corpus(sim, corpus);

  EngineConfig config;
  config.journal_dir = path("journals");
  CampaignEngine engine(config);
  engine.start();
  JobSpec spec = base_spec;
  spec.trace = corpus;
  std::string error;
  const std::uint64_t id = engine.submit(spec, &error);
  ASSERT_NE(id, 0u) << error;
  const JobStatus status = wait_terminal(engine, id);
  EXPECT_EQ(status.state, JobState::kDone) << status.error;

  // Reference: the same matrix swept directly over a replay config.
  util::KeyValueFile base = util::KeyValueFile::parse(spec.config_text);
  base.set("workload.model", "replay");
  base.set("workload.trace", corpus);
  exp::SweepHooks hooks;
  hooks.jobs = 1;
  const exp::SweepResult direct =
      exp::run_param_sweep(base, spec.param_key, spec.values,
                           spec.parsed_techniques(), hooks);
  const auto result = engine.result(id);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(exp::sweep_to_csv(*result), exp::sweep_to_csv(direct));

  // Submit filled the identity and journalled it with the spec.
  const Journal::Replay replay =
      Journal::replay(engine.journal_path("traced"));
  EXPECT_EQ(replay.spec.trace_hash, util::strfmt("%08x", identity));
  engine.shutdown(true);
}

TEST_F(SvcTest, TraceJobRejectsMissingCorpusBadHashAndDanglingHash) {
  EngineConfig config;
  CampaignEngine engine(config);  // not started: submit-time checks only
  std::string error;

  JobSpec missing = tiny_spec("missing_corpus", 1);
  missing.trace = path("nowhere.tvpc");
  EXPECT_EQ(engine.submit(missing, &error), 0u);
  EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

  const std::string corpus = path("tiny.tvpc");
  trace::write_corpus(corpus, {});
  JobSpec mismatched = tiny_spec("stale_hash", 1);
  mismatched.trace = corpus;
  mismatched.trace_hash = "deadbeef";  // not this corpus's identity
  EXPECT_EQ(engine.submit(mismatched, &error), 0u);
  EXPECT_NE(error.find("changed underneath"), std::string::npos) << error;

  JobSpec dangling = tiny_spec("dangling_hash", 1);
  dangling.trace_hash = "deadbeef";
  EXPECT_EQ(engine.submit(dangling, &error), 0u);
  EXPECT_NE(error.find("without a trace path"), std::string::npos) << error;
}

TEST_F(SvcTest, ResumeRefusesACorpusChangedUnderneath) {
  const JobSpec base_spec = tiny_spec("changed_corpus", 3);
  exp::SimConfig sim;
  exp::apply_config(sim, util::KeyValueFile::parse(base_spec.config_text));
  const std::string corpus = path("changed.tvpc");
  exp::record_corpus(sim, corpus);

  EngineConfig config;
  config.journal_dir = path("journals");
  {
    CampaignEngine engine(config);  // not started: the job stays queued,
                                    // but its journal header is durable
    JobSpec spec = base_spec;
    spec.trace = corpus;
    std::string error;
    ASSERT_NE(engine.submit(spec, &error), 0u) << error;
  }

  // Re-record with a different seed: same path, different bytes — the
  // journalled identity no longer matches.
  sim.seed = 99;
  sim.finalize();
  exp::record_corpus(sim, corpus);

  CampaignEngine engine(config);
  EXPECT_TRUE(engine.start().empty())
      << "a corpus changed underneath a journalled job must not resume";
  engine.shutdown(true);
}

/// Executor-pool isolation: jobs running concurrently on four workers
/// must each produce the same matrix as a direct solo run, and each
/// journal must hold exactly its own job, sealed done — two workers
/// never touch one journal.
TEST_F(SvcTest, MultiWorkerJobsKeepIsolatedJournalsAndExactResults) {
  EngineConfig config;
  config.journal_dir = path("journals");
  config.workers = 4;
  config.sweep_jobs = 1;
  CampaignEngine engine(config);
  engine.start();

  constexpr int kJobs = 8;
  std::vector<JobSpec> specs;
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < kJobs; ++i) {
    specs.push_back(tiny_spec("pool_" + std::to_string(i),
                              40 + static_cast<std::uint64_t>(i)));
    std::string error;
    const std::uint64_t id = engine.submit(specs.back(), &error);
    ASSERT_NE(id, 0u) << error;
    ids.push_back(id);
  }
  for (int i = 0; i < kJobs; ++i) {
    const JobStatus status = wait_terminal(engine, ids[i]);
    EXPECT_EQ(status.state, JobState::kDone) << status.error;
    const auto result = engine.result(ids[i]);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(exp::sweep_to_csv(*result), exp::sweep_to_csv(run_direct(specs[i], 1)))
        << "job " << specs[i].name << " must match its solo run";
  }
  engine.shutdown(true);

  for (const JobSpec& spec : specs) {
    const Journal::Replay replay =
        Journal::replay(engine.journal_path(spec.name));
    EXPECT_TRUE(replay.done) << spec.name;
    EXPECT_EQ(replay.cells.size(), spec.cell_count()) << spec.name;
    EXPECT_EQ(replay.spec.canonical_json(), spec.canonical_json())
        << "journal must hold exactly its own job's spec";
  }
}

// ------------------------------------------------- engine streaming

TEST_F(SvcTest, SubscribeDeliversEveryCellExactlyOnceThenEnds) {
  EngineConfig config;
  config.workers = 1;
  config.sweep_jobs = 2;
  CampaignEngine engine(config);

  std::string error;
  const std::uint64_t id = engine.submit(tiny_spec("stream_live", 5), &error);
  ASSERT_NE(id, 0u) << error;
  EXPECT_EQ(engine.subscribe(4242, nullptr, nullptr), 0u)
      << "unknown job ids yield token 0, not a crash";

  std::mutex mu;
  std::vector<std::uint64_t> indices;
  std::atomic<bool> ended{false};
  JobState end_state = JobState::kQueued;
  // Subscribed before start(): every cell arrives live.
  const std::uint64_t token = engine.subscribe(
      id,
      [&](const std::string& cell_json) {
        const auto cell = util::JsonValue::parse(cell_json);
        std::lock_guard<std::mutex> lock(mu);
        indices.push_back(cell.at("i").as_uint());
      },
      [&](JobState state, const std::string&) {
        end_state = state;
        ended.store(true);
      });
  ASSERT_NE(token, 0u);
  engine.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (!ended.load() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(ended.load()) << "the end event must fire at the terminal state";
  EXPECT_EQ(end_state, JobState::kDone);
  const std::size_t total = tiny_spec("stream_live", 5).cell_count();
  {
    std::lock_guard<std::mutex> lock(mu);
    std::sort(indices.begin(), indices.end());
    ASSERT_EQ(indices.size(), total) << "every cell exactly once";
    for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(indices[i], i);
  }

  // A late subscriber on the finished job replays the whole matrix and
  // ends synchronously, inside this subscribe call.
  std::vector<std::uint64_t> replayed;
  bool replay_ended = false;
  JobState replay_state = JobState::kQueued;
  engine.subscribe(
      id,
      [&](const std::string& cell_json) {
        replayed.push_back(util::JsonValue::parse(cell_json).at("i").as_uint());
      },
      [&](JobState state, const std::string&) {
        replay_state = state;
        replay_ended = true;
      });
  EXPECT_TRUE(replay_ended);
  EXPECT_EQ(replay_state, JobState::kDone);
  std::sort(replayed.begin(), replayed.end());
  ASSERT_EQ(replayed.size(), total);
  for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(replayed[i], i);
  engine.shutdown(true);
}

/// Subscribers never hang: a cancel fires the end event immediately,
/// and shutdown flushes subscriptions of jobs that never got to run.
TEST_F(SvcTest, SubscribersSeeEndOnCancelAndOnShutdownFlush) {
  EngineConfig config;
  CampaignEngine engine(config);  // not started: jobs stay queued
  std::string error;
  const std::uint64_t cancelled =
      engine.submit(tiny_spec("stream_cancel", 1), &error);
  ASSERT_NE(cancelled, 0u) << error;
  const std::uint64_t flushed =
      engine.submit(tiny_spec("stream_flush", 1), &error);
  ASSERT_NE(flushed, 0u) << error;

  bool cancel_ended = false;
  JobState cancel_state = JobState::kQueued;
  ASSERT_NE(engine.subscribe(cancelled, nullptr,
                             [&](JobState state, const std::string&) {
                               cancel_state = state;
                               cancel_ended = true;
                             }),
            0u);
  bool flush_ended = false;
  JobState flush_state = JobState::kDone;
  std::string flush_error;
  ASSERT_NE(engine.subscribe(flushed, nullptr,
                             [&](JobState state, const std::string& e) {
                               flush_state = state;
                               flush_error = e;
                               flush_ended = true;
                             }),
            0u);

  EXPECT_TRUE(engine.cancel(cancelled));
  EXPECT_TRUE(cancel_ended) << "cancel of a queued job ends its stream now";
  EXPECT_EQ(cancel_state, JobState::kCancelled);

  engine.shutdown(false);
  EXPECT_TRUE(flush_ended) << "shutdown must flush open subscriptions";
  EXPECT_EQ(flush_state, JobState::kQueued);
  EXPECT_NE(flush_error.find("resumable"), std::string::npos) << flush_error;
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

TEST(Wire, RequestRoundTrip) {
  const JobSpec spec = tiny_spec("wire", 2);
  Request submit = parse_request(submit_request(spec));
  EXPECT_EQ(submit.op, Request::Op::kSubmit);
  EXPECT_EQ(submit.spec.canonical_json(), spec.canonical_json());

  Request all_status = parse_request(status_request());
  EXPECT_EQ(all_status.op, Request::Op::kStatus);
  EXPECT_FALSE(all_status.has_job_id);

  Request one_status = parse_request(status_request(42));
  EXPECT_TRUE(one_status.has_job_id);
  EXPECT_EQ(one_status.job_id, 42u);

  EXPECT_EQ(parse_request(results_request(7)).op, Request::Op::kResults);
  EXPECT_EQ(parse_request(cancel_request(7)).op, Request::Op::kCancel);
  EXPECT_EQ(parse_request(ping_request()).op, Request::Op::kPing);

  Request shutdown = parse_request(shutdown_request(true));
  EXPECT_EQ(shutdown.op, Request::Op::kShutdown);
  EXPECT_TRUE(shutdown.drain);
  EXPECT_FALSE(parse_request(shutdown_request(false)).drain);
}

TEST(Wire, MalformedRequestsThrowProtocolError) {
  EXPECT_THROW(parse_request("not json"), ProtocolError);
  EXPECT_THROW(parse_request("[1,2,3]"), ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"warp\"}"), ProtocolError);
  EXPECT_THROW(parse_request("{\"op\":\"results\"}"), ProtocolError)
      << "results without a job id is malformed";
  EXPECT_THROW(parse_request("{\"op\":\"submit\",\"job\":{}}"), ProtocolError);
}

TEST(Wire, ErrorResponseParses) {
  const util::JsonValue response =
      util::JsonValue::parse(error_response("queue full"));
  EXPECT_FALSE(response.get_bool("ok", true));
  EXPECT_EQ(response.get("error", ""), "queue full");
}

// ---------------------------------------------------------------------------
// Server + Client end to end
// ---------------------------------------------------------------------------

TEST_F(SvcTest, UnixSocketEndToEnd) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.engine.journal_dir = path("journals");
  config.engine.sweep_jobs = 2;
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  const JobSpec spec = tiny_spec("e2e", 33);
  {
    Client client = Client::connect_unix(config.unix_path);
    client.ping();
    const std::uint64_t id = client.submit(spec);
    EXPECT_NE(id, 0u);
    const JobStatus done = client.wait(id, 120.0);
    EXPECT_EQ(done.state, JobState::kDone) << done.error;

    const util::JsonValue results = client.results(id);
    EXPECT_EQ(results.at("csv").as_string(),
              exp::sweep_to_csv(run_direct(spec, 1)))
        << "matrix over the socket must match a direct run_param_sweep";
    EXPECT_EQ(results.at("sweep").at("cells").items().size(),
              spec.cell_count());

    // Unknown ids are wire errors, not crashes.
    EXPECT_THROW(client.results(4242), std::runtime_error);

    client.shutdown(/*drain=*/true);
  }
  serving.join();
  EXPECT_FALSE(fs::exists(config.unix_path))
      << "socket file must be removed on shutdown";
}

TEST_F(SvcTest, TcpEndToEndAndRawProtocol) {
  ServerConfig config;
  config.tcp_port = 0;  // ephemeral
  Server server(config);
  server.start();
  ASSERT_GT(server.tcp_port(), 0);
  std::thread serving([&] { server.serve(); });

  {
    Client client = Client::connect_tcp("127.0.0.1", server.tcp_port());
    client.ping();
    // A malformed line must produce ok:false, not kill the connection.
    const util::JsonValue junk = client.request("this is not json");
    EXPECT_FALSE(junk.get_bool("ok", true));
    client.ping();  // connection still alive
    client.shutdown(false);
  }
  serving.join();
}

/// A client that sends a request and disconnects before the reply is
/// flushed must cost the server one EPIPE (connection dropped), not a
/// SIGPIPE that kills the daemon.
TEST_F(SvcTest, ClientGoneBeforeReplyDoesNotKillServer) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string request = ping_request() + "\n";
    ASSERT_EQ(::write(fd, request.data(), request.size()),
              static_cast<ssize_t>(request.size()));
    ::close(fd);  // gone before the server writes the reply
  }

  Client client = Client::connect_unix(config.unix_path);
  client.ping();  // the server survived every EPIPE
  client.shutdown(false);
  serving.join();
}

// ----------------------------------------------- malformed wire input

/// Every flavour of malformed request line must come back as an
/// ok:false error reply on a still-usable connection — never a dropped
/// connection, never a dead daemon.
TEST_F(SvcTest, MalformedRequestLinesGetErrorRepliesNotCrashes) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });
  {
    Client client = Client::connect_unix(config.unix_path);
    const std::vector<std::string> malformed = {
        "{\"op\":\"submit\",\"job\"",            // truncated JSON
        "{\"op\":\"submit\"}",                   // submit without a job
        "{\"op\":\"warp\"}",                     // unknown command
        "{\"op\":\"results\"}",                  // results without a job id
        "[1,2,3]",                               // wrong JSON shape
        std::string("{\"op\":\"\xff\xfe\"}"),    // invalid UTF-8 bytes
        std::string("\x01\x02{}\x03", 5),        // binary garbage
    };
    for (const auto& line : malformed) {
      SCOPED_TRACE("line: " + line);
      util::JsonValue reply;
      ASSERT_NO_THROW(reply = client.request(line))
          << "malformed input must not drop the connection";
      EXPECT_FALSE(reply.get_bool("ok", true));
      EXPECT_FALSE(reply.get("error", "").empty())
          << "the error reply must say what was wrong";
    }
    client.ping();  // the same connection still works
    client.shutdown(false);
  }
  serving.join();
}

/// A request line above max_line_bytes costs that client its
/// connection (runaway guard) but nothing else: no reply, no crash,
/// and the next client is served normally.
TEST_F(SvcTest, OversizedRequestLineDropsOnlyThatConnection) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.max_line_bytes = 1024;
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });
  {
    Client greedy = Client::connect_unix(config.unix_path);
    const std::string huge(8 * 1024, 'x');  // 8x the limit, no newline yet
    EXPECT_THROW(greedy.request(huge), std::runtime_error)
        << "the runaway connection must be closed, not served";
  }
  Client polite = Client::connect_unix(config.unix_path);
  polite.ping();
  // Under the limit still works — the guard is about line length, not
  // total traffic.
  for (int i = 0; i < 32; ++i) polite.ping();
  polite.shutdown(false);
  serving.join();
}

/// Truncated frames (no trailing newline) and blank lines: the server
/// must buffer the partial line without replying, skip the blanks, and
/// survive the client vanishing mid-frame.
TEST_F(SvcTest, TruncatedFramesAndBlankLinesLeaveTheServerHealthy) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  // Blank lines and a CRLF ping on one raw connection: exactly one
  // reply must come back (blank lines are skipped, not answered).
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string frames = "\n\r\n" + ping_request() + "\r\n";
    ASSERT_EQ(::write(fd, frames.data(), frames.size()),
              static_cast<ssize_t>(frames.size()));
    char buf[4096];
    const ssize_t n = ::read(fd, buf, sizeof buf);
    ASSERT_GT(n, 0);
    const std::string replies(buf, static_cast<std::size_t>(n));
    EXPECT_EQ(std::count(replies.begin(), replies.end(), '\n'), 1)
        << "one request in, one reply out: " << replies;
    ::close(fd);
  }
  // A half-written frame followed by a disappearing client.
  for (int i = 0; i < 4; ++i) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const std::string partial = "{\"op\":\"sub";
    ASSERT_EQ(::write(fd, partial.data(), partial.size()),
              static_cast<ssize_t>(partial.size()));
    ::close(fd);  // gone mid-frame
  }
  Client client = Client::connect_unix(config.unix_path);
  client.ping();  // the daemon shrugged it all off
  client.shutdown(false);
  serving.join();
}

TEST_F(SvcTest, SignalStopCheckpointsAndExits) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.engine.journal_dir = path("journals");
  config.engine.sweep_jobs = 1;
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  std::uint64_t id = 0;
  {
    Client client = Client::connect_unix(config.unix_path);
    id = client.submit(tiny_spec("sig", 3));
    EXPECT_NE(id, 0u);
  }
  // What a SIGINT/SIGTERM handler does — poke the stop pipe.
  server.request_stop();
  serving.join();
  EXPECT_FALSE(fs::exists(config.unix_path));
  // The job is journaled, so whatever progress was made survives for
  // the next daemon; at minimum the header must exist.
  EXPECT_TRUE(fs::exists(server.engine().journal_path("sig")));
}

// ----------------------------------------------- streaming over the wire

TEST_F(SvcTest, StreamingResultsEndToEnd) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.engine.journal_dir = path("journals");
  config.engine.sweep_jobs = 1;
  config.engine.workers = 2;
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });
  {
    Client submitter = Client::connect_unix(config.unix_path);
    Client watcher = Client::connect_unix(config.unix_path);
    const JobSpec spec = tiny_spec("stream_e2e", 17);
    const std::uint64_t id = submitter.submit(spec);
    ASSERT_NE(id, 0u);

    // Subscribe from a second connection while the job runs: replayed
    // cells (if any) arrive first, live cells follow, then the end.
    std::vector<std::uint64_t> indices;
    const Client::StreamEnd end =
        watcher.stream_results(id, [&](const util::JsonValue& cell) {
          indices.push_back(cell.at("i").as_uint());
        });
    EXPECT_EQ(end.state, JobState::kDone) << end.error;
    std::sort(indices.begin(), indices.end());
    ASSERT_EQ(indices.size(), spec.cell_count()) << "every cell exactly once";
    for (std::size_t i = 0; i < spec.cell_count(); ++i)
      EXPECT_EQ(indices[i], i);
    watcher.ping();  // the connection is a plain request line after the end

    // Streaming a finished job replays the whole matrix from the engine's
    // log and ends immediately.
    std::size_t replayed = 0;
    const Client::StreamEnd again = submitter.stream_results(
        id, [&](const util::JsonValue&) { ++replayed; });
    EXPECT_EQ(again.state, JobState::kDone);
    EXPECT_EQ(replayed, spec.cell_count());

    EXPECT_THROW(submitter.stream_results(4242, nullptr), std::runtime_error)
        << "streaming an unknown job is a wire error";
    submitter.shutdown(true);
  }
  serving.join();
}

// ----------------------------------------------- slow-client protections

/// A client that requests large results and never reads must be dropped
/// at max_out_bytes — not buffered until the daemon OOMs (the unbounded
/// conn.out regression).
TEST_F(SvcTest, SlowReaderIsDroppedAtTheOutputCap) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.engine.sweep_jobs = 1;
  config.max_out_bytes = 16u << 10;  // trip the cap quickly
  config.sndbuf_bytes = 4096;        // and keep the kernel from hiding it
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  std::uint64_t id = 0;
  {
    Client client = Client::connect_unix(config.unix_path);
    id = client.submit(tiny_spec("hoard", 3));
    ASSERT_NE(id, 0u);
    EXPECT_EQ(client.wait(id, 120.0).state, JobState::kDone);
  }

  const int fd = raw_connect(config.unix_path);
  ASSERT_GE(fd, 0);
  const std::string request = results_request(id) + "\n";
  bool dropped = false;
  for (int i = 0; i < 4096 && !dropped; ++i) {
    if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) < 0)
      dropped = true;  // the server closed on us: EPIPE/ECONNRESET
    else if (i % 16 == 15)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ::close(fd);
  EXPECT_TRUE(dropped)
      << "a reader that never drains its results must lose the connection";

  Client healthy = Client::connect_unix(config.unix_path);
  healthy.ping();  // only the hoarder paid; the daemon is fine
  healthy.shutdown(false);
  serving.join();
}

/// A response trickling through a tiny SO_SNDBUF must arrive byte-equal
/// to a greedily-read one: the offset-cursor drain (the O(n²) erase
/// regression) must neither drop nor duplicate bytes across partial
/// writes.
TEST_F(SvcTest, TrickledReaderGetsTheSameBytesAsAGreedyOne) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  config.engine.sweep_jobs = 1;
  config.sndbuf_bytes = 4096;  // forces many partial writes per response
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  std::uint64_t id = 0;
  {
    // 12 cells so the results payload outgrows SO_SNDBUF by a few times.
    JobSpec spec = tiny_spec("trickle", 3);
    spec.values = {"1", "2", "3", "4", "5", "6"};
    Client client = Client::connect_unix(config.unix_path);
    id = client.submit(spec);
    ASSERT_NE(id, 0u);
    EXPECT_EQ(client.wait(id, 120.0).state, JobState::kDone);
  }

  const std::string request = results_request(id) + "\n";
  const auto fetch = [&](std::size_t chunk_bytes, int delay_us) {
    std::string response;
    const int fd = raw_connect(config.unix_path);
    if (fd < 0) return response;
    if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(request.size())) {
      ::close(fd);
      return response;
    }
    std::vector<char> buf(chunk_bytes);
    while (response.find('\n') == std::string::npos) {
      const ssize_t n = ::read(fd, buf.data(), buf.size());
      if (n <= 0) break;
      response.append(buf.data(), static_cast<std::size_t>(n));
      if (delay_us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    ::close(fd);
    return response;
  };

  const std::string greedy = fetch(64u << 10, 0);
  ASSERT_GT(greedy.size(), 4096u)
      << "the payload must outgrow SO_SNDBUF or nothing trickles";
  const std::string trickled = fetch(256, 200);
  EXPECT_EQ(trickled, greedy);

  Client client = Client::connect_unix(config.unix_path);
  client.shutdown(false);
  serving.join();
}

// ----------------------------------------------- unix socket takeover

/// Starting a second daemon on a live socket must refuse — not unlink
/// the socket out from under the first daemon (the unconditional-unlink
/// regression).
TEST_F(SvcTest, SecondDaemonOnALiveSocketRefusesToStart) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server first(config);
  first.start();
  std::thread serving([&] { first.serve(); });
  {
    Server second(config);
    try {
      second.start();
      FAIL() << "the second daemon must refuse to start";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("another daemon"),
                std::string::npos)
          << e.what();
    }
  }
  // The refusal must have left the first daemon fully reachable.
  Client client = Client::connect_unix(config.unix_path);
  client.ping();
  client.shutdown(false);
  serving.join();
}

/// A socket file with nothing listening behind it (daemon SIGKILLed) is
/// stale: start() replaces it silently.
TEST_F(SvcTest, StaleSocketFileIsReplacedOnStart) {
  const std::string sock = path("svc.sock");
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, sock.c_str(), sizeof addr.sun_path - 1);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
    ::close(fd);  // the file stays; nobody will ever accept on it
  }
  ASSERT_TRUE(fs::exists(sock));

  ServerConfig config;
  config.unix_path = sock;
  Server server(config);
  ASSERT_NO_THROW(server.start());
  std::thread serving([&] { server.serve(); });
  Client client = Client::connect_unix(sock);
  client.ping();
  client.shutdown(false);
  serving.join();
}

// ----------------------------------------------- configurable backlog

/// The listen(2) backlog is plumbed from ServerConfig (the hardcoded-16
/// regression): with backlog=1 a connect burst overflows while nobody
/// accepts; with the SOMAXCONN default the same burst fits.
TEST_F(SvcTest, ListenBacklogIsConfigurable) {
  {
    ServerConfig config;
    config.unix_path = path("default.sock");  // backlog 0 -> SOMAXCONN
    Server server(config);
    server.start();  // bound and listening; serve() never runs
    std::vector<int> fds;
    for (int i = 0; i < 16; ++i) {
      const int fd = raw_connect(config.unix_path, SOCK_NONBLOCK);
      EXPECT_GE(fd, 0) << "burst connect " << i
                       << " must fit a SOMAXCONN backlog: "
                       << std::strerror(errno);
      if (fd >= 0) fds.push_back(fd);
    }
    for (const int fd : fds) ::close(fd);
  }

  ServerConfig config;
  config.unix_path = path("tiny.sock");
  config.backlog = 1;
  Server server(config);
  server.start();
  int refused = 0;
  std::vector<int> fds;
  for (int i = 0; i < 16; ++i) {
    const int fd = raw_connect(config.unix_path, SOCK_NONBLOCK);
    if (fd < 0)
      ++refused;
    else
      fds.push_back(fd);
  }
  EXPECT_GT(refused, 0) << "backlog=1 must overflow on a 16-connect burst";

  // Once serve() starts accepting, the backlog drains and refused
  // clients simply retry.
  std::thread serving([&] { server.serve(); });
  for (const int fd : fds) ::close(fd);
  Client client = Client::connect_unix(config.unix_path);
  client.ping();
  client.shutdown(false);
  serving.join();
}

}  // namespace
}  // namespace tvp::svc
