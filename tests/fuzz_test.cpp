// Randomized differential tests: the hand-optimised structures must
// agree with straightforward reference models over long random operation
// sequences, and the full pipeline must be byte-stable (determinism).
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "tvp/core/counter_table.hpp"
#include "tvp/core/history_table.hpp"
#include "tvp/exp/report.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/mitigation/twice.hpp"
#include "tvp/trace/source.hpp"

namespace tvp {
namespace {

// ------------------------------------------------- history table vs model

TEST(Fuzz, HistoryTableMatchesFifoReference) {
  constexpr std::size_t kCapacity = 8;
  core::HistoryTable table(kCapacity, 17, 13);

  // Reference: map row -> interval plus FIFO order of *insertions*.
  std::map<dram::RowId, std::uint32_t> ref;
  std::deque<dram::RowId> order;

  util::Rng rng(101);
  for (int op = 0; op < 20000; ++op) {
    const auto row = static_cast<dram::RowId>(rng.below(24));  // collisions!
    const auto choice = rng.below(10);
    if (choice < 6) {
      const auto interval = static_cast<std::uint32_t>(rng.below(512));
      table.insert(row, interval);
      if (ref.count(row)) {
        ref[row] = interval;  // update keeps position
      } else {
        if (ref.size() == kCapacity) {
          ref.erase(order.front());
          order.pop_front();
        }
        ref.emplace(row, interval);
        order.push_back(row);
      }
    } else if (choice < 9) {
      const auto got = table.lookup(row);
      const auto it = ref.find(row);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value()) << "op " << op;
      } else {
        ASSERT_TRUE(got.has_value()) << "op " << op;
        EXPECT_EQ(*got, it->second) << "op " << op;
      }
      EXPECT_EQ(table.size(), ref.size());
    } else {
      table.clear();
      ref.clear();
      order.clear();
    }
  }
}

// ------------------------------------------------ counter table vs model

TEST(Fuzz, CounterTableMatchesReference) {
  constexpr std::size_t kCapacity = 6;
  constexpr std::uint8_t kLock = 5;
  core::CounterTable table(kCapacity, kLock, 17);
  std::map<dram::RowId, std::uint8_t> ref;  // row -> count

  util::Rng rng(202);
  for (int op = 0; op < 20000; ++op) {
    const auto row = static_cast<dram::RowId>(rng.below(16));
    if (rng.below(50) == 0) {
      table.clear();
      ref.clear();
      continue;
    }
    const auto idx = table.on_activate(row, rng);
    if (ref.count(row)) {
      // A tracked row must always be found and incremented.
      ASSERT_TRUE(idx.has_value()) << "op " << op;
      if (ref[row] < 255) ++ref[row];
      EXPECT_EQ(table.slots()[*idx].count, ref[row]) << "op " << op;
      EXPECT_EQ(table.slots()[*idx].locked, ref[row] >= kLock);
    } else if (idx.has_value()) {
      // Inserted fresh (possibly replacing another untracked-from-now row).
      const auto& slot = table.slots()[*idx];
      EXPECT_EQ(slot.row, row);
      EXPECT_EQ(slot.count, 1);
      // Rebuild the reference from the table's own (authoritative)
      // replacement choice: drop whichever row vanished.
      std::map<dram::RowId, std::uint8_t> rebuilt;
      for (const auto& e : table.slots())
        if (e.valid) rebuilt[e.row] = e.count;
      ref = rebuilt;
    }
    // Invariant: locked entries are never evicted.
    for (const auto& [tracked_row, count] : ref) {
      if (count >= kLock) {
        bool still_there = false;
        for (const auto& e : table.slots())
          if (e.valid && e.row == tracked_row) still_there = true;
        EXPECT_TRUE(still_there) << "locked row evicted at op " << op;
      }
    }
  }
}

// -------------------------------------------------- TWiCe vs naive counts

TEST(Fuzz, TwicePrunedCountsNeverExceedTrueCounts) {
  mitigation::TwiceConfig cfg;
  cfg.entries = 64;
  cfg.row_threshold = 1000;
  cfg.pruning_slope = 4;
  cfg.refresh_intervals = 64;
  cfg.rows_per_bank = 1024;
  mitigation::Twice twice(cfg, util::Rng(1));

  std::map<dram::RowId, std::uint32_t> true_counts;
  mem::ActionBuffer out;
  util::Rng rng(303);
  mem::MitigationContext ctx;
  for (std::uint32_t interval = 1; interval < 40; ++interval) {
    for (int a = 0; a < 60; ++a) {
      // Zipf-ish: a few hot rows + noise.
      const dram::RowId row = rng.below(4) == 0
                                  ? static_cast<dram::RowId>(rng.below(3))
                                  : static_cast<dram::RowId>(rng.below(900));
      ctx.interval_in_window = interval;
      out.clear();
      twice.on_activate(row, ctx, out);
      ++true_counts[row];
      // If TWiCe fired, the row genuinely crossed the threshold.
      if (!out.empty()) {
        EXPECT_GE(true_counts[row], cfg.row_threshold);
        true_counts[row] = 0;  // counting restarts after mitigation
      }
    }
    ctx.interval_in_window = interval;
    out.clear();
    twice.on_refresh(ctx, out);
    EXPECT_EQ(twice.overflow_drops(), 0u) << "interval " << interval;
  }
}

// --------------------------------------------------- pipeline determinism

TEST(Fuzz, FullPipelineIsBitStableAcrossRuns) {
  exp::SimConfig config;
  config.geometry.banks_per_rank = 2;
  config.windows = 1;
  exp::install_standard_campaign(config);
  for (const auto t : {hw::Technique::kLoLiPRoMi, hw::Technique::kCaPRoMi,
                       hw::Technique::kProHit}) {
    const auto a = exp::run_simulation(t, config);
    const auto b = exp::run_simulation(t, config);
    EXPECT_EQ(a.stats.demand_acts, b.stats.demand_acts);
    EXPECT_EQ(a.stats.extra_acts, b.stats.extra_acts);
    EXPECT_EQ(a.stats.fp_extra_acts, b.stats.fp_extra_acts);
    EXPECT_EQ(a.stats.triggers, b.stats.triggers);
    EXPECT_EQ(a.flips, b.flips);
  }
}

// ------------------------------------------------- random configurations

// Property: any valid randomly-drawn configuration runs to completion
// with sane invariants (fp <= extra, extra consistent with triggers,
// refreshes cover the windows, no crash).
TEST(Fuzz, RandomConfigurationsKeepInvariants) {
  util::Rng rng(707);
  for (int trial = 0; trial < 10; ++trial) {
    exp::SimConfig cfg;
    cfg.geometry.banks_per_rank = 1u << rng.below(3);  // 1..4 banks
    cfg.geometry.rows_per_bank = 131072;
    cfg.windows = 1;
    cfg.seed = 7000 + trial;
    cfg.workload.benign_acts_per_interval_per_bank =
        1.0 + static_cast<double>(rng.below(12));
    cfg.refresh_policy = static_cast<dram::RefreshPolicy>(rng.below(4));
    cfg.remap_rows = rng.bernoulli(0.5);
    cfg.act_n_radius = 1 + static_cast<std::uint32_t>(rng.below(2));
    cfg.disturbance.variation_pct = static_cast<std::uint32_t>(rng.below(30));
    if (rng.bernoulli(0.7)) {
      auto attack = trace::make_multi_aggressor_attack(
          static_cast<dram::BankId>(rng.below(cfg.geometry.total_banks())),
          cfg.geometry.rows_per_bank, 1 + rng.below(6), rng);
      attack.interarrival_ps =
          cfg.timing.t_refi_ps() / (5 + rng.below(30));
      cfg.workload.attacks = {attack};
    }
    cfg.finalize();
    const auto technique =
        hw::kAllTechniques[rng.below(hw::kAllTechniques.size())];
    const auto r = exp::run_simulation(technique, cfg);
    EXPECT_LE(r.stats.fp_extra_acts, r.stats.extra_acts)
        << r.technique << " trial " << trial;
    // Each trigger costs at most 2*radius activations (act_n) and at
    // least one.
    EXPECT_LE(r.stats.extra_acts, r.stats.triggers * 2 * cfg.act_n_radius)
        << "trial " << trial;
    if (r.stats.triggers > 0) EXPECT_GE(r.stats.extra_acts, r.stats.triggers);
    EXPECT_EQ(r.stats.refresh_intervals,
              static_cast<std::uint64_t>(cfg.windows) *
                  cfg.timing.refresh_intervals)
        << "trial " << trial;
    EXPECT_EQ(r.stats.rows_refreshed,
              static_cast<std::uint64_t>(cfg.windows) *
                  cfg.geometry.rows_per_bank * cfg.geometry.total_banks())
        << "trial " << trial;
    EXPECT_EQ(r.flips, r.flip_events.size());
  }
}

// ------------------------------------------------- merge vs offline sort

TEST(Fuzz, MergedSourceEqualsOfflineSort) {
  util::Rng rng(404);
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  std::vector<trace::AccessRecord> all;
  for (int s = 0; s < 5; ++s) {
    std::vector<trace::AccessRecord> records;
    std::uint64_t t = rng.below(100);
    for (int i = 0; i < 200; ++i) {
      trace::AccessRecord r;
      r.time_ps = t;
      r.bank = static_cast<dram::BankId>(s);
      r.row = static_cast<dram::RowId>(i);
      records.push_back(r);
      t += rng.below(50);
    }
    all.insert(all.end(), records.begin(), records.end());
    sources.push_back(std::make_unique<trace::VectorSource>(std::move(records)));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.time_ps < b.time_ps; });
  trace::MergedSource merged(std::move(sources));
  const auto merged_records = trace::drain(merged);
  ASSERT_EQ(merged_records.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(merged_records[i].time_ps, all[i].time_ps) << "index " << i;
}

}  // namespace
}  // namespace tvp
