// Randomized differential tests: the hand-optimised structures must
// agree with straightforward reference models over long random operation
// sequences, and the full pipeline must be byte-stable (determinism).
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "tvp/core/counter_table.hpp"
#include "tvp/core/history_table.hpp"
#include "tvp/exp/report.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/mitigation/twice.hpp"
#include "tvp/trace/source.hpp"

namespace tvp {
namespace {

// ------------------------------------------------- history table vs model

TEST(Fuzz, HistoryTableMatchesFifoReference) {
  constexpr std::size_t kCapacity = 8;
  core::HistoryTable table(kCapacity, 17, 13);

  // Reference: map row -> interval plus FIFO order of *insertions*.
  std::map<dram::RowId, std::uint32_t> ref;
  std::deque<dram::RowId> order;

  util::Rng rng(101);
  for (int op = 0; op < 20000; ++op) {
    const auto row = static_cast<dram::RowId>(rng.below(24));  // collisions!
    const auto choice = rng.below(10);
    if (choice < 6) {
      const auto interval = static_cast<std::uint32_t>(rng.below(512));
      table.insert(row, interval);
      if (ref.count(row)) {
        ref[row] = interval;  // update keeps position
      } else {
        if (ref.size() == kCapacity) {
          ref.erase(order.front());
          order.pop_front();
        }
        ref.emplace(row, interval);
        order.push_back(row);
      }
    } else if (choice < 9) {
      const auto got = table.lookup(row);
      const auto it = ref.find(row);
      if (it == ref.end()) {
        EXPECT_FALSE(got.has_value()) << "op " << op;
      } else {
        ASSERT_TRUE(got.has_value()) << "op " << op;
        EXPECT_EQ(*got, it->second) << "op " << op;
      }
      EXPECT_EQ(table.size(), ref.size());
    } else {
      table.clear();
      ref.clear();
      order.clear();
    }
  }
}

// ------------------------------------------------ counter table vs model

TEST(Fuzz, CounterTableMatchesReference) {
  constexpr std::size_t kCapacity = 6;
  constexpr std::uint8_t kLock = 5;
  core::CounterTable table(kCapacity, kLock, 17);
  std::map<dram::RowId, std::uint8_t> ref;  // row -> count

  util::Rng rng(202);
  for (int op = 0; op < 20000; ++op) {
    const auto row = static_cast<dram::RowId>(rng.below(16));
    if (rng.below(50) == 0) {
      table.clear();
      ref.clear();
      continue;
    }
    const auto idx = table.on_activate(row, rng);
    if (ref.count(row)) {
      // A tracked row must always be found and incremented.
      ASSERT_TRUE(idx.has_value()) << "op " << op;
      if (ref[row] < 255) ++ref[row];
      EXPECT_EQ(table.slots()[*idx].count, ref[row]) << "op " << op;
      EXPECT_EQ(table.slots()[*idx].locked, ref[row] >= kLock);
    } else if (idx.has_value()) {
      // Inserted fresh (possibly replacing another untracked-from-now row).
      const auto& slot = table.slots()[*idx];
      EXPECT_EQ(slot.row, row);
      EXPECT_EQ(slot.count, 1);
      // Rebuild the reference from the table's own (authoritative)
      // replacement choice: drop whichever row vanished.
      std::map<dram::RowId, std::uint8_t> rebuilt;
      for (const auto& e : table.slots())
        if (e.valid) rebuilt[e.row] = e.count;
      ref = rebuilt;
    }
    // Invariant: locked entries are never evicted.
    for (const auto& [tracked_row, count] : ref) {
      if (count >= kLock) {
        bool still_there = false;
        for (const auto& e : table.slots())
          if (e.valid && e.row == tracked_row) still_there = true;
        EXPECT_TRUE(still_there) << "locked row evicted at op " << op;
      }
    }
  }
}

// ------------------------------------ counter table, differential model

namespace {

/// Independent reimplementation of the CaPRoMi counter-table contract
/// (counter_table.hpp), kept deliberately separate from the production
/// code: first-free-slot insertion, saturating 8-bit counts, the lock
/// bit set on the increment path at the threshold, and exactly one
/// rng.below(capacity) draw per full-table miss (whose victim keeps its
/// slot when locked). Because both sides consume their own copy of the
/// same seeded RNG, any divergence in *when* the table draws randomness
/// shows up as diverging state, not just diverging victims.
class RefCounterTable {
 public:
  struct Slot {
    dram::RowId row = 0;
    std::uint8_t count = 0;
    bool locked = false;
    bool valid = false;
  };

  RefCounterTable(std::size_t capacity, std::uint8_t lock_threshold)
      : slots_(capacity), lock_(lock_threshold) {}

  std::optional<std::size_t> on_activate(dram::RowId row, util::Rng& rng) {
    std::size_t free_slot = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].valid && slots_[i].row == row) {
        if (slots_[i].count < 255) ++slots_[i].count;
        if (slots_[i].count >= lock_) slots_[i].locked = true;
        return i;
      }
      if (!slots_[i].valid && free_slot == slots_.size()) free_slot = i;
    }
    if (free_slot != slots_.size()) {
      slots_[free_slot] = Slot{row, 1, false, true};
      return free_slot;
    }
    const std::size_t victim = rng.below(slots_.size());
    if (slots_[victim].locked) return std::nullopt;
    slots_[victim] = Slot{row, 1, false, true};
    return victim;
  }

  void clear() { slots_.assign(slots_.size(), Slot{}); }

  const std::vector<Slot>& slots() const { return slots_; }

 private:
  std::vector<Slot> slots_;
  std::uint8_t lock_;
};

void expect_same_state(const core::CounterTable& table,
                       const RefCounterTable& model, int op) {
  for (std::size_t i = 0; i < table.capacity(); ++i) {
    const auto& got = table.slots()[i];
    const auto& want = model.slots()[i];
    ASSERT_EQ(got.valid, want.valid) << "slot " << i << " op " << op;
    if (!want.valid) continue;
    ASSERT_EQ(got.row, want.row) << "slot " << i << " op " << op;
    ASSERT_EQ(got.count, want.count) << "slot " << i << " op " << op;
    ASSERT_EQ(got.locked, want.locked) << "slot " << i << " op " << op;
  }
}

}  // namespace

TEST(Fuzz, CounterTableDifferentialAgainstIndependentModel) {
  constexpr std::size_t kCapacity = 6;
  // Thresholds bracketing the interesting regimes: near-instant locking,
  // mid-range, and the paper's default of 64 (rarely reached, so random
  // replacement dominates).
  for (const std::uint8_t lock : {std::uint8_t{2}, std::uint8_t{5},
                                  std::uint8_t{64}}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      core::CounterTable table(kCapacity, lock, 17);
      RefCounterTable model(kCapacity, lock);
      // Two RNGs, one seed: each side draws from its own stream, so the
      // streams stay aligned only if both draw at the same operations.
      util::Rng table_rng(seed);
      util::Rng model_rng(seed);
      util::Rng driver(seed * 977 + static_cast<std::uint64_t>(lock));
      for (int op = 0; op < 4000; ++op) {
        if (driver.below(200) == 0) {
          table.clear();
          model.clear();
          continue;
        }
        // Alternate between a universe smaller than the table (pure
        // hit/increment traffic) and much larger (replacement traffic).
        const auto universe = driver.below(2) == 0 ? 4u : 64u;
        const auto row = static_cast<dram::RowId>(driver.below(universe));
        const auto got = table.on_activate(row, table_rng);
        const auto want = model.on_activate(row, model_rng);
        ASSERT_EQ(got, want) << "lock " << int(lock) << " seed " << seed
                             << " op " << op;
        expect_same_state(table, model, op);
      }
      // The RNG streams must still be aligned — i.e. the table drew
      // exactly as often as the contract says.
      EXPECT_EQ(table_rng.below(1u << 30), model_rng.below(1u << 30))
          << "table consumed a different number of random draws";
    }
  }
}

TEST(Fuzz, CounterTableCountSaturatesLockedAt255) {
  core::CounterTable table(4, 2, 17);
  util::Rng rng(9);
  std::optional<std::size_t> idx;
  for (int i = 0; i < 300; ++i) idx = table.on_activate(42, rng);
  ASSERT_TRUE(idx.has_value());
  const auto& slot = table.slots()[*idx];
  EXPECT_EQ(slot.count, 255) << "count must saturate, not wrap";
  EXPECT_TRUE(slot.locked);
  EXPECT_EQ(slot.row, 42u);
}

TEST(Fuzz, CounterTableFullyLockedRejectsEveryInsert) {
  constexpr std::size_t kCapacity = 3;
  core::CounterTable table(kCapacity, 2, 17);
  util::Rng rng(31);
  for (dram::RowId row = 0; row < kCapacity; ++row) {
    table.on_activate(row, rng);
    table.on_activate(row, rng);  // second hit reaches the threshold
  }
  for (const auto& slot : table.slots()) ASSERT_TRUE(slot.locked);
  // Every further miss must fail replacement and leave the table as is,
  // whichever victim the RNG proposes.
  for (int attempt = 0; attempt < 500; ++attempt) {
    const auto row = static_cast<dram::RowId>(100 + attempt);
    EXPECT_EQ(table.on_activate(row, rng), std::nullopt);
  }
  for (std::size_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(table.slots()[i].row, static_cast<dram::RowId>(i));
    EXPECT_EQ(table.slots()[i].count, 2);
  }
  EXPECT_EQ(table.size(), kCapacity);
}

// -------------------------------------------------- TWiCe vs naive counts

TEST(Fuzz, TwicePrunedCountsNeverExceedTrueCounts) {
  mitigation::TwiceConfig cfg;
  cfg.entries = 64;
  cfg.row_threshold = 1000;
  cfg.pruning_slope = 4;
  cfg.refresh_intervals = 64;
  cfg.rows_per_bank = 1024;
  mitigation::Twice twice(cfg, util::Rng(1));

  std::map<dram::RowId, std::uint32_t> true_counts;
  mem::ActionBuffer out;
  util::Rng rng(303);
  mem::MitigationContext ctx;
  for (std::uint32_t interval = 1; interval < 40; ++interval) {
    for (int a = 0; a < 60; ++a) {
      // Zipf-ish: a few hot rows + noise.
      const dram::RowId row = rng.below(4) == 0
                                  ? static_cast<dram::RowId>(rng.below(3))
                                  : static_cast<dram::RowId>(rng.below(900));
      ctx.interval_in_window = interval;
      out.clear();
      twice.on_activate(row, ctx, out);
      ++true_counts[row];
      // If TWiCe fired, the row genuinely crossed the threshold.
      if (!out.empty()) {
        EXPECT_GE(true_counts[row], cfg.row_threshold);
        true_counts[row] = 0;  // counting restarts after mitigation
      }
    }
    ctx.interval_in_window = interval;
    out.clear();
    twice.on_refresh(ctx, out);
    EXPECT_EQ(twice.overflow_drops(), 0u) << "interval " << interval;
  }
}

// --------------------------------------------------- pipeline determinism

TEST(Fuzz, FullPipelineIsBitStableAcrossRuns) {
  exp::SimConfig config;
  config.geometry.banks_per_rank = 2;
  config.windows = 1;
  exp::install_standard_campaign(config);
  for (const auto t : {hw::Technique::kLoLiPRoMi, hw::Technique::kCaPRoMi,
                       hw::Technique::kProHit}) {
    const auto a = exp::run_simulation(t, config);
    const auto b = exp::run_simulation(t, config);
    EXPECT_EQ(a.stats.demand_acts, b.stats.demand_acts);
    EXPECT_EQ(a.stats.extra_acts, b.stats.extra_acts);
    EXPECT_EQ(a.stats.fp_extra_acts, b.stats.fp_extra_acts);
    EXPECT_EQ(a.stats.triggers, b.stats.triggers);
    EXPECT_EQ(a.flips, b.flips);
  }
}

// ------------------------------------------------- random configurations

// Property: any valid randomly-drawn configuration runs to completion
// with sane invariants (fp <= extra, extra consistent with triggers,
// refreshes cover the windows, no crash).
TEST(Fuzz, RandomConfigurationsKeepInvariants) {
  util::Rng rng(707);
  for (int trial = 0; trial < 10; ++trial) {
    exp::SimConfig cfg;
    cfg.geometry.banks_per_rank = 1u << rng.below(3);  // 1..4 banks
    cfg.geometry.rows_per_bank = 131072;
    cfg.windows = 1;
    cfg.seed = 7000 + trial;
    cfg.workload.benign_acts_per_interval_per_bank =
        1.0 + static_cast<double>(rng.below(12));
    cfg.refresh_policy = static_cast<dram::RefreshPolicy>(rng.below(4));
    cfg.remap_rows = rng.bernoulli(0.5);
    cfg.act_n_radius = 1 + static_cast<std::uint32_t>(rng.below(2));
    cfg.disturbance.variation_pct = static_cast<std::uint32_t>(rng.below(30));
    if (rng.bernoulli(0.7)) {
      auto attack = trace::make_multi_aggressor_attack(
          static_cast<dram::BankId>(rng.below(cfg.geometry.total_banks())),
          cfg.geometry.rows_per_bank, 1 + rng.below(6), rng);
      attack.interarrival_ps =
          cfg.timing.t_refi_ps() / (5 + rng.below(30));
      cfg.workload.attacks = {attack};
    }
    cfg.finalize();
    const auto technique =
        hw::kAllTechniques[rng.below(hw::kAllTechniques.size())];
    const auto r = exp::run_simulation(technique, cfg);
    EXPECT_LE(r.stats.fp_extra_acts, r.stats.extra_acts)
        << r.technique << " trial " << trial;
    // Each trigger costs at most 2*radius activations (act_n) and at
    // least one.
    EXPECT_LE(r.stats.extra_acts, r.stats.triggers * 2 * cfg.act_n_radius)
        << "trial " << trial;
    if (r.stats.triggers > 0) EXPECT_GE(r.stats.extra_acts, r.stats.triggers);
    EXPECT_EQ(r.stats.refresh_intervals,
              static_cast<std::uint64_t>(cfg.windows) *
                  cfg.timing.refresh_intervals)
        << "trial " << trial;
    EXPECT_EQ(r.stats.rows_refreshed,
              static_cast<std::uint64_t>(cfg.windows) *
                  cfg.geometry.rows_per_bank * cfg.geometry.total_banks())
        << "trial " << trial;
    EXPECT_EQ(r.flips, r.flip_events.size());
  }
}

// ------------------------------------------- buffered vs per-call draws

TEST(Fuzz, BufferedRngStreamMatchesBareRngAtEveryCapacity) {
  // The batched-draw contract at the stream level: a BufferedRng must
  // hand out the exact word sequence of the bare generator it wraps —
  // for every derived draw (below's rejection loop, bernoulli_q32's
  // draw-nothing endpoints, uniform) and for any buffer capacity,
  // including 1 (which degenerates to per-call draws).
  for (const char* capacity : {"1", "7", "256", "4096"}) {
    ASSERT_EQ(setenv("TVP_RNG_BUFFER", capacity, 1), 0);
    util::Rng control(20240 + capacity[0]);
    util::Rng bare(777);
    util::BufferedRng buffered{util::Rng(777)};
    for (int op = 0; op < 20000; ++op) {
      switch (control.below(5)) {
        case 0: {
          ASSERT_EQ(bare.next(), buffered.next()) << "cap " << capacity
                                                  << " op " << op;
          break;
        }
        case 1: {
          // Awkward bounds keep Lemire's rejection loop exercised.
          const std::uint64_t bound = control.below(3) == 0
                                          ? (~0ull >> control.below(8)) | 1
                                          : 1 + control.below(1000);
          ASSERT_EQ(bare.below(bound), buffered.below(bound))
              << "cap " << capacity << " op " << op;
          break;
        }
        case 2: {
          // Hits both draw-nothing endpoints and the middle.
          const std::uint64_t q32 = control.below(3) == 0
                                        ? (control.below(2) << 32)
                                        : control.below(1ull << 32);
          ASSERT_EQ(bare.bernoulli_q32(q32), buffered.bernoulli_q32(q32))
              << "cap " << capacity << " op " << op;
          break;
        }
        case 3: {
          ASSERT_EQ(bare.uniform(), buffered.uniform())
              << "cap " << capacity << " op " << op;
          break;
        }
        default: {
          const std::uint64_t lo = control.below(100);
          const std::uint64_t hi = lo + control.below(1000);
          ASSERT_EQ(bare.between(lo, hi), buffered.between(lo, hi))
              << "cap " << capacity << " op " << op;
          break;
        }
      }
    }
  }
  unsetenv("TVP_RNG_BUFFER");
}

// ------------------------------------------------- merge vs offline sort

TEST(Fuzz, MergedSourceEqualsOfflineSort) {
  util::Rng rng(404);
  std::vector<std::unique_ptr<trace::TraceSource>> sources;
  std::vector<trace::AccessRecord> all;
  for (int s = 0; s < 5; ++s) {
    std::vector<trace::AccessRecord> records;
    std::uint64_t t = rng.below(100);
    for (int i = 0; i < 200; ++i) {
      trace::AccessRecord r;
      r.time_ps = t;
      r.bank = static_cast<dram::BankId>(s);
      r.row = static_cast<dram::RowId>(i);
      records.push_back(r);
      t += rng.below(50);
    }
    all.insert(all.end(), records.begin(), records.end());
    sources.push_back(std::make_unique<trace::VectorSource>(std::move(records)));
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const auto& a, const auto& b) { return a.time_ps < b.time_ps; });
  trace::MergedSource merged(std::move(sources));
  const auto merged_records = trace::drain(merged);
  ASSERT_EQ(merged_records.size(), all.size());
  for (std::size_t i = 0; i < all.size(); ++i)
    EXPECT_EQ(merged_records[i].time_ps, all[i].time_ps) << "index " << i;
}

}  // namespace
}  // namespace tvp
