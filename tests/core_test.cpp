// Unit tests for tvp::core — Eq. (1)/(2) weighting, the history table,
// the CaPRoMi counter table, and the four TiVaPRoMi variants.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tvp/core/counter_table.hpp"
#include "tvp/core/history_table.hpp"
#include "tvp/core/tivapromi.hpp"
#include "tvp/core/weighting.hpp"
#include "tvp/util/bitutil.hpp"

namespace tvp::core {
namespace {

// ---------------------------------------------------------------- weighting

TEST(Weighting, LinearMatchesEq1) {
  // i >= f_r: simple difference.
  EXPECT_EQ(linear_weight(10, 3, 64), 7u);
  EXPECT_EQ(linear_weight(5, 5, 64), 0u);
  // i < f_r: wraps by RefInt.
  EXPECT_EQ(linear_weight(2, 60, 64), 6u);
  EXPECT_EQ(linear_weight(0, 63, 64), 1u);
}

TEST(Weighting, LogMatchesEq2Examples) {
  // The paper's example: all values between 16 and 31 weigh 32.
  for (std::uint32_t w = 16; w <= 31; ++w) EXPECT_EQ(log_weight(w), 32u);
  EXPECT_EQ(log_weight(0), 1u);  // the +1 corner case
  EXPECT_EQ(log_weight(1), 2u);
  EXPECT_EQ(log_weight(2), 4u);
  EXPECT_EQ(log_weight(3), 4u);
  EXPECT_EQ(log_weight(4), 8u);
  EXPECT_EQ(log_weight(8191), 8192u);
}

// Property: w_log is the smallest power of two >= w+1, and is monotone.
class LogWeightProperty : public ::testing::TestWithParam<std::uint32_t> {};
TEST_P(LogWeightProperty, SmallestPow2AboveWPlus1) {
  const std::uint32_t w = GetParam();
  const std::uint32_t wl = log_weight(w);
  EXPECT_TRUE(util::is_pow2(wl));
  EXPECT_GE(wl, w + 1);
  EXPECT_LT(wl / 2, w + 1);
  if (w > 0) EXPECT_GE(wl, log_weight(w - 1));
  EXPECT_GE(wl, w);  // log never weakens the hazard vs linear
}
INSTANTIATE_TEST_SUITE_P(Sweep, LogWeightProperty,
                         ::testing::Values(0, 1, 2, 3, 4, 7, 8, 15, 16, 31, 32,
                                           100, 1000, 4095, 4096, 8191));

TEST(Weighting, LogWeightTableMatchesFunction) {
  const auto table = log_weight_table(100);
  ASSERT_EQ(table.size(), 101u);
  for (std::uint32_t w = 0; w <= 100; ++w) EXPECT_EQ(table[w], log_weight(w));
}

// ------------------------------------------------------------- HistoryTable

TEST(HistoryTable, LookupAndInsert) {
  HistoryTable table(4, 17, 13);
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.lookup(5).has_value());
  table.insert(5, 100);
  ASSERT_TRUE(table.lookup(5).has_value());
  EXPECT_EQ(*table.lookup(5), 100u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(HistoryTable, UpdateKeepsSlot) {
  HistoryTable table(4, 17, 13);
  table.insert(5, 100);
  const auto slot = table.index_of(5);
  table.insert(5, 200);
  EXPECT_EQ(table.index_of(5), slot);
  EXPECT_EQ(*table.lookup(5), 200u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(HistoryTable, FifoEvictionWhenFull) {
  HistoryTable table(3, 17, 13);
  table.insert(1, 10);
  table.insert(2, 20);
  table.insert(3, 30);
  table.insert(4, 40);  // evicts row 1 (oldest)
  EXPECT_FALSE(table.lookup(1).has_value());
  EXPECT_TRUE(table.lookup(2).has_value());
  EXPECT_TRUE(table.lookup(4).has_value());
  EXPECT_EQ(table.size(), 3u);
}

TEST(HistoryTable, SlotIndicesStableAcrossEvictions) {
  HistoryTable table(3, 17, 13);
  table.insert(1, 10);
  table.insert(2, 20);
  const auto slot2 = *table.index_of(2);
  table.insert(3, 30);
  table.insert(4, 40);  // overwrites slot of row 1 only
  EXPECT_EQ(*table.index_of(2), slot2);
  EXPECT_EQ(table.row_at(slot2), 2u);
  EXPECT_EQ(table.interval_at(slot2), 20u);
}

TEST(HistoryTable, ClearEmptiesEverything) {
  HistoryTable table(4, 17, 13);
  table.insert(1, 10);
  table.insert(2, 20);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.lookup(1).has_value());
  EXPECT_THROW(table.interval_at(0), std::out_of_range);
}

TEST(HistoryTable, StateBitsMatchPaper) {
  // 32 entries x (17-bit row + 13-bit interval) = 960 bits = 120 B.
  const HistoryTable table(32, 17, 13);
  EXPECT_EQ(table.state_bits(), 960u);
}

TEST(HistoryTable, RejectsBadCapacity) {
  EXPECT_THROW(HistoryTable(0, 17, 13), std::invalid_argument);
  EXPECT_THROW(HistoryTable(300, 17, 13), std::invalid_argument);
}

TEST(HistoryTable, RejectsCapacity256) {
  // Slot index 255 would collide with CounterTable::kNoLink (0xFF): a
  // valid link to slot 255 becomes indistinguishable from "no link" in
  // CaPRoMi::on_refresh. 255 slots is the maximum.
  EXPECT_THROW(HistoryTable(256, 17, 13), std::invalid_argument);
  const HistoryTable max_table(255, 17, 13);
  EXPECT_EQ(max_table.capacity(), 255u);
}

// ------------------------------------------------------------- CounterTable

TEST(CounterTable, InsertAndIncrement) {
  CounterTable table(4, 16, 17);
  util::Rng rng(1);
  const auto i1 = table.on_activate(7, rng);
  ASSERT_TRUE(i1.has_value());
  EXPECT_EQ(table.slots()[*i1].count, 1u);
  const auto i2 = table.on_activate(7, rng);
  EXPECT_EQ(i1, i2);
  EXPECT_EQ(table.slots()[*i1].count, 2u);
  EXPECT_EQ(table.size(), 1u);
}

TEST(CounterTable, LockAtThreshold) {
  CounterTable table(4, 3, 17);
  util::Rng rng(2);
  table.on_activate(7, rng);
  table.on_activate(7, rng);
  EXPECT_FALSE(table.slots()[0].locked);
  table.on_activate(7, rng);
  EXPECT_TRUE(table.slots()[0].locked);
}

TEST(CounterTable, LockedEntriesSurviveReplacement) {
  CounterTable table(2, 2, 17);
  util::Rng rng(3);
  table.on_activate(1, rng);
  table.on_activate(1, rng);  // locked now
  table.on_activate(2, rng);
  table.on_activate(2, rng);  // locked now
  // Table full of locked entries: every replacement attempt must fail.
  int failures = 0;
  for (dram::RowId r = 10; r < 40; ++r)
    failures += !table.on_activate(r, rng).has_value();
  EXPECT_EQ(failures, 30);
  EXPECT_TRUE(table.slots()[0].locked);
  EXPECT_TRUE(table.slots()[1].locked);
}

TEST(CounterTable, RandomReplacementWhenFullAndUnlocked) {
  CounterTable table(2, 100, 17);
  util::Rng rng(4);
  table.on_activate(1, rng);
  table.on_activate(2, rng);
  const auto idx = table.on_activate(3, rng);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(table.slots()[*idx].row, 3u);
  EXPECT_EQ(table.slots()[*idx].count, 1u);
}

TEST(CounterTable, CountSaturates) {
  CounterTable table(2, 200, 17);
  util::Rng rng(5);
  for (int i = 0; i < 300; ++i) table.on_activate(1, rng);
  EXPECT_EQ(table.slots()[0].count, 255u);
}

TEST(CounterTable, LinksAndClear) {
  CounterTable table(2, 16, 17);
  util::Rng rng(6);
  const auto idx = table.on_activate(1, rng);
  table.set_link(*idx, 5);
  EXPECT_EQ(table.slots()[*idx].link, 5u);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_FALSE(table.slots()[0].valid);
  EXPECT_THROW(table.set_link(0, 1), std::out_of_range);
}

TEST(CounterTable, StateBitsMatchPaper) {
  // 64 entries x (17 row + 8 count + 1 lock + 5 link + 1 valid) = 2048
  // bits = 256 B; together with the 120 B history table: 376 B ~ the
  // paper's 374 B per 1 GB bank.
  const CounterTable table(64, 16, 17);
  EXPECT_EQ(table.state_bits(), 2048u);
}

TEST(CounterTable, StateBitsFollowLinkWidth) {
  // The link field is log2(history capacity) wide, not a hardcoded 5
  // bits: an 8-entry history table needs 3-bit links, a 128-entry one 7.
  const CounterTable narrow(64, 16, 17, util::bits_for(8));
  EXPECT_EQ(narrow.state_bits(), 64u * (17 + 8 + 1 + 3 + 1));
  const CounterTable wide(64, 16, 17, util::bits_for(128));
  EXPECT_EQ(wide.state_bits(), 64u * (17 + 8 + 1 + 7 + 1));
}

TEST(CaPRoMi, StateBitsFollowHistoryCapacity) {
  // Regression: CaPRoMi's counter links must widen with the configured
  // history capacity so Fig. 4 storage accounting stays honest for
  // non-default history_entries.
  TiVaPRoMiConfig small = TiVaPRoMiConfig{};
  small.history_entries = 8;  // 3-bit links
  CaPRoMi ca_small(small, util::Rng(1));
  TiVaPRoMiConfig large = TiVaPRoMiConfig{};
  large.history_entries = 128;  // 7-bit links
  CaPRoMi ca_large(large, util::Rng(1));
  const std::uint64_t row_bits = 17, interval_bits = 13;
  EXPECT_EQ(ca_small.state_bits(),
            8 * (row_bits + interval_bits) + 64 * (row_bits + 8 + 1 + 3 + 1));
  EXPECT_EQ(ca_large.state_bits(),
            128 * (row_bits + interval_bits) + 64 * (row_bits + 8 + 1 + 7 + 1));
}

// ---------------------------------------------------------------- TiVaPRoMi

TiVaPRoMiConfig small_config() {
  TiVaPRoMiConfig cfg;
  cfg.refresh_intervals = 64;
  cfg.rows_per_bank = 1024;  // RowsPI = 16
  cfg.pbase_exp = 10;        // large Pbase for testable probabilities
  cfg.history_entries = 8;
  cfg.counter_entries = 8;
  return cfg;
}

mem::MitigationContext ctx_at(std::uint32_t interval, bool window_start = false) {
  mem::MitigationContext ctx;
  ctx.interval_in_window = interval;
  ctx.global_interval = interval;
  ctx.window_start = window_start;
  return ctx;
}

TEST(TiVaPRoMiConfig, Validation) {
  TiVaPRoMiConfig cfg;  // paper defaults
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_EQ(cfg.rows_per_interval(), 16u);
  EXPECT_NEAR(cfg.pbase().value(), std::ldexp(1.0, -23), 1e-12);
  cfg.rows_per_bank = 1000;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = TiVaPRoMiConfig{};
  cfg.pbase_exp = 10;  // RefInt * Pbase = 8 > 1
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = TiVaPRoMiConfig{};
  cfg.history_entries = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TiVaPRoMiConfig, ConstructorValidatesBeforeMembersConsumeConfig) {
  // Regression: the base constructor used to build the history table
  // from the raw config and only validate() afterwards, so an invalid
  // config (zero rows, zero capacity, >255 entries) reached the table
  // constructors first. The constructor must reject it up front with
  // the config's own diagnostic.
  auto zero_rows = small_config();
  zero_rows.rows_per_bank = 0;
  EXPECT_THROW(
      ProbabilisticTiVaPRoMi(Variant::kLinear, zero_rows, util::Rng(1)),
      std::invalid_argument);

  auto zero_history = small_config();
  zero_history.history_entries = 0;
  EXPECT_THROW(
      ProbabilisticTiVaPRoMi(Variant::kLinear, zero_history, util::Rng(1)),
      std::invalid_argument);
  EXPECT_THROW(CaPRoMi(zero_history, util::Rng(1)), std::invalid_argument);

  auto wide_history = small_config();
  wide_history.history_entries = 256;  // breaks the 8-bit link encoding
  EXPECT_THROW(CaPRoMi(wide_history, util::Rng(1)), std::invalid_argument);
}

TEST(ProbabilisticTiVaPRoMi, WeightUsesRefreshSlotByDefault) {
  ProbabilisticTiVaPRoMi li(Variant::kLinear, small_config(), util::Rng(1));
  // Row 100 -> slot 6; at interval 10 the weight is 4.
  EXPECT_EQ(li.weight_for(100, 10), 4u);
  // Before its slot the weight wraps: interval 2 -> 2 - 6 + 64 = 60.
  EXPECT_EQ(li.weight_for(100, 2), 60u);
}

TEST(ProbabilisticTiVaPRoMi, VariantWeighting) {
  const auto cfg = small_config();
  ProbabilisticTiVaPRoMi li(Variant::kLinear, cfg, util::Rng(1));
  ProbabilisticTiVaPRoMi lo(Variant::kLogarithmic, cfg, util::Rng(1));
  ProbabilisticTiVaPRoMi loli(Variant::kLogLinear, cfg, util::Rng(1));
  EXPECT_EQ(li.weight_for(100, 10), 4u);
  EXPECT_EQ(lo.weight_for(100, 10), 8u);    // 2^ceil(log2(5))
  EXPECT_EQ(loli.weight_for(100, 10), 8u);  // not in table -> log branch
  EXPECT_STREQ(li.name(), "LiPRoMi");
  EXPECT_STREQ(lo.name(), "LoPRoMi");
  EXPECT_STREQ(loli.name(), "LoLiPRoMi");
}

TEST(ProbabilisticTiVaPRoMi, TriggerInsertsIntoHistoryAndEmitsActN) {
  auto cfg = small_config();
  cfg.pbase_exp = 1;  // p = w/2: triggers almost surely for w >= 2
  // RefInt * Pbase check would fail; bypass validation by construction
  // with small RefInt.
  cfg.refresh_intervals = 2;
  cfg.rows_per_bank = 32;
  ProbabilisticTiVaPRoMi li(Variant::kLinear, cfg, util::Rng(3));
  mem::ActionBuffer out;
  // weight at interval 1 for row 0 (slot 0) is 1 -> p = 0.5.
  int triggered = 0;
  for (int i = 0; i < 100 && out.empty(); ++i) li.on_activate(0, ctx_at(1), out);
  triggered = !out.empty();
  ASSERT_TRUE(triggered);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
  EXPECT_EQ(out[0].row, 0u);
  EXPECT_EQ(out[0].suspect, 0u);
  EXPECT_TRUE(li.history().lookup(0).has_value());
}

TEST(ProbabilisticTiVaPRoMi, HistoryHitSuppressesWeight) {
  auto cfg = small_config();
  ProbabilisticTiVaPRoMi li(Variant::kLinear, cfg, util::Rng(5));
  // Force a history entry via many activations at high weight.
  mem::ActionBuffer out;
  for (int i = 0; i < 100000 && out.empty(); ++i)
    li.on_activate(100, ctx_at(50), out);
  ASSERT_FALSE(out.empty());
  // Weight is now measured from the stored interval (50), not slot 6.
  EXPECT_EQ(li.weight_for(100, 52), 2u);
  // LoLi uses the *linear* branch on a table hit.
  ProbabilisticTiVaPRoMi loli(Variant::kLogLinear, cfg, util::Rng(5));
  out.clear();
  for (int i = 0; i < 100000 && out.empty(); ++i)
    loli.on_activate(100, ctx_at(50), out);
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(loli.weight_for(100, 52), 2u);  // linear, not log(2)=4
}

TEST(ProbabilisticTiVaPRoMi, WindowStartClearsHistory) {
  auto cfg = small_config();
  ProbabilisticTiVaPRoMi li(Variant::kLinear, cfg, util::Rng(7));
  mem::ActionBuffer out;
  for (int i = 0; i < 100000 && out.empty(); ++i)
    li.on_activate(100, ctx_at(50), out);
  ASSERT_TRUE(li.history().lookup(100).has_value());
  out.clear();
  li.on_refresh(ctx_at(5), out);  // mid-window REF: keeps the table
  EXPECT_TRUE(li.history().lookup(100).has_value());
  li.on_refresh(ctx_at(0, /*window_start=*/true), out);
  EXPECT_FALSE(li.history().lookup(100).has_value());
  EXPECT_TRUE(out.empty());  // probabilistic variants never act at REF
}

TEST(ProbabilisticTiVaPRoMi, ZeroWeightNeverTriggers) {
  auto cfg = small_config();
  ProbabilisticTiVaPRoMi li(Variant::kLinear, cfg, util::Rng(9));
  mem::ActionBuffer out;
  // Row 0 has slot 0; at interval 0 the weight is 0 -> p = 0.
  for (int i = 0; i < 50000; ++i) li.on_activate(0, ctx_at(0), out);
  EXPECT_TRUE(out.empty());
}

TEST(ProbabilisticTiVaPRoMi, StateBitsAndFactoryNames) {
  const TiVaPRoMiConfig cfg;  // paper defaults
  ProbabilisticTiVaPRoMi li(Variant::kLinear, cfg, util::Rng(1));
  EXPECT_EQ(li.state_bits(), 960u);  // 120 B
  EXPECT_THROW(
      ProbabilisticTiVaPRoMi(Variant::kCounterAssisted, cfg, util::Rng(1)),
      std::invalid_argument);
  const auto factory = make_tivapromi_factory(Variant::kCounterAssisted, cfg);
  const auto instance = factory(0, util::Rng(1));
  EXPECT_STREQ(instance->name(), "CaPRoMi");
}

TEST(CaPRoMi, CountsDuringIntervalDecidesAtRef) {
  auto cfg = small_config();
  CaPRoMi ca(cfg, util::Rng(11));
  mem::ActionBuffer out;
  // Activations never produce immediate actions.
  for (int i = 0; i < 200; ++i) {
    ca.on_activate(100, ctx_at(40), out);
    ASSERT_TRUE(out.empty());
  }
  EXPECT_EQ(ca.counters().size(), 1u);
  // At REF, cnt (saturated 255) * w_log(34->64) * 2^-10 >= 1: certain.
  ca.on_refresh(ctx_at(40), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, 100u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
  // The counter table restarts every interval.
  EXPECT_EQ(ca.counters().size(), 0u);
  // ...and the triggered row entered the history table.
  EXPECT_TRUE(ca.history().lookup(100).has_value());
}

TEST(CaPRoMi, WindowStartClearsBothTables) {
  auto cfg = small_config();
  CaPRoMi ca(cfg, util::Rng(13));
  mem::ActionBuffer out;
  for (int i = 0; i < 200; ++i) ca.on_activate(100, ctx_at(40), out);
  ca.on_refresh(ctx_at(40), out);
  out.clear();
  for (int i = 0; i < 10; ++i) ca.on_activate(7, ctx_at(0), out);
  ca.on_refresh(ctx_at(0, /*window_start=*/true), out);
  EXPECT_TRUE(out.empty());  // window boundary: no decisions
  EXPECT_EQ(ca.counters().size(), 0u);
  EXPECT_FALSE(ca.history().lookup(100).has_value());
}

TEST(CaPRoMi, HistoryLinkReducesWeight) {
  auto cfg = small_config();
  CaPRoMi ca(cfg, util::Rng(17));
  mem::ActionBuffer out;
  // First trigger at interval 40 -> history holds (100, 40).
  for (int i = 0; i < 200; ++i) ca.on_activate(100, ctx_at(40), out);
  ca.on_refresh(ctx_at(40), out);
  ASSERT_EQ(out.size(), 1u);
  out.clear();
  // Shortly after, a single activation: weight from interval 40, w = 1,
  // w_log = 2, p = 1*2*2^-10 ~ 0.002: must essentially never fire.
  int fired = 0;
  for (int trial = 0; trial < 50; ++trial) {
    ca.on_activate(100, ctx_at(41), out);
    ca.on_refresh(ctx_at(41), out);
    fired += static_cast<int>(out.size());
    out.clear();
  }
  EXPECT_LT(fired, 5);
  // Without the link, w = 41 - slot(100)=6 -> 35, w_log = 64,
  // p = 64/1024 = 6%/activation-decision: the suppression is real.
}

TEST(CaPRoMi, ReissueCooldownSuppressesButStaysSafe) {
  auto cfg = small_config();
  cfg.capromi_reissue_cooldown = 8;
  CaPRoMi ca(cfg, util::Rng(23));
  mem::ActionBuffer out;
  // First trigger issues (no history yet).
  for (int i = 0; i < 200; ++i) ca.on_activate(100, ctx_at(40), out);
  ca.on_refresh(ctx_at(40), out);
  ASSERT_EQ(out.size(), 1u);
  out.clear();
  // Hammering on: decisions keep firing (cnt 255, w_log >= 1) but inside
  // the cooldown window they are suppressed without history updates...
  for (std::uint32_t i = 41; i < 48; ++i) {
    for (int a = 0; a < 200; ++a) ca.on_activate(100, ctx_at(i), out);
    ca.on_refresh(ctx_at(i), out);
  }
  EXPECT_TRUE(out.empty());
  EXPECT_GT(ca.suppressed_reissues(), 0u);
  // ...and once the reference has aged past the cooldown, the issue is
  // guaranteed to come back (p saturates at cnt * w_log * Pbase >= 1).
  for (std::uint32_t i = 48; i < 56 && out.empty(); ++i) {
    for (int a = 0; a < 200; ++a) ca.on_activate(100, ctx_at(i), out);
    ca.on_refresh(ctx_at(i), out);
  }
  EXPECT_FALSE(out.empty());
}

TEST(CaPRoMi, CooldownZeroMatchesPaperBehaviour) {
  auto cfg = small_config();
  CaPRoMi paper_rules(cfg, util::Rng(29));
  cfg.capromi_reissue_cooldown = 0;
  CaPRoMi explicit_zero(cfg, util::Rng(29));
  mem::ActionBuffer a, b;
  for (std::uint32_t i = 1; i < 40; ++i) {
    for (int act = 0; act < 30; ++act) {
      paper_rules.on_activate(act % 7 * 50, ctx_at(i), a);
      explicit_zero.on_activate(act % 7 * 50, ctx_at(i), b);
    }
    paper_rules.on_refresh(ctx_at(i), a);
    explicit_zero.on_refresh(ctx_at(i), b);
  }
  EXPECT_EQ(a.size(), b.size());
  EXPECT_EQ(paper_rules.suppressed_reissues(), 0u);
}

TEST(CaPRoMi, StateBitsMatchPaper) {
  TiVaPRoMiConfig cfg;  // paper defaults: 32-entry history, 64 counters
  CaPRoMi ca(cfg, util::Rng(1));
  EXPECT_EQ(ca.state_bits(), 960u + 2048u);  // 376 B total
}

TEST(TiVaPRoMi, DeterministicForSameSeed) {
  const auto cfg = small_config();
  for (const auto variant : {Variant::kLinear, Variant::kLogarithmic,
                             Variant::kLogLinear}) {
    ProbabilisticTiVaPRoMi a(variant, cfg, util::Rng(99));
    ProbabilisticTiVaPRoMi b(variant, cfg, util::Rng(99));
    mem::ActionBuffer out_a, out_b;
    for (int i = 0; i < 20000; ++i) {
      a.on_activate(i % 1024, ctx_at(i % 64), out_a);
      b.on_activate(i % 1024, ctx_at(i % 64), out_b);
    }
    EXPECT_EQ(out_a.size(), out_b.size());
  }
}

}  // namespace
}  // namespace tvp::core
