// Crash-consistency torture harness for the campaign service.
//
// PR 3 proved kill-and-resume at two hand-picked kill points; this
// harness proves it at *every* syscall in the journal path. A counting
// pass runs each scenario once with inert failpoints to learn how often
// every `journal.*` site fires, then the torture passes replay the
// scenario once per (site, Nth occurrence) with a fault injected at
// exactly that point — an errno (the engine must fail the job
// gracefully) or SIGKILL in a forked child (the process must die with
// no unwinding). After every injection the campaign is resumed with
// failpoints cleared and must finish with a CSV byte-identical to an
// uninterrupted run.
//
// Requires a build with -DTVP_ENABLE_FAILPOINTS=ON (scripts/torture.sh);
// the default build compiles the sites out and skips this test binary.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "tvp/exp/config_io.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/exp/sweep.hpp"
#include "tvp/svc/client.hpp"
#include "tvp/svc/engine.hpp"
#include "tvp/svc/journal.hpp"
#include "tvp/svc/server.hpp"
#include "tvp/trace/corpus.hpp"
#include "tvp/util/config.hpp"
#include "tvp/util/failpoint.hpp"
#include "tvp/util/log.hpp"

#if !defined(TVP_ENABLE_FAILPOINTS) || !TVP_ENABLE_FAILPOINTS
#error "torture_test requires -DTVP_ENABLE_FAILPOINTS=ON"
#endif

namespace tvp::svc {
namespace {

namespace fs = std::filesystem;
namespace failpoint = util::failpoint;

static_assert(failpoint::compiled_in(),
              "torture harness needs armed failpoint sites");

/// The campaign every torture case runs: two cells, well under a second.
JobSpec torture_spec() {
  JobSpec spec;
  spec.name = "torture";
  spec.config_text =
      "geometry.banks = 2\n"
      "windows = 1\n"
      "workload.benign_rate = 5\n"
      "seed = 11\n";
  spec.param_key = "windows";
  spec.values = {"1", "2"};
  spec.techniques = {"PARA"};
  return spec;
}

const exp::SweepResult& reference_sweep() {
  static const exp::SweepResult sweep = [] {
    const JobSpec spec = torture_spec();
    exp::SweepHooks hooks;
    hooks.jobs = 1;
    return exp::run_param_sweep(util::KeyValueFile::parse(spec.config_text),
                                spec.param_key, spec.values,
                                spec.parsed_techniques(), hooks);
  }();
  return sweep;
}

const std::string& reference_csv() {
  static const std::string csv = exp::sweep_to_csv(reference_sweep());
  return csv;
}

/// What one engine lifetime on a journal dir produced. state stays
/// kQueued when the campaign never reached a terminal state (e.g. the
/// submit itself was rejected; the reason is in error).
struct RunOutcome {
  JobState state = JobState::kQueued;
  std::string error;
  std::string csv;
};

/// Starts an engine on @p dir, resumes the journaled campaign (or
/// submits a fresh one when the dir is empty), waits for a terminal
/// state, and shuts down. gtest-free so the forked crash children can
/// use it too.
RunOutcome run_campaign_once(const std::string& dir) {
  RunOutcome out;
  EngineConfig config;
  config.journal_dir = dir;
  config.sweep_jobs = 1;
  CampaignEngine engine(config);
  const std::vector<std::uint64_t> resumed = engine.start();
  std::uint64_t id = 0;
  if (!resumed.empty()) {
    id = resumed.front();
  } else {
    std::string error;
    id = engine.submit(torture_spec(), &error);
    if (id == 0) {
      out.error = error;
      engine.shutdown(true);
      return out;
    }
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    const auto status = engine.status(id);
    if (status && (status->state == JobState::kDone ||
                   status->state == JobState::kFailed ||
                   status->state == JobState::kCancelled)) {
      out.state = status->state;
      out.error = status->error;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (out.state == JobState::kDone)
    if (const auto result = engine.result(id))
      out.csv = exp::sweep_to_csv(*result);
  engine.shutdown(true);
  return out;
}

/// Scenario preparation: what is on disk before the tortured engine
/// starts. "fresh" = empty dir (covers submit/create/append/done);
/// "torn resume" = a journal holding the header, one cell and a torn
/// trailing line (covers replay, tail truncation and resumed appends).
using Prep = std::function<void(const std::string& dir)>;

void prepare_fresh(const std::string&) {}

void prepare_torn_resume(const std::string& dir) {
  const std::string file =
      (fs::path(dir) / (torture_spec().name + ".tvpj")).string();
  {
    Journal journal = Journal::create(file, torture_spec());
    journal.append_cell(0, reference_sweep().cells[0]);
  }
  std::ofstream out(file, std::ios::app | std::ios::binary);
  out << "{\"crc\":123,\"e\":{\"type\":\"cell\",\"cel";  // crash mid-append
}

struct TortureCase {
  std::string site;
  std::uint64_t nth;
};

class TortureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(::testing::TempDir()) /
           (std::string("tvp_torture_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    failpoint::reset();
  }
  void TearDown() override {
    failpoint::reset();
    fs::remove_all(dir_);
  }

  std::string path(const std::string& leaf) const {
    return (dir_ / leaf).string();
  }

  /// Counting pass: run @p prep + campaign once with inert failpoints
  /// and enumerate every (journal site, Nth occurrence) pair that
  /// fired. The campaign is deterministic (sweep_jobs = 1), so the
  /// torture passes see the same sequence.
  std::vector<TortureCase> enumerate_cases(const Prep& prep,
                                           const std::string& label) {
    const std::string dir = path("count_" + label);
    fs::create_directories(dir);
    prep(dir);
    failpoint::reset();
    const RunOutcome out = run_campaign_once(dir);
    EXPECT_EQ(out.state, JobState::kDone) << out.error;
    EXPECT_EQ(out.csv, reference_csv());
    std::vector<TortureCase> cases;
    for (const auto& site : journal_failpoint_sites())
      for (std::uint64_t n = 1; n <= failpoint::hits(site); ++n)
        cases.push_back({site, n});
    failpoint::reset();
    EXPECT_FALSE(cases.empty()) << "no journal sites fired in " << label;
    return cases;
  }

  /// Errno torture: inject EIO at exactly (site, nth); whatever the
  /// engine made of it, a resume with failpoints cleared must finish
  /// byte-identical to an uninterrupted run.
  void errno_torture(const Prep& prep, const std::string& label) {
    std::size_t index = 0;
    for (const TortureCase& torture : enumerate_cases(prep, label)) {
      SCOPED_TRACE(label + ": EIO at " + torture.site + "@" +
                   std::to_string(torture.nth));
      const std::string dir =
          path(label + "_eio_" + std::to_string(index++));
      fs::create_directories(dir);
      prep(dir);
      failpoint::reset();
      failpoint::Policy policy;
      policy.action = failpoint::Policy::Action::kReturnErrno;
      policy.error = EIO;
      policy.nth = torture.nth;
      failpoint::set(torture.site, policy);

      const RunOutcome injected = run_campaign_once(dir);
      EXPECT_GE(failpoint::hits(torture.site), torture.nth)
          << "counting pass and torture pass diverged";
      // Never half-done: either the fault aborted the campaign or the
      // result is exactly right.
      if (injected.state == JobState::kDone) {
        EXPECT_EQ(injected.csv, reference_csv());
      }

      failpoint::reset();
      const RunOutcome recovered = run_campaign_once(dir);
      ASSERT_EQ(recovered.state, JobState::kDone)
          << "no recovery after injected EIO: " << recovered.error;
      EXPECT_EQ(recovered.csv, reference_csv());
    }
  }

  /// Crash torture: SIGKILL the process at exactly (site, nth) in a
  /// forked child, then resume in the parent and require byte-identical
  /// results.
  void crash_torture(const Prep& prep, const std::string& label) {
    std::size_t index = 0;
    for (const TortureCase& torture : enumerate_cases(prep, label)) {
      SCOPED_TRACE(label + ": SIGKILL at " + torture.site + "@" +
                   std::to_string(torture.nth));
      const std::string dir =
          path(label + "_kill_" + std::to_string(index++));
      fs::create_directories(dir);
      prep(dir);

      const pid_t pid = ::fork();
      ASSERT_NE(pid, -1) << std::strerror(errno);
      if (pid == 0) {
        // Child: arm the kill and run. Exit codes only — gtest state in
        // a forked child must not be touched.
        util::set_log_level(util::LogLevel::kOff);
        failpoint::reset();
        failpoint::Policy policy;
        policy.action = failpoint::Policy::Action::kKill;
        policy.nth = torture.nth;
        failpoint::set(torture.site, policy);
        const RunOutcome out = run_campaign_once(dir);
        ::_exit(out.state == JobState::kDone ? 0 : 7);
      }
      int status = 0;
      ASSERT_EQ(::waitpid(pid, &status, 0), pid) << std::strerror(errno);
      EXPECT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
          << "child did not die at the failpoint (status " << status << ")";

      failpoint::reset();
      const RunOutcome recovered = run_campaign_once(dir);
      ASSERT_EQ(recovered.state, JobState::kDone)
          << "no recovery after crash: " << recovered.error;
      EXPECT_EQ(recovered.csv, reference_csv());
    }
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// The torture matrix: {fresh run, torn-tail resume} x {errno, crash}
// ---------------------------------------------------------------------------

TEST_F(TortureTest, ErrnoAtEveryJournalSiteOfAFreshRun) {
  errno_torture(prepare_fresh, "fresh");
}

TEST_F(TortureTest, ErrnoAtEveryJournalSiteOfATornResume) {
  errno_torture(prepare_torn_resume, "torn");
}

TEST_F(TortureTest, CrashAtEveryJournalSiteOfAFreshRun) {
  crash_torture(prepare_fresh, "fresh");
}

TEST_F(TortureTest, CrashAtEveryJournalSiteOfATornResume) {
  crash_torture(prepare_torn_resume, "torn");
}

/// The two scenarios together must drive every journal site except the
/// queue-full rollback unlink (exercised separately below) — otherwise
/// the torture matrix silently shrank because a shim was unwired.
TEST_F(TortureTest, ScenariosCoverEveryJournalSite) {
  std::map<std::string, std::uint64_t> coverage;
  for (const auto& [prep, label] :
       {std::pair<Prep, std::string>{prepare_fresh, "fresh"},
        std::pair<Prep, std::string>{prepare_torn_resume, "torn"}})
    for (const TortureCase& torture : enumerate_cases(prep, label))
      ++coverage[torture.site];
  for (const auto& site : journal_failpoint_sites()) {
    if (site == "journal.remove.unlink") continue;
    EXPECT_GT(coverage[site], 0u) << site << " is never exercised";
  }
}

/// Queue-full rollback with a failing unlink: the fresh journal cannot
/// be removed, so the rejected job resurrects on the next start — it
/// must then simply run to the correct result (at-least-once, never
/// corruption).
TEST_F(TortureTest, RollbackUnlinkFailureResurrectsACorrectJob) {
  const std::string dir = path("journals");
  fs::create_directories(dir);
  JobSpec first = torture_spec();
  JobSpec second = torture_spec();
  second.name = "torture_overflow";
  {
    EngineConfig config;
    config.journal_dir = dir;
    config.queue_capacity = 1;
    CampaignEngine engine(config);  // never started: the queue stays full
    std::string error;
    ASSERT_NE(engine.submit(first, &error), 0u) << error;

    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EIO;
    failpoint::set("journal.remove.unlink", policy);
    EXPECT_EQ(engine.submit(second, &error), 0u);
    EXPECT_NE(error.find("queue full"), std::string::npos) << error;
    failpoint::reset();
    EXPECT_TRUE(fs::exists(engine.journal_path(second.name)))
        << "rollback unlink was injected to fail; journal must linger";
  }
  // Restart: both journals resurrect and both campaigns must finish
  // with the reference matrix.
  EngineConfig config;
  config.journal_dir = dir;
  config.sweep_jobs = 1;
  CampaignEngine engine(config);
  const auto resumed = engine.start();
  ASSERT_EQ(resumed.size(), 2u);
  for (const auto id : resumed) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(120);
    while (std::chrono::steady_clock::now() < deadline) {
      const auto status = engine.status(id);
      if (status && status->state == JobState::kDone) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_EQ(engine.status(id)->state, JobState::kDone);
    EXPECT_EQ(exp::sweep_to_csv(*engine.result(id)), reference_csv());
  }
  engine.shutdown(true);
}

// ---------------------------------------------------------------------------
// EINTR regressions: a signal landing inside journal I/O must be
// retried, not surface as a spurious failure. (Before the fp:: shims,
// an EINTR from fsync(2) failed the append and the whole job.)
// ---------------------------------------------------------------------------

TEST_F(TortureTest, AppendRetriesInterruptedWriteAndFsync) {
  const std::string file = path("eintr.tvpj");
  Journal journal = Journal::create(file, torture_spec());
  for (const char* site : {"journal.append.write", "journal.append.fsync"}) {
    SCOPED_TRACE(site);
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EINTR;
    policy.nth = failpoint::hits(site) + 1;  // exactly the next attempt
    failpoint::set(site, policy);
    EXPECT_NO_THROW(journal.append_cell(0, reference_sweep().cells[0]));
    EXPECT_GE(failpoint::hits(site), policy.nth + 1)
        << "the interrupted syscall must have been retried";
  }
  journal.close();
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.cells.size(), 1u) << "both appends must have landed";
}

TEST_F(TortureTest, ReplayRetriesInterruptedRead) {
  const std::string file = path("eintr_replay.tvpj");
  {
    Journal journal = Journal::create(file, torture_spec());
    journal.append_cell(0, reference_sweep().cells[0]);
  }
  failpoint::reset();
  failpoint::Policy policy;
  policy.action = failpoint::Policy::Action::kReturnErrno;
  policy.error = EINTR;
  policy.nth = 1;
  failpoint::set("journal.replay.read", policy);
  const Journal::Replay replay = Journal::replay(file);
  EXPECT_EQ(replay.cells.size(), 1u);
  EXPECT_GE(failpoint::hits("journal.replay.read"), 2u);
}

// ---------------------------------------------------------------------------
// Socket-path injection: connection-level faults cost one connection,
// never the daemon.
// ---------------------------------------------------------------------------

TEST_F(TortureTest, ServerSurvivesInjectedConnectionFaults) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  for (const char* site : {"server.conn.read", "server.conn.write"}) {
    SCOPED_TRACE(site);
    failpoint::reset();
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EIO;
    policy.nth = 1;
    failpoint::set(site, policy);
    Client victim = Client::connect_unix(config.unix_path);
    EXPECT_THROW(victim.ping(), std::runtime_error)
        << "the injected fault must drop this connection";
  }
  failpoint::reset();

  // Client-side faults surface as client errors; the daemon never sees
  // a difference.
  {
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EPIPE;
    policy.nth = 1;
    failpoint::set("client.send", policy);
    Client client = Client::connect_unix(config.unix_path);
    EXPECT_THROW(client.ping(), std::runtime_error);
  }
  failpoint::reset();

  Client healthy = Client::connect_unix(config.unix_path);
  EXPECT_NO_THROW(healthy.ping()) << "the daemon must have survived it all";
  healthy.shutdown(false);
  serving.join();
}

/// Streaming across a crash: the daemon is SIGKILLed mid-checkpoint,
/// and a subscriber attached to the *resumed* engine must still see
/// every cell exactly once — journaled cells replayed, the rest live —
/// with the matrix byte-identical to an uninterrupted run.
TEST_F(TortureTest, StreamThenKillResumeReplaysEveryCellExactlyOnce) {
  const std::string dir = path("journals");
  fs::create_directories(dir);

  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1) << std::strerror(errno);
  if (pid == 0) {
    util::set_log_level(util::LogLevel::kOff);
    failpoint::reset();
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kKill;
    policy.nth = 2;  // die inside the second checkpoint append
    failpoint::set("journal.append.write", policy);
    run_campaign_once(dir);
    ::_exit(7);  // unreachable unless the failpoint never fired
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid) << std::strerror(errno);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "child did not die at the failpoint (status " << status << ")";

  failpoint::reset();
  EngineConfig config;
  config.journal_dir = dir;
  config.sweep_jobs = 1;
  config.workers = 4;  // resume correctness must not depend on one worker
  CampaignEngine engine(config);
  const std::vector<std::uint64_t> resumed = engine.start();
  ASSERT_EQ(resumed.size(), 1u) << "the torn journal must be picked up";

  std::mutex mu;
  std::vector<std::uint64_t> streamed;
  std::atomic<bool> ended{false};
  JobState end_state = JobState::kQueued;
  // Whether this lands before the first live cell or after the job is
  // already done, the replay log keeps delivery exactly-once.
  ASSERT_NE(engine.subscribe(
                resumed[0],
                [&](const std::string& cell_json) {
                  const auto cell = util::JsonValue::parse(cell_json);
                  std::lock_guard<std::mutex> lock(mu);
                  streamed.push_back(cell.at("i").as_uint());
                },
                [&](JobState state, const std::string&) {
                  end_state = state;
                  ended.store(true);
                }),
            0u);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (!ended.load() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(ended.load()) << "the subscriber must see an end event";
  EXPECT_EQ(end_state, JobState::kDone);

  const std::size_t total = torture_spec().cell_count();
  {
    std::lock_guard<std::mutex> lock(mu);
    std::sort(streamed.begin(), streamed.end());
    ASSERT_EQ(streamed.size(), total)
        << "replayed + live cells must cover the matrix with no duplicates";
    for (std::size_t i = 0; i < total; ++i) EXPECT_EQ(streamed[i], i);
  }
  EXPECT_EQ(exp::sweep_to_csv(*engine.result(resumed[0])), reference_csv());
  engine.shutdown(true);
}

// ---------------------------------------------------------------------------
// Epoll-path injection: loop-level faults are retried or cost one
// connection — never the daemon.
// ---------------------------------------------------------------------------

TEST_F(TortureTest, ServerSurvivesInjectedEpollFaults) {
  ServerConfig config;
  config.unix_path = path("svc.sock");
  Server server(config);
  server.start();
  std::thread serving([&] { server.serve(); });

  // EINTR out of epoll_wait (a signal landed) must be retried, not
  // treated as a fatal loop error.
  {
    failpoint::reset();
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EINTR;
    policy.nth = failpoint::hits("server.epoll.wait") + 1;
    failpoint::set("server.epoll.wait", policy);
    Client client = Client::connect_unix(config.unix_path);
    EXPECT_NO_THROW(client.ping());
  }

  // A failed epoll registration of a fresh connection (fd pressure)
  // drops that connection only.
  {
    failpoint::reset();
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EIO;
    policy.nth = 1;  // the next connection to register
    failpoint::set("server.epoll.ctl", policy);
    Client victim = Client::connect_unix(config.unix_path);
    EXPECT_THROW(victim.ping(), std::runtime_error)
        << "the unregistered connection must have been closed";
  }

  failpoint::reset();
  Client healthy = Client::connect_unix(config.unix_path);
  EXPECT_NO_THROW(healthy.ping()) << "the daemon must have survived it all";
  healthy.shutdown(false);
  serving.join();
}

// ---------------------------------------------------------------------------
// Corpus (trace record/replay) I/O torture: the .tvpc writer must never
// leave a half-written file that a reader accepts, and the mmap reader
// must degrade to pread without changing a single record.
// ---------------------------------------------------------------------------

/// The same tiny campaign as torture_spec(), as a SimConfig for
/// exp::record_corpus.
exp::SimConfig corpus_sim_config() {
  exp::SimConfig sim;
  exp::apply_config(sim, util::KeyValueFile::parse(torture_spec().config_text));
  return sim;
}

/// Small blocks so the block-write site fires more than once.
trace::CorpusWriter::Options corpus_options() {
  trace::CorpusWriter::Options options;
  options.records_per_block = 64;
  return options;
}

/// EIO at every (writer site, Nth occurrence): the record must fail with
/// an exception, whatever lingers on disk must be either rejected or the
/// complete corpus (a directory-durability fault lands after the data
/// fsync), and re-recording over the same path must recover the
/// reference corpus bit-identically.
TEST_F(TortureTest, ErrnoAtEveryCorpusWriteSiteNeverLeavesAHalfCorpus) {
  const exp::SimConfig sim = corpus_sim_config();

  // Counting pass: one clean record with inert failpoints learns how
  // often every writer site fires. (Read sites are tortured below.)
  const std::string count_file = path("count.tvpc");
  failpoint::reset();
  const std::uint32_t identity =
      exp::record_corpus(sim, count_file, corpus_options());
  std::vector<TortureCase> cases;
  for (const auto& site : trace::corpus_failpoint_sites()) {
    if (site.rfind("corpus.read.", 0) == 0) continue;
    for (std::uint64_t n = 1; n <= failpoint::hits(site); ++n)
      cases.push_back({site, n});
  }
  failpoint::reset();
  ASSERT_FALSE(cases.empty()) << "no corpus writer sites fired";
  const trace::CorpusInfo reference = trace::verify_corpus(count_file);
  ASSERT_EQ(reference.footer_crc, identity);

  std::size_t index = 0;
  for (const TortureCase& torture : cases) {
    SCOPED_TRACE("EIO at " + torture.site + "@" + std::to_string(torture.nth));
    const std::string file =
        path("eio_" + std::to_string(index++) + ".tvpc");
    failpoint::reset();
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EIO;
    policy.nth = torture.nth;
    failpoint::set(torture.site, policy);
    EXPECT_THROW(exp::record_corpus(sim, file, corpus_options()),
                 std::runtime_error);
    failpoint::reset();

    // Never half-done: the leftover either fails verification outright
    // or is the full reference corpus.
    try {
      const trace::CorpusInfo leftover = trace::verify_corpus(file);
      EXPECT_EQ(leftover.footer_crc, reference.footer_crc);
      EXPECT_EQ(leftover.total_records, reference.total_records);
    } catch (const std::exception&) {
      // Rejected — equally fine.
    }

    // Recovery: re-recording over the debris must restore the exact
    // reference identity.
    EXPECT_EQ(exp::record_corpus(sim, file, corpus_options()),
              reference.footer_crc);
    EXPECT_EQ(trace::verify_corpus(file).total_records,
              reference.total_records);
  }
}

/// SIGKILL mid-write (forked child) leaves a torn file — no header-only
/// stub, missing footer, or missing trailer may ever parse.
TEST_F(TortureTest, KillDuringCorpusWriteLeavesARejectedFile) {
  const exp::SimConfig sim = corpus_sim_config();
  std::size_t index = 0;
  for (const char* site : {"corpus.block.write", "corpus.footer.write",
                           "corpus.trailer.write"}) {
    SCOPED_TRACE(site);
    const std::string file =
        path("kill_" + std::to_string(index++) + ".tvpc");

    const pid_t pid = ::fork();
    ASSERT_NE(pid, -1) << std::strerror(errno);
    if (pid == 0) {
      util::set_log_level(util::LogLevel::kOff);
      failpoint::reset();
      failpoint::Policy policy;
      policy.action = failpoint::Policy::Action::kKill;
      policy.nth = 1;
      failpoint::set(site, policy);
      try {
        exp::record_corpus(sim, file, corpus_options());
      } catch (...) {
      }
      ::_exit(7);  // unreachable unless the failpoint never fired
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid) << std::strerror(errno);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child did not die at the failpoint (status " << status << ")";

    failpoint::reset();
    try {
      trace::read_corpus_info(file);
      FAIL() << "a corpus killed at " << site << " must not parse";
    } catch (const std::exception& e) {
      // The rejection must name the file and be a framing diagnosis,
      // not a misread.
      EXPECT_NE(std::string(e.what()).find(file), std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find("corpus"), std::string::npos)
          << e.what();
    }
  }
}

/// An injected mmap failure demotes the reader to pread; every record
/// streamed through the fallback must be bit-identical to the mapped
/// path.
TEST_F(TortureTest, MmapFailureFallsBackToPreadBitIdentically) {
  const exp::SimConfig sim = corpus_sim_config();
  const std::string file = path("fallback.tvpc");
  exp::record_corpus(sim, file, corpus_options());

  // The demoted source first: a mapped source would populate the
  // process-wide mapping cache and the injected mmap would never run.
  failpoint::reset();
  failpoint::Policy policy;
  policy.action = failpoint::Policy::Action::kReturnErrno;
  policy.error = EIO;
  policy.nth = 1;
  failpoint::set("corpus.read.mmap", policy);
  trace::MmapSource source(file);
  EXPECT_FALSE(source.mapped()) << "the injected mmap failure must demote";
  failpoint::reset();

  std::vector<trace::AccessRecord> fallback;
  while (const auto record = source.next()) fallback.push_back(*record);
  EXPECT_EQ(fallback.size(), source.info().total_records);

  std::vector<trace::AccessRecord> mapped;
  trace::MmapSource verify(file);
  ASSERT_TRUE(verify.mapped());
  while (const auto record = verify.next()) mapped.push_back(*record);
  EXPECT_EQ(fallback, mapped);
}

/// EIO from pread in the fallback path is a precise read error naming
/// the file — never a silent short stream.
TEST_F(TortureTest, PreadFaultInTheFallbackPathIsAPreciseError) {
  const exp::SimConfig sim = corpus_sim_config();
  const std::string file = path("pread_eio.tvpc");
  exp::record_corpus(sim, file, corpus_options());

  failpoint::reset();
  failpoint::Policy policy;
  policy.action = failpoint::Policy::Action::kReturnErrno;
  policy.error = EIO;
  policy.nth = 1;
  failpoint::set("corpus.read.mmap", policy);
  trace::MmapSource source(file);
  ASSERT_FALSE(source.mapped());
  failpoint::reset();

  policy.nth = 1;
  failpoint::set("corpus.read.pread", policy);
  try {
    source.next();
    FAIL() << "the injected pread fault must surface";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("read failed"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(file), std::string::npos) << e.what();
  }
}

/// An EINTR inside corpus pread (a signal landed) must be retried, not
/// surface as a failure — same contract as the journal reader.
TEST_F(TortureTest, CorpusReadRetriesInterruptedPread) {
  const exp::SimConfig sim = corpus_sim_config();
  const std::string file = path("pread_eintr.tvpc");
  exp::record_corpus(sim, file, corpus_options());

  failpoint::reset();
  failpoint::Policy policy;
  policy.action = failpoint::Policy::Action::kReturnErrno;
  policy.error = EINTR;
  policy.nth = 1;
  failpoint::set("corpus.read.pread", policy);
  EXPECT_NO_THROW(trace::read_corpus_info(file));
  EXPECT_GE(failpoint::hits("corpus.read.pread"), 2u)
      << "the interrupted pread must have been retried";
}

/// The tiny campaign with a fuzzed workload instead of a benign-only
/// one: the corpus now carries kFuzzed attack records plus the victim
/// oracle in the footer.
exp::SimConfig fuzz_sim_config() {
  exp::SimConfig sim = corpus_sim_config();
  sim.workload.model = exp::BenignModel::kFuzz;
  sim.workload.fuzz.seed = 5;
  sim.workload.fuzz.patterns = 1;
  sim.workload.fuzz.acts_per_interval = 10.0;
  sim.finalize();
  return sim;
}

/// EIO at the first occurrence of every writer site while recording a
/// fuzzed corpus: same never-half-done contract as the benign scenario
/// above (one occurrence per site keeps the fuzz matrix compact — the
/// Nth-occurrence grid is already covered there).
TEST_F(TortureTest, ErrnoInTheCorpusWriterOfAFuzzedRecord) {
  const exp::SimConfig sim = fuzz_sim_config();
  const std::string count_file = path("fuzz_count.tvpc");
  failpoint::reset();
  const std::uint32_t identity =
      exp::record_corpus(sim, count_file, corpus_options());
  std::vector<std::string> sites;
  for (const auto& site : trace::corpus_failpoint_sites())
    if (site.rfind("corpus.read.", 0) != 0 && failpoint::hits(site) > 0)
      sites.push_back(site);
  failpoint::reset();
  ASSERT_FALSE(sites.empty()) << "no corpus writer sites fired";
  const trace::CorpusInfo reference = trace::verify_corpus(count_file);
  ASSERT_EQ(reference.footer_crc, identity);
  ASSERT_FALSE(reference.victims.empty())
      << "a fuzzed corpus must carry the victim oracle";

  std::size_t index = 0;
  for (const auto& site : sites) {
    SCOPED_TRACE("EIO at " + site + "@1");
    const std::string file =
        path("fuzz_eio_" + std::to_string(index++) + ".tvpc");
    failpoint::reset();
    failpoint::Policy policy;
    policy.action = failpoint::Policy::Action::kReturnErrno;
    policy.error = EIO;
    policy.nth = 1;
    failpoint::set(site, policy);
    EXPECT_THROW(exp::record_corpus(sim, file, corpus_options()),
                 std::runtime_error);
    failpoint::reset();

    try {
      const trace::CorpusInfo leftover = trace::verify_corpus(file);
      EXPECT_EQ(leftover.footer_crc, reference.footer_crc);
    } catch (const std::exception&) {
      // Rejected — equally fine.
    }

    EXPECT_EQ(exp::record_corpus(sim, file, corpus_options()),
              reference.footer_crc);
  }
}

/// One record + verify round trip must drive every corpus site —
/// otherwise the torture matrix silently shrank because a shim was
/// unwired.
TEST_F(TortureTest, ScenariosCoverEveryCorpusSite) {
  const exp::SimConfig sim = corpus_sim_config();
  const std::string file = path("coverage.tvpc");
  failpoint::reset();
  exp::record_corpus(sim, file, corpus_options());
  trace::verify_corpus(file);
  for (const auto& site : trace::corpus_failpoint_sites())
    EXPECT_GT(failpoint::hits(site), 0u) << site << " is never exercised";
}

}  // namespace
}  // namespace tvp::svc
