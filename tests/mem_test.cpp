// Unit tests for tvp::mem — the mitigation engine and the memory
// controller (refresh machinery, timing, action issue, statistics).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "tvp/dram/disturbance.hpp"
#include "tvp/mem/controller.hpp"
#include "tvp/mem/mitigation.hpp"

namespace tvp::mem {
namespace {

// A probe mitigation that records what it observes and can be scripted
// to emit actions.
class Probe final : public IBankMitigation {
 public:
  struct Shared {
    std::vector<std::pair<dram::BankId, dram::RowId>> activates;
    std::vector<std::pair<dram::BankId, std::uint32_t>> refreshes;
    std::vector<MitigationAction> respond_with;  // emitted on every ACT
  };

  Probe(dram::BankId bank, Shared* shared) : bank_(bank), shared_(shared) {}

  const char* name() const noexcept override { return "probe"; }
  void on_activate(dram::RowId row, const MitigationContext&,
                   ActionBuffer& out) override {
    shared_->activates.emplace_back(bank_, row);
    for (const auto& a : shared_->respond_with) out.push_back(a);
  }
  void on_refresh(const MitigationContext& ctx, ActionBuffer&) override {
    shared_->refreshes.emplace_back(bank_, ctx.interval_in_window);
  }
  std::uint64_t state_bits() const noexcept override { return 7; }

 private:
  dram::BankId bank_;
  Shared* shared_;
};

BankMitigationFactory probe_factory(Probe::Shared* shared) {
  return [shared](dram::BankId bank, util::Rng) {
    return std::make_unique<Probe>(bank, shared);
  };
}

ControllerConfig small_config() {
  ControllerConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.geometry.rows_per_bank = 8192;
  cfg.timing.refresh_intervals = 512;  // RowsPI = 16
  return cfg;
}

trace::AccessRecord rec(std::uint64_t t, dram::BankId bank, dram::RowId row,
                        bool write = false) {
  trace::AccessRecord r;
  r.time_ps = t;
  r.bank = bank;
  r.row = row;
  r.write = write;
  return r;
}

struct Rig {
  explicit Rig(ControllerConfig cfg = small_config(),
               Probe::Shared* shared = nullptr)
      : shared_storage(),
        shared(shared ? shared : &shared_storage),
        engine(cfg.geometry.total_banks(), probe_factory(this->shared), rng),
        disturbance(cfg.geometry.total_banks(), cfg.geometry.rows_per_bank),
        controller(cfg, engine, disturbance, rng) {}

  util::Rng rng{99};
  Probe::Shared shared_storage;
  Probe::Shared* shared;
  MitigationEngine engine;
  dram::DisturbanceModel disturbance;
  MemoryController controller;
};

// ------------------------------------------------------------------- engine

TEST(MitigationEngine, PerBankInstancesAndStateBits) {
  Probe::Shared shared;
  util::Rng rng(1);
  MitigationEngine engine(4, probe_factory(&shared), rng);
  EXPECT_EQ(engine.banks(), 4u);
  EXPECT_STREQ(engine.name(), "probe");
  EXPECT_EQ(engine.state_bits_total(), 28u);
  EXPECT_DOUBLE_EQ(engine.state_bytes_per_bank(), 7.0 / 8.0);
}

TEST(MitigationEngine, RejectsBadConstruction) {
  util::Rng rng(1);
  EXPECT_THROW(MitigationEngine(0, probe_factory(nullptr), rng),
               std::invalid_argument);
  EXPECT_THROW(MitigationEngine(2, BankMitigationFactory{}, rng),
               std::invalid_argument);
}

TEST(NoMitigation, DoesNothing) {
  NoMitigation none;
  ActionBuffer out;
  none.on_activate(5, {}, out);
  none.on_refresh({}, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(none.state_bits(), 0u);
}

// --------------------------------------------------------------- controller

TEST(Controller, RoutesActivationsToRightBank) {
  Rig rig;
  rig.controller.on_record(rec(100, 0, 5));
  rig.controller.on_record(rec(200, 1, 7));
  ASSERT_EQ(rig.shared->activates.size(), 2u);
  EXPECT_EQ(rig.shared->activates[0], std::make_pair(dram::BankId{0}, dram::RowId{5}));
  EXPECT_EQ(rig.shared->activates[1], std::make_pair(dram::BankId{1}, dram::RowId{7}));
  EXPECT_EQ(rig.controller.stats().demand_acts, 2u);
  EXPECT_EQ(rig.controller.stats().reads, 2u);
}

TEST(Controller, RejectsOutOfOrderAndOutOfRange) {
  Rig rig;
  rig.controller.on_record(rec(1000, 0, 1));
  EXPECT_THROW(rig.controller.on_record(rec(500, 0, 1)), std::invalid_argument);
  EXPECT_THROW(rig.controller.on_record(rec(2000, 9, 1)), std::out_of_range);
  EXPECT_THROW(rig.controller.on_record(rec(2000, 0, 1 << 20)), std::out_of_range);
}

TEST(Controller, RefreshTicksPerInterval) {
  Rig rig;
  const std::uint64_t t_refi = small_config().timing.t_refi_ps();
  rig.controller.advance_to(t_refi * 3 + 1);
  // 3 boundaries crossed x 2 banks.
  EXPECT_EQ(rig.shared->refreshes.size(), 6u);
  EXPECT_EQ(rig.controller.stats().refresh_intervals, 3u);
  EXPECT_EQ(rig.controller.global_interval(), 3u);
}

TEST(Controller, EveryRowRefreshedOncePerWindow) {
  ControllerConfig cfg = small_config();
  Rig rig(cfg);
  // Hammer a victim's neighbourhood is not needed: track via disturbance.
  // Disturb every row once, then advance a full window; all counters must
  // be reset by the per-interval refreshes.
  const std::uint64_t t_refi = cfg.timing.t_refi_ps();
  rig.controller.on_record(rec(1, 0, 100));  // some disturbance on 99/101
  EXPECT_GT(rig.disturbance.disturbance_q8(0, 99), 0u);
  rig.controller.advance_to(t_refi * cfg.timing.refresh_intervals + 1);
  EXPECT_EQ(rig.disturbance.disturbance_q8(0, 99), 0u);
  // One full window: every row of both banks refreshed exactly once.
  EXPECT_EQ(rig.controller.stats().rows_refreshed,
            static_cast<std::uint64_t>(cfg.geometry.rows_per_bank) * 2);
}

TEST(Controller, ActNeighborsCostsTwoActivations) {
  Rig rig;
  rig.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActNeighbors, 100, 100}};
  rig.controller.on_record(rec(10, 0, 100));
  EXPECT_EQ(rig.controller.stats().extra_acts, 2u);
  EXPECT_EQ(rig.controller.stats().triggers, 1u);
  // Neighbours 99 and 101 were physically activated -> their own charge
  // restored, and the hammered row 100 got disturbed by both.
  EXPECT_EQ(rig.disturbance.disturbance_q8(0, 99), 0u);
  EXPECT_EQ(rig.disturbance.disturbance_q8(0, 101), 0u);
}

TEST(Controller, ActRowCostsOneActivation) {
  Rig rig;
  rig.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActRow, 101, 100}};
  rig.controller.on_record(rec(10, 0, 100));
  EXPECT_EQ(rig.controller.stats().extra_acts, 1u);
  EXPECT_EQ(rig.disturbance.disturbance_q8(0, 101), 0u);  // restored
}

TEST(Controller, EdgeRowActNeighborsCostsOne) {
  Rig rig;
  rig.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActNeighbors, 0, 0}};
  rig.controller.on_record(rec(10, 0, 0));
  EXPECT_EQ(rig.controller.stats().extra_acts, 1u);  // row 0 has one neighbour
}

TEST(Controller, OracleSplitsFalsePositives) {
  Rig rig;
  rig.controller.set_aggressor_oracle(
      [](dram::BankId, dram::RowId suspect) { return suspect == 100; });
  rig.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActNeighbors, 100, 100}};
  rig.controller.on_record(rec(10, 0, 100));  // true positive
  EXPECT_EQ(rig.controller.stats().fp_extra_acts, 0u);
  rig.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActNeighbors, 200, 200}};
  rig.controller.on_record(rec(20, 0, 200));  // false positive
  EXPECT_EQ(rig.controller.stats().fp_extra_acts, 2u);
  EXPECT_EQ(rig.controller.stats().extra_acts, 4u);
}

TEST(Controller, FirstExtraActRecorded) {
  Rig rig;
  rig.controller.on_record(rec(10, 0, 1));
  rig.controller.on_record(rec(20, 0, 2));
  EXPECT_EQ(rig.controller.stats().first_extra_act_at, 0u);
  rig.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActRow, 3, 3}};
  rig.controller.on_record(rec(30, 0, 3));
  EXPECT_EQ(rig.controller.stats().first_extra_act_at, 3u);
}

TEST(Controller, HotPathIsAllocationFreeInSteadyState) {
  // The engine owns one scratch ActionBuffer that is cleared and reused
  // on every dispatch. Emit more actions per ACT than the initial
  // capacity so the buffer has to grow once, then verify the capacity
  // never moves again — i.e. the steady state performs no heap
  // allocation per record.
  Rig rig;
  std::vector<MitigationAction> burst;
  for (dram::RowId r = 200; r < 200 + 3 * ActionBuffer::kInitialCapacity; ++r)
    burst.push_back(MitigationAction{MitigationAction::Kind::kActRow, r, r});
  rig.shared->respond_with = burst;

  std::uint64_t t = 100;
  for (int i = 0; i < 16; ++i, t += 100) rig.controller.on_record(rec(t, 0, 5));
  const std::size_t settled = rig.engine.scratch().capacity();
  EXPECT_GE(settled, burst.size());

  for (int i = 0; i < 4096; ++i, t += 100)
    rig.controller.on_record(rec(t, i % 2, 5 + (i % 64)));
  EXPECT_EQ(rig.engine.scratch().capacity(), settled);
  EXPECT_EQ(rig.engine.scratch().size(), burst.size());  // last dispatch
}

TEST(Controller, BatchedRecordsMatchRecordAtATime) {
  // on_records groups each refresh segment by bank before dispatching,
  // so a technique sees its own bank's ACTs in exact arrival order but
  // (unlike the serial loop) not interleaved with other banks' ACTs.
  // That is the batched-path contract: per-bank observation sequences
  // and all aggregate statistics are identical to record-at-a-time
  // delivery; cross-bank interleaving is unobservable to a (per-bank)
  // technique and is not preserved.
  std::vector<trace::AccessRecord> records;
  std::uint64_t t = 100;
  for (int i = 0; i < 1000; ++i, t += 150)
    records.push_back(rec(t, i % 2, 10 + (i % 100), i % 7 == 0));

  Rig one, batched;
  one.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActNeighbors, 100, 100}};
  batched.shared->respond_with = one.shared->respond_with;
  for (const auto& r : records) one.controller.on_record(r);
  for (std::size_t i = 0; i < records.size(); i += 33)
    batched.controller.on_records(records.data() + i,
                                  std::min<std::size_t>(33, records.size() - i));

  auto bank_sequence = [](const Probe::Shared& shared, dram::BankId bank) {
    std::vector<dram::RowId> rows;
    for (const auto& [b, row] : shared.activates)
      if (b == bank) rows.push_back(row);
    return rows;
  };
  ASSERT_EQ(one.shared->activates.size(), batched.shared->activates.size());
  for (dram::BankId b = 0; b < 2; ++b)
    EXPECT_EQ(bank_sequence(*one.shared, b), bank_sequence(*batched.shared, b));
  EXPECT_EQ(one.controller.stats().demand_acts,
            batched.controller.stats().demand_acts);
  EXPECT_EQ(one.controller.stats().extra_acts,
            batched.controller.stats().extra_acts);
  EXPECT_EQ(one.controller.stats().reads, batched.controller.stats().reads);
  EXPECT_EQ(one.controller.stats().writes, batched.controller.stats().writes);
  EXPECT_EQ(one.controller.stats().delayed_acts,
            batched.controller.stats().delayed_acts);
}

TEST(Controller, TrcStallsBackToBackActs) {
  ControllerConfig cfg = small_config();
  cfg.enforce_timing = true;
  Rig rig(cfg);
  rig.controller.on_record(rec(10, 0, 1));
  rig.controller.on_record(rec(20, 0, 2));  // 10 ps later: inside tRC
  EXPECT_EQ(rig.controller.stats().delayed_acts, 1u);
  // A different bank is not stalled.
  rig.controller.on_record(rec(30, 1, 2));
  EXPECT_EQ(rig.controller.stats().delayed_acts, 1u);
}

TEST(Controller, WritesAndReadsCounted) {
  Rig rig;
  rig.controller.on_record(rec(10, 0, 1, true));
  rig.controller.on_record(rec(20, 0, 2, false));
  EXPECT_EQ(rig.controller.stats().writes, 1u);
  EXPECT_EQ(rig.controller.stats().reads, 1u);
}

TEST(Controller, ActsPerIntervalStat) {
  Rig rig;
  const std::uint64_t t_refi = small_config().timing.t_refi_ps();
  for (int i = 0; i < 10; ++i)
    rig.controller.on_record(rec(10 + i * 100, 0, 1 + i));
  rig.controller.advance_to(t_refi + 1);
  const auto& stat = rig.controller.stats().acts_per_interval;
  EXPECT_EQ(stat.count(), 2u);       // one interval x two banks
  EXPECT_DOUBLE_EQ(stat.max(), 10);  // all on bank 0
  EXPECT_DOUBLE_EQ(stat.min(), 0);
}

TEST(Controller, WindowStartFlagOnWrap) {
  ControllerConfig cfg = small_config();
  Probe::Shared shared;
  Rig rig(cfg, &shared);
  const std::uint64_t t_refi = cfg.timing.t_refi_ps();
  rig.controller.advance_to(t_refi * (cfg.timing.refresh_intervals + 2));
  // interval_in_window of refresh #refresh_intervals is 0 (window wrap).
  bool saw_wrap = false;
  for (const auto& [bank, interval] : shared.refreshes)
    if (interval == 0) saw_wrap = true;
  EXPECT_TRUE(saw_wrap);
}

TEST(Controller, MismatchedShapesThrow) {
  ControllerConfig cfg = small_config();
  util::Rng rng(1);
  Probe::Shared shared;
  MitigationEngine wrong_banks(1, probe_factory(&shared), rng);
  dram::DisturbanceModel disturbance(cfg.geometry.total_banks(),
                                     cfg.geometry.rows_per_bank);
  EXPECT_THROW(MemoryController(cfg, wrong_banks, disturbance, rng),
               std::invalid_argument);
  MitigationEngine engine(cfg.geometry.total_banks(), probe_factory(&shared), rng);
  dram::DisturbanceModel wrong_shape(cfg.geometry.total_banks(), 64);
  EXPECT_THROW(MemoryController(cfg, engine, wrong_shape, rng),
               std::invalid_argument);
}

TEST(Controller, RemappedRowsStillProtected) {
  ControllerConfig cfg = small_config();
  cfg.remap_rows = true;
  cfg.remap_swaps = 64;
  Rig rig(cfg);
  // act_n on a remapped row restores the *physical* neighbours.
  rig.shared->respond_with = {MitigationAction{
      MitigationAction::Kind::kActNeighbors, 100, 100}};
  rig.controller.on_record(rec(10, 0, 100));
  const dram::RowId phys = rig.controller.remapper().to_physical(100);
  if (phys > 0) EXPECT_EQ(rig.disturbance.disturbance_q8(0, phys - 1), 0u);
  if (phys + 1 < cfg.geometry.rows_per_bank)
    EXPECT_EQ(rig.disturbance.disturbance_q8(0, phys + 1), 0u);
}

}  // namespace
}  // namespace tvp::mem
