// Tests for the TRR-evasion pattern fuzzer, the fuzz workload model,
// the distance-2 (half-double) disturbance ground truth, and the fuzz
// evasion campaign.
//
// The differential section reimplements the fuzzer's derivation
// contract (fuzzer.hpp) as an independent scalar reference: slot-scan
// expansion instead of bucket insertion, plain arrays instead of the
// FuzzedPattern structures. Any drift between the two is a contract
// break, not a refactor.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <unordered_set>

#include "tvp/dram/disturbance.hpp"
#include "tvp/exp/config_io.hpp"
#include "tvp/exp/fuzz.hpp"
#include "tvp/exp/registry.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/exp/sweep.hpp"
#include "tvp/mem/controller.hpp"
#include "tvp/trace/fuzzer.hpp"
#include "tvp/trace/source.hpp"

namespace tvp {
namespace {

namespace fs = std::filesystem;

// Unique temp path per test; removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("tvp_fuzzer_test_" + name + "_" + std::to_string(::getpid())))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// ------------------------------------------------- differential reference

/// Independent scalar reimplementation of the derivation contract in
/// fuzzer.hpp. Same RNG draws in the same order; the expansion walks
/// slots and tests membership (s % stride == phase) instead of
/// inserting into per-slot buckets.
struct RefPattern {
  std::uint64_t period = 0;
  std::vector<std::uint64_t> victims, appearances, phases, amplitudes;
  std::vector<std::uint64_t> decoys;
  std::vector<dram::RowId> schedule;
};

RefPattern reference_pattern(const trace::FuzzParams& p, std::uint64_t seed) {
  util::Rng rng(seed);
  RefPattern out;
  const std::uint64_t pairs = rng.between(p.pairs_min, p.pairs_max);
  const std::uint64_t period_exp =
      rng.between(p.period_exp_min, p.period_exp_max);
  out.period = 1ull << period_exp;

  const std::uint64_t region = (p.rows_per_bank - 8) / pairs;
  for (std::uint64_t j = 0; j < pairs; ++j)
    out.victims.push_back(4 + j * region + rng.below(region - 8));
  for (std::uint64_t j = 0; j < pairs; ++j) {
    const std::uint64_t freq_exp = rng.below(period_exp + 1);
    out.appearances.push_back(1ull << freq_exp);
    out.phases.push_back(rng.below(out.period / out.appearances[j]));
    out.amplitudes.push_back(rng.between(1, p.amplitude_max));
  }
  const std::uint64_t decoys = rng.between(1, p.decoys_max);
  while (out.decoys.size() < decoys) {
    const std::uint64_t row = rng.below(p.rows_per_bank);
    bool rejected = false;
    for (const auto v : out.victims)
      if ((row >= v ? row - v : v - row) <= 4) rejected = true;
    for (const auto d : out.decoys)
      if (d == row) rejected = true;
    if (!rejected) out.decoys.push_back(row);
  }

  // Slot scan: for each slot, each pair in order contributes iff the
  // slot lies on its phase lattice.
  const auto push = [&](std::vector<dram::RowId>& bucket, std::int64_t row) {
    if (row >= 0 && row < static_cast<std::int64_t>(p.rows_per_bank))
      bucket.push_back(static_cast<dram::RowId>(row));
  };
  std::uint64_t decoy_cursor = 0;
  for (std::uint64_t s = 0; s < out.period; ++s) {
    std::vector<dram::RowId> bucket;
    for (std::uint64_t j = 0; j < pairs; ++j) {
      const std::uint64_t stride = out.period / out.appearances[j];
      if (s % stride != out.phases[j]) continue;
      const std::uint64_t k = s / stride;
      const auto v = static_cast<std::int64_t>(out.victims[j]);
      for (std::uint64_t a = 0; a < out.amplitudes[j]; ++a) {
        if (p.half_double) {
          push(bucket, v - 2);
          push(bucket, v + 2);
        } else {
          push(bucket, v - 1);
          push(bucket, v + 1);
        }
      }
      if (p.half_double) push(bucket, (k % 2 == 0) ? v - 1 : v + 1);
    }
    if (bucket.empty()) {
      bucket.push_back(static_cast<dram::RowId>(out.decoys[decoy_cursor]));
      decoy_cursor = (decoy_cursor + 1) % out.decoys.size();
    }
    out.schedule.insert(out.schedule.end(), bucket.begin(), bucket.end());
  }
  return out;
}

constexpr std::uint64_t kDifferentialSeeds = 64;

TEST(FuzzerDifferential, MatchesScalarReferenceForEverySeed) {
  for (const bool half_double : {false, true}) {
    trace::FuzzParams params;
    params.rows_per_bank = 16384;
    params.half_double = half_double;
    const trace::PatternFuzzer fuzzer(params);
    for (std::uint64_t seed = 1; seed <= kDifferentialSeeds; ++seed) {
      SCOPED_TRACE("seed " + std::to_string(seed) +
                   (half_double ? " half-double" : ""));
      const auto got = fuzzer.pattern(seed);
      const RefPattern want = reference_pattern(params, seed);
      ASSERT_EQ(got.period_slots, want.period);
      ASSERT_EQ(got.pairs.size(), want.victims.size());
      for (std::size_t j = 0; j < want.victims.size(); ++j) {
        EXPECT_EQ(got.pairs[j].victim, want.victims[j]) << "pair " << j;
        EXPECT_EQ(got.pairs[j].appearances, want.appearances[j]) << "pair " << j;
        EXPECT_EQ(got.pairs[j].phase, want.phases[j]) << "pair " << j;
        EXPECT_EQ(got.pairs[j].amplitude, want.amplitudes[j]) << "pair " << j;
      }
      ASSERT_EQ(got.decoys.size(), want.decoys.size());
      for (std::size_t k = 0; k < want.decoys.size(); ++k)
        EXPECT_EQ(got.decoys[k], want.decoys[k]) << "decoy " << k;
      ASSERT_EQ(got.schedule, want.schedule);
    }
  }
}

TEST(FuzzerBatched, RecordsAreBitIdenticalAcrossBatchSizes) {
  // The emitted record stream — not just the schedule — must be byte-
  // identical whether pulled one record at a time or in any batch size,
  // and must equal the reference schedule replayed cyclically.
  trace::FuzzParams params;
  params.rows_per_bank = 16384;
  const trace::PatternFuzzer fuzzer(params);
  for (std::uint64_t seed = 1; seed <= kDifferentialSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto pattern = fuzzer.pattern(seed);
    const RefPattern want = reference_pattern(params, seed);
    auto config = fuzzer.make_attack(pattern, /*bank=*/1,
                                     /*interarrival_ps=*/50'000,
                                     /*source_id=*/42);
    const std::size_t n_records = 3 * want.schedule.size() + 5;
    config.end_ps = 50'000 * (n_records + 1);

    trace::AttackSource reference(config);
    std::vector<trace::AccessRecord> one;
    while (const auto rec = reference.next()) one.push_back(*rec);
    ASSERT_EQ(one.size(), n_records);
    for (std::size_t i = 0; i < one.size(); ++i) {
      ASSERT_EQ(one[i].row, want.schedule[i % want.schedule.size()]) << i;
      ASSERT_EQ(one[i].bank, 1u) << i;
      ASSERT_EQ(one[i].source, 42u) << i;
      ASSERT_TRUE(one[i].is_attack) << i;
    }

    for (const std::size_t batch : {1ul, 7ul, 256ul, 4096ul}) {
      trace::AttackSource source(config);
      std::vector<trace::AccessRecord> got;
      std::vector<trace::AccessRecord> buffer(batch);
      while (const std::size_t n = source.next_batch(buffer.data(), batch))
        got.insert(got.end(), buffer.begin(), buffer.begin() + n);
      ASSERT_EQ(got.size(), one.size()) << "batch " << batch;
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].row, one[i].row) << "batch " << batch << " rec " << i;
        ASSERT_EQ(got[i].time_ps, one[i].time_ps)
            << "batch " << batch << " rec " << i;
      }
    }
  }
}

TEST(Fuzzer, DeterministicAndSeedSensitive) {
  trace::FuzzParams params;
  const trace::PatternFuzzer fuzzer(params);
  std::unordered_set<std::string> shapes;
  for (std::uint64_t seed = 1; seed <= kDifferentialSeeds; ++seed) {
    const auto a = fuzzer.pattern(seed);
    const auto b = fuzzer.pattern(seed);
    ASSERT_EQ(a.schedule, b.schedule) << "seed " << seed;
    std::string shape;
    for (const auto row : a.schedule) shape += std::to_string(row) + ",";
    shapes.insert(shape);
  }
  // Every seed should draw a distinct schedule in a 2^17-row bank.
  EXPECT_EQ(shapes.size(), kDifferentialSeeds);
}

TEST(Fuzzer, ScheduleInvariants) {
  trace::FuzzParams params;
  params.rows_per_bank = 16384;
  for (const bool half_double : {false, true}) {
    params.half_double = half_double;
    const trace::PatternFuzzer fuzzer(params);
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
      const auto pattern = fuzzer.pattern(seed);
      std::unordered_set<dram::RowId> victims(pattern.victims.begin(),
                                              pattern.victims.end());
      // At least one activation per slot; no victim ever activated;
      // every activation lands near a victim or on a decoy.
      EXPECT_GE(pattern.schedule.size(), pattern.period_slots);
      std::unordered_set<dram::RowId> allowed(pattern.decoys.begin(),
                                              pattern.decoys.end());
      for (const auto v : pattern.victims) {
        allowed.insert(v - 1);
        allowed.insert(v + 1);
        if (half_double) {
          allowed.insert(v - 2);
          allowed.insert(v + 2);
        }
      }
      for (const auto row : pattern.schedule) {
        ASSERT_LT(row, params.rows_per_bank);
        ASSERT_FALSE(victims.count(row)) << "victim activated";
        ASSERT_TRUE(allowed.count(row)) << "stray row " << row;
      }
    }
  }
}

TEST(Fuzzer, RejectsInconsistentParams) {
  trace::FuzzParams params;
  params.pairs_min = 0;
  EXPECT_THROW(trace::PatternFuzzer{params}, std::invalid_argument);
  params = {};
  params.pairs_min = 5;
  params.pairs_max = 2;
  EXPECT_THROW(trace::PatternFuzzer{params}, std::invalid_argument);
  params = {};
  params.period_exp_max = 17;
  EXPECT_THROW(trace::PatternFuzzer{params}, std::invalid_argument);
  params = {};
  params.amplitude_max = 0;
  EXPECT_THROW(trace::PatternFuzzer{params}, std::invalid_argument);
  params = {};
  params.rows_per_bank = 32;  // too small for 6 separated pairs
  EXPECT_THROW(trace::PatternFuzzer{params}, std::invalid_argument);
}

TEST(Fuzzer, AttackSourceRejectsBadSchedules) {
  trace::AttackConfig cfg;
  cfg.pattern = trace::AttackPattern::kFuzzed;
  cfg.victims = {100};
  cfg.rows_per_bank = 1024;
  EXPECT_THROW(trace::AttackSource{cfg}, std::invalid_argument);  // empty
  cfg.schedule = {99, 2048};
  EXPECT_THROW(trace::AttackSource{cfg}, std::invalid_argument);  // range
  cfg.schedule = {99, 100};
  EXPECT_THROW(trace::AttackSource{cfg}, std::invalid_argument);  // victim
  cfg.schedule = {99, 101};
  const trace::AttackSource ok(cfg);
  EXPECT_EQ(ok.aggressors(), (std::vector<dram::RowId>{99, 101}));
}

// --------------------------------------------- half-double ground truth

TEST(HalfDoubleGroundTruth, HandComputedDistance1And2Flips) {
  dram::DisturbanceParams params;
  params.flip_threshold = 100;
  params.blast_radius = 2;
  params.distance2_weight_q8 = 16;
  dram::DisturbanceModel model(1, 32, params);

  // Hammer row 10. Distance-1 rows 9/11 take 256 q8 per ACT and flip
  // exactly at ACT 100; distance-2 rows 8/12 take 16 q8 per ACT and
  // flip exactly at ACT ceil(100 * 256 / 16) = 1600.
  for (std::uint32_t i = 0; i < 1600; ++i) model.on_activate(0, 10, 0);
  ASSERT_EQ(model.flips().size(), 4u);
  EXPECT_EQ(model.flips()[0].row, 9u);
  EXPECT_EQ(model.flips()[0].at_activation, 100u);
  EXPECT_EQ(model.flips()[1].row, 11u);
  EXPECT_EQ(model.flips()[1].at_activation, 100u);
  EXPECT_EQ(model.flips()[2].row, 8u);
  EXPECT_EQ(model.flips()[2].at_activation, 1600u);
  EXPECT_EQ(model.flips()[3].row, 12u);
  EXPECT_EQ(model.flips()[3].at_activation, 1600u);
  EXPECT_EQ(model.disturbance_q8(0, 9), 1600u * 256u);
  EXPECT_EQ(model.disturbance_q8(0, 8), 1600u * 16u);

  // The same hammering at blast radius 1 must leave rows 8/12 untouched.
  dram::DisturbanceParams d1 = params;
  d1.blast_radius = 1;
  dram::DisturbanceModel base(1, 32, d1);
  for (std::uint32_t i = 0; i < 1600; ++i) base.on_activate(0, 10, 0);
  ASSERT_EQ(base.flips().size(), 2u);
  EXPECT_EQ(base.disturbance_q8(0, 8), 0u);
  EXPECT_EQ(base.disturbance_q8(0, 12), 0u);
}

TEST(HalfDoubleGroundTruth, BankEdgeRowsClampTheBlast) {
  dram::DisturbanceParams params;
  params.flip_threshold = 50;
  params.blast_radius = 2;
  params.distance2_weight_q8 = 64;
  dram::DisturbanceModel model(1, 8, params);

  // Row 0: only rows 1 (d1) and 2 (d2) exist on the high side.
  for (std::uint32_t i = 0; i < 200; ++i) model.on_activate(0, 0, 0);
  EXPECT_EQ(model.disturbance_q8(0, 1), 200u * 256u);
  EXPECT_EQ(model.disturbance_q8(0, 2), 200u * 64u);
  ASSERT_EQ(model.flips().size(), 2u);
  EXPECT_EQ(model.flips()[0].row, 1u);
  EXPECT_EQ(model.flips()[0].at_activation, 50u);  // 50 * 256 >= 50 << 8
  EXPECT_EQ(model.flips()[1].row, 2u);
  EXPECT_EQ(model.flips()[1].at_activation, 200u);  // 200 * 64 = 50 << 8

  // Last row: the mirror image, clamped on the high side.
  dram::DisturbanceModel tail(1, 8, params);
  for (std::uint32_t i = 0; i < 200; ++i) tail.on_activate(0, 7, 0);
  EXPECT_EQ(tail.disturbance_q8(0, 6), 200u * 256u);
  EXPECT_EQ(tail.disturbance_q8(0, 5), 200u * 64u);
  ASSERT_EQ(tail.flips().size(), 2u);

  // Row 1: d1 reaches both sides (0 and 2); d2 only row 3.
  dram::DisturbanceModel inner(1, 8, params);
  inner.on_activate(0, 1, 0);
  EXPECT_EQ(inner.disturbance_q8(0, 0), 256u);
  EXPECT_EQ(inner.disturbance_q8(0, 2), 256u);
  EXPECT_EQ(inner.disturbance_q8(0, 3), 64u);
  EXPECT_EQ(inner.disturbance_q8(0, 4), 0u);
}

/// Tiny attacked system for the full-pipeline tests below (exp_test's
/// batch-equivalence idiom: real tREFI shape, scaled thresholds).
exp::SimConfig tiny_config() {
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.geometry.rows_per_bank = 16384;
  cfg.timing.t_refw_ps = 2'000'000'000;  // 2 ms window
  cfg.timing.refresh_intervals = 256;    // keeps tREFI at ~7.8 us
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 5.0;
  cfg.technique.flip_threshold = 4000;
  cfg.disturbance.flip_threshold = 3000;
  cfg.finalize();
  return cfg;
}

TEST(HalfDoubleGroundTruth, RemapActiveVictimAccountingIsExact) {
  // Unprotected half-double hammering of one victim, with row remapping
  // active. Per 34 emissions the victim takes 32 far ACTs * 32 q8 + 2
  // dribbles * 256 q8 = 1536 q8 (~45 q8/ACT); the far rows' outer d1
  // neighbours (v +/- 3) take ~120 q8/ACT and flip first; the dribbled
  // near rows v +/- 1 are recharged by their own ACTs and never flip.
  // At blast radius 1 the victim's only disturbance is the dribble
  // stream (~15 q8/ACT, under threshold): zero victim flips.
  const auto run = [](std::uint32_t blast_radius, bool remap) {
    exp::SimConfig cfg = tiny_config();
    cfg.workload.benign_acts_per_interval_per_bank = 0.0;
    cfg.disturbance.blast_radius = blast_radius;
    cfg.disturbance.distance2_weight_q8 = 32;
    cfg.remap_rows = remap;
    trace::AttackConfig attack;
    attack.pattern = trace::AttackPattern::kHalfDouble;
    attack.victims = {1000};
    attack.far_per_near = 16;
    attack.rows_per_bank = cfg.geometry.rows_per_bank;
    attack.interarrival_ps = 45'000;  // tRC: ~44 K ACTs in the window
    cfg.workload.attacks.push_back(attack);
    cfg.finalize();
    const auto none = [](dram::BankId, util::Rng) {
      return std::make_unique<mem::NoMitigation>();
    };
    return exp::run_custom_simulation(none, "none", cfg);
  };

  for (const bool remap : {false, true}) {
    SCOPED_TRACE(remap ? "remap" : "identity");
    const auto r2 = run(2, remap);
    EXPECT_EQ(r2.victim_flips, 1u);
    EXPECT_EQ(r2.flips, 3u);  // v - 3, v, v + 3 (physical images)
    const auto r1 = run(1, remap);
    EXPECT_EQ(r1.victim_flips, 0u);
  }
}

TEST(HalfDoubleEquivalence, BlastTwoWeightZeroIsBitIdenticalToBlastOne) {
  // Distance-2 disabled (weight 0) must be indistinguishable from
  // today's radius-1 model — same stats, same flip history — for every
  // technique, sharded or serial, columnar or row-at-a-time kernels.
  exp::SimConfig base = tiny_config();
  trace::AttackConfig attack;
  attack.pattern = trace::AttackPattern::kHalfDouble;
  attack.victims = {1000, 5000};
  attack.rows_per_bank = base.geometry.rows_per_bank;
  attack.interarrival_ps = 180'000;
  base.workload.attacks.push_back(attack);
  base.finalize();

  std::vector<std::pair<std::string, mem::BankMitigationFactory>> variants;
  variants.emplace_back("none", [](dram::BankId, util::Rng) {
    return std::make_unique<mem::NoMitigation>();
  });
  for (const auto t : hw::kAllTechniques)
    variants.emplace_back(std::string(hw::to_string(t)),
                          make_factory(t, base.technique));

  for (const auto& [name, factory] : variants) {
    for (const std::size_t jobs : {1ul, 8ul}) {
      for (const char* columnar : {"0", "1"}) {
        ASSERT_EQ(setenv("TVP_COLUMNAR", columnar, 1), 0);
        const std::string label =
            name + " jobs " + std::to_string(jobs) + " columnar " + columnar;
        exp::SimConfig d1 = base;
        d1.bank_jobs = jobs;
        d1.disturbance.blast_radius = 1;
        exp::SimConfig d2 = d1;
        d2.disturbance.blast_radius = 2;
        d2.disturbance.distance2_weight_q8 = 0;
        const auto a = exp::run_custom_simulation(factory, name, d1);
        const auto b = exp::run_custom_simulation(factory, name, d2);
        EXPECT_EQ(a.stats.demand_acts, b.stats.demand_acts) << label;
        EXPECT_EQ(a.stats.extra_acts, b.stats.extra_acts) << label;
        EXPECT_EQ(a.stats.fp_extra_acts, b.stats.fp_extra_acts) << label;
        EXPECT_EQ(a.stats.triggers, b.stats.triggers) << label;
        EXPECT_EQ(a.flips, b.flips) << label;
        EXPECT_EQ(a.victim_flips, b.victim_flips) << label;
        EXPECT_EQ(a.peak_disturbance, b.peak_disturbance) << label;
        ASSERT_EQ(a.flip_events.size(), b.flip_events.size()) << label;
        for (std::size_t i = 0; i < a.flip_events.size(); ++i) {
          EXPECT_EQ(a.flip_events[i].row, b.flip_events[i].row) << label;
          EXPECT_EQ(a.flip_events[i].at_activation,
                    b.flip_events[i].at_activation)
              << label;
        }
      }
    }
  }
  unsetenv("TVP_COLUMNAR");
}

// ------------------------------------------------------- fuzz workload

exp::SimConfig fuzz_config() {
  exp::SimConfig cfg = tiny_config();
  cfg.workload.model = exp::BenignModel::kFuzz;
  cfg.workload.fuzz.seed = 7;
  cfg.workload.fuzz.patterns = 2;
  cfg.workload.fuzz.acts_per_interval = 150.0;
  cfg.disturbance.flip_threshold = 2000;
  cfg.technique.flip_threshold = 2600;
  cfg.seed = 3;
  cfg.finalize();
  return cfg;
}

TEST(FuzzWorkload, BuildWorkloadCollectsFuzzOracles) {
  const exp::SimConfig cfg = fuzz_config();
  util::Rng rng(cfg.seed);
  util::Rng workload_rng = rng.fork();
  std::unordered_set<std::uint64_t> aggressors, victims;
  auto source = exp::build_workload(cfg, workload_rng, &aggressors, &victims);
  ASSERT_TRUE(source != nullptr);
  ASSERT_FALSE(aggressors.empty());
  ASSERT_FALSE(victims.empty());
  for (const auto v : victims)
    EXPECT_FALSE(aggressors.count(v)) << "victim key doubles as aggressor";

  // The derived patterns match a PatternFuzzer run with the same spec.
  trace::FuzzParams params = cfg.workload.fuzz.params;
  const trace::PatternFuzzer fuzzer(params);
  for (std::uint32_t i = 0; i < cfg.workload.fuzz.patterns; ++i) {
    const auto pattern = fuzzer.pattern(cfg.workload.fuzz.seed + i);
    const auto bank = i % cfg.geometry.total_banks();
    for (const auto v : pattern.victims)
      EXPECT_TRUE(victims.count((static_cast<std::uint64_t>(bank) << 32) | v))
          << "pattern " << i;
  }
}

TEST(FuzzWorkload, UnprotectedFuzzPatternsFlipVictims) {
  const exp::SimConfig cfg = fuzz_config();
  const auto none = [](dram::BankId, util::Rng) {
    return std::make_unique<mem::NoMitigation>();
  };
  const auto result = exp::run_custom_simulation(none, "none", cfg);
  EXPECT_GT(result.victim_flips, 0u);
}

TEST(FuzzWorkload, GenerateVsReplayIsBitIdenticalForEveryTechnique) {
  const exp::SimConfig cfg = fuzz_config();
  TempFile file("fuzz_replay");
  exp::record_corpus(cfg, file.path());

  exp::SimConfig replay = cfg;
  replay.workload.model = exp::BenignModel::kReplay;
  replay.workload.trace_path = file.path();
  replay.finalize();

  const auto expect_identical = [](const exp::RunResult& gen,
                                   const exp::RunResult& rep) {
    EXPECT_EQ(gen.records, rep.records);
    EXPECT_EQ(gen.stats.demand_acts, rep.stats.demand_acts);
    EXPECT_EQ(gen.stats.extra_acts, rep.stats.extra_acts);
    EXPECT_EQ(gen.stats.fp_extra_acts, rep.stats.fp_extra_acts);
    EXPECT_EQ(gen.stats.triggers, rep.stats.triggers);
    EXPECT_EQ(gen.flips, rep.flips);
    EXPECT_EQ(gen.victim_flips, rep.victim_flips);
    EXPECT_EQ(gen.peak_disturbance, rep.peak_disturbance);
    ASSERT_EQ(gen.flip_events.size(), rep.flip_events.size());
    for (std::size_t i = 0; i < gen.flip_events.size(); ++i) {
      EXPECT_EQ(gen.flip_events[i].bank, rep.flip_events[i].bank) << i;
      EXPECT_EQ(gen.flip_events[i].row, rep.flip_events[i].row) << i;
      EXPECT_EQ(gen.flip_events[i].at_activation,
                rep.flip_events[i].at_activation)
          << i;
    }
  };

  const auto none = [](dram::BankId, util::Rng) {
    return std::make_unique<mem::NoMitigation>();
  };
  expect_identical(exp::run_custom_simulation(none, "none", cfg),
                   exp::run_custom_simulation(none, "none", replay));
  for (const auto technique : hw::kAllTechniques) {
    SCOPED_TRACE(std::string(hw::to_string(technique)));
    expect_identical(exp::run_simulation(technique, cfg),
                     exp::run_simulation(technique, replay));
  }
}

// ------------------------------------------------------- fuzz campaign

exp::FuzzCampaignOptions tiny_campaign() {
  exp::FuzzCampaignOptions options;
  options.base = fuzz_config();
  options.fuzz_seeds = 2;
  options.pbase_exps = {17};
  return options;
}

TEST(FuzzCampaign, ReportIsBitIdenticalAcrossJobsAndReplay) {
  const exp::FuzzCampaignOptions options = tiny_campaign();

  ASSERT_EQ(setenv("TVP_JOBS", "1", 1), 0);
  const auto serial = exp::run_fuzz_campaign(options);
  const std::string serial_report = exp::fuzz_report_json(options, serial);
  ASSERT_EQ(setenv("TVP_JOBS", "8", 1), 0);
  const auto parallel = exp::run_fuzz_campaign(options);
  EXPECT_EQ(serial_report, exp::fuzz_report_json(options, parallel));

  // Record + replay: byte-identical verdicts and report.
  const std::string dir =
      (fs::temp_directory_path() /
       ("tvp_fuzzer_test_campaign_" + std::to_string(::getpid())))
          .string();
  fs::create_directories(dir);
  exp::FuzzCampaignOptions replayed = options;
  replayed.trace_dir = dir;
  const auto rep = exp::run_fuzz_campaign(replayed);
  EXPECT_EQ(serial_report, exp::fuzz_report_json(options, rep));
  unsetenv("TVP_JOBS");
  fs::remove_all(dir);

  ASSERT_EQ(serial.cells.size(),
            options.fuzz_seeds * serial.defences.size());
  // The unprotected baseline must show potency, and the strongest
  // P_base point must intervene (nonzero overhead) on every seed.
  EXPECT_GT(serial.potent_seeds, 0u);
  for (const auto& cell : serial.cells) {
    if (cell.defence == "none") {
      EXPECT_GT(cell.flips, 0u);
    }
  }
}

TEST(FuzzCampaign, RejectsNonFuzzBase) {
  exp::FuzzCampaignOptions options = tiny_campaign();
  options.base.workload.model = exp::BenignModel::kMixedSynthetic;
  EXPECT_THROW(exp::run_fuzz_campaign(options), std::invalid_argument);
  options = tiny_campaign();
  options.fuzz_seeds = 0;
  EXPECT_THROW(exp::run_fuzz_campaign(options), std::invalid_argument);
  options = tiny_campaign();
  options.pbase_exps.clear();
  EXPECT_THROW(exp::run_fuzz_campaign(options), std::invalid_argument);
}

// ------------------------------------------------------------ config io

TEST(ConfigIo, FuzzWorkloadRoundTripsThroughConfigText) {
  exp::SimConfig cfg = fuzz_config();
  cfg.workload.fuzz.params.pairs_min = 3;
  cfg.workload.fuzz.params.pairs_max = 5;
  cfg.workload.fuzz.params.period_exp_min = 6;
  cfg.workload.fuzz.params.period_exp_max = 7;
  cfg.workload.fuzz.params.amplitude_max = 2;
  cfg.workload.fuzz.params.decoys_max = 3;
  cfg.workload.fuzz.params.half_double = true;
  cfg.disturbance.blast_radius = 2;
  cfg.disturbance.distance2_weight_q8 = 48;
  cfg.disturbance.variation_pct = 10;
  cfg.remap_rows = true;
  cfg.remap_swaps = 8;
  cfg.finalize();

  exp::SimConfig parsed;
  exp::apply_config(parsed,
                    util::KeyValueFile::parse(exp::to_config_text(cfg)));
  EXPECT_EQ(parsed.workload.model, exp::BenignModel::kFuzz);
  EXPECT_EQ(parsed.workload.fuzz.seed, cfg.workload.fuzz.seed);
  EXPECT_EQ(parsed.workload.fuzz.patterns, cfg.workload.fuzz.patterns);
  EXPECT_DOUBLE_EQ(parsed.workload.fuzz.acts_per_interval,
                   cfg.workload.fuzz.acts_per_interval);
  EXPECT_EQ(parsed.workload.fuzz.params.pairs_min, 3u);
  EXPECT_EQ(parsed.workload.fuzz.params.pairs_max, 5u);
  EXPECT_EQ(parsed.workload.fuzz.params.period_exp_min, 6u);
  EXPECT_EQ(parsed.workload.fuzz.params.period_exp_max, 7u);
  EXPECT_EQ(parsed.workload.fuzz.params.amplitude_max, 2u);
  EXPECT_EQ(parsed.workload.fuzz.params.decoys_max, 3u);
  EXPECT_TRUE(parsed.workload.fuzz.params.half_double);
  EXPECT_EQ(parsed.disturbance.blast_radius, 2u);
  EXPECT_EQ(parsed.disturbance.distance2_weight_q8, 48u);
  EXPECT_EQ(parsed.disturbance.variation_pct, 10u);
  EXPECT_TRUE(parsed.remap_rows);
  EXPECT_EQ(parsed.remap_swaps, 8u);
}

TEST(ConfigIo, FuzzSeedIsSweepable) {
  // fuzz.seed is an ordinary config key, so the generic sweep engine
  // sweeps fuzzer seeds; each cell equals a direct run at that seed.
  // Timing is not addressable by key (only timing.preset), so this test
  // runs at the DDR4 preset with a small bank and a low fuzz rate.
  util::KeyValueFile base;
  base.set("geometry.banks", "2");
  base.set("geometry.rows_per_bank", "16384");
  base.set("windows", "1");
  base.set("seed", "3");
  base.set("workload.benign_rate", "5");
  base.set("workload.model", "fuzz");
  base.set("fuzz.patterns", "2");
  base.set("fuzz.rate", "40");
  base.set("disturbance.flip_threshold", "2000");
  const auto sweep = exp::run_param_sweep(base, "fuzz.seed", {"5", "9"},
                                          {hw::Technique::kLoLiPRoMi});
  ASSERT_EQ(sweep.cells.size(), 2u);

  const std::uint64_t seeds[] = {5, 9};
  for (const std::size_t i : {0ul, 1ul}) {
    exp::SimConfig direct;
    exp::apply_config(direct, base);
    direct.workload.fuzz.seed = seeds[i];
    direct.finalize();
    const auto want = exp::run_simulation(hw::Technique::kLoLiPRoMi, direct);
    EXPECT_EQ(sweep.at(i, 0).records, want.records) << "seed " << seeds[i];
    EXPECT_EQ(sweep.at(i, 0).flips, want.flips) << "seed " << seeds[i];
    EXPECT_EQ(sweep.at(i, 0).stats.demand_acts, want.stats.demand_acts)
        << "seed " << seeds[i];
    EXPECT_EQ(sweep.at(i, 0).peak_disturbance, want.peak_disturbance)
        << "seed " << seeds[i];
  }
  // Different fuzzer seeds draw different patterns.
  EXPECT_NE(sweep.at(0, 0).peak_disturbance, sweep.at(1, 0).peak_disturbance);
}

}  // namespace
}  // namespace tvp
