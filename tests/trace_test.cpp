// Unit tests for tvp::trace — sources, synthetic workloads, attacker
// models, trace I/O and statistics.
#include <gtest/gtest.h>

#include <cstring>
#include <new>
#include <set>
#include <sstream>

#include "tvp/trace/attack.hpp"
#include "tvp/trace/io.hpp"
#include "tvp/trace/source.hpp"
#include "tvp/trace/stats.hpp"
#include "tvp/trace/synthetic.hpp"

namespace tvp::trace {
namespace {

AccessRecord rec(std::uint64_t t, std::uint32_t bank = 0, std::uint32_t row = 0) {
  AccessRecord r;
  r.time_ps = t;
  r.bank = bank;
  r.row = row;
  return r;
}

// ------------------------------------------------------------------ sources

TEST(VectorSource, ReplaysInOrder) {
  VectorSource src({rec(1), rec(2), rec(2), rec(5)});
  EXPECT_EQ(src.next()->time_ps, 1u);
  EXPECT_EQ(src.next()->time_ps, 2u);
  EXPECT_EQ(src.next()->time_ps, 2u);
  EXPECT_EQ(src.next()->time_ps, 5u);
  EXPECT_FALSE(src.next().has_value());
}

TEST(VectorSource, RejectsUnsorted) {
  EXPECT_THROW(VectorSource({rec(5), rec(1)}), std::invalid_argument);
}

TEST(MergedSource, ProducesGlobalTimeOrder) {
  std::vector<std::unique_ptr<TraceSource>> sources;
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(1), rec(4), rec(9)}));
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(2), rec(3), rec(10)}));
  MergedSource merged(std::move(sources));
  std::uint64_t last = 0;
  int count = 0;
  while (auto r = merged.next()) {
    EXPECT_GE(r->time_ps, last);
    last = r->time_ps;
    ++count;
  }
  EXPECT_EQ(count, 6);
}

TEST(MergedSource, TieBreaksByRegistrationOrder) {
  std::vector<std::unique_ptr<TraceSource>> sources;
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(5, 0)}));
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(5, 1)}));
  MergedSource merged(std::move(sources));
  EXPECT_EQ(merged.next()->bank, 0u);
  EXPECT_EQ(merged.next()->bank, 1u);
}

TEST(MergedSource, ThreeWayTieKeepsRegistrationOrderThroughout) {
  // Replay determinism leans on this: when several sources agree on a
  // timestamp — including runs of equal times within one source — the
  // merged order is registration order, every time.
  std::vector<std::unique_ptr<TraceSource>> sources;
  for (std::uint32_t s = 0; s < 3; ++s)
    sources.push_back(std::make_unique<VectorSource>(
        std::vector<AccessRecord>{rec(5, s), rec(5, s), rec(7, s)}));
  MergedSource merged(std::move(sources));
  std::vector<std::uint32_t> banks;
  while (auto r = merged.next()) banks.push_back(r->bank);
  EXPECT_EQ(banks,
            (std::vector<std::uint32_t>{0, 0, 1, 1, 2, 2, 0, 1, 2}));
}

TEST(LimitSource, CutsByCountAndTime) {
  auto inner = std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(1), rec(2), rec(3), rec(100)});
  LimitSource by_count(std::move(inner), 2, ~0ull);
  EXPECT_TRUE(by_count.next().has_value());
  EXPECT_TRUE(by_count.next().has_value());
  EXPECT_FALSE(by_count.next().has_value());

  auto inner2 = std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(1), rec(2), rec(50)});
  LimitSource by_time(std::move(inner2), ~0ull, 10);
  EXPECT_TRUE(by_time.next().has_value());
  EXPECT_TRUE(by_time.next().has_value());
  EXPECT_FALSE(by_time.next().has_value());  // 50 >= 10
}

TEST(Drain, CollectsEverything) {
  VectorSource src({rec(1), rec(2)});
  EXPECT_EQ(drain(src).size(), 2u);
}

// -------------------------------------------------------------- next_batch

// Drains @p a via next() and @p b via next_batch(chunk) and requires the
// two record sequences to be identical.
void expect_batch_equals_next(TraceSource& a, TraceSource& b,
                              std::size_t chunk) {
  std::vector<AccessRecord> via_next;
  while (auto r = a.next()) via_next.push_back(*r);

  std::vector<AccessRecord> via_batch;
  std::vector<AccessRecord> buf(chunk);
  for (;;) {
    const std::size_t n = b.next_batch(buf.data(), buf.size());
    if (n == 0) break;
    ASSERT_LE(n, buf.size());
    via_batch.insert(via_batch.end(), buf.begin(), buf.begin() + n);
  }
  ASSERT_EQ(via_next.size(), via_batch.size()) << "chunk " << chunk;
  for (std::size_t i = 0; i < via_next.size(); ++i)
    EXPECT_TRUE(via_next[i] == via_batch[i]) << "record " << i;
}

TEST(NextBatch, VectorSourceMatchesNext) {
  const std::vector<AccessRecord> data{rec(1), rec(2), rec(2, 1, 7), rec(5),
                                       rec(9, 3, 4)};
  for (const std::size_t chunk : {1u, 2u, 3u, 16u}) {
    VectorSource a(data), b(data);
    expect_batch_equals_next(a, b, chunk);
  }
}

std::unique_ptr<MergedSource> make_merged() {
  std::vector<std::unique_ptr<TraceSource>> sources;
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(1), rec(4), rec(5, 0), rec(9)}));
  sources.push_back(std::make_unique<VectorSource>(
      std::vector<AccessRecord>{rec(2), rec(3), rec(5, 1), rec(10)}));
  return std::make_unique<MergedSource>(std::move(sources));
}

TEST(NextBatch, MergedSourceMatchesNextIncludingTieBreaks) {
  for (const std::size_t chunk : {1u, 3u, 64u}) {
    auto a = make_merged();
    auto b = make_merged();
    expect_batch_equals_next(*a, *b, chunk);
  }
}

TEST(NextBatch, LimitSourceHonoursCountAndTimeCuts) {
  const std::vector<AccessRecord> data{rec(1), rec(2), rec(3), rec(4),
                                       rec(50), rec(60)};
  for (const std::size_t chunk : {1u, 2u, 4u, 16u}) {
    LimitSource a(std::make_unique<VectorSource>(data), 3, ~0ull);
    LimitSource b(std::make_unique<VectorSource>(data), 3, ~0ull);
    expect_batch_equals_next(a, b, chunk);

    LimitSource at(std::make_unique<VectorSource>(data), ~0ull, 10);
    LimitSource bt(std::make_unique<VectorSource>(data), ~0ull, 10);
    expect_batch_equals_next(at, bt, chunk);
  }
}

TEST(NextBatch, DeadSourceKeepsReturningZero) {
  LimitSource src(std::make_unique<VectorSource>(
                      std::vector<AccessRecord>{rec(1), rec(2)}),
                  1, ~0ull);
  AccessRecord buf[4];
  EXPECT_EQ(src.next_batch(buf, 4), 1u);
  EXPECT_EQ(src.next_batch(buf, 4), 0u);
  EXPECT_EQ(src.next_batch(buf, 4), 0u);
  EXPECT_FALSE(src.next().has_value());
}

// --------------------------------------------------------------- next_span

// Drains @p a via next() and @p b via next_span() and requires the two
// record sequences to be identical.
void expect_span_equals_next(TraceSource& a, TraceSource& b) {
  std::vector<AccessRecord> via_next;
  while (auto r = a.next()) via_next.push_back(*r);

  std::vector<AccessRecord> via_span;
  const AccessRecord* span = nullptr;
  while (const std::size_t n = b.next_span(&span))
    via_span.insert(via_span.end(), span, span + n);

  ASSERT_EQ(via_next.size(), via_span.size());
  for (std::size_t i = 0; i < via_next.size(); ++i)
    EXPECT_TRUE(via_next[i] == via_span[i]) << "record " << i;
}

TEST(NextSpan, VectorSourceHandsOutItsUnconsumedTail) {
  const std::vector<AccessRecord> data{rec(1), rec(2), rec(5)};
  VectorSource a(data), b(data);
  EXPECT_TRUE(b.supports_spans());
  expect_span_equals_next(a, b);

  VectorSource mixed(data);
  EXPECT_EQ(mixed.next()->time_ps, 1u);  // consume one via next()...
  const AccessRecord* span = nullptr;
  ASSERT_EQ(mixed.next_span(&span), 2u);  // ...the span is the tail
  EXPECT_EQ(span[0].time_ps, 2u);
  EXPECT_EQ(span[1].time_ps, 5u);
  EXPECT_EQ(mixed.next_span(&span), 0u);
  EXPECT_EQ(span, nullptr);
}

TEST(NextSpan, LimitSourceTrimsSpansByCountAndTime) {
  const std::vector<AccessRecord> data{rec(1), rec(2), rec(3), rec(4),
                                       rec(50), rec(60)};
  {
    LimitSource a(std::make_unique<VectorSource>(data), 3, ~0ull);
    LimitSource b(std::make_unique<VectorSource>(data), 3, ~0ull);
    EXPECT_TRUE(b.supports_spans());
    expect_span_equals_next(a, b);
  }
  {
    LimitSource a(std::make_unique<VectorSource>(data), ~0ull, 10);
    LimitSource b(std::make_unique<VectorSource>(data), ~0ull, 10);
    expect_span_equals_next(a, b);
  }
  {
    // Both cuts at once: the record limit must bind inside a span the
    // time cut already shortened.
    LimitSource a(std::make_unique<VectorSource>(data), 2, 10);
    LimitSource b(std::make_unique<VectorSource>(data), 2, 10);
    expect_span_equals_next(a, b);
  }
}

TEST(NextSpan, MergedSourceDeclinesSpansButStreamsNormally) {
  // A k-way merge interleaves records and cannot hand out borrowed
  // contiguous spans; the base contract is "unsupported": next_span
  // returns 0 without consuming anything.
  auto merged = make_merged();
  EXPECT_FALSE(merged->supports_spans());
  const AccessRecord* span = nullptr;
  EXPECT_EQ(merged->next_span(&span), 0u);
  EXPECT_EQ(span, nullptr);
  EXPECT_EQ(merged->next()->time_ps, 1u);  // the stream itself is intact
}

// ---------------------------------------------------------------- synthetic

class SyntheticProfile : public ::testing::TestWithParam<AccessProfile> {};

TEST_P(SyntheticProfile, TimeMonotoneAndInRange) {
  SyntheticConfig cfg;
  cfg.profile = GetParam();
  cfg.banks = 4;
  cfg.rows_per_bank = 4096;
  cfg.mean_interarrival_ps = 1000;
  SyntheticSource src(cfg, util::Rng(3));
  std::uint64_t last = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto r = src.next();
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->time_ps, last);
    last = r->time_ps;
    EXPECT_LT(r->bank, 4u);
    EXPECT_LT(r->row, 4096u);
    EXPECT_FALSE(r->is_attack);
  }
}

TEST_P(SyntheticProfile, RateMatchesConfiguration) {
  SyntheticConfig cfg;
  cfg.profile = GetParam();
  cfg.mean_interarrival_ps = 500;
  SyntheticSource src(cfg, util::Rng(5));
  const int n = 20000;
  std::uint64_t last = 0;
  for (int i = 0; i < n; ++i) last = src.next()->time_ps;
  const double mean = static_cast<double>(last) / n;
  EXPECT_NEAR(mean, 500, 25);
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, SyntheticProfile,
    ::testing::Values(AccessProfile::kStreaming, AccessProfile::kStrided,
                      AccessProfile::kRandom, AccessProfile::kHotspot,
                      AccessProfile::kPointerChase));

TEST(Synthetic, HotspotConcentratesOnWorkingSet) {
  SyntheticConfig cfg;
  cfg.profile = AccessProfile::kHotspot;
  cfg.hotspot_rows = 8;
  cfg.hotspot_bias = 0.95;
  cfg.rows_per_bank = 1 << 16;
  SyntheticSource src(cfg, util::Rng(7));
  std::map<dram::RowId, int> counts;
  const int n = 10000;
  for (int i = 0; i < n; ++i) ++counts[src.next()->row];
  // The top 8 rows should hold ~95% of accesses.
  std::vector<int> sorted;
  for (const auto& [row, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  int top8 = 0;
  for (int i = 0; i < 8 && i < static_cast<int>(sorted.size()); ++i)
    top8 += sorted[i];
  EXPECT_GT(top8, n * 0.90);
}

TEST(Synthetic, StreamingWalksSequentially) {
  SyntheticConfig cfg;
  cfg.profile = AccessProfile::kStreaming;
  cfg.rows_per_bank = 1024;
  SyntheticSource src(cfg, util::Rng(9));
  dram::RowId prev = src.next()->row;
  for (int i = 0; i < 100; ++i) {
    const dram::RowId cur = src.next()->row;
    EXPECT_EQ(cur, (prev + 1) % 1024);
    prev = cur;
  }
}

TEST(Synthetic, InvalidConfigThrows) {
  SyntheticConfig cfg;
  cfg.banks = 0;
  EXPECT_THROW(SyntheticSource(cfg, util::Rng(1)), std::invalid_argument);
  cfg = SyntheticConfig{};
  cfg.mean_interarrival_ps = 0;
  EXPECT_THROW(SyntheticSource(cfg, util::Rng(1)), std::invalid_argument);
}

TEST(MixedWorkload, HitsTargetRate) {
  const auto configs = mixed_workload(4, 131072, 7'812'500, 20.0);
  ASSERT_EQ(configs.size(), 4u);
  // Aggregate rate: sum of 1/interarrival == banks * target / tREFI.
  double rate = 0;
  for (const auto& c : configs) rate += 1.0 / c.mean_interarrival_ps;
  EXPECT_NEAR(rate, 4 * 20.0 / 7'812'500, rate * 0.01);
  EXPECT_THROW(mixed_workload(4, 131072, 7'812'500, 0.0), std::invalid_argument);
}

// ------------------------------------------------------------------- attack

TEST(Attack, DoubleSidedDerivesBothAggressors) {
  AttackConfig cfg;
  cfg.pattern = AttackPattern::kDoubleSided;
  cfg.victims = {100};
  cfg.rows_per_bank = 1024;
  AttackSource src(cfg);
  ASSERT_EQ(src.aggressors().size(), 2u);
  EXPECT_EQ(src.aggressors()[0], 99u);
  EXPECT_EQ(src.aggressors()[1], 101u);
}

TEST(Attack, SingleSidedAndFlood) {
  AttackConfig cfg;
  cfg.pattern = AttackPattern::kSingleSided;
  cfg.victims = {100};
  cfg.rows_per_bank = 1024;
  EXPECT_EQ(AttackSource(cfg).aggressors(), std::vector<dram::RowId>{101});
  cfg.pattern = AttackPattern::kFlood;
  EXPECT_EQ(AttackSource(cfg).aggressors(), std::vector<dram::RowId>{100});
}

TEST(Attack, EdgeVictimHasOneAggressor) {
  AttackConfig cfg;
  cfg.pattern = AttackPattern::kDoubleSided;
  cfg.victims = {0};
  cfg.rows_per_bank = 1024;
  EXPECT_EQ(AttackSource(cfg).aggressors(), std::vector<dram::RowId>{1});
}

TEST(Attack, MultiAggressorDeduplicatesOverlap) {
  AttackConfig cfg;
  cfg.pattern = AttackPattern::kMultiAggressor;
  cfg.victims = {10, 12};  // share aggressor row 11
  cfg.rows_per_bank = 1024;
  const AttackSource src(cfg);
  EXPECT_EQ(src.aggressors().size(), 3u);  // 9, 11, 13
}

TEST(Attack, RoundRobinAtConfiguredRate) {
  AttackConfig cfg;
  cfg.pattern = AttackPattern::kDoubleSided;
  cfg.victims = {100};
  cfg.rows_per_bank = 1024;
  cfg.interarrival_ps = 45'000;
  cfg.bank = 3;
  AttackSource src(cfg);
  std::uint64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    const auto r = src.next();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->time_ps - prev, 45'000u);
    prev = r->time_ps;
    EXPECT_EQ(r->bank, 3u);
    EXPECT_TRUE(r->is_attack);
    EXPECT_EQ(r->row, i % 2 == 0 ? 99u : 101u);
  }
}

TEST(Attack, EndsAtConfiguredTime) {
  AttackConfig cfg;
  cfg.victims = {100};
  cfg.rows_per_bank = 1024;
  cfg.interarrival_ps = 10;
  cfg.end_ps = 100;
  AttackSource src(cfg);
  int n = 0;
  while (src.next()) ++n;
  EXPECT_EQ(n, 9);
}

TEST(Attack, InvalidConfigThrows) {
  AttackConfig cfg;
  EXPECT_THROW(AttackSource{cfg}, std::invalid_argument);  // no victims
  cfg.victims = {5000};
  cfg.rows_per_bank = 1024;
  EXPECT_THROW(AttackSource{cfg}, std::invalid_argument);  // out of range
}

TEST(Attack, MakeMultiAggressorSeparatesVictims) {
  util::Rng rng(13);
  const auto cfg = make_multi_aggressor_attack(0, 131072, 20, rng);
  EXPECT_EQ(cfg.victims.size(), 20u);
  for (std::size_t i = 1; i < cfg.victims.size(); ++i)
    EXPECT_GE(cfg.victims[i] - cfg.victims[i - 1], 8u);
  EXPECT_THROW(make_multi_aggressor_attack(0, 64, 20, rng),
               std::invalid_argument);
}

// ----------------------------------------------------------------------- io

std::vector<AccessRecord> sample_records() {
  std::vector<AccessRecord> records;
  util::Rng rng(21);
  std::uint64_t t = 0;
  for (int i = 0; i < 500; ++i) {
    AccessRecord r;
    t += rng.below(1000);
    r.time_ps = t;
    r.bank = static_cast<dram::BankId>(rng.below(16));
    r.row = static_cast<dram::RowId>(rng.below(131072));
    r.write = rng.bernoulli(0.3);
    r.is_attack = rng.bernoulli(0.1);
    r.source = static_cast<SourceId>(rng.below(8));
    records.push_back(r);
  }
  return records;
}

TEST(TraceIo, TextRoundTrip) {
  const auto records = sample_records();
  std::stringstream ss;
  EXPECT_EQ(write_text(ss, records), records.size());
  EXPECT_EQ(read_text(ss), records);
}

TEST(TraceIo, BinaryRoundTrip) {
  const auto records = sample_records();
  std::stringstream ss;
  EXPECT_EQ(write_binary(ss, records), records.size());
  EXPECT_EQ(read_binary(ss), records);
}

TEST(TraceIo, TextToleratesCommentsAndBlanks) {
  std::stringstream ss("# comment\n\n100 3 42 W 1 A\n");
  const auto records = read_text(ss);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].time_ps, 100u);
  EXPECT_EQ(records[0].bank, 3u);
  EXPECT_EQ(records[0].row, 42u);
  EXPECT_TRUE(records[0].write);
  EXPECT_TRUE(records[0].is_attack);
}

TEST(TraceIo, TextRejectsMalformed) {
  std::stringstream ss("100 3 42 X 1 A\n");
  EXPECT_THROW(read_text(ss), std::runtime_error);
}

TEST(TraceIo, BinaryRejectsBadMagicAndTruncation) {
  std::stringstream bad("not a trace at all");
  EXPECT_THROW(read_binary(bad), std::runtime_error);

  std::stringstream ss;
  write_binary(ss, sample_records());
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(read_binary(truncated), std::runtime_error);
}

TEST(TraceIo, BinaryRejectsCorruptCountWithoutAllocating) {
  // A corrupt header count must fail the "truncated" check before the
  // reader reserves memory for it — not attempt a huge allocation.
  std::stringstream ss;
  write_binary(ss, sample_records());
  std::string data = ss.str();
  const std::uint64_t huge = ~0ull / sizeof(std::uint64_t);
  std::memcpy(data.data() + 8, &huge, sizeof huge);  // count field at offset 8
  std::stringstream corrupt(data);
  try {
    read_binary(corrupt);
    FAIL() << "corrupt count accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
  } catch (const std::bad_alloc&) {
    FAIL() << "corrupt count triggered an allocation instead of a parse error";
  }
}

TEST(TraceIo, FileRoundTripByExtension) {
  const auto records = sample_records();
  const std::string text_path = ::testing::TempDir() + "/trace.txt";
  const std::string bin_path = ::testing::TempDir() + "/trace.tvpt";
  save_trace(text_path, records);
  save_trace(bin_path, records);
  EXPECT_EQ(load_trace(text_path), records);
  EXPECT_EQ(load_trace(bin_path), records);
  EXPECT_THROW(load_trace("/nonexistent/dir/x.tvpt"), std::runtime_error);
}

TEST(TraceIo, ImportAddressTrace) {
  dram::Geometry g;
  g.banks_per_rank = 4;
  g.rows_per_bank = 4096;
  g.cols_per_row = 64;
  const dram::AddressMapper mapper(g, dram::AddressMapPolicy::kRowColBank);
  std::stringstream ss(
      "# DRAMSim-style trace\n"
      "0x00001000 READ 100\n"
      "0x00002040 WRITE 250\n"
      "4096 R 400\n"
      "; trailing comment line\n");
  const auto records = import_address_trace(ss, mapper, 1000.0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].time_ps, 100'000u);
  EXPECT_FALSE(records[0].write);
  EXPECT_TRUE(records[1].write);
  EXPECT_EQ(records[2].time_ps, 400'000u);
  // 0x1000 and 4096 are the same address -> same coordinates.
  EXPECT_EQ(records[0].bank, records[2].bank);
  EXPECT_EQ(records[0].row, records[2].row);
  for (const auto& r : records) {
    EXPECT_LT(r.bank, g.total_banks());
    EXPECT_LT(r.row, g.rows_per_bank);
    EXPECT_FALSE(r.is_attack);
  }
}

TEST(TraceIo, ImportWithoutCyclesSpacesByClock) {
  dram::Geometry g;
  g.banks_per_rank = 2;
  g.rows_per_bank = 1024;
  const dram::AddressMapper mapper(g, dram::AddressMapPolicy::kRowBankCol);
  std::stringstream ss("0x100 R\n0x200 W\n0x300 R\n");
  const auto records = import_address_trace(ss, mapper, 500.0);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].time_ps, 500u);
  EXPECT_EQ(records[1].time_ps, 1000u);
  EXPECT_EQ(records[2].time_ps, 1500u);
}

TEST(TraceIo, ImportRejectsMalformed) {
  dram::Geometry g;
  const dram::AddressMapper mapper(g, dram::AddressMapPolicy::kRowColBank);
  std::stringstream no_op("0x1000\n");
  EXPECT_THROW(import_address_trace(no_op, mapper), std::runtime_error);
  std::stringstream bad_op("0x1000 X\n");
  EXPECT_THROW(import_address_trace(bad_op, mapper), std::runtime_error);
  std::stringstream bad_addr("zzz R\n");
  EXPECT_THROW(import_address_trace(bad_addr, mapper), std::runtime_error);
  std::stringstream bad_clock("0x1000 R\n");
  EXPECT_THROW(import_address_trace(bad_clock, mapper, 0.0),
               std::runtime_error);
  EXPECT_THROW(import_address_trace(bad_clock, mapper, -833.0),
               std::runtime_error);
}

TEST(TraceIo, ImportErrorsCarryTheFailingLineNumber) {
  dram::Geometry g;
  const dram::AddressMapper mapper(g, dram::AddressMapPolicy::kRowColBank);
  std::stringstream ss("0x100 R 1\n0x200 W 2\n0x300\n");
  try {
    import_address_trace(ss, mapper, 1000.0);
    FAIL() << "missing op accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

TEST(TraceIo, ImportDefaultClockComesFromDdr4Timing) {
  // The no-clock overloads derive the period from dram::Timing (the
  // DDR4 preset every SimConfig starts from), not a hardcoded constant:
  // all three spellings must agree.
  dram::Geometry g;
  const dram::AddressMapper mapper(g, dram::AddressMapPolicy::kRowColBank);
  const dram::Timing timing = dram::ddr4_timing();
  const std::string text = "0x100 R\n0x200 W\n";
  std::stringstream a(text), b(text), c(text);
  const auto by_default = import_address_trace(a, mapper);
  const auto by_timing = import_address_trace(b, mapper, timing);
  const auto by_clock = import_address_trace(c, mapper, timing.t_ck_ps());
  EXPECT_EQ(by_default, by_timing);
  EXPECT_EQ(by_timing, by_clock);
  ASSERT_EQ(by_default.size(), 2u);
  EXPECT_EQ(by_default[0].time_ps,
            static_cast<std::uint64_t>(timing.t_ck_ps()));
}

TEST(TraceIo, FormatResolutionIsCaseInsensitiveAndOverridable) {
  EXPECT_EQ(resolve_trace_format("a.tvpt", TraceFormat::kAuto),
            TraceFormat::kBinaryV1);
  EXPECT_EQ(resolve_trace_format("a.TVPT", TraceFormat::kAuto),
            TraceFormat::kBinaryV1);
  EXPECT_EQ(resolve_trace_format("a.TvPc", TraceFormat::kAuto),
            TraceFormat::kCorpus);
  EXPECT_EQ(resolve_trace_format("a.trace", TraceFormat::kAuto),
            TraceFormat::kText);
  EXPECT_EQ(resolve_trace_format("tvpt", TraceFormat::kAuto),
            TraceFormat::kText)
      << "an extensionless name that merely ends in the letters is text";
  // An explicit format wins over the extension.
  EXPECT_EQ(resolve_trace_format("a.tvpt", TraceFormat::kText),
            TraceFormat::kText);

  const auto records = sample_records();
  const std::string upper = ::testing::TempDir() + "/trace.TVPT";
  save_trace(upper, records);  // uppercase extension still picks binary
  EXPECT_EQ(load_trace(upper), records);
}

TEST(TraceIo, ImportClampsUnsortedTimes) {
  dram::Geometry g;
  const dram::AddressMapper mapper(g, dram::AddressMapPolicy::kRowColBank);
  std::stringstream ss("0x100 R 100\n0x200 R 50\n");
  const auto records = import_address_trace(ss, mapper, 1.0);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_GE(records[1].time_ps, records[0].time_ps);
}

// -------------------------------------------------------------------- stats

TEST(TraceStats, CountsAndRates) {
  TraceStats stats(1000, 2);  // tREFI=1000ps, 2 banks
  for (int i = 0; i < 10; ++i) {
    AccessRecord r = rec(i * 100, i % 2, 5);
    r.is_attack = i < 3;
    r.write = i % 5 == 0;
    stats.add(r);
  }
  EXPECT_EQ(stats.records(), 10u);
  EXPECT_EQ(stats.attack_records(), 3u);
  EXPECT_DOUBLE_EQ(stats.attack_fraction(), 0.3);
  EXPECT_EQ(stats.writes(), 2u);
  EXPECT_EQ(stats.unique_rows(), 2u);  // row 5 in banks 0 and 1
  EXPECT_EQ(stats.hottest_row_count(), 5u);
  const auto per_interval = stats.acts_per_interval_per_bank();
  EXPECT_EQ(per_interval.count(), 2u);  // (interval 0, banks 0 and 1)
  EXPECT_DOUBLE_EQ(per_interval.mean(), 5.0);
}

TEST(TraceStats, InvalidConfigThrows) {
  EXPECT_THROW(TraceStats(0, 2), std::invalid_argument);
  EXPECT_THROW(TraceStats(1000, 0), std::invalid_argument);
}

}  // namespace
}  // namespace tvp::trace
