// Unit tests for tvp::util — RNG, fixed-point probability, statistics,
// histogram, tables, bit utilities.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "tvp/util/bitutil.hpp"
#include "tvp/util/cli.hpp"
#include "tvp/util/config.hpp"
#include "tvp/util/csv.hpp"
#include "tvp/util/failpoint.hpp"
#include "tvp/util/fixed_prob.hpp"
#include "tvp/util/histogram.hpp"
#include "tvp/util/json.hpp"
#include "tvp/util/log.hpp"
#include "tvp/util/parallel.hpp"
#include "tvp/util/rng.hpp"
#include "tvp/util/stats.hpp"
#include "tvp/util/table.hpp"

namespace tvp::util {
namespace {

// ---------------------------------------------------------------- bitutil

TEST(BitUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0u));
  EXPECT_TRUE(is_pow2(1u));
  EXPECT_TRUE(is_pow2(2u));
  EXPECT_FALSE(is_pow2(3u));
  EXPECT_TRUE(is_pow2(1024u));
  EXPECT_FALSE(is_pow2(1023u));
}

TEST(BitUtil, FloorCeilLog2) {
  EXPECT_EQ(floor_log2(1u), 0u);
  EXPECT_EQ(floor_log2(2u), 1u);
  EXPECT_EQ(floor_log2(3u), 1u);
  EXPECT_EQ(floor_log2(1024u), 10u);
  EXPECT_EQ(ceil_log2(1u), 0u);
  EXPECT_EQ(ceil_log2(2u), 1u);
  EXPECT_EQ(ceil_log2(3u), 2u);
  EXPECT_EQ(ceil_log2(1024u), 10u);
  EXPECT_EQ(ceil_log2(1025u), 11u);
}

TEST(BitUtil, NextPow2) {
  EXPECT_EQ(next_pow2(1u), 1u);
  EXPECT_EQ(next_pow2(3u), 4u);
  EXPECT_EQ(next_pow2(17u), 32u);
  EXPECT_EQ(next_pow2(64u), 64u);
}

TEST(BitUtil, BitsFor) {
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(131072), 17u);  // the paper's row address width
  EXPECT_EQ(bits_for(8192), 13u);    // the refresh interval width
}

// Property: for every v, 2^ceil_log2(v) >= v and 2^floor_log2(v) <= v.
class Log2Property : public ::testing::TestWithParam<std::uint64_t> {};
TEST_P(Log2Property, Bounds) {
  const std::uint64_t v = GetParam();
  EXPECT_GE(std::uint64_t{1} << ceil_log2(v), v);
  EXPECT_LE(std::uint64_t{1} << floor_log2(v), v);
  EXPECT_LE(ceil_log2(v) - floor_log2(v), 1u);
}
INSTANTIATE_TEST_SUITE_P(Sweep, Log2Property,
                         ::testing::Values(1, 2, 3, 5, 16, 17, 100, 1023, 1024,
                                           1025, 139000, 1u << 31));

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 165ull, 131072ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 300; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.between(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.1);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.1, 0.01);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BernoulliQ32MatchesFixedProb) {
  Rng rng(17);
  const auto p = FixedProb::from_double(0.01);
  const int n = 200000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli_q32(p.raw());
  EXPECT_NEAR(hits / static_cast<double>(n), 0.01, 0.002);
  EXPECT_FALSE(rng.bernoulli_q32(0));
  EXPECT_TRUE(rng.bernoulli_q32(FixedProb::kOne));
}

TEST(Rng, BelowPassesChiSquare) {
  // Uniformity of below(16): chi-square against the 0.1% critical value
  // (df = 15 -> 37.7; we allow 45 for slack). Deterministic seed.
  Rng rng(777);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 64000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 45.0) << "chi2 = " << chi2;
}

TEST(Rng, ExponentialQuantilesMatchTheory) {
  Rng rng(888);
  PercentileTracker samples;
  for (int i = 0; i < 50000; ++i) samples.add(rng.exponential(100.0));
  // Exponential(mean 100): median = 69.3, p90 = 230.3.
  EXPECT_NEAR(samples.percentile(0.5), 69.3, 3.0);
  EXPECT_NEAR(samples.percentile(0.9), 230.3, 8.0);
}

TEST(Rng, Bits64AreBalanced) {
  Rng rng(999);
  int ones[64] = {};
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    std::uint64_t v = rng.next();
    for (int b = 0; b < 64; ++b) ones[b] += (v >> b) & 1;
  }
  for (int b = 0; b < 64; ++b)
    EXPECT_NEAR(ones[b], kDraws / 2, 350) << "bit " << b;  // ~5 sigma
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == child.next();
  EXPECT_LT(same, 4);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

// -------------------------------------------------------------- FixedProb

TEST(FixedProb, Pow2Values) {
  EXPECT_DOUBLE_EQ(FixedProb::pow2(0).value(), 1.0);
  EXPECT_DOUBLE_EQ(FixedProb::pow2(1).value(), 0.5);
  EXPECT_DOUBLE_EQ(FixedProb::pow2(23).value(), std::ldexp(1.0, -23));
  EXPECT_EQ(FixedProb::pow2(32).raw(), 1u);
  EXPECT_EQ(FixedProb::pow2(40).raw(), 0u);
}

TEST(FixedProb, PaperPbaseTimesRefInt) {
  // RefInt * Pbase = 8192 * 2^-23 = 2^-10 ~ 9.8e-4 (Table I).
  const auto p = FixedProb::pow2(23).scaled(8192);
  EXPECT_NEAR(p.value(), 9.765625e-4, 1e-9);
}

TEST(FixedProb, ScaledSaturates) {
  const auto p = FixedProb::pow2(4);  // 1/16
  EXPECT_DOUBLE_EQ(p.scaled(8).value(), 0.5);
  EXPECT_DOUBLE_EQ(p.scaled(16).value(), 1.0);
  EXPECT_DOUBLE_EQ(p.scaled(1000).value(), 1.0);  // saturated
}

TEST(FixedProb, FromDoubleRoundTrip) {
  for (const double v : {0.0, 1e-6, 0.001, 0.25, 0.999, 1.0}) {
    EXPECT_NEAR(FixedProb::from_double(v).value(), v, 1e-9);
  }
  EXPECT_EQ(FixedProb::from_double(-0.5).raw(), 0u);
  EXPECT_EQ(FixedProb::from_double(2.0).raw(), FixedProb::kOne);
}

TEST(FixedProb, Ordering) {
  EXPECT_LT(FixedProb::pow2(23), FixedProb::pow2(22));
  EXPECT_EQ(FixedProb::pow2(5), FixedProb::pow2(5));
}

// ------------------------------------------------------------ RunningStat

TEST(RunningStat, MeanAndStddev) {
  RunningStat s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStat, MergeEqualsSequential) {
  Rng rng(3);
  RunningStat all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform() * 100;
    all.add(v);
    (i % 2 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeEmptyCases) {
  RunningStat empty_a, empty_b;
  empty_a.merge(empty_b);  // empty + empty stays empty
  EXPECT_EQ(empty_a.count(), 0u);
  EXPECT_EQ(empty_a.mean(), 0.0);

  RunningStat filled;
  filled.add(3.0);
  filled.add(5.0);
  RunningStat lhs = filled;
  lhs.merge(empty_b);  // merging an empty accumulator is a no-op
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 4.0);

  RunningStat rhs;
  rhs.merge(filled);  // empty lhs adopts the other side verbatim
  EXPECT_EQ(rhs.count(), 2u);
  EXPECT_DOUBLE_EQ(rhs.mean(), filled.mean());
  EXPECT_DOUBLE_EQ(rhs.variance(), filled.variance());
  EXPECT_DOUBLE_EQ(rhs.min(), 3.0);
  EXPECT_DOUBLE_EQ(rhs.max(), 5.0);
}

TEST(RunningStat, MergeSingletonsMatchesOneShot) {
  // The harness's deterministic reduction: per-run singleton stats
  // merged in grid order must agree with one-shot accumulation.
  const double samples[] = {0.11, 0.25, 0.07, 0.42, 0.19};
  RunningStat one_shot, merged;
  for (const double v : samples) {
    one_shot.add(v);
    RunningStat single;
    single.add(v);
    merged.merge(single);
  }
  EXPECT_EQ(merged.count(), one_shot.count());
  EXPECT_NEAR(merged.mean(), one_shot.mean(), 1e-15);
  EXPECT_NEAR(merged.variance(), one_shot.variance(), 1e-15);
  EXPECT_DOUBLE_EQ(merged.min(), one_shot.min());
  EXPECT_DOUBLE_EQ(merged.max(), one_shot.max());
  EXPECT_NEAR(merged.sum(), one_shot.sum(), 1e-15);
}

TEST(RunningStat, MergeIsAssociative) {
  Rng rng(11);
  RunningStat a, b, c, all;
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform() * 10 - 5;
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(v);
    all.add(v);
  }
  RunningStat left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  RunningStat bc = b;     // a + (b + c)
  bc.merge(c);
  RunningStat right = a;
  right.merge(bc);
  EXPECT_EQ(left.count(), right.count());
  EXPECT_NEAR(left.mean(), right.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), right.variance(), 1e-9);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

// ---------------------------------------------------------------- parallel

TEST(Parallel, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> touched(257);
  for (auto& t : touched) t = 0;
  parallel_for_indexed(touched.size(), 4,
                       [&](std::size_t i) { touched[i].fetch_add(1); });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(Parallel, SequentialPathAndEmptyRange) {
  std::vector<int> order;
  parallel_for_indexed(4, 1, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // jobs=1: inline, in order
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  parallel_for_indexed(0, 8, [&](std::size_t) { FAIL(); });
}

TEST(Parallel, MoreJobsThanWork) {
  std::atomic<int> sum{0};
  parallel_for_indexed(3, 64,
                       [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(Parallel, PropagatesTheFirstException) {
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_for_indexed(16, 4,
                                    [&](std::size_t i) {
                                      if (i == 5)
                                        throw std::runtime_error("boom");
                                      completed.fetch_add(1);
                                    }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // the pool drains before rethrowing
}

TEST(Parallel, JobCountReadsEnvironment) {
  setenv("TVP_JOBS", "3", 1);
  EXPECT_EQ(job_count(), 3u);
  setenv("TVP_JOBS", "not-a-number", 1);
  EXPECT_GE(job_count(), 1u);  // falls back to hardware_concurrency
  setenv("TVP_JOBS", "0", 1);
  EXPECT_GE(job_count(), 1u);
  unsetenv("TVP_JOBS");
  EXPECT_GE(job_count(), 1u);
}

TEST(PercentileTracker, Percentiles) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.add(i);
  EXPECT_NEAR(t.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(t.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(t.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(t.percentile(0.9), 90.1, 1e-9);
}

TEST(PercentileTracker, AddAfterQueryResorts) {
  PercentileTracker t;
  t.add(10);
  EXPECT_DOUBLE_EQ(t.percentile(0.5), 10.0);
  t.add(0);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), 0.0);
}

// -------------------------------------------------------------- Histogram

TEST(Histogram, BinsAndClamping) {
  Histogram h(0, 10, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1);   // underflow: counted in underflow()/total() only
  h.add(100);  // overflow: counted in overflow()/total() only
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 4u);
  // Bins and the flow counters partition the samples exactly.
  std::uint64_t binned = 0;
  for (std::size_t b = 0; b < h.bins(); ++b) binned += h.count(b);
  EXPECT_EQ(binned + h.underflow() + h.overflow(), h.total());
}

TEST(Histogram, MeanIgnoresOutOfRangeSamples) {
  Histogram h(0, 10, 10);
  h.add(2);
  h.add(4);
  h.add(-50);   // must not drag the mean down
  h.add(1000);  // must not drag the mean up
  // Mean is over in-range samples only.
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 + 4.0) / 2.0);
}

TEST(Histogram, EdgesAndMean) {
  Histogram h(0, 100, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 25.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 75.0);
  h.add(10, 3);
  h.add(50);
  EXPECT_DOUBLE_EQ(h.mean(), (30.0 + 50.0) / 4.0);
}

TEST(Histogram, InvalidConfigThrows) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 10, 4), std::invalid_argument);
  Histogram h(0, 1, 2);
  EXPECT_THROW(h.bin_lo(5), std::out_of_range);
}

TEST(Histogram, RenderNonEmpty) {
  Histogram h(0, 10, 5);
  h.add(1);
  h.add(1);
  h.add(7);
  const std::string out = h.render(20);
  EXPECT_NE(out.find('#'), std::string::npos);
}

// -------------------------------------------------------------- TextTable

TEST(TextTable, RendersAllCells) {
  TextTable t({"a", "b"});
  t.add_row({"hello", "world"});
  t.row(42, 2.5);
  const std::string out = t.render();
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, CsvEscapes) {
  TextTable t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(strfmt("%.2f", 1.234), "1.23");
}

TEST(CsvWriter, WritesRowsToFile) {
  const std::string path = ::testing::TempDir() + "/tvp_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.write_row({"1", "2"});
    w.write_row({"x,y", "z"});
    EXPECT_EQ(w.rows_written(), 2u);
    EXPECT_THROW(w.write_row({"too", "many", "cells"}), std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,y\",z");
}

TEST(CsvWriter, CloseIsExplicitAndIdempotent) {
  const std::string path = ::testing::TempDir() + "/tvp_csv_close.csv";
  CsvWriter w(path, {"a"});
  w.write_row({"1"});
  w.close();
  w.close();  // second close is a no-op
  EXPECT_THROW(w.write_row({"2"}), std::logic_error);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
}

TEST(CsvWriter, ReportsWriteFailureInsteadOfSilentTruncation) {
  // Regression: write_row never checked the stream, so a full disk (or
  // a closed descriptor) produced a truncated CSV that parsed fine.
  // /dev/full fails every write at flush time; buffering means the
  // error may surface on a later write_row or only at close(), so drive
  // until something throws.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  CsvWriter w("/dev/full", {"col"});
  const std::string cell(1024, 'x');
  EXPECT_THROW(
      {
        for (int i = 0; i < 1024; ++i) w.write_row({cell});
        w.close();
      },
      std::runtime_error);
}

// ------------------------------------------------------------------- json

TEST(JsonWriter, NestedDocument) {
  JsonWriter json;
  json.begin_object();
  json.key("name").value("PARA");
  json.key("overhead").value(0.25);
  json.key("safe").value(true);
  json.key("flips").value(std::uint64_t{0});
  json.key("runs").begin_array();
  json.value(std::int64_t{1}).value(std::int64_t{2});
  json.end_array();
  json.key("nested").begin_object();
  json.key("x").value(std::int64_t{-3});
  json.end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\"name\":\"PARA\",\"overhead\":0.25,\"safe\":true,"
            "\"flips\":0,\"runs\":[1,2],\"nested\":{\"x\":-3}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.value(std::string("a\"b\\c\nd\te"));
  EXPECT_EQ(json.str(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(JsonWriter::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(json.str(), "[null,null]");
}

TEST(JsonWriter, MisuseThrows) {
  JsonWriter json;
  json.begin_object();
  EXPECT_THROW(json.value(std::int64_t{1}), std::logic_error);  // no key
  EXPECT_THROW(json.end_array(), std::logic_error);
  EXPECT_THROW(json.str(), std::logic_error);  // unclosed
  json.key("k");
  EXPECT_THROW(json.key("again"), std::logic_error);
  json.value(std::int64_t{1});
  json.end_object();
  EXPECT_NO_THROW(json.str());
  EXPECT_THROW(json.begin_object(), std::logic_error);  // already complete
}

// --------------------------------------------------------------------- log

TEST(Log, LevelGateAndRestore) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Emitting below the gate must be a no-op (no crash, nothing checked
  // beyond not aborting; the sink is stderr).
  TVP_LOG_DEBUG("invisible %d", 1);
  TVP_LOG_INFO("invisible %s", "too");
  set_log_level(LogLevel::kOff);
  TVP_LOG_ERROR("also swallowed %d", 2);
  set_log_level(before);
}

// ------------------------------------------------------------------ config

TEST(KeyValueFile, ParsesAndTypes) {
  const auto cfg = KeyValueFile::parse(
      "# comment\n"
      "geometry.banks = 8\n"
      "rate=2.5   # trailing comment\n"
      "name = hello world\n"
      "flag = true\n"
      "\n");
  EXPECT_EQ(cfg.size(), 4u);
  EXPECT_EQ(cfg.get_int("geometry.banks", 0), 8);
  EXPECT_DOUBLE_EQ(cfg.get_double("rate", 0), 2.5);
  EXPECT_EQ(cfg.get("name", ""), "hello world");
  EXPECT_TRUE(cfg.get_bool("flag", false));
  EXPECT_EQ(cfg.get_int("missing", 42), 42);
  EXPECT_FALSE(cfg.has("missing"));
}

TEST(KeyValueFile, LastDuplicateWins) {
  const auto cfg = KeyValueFile::parse("a = 1\na = 2\n");
  EXPECT_EQ(cfg.get_int("a", 0), 2);
}

TEST(KeyValueFile, RejectsMalformed) {
  EXPECT_THROW(KeyValueFile::parse("no equals sign\n"), std::runtime_error);
  EXPECT_THROW(KeyValueFile::parse("= value\n"), std::runtime_error);
  const auto cfg = KeyValueFile::parse("n = xyz\n");
  EXPECT_THROW(cfg.get_int("n", 0), std::runtime_error);
  EXPECT_THROW(KeyValueFile::load("/nonexistent/file.cfg"), std::runtime_error);
}

TEST(KeyValueFile, RoundTripsThroughText) {
  KeyValueFile cfg;
  cfg.set("b.key", "2");
  cfg.set("a.key", "hello");
  const auto reparsed = KeyValueFile::parse(cfg.to_text());
  EXPECT_EQ(reparsed.get("a.key", ""), "hello");
  EXPECT_EQ(reparsed.get_int("b.key", 0), 2);
  EXPECT_EQ(reparsed.keys(), cfg.keys());
}

// -------------------------------------------------------------------- cli

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=5", "--gamma", "positional",
                        "--delta=hello"};
  Flags flags(5, argv, {"alpha", "gamma", "delta"});
  EXPECT_EQ(flags.get_int("alpha", 0), 5);
  EXPECT_TRUE(flags.get_bool("gamma"));
  EXPECT_EQ(flags.get("delta", ""), "hello");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(Flags, DefaultsAndTypes) {
  const char* argv[] = {"prog", "--rate=2.5"};
  Flags flags(2, argv, {"rate", "missing"});
  EXPECT_DOUBLE_EQ(flags.get_double("rate", 0.0), 2.5);
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_FALSE(flags.get_bool("missing"));
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, RejectsUnknownAndMalformed) {
  const char* bad[] = {"prog", "--nope=1"};
  EXPECT_THROW(Flags(2, bad, {"known"}), std::invalid_argument);
  const char* not_int[] = {"prog", "--n=xyz"};
  Flags flags(2, not_int, {"n"});
  EXPECT_THROW(flags.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(flags.get_double("n", 0), std::invalid_argument);
}

TEST(Flags, BooleanBeforeAnotherFlag) {
  const char* argv[] = {"prog", "--verbose", "--n=3"};
  Flags flags(3, argv, {"verbose", "n"});
  EXPECT_TRUE(flags.get_bool("verbose"));
  EXPECT_EQ(flags.get_int("n", 0), 3);
}

// -------------------------------------------------------------- json parse

TEST(JsonValue, RoundTripsJsonWriterDocument) {
  JsonWriter json;
  json.begin_object();
  json.key("text").value("quote \" slash \\ newline \n tab \t ctrl \x01\x1f end");
  json.key("max_uint").value(std::numeric_limits<std::uint64_t>::max());
  json.key("min_int").value(std::numeric_limits<std::int64_t>::min());
  json.key("yes").value(true);
  json.key("no").value(false);
  json.key("runs").begin_array();
  json.value(1).value(2.5).value("three");
  json.end_array();
  json.key("nested").begin_object();
  json.key("empty_array").begin_array().end_array();
  json.key("empty_object").begin_object().end_object();
  json.end_object();
  json.end_object();

  const JsonValue doc = JsonValue::parse(json.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("text").as_string(),
            "quote \" slash \\ newline \n tab \t ctrl \x01\x1f end");
  EXPECT_EQ(doc.at("max_uint").as_uint(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(doc.at("min_int").as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(doc.at("yes").as_bool());
  EXPECT_FALSE(doc.at("no").as_bool());
  const auto& runs = doc.at("runs").items();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(runs[1].as_double(), 2.5);
  EXPECT_EQ(runs[2].as_string(), "three");
  EXPECT_TRUE(doc.at("nested").at("empty_array").items().empty());
  EXPECT_TRUE(doc.at("nested").at("empty_object").members().empty());
  EXPECT_EQ(doc.find("absent"), nullptr);
  EXPECT_THROW(doc.at("absent"), std::runtime_error);
}

TEST(JsonValue, ValueExactDoublesAreBitIdentical) {
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          6.02214076e23,
                          -5e-324,  // smallest subnormal
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::epsilon()};
  for (const double v : cases) {
    JsonWriter json;
    json.begin_array();
    json.value_exact(v);
    json.end_array();
    const double back = JsonValue::parse(json.str()).items()[0].as_double();
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
        << v << " did not round-trip exactly";
  }
}

TEST(JsonValue, ParsesUnicodeEscapes) {
  // \u00XX control escapes (what JsonWriter::escape emits), BMP
  // characters, and a surrogate pair, all decoded to UTF-8.
  const JsonValue doc =
      JsonValue::parse("\"\\u0001\\u001f\\u0041\\u00e9\\u20ac\\ud83d\\ude00\"");
  EXPECT_EQ(doc.as_string(), "\x01\x1f"
                             "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
  EXPECT_THROW(JsonValue::parse("\"\\ud83d\""), std::runtime_error)
      << "lone high surrogate must be rejected";
  EXPECT_THROW(JsonValue::parse("\"\\uZZZZ\""), std::runtime_error);
}

TEST(JsonValue, RejectsMalformedDocuments) {
  EXPECT_THROW(JsonValue::parse(""), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\":1,}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("[1] trailing"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("nul"), std::runtime_error);
  EXPECT_THROW(JsonValue::parse("'single'"), std::runtime_error);
  // The reported byte offset is part of the contract.
  try {
    JsonValue::parse("[1, oops]");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("byte 4"), std::string::npos)
        << e.what();
  }
}

TEST(JsonValue, DepthLimitGuardsAgainstRunaway) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_THROW(JsonValue::parse(deep), std::runtime_error);
  // A modest depth is fine.
  std::string ok(64, '[');
  ok += std::string(64, ']');
  EXPECT_NO_THROW(JsonValue::parse(ok));
}

TEST(JsonValue, TypeMismatchesThrow) {
  const JsonValue doc = JsonValue::parse("{\"n\":1.5,\"s\":\"x\",\"neg\":-1}");
  EXPECT_THROW(doc.at("n").as_int(), std::runtime_error)
      << "1.5 is not integral";
  EXPECT_THROW(doc.at("neg").as_uint(), std::runtime_error);
  EXPECT_THROW(doc.at("s").as_double(), std::runtime_error);
  EXPECT_THROW(doc.at("n").as_string(), std::runtime_error);
  EXPECT_THROW(doc.at("n").items(), std::runtime_error);
  EXPECT_THROW(doc.items(), std::runtime_error);
  EXPECT_EQ(doc.get("s", "fallback"), "x");
  EXPECT_EQ(doc.get("missing", "fallback"), "fallback");
  EXPECT_EQ(doc.get_uint("missing", 7), 7u);
  EXPECT_DOUBLE_EQ(doc.get_double("n", 0.0), 1.5);
  EXPECT_TRUE(doc.get_bool("missing", true));
}

// ------------------------------------------------------------ threaded log

TEST(Log, ConcurrentEmissionsNeverInterleaveMidLine) {
  // Redirect stderr to a file, hammer the logger from several threads,
  // then verify every captured line is exactly one intact message —
  // the single-write guarantee the campaign service relies on.
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  const std::string path = ::testing::TempDir() + "/tvp_log_capture.txt";

  std::fflush(stderr);
  const int saved_fd = ::dup(::fileno(stderr));
  ASSERT_GE(saved_fd, 0);
  ASSERT_NE(std::freopen(path.c_str(), "w", stderr), nullptr);

  constexpr int kThreads = 4;
  constexpr int kLines = 250;
  // One message crosses the 512-byte stack buffer to cover the heap path.
  const std::string long_tail(600, 'x');
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t, &long_tail] {
        for (int i = 0; i < kLines; ++i) {
          if (i == 100) {
            TVP_LOG_INFO("thread %d long %s", t, long_tail.c_str());
          } else {
            TVP_LOG_INFO("thread %d line %d end", t, i);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }

  std::fflush(stderr);
  ::dup2(saved_fd, ::fileno(stderr));
  ::close(saved_fd);
  set_log_level(before);

  std::set<std::string> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kLines; ++i) {
      expected.insert(i == 100
                          ? "[tvp:INFO] thread " + std::to_string(t) +
                                " long " + long_tail
                          : "[tvp:INFO] thread " + std::to_string(t) +
                                " line " + std::to_string(i) + " end");
    }
  }

  std::ifstream in(path);
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    EXPECT_EQ(expected.count(line), 1u) << "interleaved line: " << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
  std::remove(path.c_str());
}

// --------------------------------------------------------- stats raw state

TEST(RunningStat, RawStateRoundTripsBitIdentically) {
  RunningStat stat;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) stat.add(rng.exponential(3.7));

  const RunningStat::Raw raw = stat.raw();
  const RunningStat back = RunningStat::from_raw(raw);
  EXPECT_EQ(back.count(), stat.count());
  const auto bits_equal = [](double a, double b) {
    return std::memcmp(&a, &b, sizeof a) == 0;
  };
  EXPECT_TRUE(bits_equal(back.mean(), stat.mean()));
  EXPECT_TRUE(bits_equal(back.stddev(), stat.stddev()));
  EXPECT_TRUE(bits_equal(back.min(), stat.min()));
  EXPECT_TRUE(bits_equal(back.max(), stat.max()));
  EXPECT_TRUE(bits_equal(back.sum(), stat.sum()));
  // Continuing to add samples after restore matches the original stream.
  RunningStat original_continued = stat;
  RunningStat restored_continued = back;
  original_continued.add(1.25);
  restored_continued.add(1.25);
  EXPECT_TRUE(bits_equal(original_continued.mean(), restored_continued.mean()));
  EXPECT_TRUE(
      bits_equal(original_continued.stddev(), restored_continued.stddev()));
}

// ---------------------------------------------------------------------------
// Failpoint registry. The registry (spec parsing, policies, hit
// counters) is always compiled — these tests run in both the default
// and the -DTVP_ENABLE_FAILPOINTS=ON build, so they must not assume
// either value of failpoint::compiled_in(). Only eval() is exercised
// here; the armed syscall shims are covered by torture_test.
// ---------------------------------------------------------------------------

class Failpoint : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::reset(); }
  void TearDown() override { failpoint::reset(); }
};

TEST_F(Failpoint, OffSiteEvaluatesToZeroButCounts) {
  EXPECT_EQ(failpoint::eval("util.test.noop"), 0);
  EXPECT_EQ(failpoint::eval("util.test.noop"), 0);
  EXPECT_EQ(failpoint::hits("util.test.noop"), 2u);
  EXPECT_EQ(failpoint::hits("util.test.never_hit"), 0u);
}

TEST_F(Failpoint, ReturnErrnoFiresOnEveryHit) {
  failpoint::Policy policy;
  policy.action = failpoint::Policy::Action::kReturnErrno;
  policy.error = EIO;
  failpoint::set("util.test.every", policy);
  EXPECT_EQ(failpoint::eval("util.test.every"), EIO);
  EXPECT_EQ(failpoint::eval("util.test.every"), EIO);
}

TEST_F(Failpoint, NthPolicyFiresExactlyOnce) {
  failpoint::Policy policy;
  policy.action = failpoint::Policy::Action::kReturnErrno;
  policy.error = ENOSPC;
  policy.nth = 3;
  failpoint::set("util.test.nth", policy);
  EXPECT_EQ(failpoint::eval("util.test.nth"), 0);
  EXPECT_EQ(failpoint::eval("util.test.nth"), 0);
  EXPECT_EQ(failpoint::eval("util.test.nth"), ENOSPC);
  EXPECT_EQ(failpoint::eval("util.test.nth"), 0) << "@N is one-shot";
  EXPECT_EQ(failpoint::hits("util.test.nth"), 4u);
}

TEST_F(Failpoint, ClearDisarmsOneSiteResetDisarmsAll) {
  failpoint::Policy policy;
  policy.action = failpoint::Policy::Action::kReturnErrno;
  policy.error = EIO;
  failpoint::set("util.test.a", policy);
  failpoint::set("util.test.b", policy);
  failpoint::clear("util.test.a");
  EXPECT_EQ(failpoint::eval("util.test.a"), 0);
  EXPECT_EQ(failpoint::eval("util.test.b"), EIO);
  EXPECT_EQ(failpoint::hits("util.test.a"), 1u)
      << "clear() keeps the hit counter";
  failpoint::reset();
  EXPECT_EQ(failpoint::eval("util.test.b"), 0);
  EXPECT_EQ(failpoint::hits("util.test.a"), 0u);
}

TEST_F(Failpoint, ConfigureParsesSpecStrings) {
  failpoint::configure(
      "journal.append.write=return(ENOSPC)@2;journal.append.fsync=return(5)");
  EXPECT_EQ(failpoint::eval("journal.append.write"), 0);
  EXPECT_EQ(failpoint::eval("journal.append.write"), ENOSPC);
  EXPECT_EQ(failpoint::eval("journal.append.fsync"), 5)
      << "numeric errnos pass through";
}

TEST_F(Failpoint, ConfigureRejectsMalformedSpecsAtomically) {
  EXPECT_THROW(failpoint::configure("журнал"), std::invalid_argument);
  EXPECT_THROW(failpoint::configure("site=explode"), std::invalid_argument);
  EXPECT_THROW(failpoint::configure("site=return(EIO)@0"),
               std::invalid_argument);
  EXPECT_THROW(failpoint::configure("site=return(EWHAT)"),
               std::invalid_argument);
  // A bad entry anywhere must leave the whole spec unapplied — a
  // half-armed torture run would silently test less than it claims.
  EXPECT_THROW(failpoint::configure("good.site=return(EIO);bad="),
               std::invalid_argument);
  EXPECT_EQ(failpoint::eval("good.site"), 0);
}

TEST_F(Failpoint, CountersSnapshotsEveryTouchedSite) {
  failpoint::eval("util.test.x");
  failpoint::eval("util.test.y");
  failpoint::eval("util.test.y");
  std::map<std::string, std::uint64_t> counters;
  for (const auto& [site, count] : failpoint::counters())
    counters[site] = count;
  EXPECT_EQ(counters.at("util.test.x"), 1u);
  EXPECT_EQ(counters.at("util.test.y"), 2u);
}

TEST_F(Failpoint, AbortAndKillSpecsParse) {
  // Only parsing — firing them would take the test process down.
  failpoint::configure("util.test.boom=abort;util.test.kaboom=kill@7");
  EXPECT_EQ(failpoint::eval("util.test.kaboom"), 0)
      << "kill@7 must stay quiet before the 7th hit";
}

}  // namespace
}  // namespace tvp::util
