// Unit tests for the command-level scheduler and the DRAM energy model.
#include <gtest/gtest.h>

#include <memory>

#include "tvp/mem/energy.hpp"
#include "tvp/mem/scheduler.hpp"
#include "tvp/mitigation/para.hpp"

namespace tvp::mem {
namespace {

dram::Geometry small_geometry() {
  dram::Geometry g;
  g.banks_per_rank = 2;
  g.rows_per_bank = 8192;
  return g;
}

CommandTiming small_timing() {
  CommandTiming t;
  t.base.refresh_intervals = 512;
  return t;
}

trace::AccessRecord rec(std::uint64_t t, dram::BankId bank, dram::RowId row,
                        bool write = false) {
  trace::AccessRecord r;
  r.time_ps = t;
  r.bank = bank;
  r.row = row;
  r.write = write;
  return r;
}

TEST(CommandTiming, Validation) {
  CommandTiming t;
  EXPECT_NO_THROW(t.validate());
  t.t_rcd_ps = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = CommandTiming{};
  t.t_ras_ps = t.base.t_refi_ps();
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(CommandScheduler, SingleRequestLatencyIsColdAccess) {
  CommandScheduler sched(small_geometry(), small_timing(), PagePolicy::kOpenPage);
  sched.push(rec(1000, 0, 42));
  sched.drain();
  const auto& s = sched.stats();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.row_misses, 1u);
  EXPECT_EQ(s.demand_acts, 1u);
  // Cold access: tRCD + tCL + tBURST.
  const CommandTiming t = small_timing();
  EXPECT_DOUBLE_EQ(s.latency_ps.mean(),
                   static_cast<double>(t.t_rcd_ps + t.t_cl_ps + t.t_burst_ps));
}

TEST(CommandScheduler, OpenPageHitsAreFaster) {
  CommandScheduler sched(small_geometry(), small_timing(), PagePolicy::kOpenPage);
  sched.push(rec(1000, 0, 42));
  sched.push(rec(2'000'000, 0, 42));  // same row, long after
  sched.drain();
  const auto& s = sched.stats();
  EXPECT_EQ(s.row_hits, 1u);
  EXPECT_EQ(s.row_misses, 1u);
  const CommandTiming t = small_timing();
  // The hit's latency: tCL + tBURST only.
  EXPECT_DOUBLE_EQ(s.latency_ps.min(),
                   static_cast<double>(t.t_cl_ps + t.t_burst_ps));
}

TEST(CommandScheduler, ClosedPageNeverHits) {
  CommandScheduler sched(small_geometry(), small_timing(), PagePolicy::kClosedPage);
  sched.push(rec(1000, 0, 42));
  sched.push(rec(2'000'000, 0, 42));
  sched.drain();
  EXPECT_EQ(sched.stats().row_hits, 0u);
  EXPECT_EQ(sched.stats().row_misses, 2u);
  EXPECT_EQ(sched.stats().demand_acts, 2u);
}

TEST(CommandScheduler, ConflictRequiresPrecharge) {
  CommandScheduler sched(small_geometry(), small_timing(), PagePolicy::kOpenPage);
  sched.push(rec(1000, 0, 42));
  sched.push(rec(2'000'000, 0, 77));  // different row, same bank
  sched.drain();
  EXPECT_EQ(sched.stats().row_conflicts, 1u);
  // The conflicting access pays PRE + ACT + column.
  const CommandTiming t = small_timing();
  EXPECT_DOUBLE_EQ(sched.stats().latency_ps.max(),
                   static_cast<double>(t.t_rp_ps + t.t_rcd_ps + t.t_cl_ps +
                                       t.t_burst_ps));
}

TEST(CommandScheduler, FrfcfsPrefersRowHitUnderBacklog) {
  CommandScheduler sched(small_geometry(), small_timing(), PagePolicy::kOpenPage);
  // Saturate the bank so a queue builds, with interleaved rows; the
  // scheduler should harvest extra row hits by reordering.
  std::uint64_t t = 0;
  for (int i = 0; i < 400; ++i) {
    sched.push(rec(t, 0, i % 2 == 0 ? 10u : 20u));
    t += 100;  // far faster than the bank can serve
  }
  sched.drain();
  // Strict in-order service would alternate (all conflicts); FR-FCFS
  // batches the two rows.
  EXPECT_GT(sched.stats().row_hits, sched.stats().row_conflicts);
  EXPECT_GT(sched.peak_queue_depth(), 4u);
}

TEST(CommandScheduler, FawLimitsActivationBursts) {
  // Per-bank timing alone cannot violate tFAW; a burst of cold ACTs
  // spread over eight banks can.
  dram::Geometry g = small_geometry();
  g.banks_per_rank = 8;
  CommandScheduler sched(g, small_timing(), PagePolicy::kClosedPage);
  for (int i = 0; i < 8; ++i)
    sched.push(rec(1000 + i, static_cast<dram::BankId>(i),
                   static_cast<dram::RowId>(100 * i)));
  sched.drain();
  EXPECT_GT(sched.stats().faw_stalls, 0u);
}

TEST(CommandScheduler, RefreshBlocksTheBank) {
  CommandScheduler sched(small_geometry(), small_timing(), PagePolicy::kOpenPage);
  const std::uint64_t refi = small_timing().base.t_refi_ps();
  sched.push(rec(refi + 10, 0, 42));  // arrives right after REF started
  sched.drain();
  EXPECT_EQ(sched.stats().refresh_commands, 1u);
  const CommandTiming t = small_timing();
  // Latency includes waiting out tRFC.
  EXPECT_GE(sched.stats().latency_ps.mean(),
            static_cast<double>(t.base.t_rfc_ps));
}

TEST(CommandScheduler, MitigationActsAreChargedToTheBank) {
  util::Rng rng(5);
  mitigation::ParaConfig para_cfg;
  para_cfg.p = util::FixedProb::from_double(1.0);  // trigger on every ACT
  para_cfg.rows_per_bank = small_geometry().rows_per_bank;
  MitigationEngine engine(small_geometry().total_banks(),
                          mitigation::make_para_factory(para_cfg), rng);
  CommandScheduler sched(small_geometry(), small_timing(),
                         PagePolicy::kClosedPage, &engine);
  CommandScheduler baseline(small_geometry(), small_timing(),
                            PagePolicy::kClosedPage);
  std::uint64_t t = 0;
  for (int i = 0; i < 200; ++i) {
    const auto r = rec(t, 0, static_cast<dram::RowId>(i * 3 + 1));
    sched.push(r);
    baseline.push(r);
    t += 2000;  // oversubscribed: mitigation work must show up as delay
  }
  sched.drain();
  baseline.drain();
  EXPECT_EQ(sched.stats().mitigation_acts, 200u);
  EXPECT_GT(sched.stats().latency_ps.mean(),
            baseline.stats().latency_ps.mean());
}

TEST(CommandScheduler, RejectsBadInput) {
  CommandScheduler sched(small_geometry(), small_timing(), PagePolicy::kOpenPage);
  sched.push(rec(1000, 0, 1));
  EXPECT_THROW(sched.push(rec(500, 0, 1)), std::invalid_argument);
  EXPECT_THROW(sched.push(rec(2000, 9, 1)), std::out_of_range);
  util::Rng rng(1);
  MitigationEngine wrong(1, mitigation::make_para_factory({}), rng);
  EXPECT_THROW(CommandScheduler(small_geometry(), small_timing(),
                                PagePolicy::kOpenPage, &wrong),
               std::invalid_argument);
}

TEST(CommandScheduler, PolicyNames) {
  EXPECT_STREQ(to_string(PagePolicy::kOpenPage), "open-page");
  EXPECT_STREQ(to_string(PagePolicy::kClosedPage), "closed-page");
}

// --------------------------------------------------------------- placement

TEST(MitigationPlacement, DeferredIssuesSameWorkCheaper) {
  dram::Geometry g = small_geometry();
  CommandTiming timing = small_timing();
  mitigation::ParaConfig para_cfg;
  para_cfg.p = util::FixedProb::from_double(0.05);
  para_cfg.rows_per_bank = g.rows_per_bank;

  SchedulerStats results[2];
  int idx = 0;
  for (const auto mode : {MitigationPlacement::kImmediate,
                          MitigationPlacement::kIdleDeferred}) {
    util::Rng engine_rng(3);
    MitigationEngine engine(g.total_banks(),
                            mitigation::make_para_factory(para_cfg), engine_rng);
    CommandScheduler sched(g, timing, PagePolicy::kClosedPage, &engine, mode);
    util::Rng traffic(5);
    std::uint64_t t = 1000;
    for (int burst = 0; burst < 100; ++burst) {
      for (int i = 0; i < 32; ++i) {
        trace::AccessRecord r;
        r.time_ps = t + static_cast<std::uint64_t>(i);
        r.bank = 0;
        r.row = static_cast<dram::RowId>(traffic.below(2048));
        sched.push(r);
      }
      t += 4'000'000;  // long idle gap between bursts
    }
    sched.drain();
    EXPECT_EQ(sched.deferred_backlog(), 0u);  // everything flushed
    results[idx++] = sched.stats();
  }
  // Identical protection work...
  EXPECT_EQ(results[0].mitigation_acts, results[1].mitigation_acts);
  EXPECT_GT(results[0].mitigation_acts, 0u);
  // ...but the deferred placement keeps it off the demand critical path.
  EXPECT_LT(results[1].latency_ps.mean(), results[0].latency_ps.mean());
}

TEST(MitigationPlacement, BacklogBoundForcesFlushUnderSaturation) {
  dram::Geometry g = small_geometry();
  CommandTiming timing = small_timing();
  mitigation::ParaConfig para_cfg;
  para_cfg.p = util::FixedProb::from_double(1.0);  // trigger every ACT
  para_cfg.rows_per_bank = g.rows_per_bank;
  util::Rng engine_rng(7);
  MitigationEngine engine(g.total_banks(),
                          mitigation::make_para_factory(para_cfg), engine_rng);
  CommandScheduler sched(g, timing, PagePolicy::kClosedPage, &engine,
                         MitigationPlacement::kIdleDeferred);
  // Saturating stream with no idle gaps: the backlog bound must cap the
  // postponement (deferred count never exceeds the bound).
  for (int i = 0; i < 200; ++i) {
    sched.push(rec(1000 + i, 0, static_cast<dram::RowId>(i * 3 + 1)));
    EXPECT_LE(sched.deferred_backlog(), 8u) << "i=" << i;
  }
  sched.drain();
  EXPECT_EQ(sched.stats().mitigation_acts, 200u);  // nothing lost
}

TEST(MitigationPlacement, Names) {
  EXPECT_STREQ(to_string(MitigationPlacement::kImmediate), "immediate");
  EXPECT_STREQ(to_string(MitigationPlacement::kIdleDeferred), "idle-deferred");
}

// ---------------------------------------------------------------- protocol

// Property: whatever the workload, page policy, and mitigation pressure,
// the command stream the scheduler emits is protocol-legal.
class SchedulerProtocol : public ::testing::TestWithParam<PagePolicy> {};

TEST_P(SchedulerProtocol, EmittedStreamIsLegal) {
  dram::Geometry g = small_geometry();
  g.banks_per_rank = 8;
  CommandTiming timing = small_timing();

  util::Rng engine_rng(5);
  mitigation::ParaConfig para_cfg;
  para_cfg.p = util::FixedProb::from_double(0.05);  // heavy mitigation traffic
  para_cfg.rows_per_bank = g.rows_per_bank;
  MitigationEngine engine(g.total_banks(),
                          mitigation::make_para_factory(para_cfg), engine_rng);

  CommandScheduler sched(g, timing, GetParam(), &engine);
  std::vector<dram::TimedCommand> commands;
  sched.set_observer([&commands](const dram::TimedCommand& c) {
    commands.push_back(c);
  });

  // Random workload with hot rows (hits), conflicts, bursts, and several
  // refresh boundaries.
  util::Rng rng(17);
  std::uint64_t t = 0;
  for (int i = 0; i < 4000; ++i) {
    trace::AccessRecord r;
    t += rng.below(120'000);
    r.time_ps = t;
    r.bank = static_cast<dram::BankId>(rng.below(g.total_banks()));
    r.row = rng.below(4) == 0 ? 42u : static_cast<dram::RowId>(rng.below(512));
    r.write = rng.bernoulli(0.3);
    sched.push(r);
  }
  sched.drain();
  ASSERT_GT(commands.size(), 8000u);  // ACT+col(+PRE) per request + REFs

  // Bus order = time order (per-bank causal emission can interleave).
  std::stable_sort(commands.begin(), commands.end(),
                   [](const auto& a, const auto& b) {
                     return a.time_ps < b.time_ps;
                   });
  dram::ProtocolTiming constraints;
  constraints.t_rc_ps = timing.base.t_rc_ps;
  constraints.t_rcd_ps = timing.t_rcd_ps;
  constraints.t_ras_ps = timing.t_ras_ps;
  constraints.t_rp_ps = timing.t_rp_ps;
  constraints.t_rfc_ps = timing.base.t_rfc_ps;
  constraints.t_faw_ps = timing.t_faw_ps;
  dram::ProtocolChecker checker(g.total_banks(), constraints);
  for (const auto& c : commands) {
    const auto violation = checker.check(c);
    ASSERT_FALSE(violation.has_value()) << *violation;
  }
  EXPECT_TRUE(checker.clean());
}

INSTANTIATE_TEST_SUITE_P(Policies, SchedulerProtocol,
                         ::testing::Values(PagePolicy::kOpenPage,
                                           PagePolicy::kClosedPage));

// ------------------------------------------------------------------ energy

TEST(EnergyModel, ControllerStatsBreakdown) {
  ControllerStats stats;
  stats.demand_acts = 1000;
  stats.extra_acts = 10;
  stats.reads = 900;
  stats.writes = 100;
  stats.rows_refreshed = 5000;
  const EnergyParams p;
  const auto e = estimate_energy(stats, /*duration_ps=*/1'000'000'000, p);
  EXPECT_DOUBLE_EQ(e.demand_act_pj, 1000 * p.act_pre_pj);
  EXPECT_DOUBLE_EQ(e.mitigation_act_pj, 10 * p.act_pre_pj);
  EXPECT_DOUBLE_EQ(e.read_write_pj, 900 * p.read_pj + 100 * p.write_pj);
  EXPECT_DOUBLE_EQ(e.refresh_pj, 5000 * p.refresh_row_pj);
  EXPECT_DOUBLE_EQ(e.background_pj, 90.0 * 1e9 * 1e-3);
  EXPECT_GT(e.total_pj(), 0.0);
  EXPECT_GT(e.mitigation_overhead_pct(), 0.0);
  EXPECT_LT(e.mitigation_overhead_pct(), 1.0);
}

TEST(EnergyModel, SchedulerStatsBreakdown) {
  SchedulerStats stats;
  stats.demand_acts = 500;
  stats.mitigation_acts = 50;
  stats.requests = 800;
  stats.refresh_commands = 10;
  const auto e = estimate_energy(stats, 0);
  EXPECT_GT(e.demand_act_pj, 0.0);
  EXPECT_DOUBLE_EQ(e.mitigation_act_pj / e.demand_act_pj, 0.1);
  EXPECT_DOUBLE_EQ(e.background_pj, 0.0);
}

TEST(EnergyModel, ZeroRunIsFree) {
  ControllerStats stats;
  const auto e = estimate_energy(stats, 0);
  EXPECT_DOUBLE_EQ(e.total_pj(), 0.0);
  EXPECT_DOUBLE_EQ(e.mitigation_overhead_pct(), 0.0);
}

}  // namespace
}  // namespace tvp::mem
