// Cross-module integration tests: full trace -> controller -> mitigation
// -> disturbance pipelines, refresh-policy robustness, trace replay, and
// the headline orderings the paper's evaluation depends on.
#include <gtest/gtest.h>

#include "tvp/exp/report.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/exp/verdict.hpp"
#include "tvp/hw/area_model.hpp"
#include "tvp/trace/io.hpp"

namespace tvp::exp {
namespace {

SimConfig campaign_config() {
  SimConfig cfg;
  cfg.geometry.banks_per_rank = 4;
  cfg.windows = 1;
  install_standard_campaign(cfg);
  return cfg;
}

TEST(Integration, StandardCampaignLandsNearTableICalibration) {
  const SimConfig cfg = campaign_config();
  const RunResult r = run_simulation(hw::Technique::kPara, cfg);
  // ~40 activations per refresh interval per bank incl. aggressors.
  const double per_interval_per_bank =
      static_cast<double>(r.stats.demand_acts) /
      (8192.0 * cfg.geometry.total_banks());
  EXPECT_GT(per_interval_per_bank, 25.0);
  EXPECT_LT(per_interval_per_bank, 55.0);
  // Nothing flips under PARA at this pressure.
  EXPECT_EQ(r.flips, 0u);
}

TEST(Integration, NoTechniqueLetsTheCampaignFlip) {
  // Section IV: "For these nine mitigation techniques, no active attacks
  // were successful."
  const SimConfig cfg = campaign_config();
  for (const auto t : hw::kAllTechniques)
    EXPECT_EQ(run_simulation(t, cfg).flips, 0u) << hw::to_string(t);
}

TEST(Integration, TiVaPRoMiBeatsProbabilisticBaselinesOnOverhead) {
  const SimConfig cfg = campaign_config();
  const double para = run_simulation(hw::Technique::kPara, cfg).overhead_pct();
  const double prohit = run_simulation(hw::Technique::kProHit, cfg).overhead_pct();
  for (const auto t : hw::kTiVaPRoMiVariants) {
    const double v = run_simulation(t, cfg).overhead_pct();
    EXPECT_LT(v, para) << hw::to_string(t);
    EXPECT_LT(v, prohit) << hw::to_string(t);
  }
}

TEST(Integration, TabledCountersBeatTiVaPRoMiOnOverheadButNotStorage) {
  const SimConfig cfg = campaign_config();
  const RunResult twice = run_simulation(hw::Technique::kTwice, cfg);
  const RunResult loli = run_simulation(hw::Technique::kLoLiPRoMi, cfg);
  EXPECT_LT(twice.overhead_pct(), loli.overhead_pct());
  EXPECT_GT(twice.state_bytes_per_bank, 20 * loli.state_bytes_per_bank);
}

TEST(Integration, FprNeverExceedsOverhead) {
  const SimConfig cfg = campaign_config();
  for (const auto t : hw::kAllTechniques) {
    const RunResult r = run_simulation(t, cfg);
    EXPECT_LE(r.stats.fp_extra_acts, r.stats.extra_acts) << hw::to_string(t);
  }
}

TEST(Integration, CounterBasedTechniquesHaveZeroFpr) {
  // Table III: TWiCe and CRA report 0% FPR — they only ever act on rows
  // that objectively crossed the activation threshold.
  const SimConfig cfg = campaign_config();
  EXPECT_DOUBLE_EQ(run_simulation(hw::Technique::kTwice, cfg).fpr_pct(), 0.0);
  EXPECT_DOUBLE_EQ(run_simulation(hw::Technique::kCra, cfg).fpr_pct(), 0.0);
}

// Per-technique conformance: every registered technique, on the same
// fast campaign, must protect, account costs consistently, report the
// storage the hardware model expects, and be deterministic.
class TechniqueConformance : public ::testing::TestWithParam<hw::Technique> {
 protected:
  static SimConfig fast_campaign() {
    SimConfig cfg;
    cfg.geometry.banks_per_rank = 2;
    cfg.windows = 1;
    cfg.workload.benign_acts_per_interval_per_bank = 10;
    util::Rng rng(31);
    auto attack = trace::make_multi_aggressor_attack(
        0, cfg.geometry.rows_per_bank, 2, rng);
    attack.interarrival_ps = cfg.timing.t_refi_ps() / 20;
    cfg.workload.attacks = {attack};
    cfg.finalize();
    return cfg;
  }
};

TEST_P(TechniqueConformance, ProtectsTheFastCampaign) {
  const auto r = run_simulation(GetParam(), fast_campaign());
  EXPECT_EQ(r.flips, 0u);
  EXPECT_GT(r.stats.demand_acts, 0u);
}

TEST_P(TechniqueConformance, CostAccountingIsConsistent) {
  const auto r = run_simulation(GetParam(), fast_campaign());
  EXPECT_LE(r.stats.fp_extra_acts, r.stats.extra_acts);
  EXPECT_LE(r.stats.extra_acts, r.stats.triggers * 2);
  if (r.stats.triggers > 0) {
    EXPECT_GE(r.stats.extra_acts, r.stats.triggers);
    EXPECT_GT(r.stats.first_extra_act_at, 0u);
  }
}

TEST_P(TechniqueConformance, StorageMatchesHardwareModel) {
  const SimConfig cfg = fast_campaign();
  const auto r = run_simulation(GetParam(), cfg);
  const double model = hw::table_bytes_per_bank(GetParam(), cfg.technique.params);
  EXPECT_NEAR(r.state_bytes_per_bank, model, model * 0.35 + 8);
}

TEST_P(TechniqueConformance, DeterministicAcrossRuns) {
  const SimConfig cfg = fast_campaign();
  const auto a = run_simulation(GetParam(), cfg);
  const auto b = run_simulation(GetParam(), cfg);
  EXPECT_EQ(a.stats.extra_acts, b.stats.extra_acts);
  EXPECT_EQ(a.stats.fp_extra_acts, b.stats.fp_extra_acts);
  EXPECT_EQ(a.stats.triggers, b.stats.triggers);
}

INSTANTIATE_TEST_SUITE_P(
    AllNine, TechniqueConformance, ::testing::ValuesIn(hw::kAllTechniques),
    [](const ::testing::TestParamInfo<hw::Technique>& info) {
      return std::string(hw::to_string(info.param));
    });

class RefreshPolicyRobustness
    : public ::testing::TestWithParam<dram::RefreshPolicy> {};

TEST_P(RefreshPolicyRobustness, TiVaPRoMiUnaffectedByDevicePolicy) {
  // Section IV: four refresh policies, "no significant change in the
  // performance of TiVaPRoMi was observed" — and still no flips.
  SimConfig cfg = campaign_config();
  cfg.refresh_policy = GetParam();
  const RunResult r = run_simulation(hw::Technique::kLoLiPRoMi, cfg);
  EXPECT_EQ(r.flips, 0u);

  SimConfig reference = campaign_config();
  const RunResult base = run_simulation(hw::Technique::kLoLiPRoMi, reference);
  EXPECT_LT(r.overhead_pct(), 3.0 * base.overhead_pct() + 0.01);
  EXPECT_GT(r.overhead_pct(), base.overhead_pct() / 3.0 - 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, RefreshPolicyRobustness,
    ::testing::Values(dram::RefreshPolicy::kNeighborSequential,
                      dram::RefreshPolicy::kNeighborRemapped,
                      dram::RefreshPolicy::kRandom,
                      dram::RefreshPolicy::kCounterMask));

TEST(Integration, RowRemappingDoesNotBreakProtection) {
  SimConfig cfg = campaign_config();
  cfg.remap_rows = true;
  cfg.remap_swaps = 64;
  for (const auto t : {hw::Technique::kLoLiPRoMi, hw::Technique::kCaPRoMi}) {
    const RunResult r = run_simulation(t, cfg);
    EXPECT_EQ(r.flips, 0u) << hw::to_string(t);
  }
}

TEST(Integration, TraceRoundTripReplaysIdentically) {
  // Capture the workload, save, reload, re-run: byte-identical results.
  SimConfig cfg = campaign_config();
  util::Rng rng(cfg.seed);
  util::Rng workload_rng = rng.fork();
  auto source = build_workload(cfg, workload_rng);
  const auto records = trace::drain(*source, 100000);
  const std::string path = ::testing::TempDir() + "/integration.tvpt";
  trace::save_trace(path, records);
  const auto reloaded = trace::load_trace(path);
  EXPECT_EQ(records, reloaded);
}

TEST(Integration, StateBytesMatchAreaModelTableBytes) {
  // The simulation's structural state sizes and the hardware model's
  // table-size axis must agree (same structures).
  const SimConfig cfg = campaign_config();
  for (const auto t : hw::kAllTechniques) {
    const RunResult r = run_simulation(t, cfg);
    const double model = hw::table_bytes_per_bank(t, cfg.technique.params);
    EXPECT_NEAR(r.state_bytes_per_bank, model, model * 0.35 + 8)
        << hw::to_string(t);
  }
}

TEST(Integration, StrongerAttacksCostCounterTechniquesMore) {
  // TWiCe's extra activations grow with attack pressure (deterministic
  // response), while staying far below the probabilistic techniques.
  SimConfig weak = campaign_config();
  weak.workload.attacks.resize(1);
  weak.finalize();
  SimConfig strong = campaign_config();
  const auto weak_r = run_simulation(hw::Technique::kTwice, weak);
  const auto strong_r = run_simulation(hw::Technique::kTwice, strong);
  EXPECT_GE(strong_r.stats.extra_acts, weak_r.stats.extra_acts);
}

TEST(Integration, MultiChannelMultiRankTopology) {
  // Two channels x two ranks x two banks: 8 flat banks; mitigation and
  // disturbance stay bank-local across the whole topology.
  SimConfig cfg;
  cfg.geometry.channels = 2;
  cfg.geometry.ranks_per_channel = 2;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 5.0;
  util::Rng rng(23);
  auto attack = trace::make_multi_aggressor_attack(
      /*bank=*/7, cfg.geometry.rows_per_bank, 1, rng);  // last flat bank
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 24;
  cfg.workload.attacks = {attack};
  cfg.finalize();
  EXPECT_EQ(cfg.geometry.total_banks(), 8u);
  const RunResult r = run_simulation(hw::Technique::kLoLiPRoMi, cfg);
  EXPECT_EQ(r.flips, 0u);
  EXPECT_GT(r.stats.extra_acts, 0u);
}

TEST(Integration, ParaOverheadMatchesItsProbability) {
  // Closed-form check: PARA's overhead must equal p (one extra ACT per
  // trigger) within sampling noise — the anchor for every Table III
  // comparison.
  SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 2;
  cfg.finalize();
  const RunResult r = run_simulation(hw::Technique::kPara, cfg);
  const double expected_pct = 100.0 * cfg.technique.para_p;
  EXPECT_NEAR(r.overhead_pct(), expected_pct, expected_pct * 0.15);
}

TEST(Integration, TwentyAggressorsStillMitigated) {
  SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 1;
  util::Rng rng(17);
  auto attack = trace::make_multi_aggressor_attack(
      0, cfg.geometry.rows_per_bank, 20, rng);
  attack.interarrival_ps = cfg.timing.t_refi_ps() / 40;  // heavy pressure
  cfg.workload.attacks = {attack};
  cfg.finalize();
  for (const auto t : hw::kTiVaPRoMiVariants)
    EXPECT_EQ(run_simulation(t, cfg).flips, 0u) << hw::to_string(t);
}

}  // namespace
}  // namespace tvp::exp
