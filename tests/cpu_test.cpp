// Unit tests for tvp::cpu — cache model, synthetic cores, and the
// cache-filtered trace front-end (the gem5 stand-in).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "tvp/cpu/cache.hpp"
#include "tvp/cpu/core.hpp"
#include "tvp/cpu/frontend.hpp"
#include "tvp/cpu/page_mapper.hpp"

namespace tvp::cpu {
namespace {

// -------------------------------------------------------------------- cache

TEST(CacheConfig, ValidatesShape) {
  CacheConfig ok{64 * 1024, 64, 8};
  EXPECT_NO_THROW(ok.validate());
  EXPECT_EQ(ok.sets(), 128u);
  CacheConfig bad{64 * 1024, 48, 8};  // non-pow2 line
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  CacheConfig zero{0, 64, 8};
  EXPECT_THROW(zero.validate(), std::invalid_argument);
}

TEST(Cache, MissThenHit) {
  Cache cache(CacheConfig{1024, 64, 2});
  const auto miss = cache.access(0x1000, false);
  EXPECT_FALSE(miss.hit);
  EXPECT_EQ(miss.fill_addr, 0x1000u);
  EXPECT_FALSE(miss.writeback_addr.has_value());
  const auto hit = cache.access(0x1000 + 8, false);  // same line
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(Cache, LruEviction) {
  // 2-way, 8 sets of 64 B lines: addresses 0, 1024, 2048 map to set 0.
  Cache cache(CacheConfig{1024, 64, 2});
  cache.access(0, false);
  cache.access(1024, false);
  cache.access(0, false);           // 0 is now MRU
  const auto r = cache.access(2048, false);
  EXPECT_FALSE(r.hit);              // evicts 1024 (LRU)
  EXPECT_TRUE(cache.access(0, false).hit);
  EXPECT_FALSE(cache.access(1024, false).hit);  // was evicted
}

TEST(Cache, DirtyWritebackOnEviction) {
  Cache cache(CacheConfig{1024, 64, 2});
  cache.access(0, true);  // dirty
  cache.access(1024, false);
  const auto r = cache.access(2048, false);  // evicts dirty line 0
  EXPECT_FALSE(r.hit);
  ASSERT_TRUE(r.writeback_addr.has_value());
  EXPECT_EQ(*r.writeback_addr, 0u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache cache(CacheConfig{1024, 64, 2});
  cache.access(0, false);
  cache.access(1024, false);
  const auto r = cache.access(2048, false);
  EXPECT_FALSE(r.writeback_addr.has_value());
}

TEST(Cache, WriteHitMarksDirty) {
  Cache cache(CacheConfig{1024, 64, 2});
  cache.access(0, false);
  cache.access(0, true);  // dirtied by the hit
  cache.access(1024, false);
  const auto r = cache.access(2048, false);
  ASSERT_TRUE(r.writeback_addr.has_value());
}

TEST(Cache, FlushLine) {
  Cache cache(CacheConfig{1024, 64, 2});
  cache.access(0x40, true);
  const auto wb = cache.flush_line(0x40);
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(*wb, 0x40u);
  EXPECT_FALSE(cache.access(0x40, false).hit);  // gone
  EXPECT_FALSE(cache.flush_line(0x7000).has_value());  // not present
}

// Property: the cache agrees with a reference map on hits/misses.
TEST(Cache, AgreesWithReferenceModel) {
  const CacheConfig cfg{4096, 64, 4};
  Cache cache(cfg);
  // Reference: per set, list of (tag, lru) with true LRU.
  std::map<std::uint32_t, std::vector<std::uint64_t>> reference;  // MRU front
  util::Rng rng(31);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng.below(1 << 16) & ~63ull;
    const std::uint32_t set =
        static_cast<std::uint32_t>((addr / 64) % cfg.sets());
    const std::uint64_t tag = addr / 64 / cfg.sets();
    auto& ways = reference[set];
    const auto it = std::find(ways.begin(), ways.end(), tag);
    const bool expect_hit = it != ways.end();
    if (expect_hit) ways.erase(it);
    ways.insert(ways.begin(), tag);
    if (ways.size() > cfg.ways) ways.pop_back();

    EXPECT_EQ(cache.access(addr, false).hit, expect_hit) << "op " << i;
  }
}

// --------------------------------------------------------------------- core

TEST(Core, AddressesStayInRegion) {
  CoreConfig cfg;
  cfg.region_base = 1 << 20;
  cfg.region_bytes = 1 << 16;
  for (const auto profile :
       {trace::AccessProfile::kStreaming, trace::AccessProfile::kRandom,
        trace::AccessProfile::kHotspot, trace::AccessProfile::kPointerChase,
        trace::AccessProfile::kStrided}) {
    cfg.profile = profile;
    Core core(cfg, util::Rng(17));
    for (int i = 0; i < 2000; ++i) {
      const MemOp op = core.next();
      EXPECT_GE(op.addr, cfg.region_base);
      EXPECT_LT(op.addr, cfg.region_base + cfg.region_bytes);
    }
  }
}

TEST(Core, TimeAdvancesMonotonically) {
  Core core(CoreConfig{}, util::Rng(19));
  std::uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const MemOp op = core.next();
    EXPECT_GE(op.time_ps, last);
    last = op.time_ps;
  }
}

TEST(Core, InvalidConfigThrows) {
  CoreConfig cfg;
  cfg.region_bytes = 0;
  EXPECT_THROW(Core(cfg, util::Rng(1)), std::invalid_argument);
  cfg = CoreConfig{};
  cfg.mean_gap_ps = 0;
  EXPECT_THROW(Core(cfg, util::Rng(1)), std::invalid_argument);
}

// ----------------------------------------------------------------- frontend

dram::Geometry small_geometry() {
  dram::Geometry g;
  g.banks_per_rank = 4;
  g.rows_per_bank = 4096;
  g.cols_per_row = 64;
  return g;
}

TEST(Frontend, EmitsTimeOrderedDramTraffic) {
  auto cfg = default_frontend(small_geometry());
  CoreFrontend frontend(cfg, util::Rng(23));
  std::uint64_t last = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto r = frontend.next();
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->time_ps, last);
    last = r->time_ps;
    EXPECT_LT(r->bank, small_geometry().total_banks());
    EXPECT_LT(r->row, small_geometry().rows_per_bank);
    EXPECT_FALSE(r->is_attack);
  }
}

TEST(Frontend, CachesFilterMostTraffic) {
  auto cfg = default_frontend(small_geometry());
  CoreFrontend frontend(cfg, util::Rng(29));
  for (int i = 0; i < 20000; ++i) frontend.next();
  // A SPEC-like mix is strongly cache-filtered: L1 absorbs the bulk.
  EXPECT_GT(frontend.l1_hit_rate(), 0.3);
  EXPECT_LE(frontend.l1_hit_rate(), 1.0);
  EXPECT_GE(frontend.l2_hit_rate(), 0.0);
}

TEST(Frontend, CoversMultipleBanks) {
  auto cfg = default_frontend(small_geometry());
  CoreFrontend frontend(cfg, util::Rng(31));
  std::set<dram::BankId> banks;
  for (int i = 0; i < 5000; ++i) banks.insert(frontend.next()->bank);
  EXPECT_EQ(banks.size(), small_geometry().total_banks());
}

TEST(Frontend, DeterministicForSameSeed) {
  auto cfg = default_frontend(small_geometry());
  CoreFrontend a(cfg, util::Rng(37));
  CoreFrontend b(cfg, util::Rng(37));
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(*a.next(), *b.next());
}

TEST(Frontend, PrefetcherAddsSequentialFills) {
  auto cfg = default_frontend(small_geometry());
  cfg.prefetch.enable = true;
  cfg.prefetch.degree = 2;
  CoreFrontend with_pf(cfg, util::Rng(41));
  cfg.prefetch.enable = false;
  CoreFrontend without_pf(cfg, util::Rng(41));
  for (int i = 0; i < 20000; ++i) {
    with_pf.next();
    without_pf.next();
  }
  EXPECT_GT(with_pf.prefetch_fills(), 0u);
  EXPECT_EQ(without_pf.prefetch_fills(), 0u);
}

TEST(Frontend, PrefetcherImprovesStreamingHitRate) {
  // A purely streaming core benefits most from next-line prefetch.
  FrontendConfig cfg;
  cfg.geometry = small_geometry();
  CoreConfig core;
  core.profile = trace::AccessProfile::kStreaming;
  core.region_bytes = 1 << 22;
  cfg.cores = {core};
  cfg.prefetch.enable = true;
  cfg.prefetch.degree = 4;
  CoreFrontend with_pf(cfg, util::Rng(43));
  cfg.prefetch.enable = false;
  CoreFrontend without_pf(cfg, util::Rng(43));
  for (int i = 0; i < 5000; ++i) {
    with_pf.next();
    without_pf.next();
  }
  EXPECT_GT(with_pf.l2_hit_rate(), without_pf.l2_hit_rate());
}

TEST(Frontend, RejectsEmptyCoreList) {
  FrontendConfig cfg;
  cfg.geometry = small_geometry();
  EXPECT_THROW(CoreFrontend(cfg, util::Rng(1)), std::invalid_argument);
}

// --------------------------------------------------------------- page mapper

TEST(PageMapper, ContiguousIsIdentity) {
  util::Rng rng(1);
  const PageMapper mapper(1024, 8, PagePolicyOs::kContiguous, rng);
  for (dram::RowId r = 0; r < 1024; r += 13)
    EXPECT_EQ(mapper.to_physical(r), r);
  EXPECT_TRUE(mapper.preserves_adjacency(100));
}

TEST(PageMapper, RandomizedIsABijection) {
  util::Rng rng(2);
  const PageMapper mapper(1024, 4, PagePolicyOs::kRandomized, rng);
  std::set<dram::RowId> images;
  for (dram::RowId r = 0; r < 1024; ++r) {
    const auto phys = mapper.to_physical(r);
    EXPECT_LT(phys, 1024u);
    EXPECT_TRUE(images.insert(phys).second);
  }
}

TEST(PageMapper, RandomizationBreaksCrossPageAdjacency) {
  util::Rng rng(3);
  const PageMapper mapper(1 << 16, 1, PagePolicyOs::kRandomized, rng);
  int preserved = 0;
  for (dram::RowId r = 0; r < 2000; ++r)
    preserved += mapper.preserves_adjacency(r);
  EXPECT_LT(preserved, 5);  // ~2000/65536 expected by chance
}

TEST(PageMapper, IntraPageAdjacencySurvives) {
  util::Rng rng(4);
  const PageMapper mapper(1024, 8, PagePolicyOs::kRandomized, rng);
  // Rows 16 and 17 share a page: their offset distance is preserved.
  EXPECT_EQ(mapper.to_physical(17), mapper.to_physical(16) + 1);
  EXPECT_TRUE(mapper.preserves_adjacency(16));
}

TEST(PageMapper, Validation) {
  util::Rng rng(5);
  EXPECT_THROW(PageMapper(1000, 16, PagePolicyOs::kContiguous, rng),
               std::invalid_argument);  // 1000 is not a multiple of 16
  EXPECT_THROW(PageMapper(0, 1, PagePolicyOs::kContiguous, rng),
               std::invalid_argument);
  const PageMapper mapper(64, 8, PagePolicyOs::kContiguous, rng);
  EXPECT_THROW(mapper.to_physical(64), std::out_of_range);
  EXPECT_FALSE(mapper.preserves_adjacency(63));  // edge
}

}  // namespace
}  // namespace tvp::cpu
