// Tests for the v2 trace corpus (trace/corpus.hpp): the on-disk format,
// CorpusWriter, MmapSource replay, corruption rejection, the span API,
// and — the contract the whole record/replay pipeline stands on — that
// a replayed sweep is bit-identical to a generated one.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tvp/dram/disturbance.hpp"
#include "tvp/exp/config_io.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/exp/sweep.hpp"
#include "tvp/mem/controller.hpp"
#include "tvp/mem/mitigation.hpp"
#include "tvp/trace/corpus.hpp"
#include "tvp/trace/io.hpp"
#include "tvp/trace/source.hpp"

namespace tvp::trace {
namespace {

namespace fs = std::filesystem;

// Unique temp path per test; removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_((fs::temp_directory_path() /
               ("tvp_corpus_test_" + name + "_" +
                std::to_string(::getpid()) + ".tvpc"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<AccessRecord> make_records(std::size_t count,
                                       std::uint64_t step_ps = 100) {
  std::vector<AccessRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    AccessRecord r;
    r.time_ps = i * step_ps;
    r.bank = static_cast<dram::BankId>(i % 4);
    r.row = static_cast<dram::RowId>((i * 37) % 8192);
    r.write = (i % 3) == 0;
    r.is_attack = (i % 5) == 0;
    r.source = static_cast<SourceId>(i % 7);
    out.push_back(r);
  }
  return out;
}

std::vector<char> slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void spit(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------------------ round trips

TEST(Corpus, RoundTripPreservesRecordsAndOracle) {
  TempFile file("roundtrip");
  const auto records = make_records(1000);
  CorpusWriter::Options options;
  options.records_per_block = 64;  // force many blocks
  CorpusWriter writer(file.path(), options);
  writer.append(records.data(), records.size());
  writer.set_aggressors({42, 7, 42, 99});  // unsorted + duplicate
  writer.set_victims({8, 3, 8});
  const std::uint32_t identity = writer.close();
  EXPECT_NE(identity, 0u);

  const CorpusInfo info = read_corpus_info(file.path());
  EXPECT_EQ(info.total_records, records.size());
  EXPECT_EQ(info.footer_crc, identity);
  EXPECT_EQ(info.blocks.size(), (records.size() + 63) / 64);
  EXPECT_EQ(info.aggressors, (std::vector<std::uint64_t>{7, 42, 99}));
  EXPECT_EQ(info.victims, (std::vector<std::uint64_t>{3, 8}));
  EXPECT_EQ(info.blocks.front().min_time_ps, records.front().time_ps);
  EXPECT_EQ(info.blocks.back().max_time_ps, records.back().time_ps);

  EXPECT_EQ(read_corpus(file.path()), records);
}

TEST(Corpus, WriterIsDeterministic) {
  // Equal record streams must produce byte-equal files (the identity
  // hash and the journal depend on it) — in particular the struct tail
  // padding must not leak indeterminate bytes to disk.
  TempFile a("det_a");
  TempFile b("det_b");
  const auto records = make_records(257);
  EXPECT_EQ(write_corpus(a.path(), records), write_corpus(b.path(), records));
  EXPECT_EQ(slurp(a.path()), slurp(b.path()));
}

TEST(Corpus, EmptyCorpusRoundTrips) {
  TempFile file("empty");
  CorpusWriter writer(file.path());
  writer.close();
  const CorpusInfo info = verify_corpus(file.path());
  EXPECT_EQ(info.total_records, 0u);
  EXPECT_TRUE(info.blocks.empty());
  MmapSource source(file.path());
  EXPECT_FALSE(source.next().has_value());
}

TEST(Corpus, WriterRejectsTimeGoingBackwards) {
  TempFile file("backwards");
  CorpusWriter writer(file.path());
  AccessRecord r;
  r.time_ps = 100;
  writer.append(r);
  r.time_ps = 99;
  EXPECT_THROW(writer.append(r), std::invalid_argument);
}

TEST(Corpus, MmapSourceStreamsIdenticallyToEveryApi) {
  TempFile file("apis");
  const auto records = make_records(500);
  CorpusWriter::Options options;
  options.records_per_block = 100;
  write_corpus(file.path(), records, options);

  MmapSource by_next(file.path());
  std::vector<AccessRecord> via_next;
  while (auto r = by_next.next()) via_next.push_back(*r);
  EXPECT_EQ(via_next, records);

  MmapSource by_batch(file.path());
  std::vector<AccessRecord> via_batch(records.size());
  std::size_t got = 0;
  // An awkward batch size that straddles block boundaries.
  while (const std::size_t n =
             by_batch.next_batch(via_batch.data() + got, 77))
    got += n;
  via_batch.resize(got);
  EXPECT_EQ(via_batch, records);

  MmapSource by_span(file.path());
  ASSERT_TRUE(by_span.supports_spans());
  std::vector<AccessRecord> via_span;
  const AccessRecord* span = nullptr;
  while (const std::size_t n = by_span.next_span(&span))
    via_span.insert(via_span.end(), span, span + n);
  EXPECT_EQ(via_span, records);
}

TEST(Corpus, RewindReplaysIdentically) {
  TempFile file("rewind");
  const auto records = make_records(300);
  CorpusWriter::Options options;
  options.records_per_block = 128;
  write_corpus(file.path(), records, options);

  MmapSource source(file.path());
  const AccessRecord* span = nullptr;
  std::vector<AccessRecord> first;
  while (const std::size_t n = source.next_span(&span))
    first.insert(first.end(), span, span + n);
  source.rewind();  // second pass rides the trust-after-verify fast path
  std::vector<AccessRecord> second;
  while (const std::size_t n = source.next_span(&span))
    second.insert(second.end(), span, span + n);
  EXPECT_EQ(first, records);
  EXPECT_EQ(second, records);
}

// ------------------------------------------------------- corruption cases

TEST(Corpus, CorruptedBlockPayloadIsRejected) {
  TempFile file("corrupt_block");
  const auto records = make_records(200);
  CorpusWriter::Options options;
  options.records_per_block = 50;
  write_corpus(file.path(), records, options);

  // Flip one byte inside the third block's payload (row field of some
  // record): the footer still parses, the block CRC must catch it.
  const CorpusInfo info = read_corpus_info(file.path());
  ASSERT_GE(info.blocks.size(), 3u);
  auto bytes = slurp(file.path());
  const std::size_t victim =
      static_cast<std::size_t>(info.blocks[2].offset) + 40 + 12;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  spit(file.path(), bytes);

  // Opening still succeeds (the footer is intact)...
  EXPECT_EQ(read_corpus_info(file.path()).total_records, records.size());
  // ...but touching the corrupt block reports it precisely.
  try {
    verify_corpus(file.path());
    FAIL() << "corrupt block not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("block 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("CRC"), std::string::npos) << e.what();
  }
}

TEST(Corpus, TruncatedFooterIsRejected) {
  TempFile file("trunc_footer");
  write_corpus(file.path(), make_records(100));
  auto bytes = slurp(file.path());
  // Chop 16 bytes out of the middle: the trailer magic is gone.
  bytes.resize(bytes.size() - 16);
  spit(file.path(), bytes);
  EXPECT_THROW(read_corpus_info(file.path()), std::runtime_error);
  EXPECT_THROW(MmapSource{file.path()}, std::runtime_error);
}

TEST(Corpus, TamperedFooterIsRejected) {
  TempFile file("tamper_footer");
  write_corpus(file.path(), make_records(100));
  auto bytes = slurp(file.path());
  // Corrupt a footer byte but leave the trailer intact: the footer CRC
  // in the trailer must catch it.
  bytes[bytes.size() - 24 - 4] ^= 0x01;
  spit(file.path(), bytes);
  try {
    read_corpus_info(file.path());
    FAIL() << "tampered footer not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("footer CRC"), std::string::npos)
        << e.what();
  }
}

TEST(Corpus, NotACorpusIsRejected) {
  TempFile file("not_a_corpus");
  std::ofstream(file.path()) << "definitely not a corpus, far too short";
  EXPECT_THROW(read_corpus_info(file.path()), std::runtime_error);
  std::ofstream(file.path(), std::ios::trunc)
      << std::string(4096, 'x');  // long enough, wrong magic
  EXPECT_THROW(read_corpus_info(file.path()), std::runtime_error);
}

// ------------------------------------------------------------ format glue

TEST(Corpus, SaveLoadTraceSpeaksCorpus) {
  TempFile file("save_load");
  const auto records = make_records(64);
  save_trace(file.path(), records);  // .tvpc extension selects corpus
  EXPECT_EQ(load_trace(file.path()), records);
  // Explicit format overrides the extension.
  const std::string text_path = file.path() + ".txt";
  save_trace(text_path, records, TraceFormat::kCorpus);
  EXPECT_EQ(load_trace(text_path, TraceFormat::kCorpus), records);
  std::remove(text_path.c_str());
}

TEST(Corpus, ZstdGateReportsHonestly) {
  // Whatever the build, the predicate and the writer must agree.
  TempFile file("zstd_gate");
  CorpusWriter::Options options;
  options.codec = CorpusCodec::kZstd;
  if (corpus_zstd_available()) {
    const auto records = make_records(128);
    write_corpus(file.path(), records, options);
    EXPECT_EQ(read_corpus(file.path()), records);
  } else {
    EXPECT_THROW(CorpusWriter(file.path(), options), std::runtime_error);
  }
}

// ----------------------------------------------- replay == generation

// The pipeline's reason to exist: record once, then replay through the
// full simulation and get bit-identical results — stats, FPR ground
// truth (driven by the corpus-carried aggressor oracle), and the exact
// flip history — for every technique. Named *BitIdentical* so the CI
// determinism job (TVP_JOBS=1 vs 8) exercises it too.
// A deliberately tiny system, mirroring exp_test's batch-equivalence
// config: real tREFI shape, scaled thresholds so deterministic
// techniques trigger and flips land within the short run.
exp::SimConfig small_attacked_config() {
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 4;
  cfg.geometry.rows_per_bank = 16384;
  cfg.timing.t_refw_ps = 2'000'000'000;  // 2 ms window
  cfg.timing.refresh_intervals = 256;    // keeps tREFI at ~7.8 us
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 5.0;
  cfg.technique.flip_threshold = 4000;
  cfg.disturbance.flip_threshold = 3000;
  trace::AttackConfig attack;
  attack.victims = {1000, 5000};
  attack.rows_per_bank = cfg.geometry.rows_per_bank;
  attack.interarrival_ps = 180'000;  // 4 * tRC: ~11 K attack ACTs
  cfg.workload.attacks.push_back(attack);
  cfg.finalize();
  return cfg;
}

void expect_identical_runs(const exp::RunResult& gen, const exp::RunResult& rep) {
  EXPECT_EQ(gen.records, rep.records);
  EXPECT_EQ(gen.stats.demand_acts, rep.stats.demand_acts);
  EXPECT_EQ(gen.stats.extra_acts, rep.stats.extra_acts);
  EXPECT_EQ(gen.stats.fp_extra_acts, rep.stats.fp_extra_acts);
  EXPECT_EQ(gen.stats.triggers, rep.stats.triggers);
  EXPECT_EQ(gen.stats.reads, rep.stats.reads);
  EXPECT_EQ(gen.stats.writes, rep.stats.writes);
  EXPECT_EQ(gen.stats.delayed_acts, rep.stats.delayed_acts);
  EXPECT_EQ(gen.stats.first_extra_act_at, rep.stats.first_extra_act_at);
  EXPECT_EQ(gen.stats.extra_acts_by_phase, rep.stats.extra_acts_by_phase);
  EXPECT_EQ(gen.flips, rep.flips);
  EXPECT_EQ(gen.victim_flips, rep.victim_flips);
  EXPECT_EQ(gen.peak_disturbance, rep.peak_disturbance);
  ASSERT_EQ(gen.flip_events.size(), rep.flip_events.size());
  for (std::size_t i = 0; i < gen.flip_events.size(); ++i) {
    EXPECT_EQ(gen.flip_events[i].bank, rep.flip_events[i].bank) << "flip " << i;
    EXPECT_EQ(gen.flip_events[i].row, rep.flip_events[i].row) << "flip " << i;
    EXPECT_EQ(gen.flip_events[i].at_activation, rep.flip_events[i].at_activation)
        << "flip " << i;
    EXPECT_EQ(gen.flip_events[i].interval, rep.flip_events[i].interval)
        << "flip " << i;
  }
}

TEST(CorpusReplay, EveryTechniqueReplayIsBitIdenticalToGenerated) {
  const exp::SimConfig cfg = small_attacked_config();

  TempFile file("replay_equiv");
  exp::record_corpus(cfg, file.path());

  exp::SimConfig replay_cfg = cfg;
  replay_cfg.workload.model = exp::BenignModel::kReplay;
  replay_cfg.workload.trace_path = file.path();
  replay_cfg.workload.attacks.clear();  // the corpus already has them
  replay_cfg.finalize();

  {
    SCOPED_TRACE("none");
    const auto none = [](dram::BankId, util::Rng) {
      return std::make_unique<mem::NoMitigation>();
    };
    expect_identical_runs(exp::run_custom_simulation(none, "none", cfg),
                          exp::run_custom_simulation(none, "none", replay_cfg));
  }
  for (const auto technique : hw::kAllTechniques) {
    SCOPED_TRACE(std::string(hw::to_string(technique)));
    expect_identical_runs(exp::run_simulation(technique, cfg),
                          exp::run_simulation(technique, replay_cfg));
  }
}

TEST(CorpusReplay, ReplayedParamSweepIsBitIdenticalToGenerated) {
  // Same contract one layer up, through the sweep engine the campaign
  // service drives: a sweep over a replay config equals the generated
  // sweep cell for cell (this is what a --trace campaign runs).
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 8.0;
  trace::AttackConfig attack;
  attack.victims = {2000};
  attack.rows_per_bank = cfg.geometry.rows_per_bank;
  cfg.workload.attacks.push_back(attack);
  cfg.finalize();

  TempFile file("sweep_equiv");
  exp::record_corpus(cfg, file.path());

  const util::KeyValueFile gen_base =
      util::KeyValueFile::parse(exp::to_config_text(cfg));
  util::KeyValueFile rep_base = gen_base;
  rep_base.set("workload.model", "replay");
  rep_base.set("workload.trace", file.path());
  rep_base.set("attack.count", "0");  // attacks live in the corpus now

  const std::vector<std::string> values = {"14", "15"};
  const std::vector<hw::Technique> techniques = {hw::Technique::kPara,
                                                 hw::Technique::kLiPRoMi};
  const exp::SweepResult gen = exp::run_param_sweep(
      gen_base, "technique.pbase_exp", values, techniques);
  const exp::SweepResult rep = exp::run_param_sweep(
      rep_base, "technique.pbase_exp", values, techniques);

  ASSERT_EQ(gen.cells.size(), rep.cells.size());
  for (std::size_t i = 0; i < gen.cells.size(); ++i) {
    SCOPED_TRACE(gen.cells[i].technique + " @ " + gen.cells[i].value);
    const exp::RunResult& g = gen.cells[i].result;
    const exp::RunResult& r = rep.cells[i].result;
    EXPECT_EQ(g.stats.demand_acts, r.stats.demand_acts);
    EXPECT_EQ(g.stats.extra_acts, r.stats.extra_acts);
    EXPECT_EQ(g.stats.fp_extra_acts, r.stats.fp_extra_acts);
    EXPECT_EQ(g.stats.triggers, r.stats.triggers);
    EXPECT_EQ(g.flips, r.flips);
    EXPECT_EQ(g.victim_flips, r.victim_flips);
  }
}

TEST(CorpusReplay, ReplayConfigRoundTripsThroughConfigText) {
  exp::SimConfig cfg;
  cfg.workload.model = exp::BenignModel::kReplay;
  cfg.workload.trace_path = "/tmp/some.tvpc";
  const std::string text = exp::to_config_text(cfg);
  exp::SimConfig parsed;
  exp::apply_config(parsed, util::KeyValueFile::parse(text));
  EXPECT_EQ(parsed.workload.model, exp::BenignModel::kReplay);
  EXPECT_EQ(parsed.workload.trace_path, "/tmp/some.tvpc");
}

TEST(CorpusReplay, ReplayWithoutTracePathIsRejected) {
  exp::SimConfig cfg;
  cfg.workload.model = exp::BenignModel::kReplay;
  EXPECT_THROW(cfg.finalize(), std::invalid_argument);
}

TEST(CorpusReplay, RecordCorpusStoresTheAggressorOracle) {
  exp::SimConfig cfg;
  cfg.geometry.banks_per_rank = 2;
  cfg.windows = 1;
  cfg.workload.benign_acts_per_interval_per_bank = 5.0;
  trace::AttackConfig attack;
  attack.victims = {1000, 5000};
  attack.rows_per_bank = cfg.geometry.rows_per_bank;
  cfg.workload.attacks.push_back(attack);
  cfg.finalize();

  TempFile file("oracle");
  exp::record_corpus(cfg, file.path());

  // The stored oracle equals the generation-time ground truth.
  std::unordered_set<std::uint64_t> expected;
  util::Rng workload_rng = util::Rng(cfg.seed).fork();
  exp::build_workload(cfg, workload_rng, &expected);
  const CorpusInfo info = read_corpus_info(file.path());
  EXPECT_EQ(info.aggressors.size(), expected.size());
  for (const auto key : info.aggressors) EXPECT_TRUE(expected.count(key));
  // The declared victims (bank 0, logical rows) ride along too.
  EXPECT_EQ(info.victims, (std::vector<std::uint64_t>{1000, 5000}));
}

// ------------------------------------------------- partition index (lanes)

TEST(Corpus, PartitionedSpanLanesReconstructTheSpan) {
  TempFile file("lanes");
  const auto records = make_records(500);  // banks cycle 0..3
  CorpusWriter::Options options;
  options.records_per_block = 100;
  options.partition_banks = 4;
  write_corpus(file.path(), records, options);

  const CorpusInfo info = read_corpus_info(file.path());
  EXPECT_EQ(info.partition_banks, 4u);
  ASSERT_EQ(info.partitions.size(), info.blocks.size());

  MmapSource source(file.path());
  std::vector<AccessRecord> all;
  const AccessRecord* span = nullptr;
  const BankLaneView* lanes = nullptr;
  std::size_t lane_banks = 0;
  while (const std::size_t n = source.span_lanes(&span, &lanes, &lane_banks)) {
    ASSERT_NE(lanes, nullptr);
    ASSERT_EQ(lane_banks, 4u);
    // Scatter the lanes back through their serials: the rebuilt span
    // must equal the record span field for field.
    std::vector<AccessRecord> rebuilt(n);
    std::vector<bool> covered(n, false);
    for (std::size_t b = 0; b < lane_banks; ++b) {
      const BankLaneView& lane = lanes[b];
      dram::RowId max_row = 0;
      for (std::size_t k = 0; k < lane.count; ++k) {
        const std::size_t at = lane.serials[k];
        ASSERT_LT(at, n);
        ASSERT_FALSE(covered[at]);
        covered[at] = true;
        rebuilt[at].time_ps = lane.times[k];
        rebuilt[at].bank = static_cast<dram::BankId>(b);
        rebuilt[at].row = lane.rows[k];
        rebuilt[at].write = lane.writes[k] != 0;
        max_row = std::max(max_row, lane.rows[k]);
      }
      EXPECT_EQ(lane.max_row, max_row);
    }
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(covered[i]);
      EXPECT_EQ(rebuilt[i].time_ps, span[i].time_ps);
      EXPECT_EQ(rebuilt[i].bank, span[i].bank);
      EXPECT_EQ(rebuilt[i].row, span[i].row);
      EXPECT_EQ(rebuilt[i].write, span[i].write);
    }
    all.insert(all.end(), span, span + n);
  }
  EXPECT_EQ(all, records);
}

TEST(Corpus, UnpartitionedCorpusOffersNoLanes) {
  // A corpus written without a partition index (every pre-extension
  // corpus) must replay through span_lanes with null lanes — the
  // consumer re-partitions — and identical records.
  TempFile file("no_lanes");
  const auto records = make_records(300);
  write_corpus(file.path(), records);  // default: no partition index
  EXPECT_EQ(read_corpus_info(file.path()).partition_banks, 0u);

  MmapSource source(file.path());
  std::vector<AccessRecord> all;
  const AccessRecord* span = nullptr;
  const BankLaneView* lanes = reinterpret_cast<const BankLaneView*>(&all);
  std::size_t lane_banks = 99;
  while (const std::size_t n = source.span_lanes(&span, &lanes, &lane_banks)) {
    EXPECT_EQ(lanes, nullptr);
    EXPECT_EQ(lane_banks, 0u);
    all.insert(all.end(), span, span + n);
  }
  EXPECT_EQ(all, records);
}

TEST(Corpus, PartitionedWriterIsDeterministic) {
  TempFile a("pdet_a");
  TempFile b("pdet_b");
  const auto records = make_records(257);
  CorpusWriter::Options options;
  options.records_per_block = 64;
  options.partition_banks = 4;
  EXPECT_EQ(write_corpus(a.path(), records, options),
            write_corpus(b.path(), records, options));
  EXPECT_EQ(slurp(a.path()), slurp(b.path()));
}

TEST(Corpus, PartitionedWriterRejectsOutOfRangeBank) {
  TempFile file("pbank");
  CorpusWriter::Options options;
  options.partition_banks = 2;
  CorpusWriter writer(file.path(), options);
  AccessRecord r;
  r.bank = 2;  // lanes cover banks [0, 2)
  EXPECT_THROW(writer.append(r), std::invalid_argument);
}

TEST(Corpus, CorruptedPartitionSectionIsRejectedPrecisely) {
  TempFile file("corrupt_lanes");
  const auto records = make_records(400);
  CorpusWriter::Options options;
  options.records_per_block = 100;
  options.partition_banks = 4;
  write_corpus(file.path(), records, options);

  // Flip one byte inside the second block's partition region: the
  // record payloads and the footer stay intact.
  const CorpusInfo info = read_corpus_info(file.path());
  ASSERT_GE(info.partitions.size(), 2u);
  auto bytes = slurp(file.path());
  const std::size_t victim =
      static_cast<std::size_t>(info.partitions[1].offset) +
      info.partitions[1].bytes / 2;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x20);
  spit(file.path(), bytes);

  // The records themselves still replay (their CRCs are untouched)...
  {
    MmapSource source(file.path());
    std::size_t n = 0;
    while (source.next()) ++n;
    EXPECT_EQ(n, records.size());
  }
  // ...but a corpus that advertises a partition index must carry a
  // correct one: the lane path reports the damage precisely instead of
  // silently falling back to re-partitioning.
  MmapSource source(file.path());
  const AccessRecord* span = nullptr;
  const BankLaneView* lanes = nullptr;
  std::size_t lane_banks = 0;
  try {
    while (source.span_lanes(&span, &lanes, &lane_banks)) {
    }
    FAIL() << "corrupt partition section not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("block 1 partition"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(verify_corpus(file.path()), std::runtime_error);
}

TEST(Corpus, PartitionedReplayFeedsLanesWithoutScatter) {
  // The point of carrying the partition index: a replayed corpus feeds
  // the controller's per-bank lanes zero-copy. The always-on profile
  // counters are the proof — every ACT arrives partitioned, none are
  // scattered — and the stats must equal the scatter path's.
  TempFile file("lane_feed");
  const auto records = make_records(600);
  CorpusWriter::Options options;
  options.records_per_block = 128;
  options.partition_banks = 4;
  write_corpus(file.path(), records, options);

  mem::ControllerConfig cfg;
  cfg.geometry.banks_per_rank = 4;
  cfg.geometry.rows_per_bank = 8192;
  const auto none = [](dram::BankId, util::Rng) {
    return std::make_unique<mem::NoMitigation>();
  };
  const auto run = [&](bool partitioned) {
    util::Rng rng{7};
    mem::MitigationEngine engine(cfg.geometry.total_banks(), none, rng);
    dram::DisturbanceModel disturbance(cfg.geometry.total_banks(),
                                       cfg.geometry.rows_per_bank);
    mem::MemoryController controller(cfg, engine, disturbance, rng);
    MmapSource source(file.path());
    const AccessRecord* span = nullptr;
    const BankLaneView* lanes = nullptr;
    std::size_t lane_banks = 0;
    while (const std::size_t n =
               source.span_lanes(&span, &lanes, &lane_banks)) {
      if (partitioned) {
        EXPECT_NE(lanes, nullptr);
        controller.on_records_partitioned(span, n, lanes, lane_banks);
      } else {
        controller.on_records(span, n);
      }
    }
    return std::pair{controller.stats().demand_acts,
                     controller.stage_profile()};
  };
  const auto [acts_lanes, profile_lanes] = run(true);
  const auto [acts_scatter, profile_scatter] = run(false);
  EXPECT_EQ(acts_lanes, records.size());
  EXPECT_EQ(acts_scatter, records.size());
  EXPECT_EQ(profile_lanes.partitioned_acts, records.size());
  EXPECT_EQ(profile_lanes.scattered_acts, 0u);
  EXPECT_EQ(profile_scatter.partitioned_acts, 0u);
  EXPECT_EQ(profile_scatter.scattered_acts, records.size());
}

TEST(CorpusReplay, UnpartitionedCorpusReplaysBitIdenticallyViaFallback) {
  // Pre-extension corpora carry no partition index; replaying one must
  // produce bit-identical results to replaying the partitioned recording
  // of the same workload (the controller re-partitions the spans).
  const exp::SimConfig cfg = small_attacked_config();

  TempFile with_lanes("fallback_lanes");
  exp::record_corpus(cfg, with_lanes.path());  // partitioned by default
  const CorpusInfo info = read_corpus_info(with_lanes.path());
  ASSERT_GT(info.partition_banks, 0u);

  // Rewrite the same records + oracle without the partition index.
  TempFile without_lanes("fallback_flat");
  {
    const auto records = read_corpus(with_lanes.path());
    CorpusWriter writer(without_lanes.path());
    writer.append(records.data(), records.size());
    writer.set_aggressors(info.aggressors);
    writer.set_victims(info.victims);
    writer.close();
  }
  ASSERT_EQ(read_corpus_info(without_lanes.path()).partition_banks, 0u);

  const auto replay_cfg = [&](const std::string& path) {
    exp::SimConfig c = cfg;
    c.workload.model = exp::BenignModel::kReplay;
    c.workload.trace_path = path;
    c.workload.attacks.clear();
    c.finalize();
    return c;
  };
  const exp::SimConfig lanes_cfg = replay_cfg(with_lanes.path());
  const exp::SimConfig flat_cfg = replay_cfg(without_lanes.path());
  for (const auto technique :
       {hw::Technique::kPara, hw::Technique::kTwice, hw::Technique::kCaPRoMi}) {
    SCOPED_TRACE(std::string(hw::to_string(technique)));
    expect_identical_runs(exp::run_simulation(technique, lanes_cfg),
                          exp::run_simulation(technique, flat_cfg));
  }
}

}  // namespace
}  // namespace tvp::trace
