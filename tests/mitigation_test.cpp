// Unit tests for tvp::mitigation — the five state-of-the-art baselines:
// PARA, ProHit, MRLoc, TWiCe, CRA.
#include <gtest/gtest.h>

#include <vector>

#include "tvp/mitigation/cra.hpp"
#include "tvp/mitigation/mrloc.hpp"
#include "tvp/mitigation/para.hpp"
#include "tvp/mitigation/prohit.hpp"
#include "tvp/mitigation/twice.hpp"

namespace tvp::mitigation {
namespace {

mem::MitigationContext ctx_at(std::uint32_t interval, bool window_start = false) {
  mem::MitigationContext ctx;
  ctx.interval_in_window = interval;
  ctx.global_interval = interval;
  ctx.window_start = window_start;
  return ctx;
}

// --------------------------------------------------------------------- PARA

TEST(Para, TriggerRateMatchesP) {
  ParaConfig cfg;
  cfg.p = util::FixedProb::from_double(0.01);
  Para para(cfg, util::Rng(3));
  mem::ActionBuffer out;
  const int n = 100000;
  for (int i = 0; i < n; ++i) para.on_activate(1000, ctx_at(0), out);
  EXPECT_NEAR(out.size() / static_cast<double>(n), 0.01, 0.002);
}

TEST(Para, RefreshesOneNeighbor) {
  ParaConfig cfg;
  cfg.p = util::FixedProb::from_double(1.0);
  Para para(cfg, util::Rng(5));
  mem::ActionBuffer out;
  int up = 0, down = 0;
  for (int i = 0; i < 1000; ++i) {
    out.clear();
    para.on_activate(1000, ctx_at(0), out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActRow);
    EXPECT_EQ(out[0].suspect, 1000u);
    if (out[0].row == 1001u) ++up;
    else if (out[0].row == 999u) ++down;
    else FAIL() << "refreshed non-neighbour row " << out[0].row;
  }
  EXPECT_GT(up, 300);
  EXPECT_GT(down, 300);
}

TEST(Para, EdgeRowsPickTheOnlyNeighbor) {
  ParaConfig cfg;
  cfg.p = util::FixedProb::from_double(1.0);
  cfg.rows_per_bank = 64;
  Para para(cfg, util::Rng(7));
  mem::ActionBuffer out;
  for (int i = 0; i < 50; ++i) {
    out.clear();
    para.on_activate(0, ctx_at(0), out);
    EXPECT_EQ(out[0].row, 1u);
    out.clear();
    para.on_activate(63, ctx_at(0), out);
    EXPECT_EQ(out[0].row, 62u);
  }
}

TEST(Para, StatelessHasTinyFootprint) {
  Para para(ParaConfig{}, util::Rng(1));
  EXPECT_EQ(para.state_bits(), 32u);
  EXPECT_STREQ(para.name(), "PARA");
}

// ------------------------------------------------------------------- ProHit

ProHitConfig prohit_fast() {
  ProHitConfig cfg;
  cfg.insert_prob = util::FixedProb::from_double(1.0);
  cfg.promote_prob = util::FixedProb::from_double(1.0);
  cfg.hot_entries = 2;
  cfg.cold_entries = 2;
  return cfg;
}

TEST(ProHit, VictimClimbsToHotAndGetsRefreshed) {
  ProHit prohit(prohit_fast(), util::Rng(9));
  mem::ActionBuffer out;
  prohit.on_activate(1000, ctx_at(0), out);  // victims 999/1001 -> cold
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(prohit.cold_size(), 2u);
  prohit.on_activate(1000, ctx_at(0), out);  // cold hit -> promoted to hot
  EXPECT_EQ(prohit.hot_size(), 2u);
  prohit.on_refresh(ctx_at(1), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActRow);
  EXPECT_TRUE(out[0].row == 999u || out[0].row == 1001u);
  EXPECT_EQ(out[0].suspect, 1000u);
  EXPECT_EQ(prohit.hot_size(), 1u);  // top retired
}

TEST(ProHit, EmptyHotMeansNoRefresh) {
  ProHit prohit(ProHitConfig{}, util::Rng(11));
  mem::ActionBuffer out;
  prohit.on_refresh(ctx_at(1), out);
  EXPECT_TRUE(out.empty());
}

TEST(ProHit, ColdInsertionIsProbabilistic) {
  ProHitConfig cfg;
  cfg.insert_prob = util::FixedProb::pow2(4);  // 1/16
  ProHit prohit(cfg, util::Rng(13));
  mem::ActionBuffer out;
  // Single activation of distinct rows: cold fills slowly.
  int filled_after = 0;
  for (int i = 0; i < 100; ++i) {
    prohit.on_activate(static_cast<dram::RowId>(10 + 10 * i), ctx_at(0), out);
    if (prohit.cold_size() + prohit.hot_size() > 0 && filled_after == 0)
      filled_after = i + 1;
  }
  EXPECT_GT(filled_after, 1);  // did not insert on the very first candidate
}

TEST(ProHit, ColdEvictsFifoWhenFull) {
  ProHitConfig cfg = prohit_fast();
  cfg.promote_prob = util::FixedProb::from_double(0.0);  // stay in cold
  ProHit prohit(cfg, util::Rng(15));
  mem::ActionBuffer out;
  prohit.on_activate(100, ctx_at(0), out);  // victims 99, 101 fill cold (2)
  prohit.on_activate(200, ctx_at(0), out);  // victims 199, 201 evict both
  EXPECT_EQ(prohit.cold_size(), 2u);
  EXPECT_EQ(prohit.hot_size(), 0u);
}

TEST(ProHit, StateBits) {
  ProHitConfig cfg;
  ProHit prohit(cfg, util::Rng(1));
  EXPECT_EQ(prohit.state_bits(), (4u + 8u) * 18u);
  EXPECT_THROW(ProHit(ProHitConfig{0, 8}, util::Rng(1)), std::invalid_argument);
}

// -------------------------------------------------------------------- MRLoc

TEST(MrLoc, FirstObservationNeverFires) {
  MrLocConfig cfg;
  cfg.p_max = util::FixedProb::from_double(1.0);
  cfg.p_min = util::FixedProb::from_double(1.0);
  MrLoc mrloc(cfg, util::Rng(17));
  mem::ActionBuffer out;
  mrloc.on_activate(1000, ctx_at(0), out);
  EXPECT_TRUE(out.empty());  // victims not yet queued
  EXPECT_EQ(mrloc.queue_size(), 2u);
  mrloc.on_activate(1000, ctx_at(0), out);  // queue hits now
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActRow);
}

TEST(MrLoc, RecencyRaisesProbability) {
  MrLocConfig cfg;
  cfg.queue_entries = 8;
  cfg.p_min = util::FixedProb::from_double(0.0);
  cfg.p_max = util::FixedProb::from_double(1.0);
  MrLoc mrloc(cfg, util::Rng(19));
  mem::ActionBuffer out;
  mrloc.on_activate(1000, ctx_at(0), out);  // queue [999, 1001]
  EXPECT_TRUE(out.empty());
  // Re-observing the *most recent* victim (1001, back of the queue) uses
  // p_max = 1 and must fire; re-observing the oldest uses p_min = 0.
  mrloc.on_activate(1002, ctx_at(0), out);  // victims 1001 (recent) + 1003
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].row, 1001u);
  EXPECT_EQ(out[0].suspect, 1002u);
  out.clear();
  // Queue is now [999, 1001, 1003]; the oldest victim 999 has p = 0.
  mrloc.on_activate(998, ctx_at(0), out);  // victims 997 (new) + 999 (oldest)
  EXPECT_TRUE(out.empty());
}

TEST(MrLoc, QueueEvictsOldest) {
  MrLocConfig cfg;
  cfg.queue_entries = 4;
  cfg.p_min = util::FixedProb::from_double(1.0);
  cfg.p_max = util::FixedProb::from_double(1.0);
  MrLoc mrloc(cfg, util::Rng(21));
  mem::ActionBuffer out;
  mrloc.on_activate(1000, ctx_at(0), out);           // 999, 1001
  mrloc.on_activate(2000, ctx_at(0), out);           // 1999, 2001 (full)
  mrloc.on_activate(3000, ctx_at(0), out);           // evicts 999, 1001
  out.clear();
  mrloc.on_activate(1000, ctx_at(0), out);           // victims re-inserted
  EXPECT_TRUE(out.empty());                           // ...but were evicted
}

TEST(MrLoc, StateBitsAndValidation) {
  MrLoc mrloc(MrLocConfig{}, util::Rng(1));
  EXPECT_EQ(mrloc.state_bits(), 16u * 18u);
  MrLocConfig bad;
  bad.p_min = util::FixedProb::from_double(0.5);
  bad.p_max = util::FixedProb::from_double(0.1);
  EXPECT_THROW(MrLoc(bad, util::Rng(1)), std::invalid_argument);
}

TEST(MrLoc, SingleEntryQueueUsesRampMidpoint) {
  // Degenerate recency weighting: a single-entry queue's sole victim is
  // simultaneously the oldest and the newest entry, so the linear ramp
  // collapses to its midpoint (p_min + p_max) / 2. (The old behaviour
  // assigned the full p_max, double-counting recency: one hit in a cold
  // queue was treated as the strongest locality signal possible.)
  MrLocConfig cfg;
  cfg.p_min = util::FixedProb::from_double(0.25);
  cfg.p_max = util::FixedProb::from_double(0.75);
  MrLoc mrloc(cfg, util::Rng(23));
  mem::ActionBuffer out;
  mrloc.on_activate(0, ctx_at(0), out);  // row 0 has one victim: row 1
  ASSERT_EQ(mrloc.queue_size(), 1u);
  const std::uint64_t expected =
      cfg.p_min.raw() + (cfg.p_max.raw() - cfg.p_min.raw()) / 2;
  EXPECT_EQ(mrloc.probability_at(0).raw(), expected);
}

TEST(MrLoc, TwoEntryQueueSpansFullRamp) {
  // With two entries the ramp endpoints apply exactly: depth 0 (oldest)
  // draws at p_min, depth 1 (newest) at p_max.
  MrLocConfig cfg;
  cfg.p_min = util::FixedProb::from_double(0.125);
  cfg.p_max = util::FixedProb::from_double(0.875);
  MrLoc mrloc(cfg, util::Rng(23));
  mem::ActionBuffer out;
  mrloc.on_activate(1000, ctx_at(0), out);  // queues victims [999, 1001]
  ASSERT_EQ(mrloc.queue_size(), 2u);
  EXPECT_EQ(mrloc.probability_at(0).raw(), cfg.p_min.raw());
  EXPECT_EQ(mrloc.probability_at(1).raw(), cfg.p_max.raw());
  EXPECT_THROW(mrloc.probability_at(2), std::out_of_range);
}

// -------------------------------------------------------------------- TWiCe

TwiceConfig twice_small() {
  TwiceConfig cfg;
  cfg.entries = 16;
  cfg.row_threshold = 100;
  cfg.pruning_slope = 5;
  cfg.refresh_intervals = 64;
  cfg.rows_per_bank = 1024;
  return cfg;
}

TEST(Twice, DeterministicTriggerAtThreshold) {
  Twice twice(twice_small(), util::Rng(23));
  mem::ActionBuffer out;
  for (int i = 0; i < 99; ++i) twice.on_activate(7, ctx_at(0), out);
  EXPECT_TRUE(out.empty());
  twice.on_activate(7, ctx_at(0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
  EXPECT_EQ(out[0].row, 7u);
  // The counter restarts: another 100 activations to the next act_n.
  out.clear();
  for (int i = 0; i < 99; ++i) twice.on_activate(7, ctx_at(0), out);
  EXPECT_TRUE(out.empty());
}

TEST(Twice, PruningDropsSlowRows) {
  Twice twice(twice_small(), util::Rng(25));
  mem::ActionBuffer out;
  // 3 activations in one interval < slope 5: pruned at the boundary.
  for (int i = 0; i < 3; ++i) twice.on_activate(7, ctx_at(0), out);
  EXPECT_EQ(twice.live_entries(), 1u);
  twice.on_refresh(ctx_at(1), out);
  EXPECT_EQ(twice.live_entries(), 0u);
  // 10 activations per interval >= slope: survives the boundary.
  for (int i = 0; i < 10; ++i) twice.on_activate(9, ctx_at(1), out);
  twice.on_refresh(ctx_at(2), out);
  EXPECT_EQ(twice.live_entries(), 1u);
}

TEST(Twice, PrunedSlotIsReusable) {
  TwiceConfig cfg = twice_small();
  cfg.entries = 1;
  Twice twice(cfg, util::Rng(27));
  mem::ActionBuffer out;
  twice.on_activate(7, ctx_at(0), out);
  twice.on_activate(8, ctx_at(0), out);  // table full
  EXPECT_EQ(twice.overflow_drops(), 1u);
  twice.on_refresh(ctx_at(1), out);      // row 7 pruned (1 < 5)
  twice.on_activate(8, ctx_at(1), out);  // slot free again
  EXPECT_EQ(twice.live_entries(), 1u);
}

TEST(Twice, WindowStartClearsAll) {
  Twice twice(twice_small(), util::Rng(29));
  mem::ActionBuffer out;
  for (int i = 0; i < 50; ++i) twice.on_activate(7, ctx_at(0), out);
  twice.on_refresh(ctx_at(0, /*window_start=*/true), out);
  EXPECT_EQ(twice.live_entries(), 0u);
}

TEST(Twice, NeverPrunesASustainedAttacker) {
  // The safety property behind TWiCe's proof: a row hammered at >= slope
  // activations per interval is never pruned, so it always reaches the
  // threshold and gets mitigated.
  Twice twice(twice_small(), util::Rng(31));
  mem::ActionBuffer out;
  for (std::uint32_t interval = 0; interval < 30 && out.empty(); ++interval) {
    for (int i = 0; i < 6; ++i) twice.on_activate(7, ctx_at(interval), out);
    if (out.empty()) twice.on_refresh(ctx_at(interval + 1), out);
  }
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].row, 7u);
  EXPECT_EQ(twice.overflow_drops(), 0u);
}

TEST(Twice, StateBitsAndPeak) {
  Twice twice(TwiceConfig{}, util::Rng(1));
  // 560 entries x (17 row + 16 count + 13 life + 1 valid) = 26320 bits.
  EXPECT_EQ(twice.state_bits(), 560u * 47u);
  EXPECT_EQ(twice.peak_live_entries(), 0u);
}

// ---------------------------------------------------------------------- CRA

CraConfig cra_small() {
  CraConfig cfg;
  cfg.rows_per_bank = 1024;
  cfg.refresh_intervals = 64;
  cfg.row_threshold = 50;
  return cfg;
}

TEST(Cra, TriggersExactlyAtThreshold) {
  Cra cra(cra_small(), util::Rng(33));
  mem::ActionBuffer out;
  for (int i = 0; i < 49; ++i) cra.on_activate(100, ctx_at(0), out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(cra.counter(100), 49u);
  cra.on_activate(100, ctx_at(0), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, mem::MitigationAction::Kind::kActNeighbors);
  EXPECT_EQ(cra.counter(100), 0u);
}

TEST(Cra, RefreshClearsSlotCounters) {
  Cra cra(cra_small(), util::Rng(35));
  mem::ActionBuffer out;
  // Row 100 is in slot 100/16 = 6.
  for (int i = 0; i < 30; ++i) cra.on_activate(100, ctx_at(0), out);
  cra.on_refresh(ctx_at(6), out);  // slot 6 refreshed
  EXPECT_EQ(cra.counter(100), 0u);
  for (int i = 0; i < 30; ++i) cra.on_activate(100, ctx_at(7), out);
  cra.on_refresh(ctx_at(7), out);  // different slot: counter survives
  EXPECT_EQ(cra.counter(100), 30u);
}

TEST(Cra, IndependentPerRowCounters) {
  Cra cra(cra_small(), util::Rng(37));
  mem::ActionBuffer out;
  for (int i = 0; i < 20; ++i) cra.on_activate(100, ctx_at(0), out);
  for (int i = 0; i < 10; ++i) cra.on_activate(200, ctx_at(0), out);
  EXPECT_EQ(cra.counter(100), 20u);
  EXPECT_EQ(cra.counter(200), 10u);
}

TEST(Cra, StateBitsScaleWithRows) {
  Cra cra(CraConfig{}, util::Rng(1));
  // One counter per row: 131072 x 16 bits.
  EXPECT_EQ(cra.state_bits(), 131072ull * 16u);
  EXPECT_THROW(Cra(CraConfig{1000, 64, 10}, util::Rng(1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace tvp::mitigation
