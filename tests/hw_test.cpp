// Unit tests for tvp::hw — the FSM cycle model (Table II) and the
// analytic area model (Table III), including the calibration contract:
// with the paper's default parameters the models must reproduce the
// published numbers.
#include <gtest/gtest.h>

#include "tvp/hw/area_model.hpp"
#include "tvp/hw/cycle_model.hpp"
#include "tvp/hw/fsm_executor.hpp"
#include "tvp/hw/technique.hpp"

namespace tvp::hw {
namespace {

// ----------------------------------------------------------------- technique

TEST(Technique, NamesAndSets) {
  EXPECT_EQ(to_string(Technique::kPara), "PARA");
  EXPECT_EQ(to_string(Technique::kCaPRoMi), "CaPRoMi");
  EXPECT_EQ(kAllTechniques.size(), 9u);
  EXPECT_EQ(kTiVaPRoMiVariants.size(), 4u);
  EXPECT_TRUE(is_tivapromi(Technique::kLiPRoMi));
  EXPECT_FALSE(is_tivapromi(Technique::kTwice));
}

TEST(TechniqueParams, BitWidths) {
  const TechniqueParams p;
  EXPECT_EQ(p.row_bits(), 17u);
  EXPECT_EQ(p.interval_bits(), 13u);
}

// --------------------------------------------------------------- cycle model

TEST(CycleModel, BudgetsMatchSectionIV) {
  const CycleBudget ddr4 = cycle_budget(dram::ddr4_timing());
  EXPECT_EQ(ddr4.act, 54u);
  EXPECT_EQ(ddr4.ref, 420u);
  const CycleBudget ddr3 = cycle_budget(dram::ddr3_timing());
  EXPECT_EQ(ddr3.act, 14u);
  EXPECT_EQ(ddr3.ref, 112u);
}

TEST(CycleModel, TableIIExactReproduction) {
  const TechniqueParams params;  // paper defaults
  const auto ca = fsm_cycles(Technique::kCaPRoMi, params);
  const auto loli = fsm_cycles(Technique::kLoLiPRoMi, params);
  const auto lo = fsm_cycles(Technique::kLoPRoMi, params);
  const auto li = fsm_cycles(Technique::kLiPRoMi, params);
  // Table II, act row: 50 / 36 / 37 / 37.
  EXPECT_EQ(ca.act, 50u);
  EXPECT_EQ(loli.act, 36u);
  EXPECT_EQ(lo.act, 37u);
  EXPECT_EQ(li.act, 37u);
  // Table II, ref row: 258 / 3 / 3 / 3.
  EXPECT_EQ(ca.ref, 258u);
  EXPECT_EQ(loli.ref, 3u);
  EXPECT_EQ(lo.ref, 3u);
  EXPECT_EQ(li.ref, 3u);
}

TEST(CycleModel, AllVariantsFitDdr4Budget) {
  const TechniqueParams params;
  const CycleBudget budget = cycle_budget(dram::ddr4_timing());
  for (const auto t : kTiVaPRoMiVariants)
    EXPECT_TRUE(fits_budget(fsm_cycles(t, params), budget))
        << to_string(t);
}

TEST(CycleModel, OnlyParaAndCraFitDdr3Serially) {
  // Section IV: "Only PARA and CRA could fit in the cycle budget of the
  // low-frequency DDR3 controller due to their simple internal structure."
  const TechniqueParams params;
  const CycleBudget ddr3 = cycle_budget(dram::ddr3_timing());
  for (const auto t : kAllTechniques) {
    const bool fits = fits_budget(fsm_cycles(t, params), ddr3);
    const bool simple = t == Technique::kPara || t == Technique::kCra;
    EXPECT_EQ(fits, simple) << to_string(t);
  }
}

TEST(CycleModel, RequiredParallelism) {
  const TechniqueParams params;
  const CycleBudget ddr4 = cycle_budget(dram::ddr4_timing());
  const CycleBudget ddr3 = cycle_budget(dram::ddr3_timing());
  // DDR4: everything serial except TWiCe's 560-entry pruning walk.
  for (const auto t : kAllTechniques) {
    const std::uint32_t f = required_parallelism(t, params, ddr4);
    EXPECT_EQ(f, t == Technique::kTwice ? 2u : 1u) << to_string(t);
  }
  // DDR3: the table-based techniques need widening.
  EXPECT_EQ(required_parallelism(Technique::kPara, params, ddr3), 1u);
  EXPECT_EQ(required_parallelism(Technique::kCra, params, ddr3), 1u);
  EXPECT_EQ(required_parallelism(Technique::kLiPRoMi, params, ddr3), 4u);
  EXPECT_EQ(required_parallelism(Technique::kLoLiPRoMi, params, ddr3), 4u);
  EXPECT_EQ(required_parallelism(Technique::kCaPRoMi, params, ddr3), 4u);
  EXPECT_EQ(required_parallelism(Technique::kMrLoc, params, ddr3), 4u);
  EXPECT_EQ(required_parallelism(Technique::kProHit, params, ddr3), 4u);
  EXPECT_EQ(required_parallelism(Technique::kTwice, params, ddr3), 8u);
}

TEST(CycleModel, WideningShortensLoops) {
  const TechniqueParams params;
  DatapathWidths wide;
  wide.history_search = 4;
  wide.counter_search = 16;
  wide.counter_walk = 4;
  wide.table_search = 4;
  for (const auto t : kAllTechniques) {
    const auto serial = fsm_cycles(t, params);
    const auto parallel = fsm_cycles(t, params, wide);
    EXPECT_LE(parallel.act, serial.act) << to_string(t);
    EXPECT_LE(parallel.ref, serial.ref) << to_string(t);
  }
}

TEST(CycleModel, ScalesWithTableSizes) {
  TechniqueParams params;
  const auto base = fsm_cycles(Technique::kLiPRoMi, params);
  params.history_entries = 64;
  const auto bigger = fsm_cycles(Technique::kLiPRoMi, params);
  EXPECT_EQ(bigger.act, base.act + 32u);
}

// ------------------------------------------------------------- FSM executor

TEST(FsmExecutor, ExecutionAgreesWithClosedFormEverywhere) {
  // The same Table II numbers must come out of the executed FSM walk and
  // the closed-form cycle model, for every variant, width, and table
  // size we can configure.
  for (const auto t : kTiVaPRoMiVariants) {
    for (const std::uint32_t entries : {8u, 16u, 32u, 64u}) {
      for (const std::uint32_t width : {1u, 2u, 4u}) {
        TechniqueParams params;
        params.history_entries = entries;
        DatapathWidths widths;
        widths.history_search = width;
        widths.counter_search = 4 * width;
        widths.counter_walk = width;
        widths.table_search = width;
        const FsmExecutor executor(t, params, widths);
        const FsmCycles model = fsm_cycles(t, params, widths);
        EXPECT_EQ(trace_cycles(executor.run_act()), model.act)
            << to_string(t) << " entries " << entries << " width " << width;
        EXPECT_EQ(trace_cycles(executor.run_ref(false)), model.ref)
            << to_string(t);
        EXPECT_EQ(trace_cycles(executor.run_ref(true)), model.ref)
            << to_string(t);
      }
    }
  }
}

TEST(FsmExecutor, TracesNameTheFigureStates) {
  const FsmExecutor li(Technique::kLiPRoMi, TechniqueParams{});
  const std::string act = trace_to_string(li.run_act());
  EXPECT_NE(act.find("search in table(32)"), std::string::npos);
  EXPECT_NE(act.find("decide"), std::string::npos);
  const std::string ref = trace_to_string(li.run_ref(true));
  EXPECT_NE(ref.find("reset table"), std::string::npos);

  const FsmExecutor ca(Technique::kCaPRoMi, TechniqueParams{});
  const std::string ca_ref = trace_to_string(ca.run_ref(false));
  EXPECT_NE(ca_ref.find("per-entry weight/scale/decide/commit(256)"),
            std::string::npos);
}

TEST(FsmExecutor, RejectsNonTiVaPRoMi) {
  EXPECT_THROW(FsmExecutor(Technique::kPara, TechniqueParams{}),
               std::invalid_argument);
  EXPECT_THROW(FsmExecutor(Technique::kTwice, TechniqueParams{}),
               std::invalid_argument);
}

// ---------------------------------------------------------------- area model

TEST(AreaModel, ParaIsTheReference349) {
  const auto est = estimate_area(Technique::kPara, Target::kDdr4);
  EXPECT_EQ(est.luts, 349u);  // Table III, exact
  EXPECT_EQ(est.parallelism, 1u);
  EXPECT_TRUE(est.fits_device);
  // PARA is the same on DDR3 (fits serially).
  EXPECT_EQ(estimate_area(Technique::kPara, Target::kDdr3).luts, 349u);
}

struct AreaCase {
  Technique technique;
  std::uint64_t paper_ddr4;
  std::uint64_t paper_ddr3;
};

class AreaTableIII : public ::testing::TestWithParam<AreaCase> {};

TEST_P(AreaTableIII, WithinFivePercentOfPaper) {
  const auto& c = GetParam();
  const auto ddr4 = estimate_area(c.technique, Target::kDdr4);
  const auto ddr3 = estimate_area(c.technique, Target::kDdr3);
  EXPECT_NEAR(static_cast<double>(ddr4.luts), static_cast<double>(c.paper_ddr4),
              0.05 * static_cast<double>(c.paper_ddr4))
      << to_string(c.technique) << " DDR4";
  EXPECT_NEAR(static_cast<double>(ddr3.luts), static_cast<double>(c.paper_ddr3),
              0.05 * static_cast<double>(c.paper_ddr3))
      << to_string(c.technique) << " DDR3";
}

INSTANTIATE_TEST_SUITE_P(
    PaperNumbers, AreaTableIII,
    ::testing::Values(AreaCase{Technique::kProHit, 1653, 4274},
                      AreaCase{Technique::kMrLoc, 1865, 4667},
                      AreaCase{Technique::kPara, 349, 349},
                      AreaCase{Technique::kTwice, 258356, 3456558},
                      AreaCase{Technique::kCra, 5694107, 5694107},
                      AreaCase{Technique::kCaPRoMi, 21061, 97863},
                      AreaCase{Technique::kLiPRoMi, 5155, 6586},
                      AreaCase{Technique::kLoPRoMi, 5228, 6603},
                      AreaCase{Technique::kLoLiPRoMi, 5374, 6701}));

TEST(AreaModel, CraAndTwiceExceedTheFpgaOnDdr3) {
  // Section IV: "the implementations of CRA and TWiCe for DDR3 need even
  // more resources than the targeted FPGA offers."
  EXPECT_FALSE(estimate_area(Technique::kCra, Target::kDdr3).fits_device);
  EXPECT_FALSE(estimate_area(Technique::kTwice, Target::kDdr3).fits_device);
  EXPECT_TRUE(estimate_area(Technique::kLoLiPRoMi, Target::kDdr3).fits_device);
  EXPECT_TRUE(estimate_area(Technique::kCaPRoMi, Target::kDdr3).fits_device);
}

TEST(AreaModel, RelativeRatiosMatchAbstract) {
  // "9x - 27x reduced storage requirement than Tabled Counters."
  const double twice_b = table_bytes_per_bank(Technique::kTwice);
  const double loli_b = table_bytes_per_bank(Technique::kLoLiPRoMi);
  const double ca_b = table_bytes_per_bank(Technique::kCaPRoMi);
  EXPECT_GT(twice_b / loli_b, 20.0);
  EXPECT_LT(twice_b / loli_b, 32.0);
  EXPECT_GT(twice_b / ca_b, 7.0);
  EXPECT_LT(twice_b / ca_b, 12.0);
}

TEST(AreaModel, TableBytesMatchPaper) {
  // History table: 120 B; CaPRoMi total: ~374 B (paper) vs 376 B (ours).
  EXPECT_DOUBLE_EQ(table_bytes_per_bank(Technique::kLiPRoMi), 120.0);
  EXPECT_DOUBLE_EQ(table_bytes_per_bank(Technique::kLoPRoMi), 120.0);
  EXPECT_DOUBLE_EQ(table_bytes_per_bank(Technique::kLoLiPRoMi), 120.0);
  EXPECT_NEAR(table_bytes_per_bank(Technique::kCaPRoMi), 374.0, 4.0);
  // CRA: one 16-bit counter per row = 256 KB per bank.
  EXPECT_DOUBLE_EQ(table_bytes_per_bank(Technique::kCra), 262144.0);
  // All nine techniques report nonzero state.
  for (const auto t : kAllTechniques)
    EXPECT_GT(table_bytes_per_bank(t), 0.0) << to_string(t);
}

TEST(AreaModel, AreaGrowsWithTableSize) {
  TechniqueParams params;
  const auto base = estimate_area(Technique::kLiPRoMi, Target::kDdr4, params);
  params.history_entries = 128;
  const auto bigger = estimate_area(Technique::kLiPRoMi, Target::kDdr4, params);
  EXPECT_GT(bigger.luts, base.luts);
}

TEST(AreaModel, BreakdownSumsToEstimate) {
  const TechniqueParams params;
  for (const auto t : kAllTechniques) {
    for (const auto target : {Target::kDdr4, Target::kDdr3}) {
      const auto est = estimate_area(t, target, params);
      std::uint64_t sum = 0;
      for (const auto& part : area_breakdown(t, target, params)) sum += part.luts;
      EXPECT_EQ(sum, est.luts) << to_string(t) << " " << to_string(target);
    }
  }
}

TEST(AreaModel, BreakdownIsTableDominatedForTrackers) {
  const TechniqueParams params;
  for (const auto t : {Technique::kLiPRoMi, Technique::kTwice, Technique::kCra}) {
    const auto parts = area_breakdown(t, Target::kDdr4, params);
    const auto est = estimate_area(t, Target::kDdr4, params);
    // The last component is the table block; it dominates the total.
    EXPECT_GT(parts.back().luts * 2, est.luts) << to_string(t);
  }
}

TEST(AreaModel, TargetHelpers) {
  EXPECT_STREQ(to_string(Target::kDdr4), "DDR4");
  EXPECT_STREQ(to_string(Target::kDdr3), "DDR3");
  EXPECT_STREQ(to_string(Target::kDdr5), "DDR5");
  EXPECT_EQ(target_timing(Target::kDdr4).clock_hz, 1'200'000'000u);
  EXPECT_EQ(target_timing(Target::kDdr3).clock_hz, 320'000'000u);
  EXPECT_EQ(target_timing(Target::kDdr5).clock_hz, 2'400'000'000u);
}

TEST(AreaModel, Ddr5RelaxesEverythingToSerial) {
  const TechniqueParams params;
  const CycleBudget ddr5 = cycle_budget(dram::ddr5_timing());
  for (const auto t : kAllTechniques) {
    // Everything except TWiCe's long pruning walk fits serially; and no
    // technique needs MORE parallelism than on DDR4.
    const auto f5 = required_parallelism(t, params, ddr5);
    const auto f4 =
        required_parallelism(t, params, cycle_budget(dram::ddr4_timing()));
    EXPECT_LE(f5, f4) << to_string(t);
    // Consequently DDR5 area never exceeds DDR4 area.
    EXPECT_LE(estimate_area(t, Target::kDdr5, params).luts,
              estimate_area(t, Target::kDdr4, params).luts)
        << to_string(t);
  }
}

}  // namespace
}  // namespace tvp::hw
