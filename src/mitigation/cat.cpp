#include "tvp/mitigation/cat.hpp"

#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::mitigation {

Cat::Cat(CatConfig config, util::Rng) : cfg_(config) {
  if (cfg_.node_budget < 3)
    throw std::invalid_argument("Cat: node budget must allow one split");
  if (cfg_.trigger_threshold == 0 || cfg_.split_quantum == 0)
    throw std::invalid_argument("Cat: zero threshold");
  if (cfg_.rows_per_bank == 0 || !util::is_pow2(cfg_.rows_per_bank))
    throw std::invalid_argument("Cat: rows_per_bank must be a power of two");
  max_depth_ = static_cast<std::uint8_t>(util::floor_log2(cfg_.rows_per_bank));
  nodes_.reserve(cfg_.node_budget);
  reset_tree();
}

void Cat::reset_tree() {
  nodes_.clear();
  nodes_.push_back(Node{});  // root covers the whole bank
}

void Cat::on_activate(dram::RowId row, const mem::MitigationContext&,
                      mem::ActionBuffer& out) {
  // Descend to the leaf covering `row` (branch on address bits, MSB
  // first — exactly the hardware's prefix walk).
  std::size_t index = 0;
  while (nodes_[index].left >= 0) {
    const std::uint8_t depth = nodes_[index].depth;
    const bool right = (row >> (max_depth_ - 1 - depth)) & 1u;
    index = static_cast<std::size_t>(right ? nodes_[index].right
                                           : nodes_[index].left);
  }

  Node& leaf = nodes_[index];
  ++leaf.count;

  if (leaf.depth == max_depth_) {
    // Single-row leaf: deterministic mitigation at the trigger threshold.
    if (leaf.count >= cfg_.trigger_threshold) {
      mem::MitigationAction action;
      action.kind = mem::MitigationAction::Kind::kActNeighbors;
      action.row = row;
      action.suspect = row;
      out.push_back(action);
      leaf.count = 0;
    }
    return;
  }

  // Coarse leaf: split once it absorbed a quantum — if nodes remain.
  if (leaf.count >= cfg_.split_quantum) {
    if (nodes_.size() + 2 <= cfg_.node_budget) {
      const std::uint8_t child_depth = leaf.depth + 1;
      // (vector growth may invalidate `leaf`; re-index afterwards.)
      nodes_.push_back(Node{0, -1, -1, child_depth});
      nodes_.push_back(Node{0, -1, -1, child_depth});
      nodes_[index].left = static_cast<std::int32_t>(nodes_.size() - 2);
      nodes_[index].right = static_cast<std::int32_t>(nodes_.size() - 1);
      nodes_[index].count = 0;
    } else if (nodes_[index].count >= cfg_.trigger_threshold) {
      // Saturated tree, hot coarse region: the defence cannot name the
      // aggressor row — the Section II attack in action.
      ++blind_triggers_;
      nodes_[index].count = 0;
    }
  }
}

void Cat::on_activates(const dram::RowId* rows, std::size_t n,
                        const mem::MitigationContext& ctx,
                        mem::ActionBuffer& out) {
  // Devirtualized batch loop: one virtual call per same-bank span
  // instead of one per ACT; decisions and RNG draws are identical to
  // per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    Cat::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Cat::on_refresh(const mem::MitigationContext& ctx,
                     mem::ActionBuffer&) {
  // The tree is rebuilt each refresh window (Section II: "the tree is
  // reset at each new refresh window").
  if (ctx.window_start) reset_tree();
}

std::uint64_t Cat::state_bits() const noexcept {
  // Counter + two child indices per node.
  const unsigned index_bits = util::bits_for(cfg_.node_budget + 1);
  const unsigned counter_bits = util::bits_for(cfg_.trigger_threshold + 1);
  return static_cast<std::uint64_t>(cfg_.node_budget) *
         (counter_bits + 2 * index_bits);
}

mem::BankMitigationFactory make_cat_factory(CatConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Cat>(config, rng);
  };
}

}  // namespace tvp::mitigation
