#include "tvp/mitigation/graphene.hpp"

#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"
#include "tvp/util/scan.hpp"

namespace tvp::mitigation {

Graphene::Graphene(GrapheneConfig config, util::Rng) : cfg_(config) {
  if (cfg_.entries == 0) throw std::invalid_argument("Graphene: zero capacity");
  if (cfg_.row_threshold == 0)
    throw std::invalid_argument("Graphene: zero threshold");
  if (cfg_.rows_per_bank == 0)
    throw std::invalid_argument("Graphene: zero rows_per_bank");
  rows_.assign(cfg_.entries, 0);
  counts_.assign(cfg_.entries, 0);
}

void Graphene::on_activate(dram::RowId row, const mem::MitigationContext&,
                           mem::ActionBuffer& out) {
  std::size_t slot = util::find_u32(rows_.data(), live_, row);
  if (slot != live_) {
    ++counts_[slot];
  } else if (live_ < cfg_.entries) {
    // Free slot: the dense prefix grows by one.
    slot = live_++;
    rows_[slot] = row;
    counts_[slot] = spill_ + 1;
  } else {
    // Misra-Gries swap with the first spill-level entry; slot order is
    // identical to the former first-invalid / first-at-spill walk.
    std::size_t swap_slot = cfg_.entries;
    for (std::size_t i = 0; i < cfg_.entries; ++i) {
      if (counts_[i] <= spill_) {
        swap_slot = i;
        break;
      }
    }
    if (swap_slot == cfg_.entries) {
      ++spill_;
      return;
    }
    slot = swap_slot;
    rows_[slot] = row;
    counts_[slot] = spill_ + 1;
  }

  if (counts_[slot] >= cfg_.row_threshold) {
    mem::MitigationAction action;
    action.kind = mem::MitigationAction::Kind::kActNeighbors;
    action.row = row;
    action.suspect = row;
    out.push_back(action);
    // Neighbours restored; the estimate restarts at the spill floor.
    counts_[slot] = spill_;
  }
}

void Graphene::on_activates(const dram::RowId* rows, std::size_t n,
                             const mem::MitigationContext& ctx,
                             mem::ActionBuffer& out) {
  // Devirtualized lane kernel: one virtual call per bank lane instead
  // of one per ACT; decisions are identical to per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    Graphene::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Graphene::on_refresh(const mem::MitigationContext& ctx,
                          mem::ActionBuffer&) {
  if (!ctx.window_start) return;
  live_ = 0;
  spill_ = 0;
}

std::uint64_t Graphene::state_bits() const noexcept {
  const unsigned row_bits = util::bits_for(cfg_.rows_per_bank);
  const unsigned count_bits = util::bits_for(cfg_.row_threshold + 1);
  return cfg_.entries * (row_bits + count_bits + 1) + count_bits;
}

mem::BankMitigationFactory make_graphene_factory(GrapheneConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Graphene>(config, rng);
  };
}

}  // namespace tvp::mitigation
