#include "tvp/mitigation/graphene.hpp"

#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::mitigation {

Graphene::Graphene(GrapheneConfig config, util::Rng) : cfg_(config) {
  if (cfg_.entries == 0) throw std::invalid_argument("Graphene: zero capacity");
  if (cfg_.row_threshold == 0)
    throw std::invalid_argument("Graphene: zero threshold");
  if (cfg_.rows_per_bank == 0)
    throw std::invalid_argument("Graphene: zero rows_per_bank");
  entries_.assign(cfg_.entries, Entry{});
  index_.reserve(cfg_.entries * 2);
}

void Graphene::on_activate(dram::RowId row, const mem::MitigationContext&,
                           mem::ActionBuffer& out) {
  Entry* entry = nullptr;
  const auto it = index_.find(row);
  if (it != index_.end()) {
    entry = &entries_[it->second];
    ++entry->count;
  } else {
    // Free slot, else Misra-Gries swap with a spill-level entry.
    std::size_t slot = entries_.size();
    std::size_t swap_slot = entries_.size();
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (!entries_[i].valid) {
        slot = i;
        break;
      }
      if (entries_[i].count <= spill_ && swap_slot == entries_.size())
        swap_slot = i;
    }
    if (slot != entries_.size()) {
      entries_[slot] = Entry{row, spill_ + 1, true};
      index_.emplace(row, slot);
      entry = &entries_[slot];
    } else if (swap_slot != entries_.size()) {
      index_.erase(entries_[swap_slot].row);
      entries_[swap_slot] = Entry{row, spill_ + 1, true};
      index_.emplace(row, swap_slot);
      entry = &entries_[swap_slot];
    } else {
      ++spill_;
      return;
    }
  }

  if (entry->count >= cfg_.row_threshold) {
    mem::MitigationAction action;
    action.kind = mem::MitigationAction::Kind::kActNeighbors;
    action.row = row;
    action.suspect = row;
    out.push_back(action);
    // Neighbours restored; the estimate restarts at the spill floor.
    entry->count = spill_;
  }
}

void Graphene::on_activates(const mem::BatchedAct* acts, std::size_t n,
                             const mem::MitigationContext& ctx,
                             mem::ActionBuffer& out) {
  // Devirtualized batch loop: one virtual call per same-bank span
  // instead of one per ACT; decisions and RNG draws are identical to
  // per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    Graphene::on_activate(acts[i].row, ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Graphene::on_refresh(const mem::MitigationContext& ctx,
                          mem::ActionBuffer&) {
  if (!ctx.window_start) return;
  for (auto& e : entries_) e.valid = false;
  index_.clear();
  spill_ = 0;
}

std::uint64_t Graphene::state_bits() const noexcept {
  const unsigned row_bits = util::bits_for(cfg_.rows_per_bank);
  const unsigned count_bits = util::bits_for(cfg_.row_threshold + 1);
  return cfg_.entries * (row_bits + count_bits + 1) + count_bits;
}

mem::BankMitigationFactory make_graphene_factory(GrapheneConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Graphene>(config, rng);
  };
}

}  // namespace tvp::mitigation
