// TWiCe — Time Window Counters (Lee et al., ISCA 2019).
//
// A pruned counter table: every activated row gets a counter; at each
// refresh-interval boundary, entries whose count has not kept pace with
// the minimum rate an attack needs (count < th_PI * life) are pruned —
// TWiCe's proof shows no dangerous row can be pruned. When a counter
// reaches the row threshold (flip threshold / 4, accounting for two
// aggressors and window phase), the row's neighbours are refreshed
// deterministically. Accurate and near-zero overhead, but the table is
// a CAM, which makes the hardware enormous (Table III: 740x PARA on
// DDR4, 9904x on DDR3).
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct TwiceConfig {
  /// CAM capacity per bank; sized from the pruning analysis (the
  /// harmonic bound keeps live entries far below this).
  std::size_t entries = 560;
  /// Deterministic mitigation threshold: flip_threshold / 4.
  std::uint32_t row_threshold = 139'000 / 4;
  /// Pruning slope th_PI: minimum activations per interval of life an
  /// entry must sustain; ceil(row_threshold / RefInt).
  std::uint32_t pruning_slope = 5;
  std::uint32_t refresh_intervals = 8192;
  dram::RowId rows_per_bank = 131072;
};

class Twice final : public mem::IBankMitigation {
 public:
  Twice(TwiceConfig config, util::Rng rng);

  const char* name() const noexcept override { return "TWiCe"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext& ctx,
                  mem::ActionBuffer& out) override;
  std::uint64_t state_bits() const noexcept override;

  std::size_t live_entries() const noexcept { return live_; }
  std::size_t peak_live_entries() const noexcept { return peak_live_; }
  /// ACTs that could not be tracked because the table overflowed; must
  /// stay 0 for the safety proof to hold (tested).
  std::uint64_t overflow_drops() const noexcept { return overflow_drops_; }

 private:
  TwiceConfig cfg_;
  // The hardware CAM, laid out as structure-of-arrays: live entries are
  // the dense prefix [0, live_) of three parallel columns, so the
  // per-ACT associative match is a SIMD sweep of the row column
  // (util::find_u32) instead of a hash lookup. Pruning swap-compacts
  // the prefix; TWiCe draws no randomness and on_refresh emits no
  // actions, so entry order is unobservable and compaction is safe.
  std::vector<dram::RowId> rows_;
  std::vector<std::uint32_t> counts_;
  std::vector<std::uint32_t> lifes_;  // completed intervals since allocation
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
  std::uint64_t overflow_drops_ = 0;
};

mem::BankMitigationFactory make_twice_factory(TwiceConfig config = {});

}  // namespace tvp::mitigation
