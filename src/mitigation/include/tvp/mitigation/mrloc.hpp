// MRLoc — Mitigating Row-hammering based on memory Locality
// (You & Yang, DAC 2019).
//
// Keeps a FIFO queue of recently implicated victim rows. When a victim
// re-appears while still queued, it is refreshed with a probability
// weighted by its queue recency (more recent -> more likely): locality
// concentrates the probability budget on rows under active pressure.
// Overhead ends up close to PARA's and the technique remains vulnerable
// to multi-aggressor patterns (the queue thrashes, so the weighted boost
// never engages — Table III: vulnerable = yes).
//
// The queue is a flat contiguous array (oldest first) rather than a
// linked structure: the membership scan — two per ACT, the simulator's
// former hottest loop — is a vectorizable sweep of at most queue_entries
// row ids, and erase/evict are single memmoves. The recency-weighted
// probabilities for the steady (full-queue) state come from a
// precomputed table, so the hot path performs no division.
#pragma once

#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/fixed_prob.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct MrLocConfig {
  std::size_t queue_entries = 16;
  /// Probability for the least recent queued victim...
  util::FixedProb p_min = util::FixedProb::from_double(0.0002);
  /// ...ramping linearly to the most recent one.
  util::FixedProb p_max = util::FixedProb::from_double(0.0012);
  dram::RowId rows_per_bank = 131072;
};

class MrLoc final : public mem::IBankMitigation {
 public:
  MrLoc(MrLocConfig config, util::Rng rng);

  const char* name() const noexcept override { return "MRLoc"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext&,
                  mem::ActionBuffer&) override {}
  std::uint64_t state_bits() const noexcept override;

  std::size_t queue_size() const noexcept { return queue_.size(); }
  /// The probability assigned to queue depth @p depth (0 = oldest) at
  /// the current queue size — exposed so tests can pin the recency ramp,
  /// including the degenerate single-entry queue.
  util::FixedProb probability_at(std::size_t depth) const;

 private:
  void observe_victim(dram::RowId victim, dram::RowId aggressor,
                      mem::ActionBuffer& out);
  std::uint64_t raw_probability(std::size_t depth, std::size_t size) const;

  MrLocConfig cfg_;
  util::BufferedRng rng_;
  std::vector<dram::RowId> queue_;       // [0] = oldest, back = most recent
  std::vector<std::uint64_t> full_lut_;  // raw prob per depth, full queue
};

mem::BankMitigationFactory make_mrloc_factory(MrLocConfig config = {});

}  // namespace tvp::mitigation
