// CAT — Counter-based Adaptive Tree (Seyedzadeh et al., ISCA 2018;
// refined as CAT-TWO [10]).
//
// The paper's Section II describes this family as the first attempt to
// shrink tabled counters: a binary tree over the row-address space whose
// unbalanced shape adapts to the access distribution. Each leaf counts
// the activations of the row range it covers; when a leaf accumulates a
// split quantum of activations it is split (if node budget remains), so
// frequently hammered regions get tracked at ever finer granularity
// until a single-row leaf deterministically triggers act_n.
//
// The paper also states its weakness: "An attacker might fill all the
// levels of the tree to make it balanced and saturated before it reaches
// the levels where it would track the aggressor rows precisely." When
// the node budget is exhausted, a coarse leaf crossing the threshold
// cannot name an aggressor row — the defence is blind. The
// extension_tree bench reproduces exactly that failure.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct CatConfig {
  /// Total tree nodes per bank ("no less than 1 KB per bank", Section
  /// II; 341 nodes of ~4.5 B keep that claim honest).
  std::uint32_t node_budget = 341;
  /// Deterministic single-row mitigation threshold (flip threshold / 4).
  std::uint32_t trigger_threshold = 139'000 / 4;
  /// Activations a leaf absorbs before it splits. The default
  /// trigger/ (2 * depth) keeps the worst-case untracked accumulation
  /// below trigger/2 on the way down (CAT's safety argument).
  std::uint32_t split_quantum = 139'000 / 4 / 34;
  dram::RowId rows_per_bank = 131072;  ///< must be a power of two
};

class Cat final : public mem::IBankMitigation {
 public:
  Cat(CatConfig config, util::Rng rng);

  const char* name() const noexcept override { return "CAT"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext& ctx,
                  mem::ActionBuffer& out) override;
  std::uint64_t state_bits() const noexcept override;

  std::uint32_t nodes_used() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  /// Times a coarse (multi-row) leaf crossed the trigger threshold while
  /// the tree was saturated — each is a mitigation the defence could not
  /// perform (the Section II attack succeeding).
  std::uint64_t blind_triggers() const noexcept { return blind_triggers_; }

 private:
  struct Node {
    std::uint32_t count = 0;
    std::int32_t left = -1;   ///< child indices; -1 = leaf
    std::int32_t right = -1;
    std::uint8_t depth = 0;   ///< 0 = root (whole bank)
  };

  void reset_tree();

  CatConfig cfg_;
  std::vector<Node> nodes_;
  std::uint8_t max_depth_;
  std::uint64_t blind_triggers_ = 0;
};

mem::BankMitigationFactory make_cat_factory(CatConfig config = {});

}  // namespace tvp::mitigation
