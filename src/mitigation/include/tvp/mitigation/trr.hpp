// In-DRAM Target Row Refresh (TRR) with optional DDR5-style RFM —
// extension baseline.
//
// Production DDR4 devices shipped "TRR": a tiny in-DRAM sampler tracks a
// handful of candidate aggressor rows; when a refresh opportunity comes
// (REF, or in DDR5 an explicit RFM command that the controller must
// issue after every RAAIMT activations), the device refreshes the
// victims of the sampled rows. TRRespass showed that attacks with more
// simultaneous aggressors than sampler entries slip through — our
// many-sided attack generator reproduces exactly that (see the
// extension_attacks bench). This model lets the repository demonstrate
// the weakness the academic trackers (including TiVaPRoMi) do not have.
//
// Sampler policy: frequency-biased reservoir — an activation of an
// already-sampled row increments its score; an unsampled activation
// replaces the lowest-scoring entry with probability 1/(score+1).
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct TrrConfig {
  std::uint32_t sampler_entries = 4;   ///< typical shipped TRR size class
  std::uint32_t victims_per_ref = 2;   ///< act_n budget per refresh opportunity
  bool rfm_enabled = false;            ///< DDR5 refresh-management commands
  std::uint32_t raaimt = 64;           ///< ACTs per bank between RFMs
  dram::RowId rows_per_bank = 131072;
};

class Trr final : public mem::IBankMitigation {
 public:
  Trr(TrrConfig config, util::Rng rng);

  const char* name() const noexcept override {
    return cfg_.rfm_enabled ? "TRR+RFM" : "TRR";
  }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext& ctx,
                  mem::ActionBuffer& out) override;
  std::uint64_t state_bits() const noexcept override;

  std::uint64_t rfm_commands() const noexcept { return rfm_commands_; }

 private:
  struct Sample {
    dram::RowId row = 0;
    std::uint32_t score = 0;
    bool valid = false;
  };

  void refresh_opportunity(mem::ActionBuffer& out);

  TrrConfig cfg_;
  util::BufferedRng rng_;
  std::vector<Sample> sampler_;
  std::uint32_t raa_ = 0;  ///< rolling accumulated ACT count (RFM)
  std::uint64_t rfm_commands_ = 0;
};

mem::BankMitigationFactory make_trr_factory(TrrConfig config = {});

}  // namespace tvp::mitigation
