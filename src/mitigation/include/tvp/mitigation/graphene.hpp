// Graphene (Park et al., MICRO 2020) — extension baseline.
//
// Published one year before TiVaPRoMi's venue year closed the gap
// between counters and probabilistic schemes from the other side:
// a Misra-Gries frequent-item summary needs only ~(acts per window /
// threshold) counters to *deterministically* catch every row that could
// reach the Row-Hammer threshold. It is not part of the paper's Table
// III; we include it so the design space around TiVaPRoMi is complete
// (see the extension_frontier bench).
//
// Algorithm per bank and refresh window:
//  * table of k (row, count) entries plus one spillover counter s;
//  * ACT of a tracked row: count++;
//  * ACT of an untracked row: take a free slot with count = s + 1, else
//    replace an entry whose count equals s (Misra-Gries swap), else s++;
//  * count reaching the threshold: act_n, and the count restarts at s;
//  * window start: everything resets.
// Guarantee: any row with more than `threshold` activations in a window
// is in the table when it crosses (the summary's frequent-item bound).
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct GrapheneConfig {
  /// Entries per bank; must exceed (max acts per window) / threshold
  /// (64 covers DDR4: 165 * 8192 / 34750 ~ 39).
  std::size_t entries = 64;
  /// Deterministic mitigation threshold (flip_threshold / 4).
  std::uint32_t row_threshold = 139'000 / 4;
  dram::RowId rows_per_bank = 131072;
};

class Graphene final : public mem::IBankMitigation {
 public:
  Graphene(GrapheneConfig config, util::Rng rng);

  const char* name() const noexcept override { return "Graphene"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext& ctx,
                  mem::ActionBuffer& out) override;
  std::uint64_t state_bits() const noexcept override;

  std::uint32_t spillover() const noexcept { return spill_; }
  std::size_t tracked() const noexcept { return live_; }

 private:
  GrapheneConfig cfg_;
  // Structure-of-arrays summary: tracked entries are the dense prefix
  // [0, live_) of two parallel columns (slots are taken in index order,
  // Misra-Gries swaps overwrite a slot in place, and entries only
  // invalidate at a window reset — so validity is positional). The
  // per-ACT associative match is a SIMD sweep of the row column
  // (util::find_u32), the simulation stand-in for the hardware CAM.
  std::vector<dram::RowId> rows_;
  std::vector<std::uint32_t> counts_;
  std::size_t live_ = 0;
  std::uint32_t spill_ = 0;
};

mem::BankMitigationFactory make_graphene_factory(GrapheneConfig config = {});

}  // namespace tvp::mitigation
