// PRAC — Per-Row Activation Counting (JEDEC DDR5 update, 2024) —
// extension baseline.
//
// The endpoint of the counter lineage this paper argues against on area
// grounds: the counters move *into the DRAM array itself* (one per row,
// updated during the row cycle), so controller-side storage drops to
// zero and the device signals back-pressure (ALERT) when a row needs
// mitigation. With a per-row counter there is no tracker to evade and
// the trigger threshold can be derated far below the weakest cell
// (solving the A6 weak-row margin problem). The costs — array area,
// extended row cycle, ALERT back-off bandwidth — are outside this
// simulator's scope; we model the protection semantics and count the
// ALERT-driven mitigations.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct PracConfig {
  dram::RowId rows_per_bank = 131072;
  std::uint32_t refresh_intervals = 8192;
  /// Derated trigger: flip threshold / 8 by default (headroom for weak
  /// rows and multi-sided pressure; PRAC deployments derate aggressively
  /// because per-row counting makes false positives cheap and rare).
  std::uint32_t row_threshold = 139'000 / 8;
};

class Prac final : public mem::IBankMitigation {
 public:
  Prac(PracConfig config, util::Rng rng);

  const char* name() const noexcept override { return "PRAC"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext& ctx,
                  mem::ActionBuffer& out) override;
  /// Controller-side state: none — the counters live in the array.
  std::uint64_t state_bits() const noexcept override { return 0; }

  /// ALERT events (each one costs the channel a back-off window in a
  /// real system; reported so benches can price the protection).
  std::uint64_t alerts() const noexcept { return alerts_; }
  /// In-DRAM storage the array pays (bits), for honest comparisons.
  std::uint64_t in_dram_bits() const noexcept;

 private:
  PracConfig cfg_;
  std::vector<std::uint32_t> counts_;
  std::uint64_t alerts_ = 0;
};

mem::BankMitigationFactory make_prac_factory(PracConfig config = {});

}  // namespace tvp::mitigation
