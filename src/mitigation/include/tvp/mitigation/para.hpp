// PARA — Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).
//
// The stateless baseline: on every ACT, with a small static probability
// p, one randomly chosen neighbour of the activated row is refreshed.
// p >= 0.001 is considered effective (Section II). Its weakness is the
// static probability: the refresh chance per aggressor activation never
// escalates, and every benign activation pays the same false-positive
// tax.
#pragma once

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/fixed_prob.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct ParaConfig {
  util::FixedProb p = util::FixedProb::from_double(0.001);
  dram::RowId rows_per_bank = 131072;
};

class Para final : public mem::IBankMitigation {
 public:
  Para(ParaConfig config, util::Rng rng);

  const char* name() const noexcept override { return "PARA"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext&,
                  mem::ActionBuffer&) override {}
  /// Stateless apart from the 32-bit LFSR.
  std::uint64_t state_bits() const noexcept override { return 32; }

 private:
  ParaConfig cfg_;
  util::BufferedRng rng_;
};

mem::BankMitigationFactory make_para_factory(ParaConfig config = {});

}  // namespace tvp::mitigation
