// CRA — Counter-based Row Activation (Kim, Nair, Qureshi, CAL 2015).
//
// The brute-force tabled counter: one dedicated counter per row (stored
// in DRAM in the original proposal because tens of KBs to MBs per bank
// cannot live in the controller). A row reaching the threshold gets its
// neighbours refreshed deterministically and the counter restarts; a
// row's counter is cleared when the row itself is refreshed.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct CraConfig {
  dram::RowId rows_per_bank = 131072;
  std::uint32_t refresh_intervals = 8192;
  /// Deterministic mitigation threshold: flip_threshold / 4.
  std::uint32_t row_threshold = 139'000 / 4;
};

class Cra final : public mem::IBankMitigation {
 public:
  Cra(CraConfig config, util::Rng rng);

  const char* name() const noexcept override { return "CRA"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext& ctx,
                  mem::ActionBuffer& out) override;
  std::uint64_t state_bits() const noexcept override;

  std::uint32_t counter(dram::RowId row) const { return counts_.at(row); }

 private:
  CraConfig cfg_;
  std::vector<std::uint32_t> counts_;  // one per row
};

mem::BankMitigationFactory make_cra_factory(CraConfig config = {});

}  // namespace tvp::mitigation
