// ProHit (Son et al., DAC 2017).
//
// Tracks *victim* rows of frequently activated rows in two small tables:
// a cold (candidate) table and a hot (priority) table. Insertion into
// cold and promotion toward the top of hot are probabilistic; at every
// refresh interval the top hot entry is refreshed and retired. More
// robust than PARA against sequential multi-aggressor patterns, at the
// price of a higher activation overhead and false-positive rate
// (Table III: 0.6 % overhead, 0.34 % FPR).
#pragma once

#include <optional>
#include <vector>

#include "tvp/mem/mitigation.hpp"
#include "tvp/util/fixed_prob.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mitigation {

struct ProHitConfig {
  std::size_t hot_entries = 4;
  std::size_t cold_entries = 8;
  /// Probability that a brand-new victim enters the cold table.
  util::FixedProb insert_prob = util::FixedProb::pow2(8);  // 2^-8
  /// Probability that a cold hit promotes into hot / a hot hit moves up.
  util::FixedProb promote_prob = util::FixedProb::pow2(6);  // 2^-6
  dram::RowId rows_per_bank = 131072;
};

class ProHit final : public mem::IBankMitigation {
 public:
  ProHit(ProHitConfig config, util::Rng rng);

  const char* name() const noexcept override { return "ProHit"; }
  void on_activate(dram::RowId row, const mem::MitigationContext& ctx,
                   mem::ActionBuffer& out) override;
  void on_activates(const dram::RowId* rows, std::size_t n,
                    const mem::MitigationContext& ctx,
                    mem::ActionBuffer& out) override;
  void on_refresh(const mem::MitigationContext& ctx,
                  mem::ActionBuffer& out) override;
  std::uint64_t state_bits() const noexcept override;

  std::size_t hot_size() const noexcept { return hot_.size(); }
  std::size_t cold_size() const noexcept { return cold_.size(); }

 private:
  struct Victim {
    dram::RowId row;      // victim to refresh
    dram::RowId suspect;  // aggressor that implicated it
  };

  void observe_victim(dram::RowId victim, dram::RowId aggressor);
  static std::optional<std::size_t> find(const std::vector<Victim>& table,
                                         dram::RowId row) noexcept;

  ProHitConfig cfg_;
  util::BufferedRng rng_;
  std::vector<Victim> hot_;   // hot_[0] is the top (next to refresh)
  std::vector<Victim> cold_;  // cold_[0] is the oldest
};

mem::BankMitigationFactory make_prohit_factory(ProHitConfig config = {});

}  // namespace tvp::mitigation
