#include "tvp/mitigation/cra.hpp"

#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"
#include "tvp/util/scan.hpp"

namespace tvp::mitigation {

Cra::Cra(CraConfig config, util::Rng) : cfg_(config) {
  if (cfg_.rows_per_bank == 0 || cfg_.refresh_intervals == 0)
    throw std::invalid_argument("Cra: zero geometry");
  if (cfg_.row_threshold == 0)
    throw std::invalid_argument("Cra: zero threshold");
  if (cfg_.rows_per_bank % cfg_.refresh_intervals != 0)
    throw std::invalid_argument("Cra: rows must be a multiple of RefInt");
  counts_.assign(cfg_.rows_per_bank, 0);
}

void Cra::on_activate(dram::RowId row, const mem::MitigationContext&,
                      mem::ActionBuffer& out) {
  if (++counts_[row] < cfg_.row_threshold) return;
  counts_[row] = 0;
  mem::MitigationAction action;
  action.kind = mem::MitigationAction::Kind::kActNeighbors;
  action.row = row;
  action.suspect = row;
  out.push_back(action);
}

void Cra::on_activates(const dram::RowId* rows, std::size_t n,
                        const mem::MitigationContext& ctx,
                        mem::ActionBuffer& out) {
  // Devirtualized lane kernel. The counter table spans every row of the
  // bank (the lane's accesses scatter across it), so the next few
  // counters are prefetched ahead of the increment — the lane hands us
  // the future rows for free.
  constexpr std::size_t kPrefetchDist = 8;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDist < n)
      util::prefetch_read(&counts_[rows[i + kPrefetchDist]]);
    const std::size_t before = out.size();
    Cra::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Cra::on_refresh(const mem::MitigationContext& ctx,
                     mem::ActionBuffer&) {
  // Counters of the rows refreshed this interval restart (their victims'
  // charge is fresh again). CRA assumes the sequential slot mapping.
  const dram::RowId rpi = cfg_.rows_per_bank / cfg_.refresh_intervals;
  const dram::RowId base = ctx.interval_in_window * rpi;
  for (dram::RowId r = base; r < base + rpi; ++r) counts_[r] = 0;
}

std::uint64_t Cra::state_bits() const noexcept {
  return static_cast<std::uint64_t>(cfg_.rows_per_bank) *
         util::bits_for(cfg_.row_threshold + 1);
}

mem::BankMitigationFactory make_cra_factory(CraConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Cra>(config, rng);
  };
}

}  // namespace tvp::mitigation
