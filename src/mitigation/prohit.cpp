#include "tvp/mitigation/prohit.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::mitigation {

ProHit::ProHit(ProHitConfig config, util::Rng rng) : cfg_(config), rng_(rng) {
  if (cfg_.hot_entries == 0 || cfg_.cold_entries == 0)
    throw std::invalid_argument("ProHit: zero table capacity");
  if (cfg_.rows_per_bank == 0)
    throw std::invalid_argument("ProHit: zero rows_per_bank");
  hot_.reserve(cfg_.hot_entries);
  cold_.reserve(cfg_.cold_entries);
}

std::optional<std::size_t> ProHit::find(const std::vector<Victim>& table,
                                        dram::RowId row) noexcept {
  for (std::size_t i = 0; i < table.size(); ++i)
    if (table[i].row == row) return i;
  return std::nullopt;
}

void ProHit::observe_victim(dram::RowId victim, dram::RowId aggressor) {
  if (const auto pos = find(hot_, victim)) {
    hot_[*pos].suspect = aggressor;
    // Probabilistic promotion one step toward the top.
    if (*pos > 0 && rng_.bernoulli_q32(cfg_.promote_prob.raw()))
      std::swap(hot_[*pos], hot_[*pos - 1]);
    return;
  }
  if (const auto pos = find(cold_, victim)) {
    cold_[*pos].suspect = aggressor;
    if (rng_.bernoulli_q32(cfg_.promote_prob.raw())) {
      const Victim promoted = cold_[*pos];
      cold_.erase(cold_.begin() + static_cast<std::ptrdiff_t>(*pos));
      if (hot_.size() == cfg_.hot_entries) {
        // Hot bottom is demoted back to cold (FIFO tail).
        cold_.push_back(hot_.back());
        hot_.pop_back();
      }
      hot_.push_back(promoted);
    }
    return;
  }
  if (rng_.bernoulli_q32(cfg_.insert_prob.raw())) {
    if (cold_.size() == cfg_.cold_entries) cold_.erase(cold_.begin());
    cold_.push_back(Victim{victim, aggressor});
  }
}

void ProHit::on_activate(dram::RowId row, const mem::MitigationContext&,
                         mem::ActionBuffer& out) {
  (void)out;
  if (row > 0) observe_victim(row - 1, row);
  if (row + 1 < cfg_.rows_per_bank) observe_victim(row + 1, row);
}

void ProHit::on_activates(const dram::RowId* rows, std::size_t n,
                           const mem::MitigationContext& ctx,
                           mem::ActionBuffer& out) {
  // Devirtualized batch loop: one virtual call per same-bank span
  // instead of one per ACT; decisions and RNG draws are identical to
  // per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    ProHit::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void ProHit::on_refresh(const mem::MitigationContext&,
                        mem::ActionBuffer& out) {
  if (hot_.empty()) return;
  const Victim top = hot_.front();
  hot_.erase(hot_.begin());
  mem::MitigationAction action;
  action.kind = mem::MitigationAction::Kind::kActRow;
  action.row = top.row;
  action.suspect = top.suspect;
  out.push_back(action);
}

std::uint64_t ProHit::state_bits() const noexcept {
  // Each entry stores a victim row address (+ valid); two tables.
  const std::uint64_t entry_bits = util::bits_for(cfg_.rows_per_bank) + 1;
  return (cfg_.hot_entries + cfg_.cold_entries) * entry_bits;
}

mem::BankMitigationFactory make_prohit_factory(ProHitConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<ProHit>(config, rng);
  };
}

}  // namespace tvp::mitigation
