#include "tvp/mitigation/para.hpp"

#include <memory>
#include <stdexcept>

namespace tvp::mitigation {

Para::Para(ParaConfig config, util::Rng rng) : cfg_(config), rng_(rng) {
  if (cfg_.rows_per_bank == 0)
    throw std::invalid_argument("Para: zero rows_per_bank");
}

void Para::on_activate(dram::RowId row, const mem::MitigationContext&,
                       mem::ActionBuffer& out) {
  if (!rng_.bernoulli_q32(cfg_.p.raw())) return;
  // Pick one side at random; fall back to the other at the array edge.
  const bool up = (rng_.next() & 1) != 0;
  dram::RowId neighbor;
  if (up && row + 1 < cfg_.rows_per_bank)
    neighbor = row + 1;
  else if (row > 0)
    neighbor = row - 1;
  else
    neighbor = row + 1;

  mem::MitigationAction action;
  action.kind = mem::MitigationAction::Kind::kActRow;
  action.row = neighbor;
  action.suspect = row;
  out.push_back(action);
}

void Para::on_activates(const dram::RowId* rows, std::size_t n,
                         const mem::MitigationContext& ctx,
                         mem::ActionBuffer& out) {
  // Devirtualized batch loop: one virtual call per same-bank span
  // instead of one per ACT; decisions and RNG draws are identical to
  // per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    Para::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

mem::BankMitigationFactory make_para_factory(ParaConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Para>(config, rng);
  };
}

}  // namespace tvp::mitigation
