#include "tvp/mitigation/twice.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"
#include "tvp/util/scan.hpp"

namespace tvp::mitigation {

Twice::Twice(TwiceConfig config, util::Rng) : cfg_(config) {
  if (cfg_.entries == 0) throw std::invalid_argument("Twice: zero capacity");
  if (cfg_.row_threshold == 0 || cfg_.pruning_slope == 0)
    throw std::invalid_argument("Twice: zero threshold");
  if (cfg_.rows_per_bank == 0 || cfg_.refresh_intervals == 0)
    throw std::invalid_argument("Twice: zero geometry");
  rows_.assign(cfg_.entries, 0);
  counts_.assign(cfg_.entries, 0);
  lifes_.assign(cfg_.entries, 0);
}

void Twice::on_activate(dram::RowId row, const mem::MitigationContext&,
                        mem::ActionBuffer& out) {
  // SIMD sweep of the dense row column — the simulation stand-in for
  // the hardware CAM's single-cycle associative match.
  const std::size_t hit = util::find_u32(rows_.data(), live_, row);
  if (hit != live_) {
    if (++counts_[hit] >= cfg_.row_threshold) {
      mem::MitigationAction action;
      action.kind = mem::MitigationAction::Kind::kActNeighbors;
      action.row = row;
      action.suspect = row;
      out.push_back(action);
      // Neighbours restored; counting starts over for this aggressor.
      counts_[hit] = 0;
      lifes_[hit] = 0;
    }
    return;
  }
  if (live_ == cfg_.entries) {
    // Table exhausted: TWiCe's sizing analysis says this cannot happen;
    // record it so the tests can assert the guarantee.
    ++overflow_drops_;
    return;
  }
  rows_[live_] = row;
  counts_[live_] = 1;
  lifes_[live_] = 0;
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
}

void Twice::on_activates(const dram::RowId* rows, std::size_t n,
                          const mem::MitigationContext& ctx,
                          mem::ActionBuffer& out) {
  // Devirtualized lane kernel: one virtual call per bank lane instead
  // of one per ACT; decisions are identical to per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    Twice::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Twice::on_refresh(const mem::MitigationContext& ctx,
                       mem::ActionBuffer&) {
  if (ctx.window_start) {
    live_ = 0;
    return;
  }
  // Age every live entry and prune those that cannot reach
  // row_threshold at their pace: an entry must sustain at least
  // pruning_slope activations per interval of life (TWiCe's validity
  // condition). Pruned slots are swap-compacted from the back; the
  // swapped-in entry comes from a not-yet-visited position, so the
  // no-advance retry processes every entry exactly once.
  for (std::size_t i = 0; i < live_;) {
    const std::uint32_t life = ++lifes_[i];
    if (counts_[i] < static_cast<std::uint64_t>(cfg_.pruning_slope) * life) {
      --live_;
      rows_[i] = rows_[live_];
      counts_[i] = counts_[live_];
      lifes_[i] = lifes_[live_];
    } else {
      ++i;
    }
  }
}

std::uint64_t Twice::state_bits() const noexcept {
  // row (CAM tag) + count + life + valid, per entry.
  const unsigned row_bits = util::bits_for(cfg_.rows_per_bank);
  const unsigned count_bits = util::bits_for(cfg_.row_threshold + 1);
  const unsigned life_bits = util::bits_for(cfg_.refresh_intervals);
  return static_cast<std::uint64_t>(cfg_.entries) *
         (row_bits + count_bits + life_bits + 1);
}

mem::BankMitigationFactory make_twice_factory(TwiceConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Twice>(config, rng);
  };
}

}  // namespace tvp::mitigation
