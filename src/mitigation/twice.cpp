#include "tvp/mitigation/twice.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::mitigation {

Twice::Twice(TwiceConfig config, util::Rng) : cfg_(config) {
  if (cfg_.entries == 0) throw std::invalid_argument("Twice: zero capacity");
  if (cfg_.row_threshold == 0 || cfg_.pruning_slope == 0)
    throw std::invalid_argument("Twice: zero threshold");
  if (cfg_.rows_per_bank == 0 || cfg_.refresh_intervals == 0)
    throw std::invalid_argument("Twice: zero geometry");
  entries_.assign(cfg_.entries, Entry{});
  free_list_.reserve(cfg_.entries);
  for (std::size_t i = cfg_.entries; i > 0; --i) free_list_.push_back(i - 1);
  index_.reserve(cfg_.entries * 2);
}

void Twice::on_activate(dram::RowId row, const mem::MitigationContext&,
                        mem::ActionBuffer& out) {
  // The hash index is a simulation shortcut for the hardware CAM lookup
  // (single-cycle associative match); behaviour is identical.
  const auto it = index_.find(row);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    ++e.count;
    if (e.count >= cfg_.row_threshold) {
      mem::MitigationAction action;
      action.kind = mem::MitigationAction::Kind::kActNeighbors;
      action.row = row;
      action.suspect = row;
      out.push_back(action);
      // Neighbours restored; counting starts over for this aggressor.
      e.count = 0;
      e.life = 0;
    }
    return;
  }
  if (free_list_.empty()) {
    // Table exhausted: TWiCe's sizing analysis says this cannot happen;
    // record it so the tests can assert the guarantee.
    ++overflow_drops_;
    return;
  }
  const std::size_t slot = free_list_.back();
  free_list_.pop_back();
  entries_[slot] = Entry{row, 1, 0, true};
  index_.emplace(row, slot);
  peak_live_ = std::max(peak_live_, live_entries());
}

void Twice::on_activates(const mem::BatchedAct* acts, std::size_t n,
                          const mem::MitigationContext& ctx,
                          mem::ActionBuffer& out) {
  // Devirtualized batch loop: one virtual call per same-bank span
  // instead of one per ACT; decisions and RNG draws are identical to
  // per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    Twice::on_activate(acts[i].row, ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Twice::on_refresh(const mem::MitigationContext& ctx,
                       mem::ActionBuffer&) {
  if (ctx.window_start) {
    for (auto& e : entries_) e.valid = false;
    index_.clear();
    free_list_.clear();
    for (std::size_t i = cfg_.entries; i > 0; --i) free_list_.push_back(i - 1);
    return;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    if (!e.valid) continue;
    ++e.life;
    // Prune entries that cannot reach row_threshold at their pace: the
    // entry must sustain at least pruning_slope activations per interval
    // of life (TWiCe's validity condition).
    if (e.count < static_cast<std::uint64_t>(cfg_.pruning_slope) * e.life) {
      e.valid = false;
      index_.erase(e.row);
      free_list_.push_back(i);
    }
  }
}

std::uint64_t Twice::state_bits() const noexcept {
  // row (CAM tag) + count + life + valid, per entry.
  const unsigned row_bits = util::bits_for(cfg_.rows_per_bank);
  const unsigned count_bits = util::bits_for(cfg_.row_threshold + 1);
  const unsigned life_bits = util::bits_for(cfg_.refresh_intervals);
  return static_cast<std::uint64_t>(cfg_.entries) *
         (row_bits + count_bits + life_bits + 1);
}

mem::BankMitigationFactory make_twice_factory(TwiceConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Twice>(config, rng);
  };
}

}  // namespace tvp::mitigation
