#include "tvp/mitigation/mrloc.hpp"

#include <cstring>
#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"
#include "tvp/util/scan.hpp"

namespace tvp::mitigation {

MrLoc::MrLoc(MrLocConfig config, util::Rng rng) : cfg_(config), rng_(rng) {
  if (cfg_.queue_entries == 0)
    throw std::invalid_argument("MrLoc: zero queue capacity");
  if (cfg_.rows_per_bank == 0)
    throw std::invalid_argument("MrLoc: zero rows_per_bank");
  if (cfg_.p_max < cfg_.p_min)
    throw std::invalid_argument("MrLoc: p_max below p_min");
  queue_.reserve(cfg_.queue_entries);
  full_lut_.resize(cfg_.queue_entries);
  for (std::size_t d = 0; d < cfg_.queue_entries; ++d)
    full_lut_[d] = raw_probability(d, cfg_.queue_entries);
}

std::uint64_t MrLoc::raw_probability(std::size_t depth,
                                     std::size_t size) const {
  // Recency-weighted: depth 0 = oldest gets p_min, depth size-1 = newest
  // gets p_max, ramping linearly. A single-entry queue is both oldest
  // and newest at once — the ramp degenerates to its midpoint
  // (p_min + p_max) / 2, the limit of the ramp's mean. (Assigning the
  // sole entry the full p_max — the old behaviour — double-counted its
  // recency: one hit in a cold queue was treated as the strongest
  // locality signal the technique can express.)
  const std::uint64_t span = cfg_.p_max.raw() - cfg_.p_min.raw();
  return cfg_.p_min.raw() +
         (size > 1 ? span * depth / (size - 1) : span / 2);
}

util::FixedProb MrLoc::probability_at(std::size_t depth) const {
  if (depth >= queue_.size())
    throw std::out_of_range("MrLoc::probability_at");
  return util::FixedProb::from_raw(
      static_cast<std::uint32_t>(raw_probability(depth, queue_.size())));
}

void MrLoc::observe_victim(dram::RowId victim, dram::RowId aggressor,
                           mem::ActionBuffer& out) {
  const std::size_t n = queue_.size();
  dram::RowId* const q = queue_.data();
  const std::size_t depth = util::find_u32(q, n, victim);
  if (depth != n) {
    const std::uint64_t raw = n == cfg_.queue_entries
                                  ? full_lut_[depth]
                                  : raw_probability(depth, n);
    if (rng_.bernoulli_q32(raw)) {
      mem::MitigationAction action;
      action.kind = mem::MitigationAction::Kind::kActRow;
      action.row = victim;
      action.suspect = aggressor;
      out.push_back(action);
    }
    // Re-insert at the most recent position.
    std::memmove(q + depth, q + depth + 1,
                 (n - 1 - depth) * sizeof(dram::RowId));
    q[n - 1] = victim;
  } else if (n == cfg_.queue_entries) {
    // Full and missing: evict the oldest.
    std::memmove(q, q + 1, (n - 1) * sizeof(dram::RowId));
    q[n - 1] = victim;
  } else {
    queue_.push_back(victim);
  }
}

void MrLoc::on_activate(dram::RowId row, const mem::MitigationContext&,
                        mem::ActionBuffer& out) {
  if (row > 0) observe_victim(row - 1, row, out);
  if (row + 1 < cfg_.rows_per_bank) observe_victim(row + 1, row, out);
}

void MrLoc::on_activates(const dram::RowId* rows, std::size_t n,
                         const mem::MitigationContext&,
                         mem::ActionBuffer& out) {
  // Same decisions and RNG draws as on_activate per element, minus the
  // per-ACT virtual dispatch.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    const dram::RowId row = rows[i];
    if (row > 0) observe_victim(row - 1, row, out);
    if (row + 1 < cfg_.rows_per_bank) observe_victim(row + 1, row, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

std::uint64_t MrLoc::state_bits() const noexcept {
  return cfg_.queue_entries * (util::bits_for(cfg_.rows_per_bank) + 1);
}

mem::BankMitigationFactory make_mrloc_factory(MrLocConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<MrLoc>(config, rng);
  };
}

}  // namespace tvp::mitigation
