#include "tvp/mitigation/mrloc.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::mitigation {

MrLoc::MrLoc(MrLocConfig config, util::Rng rng) : cfg_(config), rng_(rng) {
  if (cfg_.queue_entries == 0)
    throw std::invalid_argument("MrLoc: zero queue capacity");
  if (cfg_.rows_per_bank == 0)
    throw std::invalid_argument("MrLoc: zero rows_per_bank");
  if (cfg_.p_max < cfg_.p_min)
    throw std::invalid_argument("MrLoc: p_max below p_min");
}

void MrLoc::observe_victim(dram::RowId victim, dram::RowId aggressor,
                           mem::ActionBuffer& out) {
  const auto it = std::find(queue_.begin(), queue_.end(), victim);
  if (it != queue_.end()) {
    // Recency-weighted probability: depth 0 = oldest, depth N-1 = newest.
    const auto depth = static_cast<std::size_t>(it - queue_.begin());
    const std::uint64_t span = cfg_.p_max.raw() - cfg_.p_min.raw();
    const std::uint64_t raw =
        cfg_.p_min.raw() +
        (queue_.size() > 1 ? span * depth / (queue_.size() - 1) : span);
    if (rng_.bernoulli_q32(raw)) {
      mem::MitigationAction action;
      action.kind = mem::MitigationAction::Kind::kActRow;
      action.row = victim;
      action.suspect = aggressor;
      out.push_back(action);
    }
    // Re-insert at the most recent position.
    queue_.erase(it);
  } else if (queue_.size() == cfg_.queue_entries) {
    queue_.pop_front();
  }
  queue_.push_back(victim);
}

void MrLoc::on_activate(dram::RowId row, const mem::MitigationContext&,
                        mem::ActionBuffer& out) {
  if (row > 0) observe_victim(row - 1, row, out);
  if (row + 1 < cfg_.rows_per_bank) observe_victim(row + 1, row, out);
}

std::uint64_t MrLoc::state_bits() const noexcept {
  return cfg_.queue_entries * (util::bits_for(cfg_.rows_per_bank) + 1);
}

mem::BankMitigationFactory make_mrloc_factory(MrLocConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<MrLoc>(config, rng);
  };
}

}  // namespace tvp::mitigation
