#include "tvp/mitigation/trr.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::mitigation {

Trr::Trr(TrrConfig config, util::Rng rng) : cfg_(config), rng_(rng) {
  if (cfg_.sampler_entries == 0)
    throw std::invalid_argument("Trr: zero sampler entries");
  if (cfg_.victims_per_ref == 0)
    throw std::invalid_argument("Trr: zero refresh budget");
  if (cfg_.rfm_enabled && cfg_.raaimt == 0)
    throw std::invalid_argument("Trr: zero RAAIMT");
  if (cfg_.rows_per_bank == 0)
    throw std::invalid_argument("Trr: zero rows_per_bank");
  sampler_.assign(cfg_.sampler_entries, Sample{});
}

void Trr::on_activate(dram::RowId row, const mem::MitigationContext&,
                      mem::ActionBuffer& out) {
  // Frequency-biased reservoir sampling.
  Sample* lowest = &sampler_.front();
  bool tracked = false;
  for (auto& s : sampler_) {
    if (s.valid && s.row == row) {
      ++s.score;
      tracked = true;
      break;
    }
    if (!s.valid) {
      s = Sample{row, 1, true};
      tracked = true;
      break;
    }
    if (s.score < lowest->score) lowest = &s;
  }
  if (!tracked && rng_.below(lowest->score + 1) == 0)
    *lowest = Sample{row, 1, true};

  if (cfg_.rfm_enabled && ++raa_ >= cfg_.raaimt) {
    raa_ = 0;
    ++rfm_commands_;
    refresh_opportunity(out);
  }
}

void Trr::on_activates(const dram::RowId* rows, std::size_t n,
                        const mem::MitigationContext& ctx,
                        mem::ActionBuffer& out) {
  // Devirtualized batch loop: one virtual call per same-bank span
  // instead of one per ACT; decisions and RNG draws are identical to
  // per-element on_activate.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t before = out.size();
    Trr::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Trr::refresh_opportunity(mem::ActionBuffer& out) {
  // Refresh the victims of the highest-scoring samples, then retire them.
  for (std::uint32_t budget = 0; budget < cfg_.victims_per_ref; ++budget) {
    Sample* best = nullptr;
    for (auto& s : sampler_)
      if (s.valid && (best == nullptr || s.score > best->score)) best = &s;
    if (best == nullptr) return;
    mem::MitigationAction action;
    action.kind = mem::MitigationAction::Kind::kActNeighbors;
    action.row = best->row;
    action.suspect = best->row;
    out.push_back(action);
    best->valid = false;
  }
}

void Trr::on_refresh(const mem::MitigationContext&,
                     mem::ActionBuffer& out) {
  raa_ = 0;  // REF also resets the RFM accumulation (DDR5 semantics)
  refresh_opportunity(out);
}

std::uint64_t Trr::state_bits() const noexcept {
  const unsigned row_bits = util::bits_for(cfg_.rows_per_bank);
  const unsigned score_bits = 8;
  const unsigned raa_bits = cfg_.rfm_enabled ? util::bits_for(cfg_.raaimt + 1) : 0;
  return cfg_.sampler_entries * (row_bits + score_bits + 1) + raa_bits;
}

mem::BankMitigationFactory make_trr_factory(TrrConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Trr>(config, rng);
  };
}

}  // namespace tvp::mitigation
