#include "tvp/mitigation/prac.hpp"

#include <memory>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"
#include "tvp/util/scan.hpp"

namespace tvp::mitigation {

Prac::Prac(PracConfig config, util::Rng) : cfg_(config) {
  if (cfg_.rows_per_bank == 0 || cfg_.refresh_intervals == 0)
    throw std::invalid_argument("Prac: zero geometry");
  if (cfg_.row_threshold == 0)
    throw std::invalid_argument("Prac: zero threshold");
  if (cfg_.rows_per_bank % cfg_.refresh_intervals != 0)
    throw std::invalid_argument("Prac: rows must be a multiple of RefInt");
  counts_.assign(cfg_.rows_per_bank, 0);
}

void Prac::on_activate(dram::RowId row, const mem::MitigationContext&,
                       mem::ActionBuffer& out) {
  if (++counts_[row] < cfg_.row_threshold) return;
  counts_[row] = 0;
  ++alerts_;  // the device raises ALERT; the back-off refreshes neighbours
  mem::MitigationAction action;
  action.kind = mem::MitigationAction::Kind::kActNeighbors;
  action.row = row;
  action.suspect = row;
  out.push_back(action);
}

void Prac::on_activates(const dram::RowId* rows, std::size_t n,
                         const mem::MitigationContext& ctx,
                         mem::ActionBuffer& out) {
  // Devirtualized lane kernel. The per-row counter table spans the
  // whole bank, so the lane's future rows are prefetched a few ACTs
  // ahead of their increments.
  constexpr std::size_t kPrefetchDist = 8;
  for (std::size_t i = 0; i < n; ++i) {
    if (i + kPrefetchDist < n)
      util::prefetch_read(&counts_[rows[i + kPrefetchDist]]);
    const std::size_t before = out.size();
    Prac::on_activate(rows[i], ctx, out);
    out.stamp_origin(before, static_cast<std::uint32_t>(i));
  }
}

void Prac::on_refresh(const mem::MitigationContext& ctx,
                      mem::ActionBuffer&) {
  // The per-row counter restarts when the row's victims get their
  // scheduled refresh (same slot bookkeeping as CRA's in-DRAM table).
  const dram::RowId rpi = cfg_.rows_per_bank / cfg_.refresh_intervals;
  const dram::RowId base = ctx.interval_in_window * rpi;
  for (dram::RowId r = base; r < base + rpi; ++r) counts_[r] = 0;
}

std::uint64_t Prac::in_dram_bits() const noexcept {
  return static_cast<std::uint64_t>(cfg_.rows_per_bank) *
         util::bits_for(cfg_.row_threshold + 1);
}

mem::BankMitigationFactory make_prac_factory(PracConfig config) {
  return [config](dram::BankId, util::Rng rng) -> std::unique_ptr<mem::IBankMitigation> {
    return std::make_unique<Prac>(config, rng);
  };
}

}  // namespace tvp::mitigation
