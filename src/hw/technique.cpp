#include "tvp/hw/technique.hpp"

#include "tvp/util/bitutil.hpp"

namespace tvp::hw {

std::string_view to_string(Technique technique) noexcept {
  switch (technique) {
    case Technique::kPara: return "PARA";
    case Technique::kProHit: return "ProHit";
    case Technique::kMrLoc: return "MRLoc";
    case Technique::kTwice: return "TWiCe";
    case Technique::kCra: return "CRA";
    case Technique::kLiPRoMi: return "LiPRoMi";
    case Technique::kLoPRoMi: return "LoPRoMi";
    case Technique::kLoLiPRoMi: return "LoLiPRoMi";
    case Technique::kCaPRoMi: return "CaPRoMi";
  }
  return "?";
}

unsigned TechniqueParams::row_bits() const noexcept {
  return util::bits_for(rows_per_bank);
}

unsigned TechniqueParams::interval_bits() const noexcept {
  return util::bits_for(refresh_intervals);
}

}  // namespace tvp::hw
