#include "tvp/hw/area_model.hpp"

#include <cmath>

#include "tvp/util/bitutil.hpp"

namespace tvp::hw {

const char* to_string(Target target) noexcept {
  switch (target) {
    case Target::kDdr4: return "DDR4";
    case Target::kDdr3: return "DDR3";
    case Target::kDdr5: return "DDR5";
  }
  return "?";
}

dram::Timing target_timing(Target target) noexcept {
  switch (target) {
    case Target::kDdr4: return dram::ddr4_timing();
    case Target::kDdr3: return dram::ddr3_timing();
    case Target::kDdr5: return dram::ddr5_timing();
  }
  return dram::ddr4_timing();
}

namespace {

// Calibration constants (LUTs), fitted to the paper's Virtex UltraScale+
// synthesis results (Table III). See area_model.hpp for the cost law.
constexpr double kInterface = 200;       // Fig. 1 controller interface
constexpr double kFsmPerState = 8;

struct EntryCost {
  double base;   // per entry at f = 1
  double widen;  // per entry per (f^2 - 1)
};

constexpr EntryCost kHistoryEntry{150, 3};     // TiVaPRoMi history table
constexpr EntryCost kCounterEntry{245, 78};    // CaPRoMi counter table
constexpr EntryCost kProHitEntry{110, 15};
constexpr EntryCost kMrLocEntry{85, 12};
constexpr EntryCost kTwiceEntry{175, 95};      // CAM entry incl. prune ALU
constexpr double kCraPerRow = 43.44;           // per-row counter + compare

double entry_block(const EntryCost& cost, std::uint32_t entries, std::uint32_t f) {
  const double widen = cost.widen * (static_cast<double>(f) * f - 1.0);
  return entries * (cost.base + widen);
}

struct Datapath {
  double luts;
  std::uint32_t fsm_states;
};

Datapath datapath_for(Technique technique) {
  switch (technique) {
    case Technique::kPara: return {125, 3};    // LFSR + compare + +/-1
    case Technique::kProHit: return {85, 6};   // probabilistic insert/promote
    case Technique::kMrLoc: return {257, 6};   // recency-weighted probability
    case Technique::kTwice: return {508, 6};   // prune ALU + CAM priority enc
    case Technique::kCra: return {0, 3};       // folded into the per-row cost
    case Technique::kLiPRoMi: return {107, 6}; // subtract + scale + compare
    case Technique::kLoPRoMi: return {180, 6}; // + modified priority encoder
    case Technique::kLoLiPRoMi: return {326, 6};  // + dual path select
    case Technique::kCaPRoMi: return {317, 8}; // + cnt*w_log multiplier
  }
  return {0, 0};
}

}  // namespace

std::vector<AreaComponent> area_breakdown(Technique technique, Target target,
                                          const TechniqueParams& params) {
  const CycleBudget budget = cycle_budget(target_timing(target));
  const std::uint32_t raw_f = required_parallelism(technique, params, budget);
  const std::uint32_t f = raw_f == 0 ? 4096 : raw_f;

  const Datapath dp = datapath_for(technique);
  std::vector<AreaComponent> parts;
  auto add = [&parts](const char* name, double luts) {
    parts.push_back(
        AreaComponent{name, static_cast<std::uint64_t>(std::llround(luts))});
  };
  add("controller interface (Fig. 1)", kInterface);
  add("control FSM", kFsmPerState * dp.fsm_states);
  if (dp.luts > 0) add("technique datapath", dp.luts);
  switch (technique) {
    case Technique::kPara:
      break;  // stateless
    case Technique::kProHit:
      add("hot+cold tables",
          entry_block(kProHitEntry, params.prohit_hot + params.prohit_cold, f));
      break;
    case Technique::kMrLoc:
      add("victim queue", entry_block(kMrLocEntry, params.mrloc_queue, f));
      break;
    case Technique::kTwice:
      add("counter CAM", entry_block(kTwiceEntry, params.twice_entries, f));
      break;
    case Technique::kCra:
      add("per-row counters", kCraPerRow * params.rows_per_bank);
      break;
    case Technique::kLiPRoMi:
    case Technique::kLoPRoMi:
    case Technique::kLoLiPRoMi:
      add("history table", entry_block(kHistoryEntry, params.history_entries, f));
      break;
    case Technique::kCaPRoMi:
      add("history table", entry_block(kHistoryEntry, params.history_entries, f));
      add("counter table", entry_block(kCounterEntry, params.counter_entries, f));
      break;
  }
  return parts;
}

AreaEstimate estimate_area(Technique technique, Target target,
                           const TechniqueParams& params) {
  const CycleBudget budget = cycle_budget(target_timing(target));
  const std::uint32_t raw_f = required_parallelism(technique, params, budget);

  AreaEstimate est;
  est.parallelism = raw_f == 0 ? 4096 : raw_f;
  est.luts = 0;
  for (const auto& part : area_breakdown(technique, target, params))
    est.luts += part.luts;
  est.fits_device = est.luts <= kXcvu9pLuts && raw_f != 0;
  return est;
}

double table_bytes_per_bank(Technique technique, const TechniqueParams& params) {
  const double row_bits = params.row_bits();
  const double interval_bits = params.interval_bits();
  switch (technique) {
    case Technique::kPara:
      return 4.0;  // 32-bit LFSR state
    case Technique::kProHit:
      return (params.prohit_hot + params.prohit_cold) * (row_bits + 1) / 8.0;
    case Technique::kMrLoc:
      return params.mrloc_queue * (row_bits + 1) / 8.0;
    case Technique::kTwice: {
      const double count_bits = 16, life_bits = interval_bits, valid = 1;
      return params.twice_entries * (row_bits + count_bits + life_bits + valid) / 8.0;
    }
    case Technique::kCra:
      return params.rows_per_bank * 16.0 / 8.0;
    case Technique::kLiPRoMi:
    case Technique::kLoPRoMi:
    case Technique::kLoLiPRoMi:
      return params.history_entries * (row_bits + interval_bits) / 8.0;
    case Technique::kCaPRoMi:
      // Counter link width follows the linked history table's capacity
      // (core::CounterTable::state_bits uses the same formula).
      return params.history_entries * (row_bits + interval_bits) / 8.0 +
             params.counter_entries *
                 (row_bits + 8 + 1 + util::bits_for(params.history_entries) +
                  1) /
                 8.0;
  }
  return 0.0;
}

}  // namespace tvp::hw
