#include "tvp/hw/cycle_model.hpp"

#include <algorithm>

namespace tvp::hw {

namespace {
constexpr std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) noexcept {
  return (a + b - 1) / b;
}
}  // namespace

FsmCycles fsm_cycles(Technique technique, const TechniqueParams& params,
                     const DatapathWidths& widths) {
  FsmCycles c;
  switch (technique) {
    case Technique::kPara:
      // dispatch, RNG compare, neighbour select/emit.
      c.act = 3;
      c.ref = 1;
      break;
    case Technique::kCra:
      // Direct-indexed counter: dispatch, read-modify-write, compare.
      c.act = 3;
      c.ref = 2;  // slot base computation + clear kick-off
      break;
    case Technique::kProHit:
      // Two victims, each: hot search + cold search + update/swap.
      c.act = 1 + 2 * (ceil_div(params.prohit_hot, widths.table_search) +
                       ceil_div(params.prohit_cold, widths.table_search) + 2);
      c.ref = 3;  // pop top of hot, emit, compact
      break;
    case Technique::kMrLoc:
      // Two victims, each: queue search + weighted decide + reinsert.
      c.act = 1 + 2 * (ceil_div(params.mrloc_queue, widths.table_search) + 2);
      c.ref = 1;
      break;
    case Technique::kTwice:
      // CAM match is associative (1 cycle); update + threshold compare.
      c.act = 4;
      // Pruning walk over the whole table at each interval end.
      c.ref = 2 + ceil_div(params.twice_entries, widths.table_search);
      break;
    case Technique::kLiPRoMi:
    case Technique::kLoPRoMi:
      // Fig. 2: dispatch, sequential history search, weight calculation
      // (subtract + scale for Li; subtract + priority encode for Lo),
      // decide, activate/update.
      c.act = 1 + ceil_div(params.history_entries, widths.history_search) + 2 +
              1 + 1;
      c.ref = 3;  // update interval, window compare, conditional clear
      break;
    case Technique::kLoLiPRoMi:
      // The lin/log path select is folded into the search-hit mux, so
      // the weight state is one cycle shorter than Li/Lo.
      c.act = 1 + ceil_div(params.history_entries, widths.history_search) + 1 +
              1 + 1;
      c.ref = 3;
      break;
    case Technique::kCaPRoMi:
      // Fig. 3: dispatch, history search (link capture), counter-table
      // search/insert via the 4-wide compare array, commit.
      c.act = 1 + ceil_div(params.history_entries, widths.history_search) +
              ceil_div(params.counter_entries, widths.counter_search) + 1;
      // REF: weight, scale, decide, commit per counter entry, then clear.
      c.ref = 2 + 4 * ceil_div(params.counter_entries, widths.counter_walk);
      break;
  }
  return c;
}

CycleBudget cycle_budget(const dram::Timing& timing) noexcept {
  return CycleBudget{timing.act_cycle_budget(), timing.ref_cycle_budget()};
}

bool fits_budget(const FsmCycles& cycles, const CycleBudget& budget) noexcept {
  return cycles.act <= budget.act && cycles.ref <= budget.ref;
}

std::uint32_t required_parallelism(Technique technique,
                                   const TechniqueParams& params,
                                   const CycleBudget& budget) {
  for (std::uint32_t f = 1; f <= 4096; f *= 2) {
    DatapathWidths widths;
    widths.history_search = f;
    widths.counter_search = 4 * f;
    widths.counter_walk = f;
    widths.table_search = f;
    if (fits_budget(fsm_cycles(technique, params, widths), budget)) return f;
  }
  return 0;
}

}  // namespace tvp::hw
