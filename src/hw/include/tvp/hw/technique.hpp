// Enumeration of the nine mitigation techniques the paper evaluates,
// plus the structural parameters the hardware models need about them.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace tvp::hw {

enum class Technique {
  kPara,
  kProHit,
  kMrLoc,
  kTwice,
  kCra,
  kLiPRoMi,
  kLoPRoMi,
  kLoLiPRoMi,
  kCaPRoMi,
};

/// All nine, in the paper's Figure-4 order.
inline constexpr std::array<Technique, 9> kAllTechniques = {
    Technique::kPara,     Technique::kMrLoc,    Technique::kProHit,
    Technique::kTwice,    Technique::kCra,      Technique::kLoPRoMi,
    Technique::kLoLiPRoMi, Technique::kLiPRoMi, Technique::kCaPRoMi,
};

/// The four TiVaPRoMi variants (this paper's contribution).
inline constexpr std::array<Technique, 4> kTiVaPRoMiVariants = {
    Technique::kLiPRoMi, Technique::kLoPRoMi, Technique::kLoLiPRoMi,
    Technique::kCaPRoMi,
};

std::string_view to_string(Technique technique) noexcept;

/// True for LiPRoMi / LoPRoMi / LoLiPRoMi / CaPRoMi.
constexpr bool is_tivapromi(Technique t) noexcept {
  return t == Technique::kLiPRoMi || t == Technique::kLoPRoMi ||
         t == Technique::kLoLiPRoMi || t == Technique::kCaPRoMi;
}

/// Structural parameters shared by the cycle and area models. Defaults
/// are the paper's configuration (Section IV).
struct TechniqueParams {
  std::uint32_t rows_per_bank = 131072;
  std::uint32_t refresh_intervals = 8192;
  std::uint32_t history_entries = 32;   // TiVaPRoMi
  std::uint32_t counter_entries = 64;   // CaPRoMi
  std::uint32_t prohit_hot = 4;
  std::uint32_t prohit_cold = 8;
  std::uint32_t mrloc_queue = 16;
  std::uint32_t twice_entries = 560;

  unsigned row_bits() const noexcept;
  unsigned interval_bits() const noexcept;
};

}  // namespace tvp::hw
