// Analytic FPGA area model (reproduces the LUT columns of Table III and
// the x-axis of Figure 4).
//
// Substitution for the paper's VHDL synthesis on a Virtex UltraScale+
// XCVU9P (see DESIGN.md): each technique's LUT count is composed from
//   * a common memory-controller interface block (Fig. 1),
//   * a control FSM,
//   * a technique-specific datapath (RNG + comparators + arithmetic),
//   * per-entry table logic, whose cost grows with the datapath
//     parallelism f needed to fit the target's cycle budget as
//     entry_base + entry_widen * (f^2 - 1)  —  replicating compare/ALU
//     lanes f-fold and paying ~f^2 for the routing/muxing crossbar.
// f comes from the cycle model: f = 1 fits DDR4 for everything except
// TWiCe's pruning walk (f = 2); the 320 MHz DDR3 controller squeezes the
// budgets to 14/112 cycles, forcing f = 4..8 on the table-based
// techniques ("increasing their parallelism per cycle", Section IV).
//
// The primitive constants are calibrated against the paper's synthesis
// results; with the default TechniqueParams every Table-III LUT figure
// is reproduced within ~2 %. Because the model is structural in the
// table sizes, the ablation benches can vary entry counts and obtain
// meaningful area estimates.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/dram/timing.hpp"
#include "tvp/hw/cycle_model.hpp"
#include "tvp/hw/technique.hpp"

namespace tvp::hw {

/// Synthesis target: the two columns of Table III plus a forward-looking
/// DDR5 port (extension; its 2.4 GHz clock relaxes the budgets, so the
/// serial designs carry over unchanged).
enum class Target { kDdr4, kDdr3, kDdr5 };

const char* to_string(Target target) noexcept;

/// Device timing for a target (DDR4: 1.2 GHz ASIC-style; DDR3: 320 MHz
/// FPGA memory controller; DDR5: 2.4 GHz).
dram::Timing target_timing(Target target) noexcept;

struct AreaEstimate {
  std::uint64_t luts = 0;
  std::uint32_t parallelism = 1;  ///< f used to fit the cycle budget
  bool fits_device = true;        ///< false when above the XCVU9P capacity
};

/// XCVU9P LUT capacity (Section IV notes CRA/TWiCe for DDR3 exceed it).
inline constexpr std::uint64_t kXcvu9pLuts = 1'182'240;

/// LUT estimate for @p technique on @p target.
AreaEstimate estimate_area(Technique technique, Target target,
                           const TechniqueParams& params = {});

/// Named component of an area estimate (for resource reports).
struct AreaComponent {
  const char* name;
  std::uint64_t luts;
};

/// Structural decomposition of estimate_area(): controller interface,
/// FSM, technique datapath, and per-table blocks. The component sum
/// equals the AreaEstimate total (tested).
std::vector<AreaComponent> area_breakdown(Technique technique, Target target,
                                          const TechniqueParams& params = {});

/// Mitigation state per bank in bytes (the Figure-4 x-axis), from the
/// same structural description the simulators use.
double table_bytes_per_bank(Technique technique, const TechniqueParams& params = {});

}  // namespace tvp::hw
