// Executable FSMs for the TiVaPRoMi variants (Fig. 2 and Fig. 3).
//
// fsm_cycles() (cycle_model.hpp) returns closed-form loop lengths; this
// executor actually *walks* the state machines, charging each state its
// micro-op cost, and returns the visited state sequence. The test suite
// asserts that the executed totals equal the closed-form model for every
// variant and datapath width — i.e. the Table II numbers are produced
// twice, by two independent mechanisms, and must agree. The state traces
// also make the benches' Table II output explainable ("where do
// CaPRoMi's 258 REF cycles go?").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tvp/hw/cycle_model.hpp"
#include "tvp/hw/technique.hpp"

namespace tvp::hw {

/// One visited FSM state and the cycles spent in it.
struct FsmStep {
  const char* state;
  std::uint32_t cycles;
};

/// Total cycles of a step trace.
std::uint32_t trace_cycles(const std::vector<FsmStep>& steps) noexcept;

/// Renders "idle(1) -> search in table(32) -> ..." for reports.
std::string trace_to_string(const std::vector<FsmStep>& steps);

/// Walks the FSM of a TiVaPRoMi variant.
class FsmExecutor {
 public:
  /// @p technique must be one of the four TiVaPRoMi variants.
  FsmExecutor(Technique technique, TechniqueParams params,
              DatapathWidths widths = {});

  /// Worst-case loop after an observed ACT (table search misses, full
  /// counter table) — the Fig. 2 path idle -> search -> weight ->
  /// decide -> activate/update, or Fig. 3's search/insert path.
  std::vector<FsmStep> run_act() const;

  /// Loop after an observed REF. For Fig. 2 this is the interval update
  /// + window check (+ flash clear when @p window_start); Fig. 3 walks
  /// the counter table making collective decisions.
  std::vector<FsmStep> run_ref(bool window_start = false) const;

 private:
  Technique technique_;
  TechniqueParams params_;
  DatapathWidths widths_;
};

}  // namespace tvp::hw
