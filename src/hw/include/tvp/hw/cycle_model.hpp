// FSM cycle model (reproduces Table II).
//
// Executes the paper's FSMs (Fig. 2 for the probabilistic variants,
// Fig. 3 for CaPRoMi) state by state, charging each state its micro-op
// latency. The micro-op rates mirror the VHDL implementation the paper
// describes:
//   * history-table search: sequential, 1 entry per cycle;
//   * CaPRoMi counter-table search: 4-wide compare array (the extra
//     parallelism is why CaPRoMi's act loop is bigger in LUTs too);
//   * CaPRoMi REF walk: 4 cycles per counter entry (weight, scale,
//     decide, commit);
//   * weight calculation: subtract + scale for Li/Lo (2 cycles); LoLi
//     folds the path select into the search-hit mux (1 cycle);
//   * REF path for the probabilistic variants: interval update, window
//     compare, conditional flash clear (3 cycles).
//
// The model returns worst-case loop lengths (search misses, full table)
// and checks them against the tRC / tRFC budgets of the target device.
#pragma once

#include <cstdint>

#include "tvp/dram/timing.hpp"
#include "tvp/hw/technique.hpp"

namespace tvp::hw {

/// Cycle counts of one FSM loop from idle back to idle.
struct FsmCycles {
  std::uint32_t act = 0;  ///< loop after an observed ACT command
  std::uint32_t ref = 0;  ///< loop after an observed REF command
};

/// How wide the search/update datapath is (entries processed per cycle).
/// 1 everywhere reproduces the DDR4 numbers; the DDR3 port raises these
/// until the budgets fit (see required_parallelism()).
struct DatapathWidths {
  std::uint32_t history_search = 1;
  std::uint32_t counter_search = 4;  // CaPRoMi's compare array
  std::uint32_t counter_walk = 1;    // entries decided per 4-cycle group
  std::uint32_t table_search = 1;    // ProHit/MRLoc/TWiCe-style searches
};

/// Worst-case FSM loop cycles of @p technique with the given widths.
FsmCycles fsm_cycles(Technique technique, const TechniqueParams& params,
                     const DatapathWidths& widths = {});

/// Cycle budgets implied by a device timing: floor(tRC/tCK) for act,
/// floor(tRFC/tCK) for ref (54 / 420 for DDR4, Section IV).
struct CycleBudget {
  std::uint32_t act = 0;
  std::uint32_t ref = 0;
};
CycleBudget cycle_budget(const dram::Timing& timing) noexcept;

/// True iff the technique's loops fit the budget.
bool fits_budget(const FsmCycles& cycles, const CycleBudget& budget) noexcept;

/// Smallest uniform widening factor that makes the technique fit
/// @p budget (the Section-IV DDR3 port: "increasing their parallelism
/// per cycle"). Returns 1 when the serial design already fits; caps the
/// search at 4096 and returns 0 when even that does not fit.
std::uint32_t required_parallelism(Technique technique,
                                   const TechniqueParams& params,
                                   const CycleBudget& budget);

}  // namespace tvp::hw
