#include "tvp/hw/fsm_executor.hpp"

#include <stdexcept>

namespace tvp::hw {

namespace {
constexpr std::uint32_t ceil_div(std::uint32_t a, std::uint32_t b) noexcept {
  return (a + b - 1) / b;
}
}  // namespace

std::uint32_t trace_cycles(const std::vector<FsmStep>& steps) noexcept {
  std::uint32_t total = 0;
  for (const auto& s : steps) total += s.cycles;
  return total;
}

std::string trace_to_string(const std::vector<FsmStep>& steps) {
  std::string out;
  for (const auto& s : steps) {
    if (!out.empty()) out += " -> ";
    out += s.state;
    out += '(';
    out += std::to_string(s.cycles);
    out += ')';
  }
  return out;
}

FsmExecutor::FsmExecutor(Technique technique, TechniqueParams params,
                         DatapathWidths widths)
    : technique_(technique), params_(params), widths_(widths) {
  if (!is_tivapromi(technique))
    throw std::invalid_argument(
        "FsmExecutor: only the TiVaPRoMi variants have Fig. 2/3 FSMs");
}

std::vector<FsmStep> FsmExecutor::run_act() const {
  std::vector<FsmStep> steps;
  steps.push_back({"idle/dispatch", 1});
  const std::uint32_t search =
      ceil_div(params_.history_entries, widths_.history_search);
  switch (technique_) {
    case Technique::kLiPRoMi:
      steps.push_back({"search in table", search});
      steps.push_back({"calculate weight (subtract)", 1});
      steps.push_back({"scale by Pbase", 1});
      steps.push_back({"decide (compare vs PRNG)", 1});
      steps.push_back({"activate neighbor & update table", 1});
      break;
    case Technique::kLoPRoMi:
      steps.push_back({"search in table", search});
      steps.push_back({"calculate weight (subtract)", 1});
      steps.push_back({"priority-encode (Eq. 2) & scale", 1});
      steps.push_back({"decide (compare vs PRNG)", 1});
      steps.push_back({"activate neighbor & update table", 1});
      break;
    case Technique::kLoLiPRoMi:
      steps.push_back({"search in table", search});
      // The lin/log select is folded into the search-hit mux.
      steps.push_back({"calculate weight (fused select)", 1});
      steps.push_back({"decide (compare vs PRNG)", 1});
      steps.push_back({"activate neighbor & update table", 1});
      break;
    case Technique::kCaPRoMi:
      steps.push_back({"search history (link capture)", search});
      steps.push_back(
          {"search/increase counter table",
           ceil_div(params_.counter_entries, widths_.counter_search)});
      steps.push_back({"insert/replace & commit", 1});
      break;
    default:
      break;
  }
  return steps;
}

std::vector<FsmStep> FsmExecutor::run_ref(bool window_start) const {
  std::vector<FsmStep> steps;
  if (technique_ == Technique::kCaPRoMi) {
    steps.push_back({"idle/dispatch", 1});
    const std::uint32_t groups =
        ceil_div(params_.counter_entries, widths_.counter_walk);
    steps.push_back({"per-entry weight/scale/decide/commit", groups * 4});
    steps.push_back({window_start ? "clear tables (new window)"
                                  : "clear counter table",
                     1});
    return steps;
  }
  steps.push_back({"update refresh interval", 1});
  steps.push_back({"same/new window compare", 1});
  steps.push_back(
      {window_start ? "reset table (flash clear)" : "return to idle", 1});
  return steps;
}

}  // namespace tvp::hw
