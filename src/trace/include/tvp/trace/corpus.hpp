// Trace corpus: the v2 on-disk format (".tvpc") for recorded access
// streams, built for replay at memory speed.
//
// Layout (all integers little-endian, all offsets 8-byte aligned):
//
//   [file header, 32 B]   "TVPC" | version=2 | record_bytes=24 | reserved
//   [block]*              40 B block header ("TVPB", codec, record
//                         count, payload size, min/max time_ps, CRC-32
//                         of the *uncompressed* record bytes), then the
//                         payload, zero-padded to an 8-byte boundary
//   [footer]              "TVPF" | totals | per-block index entries
//                         (offset, first record, count, codec, CRC,
//                         time range) | sorted aggressor-oracle keys |
//                         sorted victim-oracle keys
//   [trailer, 24 B]       footer offset | footer size | footer CRC-32 |
//                         "TVPCEND\0"
//
// The design invariants the readers rely on:
//  * The on-disk record layout IS the in-memory AccessRecord layout
//    (static_asserts in corpus.cpp pin every offset), so an mmap'd raw
//    block replays zero-copy: the span handed to the controller is the
//    page cache itself.
//  * Every block carries a CRC-32 over its uncompressed bytes, checked
//    once on first touch (trust-after-verify: rewind() keeps the
//    verified bits, so warm replay passes skip the sweep entirely).
//    The mapping and its verified bits are shared process-wide between
//    sources of the same unchanged file, so a sweep replaying one
//    corpus across many cells pays the CRC sweep once, not per cell.
//  * The footer CRC covers the index — and therefore every block CRC —
//    which makes it a cheap whole-corpus identity: the campaign service
//    journals it so a resumed trace job proves it replays the same
//    bytes.
//  * Compression (zstd, codec 1) is a per-block property and the format
//    is self-describing: a build without zstd still reads raw corpora
//    and reports a precise error for compressed ones.
//  * The ground truth travels with the corpus: the aggressor oracle
//    (the (bank, row) keys the attack generators marked) and the victim
//    oracle (the rows the attacks aim to flip), so replayed experiments
//    compute the same false-positive rate and victim-flip counts as
//    generated ones.
//  * Optionally each block carries a partition index: the block's
//    records pre-split into per-bank column lanes (times, rows,
//    span-relative serials, write flags — the controller's scatter pass
//    done once at write time). It lives between the block payload and
//    the next block, is described by a footer extension (magic "PIDX" +
//    bank count + per-block offset/size/CRC, covered by the footer CRC)
//    and is CRC'd and cross-checked against the record bytes on first
//    touch. Readers that predate the extension reject the footer size;
//    corpora without it replay exactly as before (the controller
//    re-partitions).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tvp/trace/source.hpp"

namespace tvp::trace {

/// Per-block payload encoding.
enum class CorpusCodec : std::uint32_t {
  kRaw = 0,   ///< packed records, mmap-replayable in place
  kZstd = 1,  ///< zstd-compressed packed records
};

/// True when this build can compress/decompress zstd blocks.
bool corpus_zstd_available() noexcept;

/// One footer index entry: everything needed to locate, size and check
/// a block without touching its bytes.
struct CorpusBlockInfo {
  std::uint64_t offset = 0;        ///< file offset of the block header
  std::uint64_t first_record = 0;  ///< global index of the block's first record
  std::uint32_t records = 0;
  CorpusCodec codec = CorpusCodec::kRaw;
  std::uint32_t crc = 0;  ///< CRC-32 of the uncompressed record bytes
  std::uint64_t min_time_ps = 0;
  std::uint64_t max_time_ps = 0;
};

/// One block's partition-index frame: where its per-bank lane columns
/// live and their checksum.
struct CorpusPartitionInfo {
  std::uint64_t offset = 0;  ///< file offset of the block's lane region
  std::uint32_t bytes = 0;   ///< exact region size (padding included)
  std::uint32_t crc = 0;     ///< CRC-32 of the region bytes
};

/// Parsed footer: the corpus's index and identity.
struct CorpusInfo {
  std::uint64_t total_records = 0;
  /// CRC-32 of the footer bytes — the corpus identity (covers every
  /// block CRC via the index).
  std::uint32_t footer_crc = 0;
  std::vector<CorpusBlockInfo> blocks;
  /// Sorted (bank << 32 | row) keys of ground-truth aggressor rows.
  std::vector<std::uint64_t> aggressors;
  /// Sorted (bank << 32 | row) keys of the attacks' declared victim
  /// rows (logical, pre-remap).
  std::vector<std::uint64_t> victims;
  /// Bank count of the partition index; 0 = the corpus has none.
  std::uint32_t partition_banks = 0;
  /// Per-block partition frames (one per block when partition_banks > 0,
  /// empty otherwise).
  std::vector<CorpusPartitionInfo> partitions;
};

/// Streaming corpus writer: append records (non-decreasing time_ps,
/// enforced), then close() for a durable file. A writer destroyed
/// without close() leaves no usable corpus (no footer/trailer).
class CorpusWriter {
 public:
  struct Options {
    /// Records per block; 64 Ki records = 1.5 MiB of raw payload.
    std::size_t records_per_block = std::size_t{1} << 16;
    CorpusCodec codec = CorpusCodec::kRaw;
    /// Write a per-block partition index for this many banks (0 = none).
    /// When set, every appended record's bank must be below this count
    /// (enforced; the lanes must cover the whole block for replay to
    /// skip its own scatter pass).
    std::uint32_t partition_banks = 0;
  };

  /// Creates (truncates) @p path. Throws std::runtime_error on I/O
  /// failure or when options.codec needs zstd and the build lacks it.
  explicit CorpusWriter(const std::string& path);
  CorpusWriter(const std::string& path, Options options);
  CorpusWriter(const CorpusWriter&) = delete;
  CorpusWriter& operator=(const CorpusWriter&) = delete;
  ~CorpusWriter();

  void append(const AccessRecord& record);
  void append(const AccessRecord* records, std::size_t count);

  /// Installs the aggressor oracle (any order; sorted and deduplicated
  /// on write). Call any time before close().
  void set_aggressors(std::vector<std::uint64_t> keys);

  /// Installs the victim oracle (same key encoding and semantics).
  void set_victims(std::vector<std::uint64_t> keys);

  std::uint64_t records_written() const noexcept { return total_records_; }

  /// Flushes the tail block, writes footer + trailer, fsyncs the file
  /// and its directory. Returns the footer CRC (the corpus identity).
  std::uint32_t close();

 private:
  void flush_block();
  void fail(const std::string& what) const;

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::vector<AccessRecord> block_;
  std::vector<unsigned char> staging_;
  std::vector<unsigned char> lane_staging_;
  std::vector<CorpusBlockInfo> index_;
  std::vector<CorpusPartitionInfo> pindex_;
  std::vector<std::uint64_t> aggressors_;
  std::vector<std::uint64_t> victims_;
  std::uint64_t total_records_ = 0;
  std::uint64_t write_offset_ = 0;
  std::uint64_t last_time_ps_ = 0;
};

/// One process-wide read-only mapping of a corpus file, shared between
/// every MmapSource over the same unchanged file (same device, inode,
/// size, mtime and identity). Holds the per-block verified bits, so the
/// CRC sweep runs once per corpus per process, not once per source.
struct CorpusMapping;

/// Replays a corpus file as a TraceSource. The file is mapped read-only
/// and raw blocks stream zero-copy through next_span(); when mmap is
/// unavailable (or fails) the source falls back to pread()-based block
/// reads transparently. Construction parses and validates the trailer,
/// footer and file header; block payloads are CRC-checked on first
/// touch.
class MmapSource final : public TraceSource {
 public:
  /// Throws std::runtime_error with a precise reason on any structural
  /// problem (bad magic/version, truncated footer, compressed blocks
  /// without zstd, ...).
  explicit MmapSource(const std::string& path);
  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;
  ~MmapSource() override;

  std::optional<AccessRecord> next() override;
  std::size_t next_batch(AccessRecord* out, std::size_t max) override;
  bool supports_spans() const noexcept override { return true; }
  std::size_t next_span(const AccessRecord** data) override;
  /// Hands out the block's on-disk lane columns when the corpus carries
  /// a partition index and the file is mapped (zero-copy: the lane
  /// pointers are the page cache). The region is CRC-checked and
  /// cross-checked record-by-record against the block payload on first
  /// touch (trust-after-verify, shared like the block bits); any
  /// disagreement is a precise error, never a silent fallback. Lanes
  /// are only offered for whole blocks — a span started by next() /
  /// next_batch() finishes without them.
  std::size_t span_lanes(const AccessRecord** data, const BankLaneView** lanes,
                         std::size_t* lane_banks) override;

  /// Restarts the stream from the first record. Verified blocks stay
  /// verified — a warm replay pass skips the CRC sweep. The bits are
  /// shared process-wide, so a fresh MmapSource over the same unchanged
  /// file starts warm too.
  void rewind();

  const CorpusInfo& info() const noexcept { return info_; }
  const std::string& path() const noexcept { return path_; }
  /// True when the file is memory-mapped (false = pread fallback).
  bool mapped() const noexcept { return base_ != nullptr; }

 private:
  bool load_block(std::size_t index);
  bool prepare_lanes(std::size_t index);
  void fail(const std::string& what) const;

  std::string path_;
  int fd_ = -1;
  std::uint64_t file_size_ = 0;
  std::shared_ptr<CorpusMapping> mapping_;  // null in pread fallback mode
  const unsigned char* base_ = nullptr;  // mapping_->base, cached
  CorpusInfo info_;
  std::vector<AccessRecord> scratch_;   // decode buffer (compressed / pread)
  std::vector<unsigned char> comp_;     // compressed payload staging
  std::size_t block_ = 0;               // next block to load
  const AccessRecord* span_ = nullptr;  // current block's records
  std::size_t span_len_ = 0;
  std::size_t span_pos_ = 0;
  std::vector<BankLaneView> lanes_;     // current block's lane views
};

/// Reads and validates header + trailer + footer only (no payload I/O):
/// O(1) in the record count. This is how the campaign service computes
/// a corpus identity before queuing a job.
CorpusInfo read_corpus_info(const std::string& path);

/// Full verification: parses the footer and CRC-checks every block.
/// Returns the corpus info; throws with the failing block's index on
/// corruption.
CorpusInfo verify_corpus(const std::string& path);

/// Convenience: writes @p records (time-sorted) as a single corpus.
/// Returns the footer CRC.
std::uint32_t write_corpus(const std::string& path,
                           const std::vector<AccessRecord>& records,
                           CorpusWriter::Options options = {});

/// Convenience: loads every record of a corpus into memory.
std::vector<AccessRecord> read_corpus(const std::string& path);

/// Failpoint sites on the corpus I/O paths (see util/failpoint.hpp);
/// the torture harness enumerates these.
const std::vector<std::string>& corpus_failpoint_sites();

}  // namespace tvp::trace
