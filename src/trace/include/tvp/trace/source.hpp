// Trace sources: pull-based streams of AccessRecords ordered by time.
//
// Generators (synthetic workloads, attackers, file readers) implement
// TraceSource; MergedSource interleaves any number of them into one
// time-ordered stream, which is what the memory controller consumes.
#pragma once

#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "tvp/trace/record.hpp"

namespace tvp::trace {

/// Abstract pull-based record stream. Implementations must produce
/// records with non-decreasing time_ps.
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  /// Next record, or nullopt when the stream is exhausted.
  virtual std::optional<AccessRecord> next() = 0;

  /// Fills @p out with up to @p max records and returns the count
  /// (0 = exhausted). The record sequence is exactly the one next()
  /// would produce — batching only amortizes the per-record virtual
  /// call from the consumer's side. The base implementation loops
  /// next(); sources with cheap bulk access override it.
  virtual std::size_t next_batch(AccessRecord* out, std::size_t max);

  /// True when next_span() is cheaper than next_batch() for this
  /// source — i.e. the records already live in memory and the source
  /// can hand out a borrowed view instead of copying.
  virtual bool supports_spans() const noexcept { return false; }

  /// Zero-copy variant of next_batch(): points @p data at a contiguous
  /// run of records owned by the source and returns its length
  /// (0 = exhausted). The span stays valid until the next call on this
  /// source. Span lengths are an implementation detail (block-sized for
  /// mmap'd corpora, the whole tail for vectors); the concatenation of
  /// all spans is exactly the next() sequence. Only meaningful when
  /// supports_spans() is true; the base implementation returns 0.
  virtual std::size_t next_span(const AccessRecord** data);

  /// Like next_span(), but additionally offers the span's per-bank
  /// column lanes when the source has them precomputed (a corpus with a
  /// partition index): on return *lanes either points at @p lane_banks
  /// BankLaneView entries — one per bank, serials relative to the
  /// returned span, valid until the next call — or is null, meaning the
  /// consumer partitions the span itself. Lanes are an optimization,
  /// never a semantic: the record span is identical either way. The
  /// base implementation forwards to next_span() with no lanes.
  virtual std::size_t span_lanes(const AccessRecord** data,
                                 const BankLaneView** lanes,
                                 std::size_t* lane_banks) {
    *lanes = nullptr;
    *lane_banks = 0;
    return next_span(data);
  }
};

/// Replays a pre-built vector of records (must be time-sorted; verified
/// at construction).
class VectorSource final : public TraceSource {
 public:
  explicit VectorSource(std::vector<AccessRecord> records);
  std::optional<AccessRecord> next() override;
  /// Bulk copy out of the backing vector (one virtual call per batch).
  std::size_t next_batch(AccessRecord* out, std::size_t max) override;
  bool supports_spans() const noexcept override { return true; }
  /// Hands out the whole unconsumed tail of the vector in one span.
  std::size_t next_span(const AccessRecord** data) override;

 private:
  std::vector<AccessRecord> records_;
  std::size_t pos_ = 0;
};

/// Merges multiple sources into one time-ordered stream (stable k-way
/// merge; ties broken by source registration order).
class MergedSource final : public TraceSource {
 public:
  explicit MergedSource(std::vector<std::unique_ptr<TraceSource>> sources);
  std::optional<AccessRecord> next() override;
  /// Runs the merge loop inline, one virtual call per batch.
  std::size_t next_batch(AccessRecord* out, std::size_t max) override;

 private:
  struct Head {
    AccessRecord record;
    std::size_t index;
  };
  struct HeadLater {
    bool operator()(const Head& a, const Head& b) const noexcept {
      if (a.record.time_ps != b.record.time_ps)
        return a.record.time_ps > b.record.time_ps;
      return a.index > b.index;
    }
  };

  void refill(std::size_t index);

  std::vector<std::unique_ptr<TraceSource>> sources_;
  std::priority_queue<Head, std::vector<Head>, HeadLater> heads_;
};

/// Truncates an underlying source after @p limit records or @p end_ps
/// picoseconds (whichever comes first).
class LimitSource final : public TraceSource {
 public:
  LimitSource(std::unique_ptr<TraceSource> inner, std::uint64_t limit_records,
              std::uint64_t end_ps);
  std::optional<AccessRecord> next() override;
  /// Forwards to the inner source's batch path, applying the record and
  /// time limits per record (identical cut-off to next()).
  std::size_t next_batch(AccessRecord* out, std::size_t max) override;
  /// Spans pass through when the inner source supports them.
  bool supports_spans() const noexcept override {
    return inner_->supports_spans();
  }
  /// Borrows the inner span and trims it to the record/time limits
  /// (identical cut-off to next(); the trim is a partition_point on the
  /// time-sorted span, not a copy).
  std::size_t next_span(const AccessRecord** data) override;
  /// Passes the inner source's lanes through for untrimmed spans; a
  /// trimmed span drops them (its lanes would reference records past
  /// the cut).
  std::size_t span_lanes(const AccessRecord** data, const BankLaneView** lanes,
                         std::size_t* lane_banks) override;

 private:
  std::unique_ptr<TraceSource> inner_;
  std::uint64_t remaining_;
  std::uint64_t end_ps_;
};

/// Drains a source into a vector (testing / trace capture helper).
std::vector<AccessRecord> drain(TraceSource& source, std::size_t max_records = ~0ull);

}  // namespace tvp::trace
