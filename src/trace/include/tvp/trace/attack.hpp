// Row-Hammer attacker models.
//
// The paper's attacker (Section IV) is "similar to the attack suggested
// in [12] using cache flushing": aggressor rows are activated as fast as
// the bank allows, with the aggressor count per targeted bank swept from
// 1 to 20. We emit the DRAM-visible activation pattern directly (a
// cache-flushing attacker defeats the caches by construction) and tag
// every record with is_attack = true for ground-truth accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/trace/source.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::trace {

enum class AttackPattern {
  kSingleSided,     ///< one aggressor per victim (row v+1)
  kDoubleSided,     ///< both neighbours of each victim (v-1, v+1)
  kMultiAggressor,  ///< many aggressors activated sequentially (ProHit's
                    ///< PARA-evading pattern; equals double-sided with
                    ///< several victims)
  kFlood,           ///< one single row activated back-to-back
                    ///< (Section III-A / IV flooding attack)
  kManySided,       ///< TRRespass-style: a band of `sides` aggressor rows
                    ///< on each side of every victim, cycled sequentially
                    ///< to thrash small tracker tables
  kHalfDouble,      ///< distance-2 hammering: the far rows (v +/- 2) are
                    ///< hammered hard, the near rows (v +/- 1) only get
                    ///< occasional "dribble" activations; only effective
                    ///< when the disturbance blast radius is 2
  kFuzzed,          ///< explicit activation schedule (AttackConfig::
                    ///< schedule) replayed cyclically — the emission form
                    ///< of the PatternFuzzer's non-uniform frequency/
                    ///< phase/amplitude patterns (fuzzer.hpp)
};

const char* to_string(AttackPattern pattern) noexcept;

/// Configuration of one attacker thread hammering one bank.
struct AttackConfig {
  AttackPattern pattern = AttackPattern::kDoubleSided;
  dram::BankId bank = 0;
  /// Victim rows the attacker wants to flip (aggressors are derived).
  /// For kFlood this is the single hammered row itself.
  std::vector<dram::RowId> victims;
  dram::RowId rows_per_bank = 131072;
  /// Spacing between attacker activations. Defaults to tRC (45 ns) —
  /// the fastest a single bank permits.
  std::uint64_t interarrival_ps = 45'000;
  std::uint64_t start_ps = 0;
  std::uint64_t end_ps = ~0ull;
  SourceId source_id = 255;
  /// kManySided: aggressor band half-width per victim (>= 1).
  std::uint32_t sides = 4;
  /// kHalfDouble: far-row activations per near-row "dribble" activation.
  std::uint32_t far_per_near = 16;
  /// kFuzzed: the explicit base-period activation order, emitted
  /// cyclically with the configured interarrival. Rows must be in
  /// range and must not contain any victim. Built by PatternFuzzer;
  /// ignored by every other pattern.
  std::vector<dram::RowId> schedule;
};

/// Emits the attacker's activation stream: the derived aggressor rows,
/// activated round-robin with fixed spacing.
class AttackSource final : public TraceSource {
 public:
  explicit AttackSource(AttackConfig config);

  std::optional<AccessRecord> next() override;

  /// Hammered aggressor rows (the far rows for kHalfDouble).
  const std::vector<dram::RowId>& aggressors() const noexcept { return aggressors_; }
  /// Dribbled near rows (kHalfDouble only; empty otherwise).
  const std::vector<dram::RowId>& dribble_rows() const noexcept { return dribble_; }
  const AttackConfig& config() const noexcept { return cfg_; }

 private:
  AttackConfig cfg_;
  std::vector<dram::RowId> aggressors_;
  std::vector<dram::RowId> dribble_;
  std::uint64_t now_ps_;
  std::size_t cursor_ = 0;
  std::size_t dribble_cursor_ = 0;
  std::uint64_t emitted_ = 0;
};

/// Picks @p n_victims well-separated victim rows in a bank (at least 8
/// rows apart so aggressor sets never overlap) and returns a
/// double-sided AttackConfig for them.
AttackConfig make_multi_aggressor_attack(dram::BankId bank, dram::RowId rows_per_bank,
                                         std::size_t n_victims, util::Rng& rng);

}  // namespace tvp::trace
