// Trace (de)serialisation.
//
// Three formats:
//  * text — one record per line: "time_ps bank row R|W src A|B"
//    (A = attack, B = benign); '#' starts a comment. Human-editable,
//    interoperable with DRAM-simulator style traces.
//  * binary v1 — "TVPT" magic + version + packed records. Compact,
//    exact, single-shot.
//  * corpus v2 — block-framed ".tvpc" with per-block CRCs and an index
//    footer, built for mmap replay (see trace/corpus.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tvp/dram/geometry.hpp"
#include "tvp/dram/timing.hpp"
#include "tvp/trace/record.hpp"

namespace tvp::trace {

/// On-disk trace flavour for the save_trace/load_trace wrappers.
enum class TraceFormat {
  kAuto,      ///< pick by extension: .tvpt binary v1, .tvpc corpus, else text
  kText,      ///< line-per-record text
  kBinaryV1,  ///< "TVPT" packed records
  kCorpus,    ///< v2 block-CRC corpus (trace/corpus.hpp)
};

/// Resolves kAuto against @p path (extension match is case-insensitive:
/// ".tvpt", ".TVPT" and ".TvPt" all select binary v1); other formats
/// pass through unchanged.
TraceFormat resolve_trace_format(const std::string& path, TraceFormat format);

/// Writes records as text; returns the record count.
std::size_t write_text(std::ostream& os, const std::vector<AccessRecord>& records);
/// Parses a text trace; throws std::runtime_error with a line number on
/// malformed input.
std::vector<AccessRecord> read_text(std::istream& is);

/// Writes the binary format; returns the record count.
std::size_t write_binary(std::ostream& os, const std::vector<AccessRecord>& records);
/// Reads the binary format; throws std::runtime_error on bad magic,
/// version, or truncation.
std::vector<AccessRecord> read_binary(std::istream& is);

/// Convenience file wrappers. With kAuto (the default) the format
/// follows the extension, case-insensitively: ".tvpt" binary v1,
/// ".tvpc" corpus, anything else text; pass an explicit format to
/// override the extension. Throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<AccessRecord>& records,
                TraceFormat format = TraceFormat::kAuto);
std::vector<AccessRecord> load_trace(const std::string& path,
                                     TraceFormat format = TraceFormat::kAuto);

/// Imports a DRAMSim2/ramulator-style *address* trace: one access per
/// line, `0xADDRESS  R|W|READ|WRITE  [cycle]`, '#'/';' comments. The
/// byte addresses are mapped to (bank, row) with @p mapper; the optional
/// cycle column is converted to picoseconds with @p t_ck_ps (accesses
/// without a cycle are spaced @p t_ck_ps apart). Records are tagged
/// benign; throws std::runtime_error with a line number on bad input.
std::vector<AccessRecord> import_address_trace(std::istream& is,
                                               const dram::AddressMapper& mapper,
                                               double t_ck_ps);

/// Same, with the clock period taken from @p timing (timing.t_ck_ps()).
std::vector<AccessRecord> import_address_trace(std::istream& is,
                                               const dram::AddressMapper& mapper,
                                               const dram::Timing& timing);

/// Default clock: the DDR4 preset's period (dram::ddr4_timing()), the
/// same timing every SimConfig starts from — not a hardcoded constant.
std::vector<AccessRecord> import_address_trace(std::istream& is,
                                               const dram::AddressMapper& mapper);

}  // namespace tvp::trace
