// Trace (de)serialisation.
//
// Two formats:
//  * text — one record per line: "time_ps bank row R|W src A|B"
//    (A = attack, B = benign); '#' starts a comment. Human-editable,
//    interoperable with DRAM-simulator style traces.
//  * binary — "TVPT" magic + version + packed records. Compact, exact.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "tvp/dram/geometry.hpp"
#include "tvp/trace/record.hpp"

namespace tvp::trace {

/// Writes records as text; returns the record count.
std::size_t write_text(std::ostream& os, const std::vector<AccessRecord>& records);
/// Parses a text trace; throws std::runtime_error with a line number on
/// malformed input.
std::vector<AccessRecord> read_text(std::istream& is);

/// Writes the binary format; returns the record count.
std::size_t write_binary(std::ostream& os, const std::vector<AccessRecord>& records);
/// Reads the binary format; throws std::runtime_error on bad magic,
/// version, or truncation.
std::vector<AccessRecord> read_binary(std::istream& is);

/// Convenience file wrappers (format chosen by extension: ".tvpt" binary,
/// anything else text). Throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const std::vector<AccessRecord>& records);
std::vector<AccessRecord> load_trace(const std::string& path);

/// Imports a DRAMSim2/ramulator-style *address* trace: one access per
/// line, `0xADDRESS  R|W|READ|WRITE  [cycle]`, '#'/';' comments. The
/// byte addresses are mapped to (bank, row) with @p mapper; the optional
/// cycle column is converted to picoseconds with @p t_ck_ps (accesses
/// without a cycle are spaced @p t_ck_ps apart). Records are tagged
/// benign; throws std::runtime_error with a line number on bad input.
std::vector<AccessRecord> import_address_trace(std::istream& is,
                                               const dram::AddressMapper& mapper,
                                               double t_ck_ps = 833.0);

}  // namespace tvp::trace
