// Synthetic benign workload generators.
//
// Stand-in for the paper's gem5 + SPEC CPU2006 mixed load (see
// DESIGN.md, substitution table). Each source models one "application"
// with a distinct row-locality profile; a MergedSource of several of
// them plus an attacker reproduces the mixed-load structure. For the
// cache-filtered variant (closer to gem5), see tvp::cpu::CoreFrontend,
// which feeds instruction-level streams through an L1/L2 model.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/trace/source.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::trace {

/// Row-locality shape of a synthetic application.
enum class AccessProfile {
  kStreaming,     ///< sequential rows (e.g. libquantum/stream-like)
  kStrided,       ///< constant row stride (matrix walks)
  kRandom,        ///< uniform rows (pointer-heavy, mcf-like)
  kHotspot,       ///< most accesses hit a small hot row set
  kPointerChase,  ///< random walk with small jumps and revisits
};

const char* to_string(AccessProfile profile) noexcept;

/// Configuration of one synthetic application stream.
struct SyntheticConfig {
  AccessProfile profile = AccessProfile::kRandom;
  std::uint32_t banks = 16;          ///< flat banks the app touches
  dram::RowId rows_per_bank = 131072;
  double mean_interarrival_ps = 200'000;  ///< Poisson mean between accesses
  double write_fraction = 0.3;
  SourceId source_id = 0;
  std::uint64_t start_ps = 0;

  // Profile-specific knobs.
  std::uint32_t stride = 7;          ///< kStrided row stride
  std::uint32_t hotspot_rows = 64;   ///< kHotspot working-set size
  double hotspot_bias = 0.9;         ///< kHotspot probability of a hot row
  std::uint32_t chase_jump = 512;    ///< kPointerChase max jump distance
};

/// Infinite Poisson-arrival stream with the configured locality profile.
/// Wrap in LimitSource to bound it.
class SyntheticSource final : public TraceSource {
 public:
  SyntheticSource(SyntheticConfig config, util::Rng rng);

  std::optional<AccessRecord> next() override;

  const SyntheticConfig& config() const noexcept { return cfg_; }

 private:
  dram::RowId next_row();

  SyntheticConfig cfg_;
  util::Rng rng_;
  double now_ps_;
  dram::RowId cursor_ = 0;            // streaming / strided / chase state
  std::uint32_t bank_cursor_ = 0;
  std::vector<dram::RowId> hot_rows_;  // kHotspot working set
};

/// A ready-made "mixed load": one stream per profile, rates scaled so the
/// aggregate averages @p target_acts_per_interval_per_bank activations
/// per refresh interval per bank (Table I calibration: ~40 including the
/// attacker's share).
std::vector<SyntheticConfig> mixed_workload(std::uint32_t banks,
                                            dram::RowId rows_per_bank,
                                            std::uint64_t t_refi_ps,
                                            double target_acts_per_interval_per_bank);

}  // namespace tvp::trace
