// The unit of work flowing into the memory controller: one row access.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tvp/dram/geometry.hpp"

namespace tvp::trace {

/// Identifies who generated a record (core index or attacker).
using SourceId = std::uint8_t;

/// One memory request at row granularity.
///
/// Records carry a ground-truth `is_attack` tag set by the generators.
/// Mitigation techniques never see the tag; the experiment harness uses
/// it to compute the false-positive rate (an extra activation triggered
/// by a benign access is a false positive).
struct AccessRecord {
  std::uint64_t time_ps = 0;     ///< arrival time at the controller
  dram::BankId bank = 0;         ///< flat bank index
  dram::RowId row = 0;           ///< logical (controller-visible) row
  bool write = false;
  bool is_attack = false;
  SourceId source = 0;

  bool operator==(const AccessRecord&) const = default;
};

/// One bank's pre-partitioned column view over a record span (SoA): the
/// span's records with this bank id, in arrival order, as separate
/// contiguous arrays. `serials[k]` is the span-relative index of the
/// k-th element (strictly ascending), so a consumer can rebase a lane
/// onto any sub-range of the span. Produced by a corpus partition index
/// (zero-copy out of the mapped file) so the controller skips its own
/// scatter pass; `max_row` is the lane's row maximum, computed when the
/// partition is verified, letting the controller range-check a whole
/// lane in O(1).
struct BankLaneView {
  const dram::RowId* rows = nullptr;
  const std::uint64_t* times = nullptr;
  const std::uint32_t* serials = nullptr;
  const std::uint8_t* writes = nullptr;
  std::size_t count = 0;
  dram::RowId max_row = 0;  ///< 0 when the lane is empty
};

}  // namespace tvp::trace
