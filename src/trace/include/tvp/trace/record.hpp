// The unit of work flowing into the memory controller: one row access.
#pragma once

#include <cstdint>

#include "tvp/dram/geometry.hpp"

namespace tvp::trace {

/// Identifies who generated a record (core index or attacker).
using SourceId = std::uint8_t;

/// One memory request at row granularity.
///
/// Records carry a ground-truth `is_attack` tag set by the generators.
/// Mitigation techniques never see the tag; the experiment harness uses
/// it to compute the false-positive rate (an extra activation triggered
/// by a benign access is a false positive).
struct AccessRecord {
  std::uint64_t time_ps = 0;     ///< arrival time at the controller
  dram::BankId bank = 0;         ///< flat bank index
  dram::RowId row = 0;           ///< logical (controller-visible) row
  bool write = false;
  bool is_attack = false;
  SourceId source = 0;

  bool operator==(const AccessRecord&) const = default;
};

}  // namespace tvp::trace
