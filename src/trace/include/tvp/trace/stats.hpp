// Trace-level statistics: validates that a generated workload matches
// the Table I calibration targets (activations per refresh interval,
// attack share, row-reuse) before it is fed to a mitigation experiment.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tvp/trace/record.hpp"
#include "tvp/util/stats.hpp"

namespace tvp::trace {

/// Accumulates per-record statistics; add() must see records in time
/// order (asserted in debug builds by the harness, not here).
class TraceStats {
 public:
  /// @p t_refi_ps defines the refresh-interval bucketing;
  /// @p banks the number of banks (for per-bank rates).
  TraceStats(std::uint64_t t_refi_ps, std::uint32_t banks);

  void add(const AccessRecord& record);

  std::uint64_t records() const noexcept { return records_; }
  std::uint64_t attack_records() const noexcept { return attack_; }
  std::uint64_t writes() const noexcept { return writes_; }
  double attack_fraction() const noexcept {
    return records_ ? static_cast<double>(attack_) / static_cast<double>(records_) : 0.0;
  }

  /// Distinct (bank, row) pairs touched.
  std::size_t unique_rows() const noexcept { return row_counts_.size(); }

  /// Mean / max activations per refresh interval per *active* bank.
  /// Finalised lazily; cheap to call repeatedly.
  util::RunningStat acts_per_interval_per_bank() const;

  /// Activation count of the single most-activated (bank, row).
  std::uint64_t hottest_row_count() const noexcept;

 private:
  std::uint64_t t_refi_ps_;
  std::uint32_t banks_;
  std::uint64_t records_ = 0;
  std::uint64_t attack_ = 0;
  std::uint64_t writes_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> row_counts_;  // key: bank<<32|row
  // interval index -> per-bank activation counts (sparse over intervals)
  std::unordered_map<std::uint64_t, std::uint64_t> interval_bank_counts_;
};

}  // namespace tvp::trace
