// TRR-evading pattern fuzzer (Blacksmith / ZenHammer style).
//
// In-DRAM TRR samplers watch a handful of recently-activated rows and
// refresh their neighbours on the next REF. Uniform patterns (double-
// sided, many-sided at a fixed cadence) are exactly what such samplers
// catch; what defeats them in practice are *non-uniform* many-sided
// patterns where each aggressor pair is hammered with its own
// frequency, phase and amplitude inside a repeating base period, so no
// single row dominates the sampler's recent-activation window. The
// fuzzer below searches that parameter space deterministically: one
// 64-bit seed fully determines a pattern, and the same seed always
// reproduces the same activation schedule, byte for byte.
//
// ## Derivation contract (the differential-fuzz reference reimplements
// ## exactly this; change it only together with that test)
//
// A pattern for (params, seed) is drawn from util::Rng(seed) in this
// exact order, using only Rng::below / Rng::between:
//
//   1. pairs      = between(pairs_min, pairs_max)
//   2. period_exp = between(period_exp_min, period_exp_max);
//      period     = 1 << period_exp                      [slots]
//   3. victims: the usable rows [4, rows_per_bank - 4) are split into
//      `pairs` equal regions of `region = (rows_per_bank - 8) / pairs`
//      rows; victim j = 4 + j * region + below(region - 8). Regions
//      keep aggressor sets of distinct pairs disjoint (>= 8 rows apart).
//   4. per pair j, in order: freq_exp_j = below(period_exp + 1) and
//      appearances_j = 1 << freq_exp_j (so the stride
//      period / appearances_j is integral); phase_j =
//      below(period / appearances_j); amplitude_j =
//      between(1, amplitude_max).
//   5. decoys = between(1, decoys_max); decoy row k is drawn by
//      rejection: row = below(rows_per_bank), redrawn while it lies
//      within 4 rows of any victim or equals an earlier decoy.
//
// The schedule expands into per-slot buckets: pair j contributes, at
// slots phase_j + k * (period / appearances_j) for k in
// [0, appearances_j), `amplitude_j` repetitions of its aggressor rows —
// (victim-1, victim+1) at blast distance 1, or, in half-double mode,
// (victim-2, victim+2) followed by one near-row dribble (victim-1 on
// even k, victim+1 on odd k). Rows outside [0, rows_per_bank) are
// dropped (bank-edge victims keep their in-range side). Every slot
// left empty receives one decoy activation, round-robin over the decoy
// rows in slot order. The flattened bucket list — slot 0's activations
// first, each bucket in pair order with decoy fill last — is the base
// period; the attack replays it cyclically.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/trace/attack.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::trace {

/// Bounds of the fuzzer's pattern parameter space. Defaults follow the
/// published TRR-bypass campaigns: a handful of aggressor pairs, base
/// periods of 32..256 slots, short bursts.
struct FuzzParams {
  std::uint32_t pairs_min = 2;        ///< aggressor pairs per pattern
  std::uint32_t pairs_max = 6;
  std::uint32_t period_exp_min = 5;   ///< base period 2^n slots
  std::uint32_t period_exp_max = 8;
  std::uint32_t amplitude_max = 4;    ///< max consecutive bursts per slot
  std::uint32_t decoys_max = 4;       ///< filler rows for empty slots
  /// Distance-2 (half-double) mode: hammer victim+/-2 and dribble
  /// victim+/-1, instead of hammering victim+/-1 directly. Only flips
  /// rows when the disturbance model's blast_radius is 2.
  bool half_double = false;
  dram::RowId rows_per_bank = 131072;

  /// Throws std::invalid_argument when the bounds are inconsistent or
  /// the bank is too small for pairs_max separated victims.
  void validate() const;
};

/// One aggressor pair's drawn schedule parameters.
struct FuzzedPair {
  dram::RowId victim = 0;
  std::uint32_t appearances = 1;  ///< times per period (power of two)
  std::uint32_t phase = 0;        ///< first slot of the pair
  std::uint32_t amplitude = 1;    ///< bursts per appearance
};

/// A fully derived pattern: the drawn parameters plus the expanded
/// activation schedule for one base period.
struct FuzzedPattern {
  std::uint64_t seed = 0;
  std::uint32_t period_slots = 0;
  std::vector<FuzzedPair> pairs;
  std::vector<dram::RowId> victims;     ///< pair victims, in region order
  std::vector<dram::RowId> decoys;
  /// The expanded base period (one entry per activation, >= one per
  /// slot); AttackSource replays it cyclically.
  std::vector<dram::RowId> schedule;
};

/// Derives patterns from seeds. Stateless between calls: pattern(seed)
/// depends on (params, seed) only, never on earlier calls.
class PatternFuzzer {
 public:
  explicit PatternFuzzer(FuzzParams params);

  const FuzzParams& params() const noexcept { return params_; }

  /// Derives the pattern for @p seed (see the header contract).
  FuzzedPattern pattern(std::uint64_t seed) const;

  /// Wraps @p pattern into an AttackConfig (pattern = kFuzzed, explicit
  /// schedule, the drawn victims) targeting @p bank. The config flows
  /// through the existing AttackSource / record_corpus / campaign
  /// machinery unchanged.
  AttackConfig make_attack(const FuzzedPattern& pattern, dram::BankId bank,
                           std::uint64_t interarrival_ps,
                           SourceId source_id) const;

 private:
  FuzzParams params_;
};

}  // namespace tvp::trace
