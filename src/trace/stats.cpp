#include "tvp/trace/stats.hpp"

#include <algorithm>
#include <stdexcept>

namespace tvp::trace {

TraceStats::TraceStats(std::uint64_t t_refi_ps, std::uint32_t banks)
    : t_refi_ps_(t_refi_ps), banks_(banks) {
  if (t_refi_ps_ == 0 || banks_ == 0)
    throw std::invalid_argument("TraceStats: zero tREFI or banks");
}

void TraceStats::add(const AccessRecord& record) {
  ++records_;
  if (record.is_attack) ++attack_;
  if (record.write) ++writes_;
  const std::uint64_t row_key =
      (static_cast<std::uint64_t>(record.bank) << 32) | record.row;
  ++row_counts_[row_key];
  const std::uint64_t interval = record.time_ps / t_refi_ps_;
  const std::uint64_t ib_key = interval * banks_ + record.bank;
  ++interval_bank_counts_[ib_key];
}

util::RunningStat TraceStats::acts_per_interval_per_bank() const {
  util::RunningStat stat;
  for (const auto& [key, count] : interval_bank_counts_)
    stat.add(static_cast<double>(count));
  return stat;
}

std::uint64_t TraceStats::hottest_row_count() const noexcept {
  std::uint64_t peak = 0;
  for (const auto& [key, count] : row_counts_) peak = std::max(peak, count);
  return peak;
}

}  // namespace tvp::trace
