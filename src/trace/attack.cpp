#include "tvp/trace/attack.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace tvp::trace {

const char* to_string(AttackPattern pattern) noexcept {
  switch (pattern) {
    case AttackPattern::kSingleSided: return "single-sided";
    case AttackPattern::kDoubleSided: return "double-sided";
    case AttackPattern::kMultiAggressor: return "multi-aggressor";
    case AttackPattern::kFlood: return "flood";
    case AttackPattern::kManySided: return "many-sided";
    case AttackPattern::kHalfDouble: return "half-double";
    case AttackPattern::kFuzzed: return "fuzzed";
  }
  return "?";
}

AttackSource::AttackSource(AttackConfig config)
    : cfg_(std::move(config)), now_ps_(cfg_.start_ps) {
  if (cfg_.victims.empty())
    throw std::invalid_argument("AttackSource: no victims configured");
  if (cfg_.interarrival_ps == 0)
    throw std::invalid_argument("AttackSource: zero interarrival");

  if (cfg_.pattern == AttackPattern::kManySided && cfg_.sides == 0)
    throw std::invalid_argument("AttackSource: many-sided needs sides >= 1");
  if (cfg_.pattern == AttackPattern::kHalfDouble && cfg_.far_per_near == 0)
    throw std::invalid_argument("AttackSource: half-double needs far_per_near >= 1");
  if (cfg_.pattern == AttackPattern::kFuzzed) {
    // Explicit schedule: the emission order is the schedule itself; the
    // aggressor list (for ground-truth oracles) is its distinct rows.
    if (cfg_.schedule.empty())
      throw std::invalid_argument("AttackSource: fuzzed needs a schedule");
    std::unordered_set<dram::RowId> victims(cfg_.victims.begin(),
                                            cfg_.victims.end());
    std::unordered_set<dram::RowId> seen;
    for (const auto row : cfg_.schedule) {
      if (row >= cfg_.rows_per_bank)
        throw std::invalid_argument("AttackSource: schedule row out of range");
      if (victims.count(row))
        throw std::invalid_argument(
            "AttackSource: schedule must not activate a victim");
      if (seen.insert(row).second) aggressors_.push_back(row);
    }
    for (const auto v : cfg_.victims)
      if (v >= cfg_.rows_per_bank)
        throw std::invalid_argument("AttackSource: victim out of range");
    return;
  }

  auto add = [&](std::vector<dram::RowId>& list, std::int64_t row) {
    if (row >= 0 && row < static_cast<std::int64_t>(cfg_.rows_per_bank))
      list.push_back(static_cast<dram::RowId>(row));
  };
  for (const auto v : cfg_.victims) {
    if (v >= cfg_.rows_per_bank)
      throw std::invalid_argument("AttackSource: victim out of range");
    const auto sv = static_cast<std::int64_t>(v);
    switch (cfg_.pattern) {
      case AttackPattern::kSingleSided:
        add(aggressors_, sv + 1);
        break;
      case AttackPattern::kDoubleSided:
      case AttackPattern::kMultiAggressor:
        add(aggressors_, sv - 1);
        add(aggressors_, sv + 1);
        break;
      case AttackPattern::kFlood:
        add(aggressors_, sv);  // the flooded row itself
        break;
      case AttackPattern::kManySided:
        for (std::uint32_t d = 1; d <= cfg_.sides; ++d) {
          add(aggressors_, sv - static_cast<std::int64_t>(d));
          add(aggressors_, sv + static_cast<std::int64_t>(d));
        }
        break;
      case AttackPattern::kHalfDouble:
        // Hammered far rows rotate in the main list; the near rows get
        // only occasional dribble activations.
        add(aggressors_, sv - 2);
        add(aggressors_, sv + 2);
        add(dribble_, sv - 1);
        add(dribble_, sv + 1);
        break;
      case AttackPattern::kFuzzed:
        break;  // handled above (explicit schedule, early return)
    }
  }
  // Deduplicate while keeping activation order stable; victims must
  // never be emitted as aggressors of themselves in banded patterns.
  auto dedup = [&](std::vector<dram::RowId>& list) {
    std::unordered_set<dram::RowId> seen(cfg_.victims.begin(), cfg_.victims.end());
    if (cfg_.pattern == AttackPattern::kFlood) seen.clear();
    std::vector<dram::RowId> unique;
    for (const auto a : list)
      if (seen.insert(a).second) unique.push_back(a);
    list = std::move(unique);
  };
  dedup(aggressors_);
  dedup(dribble_);
  if (aggressors_.empty())
    throw std::invalid_argument("AttackSource: no valid aggressors derived");
}

std::optional<AccessRecord> AttackSource::next() {
  now_ps_ += cfg_.interarrival_ps;
  if (now_ps_ >= cfg_.end_ps) return std::nullopt;
  AccessRecord rec;
  rec.time_ps = now_ps_;
  rec.bank = cfg_.bank;
  ++emitted_;
  if (cfg_.pattern == AttackPattern::kFuzzed) {
    // Fuzzed patterns replay their explicit base period cyclically.
    rec.row = cfg_.schedule[cursor_];
    cursor_ = (cursor_ + 1) % cfg_.schedule.size();
    rec.write = false;
    rec.is_attack = true;
    rec.source = cfg_.source_id;
    return rec;
  }
  // Half-double interleaves one near-row dribble after every
  // far_per_near hammering activations.
  if (!dribble_.empty() && emitted_ % (cfg_.far_per_near + 1) == 0) {
    rec.row = dribble_[dribble_cursor_];
    dribble_cursor_ = (dribble_cursor_ + 1) % dribble_.size();
  } else {
    rec.row = aggressors_[cursor_];
    cursor_ = (cursor_ + 1) % aggressors_.size();
  }
  rec.write = false;
  rec.is_attack = true;
  rec.source = cfg_.source_id;
  return rec;
}

AttackConfig make_multi_aggressor_attack(dram::BankId bank, dram::RowId rows_per_bank,
                                         std::size_t n_victims, util::Rng& rng) {
  if (n_victims == 0)
    throw std::invalid_argument("make_multi_aggressor_attack: zero victims");
  if (rows_per_bank < 16 * n_victims)
    throw std::invalid_argument("make_multi_aggressor_attack: bank too small");

  AttackConfig cfg;
  cfg.pattern = n_victims == 1 ? AttackPattern::kDoubleSided
                               : AttackPattern::kMultiAggressor;
  cfg.bank = bank;
  cfg.rows_per_bank = rows_per_bank;

  // Partition the bank into n_victims regions and pick one victim per
  // region, away from the array edges; guarantees >= 8 rows separation.
  const dram::RowId region = rows_per_bank / static_cast<dram::RowId>(n_victims);
  for (std::size_t i = 0; i < n_victims; ++i) {
    const auto base = static_cast<dram::RowId>(i) * region;
    const dram::RowId lo = base + 4;
    const dram::RowId hi = base + region - 4;
    cfg.victims.push_back(lo + static_cast<dram::RowId>(rng.below(hi - lo)));
  }
  std::sort(cfg.victims.begin(), cfg.victims.end());
  return cfg;
}

}  // namespace tvp::trace
