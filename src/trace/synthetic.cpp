#include "tvp/trace/synthetic.hpp"

#include <cmath>
#include <stdexcept>

namespace tvp::trace {

const char* to_string(AccessProfile profile) noexcept {
  switch (profile) {
    case AccessProfile::kStreaming: return "streaming";
    case AccessProfile::kStrided: return "strided";
    case AccessProfile::kRandom: return "random";
    case AccessProfile::kHotspot: return "hotspot";
    case AccessProfile::kPointerChase: return "pointer-chase";
  }
  return "?";
}

SyntheticSource::SyntheticSource(SyntheticConfig config, util::Rng rng)
    : cfg_(config), rng_(rng), now_ps_(static_cast<double>(config.start_ps)) {
  if (cfg_.banks == 0 || cfg_.rows_per_bank == 0)
    throw std::invalid_argument("SyntheticSource: zero banks or rows");
  if (cfg_.mean_interarrival_ps <= 0.0)
    throw std::invalid_argument("SyntheticSource: non-positive interarrival");
  if (cfg_.profile == AccessProfile::kHotspot) {
    hot_rows_.reserve(cfg_.hotspot_rows);
    for (std::uint32_t i = 0; i < cfg_.hotspot_rows; ++i)
      hot_rows_.push_back(static_cast<dram::RowId>(rng_.below(cfg_.rows_per_bank)));
  }
  cursor_ = static_cast<dram::RowId>(rng_.below(cfg_.rows_per_bank));
}

dram::RowId SyntheticSource::next_row() {
  const dram::RowId rows = cfg_.rows_per_bank;
  switch (cfg_.profile) {
    case AccessProfile::kStreaming:
      cursor_ = (cursor_ + 1) % rows;
      return cursor_;
    case AccessProfile::kStrided:
      cursor_ = (cursor_ + cfg_.stride) % rows;
      return cursor_;
    case AccessProfile::kRandom:
      return static_cast<dram::RowId>(rng_.below(rows));
    case AccessProfile::kHotspot:
      if (!hot_rows_.empty() && rng_.bernoulli(cfg_.hotspot_bias))
        return hot_rows_[rng_.below(hot_rows_.size())];
      return static_cast<dram::RowId>(rng_.below(rows));
    case AccessProfile::kPointerChase: {
      // Random walk: jump up to +/- chase_jump rows, occasionally revisit.
      const auto jump = static_cast<std::int64_t>(
                            rng_.below(2ull * cfg_.chase_jump + 1)) -
                        static_cast<std::int64_t>(cfg_.chase_jump);
      auto pos = static_cast<std::int64_t>(cursor_) + jump;
      const auto n = static_cast<std::int64_t>(rows);
      pos = ((pos % n) + n) % n;
      cursor_ = static_cast<dram::RowId>(pos);
      return cursor_;
    }
  }
  return 0;
}

std::optional<AccessRecord> SyntheticSource::next() {
  now_ps_ += rng_.exponential(cfg_.mean_interarrival_ps);
  AccessRecord rec;
  rec.time_ps = static_cast<std::uint64_t>(now_ps_);
  rec.row = next_row();
  // Round-robin with a random skip keeps banks evenly loaded without a
  // lockstep pattern.
  bank_cursor_ = (bank_cursor_ + 1 + static_cast<std::uint32_t>(rng_.below(3))) %
                 cfg_.banks;
  rec.bank = bank_cursor_;
  rec.write = rng_.bernoulli(cfg_.write_fraction);
  rec.is_attack = false;
  rec.source = cfg_.source_id;
  return rec;
}

std::vector<SyntheticConfig> mixed_workload(std::uint32_t banks,
                                            dram::RowId rows_per_bank,
                                            std::uint64_t t_refi_ps,
                                            double target_acts_per_interval_per_bank) {
  if (target_acts_per_interval_per_bank <= 0.0)
    throw std::invalid_argument("mixed_workload: non-positive target rate");
  // Four application streams (one per core of Table I). Shares model a
  // memory-intensive SPEC mix, which is strongly row-reuse dominated:
  // most DRAM activations revisit a small working set of rows (the
  // property the 32-entry history table exploits; see the A1 ablation).
  struct Slice {
    AccessProfile profile;
    double share;
  };
  const Slice slices[] = {
      {AccessProfile::kHotspot, 0.96},
      {AccessProfile::kPointerChase, 0.02},
      {AccessProfile::kStreaming, 0.015},
      {AccessProfile::kRandom, 0.005},
  };
  const double total_rate_per_ps =
      target_acts_per_interval_per_bank * static_cast<double>(banks) /
      static_cast<double>(t_refi_ps);

  std::vector<SyntheticConfig> configs;
  SourceId id = 0;
  for (const auto& s : slices) {
    SyntheticConfig c;
    c.profile = s.profile;
    c.banks = banks;
    c.rows_per_bank = rows_per_bank;
    c.mean_interarrival_ps = 1.0 / (total_rate_per_ps * s.share);
    c.source_id = id++;
    // Row-reuse calibration: the hot working set must fit the history
    // table (paper: 32 entries was "the best optimization" for the
    // simulated traces), and the pointer-chaser drifts slowly.
    c.hotspot_rows = 8;
    c.hotspot_bias = 0.98;
    c.chase_jump = 4;
    configs.push_back(c);
  }
  return configs;
}

}  // namespace tvp::trace
