#include "tvp/trace/corpus.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>
#include <type_traits>

#include "tvp/util/crc32.hpp"
#include "tvp/util/failpoint.hpp"

#if defined(TVP_HAVE_ZSTD) && TVP_HAVE_ZSTD
#include <zstd.h>
#endif

namespace tvp::trace {

namespace fp = util::fp;

/// See corpus.hpp: one shared read-only mapping of a corpus file plus
/// the per-block verified bits. Sources hold it by shared_ptr; the last
/// one to go unmaps.
struct CorpusMapping {
  const unsigned char* base = nullptr;
  std::uint64_t size = 0;
  /// Per-block trust-after-verify bits: bit 0 = record payload checked,
  /// bit 1 = partition lanes checked (set with fetch_or so the two
  /// sweeps compose).
  std::unique_ptr<std::atomic<std::uint8_t>[]> verified;
  /// Per-(block, bank) lane row maxima, filled by the partition sweep
  /// (published by the bit-1 release store); lets every source range-
  /// check a whole lane in O(1). Empty when the corpus has no partition
  /// index. Atomics because racing sources may write the same values.
  std::unique_ptr<std::atomic<std::uint32_t>[]> lane_max_rows;

  ~CorpusMapping() {
    if (base != nullptr)
      ::munmap(const_cast<unsigned char*>(base), static_cast<std::size_t>(size));
  }
};

// The zero-copy contract: bytes on disk ARE AccessRecords in memory.
// Any change to AccessRecord that moves these offsets is a format
// break and must bump the corpus version.
static_assert(std::is_standard_layout_v<AccessRecord> &&
              std::is_trivially_copyable_v<AccessRecord>);
static_assert(sizeof(AccessRecord) == 24);
static_assert(offsetof(AccessRecord, time_ps) == 0);
static_assert(offsetof(AccessRecord, bank) == 8);
static_assert(offsetof(AccessRecord, row) == 12);
static_assert(offsetof(AccessRecord, write) == 16);
static_assert(offsetof(AccessRecord, is_attack) == 17);
static_assert(offsetof(AccessRecord, source) == 18);
static_assert(std::endian::native == std::endian::little,
              "the corpus format stores little-endian integers in place");

namespace {

constexpr std::size_t kRecordBytes = sizeof(AccessRecord);
constexpr std::size_t kFileHeaderBytes = 32;
constexpr std::size_t kBlockHeaderBytes = 40;
constexpr std::size_t kFooterHeadBytes = 32;
constexpr std::size_t kIndexEntryBytes = 48;
constexpr std::size_t kTrailerBytes = 24;
constexpr std::uint32_t kVersion = 2;
constexpr char kFileMagic[4] = {'T', 'V', 'P', 'C'};
constexpr char kBlockMagic[4] = {'T', 'V', 'P', 'B'};
constexpr char kFooterMagic[4] = {'T', 'V', 'P', 'F'};
constexpr char kTrailerMagic[8] = {'T', 'V', 'P', 'C', 'E', 'N', 'D', '\0'};
// Footer extension framing the per-block partition index ("PIDX").
constexpr std::uint32_t kPartitionMagic = 0x58444950u;
constexpr std::size_t kPartitionHeadBytes = 8;    // magic + bank count
constexpr std::size_t kPartitionEntryBytes = 16;  // offset + bytes + crc
// Per-bank/per-record sizes of a block's lane region: a u32 count per
// bank, then the concatenated lane columns (u64 time + u32 row + u32
// span-relative serial + u8 write flag per record), each column padded
// to an 8-byte boundary as a whole.
constexpr std::size_t kLaneBytesPerRecord = 8 + 4 + 4 + 1;

constexpr std::size_t pad8_sz(std::size_t n) { return (n + 7u) & ~std::size_t{7}; }

/// Exact byte size of one block's lane region.
constexpr std::size_t partition_region_bytes(std::uint32_t banks,
                                             std::size_t records) {
  return pad8_sz(std::size_t{banks} * 4) + records * 16 + pad8_sz(records);
}

// Failpoint sites, one per syscall location (see util/failpoint.hpp).
constexpr const char* kSiteCreateOpen = "corpus.create.open";
constexpr const char* kSiteHeaderWrite = "corpus.header.write";
constexpr const char* kSiteBlockWrite = "corpus.block.write";
constexpr const char* kSiteFooterWrite = "corpus.footer.write";
constexpr const char* kSiteTrailerWrite = "corpus.trailer.write";
constexpr const char* kSiteCloseFsync = "corpus.close.fsync";
constexpr const char* kSiteDirOpen = "corpus.dir.open";
constexpr const char* kSiteDirFsync = "corpus.dir.fsync";
constexpr const char* kSiteReadOpen = "corpus.read.open";
constexpr const char* kSiteReadMmap = "corpus.read.mmap";
constexpr const char* kSiteReadPread = "corpus.read.pread";

constexpr std::size_t pad8(std::size_t n) { return (n + 7u) & ~std::size_t{7}; }

void store_u32(unsigned char* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void store_u64(unsigned char* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t load_u32(const unsigned char* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t load_u64(const unsigned char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

[[noreturn]] void corrupt(const std::string& path, const std::string& what) {
  throw std::runtime_error("Corpus " + path + ": " + what);
}

[[noreturn]] void io_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("Corpus " + path + ": " + what + ": " +
                           std::strerror(errno));
}

// Reads exactly @p size bytes at @p offset, retrying EINTR; throws on
// error or short read (a short read here always means truncation).
void pread_exact(int fd, void* buf, std::size_t size, std::uint64_t offset,
                 const std::string& path) {
  auto* p = static_cast<unsigned char*>(buf);
  while (size > 0) {
    const ssize_t n = fp::pread_eintr(kSiteReadPread, fd, p, size,
                                      static_cast<::off_t>(offset));
    if (n < 0) io_fail(path, "read failed");
    if (n == 0) corrupt(path, "unexpected end of file (truncated)");
    p += n;
    offset += static_cast<std::uint64_t>(n);
    size -= static_cast<std::size_t>(n);
  }
}

// Validates that @p count packed records at @p bytes decode to valid
// AccessRecords: the two bool bytes must be 0 or 1 (anything else means
// the bytes were not produced by our writer — reinterpreting them as
// bool would be undefined).
void check_record_encoding(const unsigned char* bytes, std::size_t count,
                           const std::string& path, std::size_t block) {
  for (std::size_t i = 0; i < count; ++i) {
    // Both flag bytes at once: any bit above the LSB in either byte
    // means a value other than 0/1.
    std::uint16_t flags;
    std::memcpy(&flags, bytes + i * kRecordBytes + 16, 2);
    if (flags & 0xFEFEu)
      corrupt(path, "block " + std::to_string(block) +
                        " record " + std::to_string(i) +
                        " has an invalid flag byte");
  }
}

struct ParsedCorpus {
  std::uint64_t file_size = 0;
  std::uint64_t footer_offset = 0;
  CorpusInfo info;
};

// Parses and validates header + trailer + footer through @p fd. Only
// O(footer) bytes are read; block payloads stay untouched.
ParsedCorpus parse_corpus(int fd, const std::string& path) {
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) io_fail(path, "cannot stat");
  ParsedCorpus parsed;
  parsed.file_size = static_cast<std::uint64_t>(st.st_size);
  if (parsed.file_size < kFileHeaderBytes + kFooterHeadBytes + kTrailerBytes)
    corrupt(path, "file too small to be a corpus (" +
                      std::to_string(parsed.file_size) + " bytes)");

  unsigned char header[kFileHeaderBytes];
  pread_exact(fd, header, sizeof header, 0, path);
  if (std::memcmp(header, kFileMagic, 4) != 0)
    corrupt(path, "bad file magic (not a .tvpc corpus)");
  const std::uint32_t version = load_u32(header + 4);
  if (version != kVersion)
    corrupt(path, "unsupported corpus version " + std::to_string(version));
  const std::uint32_t record_bytes = load_u32(header + 8);
  if (record_bytes != kRecordBytes)
    corrupt(path, "record size " + std::to_string(record_bytes) +
                      " does not match this build's " +
                      std::to_string(kRecordBytes));

  unsigned char trailer[kTrailerBytes];
  pread_exact(fd, trailer, sizeof trailer, parsed.file_size - kTrailerBytes,
              path);
  if (std::memcmp(trailer + 16, kTrailerMagic, 8) != 0)
    corrupt(path, "bad trailer magic (truncated or not a corpus)");
  parsed.footer_offset = load_u64(trailer);
  const std::uint64_t footer_bytes = load_u32(trailer + 8);
  const std::uint32_t footer_crc = load_u32(trailer + 12);
  if (parsed.footer_offset < kFileHeaderBytes ||
      footer_bytes < kFooterHeadBytes ||
      parsed.footer_offset + footer_bytes != parsed.file_size - kTrailerBytes)
    corrupt(path, "trailer does not frame a footer (truncated footer?)");

  std::vector<unsigned char> footer(static_cast<std::size_t>(footer_bytes));
  pread_exact(fd, footer.data(), footer.size(), parsed.footer_offset, path);
  const std::uint32_t got_crc = util::crc32(footer.data(), footer.size());
  if (got_crc != footer_crc)
    corrupt(path, "footer CRC mismatch (corrupt or truncated footer)");
  if (std::memcmp(footer.data(), kFooterMagic, 4) != 0)
    corrupt(path, "bad footer magic");

  CorpusInfo& info = parsed.info;
  info.footer_crc = footer_crc;
  const std::uint64_t block_count = load_u32(footer.data() + 4);
  info.total_records = load_u64(footer.data() + 8);
  const std::uint64_t aggressor_count = load_u64(footer.data() + 16);
  const std::uint64_t victim_count = load_u64(footer.data() + 24);
  const std::uint64_t base_bytes = kFooterHeadBytes +
                                   block_count * kIndexEntryBytes +
                                   (aggressor_count + victim_count) * 8;
  // Exactly two footer shapes exist: the base layout, and the base
  // layout followed by the partition-index extension. Anything else is
  // corruption, not a fallback.
  const bool has_partition =
      footer_bytes ==
      base_bytes + kPartitionHeadBytes + block_count * kPartitionEntryBytes;
  if (!has_partition && footer_bytes != base_bytes)
    corrupt(path, "footer size does not match its counts");

  info.blocks.reserve(static_cast<std::size_t>(block_count));
  std::uint64_t running = 0;
  const unsigned char* entry = footer.data() + kFooterHeadBytes;
  for (std::uint64_t b = 0; b < block_count; ++b, entry += kIndexEntryBytes) {
    CorpusBlockInfo block;
    block.offset = load_u64(entry);
    block.first_record = load_u64(entry + 8);
    block.records = load_u32(entry + 16);
    const std::uint32_t codec = load_u32(entry + 20);
    block.crc = load_u32(entry + 24);
    block.min_time_ps = load_u64(entry + 32);
    block.max_time_ps = load_u64(entry + 40);
    if (codec > static_cast<std::uint32_t>(CorpusCodec::kZstd))
      corrupt(path, "block " + std::to_string(b) + " has unknown codec " +
                        std::to_string(codec));
    block.codec = static_cast<CorpusCodec>(codec);
    if (block.offset < kFileHeaderBytes ||
        block.offset + kBlockHeaderBytes > parsed.footer_offset)
      corrupt(path, "block " + std::to_string(b) + " offset out of range");
    if (block.first_record != running)
      corrupt(path, "block " + std::to_string(b) + " index is not contiguous");
    running += block.records;
    info.blocks.push_back(block);
  }
  if (running != info.total_records)
    corrupt(path, "footer record total does not match its index");

  info.aggressors.reserve(static_cast<std::size_t>(aggressor_count));
  const unsigned char* key = entry;
  for (std::uint64_t i = 0; i < aggressor_count; ++i, key += 8)
    info.aggressors.push_back(load_u64(key));
  info.victims.reserve(static_cast<std::size_t>(victim_count));
  for (std::uint64_t i = 0; i < victim_count; ++i, key += 8)
    info.victims.push_back(load_u64(key));

  if (has_partition) {
    if (load_u32(key) != kPartitionMagic)
      corrupt(path, "partition index has a bad magic");
    info.partition_banks = load_u32(key + 4);
    if (info.partition_banks == 0)
      corrupt(path, "partition index declares zero banks");
    key += kPartitionHeadBytes;
    info.partitions.reserve(static_cast<std::size_t>(block_count));
    for (std::uint64_t b = 0; b < block_count; ++b, key += kPartitionEntryBytes) {
      CorpusPartitionInfo p;
      p.offset = load_u64(key);
      p.bytes = load_u32(key + 8);
      p.crc = load_u32(key + 12);
      if (p.offset < kFileHeaderBytes ||
          p.offset + p.bytes > parsed.footer_offset)
        corrupt(path, "block " + std::to_string(b) +
                          " partition region out of range");
      if (p.bytes != partition_region_bytes(info.partition_banks,
                                            info.blocks[b].records))
        corrupt(path, "block " + std::to_string(b) +
                          " partition size does not match its records");
      info.partitions.push_back(p);
    }
  }
  return parsed;
}

void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = fp::open(kSiteDirOpen, dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) io_fail(path, "cannot open directory " + dir);
  if (fp::fsync_eintr(kSiteDirFsync, fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    io_fail(path, "cannot fsync directory " + dir);
  }
  ::close(fd);
}

}  // namespace

bool corpus_zstd_available() noexcept {
#if defined(TVP_HAVE_ZSTD) && TVP_HAVE_ZSTD
  return true;
#else
  return false;
#endif
}

const std::vector<std::string>& corpus_failpoint_sites() {
  static const std::vector<std::string> sites = {
      kSiteCreateOpen, kSiteHeaderWrite, kSiteBlockWrite, kSiteFooterWrite,
      kSiteTrailerWrite, kSiteCloseFsync, kSiteDirOpen, kSiteDirFsync,
      kSiteReadOpen, kSiteReadMmap, kSiteReadPread,
  };
  return sites;
}

// ---------------------------------------------------------------------------
// CorpusWriter

CorpusWriter::CorpusWriter(const std::string& path)
    : CorpusWriter(path, Options{}) {}

CorpusWriter::CorpusWriter(const std::string& path, Options options)
    : path_(path), options_(options) {
  if (options_.records_per_block == 0)
    throw std::invalid_argument("CorpusWriter: records_per_block must be > 0");
  if (options_.codec == CorpusCodec::kZstd && !corpus_zstd_available())
    throw std::runtime_error(
        "Corpus " + path + ": zstd compression requested but this build "
        "has no zstd support");
  fd_ = fp::open(kSiteCreateOpen, path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                 0644);
  if (fd_ < 0) io_fail(path_, "cannot create");
  block_.reserve(options_.records_per_block);

  unsigned char header[kFileHeaderBytes] = {};
  std::memcpy(header, kFileMagic, 4);
  store_u32(header + 4, kVersion);
  store_u32(header + 8, static_cast<std::uint32_t>(kRecordBytes));
  if (!fp::write_full(kSiteHeaderWrite, fd_, header, sizeof header)) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    ::unlink(path_.c_str());
    errno = saved;
    io_fail(path_, "cannot write header");
  }
  write_offset_ = kFileHeaderBytes;
}

CorpusWriter::~CorpusWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void CorpusWriter::fail(const std::string& what) const { io_fail(path_, what); }

void CorpusWriter::append(const AccessRecord& record) { append(&record, 1); }

void CorpusWriter::append(const AccessRecord* records, std::size_t count) {
  if (fd_ < 0) throw std::logic_error("CorpusWriter: append after close");
  for (std::size_t i = 0; i < count; ++i) {
    const AccessRecord& r = records[i];
    if (r.time_ps < last_time_ps_)
      throw std::invalid_argument(
          "CorpusWriter: record time goes backwards (" +
          std::to_string(r.time_ps) + " after " +
          std::to_string(last_time_ps_) + ")");
    if (options_.partition_banks != 0 && r.bank >= options_.partition_banks)
      throw std::invalid_argument(
          "CorpusWriter: record bank " + std::to_string(r.bank) +
          " outside the partition index's " +
          std::to_string(options_.partition_banks) + " banks");
    last_time_ps_ = r.time_ps;
    block_.push_back(r);
    if (block_.size() >= options_.records_per_block) flush_block();
  }
}

void CorpusWriter::set_aggressors(std::vector<std::uint64_t> keys) {
  aggressors_ = std::move(keys);
}

void CorpusWriter::set_victims(std::vector<std::uint64_t> keys) {
  victims_ = std::move(keys);
}

void CorpusWriter::flush_block() {
  if (block_.empty()) return;
  const std::size_t raw_bytes = block_.size() * kRecordBytes;
  staging_.resize(raw_bytes);
  for (std::size_t i = 0; i < block_.size(); ++i) {
    unsigned char* slot = staging_.data() + i * kRecordBytes;
    std::memcpy(slot, &block_[i], kRecordBytes);
    // The struct's tail padding is indeterminate in memory; the file
    // must be deterministic (its bytes are CRC'd and identity-hashed).
    std::memset(slot + 19, 0, kRecordBytes - 19);
  }
  const std::uint32_t crc = util::crc32(staging_.data(), raw_bytes);

  const unsigned char* payload = staging_.data();
  std::size_t payload_bytes = raw_bytes;
#if defined(TVP_HAVE_ZSTD) && TVP_HAVE_ZSTD
  std::vector<unsigned char> compressed;
  if (options_.codec == CorpusCodec::kZstd) {
    compressed.resize(ZSTD_compressBound(raw_bytes));
    const std::size_t n = ZSTD_compress(compressed.data(), compressed.size(),
                                        staging_.data(), raw_bytes, 3);
    if (ZSTD_isError(n))
      throw std::runtime_error("Corpus " + path_ + ": zstd compression failed: " +
                               ZSTD_getErrorName(n));
    payload = compressed.data();
    payload_bytes = n;
  }
#endif

  CorpusBlockInfo info;
  info.offset = write_offset_;
  info.first_record = total_records_;
  info.records = static_cast<std::uint32_t>(block_.size());
  info.codec = options_.codec;
  info.crc = crc;
  info.min_time_ps = block_.front().time_ps;
  info.max_time_ps = block_.back().time_ps;

  unsigned char header[kBlockHeaderBytes] = {};
  std::memcpy(header, kBlockMagic, 4);
  store_u32(header + 4, static_cast<std::uint32_t>(info.codec));
  store_u32(header + 8, info.records);
  store_u32(header + 12, static_cast<std::uint32_t>(payload_bytes));
  store_u64(header + 16, info.min_time_ps);
  store_u64(header + 24, info.max_time_ps);
  store_u32(header + 32, crc);

  static constexpr unsigned char kPad[8] = {};
  const std::size_t padded = pad8(payload_bytes);
  if (!fp::write_full(kSiteBlockWrite, fd_, header, sizeof header) ||
      !fp::write_full(kSiteBlockWrite, fd_, payload, payload_bytes) ||
      (padded > payload_bytes &&
       !fp::write_full(kSiteBlockWrite, fd_, kPad, padded - payload_bytes)))
    fail("cannot write block");
  write_offset_ += kBlockHeaderBytes + padded;

  if (options_.partition_banks != 0) {
    // The block's scatter pass, done once at write time: per-bank lane
    // columns (time, row, span-relative serial, write flag), laid out
    // bank after bank so replay hands the mapped bytes straight to the
    // controller. All padding is zeroed — the file stays byte-
    // deterministic.
    const std::uint32_t banks = options_.partition_banks;
    const std::size_t n = block_.size();
    const std::size_t region = partition_region_bytes(banks, n);
    lane_staging_.assign(region, 0);
    unsigned char* counts = lane_staging_.data();
    unsigned char* times = counts + pad8(std::size_t{banks} * 4);
    unsigned char* rows = times + n * 8;
    unsigned char* serials = rows + n * 4;
    unsigned char* writes = serials + n * 4;

    std::vector<std::uint32_t> lane_count(banks, 0);
    for (const AccessRecord& r : block_) ++lane_count[r.bank];
    std::vector<std::uint32_t> cursor(banks, 0);
    for (std::uint32_t b = 0, at = 0; b < banks; ++b) {
      store_u32(counts + std::size_t{b} * 4, lane_count[b]);
      cursor[b] = at;
      at += lane_count[b];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const AccessRecord& r = block_[i];
      const std::uint32_t k = cursor[r.bank]++;
      store_u64(times + std::size_t{k} * 8, r.time_ps);
      store_u32(rows + std::size_t{k} * 4, r.row);
      store_u32(serials + std::size_t{k} * 4,
                static_cast<std::uint32_t>(i));
      writes[k] = r.write ? 1 : 0;
    }

    if (region > 0xFFFFFFFFull)
      throw std::invalid_argument(
          "CorpusWriter: block too large for a partition index");
    CorpusPartitionInfo pinfo;
    pinfo.offset = write_offset_;
    pinfo.bytes = static_cast<std::uint32_t>(region);
    pinfo.crc = util::crc32(lane_staging_.data(), region);
    if (!fp::write_full(kSiteBlockWrite, fd_, lane_staging_.data(), region))
      fail("cannot write block partition");
    write_offset_ += region;
    pindex_.push_back(pinfo);
  }

  total_records_ += block_.size();
  index_.push_back(info);
  block_.clear();
}

std::uint32_t CorpusWriter::close() {
  if (fd_ < 0) throw std::logic_error("CorpusWriter: double close");
  flush_block();

  std::sort(aggressors_.begin(), aggressors_.end());
  aggressors_.erase(std::unique(aggressors_.begin(), aggressors_.end()),
                    aggressors_.end());
  std::sort(victims_.begin(), victims_.end());
  victims_.erase(std::unique(victims_.begin(), victims_.end()),
                 victims_.end());

  const std::size_t ext_bytes =
      options_.partition_banks != 0
          ? kPartitionHeadBytes + pindex_.size() * kPartitionEntryBytes
          : 0;
  std::vector<unsigned char> footer(
      kFooterHeadBytes + index_.size() * kIndexEntryBytes +
      (aggressors_.size() + victims_.size()) * 8 + ext_bytes);
  std::memcpy(footer.data(), kFooterMagic, 4);
  store_u32(footer.data() + 4, static_cast<std::uint32_t>(index_.size()));
  store_u64(footer.data() + 8, total_records_);
  store_u64(footer.data() + 16, aggressors_.size());
  store_u64(footer.data() + 24, victims_.size());
  unsigned char* entry = footer.data() + kFooterHeadBytes;
  for (const CorpusBlockInfo& b : index_) {
    store_u64(entry, b.offset);
    store_u64(entry + 8, b.first_record);
    store_u32(entry + 16, b.records);
    store_u32(entry + 20, static_cast<std::uint32_t>(b.codec));
    store_u32(entry + 24, b.crc);
    store_u32(entry + 28, 0);
    store_u64(entry + 32, b.min_time_ps);
    store_u64(entry + 40, b.max_time_ps);
    entry += kIndexEntryBytes;
  }
  for (const std::uint64_t key : aggressors_) {
    store_u64(entry, key);
    entry += 8;
  }
  for (const std::uint64_t key : victims_) {
    store_u64(entry, key);
    entry += 8;
  }
  if (options_.partition_banks != 0) {
    // Footer extension: the partition index's frame. Covered by the
    // footer CRC like everything else, so a tampered lane frame fails
    // the identity check before any lane byte is trusted.
    store_u32(entry, kPartitionMagic);
    store_u32(entry + 4, options_.partition_banks);
    entry += kPartitionHeadBytes;
    for (const CorpusPartitionInfo& p : pindex_) {
      store_u64(entry, p.offset);
      store_u32(entry + 8, p.bytes);
      store_u32(entry + 12, p.crc);
      entry += kPartitionEntryBytes;
    }
  }
  const std::uint32_t footer_crc = util::crc32(footer.data(), footer.size());

  unsigned char trailer[kTrailerBytes] = {};
  store_u64(trailer, write_offset_);
  store_u32(trailer + 8, static_cast<std::uint32_t>(footer.size()));
  store_u32(trailer + 12, footer_crc);
  std::memcpy(trailer + 16, kTrailerMagic, 8);

  if (!fp::write_full(kSiteFooterWrite, fd_, footer.data(), footer.size()))
    fail("cannot write footer");
  if (!fp::write_full(kSiteTrailerWrite, fd_, trailer, sizeof trailer))
    fail("cannot write trailer");
  if (fp::fsync_eintr(kSiteCloseFsync, fd_) != 0) fail("cannot fsync");
  ::close(fd_);
  fd_ = -1;
  fsync_parent_dir(path_);
  return footer_crc;
}

// ---------------------------------------------------------------------------
// MmapSource

namespace {

/// Process-wide registry of shared mappings. Keyed by (device, inode,
/// size, mtime_ns, identity): a corpus rewritten in place gets a fresh
/// mapping with cleared verified bits. (mtime granularity is the
/// kernel's coarse clock; an in-place same-size same-identity rewrite
/// inside that window is not a supported pattern — the campaign service
/// pins the identity separately for exactly that reason.)
using MappingKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                              std::uint64_t, std::uint32_t>;
std::mutex g_mappings_mutex;
std::map<MappingKey, std::weak_ptr<CorpusMapping>> g_mappings;

/// Strong refs to the most recently acquired mappings, so a sweep that
/// opens and closes one source per cell keeps the mapping (and its
/// verified bits) warm between cells. Read-only file-backed pages stay
/// reclaimable while mapped, so this pins address space, not memory.
constexpr std::size_t kMappingKeepAlive = 8;
std::shared_ptr<CorpusMapping> g_keep_alive[kMappingKeepAlive];
std::size_t g_keep_alive_next = 0;

void keep_alive(const std::shared_ptr<CorpusMapping>& mapping) {
  for (const auto& held : g_keep_alive)
    if (held == mapping) return;
  g_keep_alive[g_keep_alive_next++ % kMappingKeepAlive] = mapping;
}

/// Returns the shared mapping for the corpus behind @p fd, mapping it
/// on first acquire. Null on any failure (injected or real — e.g. a
/// filesystem without mmap support); the caller then falls back to
/// pread() per block.
std::shared_ptr<CorpusMapping> acquire_mapping(int fd,
                                               std::uint64_t file_size,
                                               std::size_t blocks,
                                               std::uint32_t lane_banks,
                                               std::uint32_t identity) {
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) return nullptr;
  const MappingKey key{
      static_cast<std::uint64_t>(st.st_dev),
      static_cast<std::uint64_t>(st.st_ino),
      file_size,
      static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1'000'000'000ull +
          static_cast<std::uint64_t>(st.st_mtim.tv_nsec),
      identity};

  std::lock_guard<std::mutex> lock(g_mappings_mutex);
  for (auto it = g_mappings.begin(); it != g_mappings.end();)
    it = it->second.expired() ? g_mappings.erase(it) : std::next(it);
  if (const auto it = g_mappings.find(key); it != g_mappings.end())
    if (auto existing = it->second.lock()) {
      keep_alive(existing);
      return existing;
    }

  void* base = fp::mmap(kSiteReadMmap, nullptr, file_size, PROT_READ,
                        MAP_PRIVATE, fd, 0);
  if (base == MAP_FAILED) return nullptr;
  // Replay walks the file front to back; aggressive readahead cuts the
  // page-fault stalls. Advisory only — failure is fine.
  (void)::posix_madvise(base, file_size, POSIX_MADV_SEQUENTIAL);
  (void)::posix_madvise(base, file_size, POSIX_MADV_WILLNEED);

  auto mapping = std::make_shared<CorpusMapping>();
  mapping->base = static_cast<const unsigned char*>(base);
  mapping->size = file_size;
  mapping->verified = std::make_unique<std::atomic<std::uint8_t>[]>(blocks);
  for (std::size_t i = 0; i < blocks; ++i)
    mapping->verified[i].store(0, std::memory_order_relaxed);
  if (lane_banks != 0) {
    const std::size_t cells = blocks * lane_banks;
    mapping->lane_max_rows =
        std::make_unique<std::atomic<std::uint32_t>[]>(cells);
    for (std::size_t i = 0; i < cells; ++i)
      mapping->lane_max_rows[i].store(0, std::memory_order_relaxed);
  }
  g_mappings[key] = mapping;
  keep_alive(mapping);
  return mapping;
}

}  // namespace

MmapSource::MmapSource(const std::string& path) : path_(path) {
  fd_ = fp::open(kSiteReadOpen, path.c_str(), O_RDONLY);
  if (fd_ < 0) io_fail(path_, "cannot open");
  try {
    ParsedCorpus parsed = parse_corpus(fd_, path_);
    file_size_ = parsed.file_size;
    info_ = std::move(parsed.info);
    for (const CorpusBlockInfo& b : info_.blocks)
      if (b.codec == CorpusCodec::kZstd && !corpus_zstd_available())
        corrupt(path_,
                "contains zstd-compressed blocks but this build has no "
                "zstd support");
  } catch (...) {
    ::close(fd_);
    throw;
  }
  mapping_ = acquire_mapping(fd_, file_size_, info_.blocks.size(),
                             info_.partition_banks, info_.footer_crc);
  if (mapping_) base_ = mapping_->base;
  lanes_.resize(info_.partition_banks);
}

MmapSource::~MmapSource() {
  if (fd_ >= 0) ::close(fd_);
}

void MmapSource::fail(const std::string& what) const { corrupt(path_, what); }

// Loads block @p index and points span_ at its records. Raw blocks in
// mapped mode hand out the mapped bytes themselves (zero-copy);
// everything else decodes into scratch_.
bool MmapSource::load_block(std::size_t index) {
  const CorpusBlockInfo& b = info_.blocks[index];
  const std::uint64_t payload_offset = b.offset + kBlockHeaderBytes;
  const std::uint64_t raw_bytes = std::uint64_t{b.records} * kRecordBytes;

  unsigned char header[kBlockHeaderBytes];
  if (base_ != nullptr)
    std::memcpy(header, base_ + b.offset, kBlockHeaderBytes);
  else
    pread_exact(fd_, header, sizeof header, b.offset, path_);
  if (std::memcmp(header, kBlockMagic, 4) != 0)
    fail("block " + std::to_string(index) + " has a bad magic");
  if (load_u32(header + 4) != static_cast<std::uint32_t>(b.codec) ||
      load_u32(header + 8) != b.records ||
      load_u32(header + 32) != b.crc)
    fail("block " + std::to_string(index) +
         " header disagrees with the footer index");
  const std::uint64_t payload_bytes = load_u32(header + 12);
  if (payload_offset + payload_bytes > file_size_ - kTrailerBytes)
    fail("block " + std::to_string(index) + " payload out of range");

  if (b.codec == CorpusCodec::kRaw) {
    if (payload_bytes != raw_bytes)
      fail("block " + std::to_string(index) + " payload size mismatch");
    if (base_ != nullptr) {
      const unsigned char* payload = base_ + payload_offset;
      // Trust-after-verify, shared process-wide: if a concurrent source
      // races us here both verify — harmless, the bytes are immutable.
      // Bit 0 covers the record payload (bit 1 is the partition sweep).
      if (!(mapping_->verified[index].load(std::memory_order_acquire) & 1)) {
        if (util::crc32(payload, static_cast<std::size_t>(raw_bytes)) != b.crc)
          fail("block " + std::to_string(index) + " CRC mismatch (corrupt)");
        check_record_encoding(payload, b.records, path_, index);
        mapping_->verified[index].fetch_or(1, std::memory_order_release);
      }
      span_ = reinterpret_cast<const AccessRecord*>(payload);
    } else {
      // pread re-reads the bytes on every pass, so re-verify each time.
      scratch_.resize(b.records);
      pread_exact(fd_, scratch_.data(), static_cast<std::size_t>(raw_bytes),
                  payload_offset, path_);
      const auto* bytes = reinterpret_cast<const unsigned char*>(scratch_.data());
      if (util::crc32(bytes, static_cast<std::size_t>(raw_bytes)) != b.crc)
        fail("block " + std::to_string(index) + " CRC mismatch (corrupt)");
      check_record_encoding(bytes, b.records, path_, index);
      span_ = scratch_.data();
    }
  } else {
#if defined(TVP_HAVE_ZSTD) && TVP_HAVE_ZSTD
    const unsigned char* compressed = nullptr;
    if (base_ != nullptr) {
      compressed = base_ + payload_offset;
    } else {
      comp_.resize(static_cast<std::size_t>(payload_bytes));
      pread_exact(fd_, comp_.data(), comp_.size(), payload_offset, path_);
      compressed = comp_.data();
    }
    scratch_.resize(b.records);
    const std::size_t n =
        ZSTD_decompress(scratch_.data(), static_cast<std::size_t>(raw_bytes),
                        compressed, static_cast<std::size_t>(payload_bytes));
    if (ZSTD_isError(n) || n != raw_bytes)
      fail("block " + std::to_string(index) + " zstd decompression failed");
    const auto* bytes = reinterpret_cast<const unsigned char*>(scratch_.data());
    if (util::crc32(bytes, static_cast<std::size_t>(raw_bytes)) != b.crc)
      fail("block " + std::to_string(index) + " CRC mismatch (corrupt)");
    check_record_encoding(bytes, b.records, path_, index);
    span_ = scratch_.data();
#else
    fail("block " + std::to_string(index) +
         " is zstd-compressed but this build has no zstd support");
#endif
  }
  span_len_ = b.records;
  span_pos_ = 0;
  return span_len_ > 0;
}

std::optional<AccessRecord> MmapSource::next() {
  while (span_pos_ >= span_len_) {
    if (block_ >= info_.blocks.size()) return std::nullopt;
    load_block(block_++);
  }
  return span_[span_pos_++];
}

std::size_t MmapSource::next_batch(AccessRecord* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    if (span_pos_ >= span_len_) {
      if (block_ >= info_.blocks.size()) break;
      load_block(block_++);
      continue;
    }
    const std::size_t take = std::min(max - n, span_len_ - span_pos_);
    std::memcpy(out + n, span_ + span_pos_, take * kRecordBytes);
    span_pos_ += take;
    n += take;
  }
  return n;
}

std::size_t MmapSource::next_span(const AccessRecord** data) {
  while (span_pos_ >= span_len_) {
    if (block_ >= info_.blocks.size()) {
      *data = nullptr;
      return 0;
    }
    load_block(block_++);
  }
  *data = span_ + span_pos_;
  const std::size_t n = span_len_ - span_pos_;
  span_pos_ = span_len_;
  return n;
}

// Builds lanes_ for block @p index out of the mapped partition region,
// verifying it on first touch (process-wide bit 1): region CRC, then a
// record-by-record cross-check against the block payload — every lane
// element must restate its record's time/row/write under the record's
// bank, serials must ascend, and the counts must cover the block
// exactly. Any disagreement is a hard error: a corpus that advertises
// a partition index must carry a correct one.
bool MmapSource::prepare_lanes(std::size_t index) {
  if (base_ == nullptr || info_.partition_banks == 0 ||
      info_.blocks[index].codec != CorpusCodec::kRaw)
    return false;
  const std::uint32_t banks = info_.partition_banks;
  const CorpusPartitionInfo& p = info_.partitions[index];
  const unsigned char* region = base_ + p.offset;
  const unsigned char* counts = region;
  const unsigned char* times = counts + pad8(std::size_t{banks} * 4);
  const unsigned char* rows = times + std::size_t{span_len_} * 8;
  const unsigned char* serials = rows + std::size_t{span_len_} * 4;
  const unsigned char* writes = serials + std::size_t{span_len_} * 4;

  if (!(mapping_->verified[index].load(std::memory_order_acquire) & 2)) {
    if (util::crc32(region, p.bytes) != p.crc)
      fail("block " + std::to_string(index) +
           " partition CRC mismatch (corrupt)");
    std::uint64_t covered = 0;
    std::size_t at = 0;
    for (std::uint32_t b = 0; b < banks; ++b) {
      const std::uint32_t n = load_u32(counts + std::size_t{b} * 4);
      covered += n;
      if (covered > span_len_)
        fail("block " + std::to_string(index) +
             " partition lane counts exceed the block");
      dram::RowId max_row = 0;
      std::uint32_t prev = 0;
      for (std::uint32_t k = 0; k < n; ++k, ++at) {
        const std::uint32_t serial = load_u32(serials + at * 4);
        if (serial >= span_len_ || (k != 0 && serial <= prev))
          fail("block " + std::to_string(index) +
               " partition serials are not ascending");
        prev = serial;
        const AccessRecord& r = span_[serial];
        const dram::RowId row = load_u32(rows + at * 4);
        if (r.bank != b || r.row != row ||
            r.time_ps != load_u64(times + at * 8) ||
            static_cast<std::uint8_t>(r.write ? 1 : 0) != writes[at])
          fail("block " + std::to_string(index) +
               " partition lane disagrees with its records");
        if (row > max_row) max_row = row;
      }
      mapping_->lane_max_rows[index * banks + b].store(
          max_row, std::memory_order_relaxed);
    }
    if (covered != span_len_)
      fail("block " + std::to_string(index) +
           " partition lanes do not cover the block");
    mapping_->verified[index].fetch_or(2, std::memory_order_release);
  }

  std::size_t at = 0;
  for (std::uint32_t b = 0; b < banks; ++b) {
    const std::uint32_t n = load_u32(counts + std::size_t{b} * 4);
    BankLaneView& lv = lanes_[b];
    lv.rows = reinterpret_cast<const dram::RowId*>(rows + at * 4);
    lv.times = reinterpret_cast<const std::uint64_t*>(times + at * 8);
    lv.serials = reinterpret_cast<const std::uint32_t*>(serials + at * 4);
    lv.writes = writes + at;
    lv.count = n;
    lv.max_row =
        mapping_->lane_max_rows[index * banks + b].load(std::memory_order_relaxed);
    at += n;
  }
  return true;
}

std::size_t MmapSource::span_lanes(const AccessRecord** data,
                                   const BankLaneView** lanes,
                                   std::size_t* lane_banks) {
  *lanes = nullptr;
  *lane_banks = 0;
  // Lanes describe whole blocks: only a span starting at a block
  // boundary gets them (a tail left by next()/next_batch() does not —
  // its serials would be off by the consumed prefix).
  const bool fresh_block = span_pos_ >= span_len_;
  const std::size_t n = next_span(data);
  if (n != 0 && fresh_block && prepare_lanes(block_ - 1)) {
    *lanes = lanes_.data();
    *lane_banks = info_.partition_banks;
  }
  return n;
}

void MmapSource::rewind() {
  block_ = 0;
  span_ = nullptr;
  span_len_ = 0;
  span_pos_ = 0;
}

// ---------------------------------------------------------------------------
// Convenience entry points

CorpusInfo read_corpus_info(const std::string& path) {
  const int fd = fp::open(kSiteReadOpen, path.c_str(), O_RDONLY);
  if (fd < 0) io_fail(path, "cannot open");
  try {
    ParsedCorpus parsed = parse_corpus(fd, path);
    ::close(fd);
    return std::move(parsed.info);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

CorpusInfo verify_corpus(const std::string& path) {
  MmapSource source(path);
  const AccessRecord* span = nullptr;
  const BankLaneView* lanes = nullptr;
  std::size_t lane_banks = 0;
  std::uint64_t records = 0;
  std::uint64_t last_time = 0;
  // span_lanes (not next_span) so a partition index, when present, gets
  // its CRC + cross-check sweep as part of full verification.
  while (const std::size_t n = source.span_lanes(&span, &lanes, &lane_banks)) {
    if (span[0].time_ps < last_time)
      corrupt(path, "records are not time-ordered across blocks");
    for (std::size_t i = 1; i < n; ++i)
      if (span[i].time_ps < span[i - 1].time_ps)
        corrupt(path, "records are not time-ordered");
    last_time = span[n - 1].time_ps;
    records += n;
  }
  if (records != source.info().total_records)
    corrupt(path, "replayed record count does not match the footer");
  return source.info();
}

std::uint32_t write_corpus(const std::string& path,
                           const std::vector<AccessRecord>& records,
                           CorpusWriter::Options options) {
  CorpusWriter writer(path, options);
  writer.append(records.data(), records.size());
  return writer.close();
}

std::vector<AccessRecord> read_corpus(const std::string& path) {
  MmapSource source(path);
  std::vector<AccessRecord> out;
  out.reserve(static_cast<std::size_t>(source.info().total_records));
  const AccessRecord* span = nullptr;
  while (const std::size_t n = source.next_span(&span))
    out.insert(out.end(), span, span + n);
  return out;
}

}  // namespace tvp::trace
