#include "tvp/trace/io.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "tvp/trace/corpus.hpp"

namespace tvp::trace {

namespace {
constexpr char kMagic[4] = {'T', 'V', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

// Fixed-width on-disk record, independent of struct padding.
struct PackedRecord {
  std::uint64_t time_ps;
  std::uint32_t bank;
  std::uint32_t row;
  std::uint8_t flags;  // bit0 = write, bit1 = attack
  std::uint8_t source;
  std::uint8_t pad[6];
};
static_assert(sizeof(PackedRecord) == 24);

PackedRecord pack(const AccessRecord& r) {
  PackedRecord p{};
  p.time_ps = r.time_ps;
  p.bank = r.bank;
  p.row = r.row;
  p.flags = static_cast<std::uint8_t>((r.write ? 1u : 0u) | (r.is_attack ? 2u : 0u));
  p.source = r.source;
  return p;
}

AccessRecord unpack(const PackedRecord& p) {
  AccessRecord r;
  r.time_ps = p.time_ps;
  r.bank = p.bank;
  r.row = p.row;
  r.write = (p.flags & 1u) != 0;
  r.is_attack = (p.flags & 2u) != 0;
  r.source = p.source;
  return r;
}
}  // namespace

std::size_t write_text(std::ostream& os, const std::vector<AccessRecord>& records) {
  os << "# tvp trace v1: time_ps bank row R|W source A|B\n";
  for (const auto& r : records) {
    os << r.time_ps << ' ' << r.bank << ' ' << r.row << ' '
       << (r.write ? 'W' : 'R') << ' ' << static_cast<unsigned>(r.source) << ' '
       << (r.is_attack ? 'A' : 'B') << '\n';
  }
  return records.size();
}

std::vector<AccessRecord> read_text(std::istream& is) {
  std::vector<AccessRecord> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::uint64_t time;
    std::uint32_t bank, row;
    char rw, ab;
    unsigned source;
    if (!(ls >> time)) continue;  // blank / comment-only line
    if (!(ls >> bank >> row >> rw >> source >> ab) ||
        (rw != 'R' && rw != 'W') || (ab != 'A' && ab != 'B'))
      throw std::runtime_error("trace text parse error at line " +
                               std::to_string(lineno));
    AccessRecord r;
    r.time_ps = time;
    r.bank = bank;
    r.row = row;
    r.write = rw == 'W';
    r.source = static_cast<SourceId>(source);
    r.is_attack = ab == 'A';
    out.push_back(r);
  }
  return out;
}

std::size_t write_binary(std::ostream& os, const std::vector<AccessRecord>& records) {
  os.write(kMagic, sizeof kMagic);
  const std::uint32_t version = kVersion;
  const auto count = static_cast<std::uint64_t>(records.size());
  os.write(reinterpret_cast<const char*>(&version), sizeof version);
  os.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto& r : records) {
    const PackedRecord p = pack(r);
    os.write(reinterpret_cast<const char*>(&p), sizeof p);
  }
  return records.size();
}

std::vector<AccessRecord> read_binary(std::istream& is) {
  char magic[4];
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  is.read(magic, sizeof magic);
  is.read(reinterpret_cast<char*>(&version), sizeof version);
  is.read(reinterpret_cast<char*>(&count), sizeof count);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw std::runtime_error("binary trace: bad magic");
  if (version != kVersion)
    throw std::runtime_error("binary trace: unsupported version " +
                             std::to_string(version));
  // The header count is untrusted on-disk data: validate it against the
  // remaining stream size before reserving, so a corrupt header produces
  // the "truncated" error instead of a huge allocation.
  const std::streampos pos = is.tellg();
  if (pos != std::streampos(-1)) {
    is.seekg(0, std::ios::end);
    const std::streampos end = is.tellg();
    is.seekg(pos);
    if (end != std::streampos(-1) &&
        count > static_cast<std::uint64_t>(end - pos) / sizeof(PackedRecord))
      throw std::runtime_error("binary trace: truncated");
  }
  std::vector<AccessRecord> out;
  // Non-seekable streams can't pre-validate: cap the reservation and let
  // push_back grow past it if the records really are there.
  constexpr std::uint64_t kMaxPrereserve = 1u << 20;
  out.reserve(static_cast<std::size_t>(std::min(count, kMaxPrereserve)));
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedRecord p{};
    is.read(reinterpret_cast<char*>(&p), sizeof p);
    if (!is) throw std::runtime_error("binary trace: truncated");
    out.push_back(unpack(p));
  }
  return out;
}

namespace {
bool has_extension(const std::string& path, const char* ext) {
  const std::size_t len = std::strlen(ext);
  if (path.size() < len) return false;
  const std::size_t base = path.size() - len;
  for (std::size_t i = 0; i < len; ++i)
    if (std::tolower(static_cast<unsigned char>(path[base + i])) != ext[i])
      return false;
  return true;
}
}  // namespace

TraceFormat resolve_trace_format(const std::string& path, TraceFormat format) {
  if (format != TraceFormat::kAuto) return format;
  if (has_extension(path, ".tvpt")) return TraceFormat::kBinaryV1;
  if (has_extension(path, ".tvpc")) return TraceFormat::kCorpus;
  return TraceFormat::kText;
}

void save_trace(const std::string& path, const std::vector<AccessRecord>& records,
                TraceFormat format) {
  format = resolve_trace_format(path, format);
  if (format == TraceFormat::kCorpus) {
    write_corpus(path, records);
    return;
  }
  const bool binary = format == TraceFormat::kBinaryV1;
  std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
  if (!os) throw std::runtime_error("save_trace: cannot open " + path);
  if (binary)
    write_binary(os, records);
  else
    write_text(os, records);
  if (!os) throw std::runtime_error("save_trace: write failed for " + path);
}

std::vector<AccessRecord> load_trace(const std::string& path,
                                     TraceFormat format) {
  format = resolve_trace_format(path, format);
  if (format == TraceFormat::kCorpus) return read_corpus(path);
  const bool binary = format == TraceFormat::kBinaryV1;
  std::ifstream is(path, binary ? std::ios::binary : std::ios::in);
  if (!is) throw std::runtime_error("load_trace: cannot open " + path);
  return binary ? read_binary(is) : read_text(is);
}

std::vector<AccessRecord> import_address_trace(std::istream& is,
                                               const dram::AddressMapper& mapper,
                                               double t_ck_ps) {
  if (t_ck_ps <= 0.0)
    throw std::runtime_error("import_address_trace: non-positive clock");
  std::vector<AccessRecord> out;
  std::string line;
  std::size_t lineno = 0;
  std::uint64_t fallback_time = 0;
  std::uint64_t last_time = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    std::istringstream ls(line);
    std::string addr_text, op;
    if (!(ls >> addr_text)) continue;  // blank line
    if (!(ls >> op))
      throw std::runtime_error("address trace: missing op at line " +
                               std::to_string(lineno));
    std::uint64_t addr = 0;
    try {
      addr = std::stoull(addr_text, nullptr, 0);  // handles 0x prefix
    } catch (const std::exception&) {
      throw std::runtime_error("address trace: bad address at line " +
                               std::to_string(lineno));
    }
    bool write = false;
    if (op == "W" || op == "WRITE" || op == "write" || op == "P_MEM_WR")
      write = true;
    else if (op != "R" && op != "READ" && op != "read" && op != "P_MEM_RD" &&
             op != "P_FETCH")
      throw std::runtime_error("address trace: bad op '" + op + "' at line " +
                               std::to_string(lineno));

    std::uint64_t cycle = 0;
    AccessRecord rec;
    if (ls >> cycle) {
      rec.time_ps = static_cast<std::uint64_t>(static_cast<double>(cycle) * t_ck_ps);
    } else {
      fallback_time += static_cast<std::uint64_t>(t_ck_ps);
      rec.time_ps = fallback_time;
    }
    // Tolerate mildly unsorted inputs by clamping monotone.
    rec.time_ps = std::max(rec.time_ps, last_time);
    last_time = rec.time_ps;

    const dram::Address coords = mapper.decode(addr);
    rec.bank = mapper.flat_bank(coords);
    rec.row = coords.row;
    rec.write = write;
    rec.is_attack = false;
    rec.source = 0;
    out.push_back(rec);
  }
  return out;
}

std::vector<AccessRecord> import_address_trace(std::istream& is,
                                               const dram::AddressMapper& mapper,
                                               const dram::Timing& timing) {
  return import_address_trace(is, mapper, timing.t_ck_ps());
}

std::vector<AccessRecord> import_address_trace(std::istream& is,
                                               const dram::AddressMapper& mapper) {
  return import_address_trace(is, mapper, dram::ddr4_timing());
}

}  // namespace tvp::trace
