#include "tvp/trace/source.hpp"

#include <stdexcept>

namespace tvp::trace {

VectorSource::VectorSource(std::vector<AccessRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i)
    if (records_[i].time_ps < records_[i - 1].time_ps)
      throw std::invalid_argument("VectorSource: records not time-sorted");
}

std::optional<AccessRecord> VectorSource::next() {
  if (pos_ >= records_.size()) return std::nullopt;
  return records_[pos_++];
}

MergedSource::MergedSource(std::vector<std::unique_ptr<TraceSource>> sources)
    : sources_(std::move(sources)) {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (!sources_[i]) throw std::invalid_argument("MergedSource: null source");
    refill(i);
  }
}

void MergedSource::refill(std::size_t index) {
  if (auto rec = sources_[index]->next()) heads_.push(Head{*rec, index});
}

std::optional<AccessRecord> MergedSource::next() {
  if (heads_.empty()) return std::nullopt;
  Head head = heads_.top();
  heads_.pop();
  refill(head.index);
  return head.record;
}

LimitSource::LimitSource(std::unique_ptr<TraceSource> inner,
                         std::uint64_t limit_records, std::uint64_t end_ps)
    : inner_(std::move(inner)), remaining_(limit_records), end_ps_(end_ps) {
  if (!inner_) throw std::invalid_argument("LimitSource: null source");
}

std::optional<AccessRecord> LimitSource::next() {
  if (remaining_ == 0) return std::nullopt;
  auto rec = inner_->next();
  if (!rec || rec->time_ps >= end_ps_) {
    remaining_ = 0;
    return std::nullopt;
  }
  --remaining_;
  return rec;
}

std::vector<AccessRecord> drain(TraceSource& source, std::size_t max_records) {
  std::vector<AccessRecord> out;
  while (out.size() < max_records) {
    auto rec = source.next();
    if (!rec) break;
    out.push_back(*rec);
  }
  return out;
}

}  // namespace tvp::trace
