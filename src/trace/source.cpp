#include "tvp/trace/source.hpp"

#include <algorithm>
#include <stdexcept>

namespace tvp::trace {

std::size_t TraceSource::next_batch(AccessRecord* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max) {
    auto rec = next();
    if (!rec) break;
    out[n++] = *rec;
  }
  return n;
}

std::size_t TraceSource::next_span(const AccessRecord** data) {
  *data = nullptr;
  return 0;
}

VectorSource::VectorSource(std::vector<AccessRecord> records)
    : records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i)
    if (records_[i].time_ps < records_[i - 1].time_ps)
      throw std::invalid_argument("VectorSource: records not time-sorted");
}

std::optional<AccessRecord> VectorSource::next() {
  if (pos_ >= records_.size()) return std::nullopt;
  return records_[pos_++];
}

std::size_t VectorSource::next_batch(AccessRecord* out, std::size_t max) {
  const std::size_t n = std::min(max, records_.size() - pos_);
  std::copy_n(records_.begin() + static_cast<std::ptrdiff_t>(pos_), n, out);
  pos_ += n;
  return n;
}

std::size_t VectorSource::next_span(const AccessRecord** data) {
  const std::size_t n = records_.size() - pos_;
  *data = n > 0 ? records_.data() + pos_ : nullptr;
  pos_ = records_.size();
  return n;
}

MergedSource::MergedSource(std::vector<std::unique_ptr<TraceSource>> sources)
    : sources_(std::move(sources)) {
  for (std::size_t i = 0; i < sources_.size(); ++i) {
    if (!sources_[i]) throw std::invalid_argument("MergedSource: null source");
    refill(i);
  }
}

void MergedSource::refill(std::size_t index) {
  if (auto rec = sources_[index]->next()) heads_.push(Head{*rec, index});
}

std::optional<AccessRecord> MergedSource::next() {
  if (heads_.empty()) return std::nullopt;
  Head head = heads_.top();
  heads_.pop();
  refill(head.index);
  return head.record;
}

std::size_t MergedSource::next_batch(AccessRecord* out, std::size_t max) {
  std::size_t n = 0;
  while (n < max && !heads_.empty()) {
    const Head head = heads_.top();
    heads_.pop();
    refill(head.index);
    out[n++] = head.record;
  }
  return n;
}

LimitSource::LimitSource(std::unique_ptr<TraceSource> inner,
                         std::uint64_t limit_records, std::uint64_t end_ps)
    : inner_(std::move(inner)), remaining_(limit_records), end_ps_(end_ps) {
  if (!inner_) throw std::invalid_argument("LimitSource: null source");
}

std::optional<AccessRecord> LimitSource::next() {
  if (remaining_ == 0) return std::nullopt;
  auto rec = inner_->next();
  if (!rec || rec->time_ps >= end_ps_) {
    remaining_ = 0;
    return std::nullopt;
  }
  --remaining_;
  return rec;
}

std::size_t LimitSource::next_batch(AccessRecord* out, std::size_t max) {
  if (remaining_ == 0) return 0;
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(max, remaining_));
  const std::size_t got = inner_->next_batch(out, want);
  // Cut at the time horizon exactly where next() would have: the first
  // out-of-range record kills the stream (records are time-ordered, so
  // everything after it is out of range too).
  for (std::size_t i = 0; i < got; ++i) {
    if (out[i].time_ps >= end_ps_) {
      remaining_ = 0;
      return i;
    }
  }
  remaining_ -= got;
  if (got < want) remaining_ = 0;  // inner exhausted
  return got;
}

std::size_t LimitSource::next_span(const AccessRecord** data) {
  *data = nullptr;
  if (remaining_ == 0) return 0;
  const AccessRecord* span = nullptr;
  std::size_t got = inner_->next_span(&span);
  if (got == 0) {
    remaining_ = 0;
    return 0;
  }
  // Trim at the time horizon first: spans are time-sorted, so the cut
  // is the partition point of time_ps < end_ps_.
  const AccessRecord* cut = std::partition_point(
      span, span + got,
      [this](const AccessRecord& r) { return r.time_ps < end_ps_; });
  const bool time_cut = cut != span + got;
  if (time_cut) got = static_cast<std::size_t>(cut - span);
  if (got >= remaining_) {
    got = static_cast<std::size_t>(remaining_);
    remaining_ = 0;
  } else {
    // A time cut kills the stream even under the record limit.
    remaining_ = time_cut ? 0 : remaining_ - got;
  }
  *data = got > 0 ? span : nullptr;
  return got;
}

std::size_t LimitSource::span_lanes(const AccessRecord** data,
                                    const BankLaneView** lanes,
                                    std::size_t* lane_banks) {
  *data = nullptr;
  *lanes = nullptr;
  *lane_banks = 0;
  if (remaining_ == 0) return 0;
  const AccessRecord* span = nullptr;
  const BankLaneView* inner_lanes = nullptr;
  std::size_t inner_banks = 0;
  std::size_t got = inner_->span_lanes(&span, &inner_lanes, &inner_banks);
  if (got == 0) {
    remaining_ = 0;
    return 0;
  }
  const std::size_t full = got;
  // Same cut-off as next_span: time horizon first, then the record
  // budget.
  const AccessRecord* cut = std::partition_point(
      span, span + got,
      [this](const AccessRecord& r) { return r.time_ps < end_ps_; });
  const bool time_cut = cut != span + got;
  if (time_cut) got = static_cast<std::size_t>(cut - span);
  if (got >= remaining_) {
    got = static_cast<std::size_t>(remaining_);
    remaining_ = 0;
  } else {
    remaining_ = time_cut ? 0 : remaining_ - got;
  }
  *data = got > 0 ? span : nullptr;
  // Lanes describe the inner span in full; a trimmed span would leave
  // them claiming records past the cut, so only an untrimmed span
  // passes them through (the consumer re-partitions otherwise).
  if (got == full && inner_lanes != nullptr) {
    *lanes = inner_lanes;
    *lane_banks = inner_banks;
  }
  return got;
}

std::vector<AccessRecord> drain(TraceSource& source, std::size_t max_records) {
  std::vector<AccessRecord> out;
  while (out.size() < max_records) {
    auto rec = source.next();
    if (!rec) break;
    out.push_back(*rec);
  }
  return out;
}

}  // namespace tvp::trace
