#include "tvp/trace/fuzzer.hpp"

#include <algorithm>
#include <stdexcept>

namespace tvp::trace {

void FuzzParams::validate() const {
  if (pairs_min == 0 || pairs_min > pairs_max)
    throw std::invalid_argument("FuzzParams: need 1 <= pairs_min <= pairs_max");
  if (period_exp_min > period_exp_max || period_exp_max > 16)
    throw std::invalid_argument(
        "FuzzParams: need period_exp_min <= period_exp_max <= 16");
  if (amplitude_max == 0)
    throw std::invalid_argument("FuzzParams: amplitude_max must be >= 1");
  if (decoys_max == 0)
    throw std::invalid_argument("FuzzParams: decoys_max must be >= 1");
  // Each pair needs a region of >= 9 rows so victim = base + 4 +
  // below(region - 8) stays well-defined and pairs stay >= 8 apart.
  if (rows_per_bank < 8 + 9ull * pairs_max)
    throw std::invalid_argument("FuzzParams: bank too small for pairs_max");
}

PatternFuzzer::PatternFuzzer(FuzzParams params) : params_(params) {
  params_.validate();
}

FuzzedPattern PatternFuzzer::pattern(std::uint64_t seed) const {
  util::Rng rng(seed);
  FuzzedPattern out;
  out.seed = seed;

  // 1/2: pattern shape.
  const auto pairs =
      static_cast<std::uint32_t>(rng.between(params_.pairs_min, params_.pairs_max));
  const auto period_exp = static_cast<std::uint32_t>(
      rng.between(params_.period_exp_min, params_.period_exp_max));
  out.period_slots = 1u << period_exp;

  // 3: victims, one per region of the usable row range.
  const dram::RowId region = (params_.rows_per_bank - 8) / pairs;
  out.pairs.resize(pairs);
  for (std::uint32_t j = 0; j < pairs; ++j) {
    const dram::RowId victim =
        4 + j * region + static_cast<dram::RowId>(rng.below(region - 8));
    out.pairs[j].victim = victim;
    out.victims.push_back(victim);
  }

  // 4: per-pair frequency / phase / amplitude.
  for (std::uint32_t j = 0; j < pairs; ++j) {
    auto& pair = out.pairs[j];
    const auto freq_exp = static_cast<std::uint32_t>(rng.below(period_exp + 1));
    pair.appearances = 1u << freq_exp;
    pair.phase =
        static_cast<std::uint32_t>(rng.below(out.period_slots / pair.appearances));
    pair.amplitude =
        static_cast<std::uint32_t>(rng.between(1, params_.amplitude_max));
  }

  // 5: decoy rows (rejection-sampled away from every victim).
  const auto decoys = static_cast<std::uint32_t>(rng.between(1, params_.decoys_max));
  for (std::uint32_t k = 0; k < decoys; ++k) {
    for (;;) {
      const auto row = static_cast<dram::RowId>(rng.below(params_.rows_per_bank));
      const bool near_victim =
          std::any_of(out.victims.begin(), out.victims.end(), [&](dram::RowId v) {
            return (row >= v ? row - v : v - row) <= 4;
          });
      const bool duplicate =
          std::find(out.decoys.begin(), out.decoys.end(), row) != out.decoys.end();
      if (!near_victim && !duplicate) {
        out.decoys.push_back(row);
        break;
      }
    }
  }

  // Expansion: per-slot buckets, pairs in order, decoy fill for empty
  // slots, flattened in slot order.
  std::vector<std::vector<dram::RowId>> buckets(out.period_slots);
  const auto add = [&](std::vector<dram::RowId>& bucket, std::int64_t row) {
    if (row >= 0 && row < static_cast<std::int64_t>(params_.rows_per_bank))
      bucket.push_back(static_cast<dram::RowId>(row));
  };
  for (const auto& pair : out.pairs) {
    const std::uint32_t stride = out.period_slots / pair.appearances;
    const auto v = static_cast<std::int64_t>(pair.victim);
    for (std::uint32_t k = 0; k < pair.appearances; ++k) {
      auto& bucket = buckets[pair.phase + k * stride];
      for (std::uint32_t a = 0; a < pair.amplitude; ++a) {
        if (params_.half_double) {
          add(bucket, v - 2);
          add(bucket, v + 2);
        } else {
          add(bucket, v - 1);
          add(bucket, v + 1);
        }
      }
      if (params_.half_double) add(bucket, (k % 2 == 0) ? v - 1 : v + 1);
    }
  }
  std::size_t decoy_cursor = 0;
  for (auto& bucket : buckets) {
    if (bucket.empty()) {
      bucket.push_back(out.decoys[decoy_cursor]);
      decoy_cursor = (decoy_cursor + 1) % out.decoys.size();
    }
  }
  for (const auto& bucket : buckets)
    out.schedule.insert(out.schedule.end(), bucket.begin(), bucket.end());
  return out;
}

AttackConfig PatternFuzzer::make_attack(const FuzzedPattern& pattern,
                                        dram::BankId bank,
                                        std::uint64_t interarrival_ps,
                                        SourceId source_id) const {
  AttackConfig cfg;
  cfg.pattern = AttackPattern::kFuzzed;
  cfg.bank = bank;
  cfg.victims = pattern.victims;
  cfg.rows_per_bank = params_.rows_per_bank;
  cfg.interarrival_ps = interarrival_ps;
  cfg.source_id = source_id;
  cfg.schedule = pattern.schedule;
  return cfg;
}

}  // namespace tvp::trace
