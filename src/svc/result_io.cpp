#include "tvp/svc/result_io.hpp"

#include <stdexcept>

namespace tvp::svc {

namespace {

void write_running_stat(util::JsonWriter& json, const util::RunningStat& stat) {
  const auto raw = stat.raw();
  json.begin_object();
  json.key("n").value(static_cast<std::uint64_t>(raw.n));
  json.key("mean").value_exact(raw.mean);
  json.key("m2").value_exact(raw.m2);
  json.key("min").value_exact(raw.min);
  json.key("max").value_exact(raw.max);
  json.key("sum").value_exact(raw.sum);
  json.end_object();
}

util::RunningStat read_running_stat(const util::JsonValue& value) {
  util::RunningStat::Raw raw;
  raw.n = value.at("n").as_uint();
  raw.mean = value.at("mean").as_double();
  raw.m2 = value.at("m2").as_double();
  raw.min = value.at("min").as_double();
  raw.max = value.at("max").as_double();
  raw.sum = value.at("sum").as_double();
  return util::RunningStat::from_raw(raw);
}

}  // namespace

void write_run_result(util::JsonWriter& json, const exp::RunResult& result) {
  const mem::ControllerStats& s = result.stats;
  json.begin_object();
  json.key("technique").value(result.technique);
  json.key("demand_acts").value(s.demand_acts);
  json.key("extra_acts").value(s.extra_acts);
  json.key("fp_extra_acts").value(s.fp_extra_acts);
  json.key("triggers").value(s.triggers);
  json.key("refresh_intervals").value(s.refresh_intervals);
  json.key("rows_refreshed").value(s.rows_refreshed);
  json.key("reads").value(s.reads);
  json.key("writes").value(s.writes);
  json.key("delayed_acts").value(s.delayed_acts);
  json.key("first_extra_act_at").value(s.first_extra_act_at);
  json.key("acts_per_interval");
  write_running_stat(json, s.acts_per_interval);
  json.key("extra_acts_by_phase").begin_array();
  for (const auto v : s.extra_acts_by_phase) json.value(v);
  json.end_array();
  json.key("flips").value(result.flips);
  json.key("victim_flips").value(result.victim_flips);
  // Flip events as compact [bank, row, at_activation, interval] rows.
  json.key("flip_events").begin_array();
  for (const auto& e : result.flip_events) {
    json.begin_array();
    json.value(e.bank).value(e.row).value(e.at_activation).value(e.interval);
    json.end_array();
  }
  json.end_array();
  json.key("peak_disturbance").value(result.peak_disturbance);
  json.key("state_bytes_per_bank").value_exact(result.state_bytes_per_bank);
  json.key("records").value(result.records);
  json.key("wall_seconds").value_exact(result.wall_seconds);
  json.end_object();
}

exp::RunResult read_run_result(const util::JsonValue& value) {
  exp::RunResult result;
  mem::ControllerStats& s = result.stats;
  result.technique = value.at("technique").as_string();
  s.demand_acts = value.at("demand_acts").as_uint();
  s.extra_acts = value.at("extra_acts").as_uint();
  s.fp_extra_acts = value.at("fp_extra_acts").as_uint();
  s.triggers = value.at("triggers").as_uint();
  s.refresh_intervals = value.at("refresh_intervals").as_uint();
  s.rows_refreshed = value.at("rows_refreshed").as_uint();
  s.reads = value.at("reads").as_uint();
  s.writes = value.at("writes").as_uint();
  s.delayed_acts = value.at("delayed_acts").as_uint();
  s.first_extra_act_at = value.at("first_extra_act_at").as_uint();
  s.acts_per_interval = read_running_stat(value.at("acts_per_interval"));
  const auto& phases = value.at("extra_acts_by_phase").items();
  if (phases.size() != s.extra_acts_by_phase.size())
    throw std::runtime_error("RunResult: phase histogram size mismatch");
  for (std::size_t i = 0; i < phases.size(); ++i)
    s.extra_acts_by_phase[i] = phases[i].as_uint();
  result.flips = value.at("flips").as_uint();
  result.victim_flips = value.at("victim_flips").as_uint();
  for (const auto& row : value.at("flip_events").items()) {
    const auto& cols = row.items();
    if (cols.size() != 4)
      throw std::runtime_error("RunResult: malformed flip event");
    dram::FlipEvent e;
    e.bank = static_cast<dram::BankId>(cols[0].as_uint());
    e.row = static_cast<dram::RowId>(cols[1].as_uint());
    e.at_activation = cols[2].as_uint();
    e.interval = static_cast<std::uint32_t>(cols[3].as_uint());
    result.flip_events.push_back(e);
  }
  result.peak_disturbance = value.at("peak_disturbance").as_uint();
  result.state_bytes_per_bank = value.at("state_bytes_per_bank").as_double();
  result.records = value.at("records").as_uint();
  result.wall_seconds = value.at("wall_seconds").as_double();
  return result;
}

void write_sweep_cell(util::JsonWriter& json, std::size_t index,
                      const exp::SweepCell& cell) {
  json.begin_object();
  json.key("i").value(static_cast<std::uint64_t>(index));
  json.key("value").value(cell.value);
  json.key("technique").value(cell.technique);
  json.key("result");
  write_run_result(json, cell.result);
  json.end_object();
}

exp::SweepCell read_sweep_cell(const util::JsonValue& value,
                               std::size_t& index) {
  index = value.at("i").as_uint();
  exp::SweepCell cell;
  cell.value = value.at("value").as_string();
  cell.technique = value.at("technique").as_string();
  cell.result = read_run_result(value.at("result"));
  return cell;
}

std::string sweep_result_json(const exp::SweepResult& sweep) {
  util::JsonWriter json;
  json.begin_object();
  json.key("param").value(sweep.param_key);
  json.key("values").begin_array();
  for (const auto& v : sweep.values) json.value(v);
  json.end_array();
  json.key("techniques").begin_array();
  for (const auto& t : sweep.techniques) json.value(t);
  json.end_array();
  json.key("jobs").value(static_cast<std::uint64_t>(sweep.jobs));
  json.key("wall_seconds").value(sweep.wall_seconds);
  json.key("cells").begin_array();
  for (std::size_t i = 0; i < sweep.cells.size(); ++i)
    write_sweep_cell(json, i, sweep.cells[i]);
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace tvp::svc
