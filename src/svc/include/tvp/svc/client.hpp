// Blocking NDJSON client for the campaign service (tvp_submit, tests,
// and user tooling). One request line out, one response line back.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tvp/svc/job.hpp"
#include "tvp/util/json.hpp"

namespace tvp::svc {

class Client {
 public:
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client& operator=(Client&&) = delete;
  ~Client();

  /// Sends one request line and parses the response line; throws
  /// std::runtime_error on transport failure or malformed responses.
  util::JsonValue request(const std::string& line);

  /// Typed wrappers; each throws std::runtime_error carrying the
  /// server's error text when the response is ok:false.
  std::uint64_t submit(const JobSpec& spec);
  std::vector<JobStatus> status();            ///< all jobs
  JobStatus status(std::uint64_t job_id);
  util::JsonValue results(std::uint64_t job_id);  ///< full results payload
  void cancel(std::uint64_t job_id);
  void shutdown(bool drain);
  void ping();

  /// Polls status() until the job reaches a terminal state; returns the
  /// final status. Throws std::runtime_error after @p timeout_seconds.
  JobStatus wait(std::uint64_t job_id, double timeout_seconds = 600.0);

  /// How a results stream finished.
  struct StreamEnd {
    JobState state = JobState::kQueued;
    std::string error;
  };

  /// Subscribes to the job's cell stream ({"op":"results","stream":true})
  /// and blocks until the end event: @p on_cell receives each parsed
  /// {i,value,technique,result} cell object — already-completed cells
  /// replay first, live ones follow as they finish — and the returned
  /// StreamEnd carries the job's terminal state. Throws
  /// std::runtime_error on server errors or transport failure.
  StreamEnd stream_results(
      std::uint64_t job_id,
      const std::function<void(const util::JsonValue& cell)>& on_cell);

 private:
  explicit Client(int fd) : fd_(fd) {}

  util::JsonValue checked(const std::string& line);  ///< throws on ok:false
  util::JsonValue read_line();  ///< next response/event line, parsed

  int fd_ = -1;
  std::string pending_;  // bytes read past the current response line
};

}  // namespace tvp::svc
