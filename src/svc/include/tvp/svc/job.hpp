// Campaign jobs: a parameter sweep described entirely by value, so the
// same description travels over the wire (submit requests), into the
// journal header (crash-safe identity), and through the engine.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tvp/hw/technique.hpp"
#include "tvp/util/json.hpp"

namespace tvp::svc {

/// One sweep job: base config text plus the (param, values, techniques)
/// grid of exp::run_param_sweep. The name keys the journal file, so it
/// is restricted to filesystem-safe characters.
struct JobSpec {
  std::string name;                      ///< [A-Za-z0-9_.-]+, journal key
  std::string config_text;               ///< base config (KeyValueFile text)
  std::string param_key;                 ///< config key being swept
  std::vector<std::string> values;       ///< config-file value strings
  std::vector<std::string> techniques;   ///< hw::to_string names
  /// Optional .tvpc corpus the sweep replays instead of generating its
  /// workload. The engine resolves the corpus identity at submit time
  /// and pins it in trace_hash.
  std::string trace;
  /// Corpus identity (footer CRC, "%08x" hex). Filled by the engine on
  /// submit; journalled, and re-verified against the file on resume so
  /// a kill-and-resume campaign provably replays the same bytes.
  std::string trace_hash;

  std::size_t cell_count() const noexcept {
    return values.size() * techniques.size();
  }

  /// Resolves technique names; throws std::invalid_argument on unknown
  /// names (typos must not silently change a campaign).
  std::vector<hw::Technique> parsed_techniques() const;

  /// Validates the spec shape (name charset, non-empty grid, parsable
  /// config and techniques); throws std::invalid_argument on problems.
  void validate() const;

  /// Serialises the spec as a JSON object with a fixed key order; equal
  /// specs produce equal text, so this string is the spec's identity
  /// (the journal header is compared against it on resume).
  std::string canonical_json() const;

  /// Emits the spec into an open JSON object/array slot.
  void write_json(util::JsonWriter& json) const;

  /// Reads a spec from a parsed JSON object; throws std::runtime_error
  /// on missing/mistyped fields.
  static JobSpec from_json(const util::JsonValue& value);
};

enum class JobState { kQueued, kRunning, kDone, kFailed, kCancelled };

const char* to_string(JobState state) noexcept;

/// Inverse of to_string; throws std::runtime_error on unknown names.
JobState parse_job_state(const std::string& name);

/// A point-in-time view of one job, as reported over the wire.
struct JobStatus {
  std::uint64_t id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  std::size_t total_cells = 0;
  std::size_t completed_cells = 0;  ///< includes resumed cells
  std::size_t resumed_cells = 0;    ///< restored from the journal
  std::string error;                ///< non-empty for kFailed

  void write_json(util::JsonWriter& json) const;
  static JobStatus from_json(const util::JsonValue& value);
};

}  // namespace tvp::svc
