// CampaignEngine — owns long-running experiment jobs end to end.
//
// Jobs enter through a bounded JobQueue (backpressure), run one at a
// time on an executor thread, and execute their sweep cells on the
// existing util::job_count() worker pool via exp::SweepHooks. With a
// journal directory configured, a job is durable from the moment submit
// accepts it: the journal header is written (fsync'd) before the id is
// queued, every completed cell is checkpointed, and start() re-enqueues
// unfinished journals — a killed campaign resumes by replaying the
// journal and recomputing only the missing cells, bit-identical to an
// uninterrupted run.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tvp/exp/sweep.hpp"
#include "tvp/svc/job.hpp"
#include "tvp/svc/queue.hpp"

namespace tvp::svc {

struct EngineConfig {
  std::size_t queue_capacity = 64;
  /// Directory for per-job journals (<name>.tvpj); empty disables
  /// checkpointing (jobs are volatile). Created if missing.
  std::string journal_dir;
  /// Worker threads per sweep; 0 selects util::job_count() (TVP_JOBS).
  std::size_t sweep_jobs = 0;
};

class CampaignEngine {
 public:
  explicit CampaignEngine(EngineConfig config);
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Starts the executor thread. With journaling enabled, first scans
  /// journal_dir and re-submits every journal found there (unfinished
  /// ones resume; finished ones reload instantly from their cells).
  /// Returns the ids of resumed jobs.
  std::vector<std::uint64_t> start();

  /// Validates and enqueues a job. Returns the job id, or 0 with
  /// @p error set when the job is rejected (malformed spec, duplicate
  /// active name, journal/spec mismatch, or queue full — the latter is
  /// the backpressure signal and is safe to retry).
  std::uint64_t submit(JobSpec spec, std::string* error);

  /// Queued jobs are cancelled in place; the running job stops claiming
  /// new cells (in-flight cells finish and are checkpointed). Returns
  /// false for unknown ids or jobs already in a terminal state.
  bool cancel(std::uint64_t id);

  std::optional<JobStatus> status(std::uint64_t id) const;
  std::vector<JobStatus> statuses() const;  ///< all jobs, ascending id

  /// The completed matrix of a kDone job; nullopt otherwise.
  std::optional<exp::SweepResult> result(std::uint64_t id) const;

  /// Stops the engine and joins the executor. @p finish_queued selects
  /// drain semantics: true runs every queued job to completion first;
  /// false stops the running job at the next cell boundary (its journal
  /// keeps the completed cells, so the campaign resumes on the next
  /// start) and leaves queued jobs untouched on disk. Idempotent.
  void shutdown(bool finish_queued);

  /// Journal file for a job name ("" when journaling is disabled).
  std::string journal_path(const std::string& name) const;

 private:
  struct JobRec {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;  // guarded by mu_
    std::size_t total = 0;
    std::atomic<std::size_t> completed{0};
    std::size_t resumed = 0;             // guarded by mu_
    std::string error;                   // guarded by mu_
    std::atomic<bool> stop{false};
    bool cancel_requested = false;       // guarded by mu_
    std::optional<exp::SweepResult> result;  // guarded by mu_
  };

  void executor_loop();
  void run_job(const std::shared_ptr<JobRec>& job);
  JobStatus status_of(const JobRec& job) const;  // mu_ held

  const EngineConfig config_;
  JobQueue queue_;
  std::mutex shutdown_mu_;  // serialises shutdown callers around join()
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<JobRec>> jobs_;
  /// Names mid-submit (reserved before mu_ is released for journal I/O,
  /// so two concurrent submits with one name cannot both pass the
  /// duplicate-active check). Guarded by mu_.
  std::set<std::string> pending_names_;
  std::shared_ptr<JobRec> running_;  // guarded by mu_
  std::uint64_t next_id_ = 1;
  std::atomic<bool> abort_{false};  // drop queued jobs instead of running
  bool started_ = false;
  bool stopped_ = false;
  std::thread executor_;
};

}  // namespace tvp::svc
