// CampaignEngine — owns long-running experiment jobs end to end.
//
// Jobs enter through a bounded JobQueue (backpressure) and run on a
// pool of N executor workers (EngineConfig::workers, default hardware
// concurrency); each worker owns exactly one job at a time, and with it
// that job's journal — two workers never touch one journal, so
// kill-and-resume stays byte-identical per job no matter how many jobs
// run concurrently. With a journal directory configured, a job is
// durable from the moment submit accepts it: the journal header is
// written (fsync'd) before the id is queued, every completed cell is
// checkpointed, and start() re-enqueues unfinished journals — a killed
// campaign resumes by replaying the journal and recomputing only the
// missing cells, bit-identical to an uninterrupted run.
//
// Streaming: subscribe() attaches per-job observers that receive every
// completed cell (already-completed cells replay synchronously before
// subscribe returns, live cells follow in completion order, each
// exactly once) and a single end event when the job reaches a terminal
// state. shutdown() flushes every open subscription with an end event,
// so stream consumers are never left hanging on drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tvp/exp/sweep.hpp"
#include "tvp/svc/job.hpp"
#include "tvp/svc/queue.hpp"

namespace tvp::svc {

struct EngineConfig {
  std::size_t queue_capacity = 64;
  /// Directory for per-job journals (<name>.tvpj); empty disables
  /// checkpointing (jobs are volatile). Created if missing.
  std::string journal_dir;
  /// Worker threads per sweep; 0 selects util::job_count() (TVP_JOBS).
  /// Each *job* gets this many sweep threads, so total thread demand is
  /// roughly workers x sweep_jobs.
  std::size_t sweep_jobs = 0;
  /// Executor workers — jobs running concurrently; 0 selects
  /// std::thread::hardware_concurrency().
  std::size_t workers = 0;
};

class CampaignEngine {
 public:
  /// Streamed cell payload: the serialized
  /// {"i":N,"value":...,"technique":...,"result":{...}} object of
  /// result_io's write_sweep_cell — the same record the journal holds.
  using StreamCellFn = std::function<void(const std::string& cell_json)>;
  /// Fired exactly once per subscription when the job reaches a
  /// terminal state (or engine shutdown flushes it while queued).
  using StreamEndFn =
      std::function<void(JobState final_state, const std::string& error)>;

  explicit CampaignEngine(EngineConfig config);
  ~CampaignEngine();

  CampaignEngine(const CampaignEngine&) = delete;
  CampaignEngine& operator=(const CampaignEngine&) = delete;

  /// Starts the executor workers. With journaling enabled, first scans
  /// journal_dir and re-submits every journal found there (unfinished
  /// ones resume; finished ones reload instantly from their cells).
  /// Returns the ids of resumed jobs.
  std::vector<std::uint64_t> start();

  /// Validates and enqueues a job. Returns the job id, or 0 with
  /// @p error set when the job is rejected (malformed spec, duplicate
  /// active name, journal/spec mismatch, or queue full — the latter is
  /// the backpressure signal and is safe to retry).
  std::uint64_t submit(JobSpec spec, std::string* error);

  /// Queued jobs are cancelled in place; a running job stops claiming
  /// new cells (in-flight cells finish and are checkpointed). Returns
  /// false for unknown ids or jobs already in a terminal state.
  bool cancel(std::uint64_t id);

  std::optional<JobStatus> status(std::uint64_t id) const;
  std::vector<JobStatus> statuses() const;  ///< all jobs, ascending id

  /// The completed matrix of a kDone job; nullopt otherwise.
  std::optional<exp::SweepResult> result(std::uint64_t id) const;

  /// Attaches a stream observer to job @p id. Already-completed cells
  /// are replayed (in completion order) before subscribe returns; live
  /// cells follow, each delivered exactly once; @p on_end fires once at
  /// the terminal state, after which the subscription is gone. For a
  /// job already terminal, everything is delivered synchronously here.
  /// Callbacks run under the job's stream lock, from sweep worker
  /// threads or the subscribing thread — they must be fast and must not
  /// call back into the engine. Returns a token for unsubscribe(), or
  /// 0 when the job id is unknown.
  std::uint64_t subscribe(std::uint64_t id, StreamCellFn on_cell,
                          StreamEndFn on_end);

  /// Detaches a subscription; unknown ids/tokens are a no-op (the
  /// subscription may already have ended).
  void unsubscribe(std::uint64_t id, std::uint64_t token);

  /// Stops the engine and joins the executors. @p finish_queued selects
  /// drain semantics: true runs every queued job to completion first;
  /// false stops running jobs at the next cell boundary (their journals
  /// keep the completed cells, so the campaigns resume on the next
  /// start) and leaves queued jobs untouched on disk. Every open stream
  /// subscription is flushed with an end event. Idempotent.
  void shutdown(bool finish_queued);

  /// Journal file for a job name ("" when journaling is disabled).
  std::string journal_path(const std::string& name) const;

  /// Executor workers resolved from the config (for logging/tools).
  std::size_t worker_count() const noexcept { return worker_count_; }

 private:
  struct StreamSub {
    StreamCellFn on_cell;
    StreamEndFn on_end;
  };

  struct JobRec {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;  // guarded by mu_
    std::size_t total = 0;
    std::atomic<std::size_t> completed{0};
    std::size_t resumed = 0;             // guarded by mu_
    std::string error;                   // guarded by mu_
    std::atomic<bool> stop{false};
    bool cancel_requested = false;       // guarded by mu_
    std::optional<exp::SweepResult> result;  // guarded by mu_

    // Stream state, guarded by stream_mu (never held together with mu_
    // except in mu_ -> stream_mu order).
    std::mutex stream_mu;
    std::vector<std::string> stream_cells;  ///< replay log for late subscribers
    bool stream_ended = false;
    std::map<std::uint64_t, StreamSub> stream_subs;
    std::uint64_t next_stream_token = 1;
  };

  void executor_loop();
  void run_job(const std::shared_ptr<JobRec>& job);
  JobStatus status_of(const JobRec& job) const;  // mu_ held
  /// Appends @p cell_json to the job's replay log and fans it out to
  /// every subscriber.
  void deliver_cell(const std::shared_ptr<JobRec>& job,
                    const std::string& cell_json);
  /// Fires every subscriber's end callback once and seals the stream;
  /// a second call is a no-op.
  void deliver_end(const std::shared_ptr<JobRec>& job, JobState state,
                   const std::string& error);

  const EngineConfig config_;
  std::size_t worker_count_ = 1;
  JobQueue queue_;
  std::mutex shutdown_mu_;  // serialises shutdown callers around join()
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::shared_ptr<JobRec>> jobs_;
  /// Names mid-submit (reserved before mu_ is released for journal I/O,
  /// so two concurrent submits with one name cannot both pass the
  /// duplicate-active check). Guarded by mu_.
  std::set<std::string> pending_names_;
  /// Jobs currently owned by a worker, by id. Guarded by mu_.
  std::map<std::uint64_t, std::shared_ptr<JobRec>> running_;
  std::uint64_t next_id_ = 1;
  std::atomic<bool> abort_{false};  // drop queued jobs instead of running
  bool started_ = false;
  bool stopped_ = false;
  std::vector<std::thread> executors_;
};

}  // namespace tvp::svc
