// Newline-delimited-JSON wire protocol for the campaign service.
//
// One request object per line, one response object per line. Requests
// carry an "op" discriminator:
//   {"op":"submit","job":{...JobSpec...}}
//   {"op":"status"} | {"op":"status","job":N}
//   {"op":"results","job":N} | {"op":"results","job":N,"stream":true}
//   {"op":"cancel","job":N}
//   {"op":"shutdown"} | {"op":"shutdown","drain":true}
//   {"op":"ping"}
// Responses always carry "ok"; failures add "error". A full queue
// answers submit with ok:false and "queue full..." — the backpressure
// signal; clients retry later.
//
// Streaming: `results` with "stream":true answers with a stream ack
// {"ok":true,"stream":true,"status":{...}} and then pushes one event
// line per completed cell — already-completed cells replay first, live
// cells follow as they finish — ending with a terminal event:
//   {"stream":"cell","job":N,"cell":{i,value,technique,result}}
//   {"stream":"end","job":N,"state":"done","error":""}
// Events are interleaved with the connection's regular responses, so a
// streaming client distinguishes them by the "stream" string key.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tvp/exp/sweep.hpp"
#include "tvp/svc/job.hpp"

namespace tvp::svc {

/// Malformed request line (bad JSON, unknown op, missing fields).
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct Request {
  enum class Op { kSubmit, kStatus, kResults, kCancel, kShutdown, kPing };
  Op op = Op::kPing;
  JobSpec spec;                 ///< kSubmit
  std::uint64_t job_id = 0;     ///< kResults/kCancel, kStatus when has_job_id
  bool has_job_id = false;
  bool drain = false;           ///< kShutdown: finish queued jobs first
  bool stream = false;          ///< kResults: push cells as they finish
};

/// Parses one request line; throws ProtocolError on malformed input.
Request parse_request(const std::string& line);

// Request builders (client side). Lines come without the trailing
// newline; the transport appends it.
std::string submit_request(const JobSpec& spec);
std::string status_request();
std::string status_request(std::uint64_t job_id);
std::string results_request(std::uint64_t job_id);
std::string stream_results_request(std::uint64_t job_id);
std::string cancel_request(std::uint64_t job_id);
std::string shutdown_request(bool drain);
std::string ping_request();

// Response builders (server side).
std::string error_response(const std::string& message);
std::string ok_response();
std::string submit_response(std::uint64_t job_id);
std::string status_response(const std::vector<JobStatus>& jobs);
/// Results payload: {"ok":true,"status":{...},"csv":"...","sweep":{...}};
/// csv is exp::sweep_to_csv (the byte-stable results file), sweep the
/// full per-cell matrix (result_io).
std::string results_response(const JobStatus& status,
                             const exp::SweepResult& sweep);

// Stream events (server side). The ack confirms the subscription; cell
// events carry the serialized {i,value,technique,result} object of
// result_io::write_sweep_cell verbatim; the end event is the last line
// of the stream.
std::string stream_ack_response(const JobStatus& status);
std::string stream_cell_event(std::uint64_t job_id,
                              const std::string& cell_json);
std::string stream_end_event(std::uint64_t job_id, JobState state,
                             const std::string& error);

}  // namespace tvp::svc
