// Socket front-end for the campaign engine.
//
// A single poll(2) loop serves every connection: requests are one
// NDJSON line each and every handler is O(state) fast (the engine runs
// jobs on its own thread), so one thread multiplexes the listener, all
// clients, and a self-pipe that signal handlers poke for graceful
// SIGINT/SIGTERM drain. Listens on a unix socket, 127.0.0.1 TCP, or
// both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tvp/svc/engine.hpp"
#include "tvp/svc/wire.hpp"

namespace tvp::svc {

struct ServerConfig {
  /// Unix-domain socket path (empty = no unix listener). A stale file
  /// from a killed daemon is replaced; the file is removed on close.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (-1 = no TCP listener, 0 = ephemeral).
  int tcp_port = -1;
  EngineConfig engine;
  /// A request line larger than this closes the connection (guards the
  /// server against a runaway client).
  std::size_t max_line_bytes = 4u << 20;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the engine (resuming journaled
  /// campaigns); returns the resumed job ids. Throws std::runtime_error
  /// on bind failure.
  std::vector<std::uint64_t> start();

  /// Actual TCP port after start() (for tcp_port = 0).
  int tcp_port() const noexcept { return bound_port_; }

  /// Serves until a shutdown request arrives or request_stop() is
  /// called. On exit every connection is closed, the engine is shut
  /// down (shutdown ops honour their drain flag; request_stop uses the
  /// journal-and-exit path) and the unix socket file is removed.
  void serve();

  /// Wakes serve() and makes it exit via the graceful-drain path.
  /// Async-signal-safe (writes one byte to a pipe).
  void request_stop() noexcept;

  /// Routes SIGINT/SIGTERM to request_stop() of @p server (one server
  /// per process).
  static void install_signal_handlers(Server& server);

  CampaignEngine& engine() noexcept { return engine_; }

 private:
  struct Connection {
    int fd = -1;
    std::string in;
    std::string out;
    bool close_after_flush = false;
  };

  /// How long serve() stops polling the listeners after accept() fails
  /// with fd exhaustion (EMFILE/ENFILE) before retrying.
  static constexpr int kAcceptRetryMs = 100;

  void close_listeners();
  void close_all();
  /// Handles every complete line in @p conn.in; false = drop connection.
  bool handle_input(Connection& conn);
  std::string handle_request(const Request& request);

  ServerConfig config_;
  CampaignEngine engine_;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_port_ = -1;
  int stop_pipe_[2] = {-1, -1};
  bool unix_bound_ = false;
  bool shutdown_requested_ = false;  // via wire op
  bool shutdown_drain_ = false;
  bool accept_paused_ = false;  // backing off after EMFILE/ENFILE
  std::vector<Connection> connections_;
};

}  // namespace tvp::svc
