// Socket front-end for the campaign engine.
//
// One epoll(7) loop serves every connection edge-triggered: requests
// are one NDJSON line each and every handler is O(state) fast (the
// engine runs jobs on its worker pool), so one thread multiplexes the
// listeners, thousands of clients, a wake pipe that sweep workers poke
// to deliver stream events, and a self-pipe that signal handlers poke
// for graceful SIGINT/SIGTERM drain. Listens on a unix socket,
// 127.0.0.1 TCP, or both.
//
// Slow clients cannot hurt the daemon: pending output is drained
// through an offset cursor (no O(n²) re-copying under a trickling
// SO_SNDBUF) and is capped at max_out_bytes per connection — a client
// that requests but never reads is dropped, not buffered until OOM.
//
// Shutdown (wire op or signal) drains gracefully: listeners close
// immediately, the engine stops on its own thread, and the loop keeps
// serving status requests and flushing replies/stream events until the
// engine is down and every subscriber saw its end event (bounded by a
// flush grace period for unreachable clients).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "tvp/svc/engine.hpp"
#include "tvp/svc/wire.hpp"

namespace tvp::svc {

struct ServerConfig {
  /// Unix-domain socket path (empty = no unix listener). A stale file
  /// from a killed daemon is replaced after a connect-probe confirms
  /// nothing answers there; start() throws instead of severing a live
  /// daemon. The file is removed on close.
  std::string unix_path;
  /// TCP port on 127.0.0.1 (-1 = no TCP listener, 0 = ephemeral).
  int tcp_port = -1;
  EngineConfig engine;
  /// A request line larger than this closes the connection (guards the
  /// server against a runaway client).
  std::size_t max_line_bytes = 4u << 20;
  /// listen(2) backlog for both listeners; 0 selects SOMAXCONN.
  int backlog = 0;
  /// Pending (unsent) output allowed per connection before the server
  /// drops it as a slow reader.
  std::size_t max_out_bytes = 64u << 20;
  /// SO_SNDBUF for accepted connections; 0 keeps the kernel default.
  /// Tests shrink this to force partial writes.
  int sndbuf_bytes = 0;
};

class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listeners and starts the engine (resuming journaled
  /// campaigns); returns the resumed job ids. Throws std::runtime_error
  /// on bind failure or when a live daemon already serves unix_path.
  std::vector<std::uint64_t> start();

  /// Actual TCP port after start() (for tcp_port = 0).
  int tcp_port() const noexcept { return bound_port_; }

  /// Serves until a shutdown request arrives or request_stop() is
  /// called, then drains: listeners close, the engine shuts down on a
  /// helper thread (wire shutdowns honour their drain flag; signals use
  /// the journal-and-exit path) while the loop keeps flushing replies
  /// and stream end events, and the unix socket file is removed.
  void serve();

  /// Wakes serve() and makes it exit via the graceful-drain path.
  /// Async-signal-safe (writes one byte to a pipe).
  void request_stop() noexcept;

  /// Routes SIGINT/SIGTERM to request_stop() of @p server (one server
  /// per process).
  static void install_signal_handlers(Server& server);

  CampaignEngine& engine() noexcept { return engine_; }

 private:
  struct Connection {
    std::uint64_t id = 0;  ///< epoll cookie; stable across fd reuse
    int fd = -1;
    std::string in;
    std::string out;
    /// Bytes of `out` already written. Draining advances this cursor
    /// instead of erasing the front (which is O(n²) when a large
    /// payload trickles through a small SO_SNDBUF); the buffer is
    /// compacted when the cursor dominates it.
    std::size_t out_pos = 0;
    bool close_after_flush = false;
    /// Active stream subscriptions on this connection: job id ->
    /// engine subscription token (released when the connection drops).
    std::map<std::uint64_t, std::uint64_t> streams;
  };

  /// A stream event produced on an engine/sweep thread, routed to the
  /// epoll thread via the wake pipe (only the epoll thread touches
  /// connection buffers).
  struct Delivery {
    std::uint64_t conn_id = 0;
    std::uint64_t job_id = 0;
    std::string line;
    bool end = false;  ///< last event of this subscription
  };

  /// How long serve() stops polling the listeners after accept() fails
  /// with fd exhaustion (EMFILE/ENFILE) before retrying.
  static constexpr int kAcceptRetryMs = 100;
  /// After the engine finishes draining, how long serve() keeps trying
  /// to flush remaining client buffers before giving up on them.
  static constexpr int kFlushGraceMs = 5000;

  void close_listeners();
  void close_all();
  void close_conn(std::uint64_t id);
  /// Accepts until EAGAIN on @p listen_fd; pauses accepting on fd
  /// exhaustion.
  void accept_ready(int listen_fd);
  void pause_accept();
  void resume_accept();
  /// Handles every complete line in @p conn.in; false = drop connection.
  bool handle_input(Connection& conn);
  std::string handle_request(Connection& conn, const Request& request);
  /// Writes pending output until EAGAIN or empty; false = drop (write
  /// error or the slow-reader cap tripped).
  bool flush_out(Connection& conn);
  /// Queues a stream event for the epoll thread and wakes it. Safe from
  /// any thread.
  void enqueue_delivery(Delivery delivery);
  /// Applies queued deliveries to their connections (epoll thread only).
  void drain_deliveries();
  /// Starts the graceful drain exactly once: closes the listeners and
  /// shuts the engine down on a helper thread while serve() keeps
  /// flushing.
  void begin_shutdown(bool drain);

  ServerConfig config_;
  CampaignEngine engine_;
  int epoll_fd_ = -1;
  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_port_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int wake_pipe_[2] = {-1, -1};
  bool unix_bound_ = false;
  bool shutdown_requested_ = false;  // via wire op
  bool shutdown_drain_ = false;
  bool accept_paused_ = false;  // backing off after EMFILE/ENFILE
  bool stopping_ = false;       // graceful drain in progress
  std::atomic<bool> engine_done_{false};
  std::thread drain_thread_;
  std::chrono::steady_clock::time_point flush_deadline_{};
  bool flush_deadline_set_ = false;
  std::uint64_t next_conn_id_ = 16;  // ids below are loop-internal cookies
  std::map<std::uint64_t, Connection> conns_;
  std::mutex deliveries_mu_;
  std::vector<Delivery> deliveries_;
};

}  // namespace tvp::svc
