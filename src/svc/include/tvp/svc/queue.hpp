// Bounded, thread-safe FIFO of pending job ids.
//
// This is the service's backpressure point: try_push refuses when the
// queue is full, and the wire layer turns that refusal into a
// retryable "queue full" error instead of buffering unbounded work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace tvp::svc {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  /// Enqueues @p id; returns false (without blocking) when the queue is
  /// full or closed.
  bool try_push(std::uint64_t id);

  /// Blocks until an id is available or the queue is closed; returns
  /// nullopt only after close() once the queue has drained.
  std::optional<std::uint64_t> pop();

  /// Non-blocking pop; nullopt when empty.
  std::optional<std::uint64_t> try_pop();

  /// Rejects further pushes and wakes blocked poppers; already queued
  /// ids are still handed out (drain semantics).
  void close();

  std::size_t size() const;
  std::size_t capacity() const noexcept { return capacity_; }
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<std::uint64_t> items_;
  bool closed_ = false;
};

}  // namespace tvp::svc
