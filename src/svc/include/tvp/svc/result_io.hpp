// JSON (de)serialisation of run results, the payload format shared by
// the journal (checkpointed cells) and the wire protocol (results).
//
// Round-trip is exact: every counter is a 64-bit integer, every double
// is emitted with JsonWriter::value_exact, and RunningStat is saved via
// its raw Welford state — a replayed cell is bit-identical to the cell
// that was journaled, which is what makes resume indistinguishable from
// an uninterrupted run.
#pragma once

#include <cstddef>
#include <string>

#include "tvp/exp/sweep.hpp"
#include "tvp/util/json.hpp"

namespace tvp::svc {

/// Emits @p result as a JSON object into an open value slot.
void write_run_result(util::JsonWriter& json, const exp::RunResult& result);

/// Parses a RunResult written by write_run_result; throws
/// std::runtime_error on missing/mistyped fields.
exp::RunResult read_run_result(const util::JsonValue& value);

/// Emits one sweep cell `{i, value, technique, result}`.
void write_sweep_cell(util::JsonWriter& json, std::size_t index,
                      const exp::SweepCell& cell);

/// Parses a cell; @p index receives the row-major position.
exp::SweepCell read_sweep_cell(const util::JsonValue& value, std::size_t& index);

/// Full matrix as one JSON document (wire `results` responses):
/// {param, values, techniques, jobs, wall_seconds, cells:[...]}.
std::string sweep_result_json(const exp::SweepResult& sweep);

}  // namespace tvp::svc
