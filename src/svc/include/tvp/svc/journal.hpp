// Append-only, fsync'd campaign journal.
//
// One NDJSON line per record:   {"crc":<crc32>,"e":<entry>}
// where <entry> is one of
//   {"type":"job", ...JobSpec...}          — header, always first
//   {"type":"cell","i":N,...SweepCell...}  — a completed sweep cell
//   {"type":"done"}                        — campaign finished
//
// Every append is written with a single write(2) and fsync'd before
// append_cell returns, so after a crash the file is a valid journal
// plus at most one torn trailing line. replay() drops that tail (CRC or
// parse failure) and returns everything before it; dropped cells are
// simply recomputed — each cell is deterministic, so resume stays
// bit-identical to an uninterrupted run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "tvp/exp/sweep.hpp"
#include "tvp/svc/job.hpp"

namespace tvp::svc {

/// CRC-32 (ISO 3309, zlib polynomial) of @p data; guards every journal
/// line against torn writes and bit rot.
std::uint32_t crc32(std::string_view data);

/// The name of every failpoint site in the journal I/O path
/// (`journal.*`, see util/failpoint.hpp). The torture harness iterates
/// this list to prove crash consistency at each site exhaustively; a
/// new syscall in the journal must add its site here.
const std::vector<std::string>& journal_failpoint_sites();

class Journal {
 public:
  /// Creates (truncates) @p path, writes the job header, and fsyncs
  /// both the file and its directory (a crash right after create must
  /// not lose the directory entry). Throws std::runtime_error on I/O
  /// failure.
  static Journal create(const std::string& path, const JobSpec& spec);

  /// Removes @p path and fsyncs its directory so the removal is
  /// durable (a rolled-back job must not resurrect after a crash).
  /// A missing file is not an error. Throws std::runtime_error on I/O
  /// failure.
  static void remove(const std::string& path);

  /// True when @p path is a journal stub left by a crash (or I/O error)
  /// during create(): the file exists but holds no complete record —
  /// not even the header line made it to disk. The submit that wrote it
  /// never returned an id, so the stub represents no job and is safe to
  /// delete; anything with at least one newline is a real journal and
  /// must be replayed or surfaced instead. Unreadable files report
  /// false so replay() raises the real error.
  static bool is_torn_create(const std::string& path);

  /// Opens @p path for appending after a replay (resume). Pass the
  /// replay's dropped_bytes so the torn tail is truncated first —
  /// otherwise the next record would be glued onto the corrupt line and
  /// both would be lost.
  static Journal append_to(const std::string& path,
                           std::size_t truncate_tail_bytes = 0);

  Journal(Journal&& other) noexcept;
  Journal& operator=(Journal&&) = delete;
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;
  ~Journal();

  /// Appends one completed cell: single write + fsync. Thread-safety is
  /// the caller's job (the engine serialises appends with a mutex).
  void append_cell(std::size_t index, const exp::SweepCell& cell);

  /// Marks the campaign complete.
  void append_done();

  void close();
  bool is_open() const noexcept { return fd_ >= 0; }

  /// Everything recovered from a journal file.
  struct Replay {
    JobSpec spec;                                ///< from the header
    std::map<std::size_t, exp::SweepCell> cells; ///< completed cells by index
    bool done = false;                           ///< saw the done record
    std::size_t dropped_bytes = 0;  ///< torn/corrupt tail that was ignored
  };

  /// Replays @p path. A corrupt or truncated record ends the replay:
  /// that record and everything after it are reported in dropped_bytes
  /// and otherwise ignored (safe — dropped cells are recomputed). A
  /// missing or corrupt header throws std::runtime_error, as does I/O
  /// failure; an unreadable journal must be surfaced, not silently
  /// restarted from zero.
  static Replay replay(const std::string& path);

 private:
  explicit Journal(int fd) : fd_(fd) {}

  void append_line(const std::string& payload);

  int fd_ = -1;
};

}  // namespace tvp::svc
