#include "tvp/svc/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "tvp/exp/config_io.hpp"
#include "tvp/svc/journal.hpp"
#include "tvp/svc/result_io.hpp"
#include "tvp/trace/corpus.hpp"
#include "tvp/util/log.hpp"
#include "tvp/util/table.hpp"

namespace tvp::svc {

namespace fs = std::filesystem;

namespace {

std::size_t resolve_workers(std::size_t configured) {
  if (configured > 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::string serialize_cell(std::size_t index, const exp::SweepCell& cell) {
  util::JsonWriter json;
  write_sweep_cell(json, index, cell);
  return json.str();
}

}  // namespace

CampaignEngine::CampaignEngine(EngineConfig config)
    : config_(std::move(config)),
      worker_count_(resolve_workers(config_.workers)),
      queue_(config_.queue_capacity) {
  if (!config_.journal_dir.empty()) fs::create_directories(config_.journal_dir);
}

CampaignEngine::~CampaignEngine() { shutdown(false); }

std::string CampaignEngine::journal_path(const std::string& name) const {
  if (config_.journal_dir.empty()) return "";
  return (fs::path(config_.journal_dir) / (name + ".tvpj")).string();
}

std::vector<std::uint64_t> CampaignEngine::start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) throw std::logic_error("CampaignEngine: started twice");
    started_ = true;
  }

  // Resume: every journal on disk is a job this engine accepted at some
  // point. Unfinished ones recompute their missing cells; finished ones
  // reload instantly (every cell preloads), making results queryable
  // across restarts.
  std::vector<std::uint64_t> resumed;
  if (!config_.journal_dir.empty()) {
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(config_.journal_dir))
      if (entry.is_regular_file() && entry.path().extension() == ".tvpj")
        paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());  // deterministic resume order
    for (const auto& path : paths) {
      if (Journal::is_torn_create(path)) {
        // A crash cut a previous create short before the header was
        // durable; the submit never returned an id, so there is no job
        // to resume — clear the stub instead of letting it block the
        // name forever.
        TVP_LOG_WARN("svc: removing journal stub from a crashed create: %s",
                     path.c_str());
        try {
          Journal::remove(path);
        } catch (const std::exception& e) {
          TVP_LOG_WARN("svc: cannot remove journal stub %s: %s", path.c_str(),
                       e.what());
        }
        continue;
      }
      try {
        const Journal::Replay replay = Journal::replay(path);
        std::string error;
        const std::uint64_t id = submit(replay.spec, &error);
        if (id == 0) {
          TVP_LOG_WARN("svc: cannot resume %s: %s", path.c_str(),
                       error.c_str());
        } else {
          TVP_LOG_INFO("svc: resuming job '%s' from %s (%zu/%zu cells done)",
                       replay.spec.name.c_str(), path.c_str(),
                       replay.cells.size(), replay.spec.cell_count());
          resumed.push_back(id);
        }
      } catch (const std::exception& e) {
        TVP_LOG_WARN("svc: skipping unreadable journal %s: %s", path.c_str(),
                     e.what());
      }
    }
  }

  executors_.reserve(worker_count_);
  for (std::size_t i = 0; i < worker_count_; ++i)
    executors_.emplace_back([this] { executor_loop(); });
  TVP_LOG_INFO("svc: engine started with %zu executor worker(s)",
               worker_count_);
  return resumed;
}

std::uint64_t CampaignEngine::submit(JobSpec spec, std::string* error) {
  const auto reject = [&](const std::string& why) -> std::uint64_t {
    if (error) *error = why;
    return 0;
  };

  try {
    spec.validate();
  } catch (const std::exception& e) {
    return reject(e.what());
  }

  // Trace jobs pin the corpus identity (footer CRC) into the spec — and
  // therefore into the journal header. A fresh submit fills the hash; a
  // resubmit or journal resume carries one already, and the file on
  // disk must still match it, or the "same" campaign would silently
  // replay different bytes.
  if (!spec.trace.empty()) {
    try {
      const trace::CorpusInfo info = trace::read_corpus_info(spec.trace);
      const std::string hash = util::strfmt("%08x", info.footer_crc);
      if (spec.trace_hash.empty()) {
        spec.trace_hash = hash;
      } else if (spec.trace_hash != hash) {
        return reject("trace corpus " + spec.trace + " has identity " + hash +
                      " but the job was journalled with " + spec.trace_hash +
                      "; the corpus changed underneath the campaign");
      }
    } catch (const std::exception& e) {
      return reject(e.what());
    }
  } else if (!spec.trace_hash.empty()) {
    return reject("trace_hash given without a trace path");
  }

  // Reserve the name before releasing mu_ for journal I/O: without the
  // reservation, two concurrent submits with one name could both pass
  // the duplicate-active check and end up sharing a journal file.
  const std::string name = spec.name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return reject("engine is shutting down");
    for (const auto& [id, job] : jobs_)
      if (job->spec.name == name &&
          (job->state == JobState::kQueued || job->state == JobState::kRunning))
        return reject("a job named '" + name + "' is already active");
    if (!pending_names_.insert(name).second)
      return reject("a job named '" + name + "' is already being submitted");
  }
  const auto unreserve = [&] {
    std::lock_guard<std::mutex> lock(mu_);
    pending_names_.erase(name);
  };

  // Make the job durable before queueing it: once submit returns an id,
  // a crash cannot lose the job — the journal header is on disk.
  const std::string path = journal_path(name);
  bool created_journal = false;
  if (!path.empty()) {
    bool reuse_existing = fs::exists(path);
    if (reuse_existing && Journal::is_torn_create(path)) {
      // Same rule as the start() scan: a header-less stub from a
      // crashed create is not a job and must not poison the name.
      try {
        Journal::remove(path);
        reuse_existing = false;
      } catch (const std::exception& e) {
        unreserve();
        return reject("cannot clear journal stub " + path + ": " + e.what());
      }
    }
    if (reuse_existing) {
      try {
        const Journal::Replay replay = Journal::replay(path);
        if (replay.spec.canonical_json() != spec.canonical_json()) {
          unreserve();
          return reject("journal " + path +
                        " holds a different spec for this name; delete it or "
                        "pick a new name");
        }
      } catch (const std::exception& e) {
        unreserve();
        return reject("journal " + path + " is unreadable: " + e.what());
      }
    } else {
      try {
        Journal::create(path, spec);  // header only; closed on scope exit
        created_journal = true;
      } catch (const std::exception& e) {
        unreserve();
        return reject(e.what());
      }
    }
  }

  auto job = std::make_shared<JobRec>();
  job->spec = std::move(spec);
  job->total = job->spec.cell_count();

  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_id_++;
    job->id = id;
    jobs_[id] = job;
    // The jobs_ entry now holds the duplicate-active claim on the name.
    pending_names_.erase(name);
  }
  if (!queue_.try_push(id)) {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.erase(id);
    // A journal created for a job we never accepted must not resurrect
    // it on the next start.
    if (created_journal) {
      try {
        Journal::remove(path);
      } catch (const std::exception& e) {
        TVP_LOG_WARN("svc: cannot roll back journal %s: %s", path.c_str(),
                     e.what());
      }
    }
    return reject("queue full (capacity " +
                  std::to_string(queue_.capacity()) + "); retry later");
  }
  return id;
}

bool CampaignEngine::cancel(std::uint64_t id) {
  std::shared_ptr<JobRec> ended;  // cancelled-in-queue: end stream below
  bool accepted = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    JobRec& job = *it->second;
    switch (job.state) {
      case JobState::kQueued:
        job.state = JobState::kCancelled;
        job.error = "cancelled while queued";
        ended = it->second;
        accepted = true;
        break;
      case JobState::kRunning:
        job.cancel_requested = true;
        job.stop.store(true, std::memory_order_relaxed);
        accepted = true;
        break;
      case JobState::kDone:
      case JobState::kFailed:
      case JobState::kCancelled:
        return false;
    }
  }
  // Stream end events fire outside mu_ (callbacks must not observe the
  // engine lock held); a queued job has no worker to fire them for it.
  if (ended) deliver_end(ended, JobState::kCancelled, ended->error);
  return accepted;
}

JobStatus CampaignEngine::status_of(const JobRec& job) const {
  JobStatus status;
  status.id = job.id;
  status.name = job.spec.name;
  status.state = job.state;
  status.total_cells = job.total;
  status.completed_cells = job.completed.load(std::memory_order_relaxed);
  status.resumed_cells = job.resumed;
  status.error = job.error;
  return status;
}

std::optional<JobStatus> CampaignEngine::status(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return status_of(*it->second);
}

std::vector<JobStatus> CampaignEngine::statuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(status_of(*job));
  return out;
}

std::optional<exp::SweepResult> CampaignEngine::result(std::uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end() || it->second->state != JobState::kDone)
    return std::nullopt;
  return it->second->result;
}

std::uint64_t CampaignEngine::subscribe(std::uint64_t id, StreamCellFn on_cell,
                                        StreamEndFn on_end) {
  std::shared_ptr<JobRec> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return 0;
    job = it->second;
  }

  std::lock_guard<std::mutex> stream_lock(job->stream_mu);
  // Replay-then-register under one stream_mu hold: a live cell cannot
  // land between the replay and the registration, so delivery is
  // exactly-once and in completion order.
  if (on_cell)
    for (const std::string& cell_json : job->stream_cells) on_cell(cell_json);
  const std::uint64_t token = job->next_stream_token++;
  if (job->stream_ended) {
    // Terminal already: everything delivered synchronously; nothing to
    // register (the returned token is valid but already-expired).
    JobState state;
    std::string error;
    {
      std::lock_guard<std::mutex> lock(mu_);
      state = job->state;
      error = job->error;
    }
    if (on_end) on_end(state, error);
    return token;
  }
  job->stream_subs.emplace(token,
                           StreamSub{std::move(on_cell), std::move(on_end)});
  return token;
}

void CampaignEngine::unsubscribe(std::uint64_t id, std::uint64_t token) {
  std::shared_ptr<JobRec> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return;
    job = it->second;
  }
  std::lock_guard<std::mutex> stream_lock(job->stream_mu);
  job->stream_subs.erase(token);
}

void CampaignEngine::deliver_cell(const std::shared_ptr<JobRec>& job,
                                  const std::string& cell_json) {
  std::lock_guard<std::mutex> stream_lock(job->stream_mu);
  if (job->stream_ended) return;
  job->stream_cells.push_back(cell_json);
  for (const auto& [token, sub] : job->stream_subs)
    if (sub.on_cell) sub.on_cell(cell_json);
}

void CampaignEngine::deliver_end(const std::shared_ptr<JobRec>& job,
                                 JobState state, const std::string& error) {
  std::map<std::uint64_t, StreamSub> subs;
  {
    std::lock_guard<std::mutex> stream_lock(job->stream_mu);
    if (job->stream_ended) return;
    job->stream_ended = true;
    subs.swap(job->stream_subs);
  }
  for (const auto& [token, sub] : subs)
    if (sub.on_end) sub.on_end(state, error);
}

void CampaignEngine::shutdown(bool finish_queued) {
  std::lock_guard<std::mutex> serial(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    if (!finish_queued) {
      abort_.store(true, std::memory_order_relaxed);
      for (const auto& [id, job] : running_)
        job->stop.store(true, std::memory_order_relaxed);
    }
  }
  queue_.close();
  for (std::thread& t : executors_) t.join();
  executors_.clear();

  // Flush every open subscription: the executors are gone, so jobs that
  // never reached a terminal state (queued under abort, or dropped from
  // the closing queue) would otherwise leave their subscribers waiting
  // forever. Delivering the current state keeps the end-event contract.
  std::vector<std::shared_ptr<JobRec>> jobs;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) jobs.push_back(job);
  }
  for (const auto& job : jobs) {
    JobState state;
    std::string error;
    {
      std::lock_guard<std::mutex> lock(mu_);
      state = job->state;
      error = job->error.empty() && state == JobState::kQueued
                  ? "engine shut down before the job ran; resumable"
                  : job->error;
    }
    deliver_end(job, state, error);
  }
}

void CampaignEngine::executor_loop() {
  while (const auto id = queue_.pop()) {
    std::shared_ptr<JobRec> job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = jobs_.find(*id);
      if (it == jobs_.end()) continue;
      job = it->second;
      if (job->state != JobState::kQueued) continue;  // cancelled in queue
      if (abort_.load(std::memory_order_relaxed)) continue;  // stays on disk
      job->state = JobState::kRunning;
      running_.emplace(job->id, job);
    }
    run_job(job);
    std::lock_guard<std::mutex> lock(mu_);
    running_.erase(job->id);
  }
}

void CampaignEngine::run_job(const std::shared_ptr<JobRec>& job) {
  const JobSpec& spec = job->spec;
  TVP_LOG_INFO("svc: job %llu '%s' starting (%zu cells)",
               static_cast<unsigned long long>(job->id), spec.name.c_str(),
               job->total);
  try {
    const std::vector<hw::Technique> techniques = spec.parsed_techniques();
    util::KeyValueFile base = util::KeyValueFile::parse(spec.config_text);
    if (!spec.trace.empty()) {
      // The sweep replays the pinned corpus instead of generating its
      // workload; every cell shares the one recorded stream.
      base.set("workload.model", "replay");
      base.set("workload.trace", spec.trace);
    }

    std::map<std::size_t, exp::SweepCell> preloaded;
    bool already_done = false;
    std::optional<Journal> journal;
    const std::string path = journal_path(spec.name);
    if (!path.empty()) {
      Journal::Replay replay = Journal::replay(path);
      if (replay.spec.canonical_json() != spec.canonical_json())
        throw std::runtime_error("journal " + path + " changed underneath the job");
      preloaded = std::move(replay.cells);
      already_done = replay.done;
      journal.emplace(Journal::append_to(path, replay.dropped_bytes));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->resumed = preloaded.size();
    }
    job->completed.store(preloaded.size(), std::memory_order_relaxed);

    // Resumed cells are "completed" for stream purposes too: replay them
    // in index order before the sweep starts, so a subscriber sees every
    // cell exactly once whether or not the job was ever interrupted.
    for (const auto& [index, cell] : preloaded)
      deliver_cell(job, serialize_cell(index, cell));

    std::mutex journal_mu;  // serialises checkpoint appends from workers
    exp::SweepHooks hooks;
    hooks.preloaded = &preloaded;
    hooks.stop = &job->stop;
    hooks.jobs = config_.sweep_jobs;
    hooks.on_cell = [&](std::size_t index, const exp::SweepCell& cell) {
      const std::string cell_json = serialize_cell(index, cell);
      {
        std::lock_guard<std::mutex> lock(journal_mu);
        if (journal) journal->append_cell(index, cell);
        job->completed.fetch_add(1, std::memory_order_relaxed);
      }
      // Stream after the checkpoint: a streamed cell is always durable,
      // so a resume never re-streams less than the client already saw.
      deliver_cell(job, cell_json);
    };

    exp::SweepResult sweep = exp::run_param_sweep(
        base, spec.param_key, spec.values, techniques, hooks);

    JobState final_state;
    std::string final_error;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job->stop.load(std::memory_order_relaxed)) {
        job->state = JobState::kCancelled;
        job->error = job->cancel_requested
                         ? "cancelled"
                         : "interrupted by shutdown; resumable from journal";
        TVP_LOG_INFO("svc: job %llu '%s' stopped after %zu/%zu cells",
                     static_cast<unsigned long long>(job->id),
                     spec.name.c_str(),
                     job->completed.load(std::memory_order_relaxed),
                     job->total);
      } else {
        if (journal && !already_done) journal->append_done();
        job->result = std::move(sweep);
        job->state = JobState::kDone;
        TVP_LOG_INFO("svc: job %llu '%s' done (%zu cells, %zu resumed)",
                     static_cast<unsigned long long>(job->id),
                     spec.name.c_str(), job->total, job->resumed);
      }
      final_state = job->state;
      final_error = job->error;
    }
    deliver_end(job, final_state, final_error);
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->state = JobState::kFailed;
      job->error = e.what();
    }
    TVP_LOG_ERROR("svc: job %llu '%s' failed: %s",
                  static_cast<unsigned long long>(job->id), spec.name.c_str(),
                  e.what());
    deliver_end(job, JobState::kFailed, e.what());
  }
}

}  // namespace tvp::svc
