#include "tvp/svc/job.hpp"

#include <stdexcept>

#include "tvp/util/config.hpp"

namespace tvp::svc {

namespace {

bool name_char_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
}

std::vector<std::string> string_array(const util::JsonValue& value,
                                      const std::string& key) {
  std::vector<std::string> out;
  for (const auto& item : value.at(key).items()) out.push_back(item.as_string());
  return out;
}

}  // namespace

std::vector<hw::Technique> JobSpec::parsed_techniques() const {
  std::vector<hw::Technique> out;
  out.reserve(techniques.size());
  for (const auto& name : techniques) {
    bool found = false;
    for (const auto t : hw::kAllTechniques) {
      if (hw::to_string(t) == name) {
        out.push_back(t);
        found = true;
        break;
      }
    }
    if (!found)
      throw std::invalid_argument("JobSpec: unknown technique '" + name + "'");
  }
  return out;
}

void JobSpec::validate() const {
  if (name.empty()) throw std::invalid_argument("JobSpec: empty name");
  for (const char c : name)
    if (!name_char_ok(c))
      throw std::invalid_argument("JobSpec: name '" + name +
                                  "' has characters outside [A-Za-z0-9_.-]");
  if (param_key.empty()) throw std::invalid_argument("JobSpec: empty param key");
  if (values.empty()) throw std::invalid_argument("JobSpec: no values");
  if (techniques.empty()) throw std::invalid_argument("JobSpec: no techniques");
  parsed_techniques();
  try {
    util::KeyValueFile::parse(config_text);  // throws with a line number
  } catch (const std::exception& e) {
    throw std::invalid_argument(std::string("JobSpec: bad config: ") + e.what());
  }
}

void JobSpec::write_json(util::JsonWriter& json) const {
  json.begin_object();
  json.key("name").value(name);
  json.key("config").value(config_text);
  json.key("param").value(param_key);
  json.key("values").begin_array();
  for (const auto& v : values) json.value(v);
  json.end_array();
  json.key("techniques").begin_array();
  for (const auto& t : techniques) json.value(t);
  json.end_array();
  // Only emitted for trace jobs: journals written before the corpus
  // pipeline existed stay byte-identical, so their identity check on
  // resume still passes.
  if (!trace.empty()) {
    json.key("trace").value(trace);
    json.key("trace_hash").value(trace_hash);
  }
  json.end_object();
}

std::string JobSpec::canonical_json() const {
  util::JsonWriter json;
  write_json(json);
  return json.str();
}

JobSpec JobSpec::from_json(const util::JsonValue& value) {
  JobSpec spec;
  spec.name = value.at("name").as_string();
  spec.config_text = value.at("config").as_string();
  spec.param_key = value.at("param").as_string();
  spec.values = string_array(value, "values");
  spec.techniques = string_array(value, "techniques");
  spec.trace = value.get("trace", "");
  spec.trace_hash = value.get("trace_hash", "");
  return spec;
}

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

JobState parse_job_state(const std::string& name) {
  for (const auto s : {JobState::kQueued, JobState::kRunning, JobState::kDone,
                       JobState::kFailed, JobState::kCancelled})
    if (name == to_string(s)) return s;
  throw std::runtime_error("JobState: unknown state '" + name + "'");
}

void JobStatus::write_json(util::JsonWriter& json) const {
  json.begin_object();
  json.key("id").value(id);
  json.key("name").value(name);
  json.key("state").value(to_string(state));
  json.key("total_cells").value(static_cast<std::uint64_t>(total_cells));
  json.key("completed_cells").value(static_cast<std::uint64_t>(completed_cells));
  json.key("resumed_cells").value(static_cast<std::uint64_t>(resumed_cells));
  json.key("error").value(error);
  json.end_object();
}

JobStatus JobStatus::from_json(const util::JsonValue& value) {
  JobStatus status;
  status.id = value.at("id").as_uint();
  status.name = value.at("name").as_string();
  status.state = parse_job_state(value.at("state").as_string());
  status.total_cells = value.at("total_cells").as_uint();
  status.completed_cells = value.at("completed_cells").as_uint();
  status.resumed_cells = value.at("resumed_cells").as_uint();
  status.error = value.get("error", "");
  return status;
}

}  // namespace tvp::svc
