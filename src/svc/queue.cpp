#include "tvp/svc/queue.hpp"

#include <stdexcept>

namespace tvp::svc {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) throw std::invalid_argument("JobQueue: zero capacity");
}

bool JobQueue::try_push(std::uint64_t id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(id);
  }
  ready_.notify_one();
  return true;
}

std::optional<std::uint64_t> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;
  const std::uint64_t id = items_.front();
  items_.pop_front();
  return id;
}

std::optional<std::uint64_t> JobQueue::try_pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (items_.empty()) return std::nullopt;
  const std::uint64_t id = items_.front();
  items_.pop_front();
  return id;
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  ready_.notify_all();
}

std::size_t JobQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace tvp::svc
