#include "tvp/svc/wire.hpp"

#include "tvp/svc/result_io.hpp"
#include "tvp/util/json.hpp"

namespace tvp::svc {

namespace {

std::string one_field_request(const char* op) {
  util::JsonWriter json;
  json.begin_object();
  json.key("op").value(op);
  json.end_object();
  return json.str();
}

std::string job_id_request(const char* op, std::uint64_t job_id) {
  util::JsonWriter json;
  json.begin_object();
  json.key("op").value(op);
  json.key("job").value(job_id);
  json.end_object();
  return json.str();
}

}  // namespace

Request parse_request(const std::string& line) {
  util::JsonValue doc;
  try {
    doc = util::JsonValue::parse(line);
  } catch (const std::runtime_error& e) {
    throw ProtocolError(e.what());
  }
  try {
    if (!doc.is_object()) throw ProtocolError("request is not an object");
    const std::string op = doc.at("op").as_string();
    Request request;
    if (op == "submit") {
      request.op = Request::Op::kSubmit;
      request.spec = JobSpec::from_json(doc.at("job"));
    } else if (op == "status") {
      request.op = Request::Op::kStatus;
      if (const util::JsonValue* id = doc.find("job")) {
        request.job_id = id->as_uint();
        request.has_job_id = true;
      }
    } else if (op == "results") {
      request.op = Request::Op::kResults;
      request.job_id = doc.at("job").as_uint();
      request.has_job_id = true;
      request.stream = doc.get_bool("stream", false);
    } else if (op == "cancel") {
      request.op = Request::Op::kCancel;
      request.job_id = doc.at("job").as_uint();
      request.has_job_id = true;
    } else if (op == "shutdown") {
      request.op = Request::Op::kShutdown;
      request.drain = doc.get_bool("drain", false);
    } else if (op == "ping") {
      request.op = Request::Op::kPing;
    } else {
      throw ProtocolError("unknown op '" + op + "'");
    }
    return request;
  } catch (const ProtocolError&) {
    throw;
  } catch (const std::runtime_error& e) {
    throw ProtocolError(e.what());
  }
}

std::string submit_request(const JobSpec& spec) {
  util::JsonWriter json;
  json.begin_object();
  json.key("op").value("submit");
  json.key("job");
  spec.write_json(json);
  json.end_object();
  return json.str();
}

std::string status_request() { return one_field_request("status"); }

std::string status_request(std::uint64_t job_id) {
  return job_id_request("status", job_id);
}

std::string results_request(std::uint64_t job_id) {
  return job_id_request("results", job_id);
}

std::string stream_results_request(std::uint64_t job_id) {
  util::JsonWriter json;
  json.begin_object();
  json.key("op").value("results");
  json.key("job").value(job_id);
  json.key("stream").value(true);
  json.end_object();
  return json.str();
}

std::string cancel_request(std::uint64_t job_id) {
  return job_id_request("cancel", job_id);
}

std::string shutdown_request(bool drain) {
  util::JsonWriter json;
  json.begin_object();
  json.key("op").value("shutdown");
  json.key("drain").value(drain);
  json.end_object();
  return json.str();
}

std::string ping_request() { return one_field_request("ping"); }

std::string error_response(const std::string& message) {
  util::JsonWriter json;
  json.begin_object();
  json.key("ok").value(false);
  json.key("error").value(message);
  json.end_object();
  return json.str();
}

std::string ok_response() {
  util::JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.end_object();
  return json.str();
}

std::string submit_response(std::uint64_t job_id) {
  util::JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("job").value(job_id);
  json.end_object();
  return json.str();
}

std::string status_response(const std::vector<JobStatus>& jobs) {
  util::JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("jobs").begin_array();
  for (const auto& job : jobs) job.write_json(json);
  json.end_array();
  json.end_object();
  return json.str();
}

std::string results_response(const JobStatus& status,
                             const exp::SweepResult& sweep) {
  // The sweep matrix is already a JSON document; splice it in verbatim
  // rather than re-walking the tree through JsonWriter.
  util::JsonWriter head;
  head.begin_object();
  head.key("ok").value(true);
  head.key("status");
  status.write_json(head);
  head.key("csv").value(exp::sweep_to_csv(sweep));
  head.end_object();
  std::string text = head.str();
  text.pop_back();  // drop the closing '}'
  text += ",\"sweep\":";
  text += sweep_result_json(sweep);
  text += "}";
  return text;
}

std::string stream_ack_response(const JobStatus& status) {
  util::JsonWriter json;
  json.begin_object();
  json.key("ok").value(true);
  json.key("stream").value(true);
  json.key("status");
  status.write_json(json);
  json.end_object();
  return json.str();
}

std::string stream_cell_event(std::uint64_t job_id,
                              const std::string& cell_json) {
  // The cell is already a JSON object (result_io::write_sweep_cell);
  // splice it in verbatim like results_response does for the matrix.
  util::JsonWriter head;
  head.begin_object();
  head.key("stream").value("cell");
  head.key("job").value(job_id);
  head.end_object();
  std::string text = head.str();
  text.pop_back();  // drop the closing '}'
  text += ",\"cell\":";
  text += cell_json;
  text += "}";
  return text;
}

std::string stream_end_event(std::uint64_t job_id, JobState state,
                             const std::string& error) {
  util::JsonWriter json;
  json.begin_object();
  json.key("stream").value("end");
  json.key("job").value(job_id);
  json.key("state").value(to_string(state));
  json.key("error").value(error);
  json.end_object();
  return json.str();
}

}  // namespace tvp::svc
