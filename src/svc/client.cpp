#include "tvp/svc/client.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "tvp/svc/wire.hpp"
#include "tvp/util/failpoint.hpp"

namespace tvp::svc {

namespace fp = util::fp;

namespace {

// Failpoint sites for the client's socket I/O (see util/failpoint.hpp).
constexpr const char* kSiteSend = "client.send";
constexpr const char* kSiteRecv = "client.recv";

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("svc::Client: " + what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("svc::Client: unix path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    sys_fail("connect " + path);
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* found = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &found);
  if (rc != 0)
    throw std::runtime_error(std::string("svc::Client: resolve ") + host +
                             ": " + ::gai_strerror(rc));
  int fd = -1;
  for (addrinfo* ai = found; ai; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(found);
  if (fd < 0)
    throw std::runtime_error("svc::Client: cannot connect to " + host + ":" +
                             std::to_string(port));
  return Client(fd);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), pending_(std::move(other.pending_)) {
  other.fd_ = -1;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

util::JsonValue Client::request(const std::string& line) {
  if (fd_ < 0) throw std::runtime_error("svc::Client: not connected");
  std::string framed = line;
  framed += '\n';
  const char* data = framed.data();
  std::size_t size = framed.size();
  while (size > 0) {
    // MSG_NOSIGNAL: a daemon that died mid-request must surface as a
    // thrown EPIPE, not a SIGPIPE that kills the client process.
    // send_eintr: a signal mid-send is retried, not a spurious error.
    const ssize_t n = fp::send_eintr(kSiteSend, fd_, data, size, MSG_NOSIGNAL);
    if (n < 0) sys_fail("write");
    data += n;
    size -= static_cast<std::size_t>(n);
  }

  return read_line();
}

util::JsonValue Client::read_line() {
  if (fd_ < 0) throw std::runtime_error("svc::Client: not connected");
  while (true) {
    const std::size_t nl = pending_.find('\n');
    if (nl != std::string::npos) {
      const std::string response = pending_.substr(0, nl);
      pending_.erase(0, nl + 1);
      return util::JsonValue::parse(response);
    }
    char buf[16384];
    const ssize_t n = fp::read_eintr(kSiteRecv, fd_, buf, sizeof buf);
    if (n < 0) sys_fail("read");
    if (n == 0)
      throw std::runtime_error("svc::Client: server closed the connection");
    pending_.append(buf, static_cast<std::size_t>(n));
  }
}

util::JsonValue Client::checked(const std::string& line) {
  util::JsonValue response = request(line);
  if (!response.get_bool("ok", false))
    throw std::runtime_error("svc::Client: server error: " +
                             response.get("error", "unknown error"));
  return response;
}

std::uint64_t Client::submit(const JobSpec& spec) {
  return checked(submit_request(spec)).at("job").as_uint();
}

std::vector<JobStatus> Client::status() {
  // Keep the response alive across the loop: the items() reference
  // points into it, and a range-for does not extend the lifetime of a
  // temporary behind a member-call chain.
  const util::JsonValue response = checked(status_request());
  std::vector<JobStatus> out;
  for (const auto& job : response.at("jobs").items())
    out.push_back(JobStatus::from_json(job));
  return out;
}

JobStatus Client::status(std::uint64_t job_id) {
  const auto response = checked(status_request(job_id));
  const auto& jobs = response.at("jobs").items();
  if (jobs.size() != 1)
    throw std::runtime_error("svc::Client: malformed status response");
  return JobStatus::from_json(jobs[0]);
}

util::JsonValue Client::results(std::uint64_t job_id) {
  return checked(results_request(job_id));
}

void Client::cancel(std::uint64_t job_id) { checked(cancel_request(job_id)); }

void Client::shutdown(bool drain) { checked(shutdown_request(drain)); }

void Client::ping() { checked(ping_request()); }

Client::StreamEnd Client::stream_results(
    std::uint64_t job_id,
    const std::function<void(const util::JsonValue& cell)>& on_cell) {
  const util::JsonValue ack = checked(stream_results_request(job_id));
  if (!ack.get_bool("stream", false))
    throw std::runtime_error(
        "svc::Client: server did not acknowledge the stream");
  while (true) {
    const util::JsonValue event = read_line();
    const std::string kind = event.get("stream", "");
    if (kind == "cell") {
      if (on_cell) on_cell(event.at("cell"));
    } else if (kind == "end") {
      StreamEnd end;
      end.state = parse_job_state(event.at("state").as_string());
      end.error = event.get("error", "");
      return end;
    } else {
      throw std::runtime_error("svc::Client: unexpected line in stream: " +
                               (kind.empty() ? "not a stream event" : kind));
    }
  }
}

JobStatus Client::wait(std::uint64_t job_id, double timeout_seconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeout_seconds);
  while (true) {
    const JobStatus current = status(job_id);
    if (current.state == JobState::kDone ||
        current.state == JobState::kFailed ||
        current.state == JobState::kCancelled)
      return current;
    if (std::chrono::steady_clock::now() >= deadline)
      throw std::runtime_error("svc::Client: timed out waiting for job " +
                               std::to_string(job_id));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace tvp::svc
