#include "tvp/svc/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "tvp/svc/result_io.hpp"
#include "tvp/util/crc32.hpp"
#include "tvp/util/failpoint.hpp"

namespace tvp::svc {

namespace fp = util::fp;

namespace {

// Every syscall in the journal path goes through a named failpoint site
// (see util/failpoint.hpp); the torture harness enumerates these and
// proves crash consistency at each one.
constexpr const char* kSiteCreateOpen = "journal.create.open";
constexpr const char* kSiteAppendOpen = "journal.append.open";
constexpr const char* kSiteAppendWrite = "journal.append.write";
constexpr const char* kSiteAppendFsync = "journal.append.fsync";
constexpr const char* kSiteDirOpen = "journal.dir.open";
constexpr const char* kSiteDirFsync = "journal.dir.fsync";
constexpr const char* kSiteRemoveUnlink = "journal.remove.unlink";
constexpr const char* kSiteTailTruncate = "journal.tail.ftruncate";
constexpr const char* kSiteTailFsync = "journal.tail.fsync";
constexpr const char* kSiteReplayOpen = "journal.replay.open";
constexpr const char* kSiteReplayRead = "journal.replay.read";

[[noreturn]] void io_fail(const std::string& what) {
  throw std::runtime_error("Journal: " + what + ": " + std::strerror(errno));
}

// fsync'ing a file makes its *contents* durable but not its directory
// entry: after a crash a freshly created (or removed) journal may not
// exist (or still exist). Fsync the containing directory too.
void fsync_parent_dir(const std::string& path) {
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = fp::open(kSiteDirOpen, dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) io_fail("cannot open directory " + dir);
  if (fp::fsync_eintr(kSiteDirFsync, fd) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    io_fail("cannot fsync directory " + dir);
  }
  ::close(fd);
}

}  // namespace

const std::vector<std::string>& journal_failpoint_sites() {
  static const std::vector<std::string> sites = {
      kSiteCreateOpen, kSiteAppendOpen,   kSiteAppendWrite,  kSiteAppendFsync,
      kSiteDirOpen,    kSiteDirFsync,     kSiteRemoveUnlink, kSiteTailTruncate,
      kSiteTailFsync,  kSiteReplayOpen,   kSiteReplayRead,
  };
  return sites;
}

std::uint32_t crc32(std::string_view data) { return util::crc32(data); }

Journal Journal::create(const std::string& path, const JobSpec& spec) {
  const int fd =
      fp::open(kSiteCreateOpen, path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
               0644);
  if (fd < 0) io_fail("cannot create " + path);
  Journal journal(fd);
  util::JsonWriter json;
  json.begin_object();
  json.key("type").value("job");
  json.key("spec");
  spec.write_json(json);
  json.end_object();
  try {
    journal.append_line(json.str());
    // The header is durable only once its directory entry is too.
    fsync_parent_dir(path);
  } catch (...) {
    // A failed create must not leave a half-written file behind: the
    // caller never got a journal, so a lingering stub would block every
    // future submit under this name. Best-effort, raw unlink — this is
    // error cleanup, not a durability point.
    journal.close();
    ::unlink(path.c_str());
    throw;
  }
  return journal;
}

bool Journal::is_torn_create(const std::string& path) {
  // Raw syscalls on purpose: this classifies wreckage during recovery
  // and must not consume failpoint hits the torture harness counted for
  // the replay path.
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  char buf[1 << 12];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;  // unreadable — let replay() surface the real error
    }
    if (n == 0) break;
    if (std::memchr(buf, '\n', static_cast<std::size_t>(n)) != nullptr) {
      ::close(fd);
      return false;  // at least one complete record: a real journal
    }
  }
  ::close(fd);
  return true;
}

void Journal::remove(const std::string& path) {
  if (fp::unlink(kSiteRemoveUnlink, path.c_str()) != 0) {
    if (errno == ENOENT) return;  // already gone — nothing to make durable
    io_fail("cannot remove " + path);
  }
  fsync_parent_dir(path);
}

Journal Journal::append_to(const std::string& path,
                           std::size_t truncate_tail_bytes) {
  const int fd = fp::open(kSiteAppendOpen, path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) io_fail("cannot open " + path);
  if (truncate_tail_bytes > 0) {
    // Cut off the torn tail replay() reported; appending after it would
    // glue the new record onto the corrupt line and lose both.
    const off_t size = ::lseek(fd, 0, SEEK_END);
    if (size < 0 || static_cast<std::size_t>(size) < truncate_tail_bytes ||
        fp::ftruncate(kSiteTailTruncate, fd,
                      size - static_cast<off_t>(truncate_tail_bytes)) != 0 ||
        fp::fsync_eintr(kSiteTailFsync, fd) != 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      io_fail("cannot drop the torn tail of " + path);
    }
  }
  return Journal(fd);
}

Journal::Journal(Journal&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Journal::~Journal() { close(); }

void Journal::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Journal::append_line(const std::string& payload) {
  if (fd_ < 0) throw std::logic_error("Journal: append on closed journal");
  std::string line = "{\"crc\":" + std::to_string(crc32(payload)) +
                     ",\"e\":" + payload + "}\n";
  if (!fp::write_full(kSiteAppendWrite, fd_, line.data(), line.size()))
    io_fail("write failed");
  if (fp::fsync_eintr(kSiteAppendFsync, fd_) != 0) io_fail("fsync failed");
}

void Journal::append_cell(std::size_t index, const exp::SweepCell& cell) {
  util::JsonWriter json;
  json.begin_object();
  json.key("type").value("cell");
  json.key("cell");
  write_sweep_cell(json, index, cell);
  json.end_object();
  append_line(json.str());
}

void Journal::append_done() {
  util::JsonWriter json;
  json.begin_object();
  json.key("type").value("done");
  json.end_object();
  append_line(json.str());
}

Journal::Replay Journal::replay(const std::string& path) {
  const int fd = fp::open(kSiteReplayOpen, path.c_str(), O_RDONLY);
  if (fd < 0) io_fail("cannot read " + path);
  std::string text;
  char buf[1 << 16];
  while (true) {
    const ssize_t n = fp::read_eintr(kSiteReplayRead, fd, buf, sizeof buf);
    if (n < 0) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      io_fail("cannot read " + path);
    }
    if (n == 0) break;
    text.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  Replay replay;
  bool have_header = false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t start = pos;
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn trailing line
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;

    // Extract the payload textually (the CRC covers its exact bytes).
    static constexpr std::string_view kPrefix = "{\"crc\":";
    static constexpr std::string_view kSep = ",\"e\":";
    std::size_t payload_begin = std::string::npos;
    std::uint32_t want_crc = 0;
    if (line.compare(0, kPrefix.size(), kPrefix) == 0 && line.back() == '}') {
      const std::size_t sep = line.find(kSep, kPrefix.size());
      if (sep != std::string::npos) {
        bool digits_ok = sep > kPrefix.size();
        std::uint64_t crc_value = 0;
        for (std::size_t i = kPrefix.size(); i < sep && digits_ok; ++i) {
          const char c = line[i];
          if (c < '0' || c > '9') digits_ok = false;
          crc_value = crc_value * 10 + static_cast<std::uint64_t>(c - '0');
        }
        if (digits_ok && crc_value <= 0xFFFFFFFFu) {
          payload_begin = sep + kSep.size();
          want_crc = static_cast<std::uint32_t>(crc_value);
        }
      }
    }
    if (payload_begin == std::string::npos) {
      pos = start;
      break;  // malformed framing: stop here, drop the rest
    }
    const std::string payload =
        line.substr(payload_begin, line.size() - 1 - payload_begin);
    if (crc32(payload) != want_crc) {
      pos = start;
      break;  // corrupt record
    }

    util::JsonValue entry;
    std::string type;
    try {
      entry = util::JsonValue::parse(payload);
      type = entry.at("type").as_string();
      if (type == "job") {
        if (have_header)
          throw std::runtime_error("Journal: duplicate header in " + path);
        replay.spec = JobSpec::from_json(entry.at("spec"));
        have_header = true;
      } else if (type == "cell") {
        if (!have_header)
          throw std::runtime_error("Journal: cell before header in " + path);
        std::size_t index = 0;
        exp::SweepCell cell = read_sweep_cell(entry.at("cell"), index);
        replay.cells[index] = std::move(cell);
      } else if (type == "done") {
        replay.done = true;
      } else {
        pos = start;  // unknown record type (newer writer): stop here
        break;
      }
    } catch (const std::runtime_error&) {
      if (type == "job" || (!have_header && type.empty())) throw;
      pos = start;  // undecodable record past the header: stop here
      break;
    }
  }
  if (!have_header)
    throw std::runtime_error("Journal: missing or corrupt header in " + path);
  replay.dropped_bytes = text.size() - pos;
  return replay;
}

}  // namespace tvp::svc
