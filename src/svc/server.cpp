#include "tvp/svc/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "tvp/svc/wire.hpp"
#include "tvp/util/failpoint.hpp"
#include "tvp/util/log.hpp"

namespace tvp::svc {

namespace fp = util::fp;

namespace {

// Failpoint sites for the per-connection I/O (see util/failpoint.hpp).
constexpr const char* kSiteConnRead = "server.conn.read";
constexpr const char* kSiteConnWrite = "server.conn.write";

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("svc::Server: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

// One server per process: the signal handler can only touch a static.
std::atomic<int> g_stop_fd{-1};

void on_stop_signal(int) {
  const int fd = g_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), engine_(config_.engine) {
  if (config_.unix_path.empty() && config_.tcp_port < 0)
    throw std::invalid_argument("svc::Server: no listener configured");
}

Server::~Server() {
  close_all();
  if (g_stop_fd.load(std::memory_order_relaxed) == stop_pipe_[1])
    g_stop_fd.store(-1, std::memory_order_relaxed);
  for (const int fd : stop_pipe_)
    if (fd >= 0) ::close(fd);
}

std::vector<std::uint64_t> Server::start() {
  // A client that closes before its reply is flushed must surface as
  // EPIPE on write (we drop the connection), not SIGPIPE (whose default
  // action kills the daemon, bypassing the graceful drain path).
  ::signal(SIGPIPE, SIG_IGN);

  if (::pipe(stop_pipe_) != 0) sys_fail("pipe");
  set_nonblocking(stop_pipe_[0]);
  set_nonblocking(stop_pipe_[1]);

  if (!config_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.unix_path.size() >= sizeof addr.sun_path)
      throw std::runtime_error("svc::Server: unix path too long: " +
                               config_.unix_path);
    std::strncpy(addr.sun_path, config_.unix_path.c_str(),
                 sizeof addr.sun_path - 1);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) sys_fail("socket(AF_UNIX)");
    ::unlink(config_.unix_path.c_str());  // stale file from a killed daemon
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_fail("bind " + config_.unix_path);
    unix_bound_ = true;
    if (::listen(unix_fd_, 16) != 0) sys_fail("listen(unix)");
    set_nonblocking(unix_fd_);
  }

  if (config_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) sys_fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_fail("bind 127.0.0.1:" + std::to_string(config_.tcp_port));
    if (::listen(tcp_fd_, 16) != 0) sys_fail("listen(tcp)");
    set_nonblocking(tcp_fd_);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      sys_fail("getsockname");
    bound_port_ = ntohs(bound.sin_port);
  }

  return engine_.start();
}

void Server::request_stop() noexcept {
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::install_signal_handlers(Server& server) {
  g_stop_fd.store(server.stop_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void Server::serve() {
  bool stop_signal = false;
  while (!shutdown_requested_ && !stop_signal) {
    std::vector<pollfd> fds;
    fds.push_back({stop_pipe_[0], POLLIN, 0});
    const std::size_t listeners_at = fds.size();
    if (!accept_paused_) {
      if (unix_fd_ >= 0) fds.push_back({unix_fd_, POLLIN, 0});
      if (tcp_fd_ >= 0) fds.push_back({tcp_fd_, POLLIN, 0});
    }
    const std::size_t conns_at = fds.size();
    for (const auto& conn : connections_) {
      short events = POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
    }

    const int ready =
        ::poll(fds.data(), fds.size(), accept_paused_ ? kAcceptRetryMs : -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      sys_fail("poll");
    }
    accept_paused_ = false;  // retry accept on the next iteration

    if (fds[0].revents & POLLIN) {
      stop_signal = true;  // drain the pipe, then exit via graceful path
      char buf[16];
      while (::read(stop_pipe_[0], buf, sizeof buf) > 0) {
      }
    }

    for (std::size_t i = listeners_at; i < conns_at; ++i) {
      if (!(fds[i].revents & POLLIN)) continue;
      while (true) {
        const int conn_fd = ::accept(fds[i].fd, nullptr, nullptr);
        if (conn_fd < 0) {
          if (errno == EINTR || errno == ECONNABORTED) continue;
          if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
              errno == ENOMEM) {
            // Out of fds: the level-triggered listener stays readable, so
            // returning straight to poll would busy-spin at 100% CPU.
            // Stop polling it for one iteration and retry after a delay.
            accept_paused_ = true;
          }
          break;  // EAGAIN or transient error
        }
        set_nonblocking(conn_fd);
        Connection conn;
        conn.fd = conn_fd;
        connections_.push_back(std::move(conn));
      }
    }

    // Service existing connections; collect closures after the loop so
    // indices into fds stay aligned with connections_.
    std::vector<std::size_t> dead;
    for (std::size_t i = conns_at; i < fds.size(); ++i) {
      const std::size_t c = i - conns_at;
      Connection& conn = connections_[c];
      bool drop = (fds[i].revents & (POLLERR | POLLNVAL)) != 0;

      if (!drop && (fds[i].revents & (POLLIN | POLLHUP))) {
        char buf[16384];
        while (true) {
          // read_eintr: a signal mid-read must not surface as an error
          // that drops the connection.
          const ssize_t n = fp::read_eintr(kSiteConnRead, conn.fd, buf,
                                           sizeof buf);
          if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            conn.close_after_flush = true;  // peer finished sending
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          drop = true;
          break;
        }
        if (!drop && !handle_input(conn)) drop = true;
      }

      if (!drop && !conn.out.empty()) {
        while (!conn.out.empty()) {
          const ssize_t n = fp::write_eintr(kSiteConnWrite, conn.fd,
                                            conn.out.data(), conn.out.size());
          if (n > 0) {
            conn.out.erase(0, static_cast<std::size_t>(n));
            continue;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          drop = true;
          break;
        }
      }
      if (conn.close_after_flush && conn.out.empty()) drop = true;
      if (drop) dead.push_back(c);

      if (shutdown_requested_) {
        // The shutdown reply must reach its sender even though we stop
        // polling: flush synchronously (bounded by SO_SNDBUF + a line).
        for (auto& open : connections_) {
          while (!open.out.empty()) {
            const ssize_t n = fp::write_eintr(kSiteConnWrite, open.fd,
                                              open.out.data(), open.out.size());
            if (n > 0) {
              open.out.erase(0, static_cast<std::size_t>(n));
              continue;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
              pollfd wait{open.fd, POLLOUT, 0};
              if (::poll(&wait, 1, 1000) <= 0) break;
              continue;
            }
            break;
          }
        }
        break;
      }
    }

    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      ::close(connections_[*it].fd);
      connections_.erase(connections_.begin() +
                         static_cast<std::ptrdiff_t>(*it));
    }
  }

  close_listeners();
  if (shutdown_requested_) {
    TVP_LOG_INFO("svc: shutdown requested (%s)",
                 shutdown_drain_ ? "drain" : "stop at next cell");
    engine_.shutdown(shutdown_drain_);
  } else {
    TVP_LOG_INFO("svc: signal received; checkpointing and exiting");
    engine_.shutdown(false);
  }
  close_all();
}

bool Server::handle_input(Connection& conn) {
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = conn.in.find('\n', start);
    if (nl == std::string::npos) break;
    // Enforce the line limit on complete lines too — without this, an
    // oversized line that arrives in one read chunk (newline included)
    // would evade the runaway guard below and reach the parser.
    if (nl - start > config_.max_line_bytes) return false;
    std::string line = conn.in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::string response;
    try {
      response = handle_request(parse_request(line));
    } catch (const ProtocolError& e) {
      response = error_response(e.what());
    }
    conn.out += response;
    conn.out += '\n';
    if (shutdown_requested_) break;
  }
  conn.in.erase(0, start);
  if (conn.in.size() > config_.max_line_bytes) return false;  // runaway line
  return true;
}

std::string Server::handle_request(const Request& request) {
  switch (request.op) {
    case Request::Op::kPing:
      return ok_response();
    case Request::Op::kSubmit: {
      std::string error;
      const std::uint64_t id = engine_.submit(request.spec, &error);
      return id ? submit_response(id) : error_response(error);
    }
    case Request::Op::kStatus: {
      if (!request.has_job_id) return status_response(engine_.statuses());
      const auto status = engine_.status(request.job_id);
      if (!status)
        return error_response("unknown job " + std::to_string(request.job_id));
      return status_response({*status});
    }
    case Request::Op::kResults: {
      const auto status = engine_.status(request.job_id);
      if (!status)
        return error_response("unknown job " + std::to_string(request.job_id));
      const auto result = engine_.result(request.job_id);
      if (!result)
        return error_response("job " + std::to_string(request.job_id) +
                              " has no results (state: " +
                              to_string(status->state) + ")");
      return results_response(*status, *result);
    }
    case Request::Op::kCancel:
      if (!engine_.cancel(request.job_id))
        return error_response("job " + std::to_string(request.job_id) +
                              " is unknown or already finished");
      return ok_response();
    case Request::Op::kShutdown:
      shutdown_requested_ = true;
      shutdown_drain_ = request.drain;
      return ok_response();
  }
  return error_response("unhandled op");
}

void Server::close_listeners() {
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (unix_bound_) {
    ::unlink(config_.unix_path.c_str());
    unix_bound_ = false;
  }
}

void Server::close_all() {
  close_listeners();
  for (auto& conn : connections_) ::close(conn.fd);
  connections_.clear();
}

}  // namespace tvp::svc
