#include "tvp/svc/server.hpp"

#include <arpa/inet.h>
#include <csignal>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "tvp/svc/wire.hpp"
#include "tvp/util/failpoint.hpp"
#include "tvp/util/log.hpp"

namespace tvp::svc {

namespace fp = util::fp;

namespace {

// Failpoint sites for the server's syscall paths (see
// util/failpoint.hpp). The epoll.ctl site is armed only for connection
// registration — injecting there must drop one connection, never the
// daemon.
constexpr const char* kSiteConnRead = "server.conn.read";
constexpr const char* kSiteConnWrite = "server.conn.write";
constexpr const char* kSiteAccept = "server.accept";
constexpr const char* kSiteEpollWait = "server.epoll.wait";
constexpr const char* kSiteEpollCtl = "server.epoll.ctl";

// epoll cookies for the loop's own fds; connection ids start at 16.
constexpr std::uint64_t kIdStop = 0;
constexpr std::uint64_t kIdWake = 1;
constexpr std::uint64_t kIdUnix = 2;
constexpr std::uint64_t kIdTcp = 3;

// Compact the drained prefix of an output buffer only once it is both
// sizeable and the majority of the buffer — keeps the amortized drain
// cost linear regardless of SO_SNDBUF.
constexpr std::size_t kCompactBytes = 64u << 10;

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error("svc::Server: " + what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    sys_fail("fcntl(O_NONBLOCK)");
}

sockaddr_un unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path)
    throw std::runtime_error("svc::Server: unix path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  return addr;
}

/// Connect-probes @p path. True when a live daemon accepted the
/// connection (binding over it would sever a running service); false
/// when nothing answers (stale socket file, safe to replace).
/// @p pinged reports whether the peer answered a protocol ping within
/// the probe window.
bool unix_socket_alive(const std::string& path, bool* pinged) {
  *pinged = false;
  sockaddr_un addr = unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) sys_fail("socket(AF_UNIX probe)");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);  // ECONNREFUSED / ENOENT: nobody home
    return false;
  }
  // Someone accepted — the daemon is alive whatever it says. Ping it
  // anyway so the refusal message can tell "live and healthy" from
  // "accepting but mute".
  const std::string line = ping_request() + "\n";
  if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) ==
      static_cast<ssize_t>(line.size())) {
    pollfd wait{fd, POLLIN, 0};
    if (::poll(&wait, 1, 250) > 0) {
      char buf[256];
      if (::recv(fd, buf, sizeof buf, 0) > 0) *pinged = true;
    }
  }
  ::close(fd);
  return true;
}

// One server per process: the signal handler can only touch a static.
std::atomic<int> g_stop_fd{-1};

void on_stop_signal(int) {
  const int fd = g_stop_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)), engine_(config_.engine) {
  if (config_.unix_path.empty() && config_.tcp_port < 0)
    throw std::invalid_argument("svc::Server: no listener configured");
}

Server::~Server() {
  if (drain_thread_.joinable()) drain_thread_.join();
  close_all();
  if (g_stop_fd.load(std::memory_order_relaxed) == stop_pipe_[1])
    g_stop_fd.store(-1, std::memory_order_relaxed);
  for (const int fd : stop_pipe_)
    if (fd >= 0) ::close(fd);
  for (const int fd : wake_pipe_)
    if (fd >= 0) ::close(fd);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

std::vector<std::uint64_t> Server::start() {
  // A client that closes before its reply is flushed must surface as
  // EPIPE on write (we drop the connection), not SIGPIPE (whose default
  // action kills the daemon, bypassing the graceful drain path).
  ::signal(SIGPIPE, SIG_IGN);

  if (::pipe(stop_pipe_) != 0) sys_fail("pipe(stop)");
  if (::pipe(wake_pipe_) != 0) sys_fail("pipe(wake)");
  for (const int fd : {stop_pipe_[0], stop_pipe_[1], wake_pipe_[0],
                       wake_pipe_[1]})
    set_nonblocking(fd);

  epoll_fd_ = ::epoll_create1(0);
  if (epoll_fd_ < 0) sys_fail("epoll_create1");
  const auto watch = [&](int fd, std::uint64_t id, std::uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
      sys_fail("epoll_ctl(ADD)");
  };
  watch(stop_pipe_[0], kIdStop, EPOLLIN);
  watch(wake_pipe_[0], kIdWake, EPOLLIN);

  const int backlog = config_.backlog > 0 ? config_.backlog : SOMAXCONN;

  if (!config_.unix_path.empty()) {
    // Never sever a live daemon: probe before replacing the socket
    // file. Only a dead path (nobody accepts) is treated as stale.
    bool pinged = false;
    if (unix_socket_alive(config_.unix_path, &pinged))
      throw std::runtime_error(
          "svc::Server: another daemon is already serving " +
          config_.unix_path +
          (pinged ? " (it answers ping)" : " (it accepts connections)") +
          "; refusing to start");
    sockaddr_un addr = unix_addr(config_.unix_path);
    unix_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd_ < 0) sys_fail("socket(AF_UNIX)");
    ::unlink(config_.unix_path.c_str());  // stale file from a killed daemon
    if (::bind(unix_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_fail("bind " + config_.unix_path);
    unix_bound_ = true;
    if (::listen(unix_fd_, backlog) != 0) sys_fail("listen(unix)");
    set_nonblocking(unix_fd_);
    watch(unix_fd_, kIdUnix, EPOLLIN);
  }

  if (config_.tcp_port >= 0) {
    tcp_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd_ < 0) sys_fail("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config_.tcp_port));
    if (::bind(tcp_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      sys_fail("bind 127.0.0.1:" + std::to_string(config_.tcp_port));
    if (::listen(tcp_fd_, backlog) != 0) sys_fail("listen(tcp)");
    set_nonblocking(tcp_fd_);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(tcp_fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
      sys_fail("getsockname");
    bound_port_ = ntohs(bound.sin_port);
    watch(tcp_fd_, kIdTcp, EPOLLIN);
  }

  return engine_.start();
}

void Server::request_stop() noexcept {
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(stop_pipe_[1], &byte, 1);
  }
}

void Server::install_signal_handlers(Server& server) {
  g_stop_fd.store(server.stop_pipe_[1], std::memory_order_relaxed);
  struct sigaction action{};
  action.sa_handler = on_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

void Server::pause_accept() {
  if (accept_paused_) return;
  accept_paused_ = true;
  // Stop watching the listeners: with a stale backlog they would wake
  // epoll_wait immediately every iteration, spinning at 100% CPU while
  // we wait for an fd to free up.
  if (unix_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, unix_fd_, nullptr);
  if (tcp_fd_ >= 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, tcp_fd_, nullptr);
}

void Server::resume_accept() {
  if (!accept_paused_) return;
  accept_paused_ = false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (unix_fd_ >= 0) {
    ev.data.u64 = kIdUnix;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, unix_fd_, &ev) != 0)
      sys_fail("epoll_ctl(re-add unix listener)");
  }
  if (tcp_fd_ >= 0) {
    ev.data.u64 = kIdTcp;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, tcp_fd_, &ev) != 0)
      sys_fail("epoll_ctl(re-add tcp listener)");
  }
}

void Server::accept_ready(int listen_fd) {
  while (true) {
    const int conn_fd =
        fp::accept4(kSiteAccept, listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
    if (conn_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM)
        pause_accept();  // retry after kAcceptRetryMs
      break;  // EAGAIN or transient error
    }
    if (config_.sndbuf_bytes > 0)
      ::setsockopt(conn_fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                   sizeof config_.sndbuf_bytes);
    Connection conn;
    conn.id = next_conn_id_++;
    conn.fd = conn_fd;
    epoll_event ev{};
    // Edge-triggered: registered once, never modified. The contract is
    // read-until-EAGAIN and write-until-EAGAIN on every edge; ADD
    // delivers an initial edge if data already arrived.
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = conn.id;
    if (fp::epoll_ctl(kSiteEpollCtl, epoll_fd_, EPOLL_CTL_ADD, conn_fd, &ev) !=
        0) {
      TVP_LOG_WARN("svc: cannot register connection: %s",
                   std::strerror(errno));
      ::close(conn_fd);
      continue;
    }
    conns_.emplace(conn.id, std::move(conn));
  }
}

void Server::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  for (const auto& [job_id, token] : it->second.streams)
    engine_.unsubscribe(job_id, token);
  ::close(it->second.fd);  // kernel drops the epoll registration
  conns_.erase(it);
}

bool Server::flush_out(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n =
        fp::write_eintr(kSiteConnWrite, conn.fd, conn.out.data() + conn.out_pos,
                        conn.out.size() - conn.out_pos);
    if (n > 0) {
      conn.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return false;
  }
  if (conn.out_pos >= conn.out.size()) {
    conn.out.clear();
    conn.out_pos = 0;
  } else if (conn.out_pos >= kCompactBytes &&
             conn.out_pos >= conn.out.size() / 2) {
    conn.out.erase(0, conn.out_pos);
    conn.out_pos = 0;
  }
  if (conn.out.size() - conn.out_pos > config_.max_out_bytes) {
    // Slow (or absent) reader: the connection keeps generating output
    // it never drains. Drop it instead of buffering until OOM.
    TVP_LOG_WARN("svc: dropping slow reader (conn %llu, %zu bytes pending)",
                 static_cast<unsigned long long>(conn.id),
                 conn.out.size() - conn.out_pos);
    return false;
  }
  return true;
}

void Server::enqueue_delivery(Delivery delivery) {
  {
    std::lock_guard<std::mutex> lock(deliveries_mu_);
    deliveries_.push_back(std::move(delivery));
  }
  if (wake_pipe_[1] >= 0) {
    const char byte = 1;
    // EAGAIN on a full pipe is fine: the loop already has a pending
    // wake it has not consumed yet.
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void Server::drain_deliveries() {
  std::vector<Delivery> batch;
  {
    std::lock_guard<std::mutex> lock(deliveries_mu_);
    batch.swap(deliveries_);
  }
  for (auto& delivery : batch) {
    const auto it = conns_.find(delivery.conn_id);
    if (it == conns_.end()) continue;  // subscriber already dropped
    Connection& conn = it->second;
    conn.out += delivery.line;
    conn.out += '\n';
    if (delivery.end) conn.streams.erase(delivery.job_id);
    if (!flush_out(conn) || (conn.close_after_flush && conn.out.empty() &&
                             conn.streams.empty()))
      close_conn(delivery.conn_id);
  }
}

void Server::begin_shutdown(bool drain) {
  if (stopping_) return;
  stopping_ = true;
  TVP_LOG_INFO("svc: %s; draining (%s)",
               shutdown_requested_ ? "shutdown requested" : "signal received",
               drain ? "finish queued jobs" : "stop at next cell");
  // New clients see a dead socket immediately; existing ones keep
  // being served (status polls, stream flushes) while the engine winds
  // down on its own thread — a long drain must not freeze the loop.
  close_listeners();
  drain_thread_ = std::thread([this, drain] {
    engine_.shutdown(drain);
    engine_done_.store(true, std::memory_order_release);
    Delivery poke;  // wake the loop so it re-evaluates the exit condition
    poke.conn_id = 0;
    enqueue_delivery(std::move(poke));
  });
}

void Server::serve() {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];

  while (true) {
    int timeout = -1;
    if (accept_paused_)
      timeout = kAcceptRetryMs;
    else if (stopping_)
      timeout = 50;

    const int ready =
        fp::epoll_wait(kSiteEpollWait, epoll_fd_, events, kMaxEvents, timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      sys_fail("epoll_wait");
    }
    if (accept_paused_) {
      // The back-off elapsed (or something else woke us): watch the
      // listeners again and sweep any backlog that piled up meanwhile.
      resume_accept();
      if (unix_fd_ >= 0) accept_ready(unix_fd_);
      if (tcp_fd_ >= 0) accept_ready(tcp_fd_);
    }

    for (int i = 0; i < ready; ++i) {
      const std::uint64_t id = events[i].data.u64;
      const std::uint32_t ev = events[i].events;

      if (id == kIdStop) {
        char buf[16];
        while (::read(stop_pipe_[0], buf, sizeof buf) > 0) {
        }
        begin_shutdown(false);
        continue;
      }
      if (id == kIdWake) {
        char buf[256];
        while (::read(wake_pipe_[0], buf, sizeof buf) > 0) {
        }
        continue;  // deliveries drain below
      }
      if (id == kIdUnix || id == kIdTcp) {
        accept_ready(id == kIdUnix ? unix_fd_ : tcp_fd_);
        continue;
      }

      const auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection& conn = it->second;
      bool drop = (ev & EPOLLERR) != 0;

      if (!drop && (ev & (EPOLLIN | EPOLLHUP | EPOLLRDHUP))) {
        char buf[16384];
        while (true) {
          // read_eintr: a signal mid-read must not surface as an error
          // that drops the connection.
          const ssize_t n =
              fp::read_eintr(kSiteConnRead, conn.fd, buf, sizeof buf);
          if (n > 0) {
            conn.in.append(buf, static_cast<std::size_t>(n));
            continue;
          }
          if (n == 0) {
            conn.close_after_flush = true;  // peer finished sending
            break;
          }
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          drop = true;
          break;
        }
        if (!drop && !handle_input(conn)) drop = true;
      }

      if (!drop) drop = !flush_out(conn);  // covers EPOLLOUT edges too
      if (!drop && conn.close_after_flush && conn.out.empty() &&
          conn.streams.empty())
        drop = true;
      if (drop) close_conn(id);
    }

    // Stream events from sweep threads (and replays enqueued by
    // handle_request above — the subscription ack is already in
    // conn.out, so replayed cells follow it on the wire).
    drain_deliveries();

    if (shutdown_requested_) begin_shutdown(shutdown_drain_);

    if (stopping_ && engine_done_.load(std::memory_order_acquire)) {
      if (!flush_deadline_set_) {
        flush_deadline_set_ = true;
        flush_deadline_ = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(kFlushGraceMs);
      }
      bool pending;
      {
        std::lock_guard<std::mutex> lock(deliveries_mu_);
        pending = !deliveries_.empty();
      }
      if (!pending)
        for (const auto& [id, conn] : conns_)
          if (conn.out_pos < conn.out.size()) {
            pending = true;
            break;
          }
      if (!pending || std::chrono::steady_clock::now() >= flush_deadline_)
        break;
    }
  }

  if (drain_thread_.joinable()) drain_thread_.join();
  close_all();
}

bool Server::handle_input(Connection& conn) {
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = conn.in.find('\n', start);
    if (nl == std::string::npos) break;
    // Enforce the line limit on complete lines too — without this, an
    // oversized line that arrives in one read chunk (newline included)
    // would evade the runaway guard below and reach the parser.
    if (nl - start > config_.max_line_bytes) return false;
    std::string line = conn.in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::string response;
    try {
      response = handle_request(conn, parse_request(line));
    } catch (const ProtocolError& e) {
      response = error_response(e.what());
    }
    conn.out += response;
    conn.out += '\n';
  }
  conn.in.erase(0, start);
  if (conn.in.size() > config_.max_line_bytes) return false;  // runaway line
  return true;
}

std::string Server::handle_request(Connection& conn, const Request& request) {
  switch (request.op) {
    case Request::Op::kPing:
      return ok_response();
    case Request::Op::kSubmit: {
      std::string error;
      const std::uint64_t id = engine_.submit(request.spec, &error);
      return id ? submit_response(id) : error_response(error);
    }
    case Request::Op::kStatus: {
      if (!request.has_job_id) return status_response(engine_.statuses());
      const auto status = engine_.status(request.job_id);
      if (!status)
        return error_response("unknown job " + std::to_string(request.job_id));
      return status_response({*status});
    }
    case Request::Op::kResults: {
      const auto status = engine_.status(request.job_id);
      if (!status)
        return error_response("unknown job " + std::to_string(request.job_id));
      if (request.stream) {
        if (conn.streams.count(request.job_id))
          return error_response("already streaming job " +
                                std::to_string(request.job_id) +
                                " on this connection");
        const std::uint64_t conn_id = conn.id;
        const std::uint64_t job_id = request.job_id;
        // The callbacks only enqueue + wake: connection state stays
        // owned by the epoll thread, and the engine's stream lock never
        // waits on server locks (no deadlock cycle). Replayed cells are
        // enqueued synchronously here; the loop drains them after the
        // ack below is already queued, so the client always sees
        // ack -> replayed cells -> live cells -> end.
        const std::uint64_t token = engine_.subscribe(
            job_id,
            [this, conn_id, job_id](const std::string& cell_json) {
              Delivery d;
              d.conn_id = conn_id;
              d.job_id = job_id;
              d.line = stream_cell_event(job_id, cell_json);
              enqueue_delivery(std::move(d));
            },
            [this, conn_id, job_id](JobState state, const std::string& error) {
              Delivery d;
              d.conn_id = conn_id;
              d.job_id = job_id;
              d.line = stream_end_event(job_id, state, error);
              d.end = true;
              enqueue_delivery(std::move(d));
            });
        if (token == 0)
          return error_response("unknown job " +
                                std::to_string(request.job_id));
        conn.streams[job_id] = token;
        return stream_ack_response(*status);
      }
      const auto result = engine_.result(request.job_id);
      if (!result)
        return error_response("job " + std::to_string(request.job_id) +
                              " has no results (state: " +
                              to_string(status->state) + ")");
      return results_response(*status, *result);
    }
    case Request::Op::kCancel:
      if (!engine_.cancel(request.job_id))
        return error_response("job " + std::to_string(request.job_id) +
                              " is unknown or already finished");
      return ok_response();
    case Request::Op::kShutdown:
      shutdown_requested_ = true;
      shutdown_drain_ = request.drain;
      return ok_response();
  }
  return error_response("unhandled op");
}

void Server::close_listeners() {
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  if (unix_bound_) {
    ::unlink(config_.unix_path.c_str());
    unix_bound_ = false;
  }
}

void Server::close_all() {
  close_listeners();
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
}

}  // namespace tvp::svc
