#include "tvp/exp/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <stdexcept>

#include "tvp/cpu/frontend.hpp"
#include "tvp/trace/synthetic.hpp"
#include "tvp/util/parallel.hpp"

namespace tvp::exp {

namespace {
constexpr std::uint64_t key_of(dram::BankId bank, dram::RowId row) noexcept {
  return (static_cast<std::uint64_t>(bank) << 32) | row;
}
}  // namespace

const char* to_string(BenignModel model) noexcept {
  switch (model) {
    case BenignModel::kMixedSynthetic: return "mixed-synthetic";
    case BenignModel::kCacheFrontend: return "cache-frontend";
    case BenignModel::kUniformRandom: return "uniform-random";
    case BenignModel::kReplay: return "replay";
    case BenignModel::kFuzz: return "fuzz";
  }
  return "?";
}

SimConfig::SimConfig() {
  // Scaled default: 4 banks keeps a full 9-technique, multi-seed sweep
  // interactive on one core while preserving the per-window attack
  // dynamics exactly (DESIGN.md, "Scaling").
  geometry.banks_per_rank = 4;
  finalize();
}

void SimConfig::finalize() {
  geometry.validate();
  timing.validate();
  technique.params.rows_per_bank = geometry.rows_per_bank;
  technique.params.refresh_intervals = timing.refresh_intervals;
  if (windows == 0) throw std::invalid_argument("SimConfig: zero windows");
  if (workload.model == BenignModel::kReplay && workload.trace_path.empty())
    throw std::invalid_argument(
        "SimConfig: replay workload needs workload.trace");
  if (workload.model == BenignModel::kFuzz) {
    if (workload.fuzz.patterns == 0)
      throw std::invalid_argument("SimConfig: fuzz workload needs patterns >= 1");
    if (workload.fuzz.acts_per_interval <= 0.0)
      throw std::invalid_argument(
          "SimConfig: fuzz workload needs acts_per_interval > 0");
    workload.fuzz.params.rows_per_bank = geometry.rows_per_bank;
    workload.fuzz.params.validate();
  }
  for (const auto& attack : workload.attacks) {
    if (attack.bank >= geometry.total_banks())
      throw std::invalid_argument("SimConfig: attack bank out of range");
    if (attack.rows_per_bank != geometry.rows_per_bank)
      throw std::invalid_argument(
          "SimConfig: attack rows_per_bank mismatch with geometry");
  }
}

std::unique_ptr<trace::TraceSource> build_workload(
    const SimConfig& config, util::Rng& rng,
    std::unordered_set<std::uint64_t>* aggressors,
    std::unordered_set<std::uint64_t>* victims) {
  std::vector<std::unique_ptr<trace::TraceSource>> sources;

  if (config.workload.model == BenignModel::kReplay) {
    // The corpus already contains the full recorded stream (benign and
    // attack records alike) plus the ground-truth aggressor oracle; the
    // workload RNG is untouched.
    auto corpus =
        std::make_unique<trace::MmapSource>(config.workload.trace_path);
    if (aggressors != nullptr)
      aggressors->insert(corpus->info().aggressors.begin(),
                         corpus->info().aggressors.end());
    if (victims != nullptr)
      victims->insert(corpus->info().victims.begin(),
                      corpus->info().victims.end());
    sources.push_back(std::move(corpus));
  } else if (config.workload.benign_acts_per_interval_per_bank > 0.0) {
    if (config.workload.model == BenignModel::kUniformRandom) {
      trace::SyntheticConfig c;
      c.profile = trace::AccessProfile::kRandom;
      c.banks = config.geometry.total_banks();
      c.rows_per_bank = config.geometry.rows_per_bank;
      c.mean_interarrival_ps =
          static_cast<double>(config.timing.t_refi_ps()) /
          (config.workload.benign_acts_per_interval_per_bank *
           config.geometry.total_banks());
      sources.push_back(std::make_unique<trace::SyntheticSource>(c, rng.fork()));
    } else if (config.workload.model == BenignModel::kCacheFrontend) {
      auto frontend_cfg = cpu::default_frontend(config.geometry);
      // Calibrate the op rate so the post-cache activation stream lands
      // near the target (the cache hierarchy absorbs ~90+ % of ops; the
      // factor is re-measured by the calibration test).
      const double target_acts_per_ps =
          config.workload.benign_acts_per_interval_per_bank *
          config.geometry.total_banks() /
          static_cast<double>(config.timing.t_refi_ps());
      // DRAM records (fills + writebacks) per core memory op, measured
      // for the default 4-profile mix behind 64K/256K caches (the
      // cpu_test calibration test tracks this constant).
      const double dram_traffic_per_op = 0.74;
      for (auto& core : frontend_cfg.cores)
        core.mean_gap_ps = dram_traffic_per_op /
                           (target_acts_per_ps / frontend_cfg.cores.size());
      sources.push_back(
          std::make_unique<cpu::CoreFrontend>(frontend_cfg, rng.fork()));
    } else {
      const auto configs = trace::mixed_workload(
          config.geometry.total_banks(), config.geometry.rows_per_bank,
          config.timing.t_refi_ps(),
          config.workload.benign_acts_per_interval_per_bank);
      for (const auto& c : configs)
        sources.push_back(std::make_unique<trace::SyntheticSource>(c, rng.fork()));
    }
  }

  const auto register_attack = [&](std::unique_ptr<trace::AttackSource> attack) {
    if (aggressors != nullptr) {
      for (const auto row : attack->aggressors())
        aggressors->insert(key_of(attack->config().bank, row));
      for (const auto row : attack->dribble_rows())
        aggressors->insert(key_of(attack->config().bank, row));
    }
    if (victims != nullptr)
      for (const auto v : attack->config().victims)
        victims->insert(key_of(attack->config().bank, v));
    sources.push_back(std::move(attack));
  };

  for (const auto& attack_cfg : config.workload.attacks)
    register_attack(std::make_unique<trace::AttackSource>(attack_cfg));

  if (config.workload.model == BenignModel::kFuzz) {
    // Fuzzed attacks derive from their own seeds (workload RNG untouched,
    // so record/replay and the benign stream are unaffected); pattern i
    // uses fuzzer seed fuzz.seed + i and targets bank i mod banks.
    const auto& spec = config.workload.fuzz;
    trace::PatternFuzzer fuzzer(spec.params);
    const auto interarrival = static_cast<std::uint64_t>(
        static_cast<double>(config.timing.t_refi_ps()) / spec.acts_per_interval);
    for (std::uint32_t i = 0; i < spec.patterns; ++i) {
      const auto pattern = fuzzer.pattern(spec.seed + i);
      const auto bank =
          static_cast<dram::BankId>(i % config.geometry.total_banks());
      const auto source_id = static_cast<trace::SourceId>(230 + i % 25);
      register_attack(std::make_unique<trace::AttackSource>(
          fuzzer.make_attack(pattern, bank, interarrival, source_id)));
    }
  }

  // A single source needs no merge — and skipping it preserves the
  // source's zero-copy span support (the k-way heap can't hand out
  // borrowed spans). A 1-way merge is a passthrough, so the record
  // sequence is unchanged either way.
  std::unique_ptr<trace::TraceSource> stream;
  if (sources.size() == 1)
    stream = std::move(sources.front());
  else
    stream = std::make_unique<trace::MergedSource>(std::move(sources));
  return std::make_unique<trace::LimitSource>(std::move(stream), ~0ull,
                                              config.duration_ps());
}

RunResult run_simulation(hw::Technique technique, const SimConfig& config) {
  SimConfig cfg = config;
  cfg.finalize();  // sync technique params with geometry before the factory
  return run_custom_simulation(make_factory(technique, cfg.technique),
                               std::string(hw::to_string(technique)), cfg);
}

RunResult run_custom_simulation(const mem::BankMitigationFactory& factory,
                                const std::string& display_name,
                                const SimConfig& config) {
  const auto t0 = std::chrono::steady_clock::now();

  SimConfig cfg = config;
  cfg.finalize();

  util::Rng rng(cfg.seed);
  util::Rng workload_rng = rng.fork();
  util::Rng engine_rng = rng.fork();
  util::Rng controller_rng = rng.fork();

  mem::MitigationEngine engine(cfg.geometry.total_banks(), factory, engine_rng);
  dram::DisturbanceModel disturbance(cfg.geometry.total_banks(),
                                     cfg.geometry.rows_per_bank,
                                     cfg.disturbance);

  mem::ControllerConfig controller_cfg;
  controller_cfg.geometry = cfg.geometry;
  controller_cfg.timing = cfg.timing;
  controller_cfg.refresh_policy = cfg.refresh_policy;
  controller_cfg.remap_rows = cfg.remap_rows;
  controller_cfg.remap_swaps = cfg.remap_swaps;
  controller_cfg.act_n_radius = cfg.act_n_radius;
  controller_cfg.bank_jobs = cfg.bank_jobs;
  mem::MemoryController controller(controller_cfg, engine, disturbance,
                                   controller_rng);

  std::unordered_set<std::uint64_t> aggressors;
  std::unordered_set<std::uint64_t> victims;
  auto workload = build_workload(cfg, workload_rng, &aggressors, &victims);
  controller.set_aggressor_oracle(
      [&aggressors](dram::BankId bank, dram::RowId row) {
        return aggressors.count(key_of(bank, row)) != 0;
      });

  RunResult result;
  // Batched delivery: one next_batch() virtual call per kBatchRecords
  // instead of one next() per record. The record sequence — and thus
  // every RNG draw — is identical to the record-at-a-time loop (the
  // bit-identical-results test in exp_test holds the two paths equal).
  // 4096 keeps refresh segments long enough for the per-bank batch
  // kernels (and the bank_jobs sharding) to amortize their dispatch.
  constexpr std::size_t kBatchRecords = 4096;
  if (workload->supports_spans()) {
    // Zero-copy feed: the controller consumes the source's own storage
    // (for a corpus replay, the mmap'd page cache) span by span. When
    // the span comes with precomputed bank lanes (a corpus with a
    // partition index), the controller skips its own scatter pass; the
    // record sequence is identical either way, and on_records is
    // chunking-invariant, so results stay bit-identical.
    const trace::AccessRecord* span = nullptr;
    const trace::BankLaneView* lanes = nullptr;
    std::size_t lane_banks = 0;
    while (const std::size_t n =
               workload->span_lanes(&span, &lanes, &lane_banks)) {
      if (lanes != nullptr)
        controller.on_records_partitioned(span, n, lanes, lane_banks);
      else
        controller.on_records(span, n);
      result.records += n;
    }
  } else {
    std::vector<trace::AccessRecord> batch(kBatchRecords);
    for (;;) {
      const std::size_t n = workload->next_batch(batch.data(), batch.size());
      if (n == 0) break;
      controller.on_records(batch.data(), n);
      result.records += n;
    }
  }
  controller.advance_to(cfg.duration_ps());

  result.technique = display_name;
  result.stats = controller.stats();
  result.flips = disturbance.flips().size();
  result.flip_events = disturbance.flips();
  result.peak_disturbance = disturbance.peak_disturbance_q8() >> 8;
  result.state_bytes_per_bank = engine.state_bytes_per_bank();

  // Victim flips: flips on the physical images of the declared victims
  // (a flip anywhere is a failure, but victim flips are the attack's
  // declared goal). build_workload collects them logical from every
  // source — explicit attacks, fuzz-derived patterns, the replay
  // corpus footer — and they are mapped through the remapper here.
  std::unordered_set<std::uint64_t> victim_keys;
  for (const auto key : victims)
    victim_keys.insert(
        key_of(static_cast<dram::BankId>(key >> 32),
               controller.remapper().to_physical(static_cast<dram::RowId>(key))));
  for (const auto& flip : disturbance.flips())
    if (victim_keys.count(key_of(flip.bank, flip.row))) ++result.victim_flips;

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

SeedSweepResult run_seed_sweep(hw::Technique technique, SimConfig config,
                               std::uint32_t seeds) {
  if (seeds == 0) throw std::invalid_argument("run_seed_sweep: zero seeds");
  const auto t0 = std::chrono::steady_clock::now();
  SeedSweepResult sweep;
  sweep.technique = std::string(hw::to_string(technique));
  sweep.jobs = util::job_count();

  // Parallel-safety invariant: nothing below run_simulation shares
  // mutable state between runs — every run builds its own Rng(cfg.seed),
  // workload, controller, engine and disturbance model from its private
  // SimConfig copy. Keep it that way: any global/static mutable state
  // introduced under run_simulation breaks this grid.
  //
  // Sweep seeds derive from the caller's configured base seed (they used
  // to be hardcoded to 1000 + s, silently discarding config.seed).
  const std::uint64_t base_seed = config.seed;
  std::vector<RunResult> runs(seeds);
  util::parallel_for_indexed(seeds, sweep.jobs, [&](std::size_t s) {
    SimConfig cfg = config;
    cfg.seed = base_seed + s;
    runs[s] = run_simulation(technique, cfg);
  });

  // Reduce in seed order via parallel Welford merges. The reduction is
  // the same sequence of float operations for every job count, so the
  // aggregate is bit-identical whether the grid ran on 1 or N threads.
  for (const RunResult& run : runs) {
    util::RunningStat overhead;
    overhead.add(run.overhead_pct());
    sweep.overhead_pct.merge(overhead);
    util::RunningStat fpr;
    fpr.add(run.fpr_pct());
    sweep.fpr_pct.merge(fpr);
    sweep.total_flips += run.flips;
    sweep.total_victim_flips += run.victim_flips;
    sweep.state_bytes_per_bank = run.state_bytes_per_bank;
  }
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return sweep;
}

std::uint32_t record_corpus(const SimConfig& config, const std::string& path,
                            trace::CorpusWriter::Options options) {
  SimConfig cfg = config;
  cfg.finalize();
  if (cfg.workload.model == BenignModel::kReplay)
    throw std::invalid_argument(
        "record_corpus: the workload is already a replay");
  // Same fork order as run_custom_simulation: the workload stream drawn
  // here is exactly the one a generated run would consume.
  util::Rng rng(cfg.seed);
  util::Rng workload_rng = rng.fork();
  std::unordered_set<std::uint64_t> aggressors;
  std::unordered_set<std::uint64_t> victims;
  auto workload = build_workload(cfg, workload_rng, &aggressors, &victims);

  // Recorded corpora carry the partition index by default: the
  // config's bank count is known here, and writing the lanes once
  // saves every future replay its per-segment scatter pass. An
  // explicit partition_banks in @p options (matching or not) wins.
  if (options.partition_banks == 0)
    options.partition_banks = cfg.geometry.total_banks();
  trace::CorpusWriter writer(path, options);
  constexpr std::size_t kBatchRecords = 4096;
  std::vector<trace::AccessRecord> batch(kBatchRecords);
  for (;;) {
    const std::size_t n = workload->next_batch(batch.data(), batch.size());
    if (n == 0) break;
    writer.append(batch.data(), n);
  }
  writer.set_aggressors({aggressors.begin(), aggressors.end()});
  writer.set_victims({victims.begin(), victims.end()});
  return writer.close();
}

bool full_scale_requested() noexcept {
  const char* scale = std::getenv("TVP_SCALE");
  return scale != nullptr && std::string_view(scale) == "full";
}

void apply_scale(SimConfig& config, bool full) {
  if (full) {
    config.geometry.banks_per_rank = 16;
    config.windows = 6;
  } else {
    config.geometry.banks_per_rank = 4;
    config.windows = 2;
  }
  config.finalize();
}

}  // namespace tvp::exp
