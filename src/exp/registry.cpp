#include "tvp/exp/registry.hpp"

#include <stdexcept>

#include "tvp/core/tivapromi.hpp"
#include "tvp/mitigation/cra.hpp"
#include "tvp/mitigation/mrloc.hpp"
#include "tvp/mitigation/para.hpp"
#include "tvp/mitigation/prohit.hpp"
#include "tvp/mitigation/twice.hpp"

namespace tvp::exp {

mem::BankMitigationFactory make_factory(hw::Technique technique,
                                        const TechniqueConfig& config) {
  const auto& p = config.params;
  switch (technique) {
    case hw::Technique::kPara: {
      mitigation::ParaConfig c;
      c.p = util::FixedProb::from_double(config.para_p);
      c.rows_per_bank = p.rows_per_bank;
      return mitigation::make_para_factory(c);
    }
    case hw::Technique::kProHit: {
      mitigation::ProHitConfig c;
      c.hot_entries = p.prohit_hot;
      c.cold_entries = p.prohit_cold;
      c.insert_prob = util::FixedProb::pow2(config.prohit_insert_exp);
      c.promote_prob = util::FixedProb::pow2(config.prohit_promote_exp);
      c.rows_per_bank = p.rows_per_bank;
      return mitigation::make_prohit_factory(c);
    }
    case hw::Technique::kMrLoc: {
      mitigation::MrLocConfig c;
      c.queue_entries = p.mrloc_queue;
      c.p_min = util::FixedProb::from_double(config.mrloc_p_min);
      c.p_max = util::FixedProb::from_double(config.mrloc_p_max);
      c.rows_per_bank = p.rows_per_bank;
      return mitigation::make_mrloc_factory(c);
    }
    case hw::Technique::kTwice: {
      mitigation::TwiceConfig c;
      c.entries = p.twice_entries;
      c.row_threshold = config.counter_threshold();
      c.pruning_slope =
          (config.counter_threshold() + p.refresh_intervals - 1) /
          p.refresh_intervals;
      c.refresh_intervals = p.refresh_intervals;
      c.rows_per_bank = p.rows_per_bank;
      return mitigation::make_twice_factory(c);
    }
    case hw::Technique::kCra: {
      mitigation::CraConfig c;
      c.rows_per_bank = p.rows_per_bank;
      c.refresh_intervals = p.refresh_intervals;
      c.row_threshold = config.counter_threshold();
      return mitigation::make_cra_factory(c);
    }
    case hw::Technique::kLiPRoMi:
    case hw::Technique::kLoPRoMi:
    case hw::Technique::kLoLiPRoMi:
    case hw::Technique::kCaPRoMi: {
      core::TiVaPRoMiConfig c;
      c.refresh_intervals = p.refresh_intervals;
      c.rows_per_bank = p.rows_per_bank;
      c.pbase_exp = config.pbase_exp;
      c.history_entries = p.history_entries;
      c.counter_entries = p.counter_entries;
      c.capromi_reissue_cooldown = config.capromi_cooldown;
      core::Variant variant = core::Variant::kLinear;
      if (technique == hw::Technique::kLoPRoMi)
        variant = core::Variant::kLogarithmic;
      else if (technique == hw::Technique::kLoLiPRoMi)
        variant = core::Variant::kLogLinear;
      else if (technique == hw::Technique::kCaPRoMi)
        variant = core::Variant::kCounterAssisted;
      return core::make_tivapromi_factory(variant, c);
    }
  }
  throw std::invalid_argument("make_factory: unknown technique");
}

}  // namespace tvp::exp
