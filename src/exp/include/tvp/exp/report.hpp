// Shared experiment plumbing for the bench binaries: the paper's
// standard attack campaign, and uniform table formatting.
#pragma once

#include <string>
#include <vector>

#include "tvp/exp/runner.hpp"
#include "tvp/exp/verdict.hpp"

namespace tvp::exp {

/// Installs the paper's mixed-load attack campaign into @p config:
/// aggressor counts increasing gradually (1 -> 20 victims per targeted
/// bank, Section IV) across the available banks, all tagged for
/// ground-truth FPR accounting. The attacker's share plus the benign
/// target lands near Table I's ~40 activations/interval/bank.
void install_standard_campaign(SimConfig& config);

/// "(0.1 +/- 0.0084)%" formatting used by Table III.
std::string format_mu_sigma(const util::RunningStat& stat);

/// Prints one SeedSweepResult row set as the paper's comparison table.
void print_comparison_table(const std::string& title,
                            const std::vector<SeedSweepResult>& sweeps,
                            const std::vector<SecurityVerdict>& verdicts);

/// Environment-configured seed-sweep width (TVP_SEEDS, default @p fallback).
std::uint32_t seeds_from_env(std::uint32_t fallback = 5) noexcept;

}  // namespace tvp::exp
