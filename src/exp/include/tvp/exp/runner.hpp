// The experiment runner: assembles workload -> controller -> mitigation
// -> disturbance for one technique, runs it, and collects the metrics
// every table/figure of the paper is built from.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "tvp/dram/disturbance.hpp"
#include "tvp/dram/geometry.hpp"
#include "tvp/dram/refresh.hpp"
#include "tvp/dram/timing.hpp"
#include "tvp/exp/registry.hpp"
#include "tvp/hw/technique.hpp"
#include "tvp/mem/controller.hpp"
#include "tvp/trace/attack.hpp"
#include "tvp/trace/corpus.hpp"
#include "tvp/trace/fuzzer.hpp"
#include "tvp/trace/source.hpp"
#include "tvp/util/stats.hpp"

namespace tvp::exp {

/// How the benign traffic is produced.
enum class BenignModel {
  kMixedSynthetic,  ///< calibrated row-level profile mix (default)
  kCacheFrontend,   ///< multi-core cores behind L1/L2 (gem5 stand-in)
  kUniformRandom,   ///< zero-reuse uniform rows (worst case for history
                    ///< tables; the A4 sensitivity ablation)
  kReplay,          ///< replay a recorded .tvpc corpus (workload.trace)
  kFuzz,            ///< mixed-synthetic benign plus PatternFuzzer attacks
                    ///< derived from workload.fuzz (seed-deterministic)
};

const char* to_string(BenignModel model) noexcept;

/// Fuzzed-attack layer (model == kFuzz): on top of the mixed-synthetic
/// benign traffic, `patterns` PatternFuzzer patterns are derived from
/// seeds `seed, seed + 1, ...` and assigned to banks round-robin. The
/// derivation is independent of the workload RNG, so a fuzz workload
/// records/replays through the corpus machinery unchanged.
struct FuzzSpec {
  std::uint64_t seed = 1;           ///< first fuzzer seed (sweepable)
  std::uint32_t patterns = 1;       ///< patterns (banks round-robin)
  /// Attacker ACTs per refresh interval per pattern (sets interarrival).
  double acts_per_interval = 80.0;
  trace::FuzzParams params;         ///< parameter-space bounds
};

/// What traffic to generate.
struct WorkloadSpec {
  /// Average benign activations per refresh interval per bank. The
  /// standard campaign adds ~20 attacker ACTs/interval/bank on top,
  /// landing at Table I's average of ~40 including the aggressors.
  double benign_acts_per_interval_per_bank = 20.0;
  BenignModel model = BenignModel::kMixedSynthetic;
  /// Corpus file replayed when model == kReplay (records AND the
  /// aggressor oracle come from the file; benign_acts is ignored).
  /// Extra attacks may still be layered on top.
  std::string trace_path;
  /// Attacker threads (empty = benign-only run).
  std::vector<trace::AttackConfig> attacks;
  /// Fuzzed attacks layered on when model == kFuzz (ignored otherwise).
  FuzzSpec fuzz;
};

/// Full configuration of one simulation run.
struct SimConfig {
  dram::Geometry geometry;  ///< default below shrinks to 4 banks
  dram::Timing timing = dram::ddr4_timing();
  dram::RefreshPolicy refresh_policy = dram::RefreshPolicy::kNeighborSequential;
  bool remap_rows = false;
  std::size_t remap_swaps = 16;
  std::uint32_t act_n_radius = 1;  ///< see mem::ControllerConfig
  dram::DisturbanceParams disturbance;
  /// Per-bank sharding of the controller hot path (see
  /// mem::ControllerConfig::bank_jobs): 1 = serial (default; seed sweeps
  /// already parallelize across runs), 0 = auto (TVP_JOBS), N = N
  /// workers. Results are bit-identical for every setting.
  std::size_t bank_jobs = 1;
  std::uint32_t windows = 2;  ///< refresh windows to simulate
  std::uint64_t seed = 1;
  WorkloadSpec workload;
  TechniqueConfig technique;

  SimConfig();

  /// Simulated duration in picoseconds.
  std::uint64_t duration_ps() const noexcept {
    return static_cast<std::uint64_t>(windows) * timing.t_refw_ps;
  }
  /// Propagates geometry/timing into the technique parameters and checks
  /// consistency; call after editing fields.
  void finalize();
};

/// Everything measured in one run.
struct RunResult {
  std::string technique;
  mem::ControllerStats stats;
  std::uint64_t flips = 0;         ///< bit flips anywhere
  std::uint64_t victim_flips = 0;  ///< flips on the attack's victim rows
  std::vector<dram::FlipEvent> flip_events;  ///< every flip (bank, row, when)
  std::uint64_t peak_disturbance = 0;  ///< closest approach to the threshold
  double state_bytes_per_bank = 0.0;
  std::uint64_t records = 0;       ///< trace records consumed
  double wall_seconds = 0.0;

  double overhead_pct() const noexcept { return stats.overhead_pct(); }
  double fpr_pct() const noexcept { return stats.fpr_pct(); }
};

/// Runs @p technique on the configured system. Deterministic in
/// (config, config.seed).
RunResult run_simulation(hw::Technique technique, const SimConfig& config);

/// Same pipeline, but with an arbitrary mitigation factory — the hook
/// for techniques outside the paper's nine (Graphene, TRR, shaped
/// TiVaPRoMi variants, user-supplied defences).
RunResult run_custom_simulation(const mem::BankMitigationFactory& factory,
                                const std::string& display_name,
                                const SimConfig& config);

/// Multi-seed aggregation (Table III's mu +/- sigma columns).
struct SeedSweepResult {
  std::string technique;
  util::RunningStat overhead_pct;
  util::RunningStat fpr_pct;
  std::uint64_t total_flips = 0;
  std::uint64_t total_victim_flips = 0;
  double state_bytes_per_bank = 0.0;
  double wall_seconds = 0.0;  ///< wall-clock of the whole sweep
  std::size_t jobs = 1;       ///< worker threads used (TVP_JOBS)
};

/// Runs @p seeds independent simulations at seeds config.seed,
/// config.seed + 1, ... and aggregates them. The grid is executed with
/// util::job_count() worker threads (TVP_JOBS env var; 1 = sequential);
/// results land in per-seed slots and are reduced in seed order, so the
/// aggregate is bit-identical for every job count.
SeedSweepResult run_seed_sweep(hw::Technique technique, SimConfig config,
                               std::uint32_t seeds);

/// Builds the trace for @p config (exposed for tests and trace export).
/// @p aggressors, if non-null, receives the ground-truth aggressor keys
/// (bank << 32 | row) of all configured attacks — including, for replay
/// workloads, the oracle stored in the corpus footer. @p victims, if
/// non-null, receives the declared victim keys (logical, same scheme)
/// from the same sources: explicit attacks, fuzz-derived patterns and
/// the replay corpus footer.
std::unique_ptr<trace::TraceSource> build_workload(
    const SimConfig& config, util::Rng& rng,
    std::unordered_set<std::uint64_t>* aggressors = nullptr,
    std::unordered_set<std::uint64_t>* victims = nullptr);

/// Generates the workload @p config describes and records it — records
/// plus aggressor oracle — to @p path as a v2 corpus. The generation
/// consumes the same RNG fork run_custom_simulation would, so replaying
/// the corpus reproduces the generated run bit-identically. Returns the
/// corpus identity (footer CRC).
std::uint32_t record_corpus(const SimConfig& config, const std::string& path,
                            trace::CorpusWriter::Options options = {});

/// Reads TVP_SCALE from the environment: "full" selects the paper-scale
/// configuration (16 banks, more windows); anything else the scaled one.
bool full_scale_requested() noexcept;

/// Scales a SimConfig to paper scale (16 banks, 6 windows) when
/// @p full is true; used by the benches.
void apply_scale(SimConfig& config, bool full);

}  // namespace tvp::exp
