// Maps hw::Technique to a configured mitigation factory, keeping the
// simulation configuration and the hardware models consistent (same
// table sizes, thresholds and probabilities everywhere).
#pragma once

#include "tvp/hw/technique.hpp"
#include "tvp/mem/mitigation.hpp"

namespace tvp::exp {

/// Knobs shared by simulation and hardware models. Field meanings match
/// hw::TechniqueParams; extras configure the probabilistic behaviour.
struct TechniqueConfig {
  hw::TechniqueParams params;
  std::uint32_t flip_threshold = 139'000;
  unsigned pbase_exp = 23;  ///< TiVaPRoMi Pbase = 2^-pbase_exp
  double para_p = 0.001;
  double mrloc_p_min = 0.0003;
  double mrloc_p_max = 0.0015;
  unsigned prohit_insert_exp = 8;   ///< insert probability 2^-8
  unsigned prohit_promote_exp = 6;  ///< promote probability 2^-6
  /// CaPRoMi re-issue cooldown in intervals (0 = paper behaviour; see
  /// core::TiVaPRoMiConfig::capromi_reissue_cooldown).
  std::uint32_t capromi_cooldown = 0;

  /// Deterministic-counter trigger threshold (flip_threshold / 4).
  std::uint32_t counter_threshold() const noexcept { return flip_threshold / 4; }
};

/// Factory for @p technique configured per @p config.
mem::BankMitigationFactory make_factory(hw::Technique technique,
                                        const TechniqueConfig& config);

}  // namespace tvp::exp
