// Security analysis: the flooding experiment (Section III-A / IV) and
// the "Vulnerable to Attack" verdict of Table III.
//
// Two complementary instruments:
//
//  1. Empirical flood (measure_flood): instantiate the per-bank
//     mitigation directly, hammer one row at the maximum admissible rate
//     (165 ACTs per refresh interval), phase-aligned so the row's weight
//     starts at zero (the attacker "knows the weights mapping",
//     Section III-A), and record the number of activations until the
//     first mitigation response, across many trials.
//
//  2. Analytic hazard schedule (victim_save_schedule): the per-act
//     probability that the victim of this sustained attack gets saved,
//     derived from each technique's own decision rule (weights for
//     TiVaPRoMi, static p for PARA/MRLoc, a forward Markov model of
//     ProHit's insert/promote pipeline, step functions for TWiCe/CRA).
//     From the schedule we compute
//       * p_miss    — probability the victim survives unprotected
//                     through flip_threshold aggressor activations, and
//       * escalation — late/early hazard ratio: does the technique's
//                     response probability grow under sustained attack?
//
// The Table III verdict is then reproduced by the paper's own logic:
// a technique is vulnerable iff a campaign flipped a bit, or its hazard
// never escalates (the static-probability weakness [17] attributes to
// PARA and MRLoc), or its worst-case miss probability is non-negligible
// (LiPRoMi's slow linear ramp). Thresholds are documented constants.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/exp/registry.hpp"
#include "tvp/util/stats.hpp"

namespace tvp::exp {

/// Empirical flood measurement.
struct FloodMeasurement {
  std::string technique;
  util::RunningStat first_response_acts;  ///< over trials that responded
  util::PercentileTracker distribution;
  std::uint32_t trials = 0;
  std::uint32_t no_response = 0;  ///< trials with no response within the budget
  /// Fraction of trials whose first response came after half the flip
  /// threshold (the paper's 69 K safety line).
  double late_fraction = 0.0;
};

struct FloodOptions {
  std::uint32_t trials = 64;
  /// ACTs per refresh interval the attacker achieves (max 165 for DDR4).
  std::uint32_t acts_per_interval = 165;
  /// Stop a trial after this many activations (default: past the full
  /// flip threshold).
  std::uint64_t act_budget = 160'000;
  /// Phase-aligned (true: weight starts at 0 — worst case) or random
  /// phase (what a blind attacker gets).
  bool phase_aligned = true;
  std::uint64_t seed = 42;
};

FloodMeasurement measure_flood(hw::Technique technique,
                               const TechniqueConfig& config,
                               const FloodOptions& options = {});

/// Analytic per-act victim-save hazard under the sustained phase-aligned
/// attack; element n is the save probability at aggressor act n.
std::vector<double> victim_save_schedule(hw::Technique technique,
                                         const TechniqueConfig& config,
                                         std::uint64_t acts,
                                         std::uint32_t acts_per_interval = 165);

/// Verdict inputs + result for one technique.
struct SecurityVerdict {
  std::string technique;
  double p_miss = 0.0;       ///< survive flip_threshold acts unprotected
  double escalation = 0.0;   ///< late/early hazard ratio
  bool flips_observed = false;
  bool vulnerable = false;
  const char* reason = "";
};

/// Classification thresholds (documented in DESIGN.md §5).
inline constexpr double kMissProbThreshold = 3e-4;
inline constexpr double kEscalationThreshold = 1.5;

/// Computes the verdict for @p technique; @p flips_observed comes from
/// the attack campaigns (X1 bench).
SecurityVerdict security_verdict(hw::Technique technique,
                                 const TechniqueConfig& config,
                                 bool flips_observed);

}  // namespace tvp::exp
