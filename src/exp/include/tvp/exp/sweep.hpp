// Generic parameter sweeps over configuration keys.
//
// Everything a SimConfig can express is addressable by a config key
// (config_io.hpp), so a sweep is just (base config, key, values,
// techniques) — run the whole matrix and format it. The ablation
// benches cover the paper's specific sweeps; this engine is for users
// exploring their own questions (see examples/sweep_tool.cpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "tvp/exp/config_io.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/util/table.hpp"

namespace tvp::exp {

/// One (value, technique) cell of the sweep matrix.
struct SweepCell {
  std::string value;
  std::string technique;
  RunResult result;
};

struct SweepResult {
  std::string param_key;
  std::vector<std::string> values;
  std::vector<std::string> techniques;
  std::vector<SweepCell> cells;  ///< row-major: values x techniques
  double wall_seconds = 0.0;     ///< wall-clock of the whole matrix
  std::size_t jobs = 1;          ///< worker threads used (TVP_JOBS)

  const RunResult& at(std::size_t value_index, std::size_t technique_index) const {
    return cells.at(value_index * techniques.size() + technique_index).result;
  }
};

/// Cell-granular execution hooks, the checkpoint/resume seam the
/// campaign service (svc) builds on. Each cell is deterministic in
/// (config, seed) and independent of every other cell, so a matrix
/// assembled from preloaded (journal-replayed) cells plus freshly
/// computed ones is bit-identical to an uninterrupted run.
struct SweepHooks {
  /// Cells already computed, keyed by row-major index; copied into the
  /// result instead of re-running. Entries whose (value, technique)
  /// disagree with the requested grid throw std::invalid_argument — a
  /// stale journal must not silently corrupt a matrix.
  const std::map<std::size_t, SweepCell>* preloaded = nullptr;
  /// Called as each freshly computed cell completes (not for preloaded
  /// cells). Invoked from worker threads — the callback must be
  /// thread-safe; cells may complete in any order.
  std::function<void(std::size_t index, const SweepCell& cell)> on_cell;
  /// When it reads true, workers stop claiming new cells; in-flight
  /// cells still finish (and reach on_cell). Skipped cells are left
  /// with an empty technique string in the returned matrix.
  const std::atomic<bool>* stop = nullptr;
  /// Worker threads for the grid; 0 selects util::job_count().
  std::size_t jobs = 0;
};

/// Runs the matrix: for each value, @p base with `param_key = value`
/// applied, for each technique. @p param_key must be a recognised config
/// key (config_io); values are config-file value strings. Throws on
/// unknown keys/values; deterministic in the base config's seed. The
/// grid runs on util::job_count() worker threads (TVP_JOBS env var) into
/// pre-sized cells, so the matrix is bit-identical for every job count.
SweepResult run_param_sweep(const util::KeyValueFile& base,
                            const std::string& param_key,
                            const std::vector<std::string>& values,
                            const std::vector<hw::Technique>& techniques);

/// Same, with checkpoint/resume hooks (see SweepHooks).
SweepResult run_param_sweep(const util::KeyValueFile& base,
                            const std::string& param_key,
                            const std::vector<std::string>& values,
                            const std::vector<hw::Technique>& techniques,
                            const SweepHooks& hooks);

/// Formats the overhead matrix (values down, techniques across).
util::TextTable sweep_overhead_table(const SweepResult& sweep);

/// CSV export: param,value,technique,overhead_pct,fpr_pct,flips,bytes.
std::string sweep_to_csv(const SweepResult& sweep);

}  // namespace tvp::exp
