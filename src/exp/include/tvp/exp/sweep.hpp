// Generic parameter sweeps over configuration keys.
//
// Everything a SimConfig can express is addressable by a config key
// (config_io.hpp), so a sweep is just (base config, key, values,
// techniques) — run the whole matrix and format it. The ablation
// benches cover the paper's specific sweeps; this engine is for users
// exploring their own questions (see examples/sweep_tool.cpp).
#pragma once

#include <string>
#include <vector>

#include "tvp/exp/config_io.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/util/table.hpp"

namespace tvp::exp {

/// One (value, technique) cell of the sweep matrix.
struct SweepCell {
  std::string value;
  std::string technique;
  RunResult result;
};

struct SweepResult {
  std::string param_key;
  std::vector<std::string> values;
  std::vector<std::string> techniques;
  std::vector<SweepCell> cells;  ///< row-major: values x techniques
  double wall_seconds = 0.0;     ///< wall-clock of the whole matrix
  std::size_t jobs = 1;          ///< worker threads used (TVP_JOBS)

  const RunResult& at(std::size_t value_index, std::size_t technique_index) const {
    return cells.at(value_index * techniques.size() + technique_index).result;
  }
};

/// Runs the matrix: for each value, @p base with `param_key = value`
/// applied, for each technique. @p param_key must be a recognised config
/// key (config_io); values are config-file value strings. Throws on
/// unknown keys/values; deterministic in the base config's seed. The
/// grid runs on util::job_count() worker threads (TVP_JOBS env var) into
/// pre-sized cells, so the matrix is bit-identical for every job count.
SweepResult run_param_sweep(const util::KeyValueFile& base,
                            const std::string& param_key,
                            const std::vector<std::string>& values,
                            const std::vector<hw::Technique>& techniques);

/// Formats the overhead matrix (values down, techniques across).
util::TextTable sweep_overhead_table(const SweepResult& sweep);

/// CSV export: param,value,technique,overhead_pct,fpr_pct,flips,bytes.
std::string sweep_to_csv(const SweepResult& sweep);

}  // namespace tvp::exp
