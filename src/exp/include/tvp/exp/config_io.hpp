// Experiment configuration files: a SimConfig (system, workload,
// technique knobs, attacks) described as a flat key/value file, so whole
// experiments are shareable artifacts (see configs/ for samples and the
// key reference).
#pragma once

#include <string>

#include "tvp/exp/runner.hpp"
#include "tvp/util/config.hpp"

namespace tvp::exp {

/// Applies @p file onto @p config. Unknown keys throw
/// std::invalid_argument (typos must not silently change experiments);
/// recognised keys are documented in configs/README (and below in the
/// implementation). finalize() is called before returning.
void apply_config(SimConfig& config, const util::KeyValueFile& file);

/// Loads a SimConfig from @p path on top of the defaults.
SimConfig load_sim_config(const std::string& path);

/// Serialises the scalar parts of @p config (geometry/timing/workload/
/// technique; attacks included) to the file format.
std::string to_config_text(const SimConfig& config);

}  // namespace tvp::exp
