// The TRR-evasion fuzz campaign: sweep PatternFuzzer seeds against a
// panel of defences — the unprotected baseline, an in-DRAM TRR sampler,
// and every TiVaPRoMi variant at several P_base points — and report the
// evasion rate of the fuzzed pattern space per defence.
//
// Everything here is deterministic in (options, base.seed): the cell
// grid runs into pre-sized slots (bit-identical for every TVP_JOBS
// value), the report carries no wall-clock fields, and recording the
// per-seed corpora and replaying them yields byte-identical verdicts
// and reports (the fuzz corpus round-trip test holds this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tvp/exp/runner.hpp"

namespace tvp::exp {

/// Campaign shape. `base` must use workload.model = kFuzz; its
/// fuzz.seed is the first swept seed and base.seed (the simulation
/// seed: benign traffic, engine, controller) stays fixed across cells
/// so the sweep isolates the fuzzer's pattern space.
struct FuzzCampaignOptions {
  SimConfig base;
  std::uint32_t fuzz_seeds = 8;  ///< seeds fuzz.seed .. fuzz.seed + n - 1
  /// P_base points (P = 2^-n) for the TiVaPRoMi variants; the paper's
  /// operating point is 23, smaller exponents intervene more often.
  std::vector<unsigned> pbase_exps = {17, 20, 23};
  bool include_none = true;  ///< unprotected potency baseline
  bool include_trr = true;   ///< in-DRAM sampler baseline
  /// When non-empty: record each seed's workload to
  /// `<trace_dir>/fuzz_<seed>.tvpc` (with partition index) and run
  /// every defence cell as a replay of that corpus instead of
  /// regenerating — verdicts are bit-identical either way.
  std::string trace_dir;
};

/// One (fuzzer seed, defence) cell of the campaign grid.
struct FuzzCellResult {
  std::uint64_t fuzz_seed = 0;
  std::string defence;
  std::uint64_t flips = 0;
  std::uint64_t victim_flips = 0;
  std::uint64_t peak_disturbance = 0;
  double overhead_pct = 0.0;
  double fpr_pct = 0.0;
  /// The attack got at least one declared-victim flip past the defence.
  bool evaded() const noexcept { return victim_flips > 0; }
};

/// Per-defence aggregate over the swept seeds.
struct FuzzDefenceSummary {
  std::string defence;
  std::uint32_t seeds = 0;
  std::uint32_t evaded = 0;         ///< cells with >= 1 victim flip
  std::uint32_t evaded_potent = 0;  ///< ... restricted to potent seeds
  std::uint64_t total_flips = 0;
  std::uint64_t total_victim_flips = 0;
  double mean_overhead_pct = 0.0;
  double mean_fpr_pct = 0.0;
  /// Evasion rate over the potent seeds (those whose pattern flips the
  /// unprotected baseline); over all seeds when no baseline ran.
  double evasion_rate(std::uint32_t potent) const noexcept {
    if (potent > 0) return static_cast<double>(evaded_potent) / potent;
    return seeds == 0 ? 0.0 : static_cast<double>(evaded) / seeds;
  }
};

struct FuzzCampaignResult {
  /// Cell grid in (seed-major, defence-minor) order.
  std::vector<FuzzCellResult> cells;
  std::vector<FuzzDefenceSummary> defences;
  /// Seeds whose pattern flips a victim with no defence installed
  /// (0 when include_none is false — evasion rates then cover all seeds).
  std::uint32_t potent_seeds = 0;
};

/// Runs the full grid (TVP_JOBS-parallel, bit-identical for any job
/// count). Throws std::invalid_argument on an inconsistent options set
/// (non-fuzz base workload, zero seeds, no defences, no pbase points).
FuzzCampaignResult run_fuzz_campaign(const FuzzCampaignOptions& options);

/// Serialises the campaign to JSON. Deterministic: the text is a pure
/// function of (options, result) — no timestamps, no wall-clock.
std::string fuzz_report_json(const FuzzCampaignOptions& options,
                             const FuzzCampaignResult& result);

}  // namespace tvp::exp
