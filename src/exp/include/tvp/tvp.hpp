// Umbrella header: the library's public API in one include.
//
//   #include "tvp/tvp.hpp"
//   // link against tvp::exp (which pulls in every subsystem)
//
// Fine-grained headers remain available under tvp/<module>/ for users
// who want a single subsystem (e.g. only the DRAM models).
#pragma once

// Utilities
#include "tvp/util/cli.hpp"
#include "tvp/util/csv.hpp"
#include "tvp/util/fixed_prob.hpp"
#include "tvp/util/histogram.hpp"
#include "tvp/util/json.hpp"
#include "tvp/util/rng.hpp"
#include "tvp/util/stats.hpp"
#include "tvp/util/table.hpp"

// DRAM substrate
#include "tvp/dram/disturbance.hpp"
#include "tvp/dram/geometry.hpp"
#include "tvp/dram/protocol.hpp"
#include "tvp/dram/refresh.hpp"
#include "tvp/dram/remap.hpp"
#include "tvp/dram/timing.hpp"

// Traces and workloads
#include "tvp/trace/attack.hpp"
#include "tvp/trace/io.hpp"
#include "tvp/trace/source.hpp"
#include "tvp/trace/stats.hpp"
#include "tvp/trace/synthetic.hpp"

// Cache-filtered CPU front-end (gem5 stand-in)
#include "tvp/cpu/cache.hpp"
#include "tvp/cpu/core.hpp"
#include "tvp/cpu/frontend.hpp"

// Memory controllers
#include "tvp/mem/controller.hpp"
#include "tvp/mem/energy.hpp"
#include "tvp/mem/mitigation.hpp"
#include "tvp/mem/scheduler.hpp"

// Mitigation techniques: paper baselines + extensions
#include "tvp/mitigation/cat.hpp"
#include "tvp/mitigation/cra.hpp"
#include "tvp/mitigation/graphene.hpp"
#include "tvp/mitigation/mrloc.hpp"
#include "tvp/mitigation/para.hpp"
#include "tvp/mitigation/prac.hpp"
#include "tvp/mitigation/prohit.hpp"
#include "tvp/mitigation/trr.hpp"
#include "tvp/mitigation/twice.hpp"

// TiVaPRoMi (the paper's contribution)
#include "tvp/core/counter_table.hpp"
#include "tvp/core/history_table.hpp"
#include "tvp/core/tivapromi.hpp"
#include "tvp/core/weighting.hpp"

// Hardware models
#include "tvp/hw/area_model.hpp"
#include "tvp/hw/cycle_model.hpp"
#include "tvp/hw/technique.hpp"

// Experiment harness
#include "tvp/exp/registry.hpp"
#include "tvp/exp/report.hpp"
#include "tvp/exp/runner.hpp"
#include "tvp/exp/verdict.hpp"
