#include "tvp/exp/verdict.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tvp/core/weighting.hpp"
#include "tvp/mem/mitigation.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::exp {

FloodMeasurement measure_flood(hw::Technique technique,
                               const TechniqueConfig& config,
                               const FloodOptions& options) {
  if (options.trials == 0 || options.acts_per_interval == 0)
    throw std::invalid_argument("measure_flood: zero trials or rate");
  const auto factory = make_factory(technique, config);
  const std::uint32_t ref_int = config.params.refresh_intervals;
  const dram::RowId rpi = config.params.rows_per_bank / ref_int;

  FloodMeasurement m;
  m.technique = std::string(hw::to_string(technique));
  m.trials = options.trials;
  std::uint32_t late = 0;

  util::Rng seed_rng(options.seed);
  for (std::uint32_t trial = 0; trial < options.trials; ++trial) {
    util::Rng rng = seed_rng.fork();
    auto bank = factory(0, rng.fork());

    // Phase-aligned: hammer a row of slot 1, starting right after it was
    // refreshed (weight 0 — the attacker knows the weights mapping).
    // Random phase: a blind attacker starts anywhere in the window.
    const dram::RowId row = rpi;  // slot f_r = 1
    std::uint32_t interval =
        options.phase_aligned
            ? 1u
            : static_cast<std::uint32_t>(rng.below(ref_int));

    mem::ActionBuffer actions;
    std::uint64_t acts = 0;
    std::uint64_t first_response = 0;

    while (acts < options.act_budget && first_response == 0) {
      mem::MitigationContext ctx;
      ctx.interval_in_window = interval;
      ctx.global_interval = interval;
      ctx.window_start = interval == 0;

      actions.clear();
      bank->on_refresh(ctx, actions);
      if (!actions.empty() && acts > 0) {
        first_response = acts;
        break;
      }
      for (std::uint32_t k = 0; k < options.acts_per_interval; ++k) {
        actions.clear();
        bank->on_activate(row, ctx, actions);
        ++acts;
        if (!actions.empty()) {
          first_response = acts;
          break;
        }
      }
      interval = (interval + 1) % ref_int;
    }

    if (first_response == 0) {
      ++m.no_response;
      ++late;
    } else {
      m.first_response_acts.add(static_cast<double>(first_response));
      m.distribution.add(static_cast<double>(first_response));
      if (first_response > config.flip_threshold / 2) ++late;
    }
  }
  m.late_fraction = static_cast<double>(late) / options.trials;
  return m;
}

namespace {

/// Forward Markov model of ProHit's insert -> promote -> refresh
/// pipeline for a single victim under a sustained flood (no competing
/// traffic). States: untracked, cold, hot positions (0 = top).
std::vector<double> prohit_schedule(const TechniqueConfig& config,
                                    std::uint64_t acts,
                                    std::uint32_t acts_per_interval) {
  const double q_insert = std::ldexp(1.0, -static_cast<int>(config.prohit_insert_exp));
  const double q_promote =
      std::ldexp(1.0, -static_cast<int>(config.prohit_promote_exp));
  const std::size_t hot = config.params.prohit_hot;

  // State vector kept *conditional on not yet saved* (sums to 1), which
  // stays numerically stable over arbitrarily long schedules.
  double untracked = 1.0, cold = 0.0;
  std::vector<double> hot_pos(hot, 0.0);  // hot_pos[0] = top

  std::vector<double> schedule(acts, 0.0);
  for (std::uint64_t n = 0; n < acts; ++n) {
    // Per-act transitions (victim observed on every aggressor ACT).
    for (std::size_t j = 0; j + 1 < hot; ++j) {
      const double up = hot_pos[j + 1] * q_promote;
      hot_pos[j] += up;
      hot_pos[j + 1] -= up;
    }
    const double to_hot = cold * q_promote;
    cold -= to_hot;
    hot_pos[hot - 1] += to_hot;
    const double to_cold = untracked * q_insert;
    untracked -= to_cold;
    cold += to_cold;

    // Interval boundary: the hot-table top is refreshed (saved).
    if ((n + 1) % acts_per_interval == 0) {
      const double hazard = hot_pos[0];
      schedule[n] = hazard;
      if (hazard < 1.0) {
        hot_pos[0] = 0.0;
        const double renorm = 1.0 / (1.0 - hazard);
        untracked *= renorm;
        cold *= renorm;
        for (auto& h : hot_pos) h *= renorm;
      }
    }
  }
  return schedule;
}

}  // namespace

std::vector<double> victim_save_schedule(hw::Technique technique,
                                         const TechniqueConfig& config,
                                         std::uint64_t acts,
                                         std::uint32_t acts_per_interval) {
  std::vector<double> schedule(acts, 0.0);
  const double pbase = std::ldexp(1.0, -static_cast<int>(config.pbase_exp));
  const std::uint32_t ref_int = config.params.refresh_intervals;

  switch (technique) {
    case hw::Technique::kPara:
      // Victim-specific: trigger w.p. p, right side w.p. 1/2.
      std::fill(schedule.begin(), schedule.end(), config.para_p / 2.0);
      break;
    case hw::Technique::kMrLoc:
      // Sustained attack keeps the victim at maximum queue recency.
      std::fill(schedule.begin(), schedule.end(), config.mrloc_p_max);
      break;
    case hw::Technique::kProHit:
      return prohit_schedule(config, acts, acts_per_interval);
    case hw::Technique::kTwice:
    case hw::Technique::kCra: {
      // Deterministic: neighbours refreshed exactly at the counter
      // threshold (TWiCe never prunes a 165-per-interval hammer).
      const std::uint64_t at = config.counter_threshold();
      for (std::uint64_t n = at; n < acts; n += at) schedule[n - 1] = 1.0;
      break;
    }
    case hw::Technique::kLiPRoMi:
    case hw::Technique::kLoPRoMi:
    case hw::Technique::kLoLiPRoMi:
      for (std::uint64_t n = 0; n < acts; ++n) {
        const auto k = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(n / acts_per_interval, ref_int - 1));
        const std::uint32_t w = technique == hw::Technique::kLiPRoMi
                                    ? k
                                    : core::log_weight(k);
        schedule[n] = std::min(1.0, w * pbase);
      }
      break;
    case hw::Technique::kCaPRoMi:
      // Decisions only at interval boundaries: p = cnt * w_log * Pbase.
      for (std::uint64_t n = acts_per_interval; n <= acts;
           n += acts_per_interval) {
        const auto k = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(n / acts_per_interval, ref_int - 1));
        schedule[n - 1] =
            std::min(1.0, double(acts_per_interval) * core::log_weight(k) * pbase);
      }
      break;
  }
  return schedule;
}

SecurityVerdict security_verdict(hw::Technique technique,
                                 const TechniqueConfig& config,
                                 bool flips_observed) {
  SecurityVerdict v;
  v.technique = std::string(hw::to_string(technique));
  v.flips_observed = flips_observed;

  const std::uint64_t horizon = config.flip_threshold;
  const auto schedule = victim_save_schedule(technique, config, horizon);

  double log_miss = 0.0;
  for (const double h : schedule)
    log_miss += h >= 1.0 ? -1e9 : std::log1p(-h);
  v.p_miss = std::exp(log_miss);

  // Hazard escalation: average save probability late in the attack
  // versus at its very start (before any tracking state warms up). A
  // static-probability technique stays flat; everything that accumulates
  // evidence about the aggressor escalates.
  const std::uint64_t early_end = std::min<std::uint64_t>(330, horizon / 8);
  const std::uint64_t late_begin = horizon / 2;
  double early = 0.0, late_sum = 0.0;
  for (std::uint64_t n = 0; n < early_end; ++n) early += schedule[n];
  for (std::uint64_t n = late_begin; n < horizon; ++n) late_sum += schedule[n];
  const double early_avg = early / static_cast<double>(early_end);
  const double late_avg =
      late_sum / static_cast<double>(horizon - late_begin);
  v.escalation = early_avg > 0.0 ? late_avg / early_avg
                                 : (late_avg > 0.0 ? 1e9 : 1.0);

  if (flips_observed) {
    v.vulnerable = true;
    v.reason = "bit flips observed in attack campaigns";
  } else if (v.escalation < kEscalationThreshold) {
    v.vulnerable = true;
    v.reason = "static probability: response never escalates under attack";
  } else if (v.p_miss > kMissProbThreshold) {
    v.vulnerable = true;
    v.reason = "non-negligible worst-case miss probability (slow ramp)";
  } else {
    v.vulnerable = false;
    v.reason = "escalating response, negligible miss probability";
  }
  return v;
}

}  // namespace tvp::exp
