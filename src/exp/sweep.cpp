#include "tvp/exp/sweep.hpp"

#include <chrono>
#include <stdexcept>

#include "tvp/util/parallel.hpp"

namespace tvp::exp {

SweepResult run_param_sweep(const util::KeyValueFile& base,
                            const std::string& param_key,
                            const std::vector<std::string>& values,
                            const std::vector<hw::Technique>& techniques) {
  return run_param_sweep(base, param_key, values, techniques, SweepHooks{});
}

SweepResult run_param_sweep(const util::KeyValueFile& base,
                            const std::string& param_key,
                            const std::vector<std::string>& values,
                            const std::vector<hw::Technique>& techniques,
                            const SweepHooks& hooks) {
  if (values.empty() || techniques.empty())
    throw std::invalid_argument("run_param_sweep: empty values or techniques");
  const auto t0 = std::chrono::steady_clock::now();
  SweepResult sweep;
  sweep.param_key = param_key;
  sweep.values = values;
  sweep.jobs = hooks.jobs ? hooks.jobs : util::job_count();
  for (const auto t : techniques)
    sweep.techniques.emplace_back(hw::to_string(t));

  // Parse and validate every value up front, so config errors surface
  // before any simulation work starts (same behaviour as the old
  // sequential loop, which threw before running the first cell).
  std::vector<SimConfig> configs;
  configs.reserve(values.size());
  for (const auto& value : values) {
    util::KeyValueFile file = base;
    file.set(param_key, value);
    SimConfig config;
    apply_config(config, file);  // throws on unknown key
    configs.push_back(std::move(config));
  }

  // Seed the matrix with checkpointed cells; a cell whose identity does
  // not match the grid means the journal belongs to a different sweep.
  sweep.cells.resize(values.size() * techniques.size());
  std::vector<char> done(sweep.cells.size(), 0);
  if (hooks.preloaded) {
    for (const auto& [i, cell] : *hooks.preloaded) {
      if (i >= sweep.cells.size())
        throw std::invalid_argument("run_param_sweep: preloaded index out of range");
      const std::size_t v = i / techniques.size();
      const std::size_t t = i % techniques.size();
      if (cell.value != values[v] ||
          cell.technique != hw::to_string(techniques[t]))
        throw std::invalid_argument(
            "run_param_sweep: preloaded cell does not match the grid");
      sweep.cells[i] = cell;
      done[i] = 1;
    }
  }

  // Run the remaining (value x technique) grid in parallel into
  // pre-sized, row-major slots; each cell's run is independent (private
  // SimConfig, private Rng), so the matrix is bit-identical for every
  // job count — and for every preloaded/recomputed split.
  util::parallel_for_indexed(
      sweep.cells.size(), sweep.jobs, [&](std::size_t i) {
        if (done[i]) return;
        if (hooks.stop && hooks.stop->load(std::memory_order_relaxed)) return;
        const std::size_t v = i / techniques.size();
        const std::size_t t = i % techniques.size();
        SweepCell& cell = sweep.cells[i];
        cell.value = values[v];
        cell.technique = std::string(hw::to_string(techniques[t]));
        cell.result = run_simulation(techniques[t], configs[v]);
        if (hooks.on_cell) hooks.on_cell(i, cell);
      });
  sweep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return sweep;
}

util::TextTable sweep_overhead_table(const SweepResult& sweep) {
  std::vector<std::string> header = {sweep.param_key};
  for (const auto& t : sweep.techniques) header.push_back(t);
  util::TextTable table(header);
  table.set_title("activation overhead [%] (" + sweep.param_key + " sweep)");
  for (std::size_t v = 0; v < sweep.values.size(); ++v) {
    std::vector<std::string> row = {sweep.values[v]};
    for (std::size_t t = 0; t < sweep.techniques.size(); ++t)
      row.push_back(util::strfmt("%.5f", sweep.at(v, t).overhead_pct()));
    table.add_row(row);
  }
  return table;
}

std::string sweep_to_csv(const SweepResult& sweep) {
  std::string out =
      "param,value,technique,overhead_pct,fpr_pct,flips,table_bytes_per_bank\n";
  for (const auto& cell : sweep.cells) {
    out += util::strfmt("%s,%s,%s,%.6f,%.6f,%llu,%.1f\n",
                        sweep.param_key.c_str(), cell.value.c_str(),
                        cell.technique.c_str(), cell.result.overhead_pct(),
                        cell.result.fpr_pct(),
                        static_cast<unsigned long long>(cell.result.flips),
                        cell.result.state_bytes_per_bank);
  }
  return out;
}

}  // namespace tvp::exp
