#include "tvp/exp/config_io.hpp"

#include <set>
#include <stdexcept>

#include "tvp/util/table.hpp"

namespace tvp::exp {

namespace {

const std::set<std::string>& known_keys() {
  static const std::set<std::string> keys = {
      "geometry.banks", "geometry.rows_per_bank", "timing.preset", "windows",
      "seed", "refresh.policy", "remap.rows", "remap.swaps", "act_n.radius",
      "disturbance.flip_threshold", "disturbance.blast_radius",
      "disturbance.distance2_weight_q8", "disturbance.variation_pct",
      "workload.benign_rate",
      "workload.model", "workload.trace",
      "fuzz.seed", "fuzz.patterns", "fuzz.rate", "fuzz.pairs_min",
      "fuzz.pairs_max", "fuzz.period_exp_min", "fuzz.period_exp_max",
      "fuzz.amplitude_max", "fuzz.decoys_max", "fuzz.half_double",
      "technique.pbase_exp", "technique.history_entries",
      "technique.counter_entries", "technique.para_p", "technique.mrloc_p_min",
      "technique.mrloc_p_max", "technique.twice_entries",
      "technique.capromi_cooldown", "attack.count",
  };
  return keys;
}

bool is_attack_key(const std::string& key) {
  return key.rfind("attack.", 0) == 0 && key != "attack.count";
}

dram::RefreshPolicy parse_policy(const std::string& name) {
  if (name == "seq" || name == "neighbor") return dram::RefreshPolicy::kNeighborSequential;
  if (name == "remap") return dram::RefreshPolicy::kNeighborRemapped;
  if (name == "random") return dram::RefreshPolicy::kRandom;
  if (name == "mask") return dram::RefreshPolicy::kCounterMask;
  throw std::invalid_argument("config: unknown refresh.policy '" + name + "'");
}

BenignModel parse_model(const std::string& name) {
  if (name == "mixed") return BenignModel::kMixedSynthetic;
  if (name == "cache") return BenignModel::kCacheFrontend;
  if (name == "uniform") return BenignModel::kUniformRandom;
  if (name == "replay") return BenignModel::kReplay;
  if (name == "fuzz") return BenignModel::kFuzz;
  throw std::invalid_argument("config: unknown workload.model '" + name + "'");
}

trace::AttackPattern parse_pattern(const std::string& name) {
  if (name == "single") return trace::AttackPattern::kSingleSided;
  if (name == "double") return trace::AttackPattern::kDoubleSided;
  if (name == "multi") return trace::AttackPattern::kMultiAggressor;
  if (name == "flood") return trace::AttackPattern::kFlood;
  if (name == "many-sided") return trace::AttackPattern::kManySided;
  if (name == "half-double") return trace::AttackPattern::kHalfDouble;
  throw std::invalid_argument("config: unknown attack pattern '" + name + "'");
}

const char* pattern_name(trace::AttackPattern pattern) {
  switch (pattern) {
    case trace::AttackPattern::kSingleSided: return "single";
    case trace::AttackPattern::kDoubleSided: return "double";
    case trace::AttackPattern::kMultiAggressor: return "multi";
    case trace::AttackPattern::kFlood: return "flood";
    case trace::AttackPattern::kManySided: return "many-sided";
    case trace::AttackPattern::kHalfDouble: return "half-double";
    // kFuzzed never round-trips through attack.<i>.* (its schedule is
    // derived, not serialised) — fuzz workloads use the fuzz.* keys.
    case trace::AttackPattern::kFuzzed: return "fuzzed";
  }
  return "double";
}

}  // namespace

void apply_config(SimConfig& config, const util::KeyValueFile& file) {
  for (const auto& key : file.keys()) {
    if (known_keys().count(key) == 0 && !is_attack_key(key))
      throw std::invalid_argument("config: unknown key '" + key + "'");
  }

  config.geometry.banks_per_rank = static_cast<std::uint32_t>(
      file.get_int("geometry.banks", config.geometry.banks_per_rank));
  config.geometry.rows_per_bank = static_cast<std::uint32_t>(
      file.get_int("geometry.rows_per_bank", config.geometry.rows_per_bank));

  const std::string preset = file.get("timing.preset", "ddr4");
  if (preset == "ddr4")
    config.timing = dram::ddr4_timing();
  else if (preset == "ddr3")
    config.timing = dram::ddr3_timing();
  else if (preset == "ddr5")
    config.timing = dram::ddr5_timing();
  else
    throw std::invalid_argument("config: unknown timing.preset '" + preset + "'");

  config.windows =
      static_cast<std::uint32_t>(file.get_int("windows", config.windows));
  config.seed = static_cast<std::uint64_t>(file.get_int("seed",
                                                        static_cast<std::int64_t>(config.seed)));
  if (file.has("refresh.policy"))
    config.refresh_policy = parse_policy(file.get("refresh.policy", ""));
  config.remap_rows = file.get_bool("remap.rows", config.remap_rows);
  config.remap_swaps = static_cast<std::size_t>(
      file.get_int("remap.swaps", static_cast<std::int64_t>(config.remap_swaps)));
  config.act_n_radius = static_cast<std::uint32_t>(
      file.get_int("act_n.radius", config.act_n_radius));

  config.disturbance.flip_threshold = static_cast<std::uint32_t>(
      file.get_int("disturbance.flip_threshold", config.disturbance.flip_threshold));
  config.technique.flip_threshold = config.disturbance.flip_threshold;
  config.disturbance.blast_radius = static_cast<std::uint32_t>(
      file.get_int("disturbance.blast_radius", config.disturbance.blast_radius));
  config.disturbance.distance2_weight_q8 = static_cast<std::uint32_t>(
      file.get_int("disturbance.distance2_weight_q8",
                   config.disturbance.distance2_weight_q8));
  config.disturbance.variation_pct = static_cast<std::uint32_t>(
      file.get_int("disturbance.variation_pct",
                   config.disturbance.variation_pct));

  config.workload.benign_acts_per_interval_per_bank = file.get_double(
      "workload.benign_rate", config.workload.benign_acts_per_interval_per_bank);
  if (file.has("workload.model"))
    config.workload.model = parse_model(file.get("workload.model", ""));
  config.workload.trace_path =
      file.get("workload.trace", config.workload.trace_path);

  // Fuzzed-attack layer (workload.model = fuzz). fuzz.seed is an
  // ordinary config key, so run_param_sweep over "fuzz.seed" sweeps
  // fuzzer seeds like any other parameter.
  auto& fuzz = config.workload.fuzz;
  fuzz.seed = static_cast<std::uint64_t>(
      file.get_int("fuzz.seed", static_cast<std::int64_t>(fuzz.seed)));
  fuzz.patterns =
      static_cast<std::uint32_t>(file.get_int("fuzz.patterns", fuzz.patterns));
  fuzz.acts_per_interval = file.get_double("fuzz.rate", fuzz.acts_per_interval);
  fuzz.params.pairs_min = static_cast<std::uint32_t>(
      file.get_int("fuzz.pairs_min", fuzz.params.pairs_min));
  fuzz.params.pairs_max = static_cast<std::uint32_t>(
      file.get_int("fuzz.pairs_max", fuzz.params.pairs_max));
  fuzz.params.period_exp_min = static_cast<std::uint32_t>(
      file.get_int("fuzz.period_exp_min", fuzz.params.period_exp_min));
  fuzz.params.period_exp_max = static_cast<std::uint32_t>(
      file.get_int("fuzz.period_exp_max", fuzz.params.period_exp_max));
  fuzz.params.amplitude_max = static_cast<std::uint32_t>(
      file.get_int("fuzz.amplitude_max", fuzz.params.amplitude_max));
  fuzz.params.decoys_max = static_cast<std::uint32_t>(
      file.get_int("fuzz.decoys_max", fuzz.params.decoys_max));
  fuzz.params.half_double =
      file.get_bool("fuzz.half_double", fuzz.params.half_double);

  config.technique.pbase_exp = static_cast<unsigned>(
      file.get_int("technique.pbase_exp", config.technique.pbase_exp));
  config.technique.params.history_entries = static_cast<std::uint32_t>(
      file.get_int("technique.history_entries",
                   config.technique.params.history_entries));
  config.technique.params.counter_entries = static_cast<std::uint32_t>(
      file.get_int("technique.counter_entries",
                   config.technique.params.counter_entries));
  config.technique.params.twice_entries = static_cast<std::uint32_t>(
      file.get_int("technique.twice_entries",
                   config.technique.params.twice_entries));
  config.technique.para_p =
      file.get_double("technique.para_p", config.technique.para_p);
  config.technique.mrloc_p_min =
      file.get_double("technique.mrloc_p_min", config.technique.mrloc_p_min);
  config.technique.mrloc_p_max =
      file.get_double("technique.mrloc_p_max", config.technique.mrloc_p_max);
  config.technique.capromi_cooldown = static_cast<std::uint32_t>(
      file.get_int("technique.capromi_cooldown",
                   config.technique.capromi_cooldown));

  // Attacks: attack.count = N, then attack.<i>.{pattern,bank,victims,
  // rate,start_frac,sides,far_per_near}. `victims` is either an explicit
  // comma-separated row list or a count prefixed with '~' (random,
  // well-separated, derived from the seed).
  config.workload.attacks.clear();
  const auto count = file.get_int("attack.count", 0);
  util::Rng rng(config.seed ^ 0xC0F16ull);
  for (std::int64_t i = 0; i < count; ++i) {
    const std::string prefix = "attack." + std::to_string(i) + ".";
    trace::AttackConfig attack;
    attack.rows_per_bank = config.geometry.rows_per_bank;
    attack.bank = static_cast<dram::BankId>(file.get_int(prefix + "bank", 0));
    attack.pattern = parse_pattern(file.get(prefix + "pattern", "double"));
    attack.sides =
        static_cast<std::uint32_t>(file.get_int(prefix + "sides", attack.sides));
    attack.far_per_near = static_cast<std::uint32_t>(
        file.get_int(prefix + "far_per_near", attack.far_per_near));

    const std::string victims = file.get(prefix + "victims", "~1");
    if (!victims.empty() && victims[0] == '~') {
      const auto n = std::stoul(victims.substr(1));
      auto generated = trace::make_multi_aggressor_attack(
          attack.bank, config.geometry.rows_per_bank, n, rng);
      attack.victims = generated.victims;
    } else {
      std::size_t pos = 0;
      while (pos < victims.size()) {
        const auto comma = victims.find(',', pos);
        const std::string token = victims.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        attack.victims.push_back(static_cast<dram::RowId>(std::stoul(token)));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    }
    const double rate = file.get_double(prefix + "rate", 24.0);
    if (rate <= 0) throw std::invalid_argument("config: attack rate must be > 0");
    attack.interarrival_ps =
        static_cast<std::uint64_t>(config.timing.t_refi_ps() / rate);
    const double start_frac = file.get_double(prefix + "start_frac", 0.0);
    attack.start_ps = static_cast<std::uint64_t>(
        start_frac * static_cast<double>(config.timing.t_refw_ps));
    attack.source_id = static_cast<trace::SourceId>(200 + i);
    config.workload.attacks.push_back(std::move(attack));
  }

  config.finalize();
}

SimConfig load_sim_config(const std::string& path) {
  SimConfig config;
  apply_config(config, util::KeyValueFile::load(path));
  return config;
}

std::string to_config_text(const SimConfig& config) {
  util::KeyValueFile file;
  file.set("geometry.banks", std::to_string(config.geometry.banks_per_rank));
  file.set("geometry.rows_per_bank",
           std::to_string(config.geometry.rows_per_bank));
  file.set("windows", std::to_string(config.windows));
  file.set("seed", std::to_string(config.seed));
  file.set("refresh.policy", [&] {
    switch (config.refresh_policy) {
      case dram::RefreshPolicy::kNeighborSequential: return "seq";
      case dram::RefreshPolicy::kNeighborRemapped: return "remap";
      case dram::RefreshPolicy::kRandom: return "random";
      case dram::RefreshPolicy::kCounterMask: return "mask";
    }
    return "seq";
  }());
  file.set("remap.rows", config.remap_rows ? "true" : "false");
  file.set("remap.swaps", std::to_string(config.remap_swaps));
  file.set("act_n.radius", std::to_string(config.act_n_radius));
  file.set("disturbance.flip_threshold",
           std::to_string(config.disturbance.flip_threshold));
  file.set("disturbance.blast_radius",
           std::to_string(config.disturbance.blast_radius));
  file.set("disturbance.distance2_weight_q8",
           std::to_string(config.disturbance.distance2_weight_q8));
  file.set("disturbance.variation_pct",
           std::to_string(config.disturbance.variation_pct));
  file.set("workload.benign_rate",
           util::strfmt("%g", config.workload.benign_acts_per_interval_per_bank));
  file.set("workload.model", [&] {
    switch (config.workload.model) {
      case BenignModel::kMixedSynthetic: return "mixed";
      case BenignModel::kCacheFrontend: return "cache";
      case BenignModel::kUniformRandom: return "uniform";
      case BenignModel::kReplay: return "replay";
      case BenignModel::kFuzz: return "fuzz";
    }
    return "mixed";
  }());
  if (!config.workload.trace_path.empty())
    file.set("workload.trace", config.workload.trace_path);
  if (config.workload.model == BenignModel::kFuzz) {
    const auto& fuzz = config.workload.fuzz;
    file.set("fuzz.seed", std::to_string(fuzz.seed));
    file.set("fuzz.patterns", std::to_string(fuzz.patterns));
    file.set("fuzz.rate", util::strfmt("%g", fuzz.acts_per_interval));
    file.set("fuzz.pairs_min", std::to_string(fuzz.params.pairs_min));
    file.set("fuzz.pairs_max", std::to_string(fuzz.params.pairs_max));
    file.set("fuzz.period_exp_min", std::to_string(fuzz.params.period_exp_min));
    file.set("fuzz.period_exp_max", std::to_string(fuzz.params.period_exp_max));
    file.set("fuzz.amplitude_max", std::to_string(fuzz.params.amplitude_max));
    file.set("fuzz.decoys_max", std::to_string(fuzz.params.decoys_max));
    file.set("fuzz.half_double", fuzz.params.half_double ? "true" : "false");
  }
  file.set("technique.pbase_exp", std::to_string(config.technique.pbase_exp));
  file.set("technique.history_entries",
           std::to_string(config.technique.params.history_entries));
  file.set("technique.counter_entries",
           std::to_string(config.technique.params.counter_entries));
  file.set("attack.count", std::to_string(config.workload.attacks.size()));
  for (std::size_t i = 0; i < config.workload.attacks.size(); ++i) {
    const auto& attack = config.workload.attacks[i];
    const std::string prefix = "attack." + std::to_string(i) + ".";
    file.set(prefix + "pattern", pattern_name(attack.pattern));
    file.set(prefix + "bank", std::to_string(attack.bank));
    std::string victims;
    for (const auto v : attack.victims) {
      if (!victims.empty()) victims += ',';
      victims += std::to_string(v);
    }
    file.set(prefix + "victims", victims);
    file.set(prefix + "rate",
             util::strfmt("%g", static_cast<double>(config.timing.t_refi_ps()) /
                                    static_cast<double>(attack.interarrival_ps)));
  }
  return file.to_text();
}

}  // namespace tvp::exp
