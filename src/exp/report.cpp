#include "tvp/exp/report.hpp"

#include <cstdio>
#include <cstdlib>

#include "tvp/util/table.hpp"

namespace tvp::exp {

void install_standard_campaign(SimConfig& config) {
  util::Rng rng(config.seed ^ 0xA77AC4ull);
  config.workload.attacks.clear();
  const std::uint32_t banks = config.geometry.total_banks();
  // Aggressor pressure ramps across banks: 1 victim on bank 0 up to 20
  // victims on the last attacked bank; one bank (if available) is left
  // clean as a control. The per-bank attack budget is ~20 ACTs per
  // refresh interval, which together with the benign load approximates
  // Table I's average of 40.
  const std::size_t ramp[] = {1, 4, 10, 20};
  const std::uint32_t attacked = banks > 1 ? banks - 1 : 1;
  for (std::uint32_t b = 0; b < attacked; ++b) {
    auto attack = trace::make_multi_aggressor_attack(
        b, config.geometry.rows_per_bank, ramp[b % 4], rng);
    attack.interarrival_ps = config.timing.t_refi_ps() / 20;
    attack.source_id = static_cast<trace::SourceId>(200 + b);
    config.workload.attacks.push_back(std::move(attack));
  }
  config.finalize();
}

std::string format_mu_sigma(const util::RunningStat& stat) {
  return util::strfmt("(%.4g +/- %.2g)%%", stat.mean(), stat.stddev());
}

void print_comparison_table(const std::string& title,
                            const std::vector<SeedSweepResult>& sweeps,
                            const std::vector<SecurityVerdict>& verdicts) {
  util::TextTable table({"Technique", "Table Size/Bank [B]", "Vulnerable",
                         "Activations Overhead", "FPR", "Flips"});
  table.set_title(title);
  for (std::size_t i = 0; i < sweeps.size(); ++i) {
    const auto& s = sweeps[i];
    const char* vulnerable =
        i < verdicts.size() ? (verdicts[i].vulnerable ? "Yes" : "No") : "?";
    table.add_row({s.technique, util::strfmt("%.0f", s.state_bytes_per_bank),
                   vulnerable, format_mu_sigma(s.overhead_pct),
                   format_mu_sigma(s.fpr_pct),
                   std::to_string(s.total_flips)});
  }
  std::fputs(table.render().c_str(), stdout);
}

std::uint32_t seeds_from_env(std::uint32_t fallback) noexcept {
  const char* env = std::getenv("TVP_SEEDS");
  if (env == nullptr) return fallback;
  const long v = std::strtol(env, nullptr, 10);
  return v > 0 && v <= 1000 ? static_cast<std::uint32_t>(v) : fallback;
}

}  // namespace tvp::exp
