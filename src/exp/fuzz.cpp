#include "tvp/exp/fuzz.hpp"

#include <stdexcept>
#include <unordered_map>

#include "tvp/exp/config_io.hpp"
#include "tvp/mitigation/trr.hpp"
#include "tvp/util/json.hpp"
#include "tvp/util/parallel.hpp"
#include "tvp/util/table.hpp"

namespace tvp::exp {

namespace {

enum class DefenceKind { kNone, kTrr, kTechnique };

struct Defence {
  std::string name;
  DefenceKind kind = DefenceKind::kNone;
  hw::Technique technique = hw::Technique::kLiPRoMi;
  unsigned pbase_exp = 0;
};

std::vector<Defence> defence_panel(const FuzzCampaignOptions& options) {
  std::vector<Defence> panel;
  if (options.include_none)
    panel.push_back({"none", DefenceKind::kNone, {}, 0});
  if (options.include_trr)
    panel.push_back({"TRR", DefenceKind::kTrr, {}, 0});
  for (const auto technique : hw::kTiVaPRoMiVariants)
    for (const auto exp : options.pbase_exps)
      panel.push_back({util::strfmt("%s@2^-%u",
                                    std::string(hw::to_string(technique)).c_str(),
                                    exp),
                       DefenceKind::kTechnique, technique, exp});
  return panel;
}

RunResult run_cell(const FuzzCampaignOptions& options, const Defence& defence,
                   std::uint64_t fuzz_seed, const std::string& replay_path) {
  SimConfig cfg = options.base;
  cfg.workload.fuzz.seed = fuzz_seed;
  if (!replay_path.empty()) {
    // The corpus carries the whole recorded stream plus the oracles;
    // replaying it reproduces the generated cell bit-identically
    // (same cfg.seed, so the engine/controller forks are unchanged).
    cfg.workload.model = BenignModel::kReplay;
    cfg.workload.trace_path = replay_path;
    cfg.workload.attacks.clear();
  }
  switch (defence.kind) {
    case DefenceKind::kNone:
      return run_custom_simulation(
          [](dram::BankId, util::Rng) {
            return std::make_unique<mem::NoMitigation>();
          },
          defence.name, cfg);
    case DefenceKind::kTrr: {
      mitigation::TrrConfig trr;
      trr.rows_per_bank = cfg.geometry.rows_per_bank;
      return run_custom_simulation(mitigation::make_trr_factory(trr),
                                   defence.name, cfg);
    }
    case DefenceKind::kTechnique:
      cfg.technique.pbase_exp = defence.pbase_exp;
      return run_simulation(defence.technique, cfg);
  }
  throw std::logic_error("run_cell: unreachable");
}

}  // namespace

FuzzCampaignResult run_fuzz_campaign(const FuzzCampaignOptions& options) {
  if (options.base.workload.model != BenignModel::kFuzz)
    throw std::invalid_argument("fuzz campaign: base workload.model must be fuzz");
  if (options.fuzz_seeds == 0)
    throw std::invalid_argument("fuzz campaign: zero fuzz seeds");
  if (options.pbase_exps.empty())
    throw std::invalid_argument("fuzz campaign: no pbase points");
  const auto panel = defence_panel(options);
  if (panel.empty()) throw std::invalid_argument("fuzz campaign: no defences");

  const std::uint64_t base_seed = options.base.workload.fuzz.seed;

  // Record/replay mode: one corpus per swept seed, then every defence
  // cell replays it. Recording is part of the deterministic contract —
  // the corpus bytes are a pure function of (config, seed).
  std::vector<std::string> replay_paths(options.fuzz_seeds);
  if (!options.trace_dir.empty()) {
    for (std::uint32_t s = 0; s < options.fuzz_seeds; ++s) {
      SimConfig cfg = options.base;
      cfg.workload.fuzz.seed = base_seed + s;
      replay_paths[s] = options.trace_dir + "/fuzz_" +
                        std::to_string(base_seed + s) + ".tvpc";
      record_corpus(cfg, replay_paths[s]);
    }
  }

  // The grid runs into pre-sized slots and is reduced in cell order, so
  // the result is bit-identical for every TVP_JOBS value.
  FuzzCampaignResult result;
  const std::size_t cells = options.fuzz_seeds * panel.size();
  std::vector<RunResult> runs(cells);
  util::parallel_for_indexed(cells, util::job_count(), [&](std::size_t i) {
    const std::uint32_t s = static_cast<std::uint32_t>(i / panel.size());
    const auto& defence = panel[i % panel.size()];
    runs[i] = run_cell(options, defence, base_seed + s, replay_paths[s]);
  });

  result.cells.resize(cells);
  std::unordered_map<std::uint64_t, bool> potent;  // seed -> baseline flipped
  for (std::size_t i = 0; i < cells; ++i) {
    const std::uint32_t s = static_cast<std::uint32_t>(i / panel.size());
    const auto& defence = panel[i % panel.size()];
    auto& cell = result.cells[i];
    cell.fuzz_seed = base_seed + s;
    cell.defence = defence.name;
    cell.flips = runs[i].flips;
    cell.victim_flips = runs[i].victim_flips;
    cell.peak_disturbance = runs[i].peak_disturbance;
    cell.overhead_pct = runs[i].overhead_pct();
    cell.fpr_pct = runs[i].fpr_pct();
    if (defence.kind == DefenceKind::kNone && cell.evaded()) {
      potent[cell.fuzz_seed] = true;
      ++result.potent_seeds;
    }
  }

  for (const auto& defence : panel) {
    FuzzDefenceSummary summary;
    summary.defence = defence.name;
    for (const auto& cell : result.cells) {
      if (cell.defence != defence.name) continue;
      ++summary.seeds;
      summary.total_flips += cell.flips;
      summary.total_victim_flips += cell.victim_flips;
      summary.mean_overhead_pct += cell.overhead_pct;
      summary.mean_fpr_pct += cell.fpr_pct;
      if (cell.evaded()) {
        ++summary.evaded;
        if (potent.count(cell.fuzz_seed)) ++summary.evaded_potent;
      }
    }
    if (summary.seeds > 0) {
      summary.mean_overhead_pct /= summary.seeds;
      summary.mean_fpr_pct /= summary.seeds;
    }
    result.defences.push_back(std::move(summary));
  }
  return result;
}

std::string fuzz_report_json(const FuzzCampaignOptions& options,
                             const FuzzCampaignResult& result) {
  const auto& fuzz = options.base.workload.fuzz;
  util::JsonWriter json;
  json.begin_object();
  json.key("campaign").value("fuzz-evasion");
  json.key("config").begin_object();
  json.key("fuzz_seeds").value(static_cast<std::uint64_t>(options.fuzz_seeds));
  json.key("first_seed").value(fuzz.seed);
  json.key("patterns_per_seed").value(static_cast<std::uint64_t>(fuzz.patterns));
  json.key("acts_per_interval").value(fuzz.acts_per_interval);
  json.key("pairs").begin_array();
  json.value(static_cast<std::uint64_t>(fuzz.params.pairs_min));
  json.value(static_cast<std::uint64_t>(fuzz.params.pairs_max));
  json.end_array();
  json.key("period_exp").begin_array();
  json.value(static_cast<std::uint64_t>(fuzz.params.period_exp_min));
  json.value(static_cast<std::uint64_t>(fuzz.params.period_exp_max));
  json.end_array();
  json.key("amplitude_max").value(static_cast<std::uint64_t>(fuzz.params.amplitude_max));
  json.key("half_double").value(fuzz.params.half_double);
  json.key("pbase_exps").begin_array();
  for (const auto exp : options.pbase_exps)
    json.value(static_cast<std::uint64_t>(exp));
  json.end_array();
  json.key("sim_seed").value(options.base.seed);
  json.key("windows").value(static_cast<std::uint64_t>(options.base.windows));
  json.key("banks").value(
      static_cast<std::uint64_t>(options.base.geometry.total_banks()));
  json.key("blast_radius").value(
      static_cast<std::uint64_t>(options.base.disturbance.blast_radius));
  // No record/replay marker and no wall-clock: the report bytes are the
  // same whether the cells were generated or replayed from .tvpc.
  json.end_object();

  json.key("potent_seeds").value(static_cast<std::uint64_t>(result.potent_seeds));
  json.key("defences").begin_array();
  for (const auto& summary : result.defences) {
    json.begin_object();
    json.key("defence").value(summary.defence);
    json.key("seeds").value(static_cast<std::uint64_t>(summary.seeds));
    json.key("evaded").value(static_cast<std::uint64_t>(summary.evaded));
    json.key("evasion_rate").value(summary.evasion_rate(result.potent_seeds));
    json.key("total_flips").value(summary.total_flips);
    json.key("total_victim_flips").value(summary.total_victim_flips);
    json.key("mean_overhead_pct").value(summary.mean_overhead_pct);
    json.key("mean_fpr_pct").value(summary.mean_fpr_pct);
    json.end_object();
  }
  json.end_array();

  json.key("cells").begin_array();
  for (const auto& cell : result.cells) {
    json.begin_object();
    json.key("fuzz_seed").value(cell.fuzz_seed);
    json.key("defence").value(cell.defence);
    json.key("flips").value(cell.flips);
    json.key("victim_flips").value(cell.victim_flips);
    json.key("peak_disturbance").value(cell.peak_disturbance);
    json.key("overhead_pct").value(cell.overhead_pct);
    json.key("fpr_pct").value(cell.fpr_pct);
    json.key("evaded").value(cell.evaded());
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace tvp::exp
