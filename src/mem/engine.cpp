#include "tvp/mem/mitigation.hpp"

#include <stdexcept>

namespace tvp::mem {

MitigationEngine::MitigationEngine(std::uint32_t banks,
                                   const BankMitigationFactory& factory,
                                   util::Rng& rng) {
  if (banks == 0) throw std::invalid_argument("MitigationEngine: zero banks");
  if (!factory) throw std::invalid_argument("MitigationEngine: null factory");
  per_bank_.reserve(banks);
  for (std::uint32_t b = 0; b < banks; ++b) {
    auto instance = factory(b, rng.fork());
    if (!instance)
      throw std::invalid_argument("MitigationEngine: factory returned null");
    per_bank_.push_back(std::move(instance));
  }
  bank_scratch_ = std::vector<BankScratch>(banks);
}

std::uint64_t MitigationEngine::state_bits_total() const noexcept {
  std::uint64_t bits = 0;
  for (const auto& m : per_bank_) bits += m->state_bits();
  return bits;
}

double MitigationEngine::state_bytes_per_bank() const noexcept {
  return static_cast<double>(state_bits_total()) / 8.0 /
         static_cast<double>(per_bank_.size());
}

}  // namespace tvp::mem
