#include "tvp/mem/energy.hpp"

namespace tvp::mem {

namespace {
double background_pj(std::uint64_t duration_ps, const EnergyParams& params) {
  // mW * ps = 1e-3 J/s * 1e-12 s = 1e-15 J = 1e-3 pJ.
  return params.background_mw * static_cast<double>(duration_ps) * 1e-3;
}
}  // namespace

EnergyBreakdown estimate_energy(const ControllerStats& stats,
                                std::uint64_t duration_ps,
                                const EnergyParams& params) {
  EnergyBreakdown e;
  e.demand_act_pj = params.act_pre_pj * static_cast<double>(stats.demand_acts);
  e.mitigation_act_pj = params.act_pre_pj * static_cast<double>(stats.extra_acts);
  e.read_write_pj = params.read_pj * static_cast<double>(stats.reads) +
                    params.write_pj * static_cast<double>(stats.writes);
  e.refresh_pj = params.refresh_row_pj * static_cast<double>(stats.rows_refreshed);
  e.background_pj = background_pj(duration_ps, params);
  return e;
}

EnergyBreakdown estimate_energy(const SchedulerStats& stats,
                                std::uint64_t duration_ps,
                                const EnergyParams& params) {
  EnergyBreakdown e;
  e.demand_act_pj = params.act_pre_pj * static_cast<double>(stats.demand_acts);
  e.mitigation_act_pj =
      params.act_pre_pj * static_cast<double>(stats.mitigation_acts);
  // The scheduler does not split reads/writes; charge the read energy.
  e.read_write_pj = params.read_pj * static_cast<double>(stats.requests);
  e.refresh_pj = params.refresh_row_pj *
                 static_cast<double>(stats.refresh_commands) * 16.0;
  e.background_pj = background_pj(duration_ps, params);
  return e;
}

}  // namespace tvp::mem
