#include "tvp/mem/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace tvp::mem {

void CommandTiming::validate() const {
  base.validate();
  if (t_rcd_ps == 0 || t_rp_ps == 0 || t_cl_ps == 0 || t_ras_ps == 0 ||
      t_burst_ps == 0 || t_faw_ps == 0)
    throw std::invalid_argument("CommandTiming: all parameters must be nonzero");
  if (t_rcd_ps + t_ras_ps > base.t_refi_ps())
    throw std::invalid_argument("CommandTiming: row cycle exceeds tREFI");
}

const char* to_string(PagePolicy policy) noexcept {
  return policy == PagePolicy::kOpenPage ? "open-page" : "closed-page";
}

const char* to_string(MitigationPlacement placement) noexcept {
  return placement == MitigationPlacement::kImmediate ? "immediate"
                                                      : "idle-deferred";
}

CommandScheduler::CommandScheduler(dram::Geometry geometry, CommandTiming timing,
                                   PagePolicy policy, MitigationEngine* engine,
                                   MitigationPlacement placement)
    : geom_(geometry),
      timing_(timing),
      policy_(policy),
      engine_(engine),
      placement_(placement) {
  geom_.validate();
  timing_.validate();
  if (engine_ != nullptr && engine_->banks() != geom_.total_banks())
    throw std::invalid_argument("CommandScheduler: engine bank count mismatch");
  banks_.resize(geom_.total_banks());
  next_refresh_ps_ = timing_.base.t_refi_ps();
}

std::uint64_t CommandScheduler::issue_act(Bank& bank, std::uint64_t earliest_ps) {
  // tFAW: at most four ACTs per rolling window across the channel.
  std::uint64_t act_ps = earliest_ps;
  if (recent_acts_.size() >= 4) {
    const std::uint64_t window_start = recent_acts_[recent_acts_.size() - 4];
    if (act_ps < window_start + timing_.t_faw_ps) {
      act_ps = window_start + timing_.t_faw_ps;
      ++stats_.faw_stalls;
    }
  }
  recent_acts_.push_back(act_ps);
  if (recent_acts_.size() > 8)
    recent_acts_.erase(recent_acts_.begin(), recent_acts_.begin() + 4);
  bank.act_ps = act_ps;
  return act_ps;
}

void CommandScheduler::run_mitigation_acts(Bank& bank, dram::BankId id,
                                           std::uint64_t now_ps,
                                           const MitigationAction* actions,
                                           std::size_t count) {
  if (count == 0) return;
  std::uint64_t t = std::max(bank.ready_ps, now_ps);
  if (bank.row_open) {
    // Close the demand row first (respecting tRAS) — a mitigation ACT
    // on an open bank would be protocol-illegal.
    const std::uint64_t pre_ps = std::max(t, bank.act_ps + timing_.t_ras_ps);
    emit(dram::Command::kPrecharge, id, bank.open_row, pre_ps);
    bank.row_open = false;
    t = pre_ps + timing_.t_rp_ps;
  }
  for (std::size_t a = 0; a < count; ++a) {
    const MitigationAction& action = actions[a];
    // Each extra activation is a closed ACT/PRE pair on this bank; act_n
    // touches both neighbours (two row cycles), kActRow one.
    const std::uint32_t rows =
        action.kind == MitigationAction::Kind::kActNeighbors ? 2u : 1u;
    for (std::uint32_t i = 0; i < rows; ++i) {
      t = std::max(t, bank.act_ps + timing_.base.t_rc_ps);
      t = issue_act(bank, t);
      emit(dram::Command::kActivate, id, action.row, t);
      const std::uint64_t pre_ps = t + timing_.t_ras_ps;
      emit(dram::Command::kPrecharge, id, action.row, pre_ps);
      t = pre_ps + timing_.t_rp_ps;
      ++stats_.mitigation_acts;
    }
  }
  bank.ready_ps = t;
}

void CommandScheduler::place_mitigation(Bank& bank, dram::BankId id,
                                        std::uint64_t now_ps,
                                        const ActionBuffer& actions) {
  if (actions.empty()) return;
  if (placement_ == MitigationPlacement::kImmediate) {
    run_mitigation_acts(bank, id, now_ps, actions.data(), actions.size());
    return;
  }
  bank.deferred.insert(bank.deferred.end(), actions.begin(), actions.end());
  // Bounded postponement: if no idle gap has shown up for a while, issue
  // anyway. (Deferring an act_n by a bounded amount is within the
  // protection model's own tolerance — CaPRoMi defers its activations a
  // whole refresh interval by design.)
  if (bank.deferred.size() >= kMaxDeferred)
    flush_deferred(bank, id, now_ps);
}

void CommandScheduler::flush_deferred(Bank& bank, dram::BankId id,
                                      std::uint64_t now_ps) {
  if (bank.deferred.empty()) return;
  // The backlog vector is issued in place and then cleared (not
  // swapped out), so its capacity is reused across flushes.
  run_mitigation_acts(bank, id, now_ps, bank.deferred.data(),
                      bank.deferred.size());
  bank.deferred.clear();
}

void CommandScheduler::refresh_tick(std::uint64_t boundary_ps) {
  ++global_interval_;
  ++stats_.refresh_commands;
  MitigationContext ctx;
  ctx.interval_in_window = interval_in_window();
  ctx.global_interval = global_interval_;
  ctx.window_start = ctx.interval_in_window == 0;
  for (dram::BankId id = 0; id < banks_.size(); ++id) {
    Bank& bank = banks_[id];
    std::uint64_t ref_ps = std::max(bank.ready_ps, boundary_ps);
    if (bank.row_open) {
      // All banks must be precharged before REF.
      const std::uint64_t pre_ps =
          std::max(ref_ps, bank.act_ps + timing_.t_ras_ps);
      emit(dram::Command::kPrecharge, id, bank.open_row, pre_ps);
      bank.row_open = false;
      ref_ps = pre_ps + timing_.t_rp_ps;
    }
    emit(dram::Command::kRefresh, id, 0, ref_ps);
    bank.ready_ps = ref_ps + timing_.base.t_rfc_ps;
    if (engine_ != nullptr) {
      // REF-time actions (CaPRoMi's collective decisions) issue in the
      // refresh shadow either way — the bank is blocked anyway.
      const ActionBuffer& actions = engine_->on_refresh(id, ctx);
      run_mitigation_acts(bank, id, bank.ready_ps, actions.data(),
                          actions.size());
    }
  }
}

std::uint64_t CommandScheduler::deferred_backlog() const noexcept {
  std::uint64_t total = 0;
  for (const auto& bank : banks_) total += bank.deferred.size();
  return total;
}

void CommandScheduler::service_bank(Bank& bank, dram::BankId id,
                                    std::uint64_t until_ps) {
  while (!bank.queue.empty()) {
    // Only serve work that can start before `until_ps`; the rest waits
    // for the next arrival or refresh boundary (event ordering).
    if (std::max(bank.ready_ps, bank.queue.front().record.time_ps) > until_ps)
      break;
    // FR-FCFS: among the waiting requests, serve an open-row hit first
    // (bounded scan depth models a realistic scheduler window).
    std::size_t pick = 0;
    if (bank.row_open && policy_ == PagePolicy::kOpenPage) {
      const std::size_t depth = std::min<std::size_t>(bank.queue.size(), 16);
      for (std::size_t i = 0; i < depth; ++i) {
        if (bank.queue[i].record.row == bank.open_row) {
          pick = i;
          break;
        }
      }
      if (bank.queue[pick].record.row != bank.open_row) pick = 0;
    }
    const Pending pending = bank.queue[pick];
    bank.queue.erase(bank.queue.begin() + static_cast<std::ptrdiff_t>(pick));
    --queued_;

    const std::uint64_t arrival = pending.record.time_ps;
    std::uint64_t t = std::max(bank.ready_ps, arrival);
    bool activated = false;

    if (bank.row_open && bank.open_row == pending.record.row &&
        policy_ == PagePolicy::kOpenPage) {
      ++stats_.row_hits;
    } else {
      if (bank.row_open) {
        // Conflict: precharge first (respect tRAS).
        const std::uint64_t pre_ps =
            std::max(t, bank.act_ps + timing_.t_ras_ps);
        emit(dram::Command::kPrecharge, id, bank.open_row, pre_ps);
        t = pre_ps + timing_.t_rp_ps;
        ++stats_.row_conflicts;
      } else {
        ++stats_.row_misses;
      }
      t = issue_act(bank, t);
      emit(dram::Command::kActivate, id, pending.record.row, t);
      t += timing_.t_rcd_ps;
      activated = true;
      ++stats_.demand_acts;
      bank.row_open = true;
      bank.open_row = pending.record.row;
    }

    // Column command + data burst.
    emit(pending.record.write ? dram::Command::kWrite : dram::Command::kRead,
         id, pending.record.row, t);
    const std::uint64_t done = t + timing_.t_cl_ps + timing_.t_burst_ps;
    bank.ready_ps = t + timing_.t_burst_ps;

    if (policy_ == PagePolicy::kClosedPage) {
      const std::uint64_t pre_ps =
          std::max(bank.ready_ps, bank.act_ps + timing_.t_ras_ps);
      emit(dram::Command::kPrecharge, id, bank.open_row, pre_ps);
      bank.ready_ps = pre_ps + timing_.t_rp_ps;
      bank.row_open = false;
    }

    ++stats_.requests;
    const double latency = static_cast<double>(done - arrival);
    stats_.latency_ps.add(latency);
    stats_.latency_tail.add(latency);

    if (activated && engine_ != nullptr) {
      // Lane-of-1 through the columnar entry point: the scheduler
      // decides per request (an open-page hit issues no ACT), so it
      // cannot build larger lanes, but routing through on_activates
      // keeps the columnar kernels on the only code path the scheduler
      // exercises.
      MitigationContext ctx;
      ctx.interval_in_window = interval_in_window();
      ctx.global_interval = global_interval_;
      ctx.window_start = false;
      place_mitigation(bank, id, bank.ready_ps,
                       engine_->on_activates(id, &pending.record.row, 1, ctx));
    }
  }
}

void CommandScheduler::service_all(std::uint64_t until_ps) {
  for (dram::BankId id = 0; id < banks_.size(); ++id)
    service_bank(banks_[id], id, until_ps);
}

void CommandScheduler::push(const trace::AccessRecord& record) {
  if (record.time_ps < now_ps_)
    throw std::invalid_argument("CommandScheduler: records must be time-ordered");
  now_ps_ = record.time_ps;
  while (next_refresh_ps_ <= now_ps_) {
    service_all(next_refresh_ps_);  // finish pre-boundary work first
    refresh_tick(next_refresh_ps_);
    next_refresh_ps_ += timing_.base.t_refi_ps();
  }
  if (record.bank >= banks_.size())
    throw std::out_of_range("CommandScheduler: bank out of range");
  Bank& bank = banks_[record.bank];
  // The bank has verifiably been idle since its last command completed:
  // deferred mitigation issues inside that past gap, off the demand
  // path, before the new arrival takes the bank.
  if (bank.queue.empty() && bank.ready_ps <= now_ps_)
    flush_deferred(bank, record.bank, bank.ready_ps);
  bank.queue.push_back(Pending{record, now_ps_});
  ++queued_;
  peak_queue_ = std::max(peak_queue_, queued_);
  service_bank(bank, record.bank, now_ps_);
}

void CommandScheduler::drain() {
  service_all(~0ull);
  for (dram::BankId id = 0; id < banks_.size(); ++id)
    flush_deferred(banks_[id], id, banks_[id].ready_ps);
}

}  // namespace tvp::mem
