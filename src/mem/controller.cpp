#include "tvp/mem/controller.hpp"

#include <algorithm>
#include <stdexcept>

namespace tvp::mem {

MemoryController::MemoryController(ControllerConfig config, MitigationEngine& engine,
                                   dram::DisturbanceModel& disturbance,
                                   util::Rng& rng)
    : cfg_(config),
      timing_(config.timing),
      engine_(engine),
      disturbance_(disturbance),
      remapper_(config.remap_rows
                    ? dram::RowRemapper(config.geometry.rows_per_bank,
                                        config.remap_swaps, rng)
                    : dram::RowRemapper(config.geometry.rows_per_bank)),
      scheduler_(config.geometry.rows_per_bank, config.timing.refresh_intervals,
                 config.refresh_policy, rng, config.remap_swaps) {
  cfg_.geometry.validate();
  timing_.validate();
  if (engine_.banks() != cfg_.geometry.total_banks())
    throw std::invalid_argument(
        "MemoryController: engine bank count does not match geometry");
  if (disturbance_.banks() != cfg_.geometry.total_banks() ||
      disturbance_.rows_per_bank() != cfg_.geometry.rows_per_bank)
    throw std::invalid_argument(
        "MemoryController: disturbance model shape mismatch");
  bank_ready_ps_.assign(cfg_.geometry.total_banks(), 0);
  interval_acts_.assign(cfg_.geometry.total_banks(), 0);
  next_refresh_ps_ = timing_.t_refi_ps();
}

void MemoryController::process_refresh_boundaries(std::uint64_t up_to_ps) {
  while (next_refresh_ps_ <= up_to_ps) {
    refresh_interval_tick();
    next_refresh_ps_ += timing_.t_refi_ps();
  }
}

void MemoryController::refresh_interval_tick() {
  const std::uint64_t boundary_ps = next_refresh_ps_;
  ++global_interval_;
  ++stats_.refresh_intervals;
  const auto interval = interval_in_window();

  MitigationContext ctx;
  ctx.interval_in_window = interval;
  ctx.global_interval = global_interval_;
  ctx.window_start = interval == 0;

  // All banks refresh the same row slot in lockstep (all-bank REF).
  const std::vector<dram::RowId> rows = scheduler_.rows_in_interval(interval);

  const std::uint32_t banks = engine_.banks();
  for (dram::BankId b = 0; b < banks; ++b) {
    stats_.acts_per_interval.add(static_cast<double>(interval_acts_[b]));
    interval_acts_[b] = 0;

    if (cfg_.enforce_timing)
      bank_ready_ps_[b] =
          std::max(bank_ready_ps_[b], boundary_ps + timing_.t_rfc_ps);

    for (const auto row : rows) {
      disturbance_.on_refresh_row(b, row);
      ++stats_.rows_refreshed;
    }

    issue_actions(b, engine_.on_refresh(b, ctx), interval);
  }
}

void MemoryController::activate_physical(dram::BankId bank, dram::RowId physical_row,
                                         std::uint32_t interval) {
  if (cfg_.enforce_timing) bank_ready_ps_[bank] += timing_.t_rc_ps;
  disturbance_.on_activate(bank, physical_row, interval);
}

void MemoryController::issue_actions(dram::BankId bank,
                                     const ActionBuffer& actions,
                                     std::uint32_t interval) {
  for (const auto& action : actions) {
    ++stats_.triggers;
    if (stats_.first_extra_act_at == 0)
      stats_.first_extra_act_at = std::max<std::uint64_t>(stats_.demand_acts, 1);

    std::uint32_t cost = 0;
    switch (action.kind) {
      case MitigationAction::Kind::kActNeighbors: {
        const dram::RowId physical = remapper_.to_physical(action.row);
        const auto rows = cfg_.geometry.rows_per_bank;
        const auto radius = static_cast<std::int64_t>(cfg_.act_n_radius);
        for (std::int64_t d = -radius; d <= radius; ++d) {
          if (d == 0) continue;
          const std::int64_t neighbor = static_cast<std::int64_t>(physical) + d;
          if (neighbor < 0 || neighbor >= static_cast<std::int64_t>(rows))
            continue;
          activate_physical(bank, static_cast<dram::RowId>(neighbor), interval);
          ++cost;
        }
        break;
      }
      case MitigationAction::Kind::kActRow: {
        activate_physical(bank, remapper_.to_physical(action.row), interval);
        cost = 1;
        break;
      }
    }
    stats_.extra_acts += cost;
    if (oracle_ && !oracle_(bank, action.suspect)) stats_.fp_extra_acts += cost;
    stats_.extra_acts_by_phase[interval * ControllerStats::kPhaseBins /
                               timing_.refresh_intervals] += cost;
  }
}

void MemoryController::on_record(const trace::AccessRecord& record) {
  if (record.time_ps < now_ps_)
    throw std::invalid_argument("MemoryController: records must be time-ordered");
  now_ps_ = record.time_ps;
  process_refresh_boundaries(now_ps_);

  const dram::BankId bank = record.bank;
  if (bank >= engine_.banks())
    throw std::out_of_range("MemoryController: bank out of range");
  if (record.row >= cfg_.geometry.rows_per_bank)
    throw std::out_of_range("MemoryController: row out of range");

  if (cfg_.enforce_timing) {
    if (bank_ready_ps_[bank] > now_ps_) ++stats_.delayed_acts;
    const std::uint64_t issue_ps = std::max(bank_ready_ps_[bank], now_ps_);
    bank_ready_ps_[bank] = issue_ps + timing_.t_rc_ps;
  }

  ++stats_.demand_acts;
  if (record.write)
    ++stats_.writes;
  else
    ++stats_.reads;
  ++interval_acts_[bank];

  const auto interval = interval_in_window();
  disturbance_.on_activate(bank, remapper_.to_physical(record.row), interval);

  MitigationContext ctx;
  ctx.interval_in_window = interval;
  ctx.global_interval = global_interval_;
  ctx.window_start = false;

  issue_actions(bank, engine_.on_activate(bank, record.row, ctx), interval);
}

void MemoryController::on_records(const trace::AccessRecord* records,
                                  std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) on_record(records[i]);
}

void MemoryController::advance_to(std::uint64_t time_ps) {
  process_refresh_boundaries(time_ps);
  now_ps_ = std::max(now_ps_, time_ps);
}

}  // namespace tvp::mem
