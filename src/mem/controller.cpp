#include "tvp/mem/controller.hpp"

#include <time.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace tvp::mem {

namespace {
constexpr std::uint64_t kNoTrigger = std::numeric_limits<std::uint64_t>::max();

std::uint64_t monotonic_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

bool columnar_enabled() noexcept {
  const char* env = std::getenv("TVP_COLUMNAR");
  return !(env && std::strcmp(env, "0") == 0);
}
}  // namespace

MemoryController::MemoryController(ControllerConfig config, MitigationEngine& engine,
                                   dram::DisturbanceModel& disturbance,
                                   util::Rng& rng)
    : cfg_(config),
      timing_(config.timing),
      engine_(engine),
      disturbance_(disturbance),
      remapper_(config.remap_rows
                    ? dram::RowRemapper(config.geometry.rows_per_bank,
                                        config.remap_swaps, rng)
                    : dram::RowRemapper(config.geometry.rows_per_bank)),
      scheduler_(config.geometry.rows_per_bank, config.timing.refresh_intervals,
                 config.refresh_policy, rng, config.remap_swaps) {
  cfg_.geometry.validate();
  timing_.validate();
  if (engine_.banks() != cfg_.geometry.total_banks())
    throw std::invalid_argument(
        "MemoryController: engine bank count does not match geometry");
  if (disturbance_.banks() != cfg_.geometry.total_banks() ||
      disturbance_.rows_per_bank() != cfg_.geometry.rows_per_bank)
    throw std::invalid_argument(
        "MemoryController: disturbance model shape mismatch");
  bank_ready_ps_.assign(cfg_.geometry.total_banks(), 0);
  interval_acts_.assign(cfg_.geometry.total_banks(), 0);
  next_refresh_ps_ = timing_.t_refi_ps();

  const std::uint32_t banks = cfg_.geometry.total_banks();
  shards_ = std::vector<BankShard>(banks);
  lane_ptrs_.reserve(banks);
  for (std::uint32_t b = 0; b < banks; ++b) {
    shards_[b].lane = disturbance_.lane(b);
    lane_ptrs_.push_back(&shards_[b].lane);
  }
  lane_cursor_.assign(banks, 0);
  columnar_ = columnar_enabled();
  std::size_t jobs = cfg_.bank_jobs == 0 ? util::job_count() : cfg_.bank_jobs;
  jobs = std::min<std::size_t>(jobs, banks);
  if (jobs > 1) pool_ = std::make_unique<util::WorkerPool>(jobs);
}

void MemoryController::process_refresh_boundaries(std::uint64_t up_to_ps) {
  while (next_refresh_ps_ <= up_to_ps) {
    refresh_interval_tick();
    next_refresh_ps_ += timing_.t_refi_ps();
  }
}

void MemoryController::refresh_interval_tick() {
  const std::uint64_t boundary_ps = next_refresh_ps_;
  ++global_interval_;
  ++stats_.refresh_intervals;
  const auto interval = interval_in_window();

  MitigationContext ctx;
  ctx.interval_in_window = interval;
  ctx.global_interval = global_interval_;
  ctx.window_start = interval == 0;

  // All banks refresh the same row slot in lockstep (all-bank REF).
  const std::vector<dram::RowId> rows = scheduler_.rows_in_interval(interval);

  const std::uint32_t banks = engine_.banks();
  for (dram::BankId b = 0; b < banks; ++b) {
    stats_.acts_per_interval.add(static_cast<double>(interval_acts_[b]));
    interval_acts_[b] = 0;

    if (cfg_.enforce_timing)
      bank_ready_ps_[b] =
          std::max(bank_ready_ps_[b], boundary_ps + timing_.t_rfc_ps);

    for (const auto row : rows) {
      disturbance_.on_refresh_row(b, row);
      ++stats_.rows_refreshed;
    }

    issue_actions(b, engine_.on_refresh(b, ctx), interval);
  }
}

void MemoryController::activate_physical(dram::BankId bank, dram::RowId physical_row,
                                         std::uint32_t interval) {
  if (cfg_.enforce_timing) bank_ready_ps_[bank] += timing_.t_rc_ps;
  disturbance_.on_activate(bank, physical_row, interval);
}

void MemoryController::issue_actions(dram::BankId bank,
                                     const ActionBuffer& actions,
                                     std::uint32_t interval) {
  for (const auto& action : actions) {
    ++stats_.triggers;
    if (stats_.first_extra_act_at == 0)
      stats_.first_extra_act_at = std::max<std::uint64_t>(stats_.demand_acts, 1);

    std::uint32_t cost = 0;
    switch (action.kind) {
      case MitigationAction::Kind::kActNeighbors: {
        const dram::RowId physical = remapper_.to_physical(action.row);
        const auto rows = cfg_.geometry.rows_per_bank;
        const auto radius = static_cast<std::int64_t>(cfg_.act_n_radius);
        for (std::int64_t d = -radius; d <= radius; ++d) {
          if (d == 0) continue;
          const std::int64_t neighbor = static_cast<std::int64_t>(physical) + d;
          if (neighbor < 0 || neighbor >= static_cast<std::int64_t>(rows))
            continue;
          activate_physical(bank, static_cast<dram::RowId>(neighbor), interval);
          ++cost;
        }
        break;
      }
      case MitigationAction::Kind::kActRow: {
        activate_physical(bank, remapper_.to_physical(action.row), interval);
        cost = 1;
        break;
      }
    }
    stats_.extra_acts += cost;
    if (oracle_ && !oracle_(bank, action.suspect)) stats_.fp_extra_acts += cost;
    stats_.extra_acts_by_phase[interval * ControllerStats::kPhaseBins /
                               timing_.refresh_intervals] += cost;
  }
}

void MemoryController::on_record(const trace::AccessRecord& record) {
  if (record.time_ps < now_ps_)
    throw std::invalid_argument("MemoryController: records must be time-ordered");
  now_ps_ = record.time_ps;
  process_refresh_boundaries(now_ps_);

  const dram::BankId bank = record.bank;
  if (bank >= engine_.banks())
    throw std::out_of_range("MemoryController: bank out of range");
  if (record.row >= cfg_.geometry.rows_per_bank)
    throw std::out_of_range("MemoryController: row out of range");

  if (cfg_.enforce_timing) {
    if (bank_ready_ps_[bank] > now_ps_) ++stats_.delayed_acts;
    const std::uint64_t issue_ps = std::max(bank_ready_ps_[bank], now_ps_);
    bank_ready_ps_[bank] = issue_ps + timing_.t_rc_ps;
  }

  ++stats_.demand_acts;
  if (record.write)
    ++stats_.writes;
  else
    ++stats_.reads;
  ++interval_acts_[bank];

  const auto interval = interval_in_window();
  disturbance_.on_activate(bank, remapper_.to_physical(record.row), interval);

  MitigationContext ctx;
  ctx.interval_in_window = interval;
  ctx.global_interval = global_interval_;
  ctx.window_start = false;

  issue_actions(bank, engine_.on_activate(bank, record.row, ctx), interval);
}

void MemoryController::on_records(const trace::AccessRecord* records,
                                  std::size_t count) {
  if (!columnar_) {
    // TVP_COLUMNAR=0: force the serial record-at-a-time path (the CI
    // determinism job runs the suite both ways).
    for (std::size_t i = 0; i < count; ++i) on_record(records[i]);
    return;
  }
  std::size_t i = 0;
  while (i < count) {
    if (records[i].time_ps < now_ps_)
      throw std::invalid_argument(
          "MemoryController: records must be time-ordered");
    process_refresh_boundaries(records[i].time_ps);
    // A refresh segment: the maximal time-ordered run strictly before
    // the next refresh boundary (the mitigation context is constant
    // inside it). An out-of-order record ends the segment and is
    // rejected by the check above on the next pass, after the valid
    // prefix has been processed — exactly the state a serial on_record
    // loop leaves behind.
    std::size_t end = i + 1;
    while (end < count && records[end].time_ps >= records[end - 1].time_ps &&
           records[end].time_ps < next_refresh_ps_)
      ++end;
    process_segment(records + i, end - i);
    i = end;
  }
}

void MemoryController::on_records_partitioned(
    const trace::AccessRecord* records, std::size_t count,
    const trace::BankLaneView* lanes, std::size_t lane_banks) {
  const std::uint32_t banks = engine_.banks();
  bool usable = columnar_ && lanes != nullptr && lane_banks == banks;
  if (usable) {
    // A whole-span range check per lane (O(banks), not O(records)): a
    // lane row out of range means the scatter path's throw-with-valid-
    // prefix semantics must apply, so fall back entirely.
    for (std::size_t b = 0; b < lane_banks; ++b)
      if (lanes[b].count != 0 &&
          lanes[b].max_row >= cfg_.geometry.rows_per_bank) {
        usable = false;
        break;
      }
  }
  if (!usable) {
    on_records(records, count);
    return;
  }

  std::fill(lane_cursor_.begin(), lane_cursor_.end(), 0);
  std::size_t i = 0;
  while (i < count) {
    if (records[i].time_ps < now_ps_)
      throw std::invalid_argument(
          "MemoryController: records must be time-ordered");
    process_refresh_boundaries(records[i].time_ps);
    std::size_t end = i + 1;
    while (end < count && records[end].time_ps >= records[end - 1].time_ps &&
           records[end].time_ps < next_refresh_ps_)
      ++end;

    // Segment [i, end): slice each bank's span lane by advancing its
    // cursor while the (ascending) serials stay below `end` — zero-copy,
    // no per-record scatter.
    now_ps_ = records[end - 1].time_ps;
    MitigationContext ctx;
    ctx.interval_in_window = interval_in_window();
    ctx.global_interval = global_interval_;
    ctx.window_start = false;

    reset_shards();
    for (std::uint32_t b = 0; b < banks; ++b) {
      const trace::BankLaneView& lv = lanes[b];
      std::size_t cur = lane_cursor_[b];
      std::size_t stop = cur;
      while (stop < lv.count && lv.serials[stop] < end) ++stop;
      BankShard& s = shards_[b];
      s.lane_rows = lv.rows + cur;
      s.lane_times = lv.times + cur;
      s.lane_serials = lv.serials + cur;
      s.lane_writes = lv.writes + cur;
      s.lane_count = stop - cur;
      s.serial_base = static_cast<std::uint32_t>(i);
      lane_cursor_[b] = stop;
    }
    profile_.partitioned_acts += end - i;

    run_segment(end - i, ctx);
    i = end;
  }
}

void MemoryController::reset_shards() {
  const std::uint32_t banks = engine_.banks();
  for (std::uint32_t b = 0; b < banks; ++b) {
    BankShard& s = shards_[b];
    s.totals.clear();
    s.reads = s.writes = s.delayed = s.triggers = s.extra = s.fp_extra = 0;
    s.first_trigger_serial = kNoTrigger;
    s.bank_ready_ps = bank_ready_ps_[b];
  }
}

void MemoryController::process_segment(const trace::AccessRecord* records,
                                       std::size_t count) {
  const std::uint32_t banks = engine_.banks();
  const bool timed = cfg_.profile;
  const std::uint64_t t0 = timed ? monotonic_ns() : 0;

  // Address validation up-front; the valid prefix is still processed, so
  // a throw leaves the same state as the serial loop's throw.
  std::size_t valid = count;
  const char* bad_bank = nullptr;
  const char* bad_row = nullptr;
  for (std::size_t j = 0; j < count; ++j) {
    if (records[j].bank >= banks) {
      valid = j;
      bad_bank = "MemoryController: bank out of range";
      break;
    }
    if (records[j].row >= cfg_.geometry.rows_per_bank) {
      valid = j;
      bad_row = "MemoryController: row out of range";
      break;
    }
  }

  if (valid > 0) {
    now_ps_ = records[valid - 1].time_ps;
    MitigationContext ctx;
    ctx.interval_in_window = interval_in_window();
    ctx.global_interval = global_interval_;
    ctx.window_start = false;

    // The partition pass: scatter the segment once into per-bank SoA
    // lanes (row / time / serial / write columns), so the per-bank
    // kernels stream contiguous columns instead of gathering from the
    // record array.
    reset_shards();
    for (std::uint32_t b = 0; b < banks; ++b) {
      BankShard& s = shards_[b];
      s.serials.clear();
      s.rows.clear();
      s.times.clear();
      s.write_col.clear();
    }
    for (std::size_t j = 0; j < valid; ++j) {
      BankShard& s = shards_[records[j].bank];
      s.serials.push_back(static_cast<std::uint32_t>(j));
      s.rows.push_back(records[j].row);
      s.times.push_back(records[j].time_ps);
      s.write_col.push_back(records[j].write ? 1 : 0);
    }
    for (std::uint32_t b = 0; b < banks; ++b) {
      BankShard& s = shards_[b];
      s.lane_rows = s.rows.data();
      s.lane_times = s.times.data();
      s.lane_serials = s.serials.data();
      s.lane_writes = s.write_col.data();
      s.lane_count = s.serials.size();
      s.serial_base = 0;
    }
    profile_.scattered_acts += valid;
    if (timed) profile_.partition_ns += monotonic_ns() - t0;

    run_segment(valid, ctx);
  } else if (timed) {
    profile_.partition_ns += monotonic_ns() - t0;
  }

  if (bad_bank || bad_row) {
    now_ps_ = records[valid].time_ps;
    throw std::out_of_range(bad_bank ? bad_bank : bad_row);
  }
}

void MemoryController::run_segment(std::size_t valid,
                                   const MitigationContext& ctx) {
  const std::uint32_t banks = engine_.banks();
  const bool timed = cfg_.profile;
  const std::uint64_t t0 = timed ? monotonic_ns() : 0;

  if (pool_) {
    pool_->run(banks, [&](std::size_t b) {
      run_bank_shard(static_cast<dram::BankId>(b), ctx);
    });
  } else {
    for (std::uint32_t b = 0; b < banks; ++b) run_bank_shard(b, ctx);
  }
  const std::uint64_t t1 = timed ? monotonic_ns() : 0;
  if (timed) profile_.mitigation_ns += t1 - t0;

  // Serial reduce: fold shard outputs into the shared counters in bank
  // order. Every sum is independent of which thread produced it, and
  // the order-dependent aggregates (first_extra_act_at, flip events)
  // are reconstructed from the segment-serial tags, so the result is
  // bit-identical to serial execution for any bank_jobs.
  const std::uint64_t demand_before = stats_.demand_acts;
  const std::size_t phase_bin = ctx.interval_in_window *
                                ControllerStats::kPhaseBins /
                                timing_.refresh_intervals;
  std::uint64_t first_serial = kNoTrigger;
  bool any_flips = false;
  for (std::uint32_t b = 0; b < banks; ++b) {
    const BankShard& s = shards_[b];
    stats_.demand_acts += s.lane_count;
    stats_.reads += s.reads;
    stats_.writes += s.writes;
    stats_.delayed_acts += s.delayed;
    stats_.triggers += s.triggers;
    stats_.extra_acts += s.extra;
    stats_.fp_extra_acts += s.fp_extra;
    stats_.extra_acts_by_phase[phase_bin] += s.extra;
    interval_acts_[b] += static_cast<std::uint32_t>(s.lane_count);
    bank_ready_ps_[b] = s.bank_ready_ps;
    first_serial = std::min(first_serial, s.first_trigger_serial);
    any_flips = any_flips || s.lane.has_pending_flips();
  }
  if (stats_.first_extra_act_at == 0 && first_serial != kNoTrigger)
    stats_.first_extra_act_at = demand_before + first_serial + 1;

  const std::uint64_t* prefix = nullptr;
  if (any_flips) {
    // Per-serial activation totals scattered from the shards, then
    // prefix-summed: prefix[j] = activations performed by records < j.
    act_prefix_.assign(valid, 0);
    for (std::uint32_t b = 0; b < banks; ++b) {
      const BankShard& s = shards_[b];
      for (std::size_t k = 0; k < s.lane_count; ++k)
        act_prefix_[s.lane_serials[k] - s.serial_base] = s.totals[k];
    }
    std::uint64_t running = 0;
    for (std::size_t j = 0; j < valid; ++j) {
      const std::uint64_t t = act_prefix_[j];
      act_prefix_[j] = running;
      running += t;
    }
    prefix = act_prefix_.data();
  }
  disturbance_.commit_lanes(lane_ptrs_.data(), lane_ptrs_.size(), prefix);
  if (timed) profile_.disturbance_ns += monotonic_ns() - t1;
}

void MemoryController::run_bank_shard(dram::BankId bank,
                                      const MitigationContext& ctx) {
  BankShard& s = shards_[bank];
  const std::size_t n = s.lane_count;
  if (n == 0) return;

  const std::uint32_t interval = ctx.interval_in_window;
  const ActionBuffer& actions = engine_.on_activates(bank, s.lane_rows, n, ctx);
  const MitigationAction* act = actions.begin();
  const MitigationAction* const act_end = actions.end();

  const bool enforce = cfg_.enforce_timing;
  const std::uint64_t t_rc = timing_.t_rc_ps;
  const auto rows = cfg_.geometry.rows_per_bank;
  const auto radius = static_cast<std::int64_t>(cfg_.act_n_radius);
  const std::uint32_t serial_base = s.serial_base;
  std::uint64_t ready = s.bank_ready_ps;

  for (std::size_t k = 0; k < n; ++k) {
    const std::uint32_t serial = s.lane_serials[k] - serial_base;
    if (enforce) {
      const std::uint64_t t = s.lane_times[k];
      if (ready > t) ++s.delayed;
      ready = std::max(ready, t) + t_rc;
    }
    if (s.lane_writes[k])
      ++s.writes;
    else
      ++s.reads;
    s.lane.on_activate(remapper_.to_physical(s.lane_rows[k]), interval, serial,
                       0);

    std::uint32_t offset = 0;  // activations this record has performed - 1
    for (; act != act_end && act->origin == k; ++act) {
      ++s.triggers;
      if (s.first_trigger_serial == kNoTrigger) s.first_trigger_serial = serial;
      std::uint32_t cost = 0;
      switch (act->kind) {
        case MitigationAction::Kind::kActNeighbors: {
          const dram::RowId physical = remapper_.to_physical(act->row);
          for (std::int64_t d = -radius; d <= radius; ++d) {
            if (d == 0) continue;
            const std::int64_t neighbor =
                static_cast<std::int64_t>(physical) + d;
            if (neighbor < 0 || neighbor >= static_cast<std::int64_t>(rows))
              continue;
            if (enforce) ready += t_rc;
            s.lane.on_activate(static_cast<dram::RowId>(neighbor), interval,
                               serial, ++offset);
            ++cost;
          }
          break;
        }
        case MitigationAction::Kind::kActRow: {
          if (enforce) ready += t_rc;
          s.lane.on_activate(remapper_.to_physical(act->row), interval, serial,
                             ++offset);
          cost = 1;
          break;
        }
      }
      s.extra += cost;
      if (oracle_ && !oracle_(bank, act->suspect)) s.fp_extra += cost;
    }
    s.totals.push_back(1 + offset);
  }
  s.bank_ready_ps = ready;
}

void MemoryController::advance_to(std::uint64_t time_ps) {
  process_refresh_boundaries(time_ps);
  now_ps_ = std::max(now_ps_, time_ps);
}

}  // namespace tvp::mem
