// Command-level memory-controller model.
//
// MemoryController (controller.hpp) is the activation-accurate spine the
// reproduction experiments run on: it counts every ACT and feeds the
// disturbance model, but abstracts command scheduling. CommandScheduler
// complements it with a queueing model at DDR command granularity —
// FR-FCFS arbitration, open/closed page policy, bank state machines with
// tRCD/tRP/tCL/tRAS/tFAW, refresh blackouts, and the mitigation act_n
// path — so the *performance* cost of a mitigation technique (added
// latency, lost row hits) can be measured, not just its activation
// count. This is what the paper's introduction means by "a performance
// penalty due to a high number of extra row activations".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "tvp/dram/geometry.hpp"
#include "tvp/dram/protocol.hpp"
#include "tvp/dram/timing.hpp"
#include "tvp/mem/mitigation.hpp"
#include "tvp/trace/record.hpp"
#include "tvp/util/stats.hpp"

namespace tvp::mem {

/// DDR command timing beyond the coarse dram::Timing (all picoseconds;
/// defaults model DDR4-2400-ish latencies).
struct CommandTiming {
  dram::Timing base;               ///< tRC / tRFC / tREFI / clock
  std::uint64_t t_rcd_ps = 13'750; ///< ACT -> RD/WR
  std::uint64_t t_rp_ps = 13'750;  ///< PRE -> ACT
  std::uint64_t t_cl_ps = 13'750;  ///< RD -> first data
  std::uint64_t t_ras_ps = 32'000; ///< ACT -> PRE (min row-open time)
  std::uint64_t t_burst_ps = 3'333;///< data burst on the bus
  std::uint64_t t_faw_ps = 21'000; ///< four-activate window per rank

  void validate() const;
};

enum class PagePolicy {
  kOpenPage,   ///< keep the row open; hits skip ACT entirely
  kClosedPage, ///< precharge after every access
};

const char* to_string(PagePolicy policy) noexcept;

/// When mitigation activations are issued relative to demand traffic.
/// The paper's Section I/II argue for controller-side mitigation partly
/// because DIMM-side logic "must no longer rely on predetermined memory
/// timings": an autonomous device injects its activations immediately,
/// in the demand path, while a controller that owns the mitigation can
/// slip them into idle gaps. kImmediate models the former, kIdleDeferred
/// the latter (deferred work is flushed when the bank queue drains, or
/// at the next refresh boundary at the latest — protection is never
/// postponed past a REF).
enum class MitigationPlacement {
  kImmediate,
  kIdleDeferred,
};

const char* to_string(MitigationPlacement placement) noexcept;

/// Aggregated performance counters of one scheduler run.
struct SchedulerStats {
  std::uint64_t requests = 0;
  std::uint64_t row_hits = 0;        ///< served from an open row
  std::uint64_t row_misses = 0;      ///< needed ACT (empty bank)
  std::uint64_t row_conflicts = 0;   ///< needed PRE + ACT
  std::uint64_t demand_acts = 0;
  std::uint64_t mitigation_acts = 0; ///< extra activations issued
  std::uint64_t refresh_commands = 0;
  std::uint64_t faw_stalls = 0;      ///< ACTs delayed by the tFAW window
  util::RunningStat latency_ps;      ///< request completion - arrival
  util::PercentileTracker latency_tail;

  double row_hit_rate() const noexcept {
    return requests ? static_cast<double>(row_hits) / static_cast<double>(requests)
                    : 0.0;
  }
};

/// FR-FCFS command scheduler over one channel.
///
/// Usage: push() requests in arrival order (any inter-bank pattern),
/// then drain(). The mitigation engine is optional — pass nullptr for a
/// baseline run; with an engine, every demand ACT consults it and its
/// extra activations are issued as closed-page activate/precharge pairs
/// on the same bank, competing for the same timing budget.
class CommandScheduler {
 public:
  CommandScheduler(dram::Geometry geometry, CommandTiming timing,
                   PagePolicy policy, MitigationEngine* engine = nullptr,
                   MitigationPlacement placement = MitigationPlacement::kImmediate);

  /// Enqueues a request; must be non-decreasing in time_ps.
  void push(const trace::AccessRecord& record);

  /// Runs the simulation until every queued request has completed.
  void drain();

  const SchedulerStats& stats() const noexcept { return stats_; }

  /// Maximum simultaneously queued requests seen (back-pressure proxy).
  std::size_t peak_queue_depth() const noexcept { return peak_queue_; }

  /// Observes every DDR command the scheduler issues (ACT/PRE/RD/WR/REF
  /// with issue times). Commands arrive in per-bank causal order; sort
  /// by time for a bus-order view. Used with dram::ProtocolChecker to
  /// prove the emitted stream is protocol-legal (see scheduler_test).
  using CommandObserver = std::function<void(const dram::TimedCommand&)>;
  void set_observer(CommandObserver observer) { observer_ = std::move(observer); }

  /// Deferred mitigation actions currently waiting for an idle gap
  /// (always 0 with kImmediate placement, and after drain()).
  std::uint64_t deferred_backlog() const noexcept;

 private:
  struct Pending {
    trace::AccessRecord record;
    std::uint64_t enqueue_ps;
  };
  struct Bank {
    bool row_open = false;
    dram::RowId open_row = 0;
    std::uint64_t ready_ps = 0;      ///< earliest next command issue
    std::uint64_t act_ps = 0;        ///< last ACT time (tRAS accounting)
    std::deque<Pending> queue;
    std::vector<MitigationAction> deferred;  ///< kIdleDeferred backlog
  };

  void service_bank(Bank& bank, dram::BankId id, std::uint64_t until_ps);
  void service_all(std::uint64_t until_ps);
  std::uint64_t issue_act(Bank& bank, std::uint64_t earliest_ps);
  void emit(dram::Command command, dram::BankId bank, dram::RowId row,
            std::uint64_t time_ps) {
    if (observer_) observer_(dram::TimedCommand{command, bank, row, time_ps});
  }
  void run_mitigation_acts(Bank& bank, dram::BankId id, std::uint64_t now_ps,
                           const MitigationAction* actions, std::size_t count);
  /// Deferred actions are flushed at idle gaps, or forcibly once this
  /// many accumulate on a bank (bounded postponement).
  static constexpr std::size_t kMaxDeferred = 8;
  void place_mitigation(Bank& bank, dram::BankId id, std::uint64_t now_ps,
                        const ActionBuffer& actions);
  void flush_deferred(Bank& bank, dram::BankId id, std::uint64_t now_ps);
  void refresh_tick(std::uint64_t boundary_ps);
  std::uint32_t interval_in_window() const noexcept {
    return static_cast<std::uint32_t>(global_interval_ %
                                      timing_.base.refresh_intervals);
  }

  dram::Geometry geom_;
  CommandTiming timing_;
  PagePolicy policy_;
  MitigationEngine* engine_;
  MitigationPlacement placement_;
  std::vector<Bank> banks_;
  std::vector<std::uint64_t> recent_acts_;  ///< rank-wide ACT history (tFAW)
  std::uint64_t now_ps_ = 0;
  std::uint64_t next_refresh_ps_;
  std::uint64_t global_interval_ = 0;
  std::size_t queued_ = 0;
  std::size_t peak_queue_ = 0;
  SchedulerStats stats_;
  CommandObserver observer_;
};

}  // namespace tvp::mem
