// The mitigation hook: how a Row-Hammer defence plugs into the memory
// controller (Figure 1 of the paper).
//
// A technique observes two commands per bank — ACT (row address) and REF
// (refresh-interval tick) — and may respond with extra activations:
// either the act_n "activate both physical neighbours" command used by
// PARA/TWiCe/TiVaPRoMi, or an explicit row activation as used by
// ProHit/MRLoc (which compute victim addresses as N±1 themselves).
//
// Techniques are written for a single bank (exactly as in Section III);
// the MitigationEngine instantiates one object per bank and routes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tvp/dram/geometry.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::mem {

/// One extra activation requested by a mitigation technique.
///
/// (Rate-limiting defences like BlockHammer would need a throttle action
/// plus a *closed-loop* attacker whose rate responds to backpressure;
/// our traces are open-loop by design, so that family is out of scope —
/// documented in DESIGN.md rather than modelled misleadingly.)
struct MitigationAction {
  enum class Kind {
    /// act_n: the device activates both *physical* neighbours of `row`.
    kActNeighbors,
    /// Activate the given logical `row` directly (ProHit/MRLoc style).
    kActRow,
  };
  Kind kind = Kind::kActNeighbors;
  dram::RowId row = 0;
  /// The row the technique suspects of being an aggressor; ground-truth
  /// false-positive accounting compares this against the real aggressor
  /// set. For kActNeighbors this equals `row`.
  dram::RowId suspect = 0;
  /// Index of the ACT (within an on_activates batch) that produced this
  /// action; 0 for single-ACT dispatch. The batched controller uses it to
  /// issue actions in record order (exact serial equivalence). Techniques
  /// overriding on_activates must fill it (the default override and
  /// ActionBuffer::stamp_origin do it for them) and must append actions
  /// in non-decreasing origin order.
  std::uint32_t origin = 0;
};

/// Timing/context of the observed command.
struct MitigationContext {
  std::uint32_t interval_in_window = 0;  ///< i in [0, RefInt)
  std::uint64_t global_interval = 0;     ///< monotone across windows
  bool window_start = false;             ///< first interval of a window
};

/// Reusable output buffer for mitigation actions (the ACT hot path).
///
/// One instance is owned by the dispatcher (MitigationEngine) and
/// cleared-and-reused for every command, so the steady-state
/// controller -> engine -> technique path performs no heap allocation:
/// clear() keeps the capacity, and the capacity stabilizes after the
/// first few commands (a technique emits at most a handful of actions
/// per command). Handlers append only; they must not hold references to
/// the buffer or its contents across calls — the next dispatch clears
/// it (see DESIGN.md, "The ACT hot path").
class ActionBuffer {
 public:
  /// Pre-reserved so typical techniques (0-2 actions per command) never
  /// allocate after construction.
  static constexpr std::size_t kInitialCapacity = 8;

  ActionBuffer() { storage_.reserve(kInitialCapacity); }

  void push_back(const MitigationAction& action) { storage_.push_back(action); }

  /// Tags every action appended since @p from (a size() snapshot) with
  /// @p origin — the batch index of the ACT that produced them. Batch
  /// kernels call this once per processed ACT that emitted anything.
  void stamp_origin(std::size_t from, std::uint32_t origin) noexcept {
    for (std::size_t i = from; i < storage_.size(); ++i)
      storage_[i].origin = origin;
  }

  /// Drops all actions but keeps the allocation.
  void clear() noexcept { storage_.clear(); }

  bool empty() const noexcept { return storage_.empty(); }
  std::size_t size() const noexcept { return storage_.size(); }
  /// Exposed so tests can assert the buffer stops growing (the
  /// steady-state no-allocation guarantee).
  std::size_t capacity() const noexcept { return storage_.capacity(); }

  const MitigationAction* data() const noexcept { return storage_.data(); }
  const MitigationAction* begin() const noexcept { return storage_.data(); }
  const MitigationAction* end() const noexcept {
    return storage_.data() + storage_.size();
  }
  const MitigationAction& operator[](std::size_t i) const noexcept {
    return storage_[i];
  }
  const MitigationAction& front() const { return storage_.front(); }
  const MitigationAction& back() const { return storage_.back(); }

 private:
  std::vector<MitigationAction> storage_;
};

/// Per-bank mitigation state machine.
class IBankMitigation {
 public:
  virtual ~IBankMitigation() = default;

  /// Technique name ("PARA", "LiPRoMi", ...).
  virtual const char* name() const noexcept = 0;

  /// Observes an ACT of logical @p row; appends any extra activations
  /// to @p out.
  virtual void on_activate(dram::RowId row, const MitigationContext& ctx,
                           ActionBuffer& out) = 0;

  /// Observes a same-bank *lane* of ACT row addresses in arrival order —
  /// the hot path of 10^8-ACT campaigns. @p rows is a contiguous column
  /// of logical row ids (SoA: the controller's partition pass scatters
  /// each batch into per-bank lanes once; a partition-indexed corpus
  /// hands the lane out zero-copy). @p ctx applies to every element (a
  /// controller lane never crosses a refresh boundary). Must be
  /// decision-for-decision identical to calling on_activate once per
  /// element (same RNG draw order, same state transitions); each
  /// appended action must carry the lane index of the ACT that produced
  /// it in MitigationAction::origin, appended in non-decreasing origin
  /// order. The default implementation delegates to on_activate and
  /// stamps origins; techniques override it with branch-light columnar
  /// kernels (no per-ACT virtual dispatch, dense scans, lookup tables).
  virtual void on_activates(const dram::RowId* rows, std::size_t n,
                            const MitigationContext& ctx, ActionBuffer& out) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t before = out.size();
      on_activate(rows[i], ctx, out);
      out.stamp_origin(before, static_cast<std::uint32_t>(i));
    }
  }

  /// Observes the REF command that starts refresh interval ctx.interval_
  /// in_window; appends any (deferred) extra activations to @p out.
  virtual void on_refresh(const MitigationContext& ctx, ActionBuffer& out) = 0;

  /// Storage this technique keeps per bank, in bits (history tables,
  /// counters, CAM entries). Reproduces the x-axis of Figure 4.
  virtual std::uint64_t state_bits() const noexcept = 0;
};

/// Creates the per-bank instance; @p rng must be used for all of the
/// technique's randomness.
using BankMitigationFactory =
    std::function<std::unique_ptr<IBankMitigation>(dram::BankId bank, util::Rng rng)>;

/// A no-op defence (the unprotected baseline).
class NoMitigation final : public IBankMitigation {
 public:
  const char* name() const noexcept override { return "none"; }
  void on_activate(dram::RowId, const MitigationContext&,
                   ActionBuffer&) override {}
  void on_activates(const dram::RowId*, std::size_t, const MitigationContext&,
                    ActionBuffer&) override {}
  void on_refresh(const MitigationContext&, ActionBuffer&) override {}
  std::uint64_t state_bits() const noexcept override { return 0; }
};

/// Routes commands to per-bank technique instances.
class MitigationEngine {
 public:
  /// @p banks instances are created eagerly from @p factory; @p rng is
  /// forked once per bank.
  MitigationEngine(std::uint32_t banks, const BankMitigationFactory& factory,
                   util::Rng& rng);

  std::uint32_t banks() const noexcept {
    return static_cast<std::uint32_t>(per_bank_.size());
  }
  IBankMitigation& bank(dram::BankId id) { return *per_bank_.at(id); }
  const IBankMitigation& bank(dram::BankId id) const { return *per_bank_.at(id); }

  const char* name() const noexcept { return per_bank_.front()->name(); }

  /// Total mitigation storage across banks, in bits / bytes-per-bank.
  std::uint64_t state_bits_total() const noexcept;
  double state_bytes_per_bank() const noexcept;

  /// Dispatches the ACT to the bank's technique and returns the actions
  /// it requested. The returned buffer is the engine-owned scratch: it
  /// is valid only until the next on_activate/on_refresh call, and the
  /// engine (not the caller) pays its one-time allocation.
  const ActionBuffer& on_activate(dram::BankId bank, dram::RowId row,
                                  const MitigationContext& ctx) {
    scratch_.clear();
    per_bank_[bank]->on_activate(row, ctx, scratch_);
    return scratch_;
  }
  /// REF-path counterpart of on_activate(); same scratch lifetime rules.
  const ActionBuffer& on_refresh(dram::BankId bank, const MitigationContext& ctx) {
    scratch_.clear();
    per_bank_[bank]->on_refresh(ctx, scratch_);
    return scratch_;
  }

  /// Lane dispatch (the controller's columnar hot path): hands a
  /// same-bank column of ACT row addresses to the bank's technique in
  /// one virtual call. Returns the *bank-owned* scratch buffer — unlike
  /// on_activate's shared scratch it is private to @p bank, so
  /// independent banks may run concurrently; it stays valid until the
  /// next on_activates call for the same bank.
  const ActionBuffer& on_activates(dram::BankId bank, const dram::RowId* rows,
                                   std::size_t n, const MitigationContext& ctx) {
    ActionBuffer& buf = bank_scratch_[bank].buffer;
    buf.clear();
    per_bank_[bank]->on_activates(rows, n, ctx, buf);
    return buf;
  }

  /// The engine-owned scratch buffer (read-only; exposed so tests can
  /// assert its capacity stabilizes in steady state).
  const ActionBuffer& scratch() const noexcept { return scratch_; }
  /// Per-bank scratch of the batch path (same steady-state guarantee).
  const ActionBuffer& bank_scratch(dram::BankId bank) const {
    return bank_scratch_.at(bank).buffer;
  }

 private:
  /// Cache-line separated so concurrent bank workers never write the
  /// same line through adjacent buffers.
  struct alignas(64) BankScratch {
    ActionBuffer buffer;
  };

  std::vector<std::unique_ptr<IBankMitigation>> per_bank_;
  ActionBuffer scratch_;
  std::vector<BankScratch> bank_scratch_;
};

}  // namespace tvp::mem
