// DRAM energy model (DRAMPower-style, command-counting).
//
// The paper argues activation overhead matters because extra row
// activations cost performance; they also cost energy — each act_n is a
// full row cycle (ACT + PRE) on the DRAM die. This model turns the
// command counts of a run (MemoryController or CommandScheduler stats)
// into an energy breakdown, so mitigation techniques can be compared on
// a joules axis as well. Constants follow public DDR4 IDD-derived
// figures (order-of-magnitude; relative comparisons are what matter).
#pragma once

#include <cstdint>

#include "tvp/mem/controller.hpp"
#include "tvp/mem/scheduler.hpp"

namespace tvp::mem {

/// Per-command energies in picojoules + background power.
struct EnergyParams {
  double act_pre_pj = 1700.0;     ///< one row cycle (ACT + PRE)
  double read_pj = 4700.0;        ///< column read incl. IO burst
  double write_pj = 4800.0;       ///< column write incl. IO burst
  double refresh_row_pj = 280.0;  ///< per row refreshed
  double background_mw = 90.0;    ///< static + standby power
};

/// Energy of one run, split by cause.
struct EnergyBreakdown {
  double demand_act_pj = 0;
  double mitigation_act_pj = 0;
  double read_write_pj = 0;
  double refresh_pj = 0;
  double background_pj = 0;

  double total_pj() const noexcept {
    return demand_act_pj + mitigation_act_pj + read_write_pj + refresh_pj +
           background_pj;
  }
  /// Mitigation energy as a fraction of everything else (percent).
  double mitigation_overhead_pct() const noexcept {
    const double rest = total_pj() - mitigation_act_pj;
    return rest > 0 ? 100.0 * mitigation_act_pj / rest : 0.0;
  }
};

/// Energy from an activation-accurate run (MemoryController stats).
/// @p duration_ps is the simulated wall time (for background energy).
EnergyBreakdown estimate_energy(const ControllerStats& stats,
                                std::uint64_t duration_ps,
                                const EnergyParams& params = {});

/// Energy from a command-level run (CommandScheduler stats).
EnergyBreakdown estimate_energy(const SchedulerStats& stats,
                                std::uint64_t duration_ps,
                                const EnergyParams& params = {});

}  // namespace tvp::mem
