// The memory controller: consumes a time-ordered request stream, drives
// refresh, enforces per-bank activation timing, invokes the mitigation
// engine, and reports every physical row activation / refresh to the
// disturbance model. This is the spine that every experiment runs on.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tvp/dram/disturbance.hpp"
#include "tvp/dram/geometry.hpp"
#include "tvp/dram/refresh.hpp"
#include "tvp/dram/remap.hpp"
#include "tvp/dram/timing.hpp"
#include "tvp/mem/mitigation.hpp"
#include "tvp/trace/record.hpp"
#include "tvp/util/parallel.hpp"
#include "tvp/util/stats.hpp"

namespace tvp::mem {

/// Aggregated controller counters for one run.
struct ControllerStats {
  std::uint64_t demand_acts = 0;      ///< ACTs from the request stream
  std::uint64_t extra_acts = 0;       ///< row activations issued by mitigation
  std::uint64_t fp_extra_acts = 0;    ///< ...whose suspect was NOT a real aggressor
  std::uint64_t triggers = 0;         ///< mitigation decisions (one may cost 1-2 acts)
  std::uint64_t refresh_intervals = 0;
  std::uint64_t rows_refreshed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t delayed_acts = 0;     ///< ACTs stalled by tRC/tRFC
  std::uint64_t first_extra_act_at = 0;  ///< demand-act count at first trigger (0 = never)
  util::RunningStat acts_per_interval;   ///< per active bank
  /// Extra activations binned by window phase (64 bins over RefInt):
  /// shows *when* inside the refresh window a technique spends its
  /// budget (TiVaPRoMi bursts just after the window clear; PARA is flat).
  static constexpr std::size_t kPhaseBins = 64;
  std::array<std::uint64_t, kPhaseBins> extra_acts_by_phase{};

  /// The paper's "Activations Overhead %": extra / demand * 100.
  double overhead_pct() const noexcept {
    return demand_acts
               ? 100.0 * static_cast<double>(extra_acts) / static_cast<double>(demand_acts)
               : 0.0;
  }
  /// The paper's "False Positive Rate %": false-positive extra activations
  /// per demand activation.
  double fpr_pct() const noexcept {
    return demand_acts
               ? 100.0 * static_cast<double>(fp_extra_acts) / static_cast<double>(demand_acts)
               : 0.0;
  }
};

/// Everything the controller needs to run.
struct ControllerConfig {
  dram::Geometry geometry;
  dram::Timing timing;
  dram::RefreshPolicy refresh_policy = dram::RefreshPolicy::kNeighborSequential;
  std::size_t remap_swaps = 16;     ///< spare-row swaps (policy (ii) & remapper)
  bool remap_rows = false;          ///< enable logical->physical remapping
  bool enforce_timing = true;       ///< stall ACTs that violate tRC/tRFC
  /// How far the act_n command reaches: 1 activates the two adjacent
  /// rows (the paper's command); 2 additionally restores the rows at
  /// distance two — the countermeasure to half-double-style attacks
  /// (see the extension_attacks bench). Cost scales accordingly.
  std::uint32_t act_n_radius = 1;
  /// Worker threads for the batched (on_records) hot path: independent
  /// banks of one refresh segment run concurrently, bit-identical to
  /// serial execution (per-bank state is disjoint; shared counters are
  /// slot-and-reduced; flip events are re-sequenced into serial order).
  /// 1 = serial (the default — seed sweeps already parallelize across
  /// runs, so per-run sharding would oversubscribe), 0 = auto
  /// (TVP_JOBS), N = exactly N workers. With bank_jobs > 1 the
  /// aggressor oracle must be safe to call from multiple threads.
  std::size_t bank_jobs = 1;
};

/// Ground-truth oracle: is @p suspect row of @p bank a real aggressor?
/// Supplied by the experiment harness (it knows the attack config); used
/// only for statistics, never visible to the techniques.
using AggressorOracle = std::function<bool(dram::BankId, dram::RowId)>;

class MemoryController {
 public:
  /// @p engine and @p disturbance must outlive the controller.
  MemoryController(ControllerConfig config, MitigationEngine& engine,
                   dram::DisturbanceModel& disturbance, util::Rng& rng);

  /// Feeds one request; records must arrive in non-decreasing time order
  /// (throws std::invalid_argument otherwise).
  void on_record(const trace::AccessRecord& record);

  /// Feeds a batch of requests (same ordering contract as on_record).
  ///
  /// This is the hot path: the batch is split into *refresh segments*
  /// (maximal runs that cross no refresh boundary, so the mitigation
  /// context is constant), each segment is grouped by bank, and every
  /// bank's run is handed to its technique in one on_activates call —
  /// concurrently across banks when cfg.bank_jobs > 1. The observable
  /// result (stats, disturbance state, flip events, RNG streams) is
  /// bit-identical to calling on_record per record, in any jobs setting;
  /// see DESIGN.md "The ACT hot path" for the argument.
  void on_records(const trace::AccessRecord* records, std::size_t count);

  /// Advances refresh processing up to @p time_ps without new requests
  /// (completes the final partial window of a run).
  void advance_to(std::uint64_t time_ps);

  /// Installs the false-positive oracle (optional; without it all extra
  /// activations count as potential false positives = 0 known aggressors).
  void set_aggressor_oracle(AggressorOracle oracle) { oracle_ = std::move(oracle); }

  const ControllerStats& stats() const noexcept { return stats_; }
  const dram::RefreshScheduler& refresh_scheduler() const noexcept { return scheduler_; }
  const dram::RowRemapper& remapper() const noexcept { return remapper_; }

  /// Current refresh interval within the window / globally.
  std::uint32_t interval_in_window() const noexcept {
    return static_cast<std::uint32_t>(global_interval_ % timing_.refresh_intervals);
  }
  std::uint64_t global_interval() const noexcept { return global_interval_; }

 private:
  /// Per-bank working state of one refresh segment. Cache-line aligned
  /// and written only by the worker that owns the bank, so concurrent
  /// shards never share a written line.
  struct alignas(64) BankShard {
    std::vector<std::uint32_t> serials;  ///< segment-serial index per record
    std::vector<BatchedAct> acts;        ///< the bank's ACT run, in order
    std::vector<std::uint32_t> totals;   ///< activations per record (1+extras)
    dram::DisturbanceModel::Lane lane;
    // Per-segment outputs, folded into stats_ by the serial reduce.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t delayed = 0;
    std::uint64_t triggers = 0;
    std::uint64_t extra = 0;
    std::uint64_t fp_extra = 0;
    std::uint64_t first_trigger_serial = 0;  ///< UINT64_MAX = none
    std::uint64_t bank_ready_ps = 0;
  };

  void process_refresh_boundaries(std::uint64_t up_to_ps);
  void refresh_interval_tick();
  void issue_actions(dram::BankId bank, const ActionBuffer& actions,
                     std::uint32_t interval);
  void activate_physical(dram::BankId bank, dram::RowId physical_row,
                         std::uint32_t interval);
  /// Runs one refresh segment (no boundary inside): group by bank,
  /// per-bank batch dispatch + replay (parallel when configured), then
  /// the serial reduce into stats_ / the disturbance model.
  void process_segment(const trace::AccessRecord* records, std::size_t count);
  /// The per-bank half of process_segment (runs on a worker thread).
  void run_bank_shard(dram::BankId bank, const trace::AccessRecord* records,
                      const MitigationContext& ctx);

  ControllerConfig cfg_;
  dram::Timing timing_;
  MitigationEngine& engine_;
  dram::DisturbanceModel& disturbance_;
  dram::RowRemapper remapper_;
  dram::RefreshScheduler scheduler_;
  AggressorOracle oracle_;
  ControllerStats stats_;

  std::uint64_t now_ps_ = 0;
  std::uint64_t global_interval_ = 0;      // intervals completed so far
  std::uint64_t next_refresh_ps_;          // time of the next REF command
  std::vector<std::uint64_t> bank_ready_ps_;
  std::vector<std::uint32_t> interval_acts_;  // per-bank ACTs this interval

  // Batched hot-path scratch (reused across segments; steady-state
  // allocation-free once capacities stabilize).
  std::vector<BankShard> shards_;
  std::vector<dram::DisturbanceModel::Lane*> lane_ptrs_;
  std::vector<std::uint64_t> act_prefix_;  // per-serial activation prefix sums
  std::unique_ptr<util::WorkerPool> pool_;  // only when bank_jobs > 1
};

}  // namespace tvp::mem
