// The memory controller: consumes a time-ordered request stream, drives
// refresh, enforces per-bank activation timing, invokes the mitigation
// engine, and reports every physical row activation / refresh to the
// disturbance model. This is the spine that every experiment runs on.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tvp/dram/disturbance.hpp"
#include "tvp/dram/geometry.hpp"
#include "tvp/dram/refresh.hpp"
#include "tvp/dram/remap.hpp"
#include "tvp/dram/timing.hpp"
#include "tvp/mem/mitigation.hpp"
#include "tvp/trace/record.hpp"
#include "tvp/util/parallel.hpp"
#include "tvp/util/stats.hpp"

namespace tvp::mem {

/// Aggregated controller counters for one run.
struct ControllerStats {
  std::uint64_t demand_acts = 0;      ///< ACTs from the request stream
  std::uint64_t extra_acts = 0;       ///< row activations issued by mitigation
  std::uint64_t fp_extra_acts = 0;    ///< ...whose suspect was NOT a real aggressor
  std::uint64_t triggers = 0;         ///< mitigation decisions (one may cost 1-2 acts)
  std::uint64_t refresh_intervals = 0;
  std::uint64_t rows_refreshed = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t delayed_acts = 0;     ///< ACTs stalled by tRC/tRFC
  std::uint64_t first_extra_act_at = 0;  ///< demand-act count at first trigger (0 = never)
  util::RunningStat acts_per_interval;   ///< per active bank
  /// Extra activations binned by window phase (64 bins over RefInt):
  /// shows *when* inside the refresh window a technique spends its
  /// budget (TiVaPRoMi bursts just after the window clear; PARA is flat).
  static constexpr std::size_t kPhaseBins = 64;
  std::array<std::uint64_t, kPhaseBins> extra_acts_by_phase{};

  /// The paper's "Activations Overhead %": extra / demand * 100.
  double overhead_pct() const noexcept {
    return demand_acts
               ? 100.0 * static_cast<double>(extra_acts) / static_cast<double>(demand_acts)
               : 0.0;
  }
  /// The paper's "False Positive Rate %": false-positive extra activations
  /// per demand activation.
  double fpr_pct() const noexcept {
    return demand_acts
               ? 100.0 * static_cast<double>(fp_extra_acts) / static_cast<double>(demand_acts)
               : 0.0;
  }
};

/// Everything the controller needs to run.
struct ControllerConfig {
  dram::Geometry geometry;
  dram::Timing timing;
  dram::RefreshPolicy refresh_policy = dram::RefreshPolicy::kNeighborSequential;
  std::size_t remap_swaps = 16;     ///< spare-row swaps (policy (ii) & remapper)
  bool remap_rows = false;          ///< enable logical->physical remapping
  bool enforce_timing = true;       ///< stall ACTs that violate tRC/tRFC
  /// How far the act_n command reaches: 1 activates the two adjacent
  /// rows (the paper's command); 2 additionally restores the rows at
  /// distance two — the countermeasure to half-double-style attacks
  /// (see the extension_attacks bench). Cost scales accordingly.
  std::uint32_t act_n_radius = 1;
  /// Worker threads for the batched (on_records) hot path: independent
  /// banks of one refresh segment run concurrently, bit-identical to
  /// serial execution (per-bank state is disjoint; shared counters are
  /// slot-and-reduced; flip events are re-sequenced into serial order).
  /// 1 = serial (the default — seed sweeps already parallelize across
  /// runs, so per-run sharding would oversubscribe), 0 = auto
  /// (TVP_JOBS), N = exactly N workers. With bank_jobs > 1 the
  /// aggressor oracle must be safe to call from multiple threads.
  std::size_t bank_jobs = 1;
  /// Collect the per-stage wall-clock breakdown (StageProfile timers).
  /// Off by default: the act counters are always maintained, but the
  /// clock_gettime calls per segment are taken only when profiling.
  bool profile = false;
};

/// Per-stage breakdown of the columnar hot path, for perf attribution
/// (bench/perf_hotpath --profile). The *_ns timers accumulate only when
/// ControllerConfig::profile is set; the act counters are always live —
/// they are how replay tests prove a partition-indexed corpus actually
/// skipped the re-partition pass.
struct StageProfile {
  std::uint64_t partition_ns = 0;    ///< per-bank lane scatter (+ validation)
  std::uint64_t mitigation_ns = 0;   ///< bank-shard dispatch (techniques + lane bookkeeping)
  std::uint64_t disturbance_ns = 0;  ///< serial reduce + flip re-sequencing/commit
  std::uint64_t scattered_acts = 0;    ///< ACTs partitioned by the controller
  std::uint64_t partitioned_acts = 0;  ///< ACTs fed from pre-built corpus lanes
};

/// Ground-truth oracle: is @p suspect row of @p bank a real aggressor?
/// Supplied by the experiment harness (it knows the attack config); used
/// only for statistics, never visible to the techniques.
using AggressorOracle = std::function<bool(dram::BankId, dram::RowId)>;

class MemoryController {
 public:
  /// @p engine and @p disturbance must outlive the controller.
  MemoryController(ControllerConfig config, MitigationEngine& engine,
                   dram::DisturbanceModel& disturbance, util::Rng& rng);

  /// Feeds one request; records must arrive in non-decreasing time order
  /// (throws std::invalid_argument otherwise).
  void on_record(const trace::AccessRecord& record);

  /// Feeds a batch of requests (same ordering contract as on_record).
  ///
  /// This is the hot path: the batch is split into *refresh segments*
  /// (maximal runs that cross no refresh boundary, so the mitigation
  /// context is constant), each segment is partitioned once into
  /// per-bank SoA lanes (contiguous row / timestamp / sequence columns),
  /// and every bank's lane is handed to its technique in one
  /// on_activates call — concurrently across banks when cfg.bank_jobs
  /// > 1. The observable result (stats, disturbance state, flip events,
  /// RNG streams) is bit-identical to calling on_record per record, in
  /// any jobs setting; see DESIGN.md "The ACT hot path" for the
  /// argument. Setting TVP_COLUMNAR=0 in the environment (read at
  /// construction) forces this entry point to degrade to a serial
  /// on_record loop — the CI determinism job runs both paths.
  void on_records(const trace::AccessRecord* records, std::size_t count);

  /// Like on_records, but with the per-bank partition pre-computed (a
  /// corpus-carried partition index): @p lanes holds @p lane_banks
  /// column views whose serials are indices into @p records. When the
  /// lanes are usable (bank count matches the geometry, every lane row
  /// is in range) the controller feeds them zero-copy and skips the
  /// scatter pass; otherwise it falls back to on_records — same
  /// observable results either way, including the out-of-range throw
  /// semantics.
  void on_records_partitioned(const trace::AccessRecord* records,
                              std::size_t count,
                              const trace::BankLaneView* lanes,
                              std::size_t lane_banks);

  /// Advances refresh processing up to @p time_ps without new requests
  /// (completes the final partial window of a run).
  void advance_to(std::uint64_t time_ps);

  /// Installs the false-positive oracle (optional; without it all extra
  /// activations count as potential false positives = 0 known aggressors).
  void set_aggressor_oracle(AggressorOracle oracle) { oracle_ = std::move(oracle); }

  const ControllerStats& stats() const noexcept { return stats_; }
  const StageProfile& stage_profile() const noexcept { return profile_; }
  const dram::RefreshScheduler& refresh_scheduler() const noexcept { return scheduler_; }
  const dram::RowRemapper& remapper() const noexcept { return remapper_; }

  /// Current refresh interval within the window / globally.
  std::uint32_t interval_in_window() const noexcept {
    return static_cast<std::uint32_t>(global_interval_ % timing_.refresh_intervals);
  }
  std::uint64_t global_interval() const noexcept { return global_interval_; }

 private:
  /// Per-bank working state of one refresh segment. Cache-line aligned
  /// and written only by the worker that owns the bank, so concurrent
  /// shards never share a written line.
  ///
  /// The lane_* pointers are the columnar view run_bank_shard consumes:
  /// on the scatter path they point into the shard-owned column vectors
  /// (serial_base 0); on the corpus-partitioned path they borrow the
  /// mmap'd partition columns directly (serials are span-relative, so
  /// serial_base rebases them to the segment).
  struct alignas(64) BankShard {
    // Scatter-built columns (SoA; filled by the partition pass).
    std::vector<std::uint32_t> serials;   ///< segment-serial per record
    std::vector<dram::RowId> rows;        ///< logical row per record
    std::vector<std::uint64_t> times;     ///< time_ps per record
    std::vector<std::uint8_t> write_col;  ///< write flag per record
    std::vector<std::uint32_t> totals;    ///< activations per record (1+extras)
    // The lane view actually consumed (owned columns or borrowed corpus
    // partition columns).
    const dram::RowId* lane_rows = nullptr;
    const std::uint64_t* lane_times = nullptr;
    const std::uint32_t* lane_serials = nullptr;
    const std::uint8_t* lane_writes = nullptr;
    std::size_t lane_count = 0;
    std::uint32_t serial_base = 0;
    dram::DisturbanceModel::Lane lane;
    // Per-segment outputs, folded into stats_ by the serial reduce.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t delayed = 0;
    std::uint64_t triggers = 0;
    std::uint64_t extra = 0;
    std::uint64_t fp_extra = 0;
    std::uint64_t first_trigger_serial = 0;  ///< UINT64_MAX = none
    std::uint64_t bank_ready_ps = 0;
  };

  void process_refresh_boundaries(std::uint64_t up_to_ps);
  void refresh_interval_tick();
  void issue_actions(dram::BankId bank, const ActionBuffer& actions,
                     std::uint32_t interval);
  void activate_physical(dram::BankId bank, dram::RowId physical_row,
                         std::uint32_t interval);
  /// Runs one refresh segment (no boundary inside): partition into
  /// per-bank lanes, per-bank lane dispatch + replay (parallel when
  /// configured), then the serial reduce into stats_ / the disturbance
  /// model.
  void process_segment(const trace::AccessRecord* records, std::size_t count);
  /// Shard reset common to both segment paths.
  void reset_shards();
  /// The shared back half of a segment: run every bank shard (pool or
  /// serial), then the serial reduce + flip commit. @p valid is the
  /// segment's record count.
  void run_segment(std::size_t valid, const MitigationContext& ctx);
  /// The per-bank half of a segment (runs on a worker thread), driven
  /// entirely by the shard's lane_* columns.
  void run_bank_shard(dram::BankId bank, const MitigationContext& ctx);

  ControllerConfig cfg_;
  bool columnar_ = true;  ///< TVP_COLUMNAR != "0" (read at construction)
  dram::Timing timing_;
  MitigationEngine& engine_;
  dram::DisturbanceModel& disturbance_;
  dram::RowRemapper remapper_;
  dram::RefreshScheduler scheduler_;
  AggressorOracle oracle_;
  ControllerStats stats_;

  std::uint64_t now_ps_ = 0;
  std::uint64_t global_interval_ = 0;      // intervals completed so far
  std::uint64_t next_refresh_ps_;          // time of the next REF command
  std::vector<std::uint64_t> bank_ready_ps_;
  std::vector<std::uint32_t> interval_acts_;  // per-bank ACTs this interval

  // Batched hot-path scratch (reused across segments; steady-state
  // allocation-free once capacities stabilize).
  std::vector<BankShard> shards_;
  std::vector<dram::DisturbanceModel::Lane*> lane_ptrs_;
  std::vector<std::uint64_t> act_prefix_;  // per-serial activation prefix sums
  std::vector<std::size_t> lane_cursor_;   // per-bank position in corpus lanes
  std::unique_ptr<util::WorkerPool> pool_;  // only when bank_jobs > 1
  StageProfile profile_;
};

}  // namespace tvp::mem
