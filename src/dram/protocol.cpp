#include "tvp/dram/protocol.hpp"

#include <stdexcept>

#include "tvp/util/table.hpp"

namespace tvp::dram {

const char* to_string(Command command) noexcept {
  switch (command) {
    case Command::kActivate: return "ACT";
    case Command::kPrecharge: return "PRE";
    case Command::kRead: return "RD";
    case Command::kWrite: return "WR";
    case Command::kRefresh: return "REF";
  }
  return "?";
}

ProtocolChecker::ProtocolChecker(std::uint32_t banks, ProtocolTiming timing)
    : timing_(timing) {
  if (banks == 0) throw std::invalid_argument("ProtocolChecker: zero banks");
  banks_.resize(banks);
}

std::optional<std::string> ProtocolChecker::fail(const TimedCommand& cmd,
                                                 const std::string& why) {
  const std::string text =
      util::strfmt("%s bank %u @ %llu ps: %s", to_string(cmd.command), cmd.bank,
                   static_cast<unsigned long long>(cmd.time_ps), why.c_str());
  log_.push_back(text);
  return text;
}

std::optional<std::string> ProtocolChecker::check(const TimedCommand& cmd) {
  ++checked_;
  if (cmd.time_ps < last_time_)
    return fail(cmd, "commands not in time order");
  last_time_ = cmd.time_ps;
  if (cmd.bank >= banks_.size()) return fail(cmd, "bank out of range");
  BankState& bank = banks_[cmd.bank];

  if (cmd.time_ps < bank.ref_done_ps)
    return fail(cmd, util::strfmt("inside refresh blackout (until %llu)",
                                  static_cast<unsigned long long>(bank.ref_done_ps)));

  switch (cmd.command) {
    case Command::kActivate: {
      if (bank.open) return fail(cmd, "ACT on a bank with an open row");
      if (bank.ever_activated && cmd.time_ps < bank.last_act_ps + timing_.t_rc_ps)
        return fail(cmd, "tRC violation (ACT to ACT)");
      if (bank.ever_precharged && cmd.time_ps < bank.last_pre_ps + timing_.t_rp_ps)
        return fail(cmd, "tRP violation (PRE to ACT)");
      // tFAW: this must be no earlier than the 4th-last ACT + tFAW.
      if (recent_acts_.size() >= 4 &&
          cmd.time_ps < recent_acts_[recent_acts_.size() - 4] + timing_.t_faw_ps)
        return fail(cmd, "tFAW violation (five ACTs in the window)");
      recent_acts_.push_back(cmd.time_ps);
      if (recent_acts_.size() > 8) recent_acts_.pop_front();
      bank.open = true;
      bank.row = cmd.row;
      bank.last_act_ps = cmd.time_ps;
      bank.ever_activated = true;
      break;
    }
    case Command::kPrecharge: {
      if (!bank.open) return fail(cmd, "PRE on a closed bank");
      if (cmd.time_ps < bank.last_act_ps + timing_.t_ras_ps)
        return fail(cmd, "tRAS violation (ACT to PRE)");
      bank.open = false;
      bank.last_pre_ps = cmd.time_ps;
      bank.ever_precharged = true;
      break;
    }
    case Command::kRead:
    case Command::kWrite: {
      if (!bank.open) return fail(cmd, "column access on a closed bank");
      if (cmd.time_ps < bank.last_act_ps + timing_.t_rcd_ps)
        return fail(cmd, "tRCD violation (ACT to column)");
      break;
    }
    case Command::kRefresh: {
      if (bank.open) return fail(cmd, "REF with an open row (precharge first)");
      bank.ref_done_ps = cmd.time_ps + timing_.t_rfc_ps;
      break;
    }
  }
  return std::nullopt;
}

}  // namespace tvp::dram
