#include "tvp/dram/refresh.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::dram {

const char* to_string(RefreshPolicy policy) noexcept {
  switch (policy) {
    case RefreshPolicy::kNeighborSequential: return "neighbor-sequential";
    case RefreshPolicy::kNeighborRemapped: return "neighbor-remapped";
    case RefreshPolicy::kRandom: return "random-permutation";
    case RefreshPolicy::kCounterMask: return "counter-mask";
  }
  return "?";
}

RefreshScheduler::RefreshScheduler(RowId rows_per_bank,
                                   std::uint32_t refresh_intervals,
                                   RefreshPolicy policy, util::Rng& rng,
                                   std::size_t remap_swaps)
    : rows_(rows_per_bank), intervals_(refresh_intervals), policy_(policy) {
  if (rows_ == 0 || intervals_ == 0)
    throw std::invalid_argument("RefreshScheduler: zero rows or intervals");
  if (rows_ % intervals_ != 0)
    throw std::invalid_argument(
        "RefreshScheduler: rows_per_bank must be a multiple of refresh_intervals");

  const RowId rpi = rows_ / intervals_;
  switch (policy_) {
    case RefreshPolicy::kNeighborSequential:
      break;  // purely arithmetic
    case RefreshPolicy::kCounterMask:
      if (!util::is_pow2(intervals_))
        throw std::invalid_argument(
            "RefreshScheduler: counter-mask policy needs power-of-two intervals");
      mask_ = static_cast<std::uint32_t>(rng.below(intervals_));
      break;
    case RefreshPolicy::kNeighborRemapped: {
      // Sequential order over *logical* slots, with a few rows swapped
      // into foreign slots (spare-row replacement).
      row_to_interval_.resize(rows_);
      for (RowId r = 0; r < rows_; ++r) row_to_interval_[r] = r / rpi;
      RowRemapper remap(rows_, remap_swaps, rng);
      for (RowId r = 0; r < rows_; ++r) {
        const RowId phys = remap.to_physical(r);
        if (phys != r) row_to_interval_[phys] = r / rpi;
      }
      break;
    }
    case RefreshPolicy::kRandom: {
      // Fixed random permutation of rows, chunked into intervals.
      std::vector<RowId> perm(rows_);
      std::iota(perm.begin(), perm.end(), 0u);
      for (RowId i = rows_ - 1; i > 0; --i)
        std::swap(perm[i], perm[rng.below(i + 1)]);
      row_to_interval_.resize(rows_);
      for (RowId idx = 0; idx < rows_; ++idx)
        row_to_interval_[perm[idx]] = idx / rpi;
      break;
    }
  }

  if (!row_to_interval_.empty()) {
    interval_rows_.resize(intervals_);
    for (auto& v : interval_rows_) v.reserve(rpi);
    for (RowId r = 0; r < rows_; ++r)
      interval_rows_[row_to_interval_[r]].push_back(r);
  }
}

std::vector<RowId> RefreshScheduler::rows_in_interval(std::uint32_t interval) const {
  interval %= intervals_;
  const RowId rpi = rows_per_interval();
  switch (policy_) {
    case RefreshPolicy::kNeighborSequential: {
      std::vector<RowId> rows(rpi);
      std::iota(rows.begin(), rows.end(), interval * rpi);
      return rows;
    }
    case RefreshPolicy::kCounterMask: {
      const std::uint32_t slot = (interval ^ mask_) % intervals_;
      std::vector<RowId> rows(rpi);
      std::iota(rows.begin(), rows.end(), slot * rpi);
      return rows;
    }
    case RefreshPolicy::kNeighborRemapped:
    case RefreshPolicy::kRandom:
      return interval_rows_[interval];
  }
  return {};
}

std::uint32_t RefreshScheduler::interval_of_row(RowId row) const noexcept {
  const RowId rpi = rows_per_interval();
  switch (policy_) {
    case RefreshPolicy::kNeighborSequential:
      return static_cast<std::uint32_t>(row / rpi);
    case RefreshPolicy::kCounterMask:
      return (static_cast<std::uint32_t>(row / rpi) ^ mask_) % intervals_;
    case RefreshPolicy::kNeighborRemapped:
    case RefreshPolicy::kRandom:
      return row_to_interval_[row];
  }
  return 0;
}

}  // namespace tvp::dram
