#include "tvp/dram/geometry.hpp"

#include <stdexcept>

#include "tvp/util/bitutil.hpp"

namespace tvp::dram {

void Geometry::validate() const {
  if (channels == 0 || ranks_per_channel == 0 || banks_per_rank == 0 ||
      rows_per_bank == 0 || cols_per_row == 0 || bytes_per_col == 0)
    throw std::invalid_argument("Geometry: all dimensions must be nonzero");
  if (!util::is_pow2(rows_per_bank))
    throw std::invalid_argument("Geometry: rows_per_bank must be a power of two");
  if (!util::is_pow2(cols_per_row) || !util::is_pow2(bytes_per_col) ||
      !util::is_pow2(banks_per_rank) || !util::is_pow2(ranks_per_channel) ||
      !util::is_pow2(channels))
    throw std::invalid_argument("Geometry: dimensions must be powers of two");
}

const char* to_string(AddressMapPolicy policy) noexcept {
  switch (policy) {
    case AddressMapPolicy::kRowBankCol: return "row:bank:col";
    case AddressMapPolicy::kBankRowCol: return "bank:row:col";
    case AddressMapPolicy::kRowColBank: return "row:col:bank";
  }
  return "?";
}

AddressMapper::AddressMapper(Geometry geometry, AddressMapPolicy policy)
    : geom_(geometry), policy_(policy) {
  geom_.validate();
  col_bits_ = util::floor_log2(static_cast<std::uint64_t>(geom_.cols_per_row) *
                               geom_.bytes_per_col);
  bank_bits_ = util::floor_log2<std::uint64_t>(geom_.banks_per_rank);
  rank_bits_ = util::floor_log2<std::uint64_t>(geom_.ranks_per_channel);
  chan_bits_ = util::floor_log2<std::uint64_t>(geom_.channels);
  row_bits_ = util::floor_log2<std::uint64_t>(geom_.rows_per_bank);
}

namespace {
// Extracts @p bits bits starting at *shift and advances the cursor.
std::uint64_t take(std::uint64_t addr, unsigned* shift, unsigned bits) noexcept {
  const std::uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  const std::uint64_t v = (addr >> *shift) & mask;
  *shift += bits;
  return v;
}

// Places @p value at *shift and advances the cursor.
void put(std::uint64_t* addr, unsigned* shift, unsigned bits, std::uint64_t value) noexcept {
  const std::uint64_t mask = bits >= 64 ? ~0ull : ((1ull << bits) - 1);
  *addr |= (value & mask) << *shift;
  *shift += bits;
}
}  // namespace

Address AddressMapper::decode(std::uint64_t phys_addr) const noexcept {
  Address a;
  unsigned shift = 0;
  switch (policy_) {
    case AddressMapPolicy::kRowBankCol:
      a.col = static_cast<std::uint32_t>(take(phys_addr, &shift, col_bits_)) /
              geom_.bytes_per_col;
      shift = col_bits_;
      a.bank = static_cast<std::uint32_t>(take(phys_addr, &shift, bank_bits_));
      a.rank = static_cast<std::uint32_t>(take(phys_addr, &shift, rank_bits_));
      a.channel = static_cast<std::uint32_t>(take(phys_addr, &shift, chan_bits_));
      a.row = static_cast<RowId>(take(phys_addr, &shift, row_bits_));
      break;
    case AddressMapPolicy::kBankRowCol:
      a.col = static_cast<std::uint32_t>(take(phys_addr, &shift, col_bits_)) /
              geom_.bytes_per_col;
      shift = col_bits_;
      a.row = static_cast<RowId>(take(phys_addr, &shift, row_bits_));
      a.bank = static_cast<std::uint32_t>(take(phys_addr, &shift, bank_bits_));
      a.rank = static_cast<std::uint32_t>(take(phys_addr, &shift, rank_bits_));
      a.channel = static_cast<std::uint32_t>(take(phys_addr, &shift, chan_bits_));
      break;
    case AddressMapPolicy::kRowColBank: {
      const unsigned line_bits = util::floor_log2<std::uint64_t>(geom_.bytes_per_col);
      take(phys_addr, &shift, line_bits);  // byte-in-line
      a.bank = static_cast<std::uint32_t>(take(phys_addr, &shift, bank_bits_));
      a.rank = static_cast<std::uint32_t>(take(phys_addr, &shift, rank_bits_));
      a.channel = static_cast<std::uint32_t>(take(phys_addr, &shift, chan_bits_));
      a.col = static_cast<std::uint32_t>(
          take(phys_addr, &shift, col_bits_ - line_bits));
      a.row = static_cast<RowId>(take(phys_addr, &shift, row_bits_));
      break;
    }
  }
  return a;
}

std::uint64_t AddressMapper::encode(const Address& a) const noexcept {
  std::uint64_t addr = 0;
  unsigned shift = 0;
  switch (policy_) {
    case AddressMapPolicy::kRowBankCol:
      put(&addr, &shift, col_bits_,
          static_cast<std::uint64_t>(a.col) * geom_.bytes_per_col);
      put(&addr, &shift, bank_bits_, a.bank);
      put(&addr, &shift, rank_bits_, a.rank);
      put(&addr, &shift, chan_bits_, a.channel);
      put(&addr, &shift, row_bits_, a.row);
      break;
    case AddressMapPolicy::kBankRowCol:
      put(&addr, &shift, col_bits_,
          static_cast<std::uint64_t>(a.col) * geom_.bytes_per_col);
      put(&addr, &shift, row_bits_, a.row);
      put(&addr, &shift, bank_bits_, a.bank);
      put(&addr, &shift, rank_bits_, a.rank);
      put(&addr, &shift, chan_bits_, a.channel);
      break;
    case AddressMapPolicy::kRowColBank: {
      const unsigned line_bits = util::floor_log2<std::uint64_t>(geom_.bytes_per_col);
      put(&addr, &shift, line_bits, 0);
      put(&addr, &shift, bank_bits_, a.bank);
      put(&addr, &shift, rank_bits_, a.rank);
      put(&addr, &shift, chan_bits_, a.channel);
      put(&addr, &shift, col_bits_ - line_bits, a.col);
      put(&addr, &shift, row_bits_, a.row);
      break;
    }
  }
  return addr;
}

}  // namespace tvp::dram
