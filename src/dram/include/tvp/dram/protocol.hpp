// DDR command-protocol checker.
//
// Validates a timed command stream against the JEDEC-style constraints a
// real device enforces: bank state legality (no ACT on an open bank, no
// column access on a closed one), tRC / tRCD / tRAS / tRP spacing, the
// four-activate window, and refresh blackouts. The command scheduler
// exposes its stream through an observer hook; the test suite replays
// random workloads through the checker to prove the scheduler never
// emits an illegal sequence — the simulator-grade equivalent of hooking
// a protocol analyser to the bus.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "tvp/dram/geometry.hpp"

namespace tvp::dram {

enum class Command { kActivate, kPrecharge, kRead, kWrite, kRefresh };

const char* to_string(Command command) noexcept;

/// One command on the bus.
struct TimedCommand {
  Command command = Command::kActivate;
  BankId bank = 0;
  RowId row = 0;  ///< meaningful for kActivate
  std::uint64_t time_ps = 0;
};

/// Timing constraints the checker enforces (picoseconds).
struct ProtocolTiming {
  std::uint64_t t_rc_ps = 45'000;
  std::uint64_t t_rcd_ps = 13'750;
  std::uint64_t t_ras_ps = 32'000;
  std::uint64_t t_rp_ps = 13'750;
  std::uint64_t t_rfc_ps = 350'000;
  std::uint64_t t_faw_ps = 21'000;
};

class ProtocolChecker {
 public:
  ProtocolChecker(std::uint32_t banks, ProtocolTiming timing);

  /// Feeds one command (non-decreasing time required). Returns a
  /// human-readable violation description, or nullopt when legal. All
  /// violations are also retained in violations().
  std::optional<std::string> check(const TimedCommand& command);

  std::uint64_t commands_checked() const noexcept { return checked_; }
  const std::vector<std::string>& violations() const noexcept { return log_; }
  bool clean() const noexcept { return log_.empty(); }

 private:
  struct BankState {
    bool open = false;
    RowId row = 0;
    std::uint64_t last_act_ps = 0;
    std::uint64_t last_pre_ps = 0;
    std::uint64_t ref_done_ps = 0;
    bool ever_activated = false;
    bool ever_precharged = false;
  };

  std::optional<std::string> fail(const TimedCommand& cmd, const std::string& why);

  ProtocolTiming timing_;
  std::vector<BankState> banks_;
  std::deque<std::uint64_t> recent_acts_;  // channel-wide, for tFAW
  std::uint64_t last_time_ = 0;
  std::uint64_t checked_ = 0;
  std::vector<std::string> log_;
};

}  // namespace tvp::dram
