// Row-Hammer disturbance model.
//
// Tracks, for every physical row, the number of neighbour activations
// accumulated since the row's charge was last restored (by its own ACT,
// by a refresh, or by a mitigation-issued activate-neighbours command).
// When the accumulated disturbance reaches the flip threshold (139 K
// activations per [12], Table I), a bit-flip event is recorded. This is
// the ground truth against which all nine mitigation techniques are
// judged: a technique "fails" iff a flip event occurs.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/dram/geometry.hpp"

namespace tvp::dram {

/// Parameters of the physical disturbance process.
struct DisturbanceParams {
  /// Combined aggressor activations that flip a victim (Table I: 139 K).
  std::uint32_t flip_threshold = 139'000;
  /// How many rows on each side of an activated row are disturbed.
  /// 1 reproduces the paper's model; 2 enables the half-double-style
  /// extension study (disturbance at distance 2 is attenuated).
  std::uint32_t blast_radius = 1;
  /// Disturbance contributed to rows at distance 2 (per activation),
  /// expressed in 1/256 units. Only used when blast_radius == 2.
  std::uint32_t distance2_weight_q8 = 16;  // 1/16 of a distance-1 hit
  /// Cell-strength variation (extension): per-row thresholds drawn
  /// uniformly from [flip_threshold * (1 - v), flip_threshold * (1 + v)]
  /// where v = variation_pct / 100. Real DRAM has weak rows; defences
  /// tuned to the nominal threshold must survive the weak tail. 0
  /// reproduces the paper's uniform model.
  std::uint32_t variation_pct = 0;
  /// Seed for the (device-fixed) per-row threshold draw.
  std::uint64_t variation_seed = 0x5EED;
};

/// One recorded bit flip.
struct FlipEvent {
  BankId bank = 0;
  RowId row = 0;         // physical row that flipped
  std::uint64_t at_activation = 0;  // global activation count when it flipped
  std::uint32_t interval = 0;       // refresh interval index when it flipped
};

/// Exact per-row disturbance bookkeeping for one memory system.
///
/// All row indices are *physical*. Activations must be reported through
/// on_activate(); refreshes through on_refresh_row(). The model never
/// throttles or mitigates — it only observes.
class DisturbanceModel {
 public:
  DisturbanceModel(std::uint32_t banks, RowId rows_per_bank,
                   DisturbanceParams params = {});

  const DisturbanceParams& params() const noexcept { return params_; }
  std::uint32_t banks() const noexcept { return banks_; }
  RowId rows_per_bank() const noexcept { return rows_; }

  /// Reports an activation of @p row in @p bank. Disturbs neighbours,
  /// restores the activated row's own charge.
  /// @p interval is the current refresh interval (for flip reporting).
  void on_activate(BankId bank, RowId row, std::uint32_t interval);

  /// Reports a refresh of @p row (charge restored, no disturbance).
  void on_refresh_row(BankId bank, RowId row);

  /// Accumulated disturbance (in 1/256 units of a distance-1 hit) of a
  /// row; mostly for tests and diagnostics.
  std::uint64_t disturbance_q8(BankId bank, RowId row) const;

  /// Total activations observed so far.
  std::uint64_t activations() const noexcept { return activations_; }

  /// All flips recorded so far (at most one per row per charge period).
  const std::vector<FlipEvent>& flips() const noexcept { return flips_; }
  bool any_flip() const noexcept { return !flips_.empty(); }

  /// Highest disturbance (q8) currently accumulated anywhere — how close
  /// the system came to a flip.
  std::uint64_t peak_disturbance_q8() const noexcept { return peak_q8_; }

  /// This row's flip threshold in activations (varies per row when
  /// variation_pct > 0; the draw is fixed per device/seed).
  std::uint32_t threshold_of(BankId bank, RowId row) const;

  /// Clears counters and flip history (new experiment).
  void reset();

  /// A per-bank shard of the model for one parallel region.
  ///
  /// Per-row charge state (counts_/flipped_) is naturally disjoint per
  /// bank, so a Lane mutates it directly; the *shared* members
  /// (activations_, peak_q8_, flips_) are accumulated lane-locally and
  /// folded back by commit_lanes() in a way that is bit-identical to
  /// serial execution. Each activation is tagged with its position in
  /// the serial order — (serial, offset) where `serial` is the record's
  /// index within the region and `offset` numbers the activations that
  /// record performs (0 = the demand ACT, 1.. = mitigation extras in
  /// issue order) — so commit_lanes can re-sequence flip events and
  /// reconstruct their exact at_activation values via a prefix sum of
  /// per-record activation totals.
  ///
  /// Lanes of distinct banks may run on different threads; a Lane itself
  /// is not thread-safe. A Lane is bound to (model, bank) once and
  /// reused across regions; commit_lanes resets it for the next region.
  class Lane {
   public:
    Lane() = default;

    /// Same physical effect as DisturbanceModel::on_activate for the
    /// lane's bank; see the class comment for the (serial, offset) tag.
    void on_activate(RowId row, std::uint32_t interval, std::uint32_t serial,
                     std::uint32_t offset);

    /// Activations performed through this lane since the last commit.
    std::uint64_t activations() const noexcept { return activations_; }
    bool has_pending_flips() const noexcept { return !pending_.empty(); }

   private:
    friend class DisturbanceModel;
    struct PendingFlip {
      RowId row = 0;
      std::uint32_t interval = 0;
      std::uint32_t serial = 0;
      std::uint32_t offset = 0;
    };
    void disturb(RowId row, std::uint64_t amount_q8, std::uint32_t interval,
                 std::uint32_t serial, std::uint32_t offset);

    DisturbanceModel* model_ = nullptr;
    BankId bank_ = 0;
    std::uint64_t activations_ = 0;
    std::uint64_t peak_q8_ = 0;
    std::vector<PendingFlip> pending_;
  };

  /// Binds a lane to @p bank. At most one live lane per bank; the lane
  /// must not outlive the model.
  Lane lane(BankId bank);

  /// Folds a region's lanes back into the model (serial; call after the
  /// parallel region joins). @p prefix re-sequences flips: prefix[j] is
  /// the number of activations performed by all records with serial
  /// index < j in the region (across every lane), so a flip tagged
  /// (serial, offset) happened at global activation
  /// activations() + prefix[serial] + offset + 1. @p prefix may be null
  /// when no lane has pending flips. Lanes are reset for reuse.
  void commit_lanes(Lane* const* lanes, std::size_t n_lanes,
                    const std::uint64_t* prefix);

 private:
  void disturb(BankId bank, RowId row, std::uint64_t amount_q8,
               std::uint32_t interval);
  std::uint64_t& cell(BankId bank, RowId row) {
    return counts_[static_cast<std::size_t>(bank) * rows_ + row];
  }

  std::uint32_t banks_;
  RowId rows_;
  DisturbanceParams params_;
  std::vector<std::uint64_t> counts_;  // q8 disturbance per (bank, row)
  std::vector<std::uint32_t> thresholds_;  // per (bank, row); empty = uniform
  std::vector<std::uint8_t> flipped_;  // flip latched until next restore
  std::vector<FlipEvent> flips_;
  std::uint64_t activations_ = 0;
  std::uint64_t peak_q8_ = 0;
};

// Lane's per-activation path is defined inline: it runs once per demand
// or mitigation ACT (10^8+ calls per campaign) and the bodies are a few
// loads and compares — the out-of-line call cost would rival the work.

inline void DisturbanceModel::Lane::disturb(RowId row, std::uint64_t amount_q8,
                                            std::uint32_t interval,
                                            std::uint32_t serial,
                                            std::uint32_t offset) {
  const std::size_t idx = static_cast<std::size_t>(bank_) * model_->rows_ + row;
  auto& c = model_->counts_[idx];
  c += amount_q8;
  if (c > peak_q8_) peak_q8_ = c;
  const std::uint64_t threshold_q8 =
      static_cast<std::uint64_t>(model_->thresholds_.empty()
                                     ? model_->params_.flip_threshold
                                     : model_->thresholds_[idx])
      << 8;
  if (c >= threshold_q8 && !model_->flipped_[idx]) {
    model_->flipped_[idx] = 1;
    pending_.push_back(PendingFlip{row, interval, serial, offset});
  }
}

inline void DisturbanceModel::Lane::on_activate(RowId row,
                                                std::uint32_t interval,
                                                std::uint32_t serial,
                                                std::uint32_t offset) {
  ++activations_;
  // The activated row's own charge is restored (no shared state touched:
  // the (bank, row) cell belongs to this lane's bank).
  const std::size_t idx = static_cast<std::size_t>(bank_) * model_->rows_ + row;
  model_->counts_[idx] = 0;
  model_->flipped_[idx] = 0;
  const RowId rows = model_->rows_;
  if (row > 0) disturb(row - 1, 256, interval, serial, offset);
  if (row + 1 < rows) disturb(row + 1, 256, interval, serial, offset);
  if (model_->params_.blast_radius >= 2) {
    const std::uint64_t w = model_->params_.distance2_weight_q8;
    if (w != 0) {
      if (row > 1) disturb(row - 2, w, interval, serial, offset);
      if (row + 2 < rows) disturb(row + 2, w, interval, serial, offset);
    }
  }
}

}  // namespace tvp::dram
