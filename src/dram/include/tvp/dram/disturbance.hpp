// Row-Hammer disturbance model.
//
// Tracks, for every physical row, the number of neighbour activations
// accumulated since the row's charge was last restored (by its own ACT,
// by a refresh, or by a mitigation-issued activate-neighbours command).
// When the accumulated disturbance reaches the flip threshold (139 K
// activations per [12], Table I), a bit-flip event is recorded. This is
// the ground truth against which all nine mitigation techniques are
// judged: a technique "fails" iff a flip event occurs.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/dram/geometry.hpp"

namespace tvp::dram {

/// Parameters of the physical disturbance process.
struct DisturbanceParams {
  /// Combined aggressor activations that flip a victim (Table I: 139 K).
  std::uint32_t flip_threshold = 139'000;
  /// How many rows on each side of an activated row are disturbed.
  /// 1 reproduces the paper's model; 2 enables the half-double-style
  /// extension study (disturbance at distance 2 is attenuated).
  std::uint32_t blast_radius = 1;
  /// Disturbance contributed to rows at distance 2 (per activation),
  /// expressed in 1/256 units. Only used when blast_radius == 2.
  std::uint32_t distance2_weight_q8 = 16;  // 1/16 of a distance-1 hit
  /// Cell-strength variation (extension): per-row thresholds drawn
  /// uniformly from [flip_threshold * (1 - v), flip_threshold * (1 + v)]
  /// where v = variation_pct / 100. Real DRAM has weak rows; defences
  /// tuned to the nominal threshold must survive the weak tail. 0
  /// reproduces the paper's uniform model.
  std::uint32_t variation_pct = 0;
  /// Seed for the (device-fixed) per-row threshold draw.
  std::uint64_t variation_seed = 0x5EED;
};

/// One recorded bit flip.
struct FlipEvent {
  BankId bank = 0;
  RowId row = 0;         // physical row that flipped
  std::uint64_t at_activation = 0;  // global activation count when it flipped
  std::uint32_t interval = 0;       // refresh interval index when it flipped
};

/// Exact per-row disturbance bookkeeping for one memory system.
///
/// All row indices are *physical*. Activations must be reported through
/// on_activate(); refreshes through on_refresh_row(). The model never
/// throttles or mitigates — it only observes.
class DisturbanceModel {
 public:
  DisturbanceModel(std::uint32_t banks, RowId rows_per_bank,
                   DisturbanceParams params = {});

  const DisturbanceParams& params() const noexcept { return params_; }
  std::uint32_t banks() const noexcept { return banks_; }
  RowId rows_per_bank() const noexcept { return rows_; }

  /// Reports an activation of @p row in @p bank. Disturbs neighbours,
  /// restores the activated row's own charge.
  /// @p interval is the current refresh interval (for flip reporting).
  void on_activate(BankId bank, RowId row, std::uint32_t interval);

  /// Reports a refresh of @p row (charge restored, no disturbance).
  void on_refresh_row(BankId bank, RowId row);

  /// Accumulated disturbance (in 1/256 units of a distance-1 hit) of a
  /// row; mostly for tests and diagnostics.
  std::uint64_t disturbance_q8(BankId bank, RowId row) const;

  /// Total activations observed so far.
  std::uint64_t activations() const noexcept { return activations_; }

  /// All flips recorded so far (at most one per row per charge period).
  const std::vector<FlipEvent>& flips() const noexcept { return flips_; }
  bool any_flip() const noexcept { return !flips_.empty(); }

  /// Highest disturbance (q8) currently accumulated anywhere — how close
  /// the system came to a flip.
  std::uint64_t peak_disturbance_q8() const noexcept { return peak_q8_; }

  /// This row's flip threshold in activations (varies per row when
  /// variation_pct > 0; the draw is fixed per device/seed).
  std::uint32_t threshold_of(BankId bank, RowId row) const;

  /// Clears counters and flip history (new experiment).
  void reset();

 private:
  void disturb(BankId bank, RowId row, std::uint64_t amount_q8,
               std::uint32_t interval);
  std::uint64_t& cell(BankId bank, RowId row) {
    return counts_[static_cast<std::size_t>(bank) * rows_ + row];
  }

  std::uint32_t banks_;
  RowId rows_;
  DisturbanceParams params_;
  std::vector<std::uint64_t> counts_;  // q8 disturbance per (bank, row)
  std::vector<std::uint32_t> thresholds_;  // per (bank, row); empty = uniform
  std::vector<std::uint8_t> flipped_;  // flip latched until next restore
  std::vector<FlipEvent> flips_;
  std::uint64_t activations_ = 0;
  std::uint64_t peak_q8_ = 0;
};

}  // namespace tvp::dram
