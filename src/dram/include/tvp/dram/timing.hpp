// DRAM timing parameters and refresh arithmetic.
//
// Values mirror Table I of the paper: a DDR4 device with a 64 ms refresh
// window split into 8192 refresh intervals of ~7.8 us, tRC (activate to
// activate, same bank) of 45 ns and tRFC (refresh time) of 350 ns.
#pragma once

#include <cstdint>

namespace tvp::dram {

/// All times in picoseconds; the mitigation logic runs at clock_hz.
struct Timing {
  std::uint64_t clock_hz = 1'200'000'000;     // mitigation / IO clock
  std::uint64_t t_rc_ps = 45'000;             // ACT-to-ACT, same bank
  std::uint64_t t_rfc_ps = 350'000;           // refresh command duration
  std::uint64_t t_refw_ps = 64'000'000'000;   // refresh window (64 ms)
  std::uint32_t refresh_intervals = 8192;     // RefInt per window

  /// Duration of one refresh interval (tREFI) in picoseconds.
  constexpr std::uint64_t t_refi_ps() const noexcept {
    return t_refw_ps / refresh_intervals;
  }

  /// Picoseconds of one mitigation clock cycle.
  constexpr double t_ck_ps() const noexcept {
    return 1e12 / static_cast<double>(clock_hz);
  }

  /// Maximum row activations that fit into one refresh interval of one
  /// bank (the paper quotes 165 for DDR4, following TWiCe [13]).
  constexpr std::uint32_t max_acts_per_interval() const noexcept {
    return static_cast<std::uint32_t>((t_refi_ps() - t_rfc_ps) / t_rc_ps);
  }

  /// Cycle budget for the mitigation FSM loop after an ACT (must finish
  /// before the next ACT can arrive): floor(tRC / tCK). 54 for DDR4.
  constexpr std::uint32_t act_cycle_budget() const noexcept {
    return static_cast<std::uint32_t>(
        static_cast<double>(t_rc_ps) / t_ck_ps());
  }

  /// Cycle budget for the FSM loop after a REF: floor(tRFC / tCK).
  /// 420 for DDR4.
  constexpr std::uint32_t ref_cycle_budget() const noexcept {
    return static_cast<std::uint32_t>(
        static_cast<double>(t_rfc_ps) / t_ck_ps());
  }

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;
};

/// DDR4 timing per Table I (1.2 GHz, 64 ms / 8192 intervals).
Timing ddr4_timing() noexcept;

/// DDR3 timing for the FPGA memory-controller port discussed in
/// Section IV (320 MHz controller clock; same refresh structure).
Timing ddr3_timing() noexcept;

/// DDR5-class timing (extension; post-dates the paper): 2.4 GHz
/// mitigation clock, a 32 ms refresh window with ~3.9 us intervals, and
/// a shorter per-command refresh. The faster clock more than doubles the
/// FSM cycle budgets, which is why serial TiVaPRoMi datapaths fit DDR5
/// comfortably (see the table2_fsm_cycles bench).
Timing ddr5_timing() noexcept;

}  // namespace tvp::dram
