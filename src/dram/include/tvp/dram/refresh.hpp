// Refresh scheduling: which rows are refreshed in which refresh interval.
//
// TiVaPRoMi's weight (Eq. 1) assumes refresh interval i refreshes rows
// [i*RowsPI, (i+1)*RowsPI). Section IV checks the technique against
// three alternative device-side orders; this class implements all four:
//   (i)   kNeighborSequential — the assumed order,
//   (ii)  kNeighborRemapped   — sequential with a few spare-row swaps,
//   (iii) kRandom             — a fixed random permutation,
//   (iv)  kCounterMask        — interval counter XOR a constant mask.
#pragma once

#include <cstdint>
#include <vector>

#include "tvp/dram/geometry.hpp"
#include "tvp/dram/remap.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::dram {

enum class RefreshPolicy {
  kNeighborSequential,
  kNeighborRemapped,
  kRandom,
  kCounterMask,
};

const char* to_string(RefreshPolicy policy) noexcept;

/// Deterministic per-device refresh order. The order is fixed at
/// construction (real devices hard-wire it); every row is refreshed
/// exactly once per refresh window under every policy.
class RefreshScheduler {
 public:
  /// @param rows_per_bank   number of rows (power of two)
  /// @param refresh_intervals RefInt intervals per window
  /// @param policy          device-side refresh order
  /// @param rng             seeds policies (ii)/(iii)/(iv)
  /// @param remap_swaps     swap count for kNeighborRemapped
  RefreshScheduler(RowId rows_per_bank, std::uint32_t refresh_intervals,
                   RefreshPolicy policy, util::Rng& rng,
                   std::size_t remap_swaps = 16);

  RefreshPolicy policy() const noexcept { return policy_; }
  std::uint32_t refresh_intervals() const noexcept { return intervals_; }
  RowId rows_per_bank() const noexcept { return rows_; }
  /// RowsPI: rows refreshed per interval.
  RowId rows_per_interval() const noexcept { return rows_ / intervals_; }

  /// Physical rows refreshed in interval @p interval (mod RefInt).
  /// The returned view stays valid for the scheduler's lifetime.
  std::vector<RowId> rows_in_interval(std::uint32_t interval) const;

  /// Interval (within the window) in which physical row @p row is
  /// refreshed — the ground truth the device implements.
  std::uint32_t interval_of_row(RowId row) const noexcept;

  /// The controller-side *assumed* mapping f_r = r / RowsPI that the
  /// TiVaPRoMi weight calculation uses regardless of the true policy.
  std::uint32_t assumed_interval_of_row(RowId row) const noexcept {
    return static_cast<std::uint32_t>(row / rows_per_interval());
  }

 private:
  RowId rows_;
  std::uint32_t intervals_;
  RefreshPolicy policy_;
  std::uint32_t mask_ = 0;                 // kCounterMask
  std::vector<std::uint32_t> row_to_interval_;  // kRandom / kNeighborRemapped
  std::vector<std::vector<RowId>> interval_rows_;  // inverse, same policies
};

}  // namespace tvp::dram
