// Logical-to-physical row remapping.
//
// Real DRAM devices replace defective rows with spare rows, so the rows
// a memory controller sees at addresses N-1 / N+1 are not always the
// physical neighbours of row N. The paper calls this out as a weakness
// of ProHit/MRLoc (Section II) and evaluates TiVaPRoMi under a refresh
// policy "(ii) refreshing neighbours but with few replacements".
// RowRemapper models that mechanism: an identity map with a sparse set
// of swapped pairs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "tvp/dram/geometry.hpp"
#include "tvp/util/rng.hpp"

namespace tvp::dram {

/// Bijective logical->physical row map, identity except for a sparse set
/// of swapped row pairs (a defective row and its spare).
class RowRemapper {
 public:
  /// Identity map over @p rows_per_bank rows.
  explicit RowRemapper(RowId rows_per_bank);

  /// Identity map with @p swaps random logical<->spare swaps drawn from
  /// @p rng. Swap targets are drawn over the whole bank, modelling spare
  /// rows interspersed in the array.
  RowRemapper(RowId rows_per_bank, std::size_t swaps, util::Rng& rng);

  RowId rows_per_bank() const noexcept { return rows_; }
  std::size_t swap_count() const noexcept { return to_physical_.size() / 2; }

  /// Physical row backing logical row @p logical.
  RowId to_physical(RowId logical) const noexcept;
  /// Logical address of physical row @p physical.
  RowId to_logical(RowId physical) const noexcept;

  /// True when the map is the identity.
  bool is_identity() const noexcept { return to_physical_.empty(); }

  /// Physical neighbours of a *physical* row (one neighbour at the array
  /// edges). Returns the count written into @p out (0..2).
  std::size_t physical_neighbors(RowId physical, RowId out[2]) const noexcept;

 private:
  void add_swap(RowId a, RowId b);

  RowId rows_;
  std::unordered_map<RowId, RowId> to_physical_;  // sparse; both directions
  std::unordered_map<RowId, RowId> to_logical_;
};

}  // namespace tvp::dram
