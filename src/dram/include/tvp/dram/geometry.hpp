// DRAM organisation: channels / ranks / banks / rows / columns, plus the
// physical-address-to-DRAM-coordinate mapping used by the memory
// controller front-end.
#pragma once

#include <cstdint>
#include <string>

namespace tvp::dram {

/// Flat index of a bank across the whole memory system.
using BankId = std::uint32_t;
/// Row index within a bank.
using RowId = std::uint32_t;

/// Shape of the memory system. Defaults model a single-channel DDR4
/// device with 1 GB banks of 128 K rows — the configuration for which
/// the paper reports its 120 B / 374 B table sizes.
struct Geometry {
  std::uint32_t channels = 1;
  std::uint32_t ranks_per_channel = 1;
  std::uint32_t banks_per_rank = 16;
  std::uint32_t rows_per_bank = 131072;  // 2^17
  std::uint32_t cols_per_row = 1024;
  std::uint32_t bytes_per_col = 64;  // one cache line per column access

  constexpr std::uint32_t total_banks() const noexcept {
    return channels * ranks_per_channel * banks_per_rank;
  }
  constexpr std::uint64_t rows_total() const noexcept {
    return static_cast<std::uint64_t>(total_banks()) * rows_per_bank;
  }
  constexpr std::uint64_t bytes_per_row() const noexcept {
    return static_cast<std::uint64_t>(cols_per_row) * bytes_per_col;
  }
  constexpr std::uint64_t capacity_bytes() const noexcept {
    return rows_total() * bytes_per_row();
  }

  /// Throws std::invalid_argument when any dimension is zero or
  /// rows_per_bank is not a power of two (the refresh-slot arithmetic
  /// r >> log2(RowsPI) requires it).
  void validate() const;
};

/// A decoded DRAM coordinate.
struct Address {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;  // within rank
  RowId row = 0;
  std::uint32_t col = 0;

  bool operator==(const Address&) const = default;
};

/// How physical address bits are spread over DRAM coordinates.
enum class AddressMapPolicy {
  kRowBankCol,   // row : rank : bank : col  (open-page friendly)
  kBankRowCol,   // rank : bank : row : col  (bank-interleaved blocks)
  kRowColBank,   // row : col : bank         (cache-line bank interleave)
};

const char* to_string(AddressMapPolicy policy) noexcept;

/// Maps physical byte addresses to DRAM coordinates and back.
///
/// The mapping is exact and bijective over the device capacity, so
/// decode(encode(a)) == a for every in-range coordinate — a property the
/// test suite checks exhaustively on small geometries.
class AddressMapper {
 public:
  AddressMapper(Geometry geometry, AddressMapPolicy policy);

  const Geometry& geometry() const noexcept { return geom_; }
  AddressMapPolicy policy() const noexcept { return policy_; }

  /// Decodes a physical byte address (modulo capacity) to a coordinate.
  Address decode(std::uint64_t phys_addr) const noexcept;

  /// Encodes a coordinate back to a physical byte address (col-aligned).
  std::uint64_t encode(const Address& addr) const noexcept;

  /// Flat bank index across channels and ranks.
  BankId flat_bank(const Address& addr) const noexcept {
    return (addr.channel * geom_.ranks_per_channel + addr.rank) *
               geom_.banks_per_rank +
           addr.bank;
  }

 private:
  Geometry geom_;
  AddressMapPolicy policy_;
  unsigned col_bits_;
  unsigned bank_bits_;
  unsigned rank_bits_;
  unsigned chan_bits_;
  unsigned row_bits_;
};

}  // namespace tvp::dram
