#include "tvp/dram/timing.hpp"

#include <stdexcept>

namespace tvp::dram {

void Timing::validate() const {
  if (clock_hz == 0 || t_rc_ps == 0 || t_rfc_ps == 0 || t_refw_ps == 0 ||
      refresh_intervals == 0)
    throw std::invalid_argument("Timing: all parameters must be nonzero");
  if (t_refi_ps() <= t_rfc_ps)
    throw std::invalid_argument("Timing: refresh interval shorter than tRFC");
  if (t_rc_ps >= t_refi_ps())
    throw std::invalid_argument("Timing: tRC must be far below tREFI");
}

Timing ddr4_timing() noexcept {
  return Timing{};  // defaults are the DDR4 values from Table I
}

Timing ddr3_timing() noexcept {
  Timing t;
  t.clock_hz = 320'000'000;  // FPGA DDR3 controller clock (Section IV)
  return t;
}

Timing ddr5_timing() noexcept {
  Timing t;
  t.clock_hz = 2'400'000'000;
  t.t_rc_ps = 48'000;
  t.t_rfc_ps = 295'000;
  t.t_refw_ps = 32'000'000'000;  // 32 ms window
  t.refresh_intervals = 8192;    // tREFI ~ 3.9 us
  return t;
}

}  // namespace tvp::dram
