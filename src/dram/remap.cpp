#include "tvp/dram/remap.hpp"

#include <stdexcept>

namespace tvp::dram {

RowRemapper::RowRemapper(RowId rows_per_bank) : rows_(rows_per_bank) {
  if (rows_ == 0) throw std::invalid_argument("RowRemapper: zero rows");
}

RowRemapper::RowRemapper(RowId rows_per_bank, std::size_t swaps, util::Rng& rng)
    : RowRemapper(rows_per_bank) {
  for (std::size_t i = 0; i < swaps; ++i) {
    const auto a = static_cast<RowId>(rng.below(rows_));
    const auto b = static_cast<RowId>(rng.below(rows_));
    if (a == b) continue;
    // Skip rows already involved in a swap; keeps the map a clean set of
    // disjoint transpositions.
    if (to_physical_.count(a) || to_physical_.count(b)) continue;
    add_swap(a, b);
  }
}

void RowRemapper::add_swap(RowId a, RowId b) {
  to_physical_[a] = b;
  to_physical_[b] = a;
  to_logical_[b] = a;
  to_logical_[a] = b;
}

RowId RowRemapper::to_physical(RowId logical) const noexcept {
  const auto it = to_physical_.find(logical);
  return it == to_physical_.end() ? logical : it->second;
}

RowId RowRemapper::to_logical(RowId physical) const noexcept {
  const auto it = to_logical_.find(physical);
  return it == to_logical_.end() ? physical : it->second;
}

std::size_t RowRemapper::physical_neighbors(RowId physical, RowId out[2]) const noexcept {
  std::size_t n = 0;
  if (physical > 0) out[n++] = physical - 1;
  if (physical + 1 < rows_) out[n++] = physical + 1;
  return n;
}

}  // namespace tvp::dram
